// Two-dimensional ADI (the paper's Section 4): solve -Δu = f on the unit
// square with implicit line solves in alternating directions, comparing
// the line-at-a-time driver (Listing 7) against the pipelined one
// (Listing 8) on the same 2x2 processor grid.
package main

import (
	"fmt"
	"log"

	"repro/internal/adi"
	"repro/internal/machine"
	"repro/internal/topology"
)

func main() {
	par := adi.Params{N: 48, A: 1, B: 1, Iters: 10}
	f := adi.TestProblem(par.N)
	g := topology.New(2, 2)

	m1 := machine.New(4, machine.IPSC2())
	plain, err := adi.Parallel(m1, g, par, f, false)
	if err != nil {
		log.Fatal(err)
	}
	m2 := machine.New(4, machine.IPSC2())
	piped, err := adi.Parallel(m2, g, par, f, true)
	if err != nil {
		log.Fatal(err)
	}

	fmt.Println("residual history (max norm):")
	for k := range plain.ResNorm {
		fmt.Printf("  iter %2d: %.3e\n", k+1, plain.ResNorm[k])
	}
	fmt.Printf("\nline-at-a-time ADI (Listing 7): %.4f virtual s, %d msgs\n",
		plain.Elapsed, plain.Stats.MsgsSent)
	fmt.Printf("pipelined MADI     (Listing 8): %.4f virtual s, %d msgs\n",
		piped.Elapsed, piped.Stats.MsgsSent)
	fmt.Printf("speedup from pipelining the line solves: %.2fx (claim C4)\n",
		plain.Elapsed/piped.Elapsed)
}
