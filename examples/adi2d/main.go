// Two-dimensional ADI (the paper's Section 4): solve -Δu = f on the unit
// square with implicit line solves in alternating directions, comparing
// the line-at-a-time driver (Listing 7) against the pipelined one
// (Listing 8) on the same 2x2 processor grid.
package main

import (
	"fmt"
	"log"

	"repro/internal/adi"
	"repro/internal/core"
)

func main() {
	par := adi.Params{N: 48, A: 1, B: 1, Iters: 10}
	f := adi.TestProblem(par.N)

	sys1, err := core.NewSystem(core.Grid(2, 2))
	if err != nil {
		log.Fatal(err)
	}
	plain, err := adi.Parallel(sys1.Machine, sys1.Procs, par, f, false)
	if err != nil {
		log.Fatal(err)
	}
	sys2, err := core.NewSystem(core.Grid(2, 2))
	if err != nil {
		log.Fatal(err)
	}
	piped, err := adi.Parallel(sys2.Machine, sys2.Procs, par, f, true)
	if err != nil {
		log.Fatal(err)
	}

	fmt.Println("residual history (max norm):")
	for k := range plain.ResNorm {
		fmt.Printf("  iter %2d: %.3e\n", k+1, plain.ResNorm[k])
	}
	fmt.Printf("\nline-at-a-time ADI (Listing 7): %.4f virtual s, %d msgs\n",
		plain.Elapsed, plain.Stats.MsgsSent)
	fmt.Printf("pipelined MADI     (Listing 8): %.4f virtual s, %d msgs\n",
		piped.Elapsed, piped.Stats.MsgsSent)
	fmt.Printf("speedup from pipelining the line solves: %.2fx (claim C4)\n",
		plain.Elapsed/piped.Elapsed)
}
