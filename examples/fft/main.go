// Distributed FFT — the second one-dimensional kernel the paper's
// Section 3 names. The transform runs its large-span butterflies under a
// cyclic distribution, performs ONE redistribution to blocks (the only
// communication), and finishes locally: the "transpose FFT" written as a
// distribution change instead of a hand-coded message schedule.
package main

import (
	"fmt"
	"log"
	"math"
	"math/cmplx"

	"repro/internal/core"
	"repro/internal/fft"
	"repro/internal/kf"
)

func main() {
	const n, p = 256, 4
	sys, err := core.NewSystem(core.Grid(p))
	if err != nil {
		log.Fatal(err)
	}
	// A three-tone signal.
	signal := func(i int) complex128 {
		t := float64(i)
		return complex(
			math.Sin(2*math.Pi*5*t/n)+0.5*math.Sin(2*math.Pi*12*t/n)+0.25*math.Sin(2*math.Pi*40*t/n),
			0)
	}
	var spectrum []complex128
	elapsed, err := sys.Run(func(c *kf.Ctx) error {
		d := fft.NewData(c, n, signal)
		out, err := fft.Transform(c, d)
		if err != nil {
			return err
		}
		spec := fft.GatherOrdered(c, out)
		if c.GridIndex() == 0 {
			spectrum = spec
		}
		return nil
	})
	if err != nil {
		log.Fatal(err)
	}

	fmt.Printf("FFT of %d points on %d processors (%.6f virtual s, %d msgs)\n",
		n, p, elapsed, sys.Stats().MsgsSent)
	fmt.Println("dominant bins:")
	for k := 1; k < n/2; k++ {
		mag := cmplx.Abs(spectrum[k]) / (n / 2)
		if mag > 0.1 {
			fmt.Printf("  bin %3d: amplitude %.3f\n", k, mag)
		}
	}
}
