// Distributed cubic spline fitting — one of the application areas the
// paper's introduction motivates ("tensor product algorithms are widely
// used in spline fitting ..."): the knot values live block-distributed on
// the processor array and the second-derivative system is solved by the
// parallel substructured tridiagonal kernel of Section 3.
package main

import (
	"fmt"
	"log"
	"math"

	"repro/internal/core"
	"repro/internal/darray"
	"repro/internal/dist"
	"repro/internal/kf"
	"repro/internal/spline"
)

func main() {
	const n, p = 128, 8
	h := 2 * math.Pi / float64(n-1)
	target := func(x float64) float64 { return math.Sin(x) + 0.3*math.Cos(3*x) }

	sys, err := core.NewSystem(core.Grid(p))
	if err != nil {
		log.Fatal(err)
	}
	var fitted *spline.Spline
	elapsed, err := sys.Run(func(c *kf.Ctx) error {
		y := c.NewArray(darray.Spec{
			Extents: []int{n},
			Dists:   []dist.Dist{dist.Block{}},
			Halo:    []int{1},
		})
		y.FillOwned(func(idx []int) float64 { return target(h * float64(idx[0])) })
		s, err := spline.FitParallel(c, 0, h, y)
		if err != nil {
			return err
		}
		if c.GridIndex() == 0 {
			fitted = s
		}
		return nil
	})
	if err != nil {
		log.Fatal(err)
	}

	worst := 0.0
	for x := 0.5; x < 2*math.Pi-0.5; x += 0.01 {
		if d := math.Abs(fitted.Eval(x) - target(x)); d > worst {
			worst = d
		}
	}
	st := sys.Stats()
	fmt.Printf("fit %d knots over %d processors\n", n, p)
	fmt.Printf("max interior interpolation error: %.2e\n", worst)
	fmt.Printf("knot-equation residual:           %.2e\n", fitted.MaxKnotResidual())
	fmt.Printf("virtual time %.6fs, %d messages\n", elapsed, st.MsgsSent)
}
