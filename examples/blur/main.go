// Picture processing (the paper's introduction lists it among the tensor
// product application areas): a separable binomial blur of a distributed
// image — one 1-D convolution pass per dimension, each needing a single
// ghost exchange along its own axis.
package main

import (
	"fmt"
	"log"

	"repro/internal/core"
	"repro/internal/darray"
	"repro/internal/dist"
	"repro/internal/imaging"
	"repro/internal/kf"
)

func main() {
	const ny, nx, radius = 48, 48, 2
	// A synthetic image: bright diagonal band on a dark field, plus a
	// deterministic speckle pattern.
	pixel := func(i, j int) float64 {
		v := 0.1
		if d := i - j; d > -6 && d < 6 {
			v = 0.9
		}
		if (i*7+j*13)%11 == 0 {
			v += 0.4
		}
		return v
	}
	img := make([]float64, ny*nx)
	for i := 0; i < ny; i++ {
		for j := 0; j < nx; j++ {
			img[i*nx+j] = pixel(i, j)
		}
	}

	sys, err := core.NewSystem(core.Grid(2, 2))
	if err != nil {
		log.Fatal(err)
	}
	var out []float64
	elapsed, err := sys.Run(func(c *kf.Ctx) error {
		spec := darray.Spec{
			Extents: []int{ny, nx},
			Dists:   []dist.Dist{dist.Block{}, dist.Block{}},
			Halo:    []int{radius, radius},
		}
		in := c.NewArray(spec)
		blurred := c.NewArray(spec)
		in.FillOwned(func(idx []int) float64 { return pixel(idx[0], idx[1]) })
		blurred.Zero()
		if err := imaging.Smooth(c, in, blurred, imaging.Binomial(radius)); err != nil {
			return err
		}
		o := blurred.GatherTo(c.NextScope(), 0)
		if c.GridIndex() == 0 {
			out = o
		}
		return nil
	})
	if err != nil {
		log.Fatal(err)
	}

	render := func(im []float64, label string) {
		fmt.Println(label)
		shades := []byte(" .:-=+*#")
		for i := 0; i < ny; i += 4 {
			row := make([]byte, 0, nx/2)
			for j := 0; j < nx; j += 2 {
				v := im[i*nx+j]
				idx := int(v * float64(len(shades)-1))
				if idx >= len(shades) {
					idx = len(shades) - 1
				}
				if idx < 0 {
					idx = 0
				}
				row = append(row, shades[idx])
			}
			fmt.Printf("  %s\n", row)
		}
	}
	render(img, "input (downsampled view):")
	render(out, "blurred:")
	st := sys.Stats()
	fmt.Printf("roughness %.4f -> %.4f; virtual time %.6fs, %d messages\n",
		imaging.Roughness(img, ny, nx), imaging.Roughness(out, ny, nx), elapsed, st.MsgsSent)
}
