// Three-dimensional multigrid (the paper's Section 5): zebra plane
// relaxation where each plane solve is itself a 2-D multigrid solver, with
// semicoarsening in z. The same solver code runs under three different
// dist clauses — the paper's point that changing the distribution is a
// one-line change that moves the parallelism between levels of the nested
// algorithm (claim C3).
package main

import (
	"fmt"
	"log"
	"math"

	"repro/internal/core"
	"repro/internal/darray"
	"repro/internal/dist"
	"repro/internal/kf"
	"repro/internal/multigrid"
)

func main() {
	const n = 16
	type variant struct {
		name       string
		shape      []int
		dx, dy, dz dist.Dist
	}
	for _, v := range []variant{
		{"dist (*, block, block) on procs(2,2)", []int{2, 2}, dist.Star{}, dist.Block{}, dist.Block{}},
		{"dist (*, *, block)     on procs(4)  ", []int{4}, dist.Star{}, dist.Star{}, dist.Block{}},
		{"dist (block, block, *) on procs(2,2)", []int{2, 2}, dist.Block{}, dist.Block{}, dist.Star{}},
	} {
		sys, err := core.NewSystem(core.Grid(v.shape...))
		if err != nil {
			log.Fatal(err)
		}
		var hist []float64
		elapsed, err := sys.Run(func(c *kf.Ctx) error {
			halo := make([]int, 3)
			for i, d := range []dist.Dist{v.dx, v.dy, v.dz} {
				if _, isStar := d.(dist.Star); !isStar {
					halo[i] = 1
				}
			}
			spec := darray.Spec{
				Extents: []int{n + 1, n + 1, n + 1},
				Dists:   []dist.Dist{v.dx, v.dy, v.dz},
				Halo:    halo,
			}
			u := c.NewArray(spec)
			f := c.NewArray(spec)
			u.Zero()
			f.Zero()
			f.FillOwned(func(idx []int) float64 {
				i, j, k := idx[0], idx[1], idx[2]
				if i == 0 || i == n || j == 0 || j == n || k == 0 || k == n {
					return 0
				}
				x, y, z := float64(i)/n, float64(j)/n, float64(k)/n
				return -3 * math.Pi * math.Pi *
					math.Sin(math.Pi*x) * math.Sin(math.Pi*y) * math.Sin(math.Pi*z)
			})
			h := multigrid.Solve3(c, u, f, multigrid.Default3D(n, n, n), 5)
			if c.P.Rank() == c.G.RankAt(0) {
				hist = h
			}
			return nil
		})
		if err != nil {
			log.Fatal(err)
		}
		st := sys.Stats()
		fmt.Printf("%s\n", v.name)
		fmt.Printf("  residuals:")
		for _, r := range hist {
			fmt.Printf(" %.2e", r)
		}
		fmt.Printf("\n  virtual time %.4fs, msgs %d, bytes %d\n\n",
			elapsed, st.MsgsSent, st.BytesSent)
	}
	fmt.Println("same solver source, three dist clauses — only the Spec line changed (claim C3)")
}
