// Jacobi three ways (the paper's Listings 1-3): the sequential code, the
// hand message-passing version, and the KF1 version, verified to produce
// bitwise-identical iterates, with the virtual-time and message accounting
// that backs the paper's claims C1 and C2 — then the KF1 version once
// more as a core.Program, compared across a shared machine and a priced
// 2-node federation to show the transport is semantically invisible.
package main

import (
	"fmt"
	"log"

	"repro/internal/core"
	"repro/internal/jacobi"
	"repro/internal/kf"
)

func main() {
	const n, niter = 32, 20
	x0, f := jacobi.Problem(n)

	seq := jacobi.Sequential(x0, f, niter)

	sysMP, err := core.NewSystem(core.Grid(2, 2))
	if err != nil {
		log.Fatal(err)
	}
	mp, err := jacobi.MessagePassing(sysMP.Machine, sysMP.Procs, x0, f, niter)
	if err != nil {
		log.Fatal(err)
	}
	sysKF, err := core.NewSystem(core.Grid(2, 2))
	if err != nil {
		log.Fatal(err)
	}
	k1, err := jacobi.KF1(sysKF.Machine, sysKF.Procs, x0, f, niter)
	if err != nil {
		log.Fatal(err)
	}

	diff := func(x [][]float64) float64 {
		worst := 0.0
		for i := range x {
			for j := range x[i] {
				d := x[i][j] - seq[i][j]
				if d < 0 {
					d = -d
				}
				if d > worst {
					worst = d
				}
			}
		}
		return worst
	}

	fmt.Printf("%-28s %14s %8s %12s %10s\n", "variant", "virtual time", "msgs", "bytes", "max diff")
	fmt.Printf("%-28s %14s %8d %12d %10.1e\n", "sequential (Listing 1)", "-", 0, 0, 0.0)
	fmt.Printf("%-28s %14.6f %8d %12d %10.1e\n", "message passing (Listing 2)",
		mp.Elapsed, mp.Stats.MsgsSent, mp.Stats.BytesSent, diff(mp.X))
	fmt.Printf("%-28s %14.6f %8d %12d %10.1e\n", "KF1 runtime (Listing 3)",
		k1.Elapsed, k1.Stats.MsgsSent, k1.Stats.BytesSent, diff(k1.X))
	fmt.Printf("\nKF1 / message-passing time ratio: %.3f (claim C2: ~1)\n", k1.Elapsed/mp.Elapsed)

	// The same KF1 iteration as a Program, declared once and run on two
	// systems: a shared machine and a 2-node federation whose inter-node
	// link charges 4x latency / 8x byte period. Values and the message
	// census must be bit-identical; only the federation's clock moves.
	prog := &core.Program{
		Name: "jacobi-kf1",
		Body: func(c *kf.Ctx) (core.Output, error) {
			flat, elapsed := jacobi.KF1Ctx(c, x0, f, niter)
			return core.Output{Values: flat, Elapsed: elapsed}, nil
		},
	}
	shared, err := core.NewSystem(core.Grid(2, 2))
	if err != nil {
		log.Fatal(err)
	}
	federated, err := core.NewSystem(core.Grid(2, 2),
		core.Transport("federated"), core.Nodes(2), core.LinkCosts(4, 8))
	if err != nil {
		log.Fatal(err)
	}
	cmp, err := core.Compare(prog, shared, federated)
	if err != nil {
		log.Fatal(err)
	}
	msgs, bytes := cmp.B.Links.Total()
	fmt.Printf("\nsame program on a priced 2-node federation:\n")
	fmt.Printf("  values identical %v, census identical %v\n", cmp.ValuesIdentical, cmp.CensusIdentical)
	fmt.Printf("  shared %.6fs -> federated %.6fs (interconnect surcharge %.6fs)\n",
		cmp.A.Elapsed, cmp.B.Elapsed, cmp.B.Elapsed-cmp.A.Elapsed)
	fmt.Printf("  inter-node link traffic: %d msgs, %d bytes\n", msgs, bytes)
}
