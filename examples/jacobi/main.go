// Jacobi three ways (the paper's Listings 1-3): the sequential code, the
// hand message-passing version, and the KF1 version, verified to produce
// bitwise-identical iterates, with the virtual-time and message accounting
// that backs the paper's claims C1 and C2.
package main

import (
	"fmt"
	"log"

	"repro/internal/jacobi"
	"repro/internal/machine"
	"repro/internal/topology"
)

func main() {
	const n, niter = 32, 20
	x0, f := jacobi.Problem(n)

	seq := jacobi.Sequential(x0, f, niter)
	g := topology.New(2, 2)

	m1 := machine.New(4, machine.IPSC2())
	mp, err := jacobi.MessagePassing(m1, g, x0, f, niter)
	if err != nil {
		log.Fatal(err)
	}
	m2 := machine.New(4, machine.IPSC2())
	k1, err := jacobi.KF1(m2, g, x0, f, niter)
	if err != nil {
		log.Fatal(err)
	}

	diff := func(x [][]float64) float64 {
		worst := 0.0
		for i := range x {
			for j := range x[i] {
				d := x[i][j] - seq[i][j]
				if d < 0 {
					d = -d
				}
				if d > worst {
					worst = d
				}
			}
		}
		return worst
	}

	fmt.Printf("%-28s %14s %8s %12s %10s\n", "variant", "virtual time", "msgs", "bytes", "max diff")
	fmt.Printf("%-28s %14s %8d %12d %10.1e\n", "sequential (Listing 1)", "-", 0, 0, 0.0)
	fmt.Printf("%-28s %14.6f %8d %12d %10.1e\n", "message passing (Listing 2)",
		mp.Elapsed, mp.Stats.MsgsSent, mp.Stats.BytesSent, diff(mp.X))
	fmt.Printf("%-28s %14.6f %8d %12d %10.1e\n", "KF1 runtime (Listing 3)",
		k1.Elapsed, k1.Stats.MsgsSent, k1.Stats.BytesSent, diff(k1.X))
	fmt.Printf("\nKF1 / message-passing time ratio: %.3f (claim C2: ~1)\n", k1.Elapsed/mp.Elapsed)
}
