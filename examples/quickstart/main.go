// Quickstart: declare a processor array, distribute an array over it with
// a KF1 dist clause, and run an owner-computes doall loop — the smallest
// complete use of the runtime.
package main

import (
	"fmt"
	"log"

	"repro/internal/core"
	"repro/internal/darray"
	"repro/internal/dist"
	"repro/internal/kf"
)

func main() {
	// A machine with a 1-D processor array of 4 nodes, iPSC/2-like costs.
	sys, err := core.NewSystem(core.Grid(4))
	if err != nil {
		log.Fatal(err)
	}

	const n = 16
	elapsed, err := sys.Run(func(c *kf.Ctx) error {
		// real A(n) dist(block) — with one ghost cell for the stencil.
		a := c.NewArray(darray.Spec{
			Extents: []int{n},
			Dists:   []dist.Dist{dist.Block{}},
			Halo:    []int{1},
		})
		a.FillOwned(func(idx []int) float64 { return float64(idx[0] * idx[0]) })

		// doall i = 0, n-2 on owner(A(i)):  A(i) = A(i+1)
		// Copy-in/copy-out semantics: the loop reads pre-loop values,
		// so no temporary array is needed (paper, Section 2). The
		// Reads option performs the halo exchange the KF1 compiler
		// would generate.
		c.Doall1(kf.R(0, n-2), kf.OnOwner1(a), []kf.LoopOpt{kf.Reads(a)},
			func(cc *kf.Ctx, i int) {
				a.Set1(i, a.Old1(i+1))
			})

		// Gather onto processor 0 and print.
		flat := a.GatherTo(c.NextScope(), 0)
		if c.P.Rank() == 0 {
			fmt.Println("shifted squares:", flat)
		}
		return nil
	})
	if err != nil {
		log.Fatal(err)
	}
	st := sys.Stats()
	fmt.Printf("virtual time %.6fs, %d messages, %d bytes moved\n",
		elapsed, st.MsgsSent, st.BytesSent)
}
