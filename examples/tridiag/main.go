// Parallel tridiagonal solve (the paper's Section 3): distribute a system
// by blocks of rows, run the substructured solver, and show the Figure 3
// dataflow — active processors halving through the reduction phase and
// doubling through substitution — plus the Figure 5 pipeline effect when
// many systems are solved at once.
package main

import (
	"fmt"
	"log"
	"math"
	"strings"

	"repro/internal/core"
	"repro/internal/darray"
	"repro/internal/dist"
	"repro/internal/kf"
	"repro/internal/tridiag"
)

func main() {
	const p, n = 8, 256
	sys, err := core.NewSystem(core.Grid(p), core.Trace())
	if err != nil {
		log.Fatal(err)
	}

	// A diagonally dominant system with a known solution x*_i = sin(i/10).
	b := make([]float64, n)
	a := make([]float64, n)
	c := make([]float64, n)
	xstar := make([]float64, n)
	for i := 0; i < n; i++ {
		b[i], a[i], c[i] = -1, 4, -1
		xstar[i] = math.Sin(float64(i) / 10)
	}
	b[0], c[n-1] = 0, 0
	f := make([]float64, n)
	for i := 0; i < n; i++ {
		f[i] = a[i] * xstar[i]
		if i > 0 {
			f[i] += b[i] * xstar[i-1]
		}
		if i < n-1 {
			f[i] += c[i] * xstar[i+1]
		}
	}

	var worst float64
	_, err = sys.Run(func(ctx *kf.Ctx) error {
		mk := func(v []float64) *darray.Array {
			arr := ctx.NewArray(darray.Spec{Extents: []int{n}, Dists: []dist.Dist{dist.Block{}}})
			vv := v
			arr.OwnedRuns(func(idx []int, vals []float64) { copy(vals, vv[idx[0]:]) })
			return arr
		}
		x := ctx.NewArray(darray.Spec{Extents: []int{n}, Dists: []dist.Dist{dist.Block{}}})
		if err := tridiag.TriTraced(ctx, x, mk(f), mk(b), mk(a), mk(c)); err != nil {
			return err
		}
		flat := x.GatherTo(ctx.NextScope(), 0)
		if ctx.P.Rank() == 0 {
			for i := range flat {
				if d := math.Abs(flat[i] - xstar[i]); d > worst {
					worst = d
				}
			}
		}
		return nil
	})
	if err != nil {
		log.Fatal(err)
	}
	fmt.Printf("n=%d rows over p=%d processors: max error vs known solution %.2e\n\n", n, p, worst)

	steps, active := sys.Trace.StepActivity("step:")
	fmt.Println("dataflow (Figure 3): active processors per step")
	for k, s := range steps {
		count := 0
		for _, on := range active[k] {
			if on {
				count++
			}
		}
		fmt.Printf("  step %d: %2d %s\n", s, count, strings.Repeat("*", count))
	}
	st := sys.Stats()
	fmt.Printf("\nmessages %d, bytes %d, mean idle per proc %.2e s\n",
		st.MsgsSent, st.BytesSent, st.IdleTime/float64(p))
}
