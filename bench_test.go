// Package repro's benchmark harness: one benchmark per reproduced paper
// artifact (figures F1-F5, claims E1-E9; see DESIGN.md for the index and
// EXPERIMENTS.md for a recorded reference run), plus microbenchmarks of the
// substrate layers. Run with:
//
//	go test -bench=. -benchmem
package repro

import (
	"testing"

	"repro/internal/benchkit"
	"repro/internal/darray"
	"repro/internal/dist"
	"repro/internal/experiments"
	"repro/internal/fft"
	"repro/internal/imaging"
	"repro/internal/kernels"
	"repro/internal/kf"
	"repro/internal/linalg"
	"repro/internal/machine"
	"repro/internal/multigrid"
	"repro/internal/spline"
	"repro/internal/topology"
	"repro/internal/tridiag"
)

// --- paper artifacts: figures ---

func BenchmarkF1FirstReduction(b *testing.B) {
	for i := 0; i < b.N; i++ {
		experiments.F1FirstReduction()
	}
}

func BenchmarkF2FourRowReduction(b *testing.B) {
	for i := 0; i < b.N; i++ {
		experiments.F2FourRowReduction()
	}
}

func BenchmarkF3DataflowTrace(b *testing.B) {
	for i := 0; i < b.N; i++ {
		experiments.F3Dataflow()
	}
}

func BenchmarkF4Substitution(b *testing.B) {
	for i := 0; i < b.N; i++ {
		experiments.F4Substitution()
	}
}

func BenchmarkF5Mapping(b *testing.B) {
	for i := 0; i < b.N; i++ {
		experiments.F5Mapping()
	}
}

// --- paper artifacts: measured claims ---

func BenchmarkE1Jacobi(b *testing.B) {
	for i := 0; i < b.N; i++ {
		experiments.E1Jacobi()
	}
}

func BenchmarkE2Tri(b *testing.B) {
	for i := 0; i < b.N; i++ {
		experiments.E2Tri()
	}
}

func BenchmarkE3Pipeline(b *testing.B) {
	for i := 0; i < b.N; i++ {
		experiments.E3Pipeline()
	}
}

func BenchmarkE4ADI(b *testing.B) { benchkit.E4ADI(b) }

func BenchmarkE5MADIvsADI(b *testing.B) {
	for i := 0; i < b.N; i++ {
		experiments.E5MADI()
	}
}

func BenchmarkE6Multigrid(b *testing.B) {
	for i := 0; i < b.N; i++ {
		experiments.E6Multigrid()
	}
}

func BenchmarkE7Distribution(b *testing.B) {
	for i := 0; i < b.N; i++ {
		experiments.E7Distribution()
	}
}

func BenchmarkE8CodeSize(b *testing.B) {
	for i := 0; i < b.N; i++ {
		experiments.E8CodeSize()
	}
}

func BenchmarkE9InspectorExecutor(b *testing.B) {
	for i := 0; i < b.N; i++ {
		experiments.E9Inspector()
	}
}

// --- substrate microbenchmarks ---

// BenchmarkMachinePingPong measures the host cost of one simulated message
// round trip (mailbox, virtual clocks, tracing off).
func BenchmarkMachinePingPong(b *testing.B) { benchkit.MachinePingPong(b) }

// BenchmarkMachinePingPongFederated measures the same round trip across a
// federation link (per-node mailbox + link counters).
func BenchmarkMachinePingPongFederated(b *testing.B) { benchkit.MachinePingPongFederated(b) }

// BenchmarkMachinePingPongFederatedPriced adds the hierarchical cost
// model's per-link price lookup to the federated round trip.
func BenchmarkMachinePingPongFederatedPriced(b *testing.B) {
	benchkit.MachinePingPongFederatedPriced(b)
}

// BenchmarkHaloExchange2D measures one ghost exchange of a 256x256 block
// array on a 2x2 grid.
func BenchmarkHaloExchange2D(b *testing.B) { benchkit.HaloExchange2D(b) }

// BenchmarkThomas measures the sequential kernel on 1024 rows.
func BenchmarkThomas(b *testing.B) {
	n := 1024
	bb := make([]float64, n)
	aa := make([]float64, n)
	cc := make([]float64, n)
	ff := make([]float64, n)
	xx := make([]float64, n)
	for i := range aa {
		bb[i], aa[i], cc[i], ff[i] = -1, 4, -1, float64(i%7)
	}
	bb[0], cc[n-1] = 0, 0
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		kernels.Thomas(nil, bb, aa, cc, ff, xx)
	}
}

// BenchmarkTriParallel8 measures a full substructured solve, n=1024 on 8
// simulated processors (host time; the virtual time is E2's subject).
func BenchmarkTriParallel8(b *testing.B) {
	const p, n = 8, 1024
	f := make([]float64, n)
	for i := range f {
		f[i] = float64(i % 11)
	}
	for i := 0; i < b.N; i++ {
		m := machine.New(p, machine.ZeroComm())
		g := topology.New1D(p)
		err := kf.Exec(m, g, func(ctx *kf.Ctx) error {
			fa := ctx.NewArray(darray.Spec{Extents: []int{n}, Dists: []dist.Dist{dist.Block{}}})
			fa.Fill(func(idx []int) float64 { return f[idx[0]] })
			x := ctx.NewArray(darray.Spec{Extents: []int{n}, Dists: []dist.Dist{dist.Block{}}})
			return tridiag.TriC(ctx, x, fa, -1, 4, -1)
		})
		if err != nil {
			b.Fatal(err)
		}
	}
}

// BenchmarkJacobiKF1Iteration measures one KF1 Jacobi iteration, n=64 on a
// 2x2 grid.
func BenchmarkJacobiKF1Iteration(b *testing.B) { benchkit.JacobiKF1Iteration(b) }

// BenchmarkJacobi64Proc and BenchmarkJacobi256Proc measure one KF1 Jacobi
// iteration at 64 (shared transport) and 256 (federated transport)
// simulated processors.
func BenchmarkJacobi64Proc(b *testing.B)  { benchkit.Jacobi64Proc(b) }
func BenchmarkJacobi256Proc(b *testing.B) { benchkit.Jacobi256Proc(b) }

// BenchmarkJacobi1024ProcPriced measures a whole fixed-work Jacobi run at
// 1024 simulated processors on a 16-node federation with per-link pricing,
// pooled and driven by the calendar executor.
func BenchmarkJacobi1024ProcPriced(b *testing.B) { benchkit.Jacobi1024ProcPriced(b) }

// BenchmarkJacobi1024ProcIPC4Node measures a whole fixed-work Jacobi run at
// 1024 simulated processors executed inside 4 ipc worker processes, sockets
// carrying only the inter-node halo edges.
func BenchmarkJacobi1024ProcIPC4Node(b *testing.B) { benchkit.Jacobi1024ProcIPC4Node(b) }

// BenchmarkJacobi16384Proc measures a whole fixed-work Jacobi run at 16384
// simulated processors multiplexed over the calendar executor's worker pool.
func BenchmarkJacobi16384Proc(b *testing.B) { benchkit.Jacobi16384Proc(b) }

// BenchmarkServeWarmJacobi8x8 and BenchmarkServeColdJacobi8x8 measure one
// kfserve request with and without the warmed-System pool: checkout, one
// distributed Jacobi run inside 4 ipc workers, return — versus spawning
// and discarding the worker fleet every request. Their ratio is what the
// pool amortizes.
func BenchmarkServeWarmJacobi8x8(b *testing.B) { benchkit.ServeWarmJacobi8x8(b) }
func BenchmarkServeColdJacobi8x8(b *testing.B) { benchkit.ServeColdJacobi8x8(b) }

func BenchmarkA1MappingAblation(b *testing.B) {
	for i := 0; i < b.N; i++ {
		experiments.A1Mapping()
	}
}

func BenchmarkA2Estimator(b *testing.B) {
	for i := 0; i < b.N; i++ {
		experiments.A2Estimator()
	}
}

func BenchmarkA3CyclicLU(b *testing.B) {
	for i := 0; i < b.N; i++ {
		experiments.A3Cyclic()
	}
}

// BenchmarkFFT64 measures the distributed transform, n=64 on 4 simulated
// processors.
func BenchmarkFFT64(b *testing.B) {
	for i := 0; i < b.N; i++ {
		m := machine.New(4, machine.ZeroComm())
		g := topology.New1D(4)
		err := kf.Exec(m, g, func(c *kf.Ctx) error {
			d := fft.NewData(c, 64, func(i int) complex128 {
				return complex(float64(i%7), float64(i%3))
			})
			_, err := fft.Transform(c, d)
			return err
		})
		if err != nil {
			b.Fatal(err)
		}
	}
}

// BenchmarkSplineFit128 measures the distributed spline fit, 128 knots on
// 8 simulated processors.
func BenchmarkSplineFit128(b *testing.B) {
	y := make([]float64, 128)
	for i := range y {
		y[i] = float64(i%13) - 6
	}
	for i := 0; i < b.N; i++ {
		m := machine.New(8, machine.ZeroComm())
		g := topology.New1D(8)
		err := kf.Exec(m, g, func(c *kf.Ctx) error {
			yd := c.NewArray(darray.Spec{Extents: []int{128}, Dists: []dist.Dist{dist.Block{}}, Halo: []int{1}})
			yd.Fill(func(idx []int) float64 { return y[idx[0]] })
			_, err := spline.FitParallel(c, 0, 0.1, yd)
			return err
		})
		if err != nil {
			b.Fatal(err)
		}
	}
}

// BenchmarkSmooth64 measures the separable blur of a 64x64 image on a 2x2
// grid.
func BenchmarkSmooth64(b *testing.B) {
	kern := imaging.Binomial(2)
	for i := 0; i < b.N; i++ {
		m := machine.New(4, machine.ZeroComm())
		g := topology.New(2, 2)
		err := kf.Exec(m, g, func(c *kf.Ctx) error {
			spec := darray.Spec{
				Extents: []int{64, 64},
				Dists:   []dist.Dist{dist.Block{}, dist.Block{}},
				Halo:    []int{2, 2},
			}
			in := c.NewArray(spec)
			out := c.NewArray(spec)
			in.Fill(func(idx []int) float64 { return float64((idx[0] + idx[1]) % 5) })
			out.Zero()
			return imaging.Smooth(c, in, out, kern)
		})
		if err != nil {
			b.Fatal(err)
		}
	}
}

// BenchmarkLUCyclic96 measures the distributed LU factorization under the
// cyclic column distribution.
func BenchmarkLUCyclic96(b *testing.B) {
	const n = 96
	a := make([]float64, n*n)
	for i := 0; i < n; i++ {
		for j := 0; j < n; j++ {
			if i == j {
				a[i*n+j] = float64(n)
			} else {
				a[i*n+j] = 1 / float64(1+(i+j)%7)
			}
		}
	}
	for i := 0; i < b.N; i++ {
		m := machine.New(4, machine.ZeroComm())
		g := topology.New1D(4)
		err := kf.Exec(m, g, func(c *kf.Ctx) error {
			ad := c.NewArray(darray.Spec{
				Extents: []int{n, n},
				Dists:   []dist.Dist{dist.Star{}, dist.Cyclic{}},
			})
			ad.Fill(func(idx []int) float64 { return a[idx[0]*n+idx[1]] })
			return linalg.LU(c, ad)
		})
		if err != nil {
			b.Fatal(err)
		}
	}
}

// BenchmarkMG3Cycle measures one 16^3 MG3 V-cycle on a 2x2 grid.
func BenchmarkMG3Cycle(b *testing.B) {
	const n = 16
	m := machine.New(4, machine.ZeroComm())
	g := topology.New(2, 2)
	err := kf.Exec(m, g, func(c *kf.Ctx) error {
		spec := darray.Spec{
			Extents: []int{n + 1, n + 1, n + 1},
			Dists:   []dist.Dist{dist.Star{}, dist.Block{}, dist.Block{}},
			Halo:    []int{0, 1, 1},
		}
		u := c.NewArray(spec)
		f := c.NewArray(spec)
		u.Zero()
		f.Fill(func(idx []int) float64 { return float64((idx[0] + idx[1] + idx[2]) % 3) })
		par := multigrid.Default3D(n, n, n)
		for i := 0; i < b.N; i++ {
			multigrid.Cycle3(c, u, f, par)
		}
		return nil
	})
	if err != nil {
		b.Fatal(err)
	}
}
