// Package imaging implements separable image filtering — the "picture
// processing" application the paper's introduction lists among the uses of
// tensor product algorithms. A separable 2-D convolution is literally a
// tensor product of two 1-D kernels: a row pass followed by a column pass,
// each a one-dimensional operation applied to every slice, which is
// precisely the algorithm shape the KF1 constructs target.
//
// Images are block/block-distributed 2-D arrays with halo width equal to
// the kernel radius; each pass needs one ghost exchange along its own
// dimension. Out-of-range taps are dropped and the remaining weights are
// renormalized (a standard edge treatment).
package imaging

import (
	"fmt"

	"repro/internal/darray"
	"repro/internal/dist"
	"repro/internal/kf"
)

// Smooth applies the symmetric 1-D kernel (center weight kernel[0], offset
// r weight kernel[r]) along rows and then columns of img, writing into
// out. img and out must share extents, distribution and halo at least the
// kernel radius; every processor of c.G participates. img's halo cells are
// overwritten by the exchanges.
func Smooth(c *kf.Ctx, img, out *darray.Array, kernel []float64) error {
	if img.Dims() != 2 || out.Dims() != 2 {
		return fmt.Errorf("imaging: Smooth needs 2-D arrays")
	}
	radius := len(kernel) - 1
	if radius < 0 {
		return fmt.Errorf("imaging: empty kernel")
	}
	ny, nx := img.Extent(0), img.Extent(1)
	if out.Extent(0) != ny || out.Extent(1) != nx {
		return fmt.Errorf("imaging: image %dx%d vs output %dx%d", ny, nx, out.Extent(0), out.Extent(1))
	}

	// Row pass: convolve along dimension 1 into a temporary.
	tmp := darray.New(c.P, img.Grid(), darray.Spec{
		Extents: []int{ny, nx},
		Dists:   []dist.Dist{img.Dist(0), img.Dist(1)},
		Halo:    []int{radius, radius},
	})
	if radius > 0 && distributed(img, 1) {
		img.ExchangeHalo(c.NextScope(), 1)
	}
	tmp.Zero()
	flops := 0
	tmp.OwnedEach(func(idx []int) {
		i, j := idx[0], idx[1]
		acc, wsum := kernel[0]*img.At2(i, j), kernel[0]
		for r := 1; r <= radius; r++ {
			if j-r >= 0 {
				acc += kernel[r] * img.At2(i, j-r)
				wsum += kernel[r]
			}
			if j+r < nx {
				acc += kernel[r] * img.At2(i, j+r)
				wsum += kernel[r]
			}
		}
		tmp.Set2(i, j, acc/wsum)
		flops += 4*radius + 3
	})
	c.P.Compute(flops)

	// Column pass: convolve along dimension 0 into out.
	if radius > 0 && distributed(tmp, 0) {
		tmp.ExchangeHalo(c.NextScope(), 0)
	}
	flops = 0
	out.OwnedEach(func(idx []int) {
		i, j := idx[0], idx[1]
		acc, wsum := kernel[0]*tmp.At2(i, j), kernel[0]
		for r := 1; r <= radius; r++ {
			if i-r >= 0 {
				acc += kernel[r] * tmp.At2(i-r, j)
				wsum += kernel[r]
			}
			if i+r < ny {
				acc += kernel[r] * tmp.At2(i+r, j)
				wsum += kernel[r]
			}
		}
		out.Set2(i, j, acc/wsum)
		flops += 4*radius + 3
	})
	c.P.Compute(flops)
	return nil
}

// distributed reports whether free dimension d of a is distributed.
func distributed(a *darray.Array, d int) bool {
	_, isStar := a.Dist(d).(dist.Star)
	return !isStar
}

// SmoothSeq is the sequential reference: the same separable convolution on
// a dense row-major image.
func SmoothSeq(img []float64, ny, nx int, kernel []float64) []float64 {
	radius := len(kernel) - 1
	tmp := make([]float64, ny*nx)
	for i := 0; i < ny; i++ {
		for j := 0; j < nx; j++ {
			acc, wsum := kernel[0]*img[i*nx+j], kernel[0]
			for r := 1; r <= radius; r++ {
				if j-r >= 0 {
					acc += kernel[r] * img[i*nx+j-r]
					wsum += kernel[r]
				}
				if j+r < nx {
					acc += kernel[r] * img[i*nx+j+r]
					wsum += kernel[r]
				}
			}
			tmp[i*nx+j] = acc / wsum
		}
	}
	out := make([]float64, ny*nx)
	for i := 0; i < ny; i++ {
		for j := 0; j < nx; j++ {
			acc, wsum := kernel[0]*tmp[i*nx+j], kernel[0]
			for r := 1; r <= radius; r++ {
				if i-r >= 0 {
					acc += kernel[r] * tmp[(i-r)*nx+j]
					wsum += kernel[r]
				}
				if i+r < ny {
					acc += kernel[r] * tmp[(i+r)*nx+j]
					wsum += kernel[r]
				}
			}
			out[i*nx+j] = acc / wsum
		}
	}
	return out
}

// Binomial returns the half-kernel of the binomial filter of the given
// radius (radius 1: [2 1]/4 — the classic 1-2-1 smoother).
func Binomial(radius int) []float64 {
	// Full row of Pascal's triangle of order 2*radius.
	n := 2 * radius
	row := make([]float64, n+1)
	row[0] = 1
	for i := 1; i <= n; i++ {
		for j := i; j > 0; j-- {
			row[j] += row[j-1]
		}
	}
	total := 0.0
	for _, v := range row {
		total += v
	}
	half := make([]float64, radius+1)
	for r := 0; r <= radius; r++ {
		half[r] = row[radius+r] / total
	}
	return half
}

// Roughness returns the mean absolute difference between horizontally and
// vertically adjacent pixels — a simple sharpness measure the tests and
// example use.
func Roughness(img []float64, ny, nx int) float64 {
	sum, cnt := 0.0, 0
	for i := 0; i < ny; i++ {
		for j := 0; j < nx; j++ {
			if j+1 < nx {
				d := img[i*nx+j] - img[i*nx+j+1]
				if d < 0 {
					d = -d
				}
				sum += d
				cnt++
			}
			if i+1 < ny {
				d := img[i*nx+j] - img[(i+1)*nx+j]
				if d < 0 {
					d = -d
				}
				sum += d
				cnt++
			}
		}
	}
	return sum / float64(cnt)
}
