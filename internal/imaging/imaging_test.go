package imaging

import (
	"math"
	"testing"
	"testing/quick"

	"repro/internal/darray"
	"repro/internal/dist"
	"repro/internal/kf"
	"repro/internal/machine"
	"repro/internal/topology"
)

// smoothOn runs the distributed filter and returns the gathered output.
func smoothOn(t *testing.T, img []float64, ny, nx, px, py int, kernel []float64) []float64 {
	t.Helper()
	radius := len(kernel) - 1
	m := machine.New(px*py, machine.ZeroComm())
	g := topology.New(px, py)
	var flat []float64
	err := kf.Exec(m, g, func(c *kf.Ctx) error {
		spec := darray.Spec{
			Extents: []int{ny, nx},
			Dists:   []dist.Dist{dist.Block{}, dist.Block{}},
			Halo:    []int{radius, radius},
		}
		in := c.NewArray(spec)
		out := c.NewArray(spec)
		in.Fill(func(idx []int) float64 { return img[idx[0]*nx+idx[1]] })
		out.Zero()
		if err := Smooth(c, in, out, kernel); err != nil {
			return err
		}
		o := out.GatherTo(c.NextScope(), 0)
		if c.GridIndex() == 0 {
			flat = o
		}
		return nil
	})
	if err != nil {
		t.Fatal(err)
	}
	return flat
}

func checkerboard(ny, nx int) []float64 {
	img := make([]float64, ny*nx)
	for i := 0; i < ny; i++ {
		for j := 0; j < nx; j++ {
			if (i/4+j/4)%2 == 0 {
				img[i*nx+j] = 1
			}
		}
	}
	return img
}

func TestIdentityKernelIsNoOp(t *testing.T) {
	const ny, nx = 16, 16
	img := checkerboard(ny, nx)
	got := smoothOn(t, img, ny, nx, 2, 2, []float64{1})
	for i := range img {
		if got[i] != img[i] {
			t.Fatalf("identity kernel changed pixel %d: %v -> %v", i, img[i], got[i])
		}
	}
}

func TestParallelMatchesSequential(t *testing.T) {
	const ny, nx = 24, 20
	img := checkerboard(ny, nx)
	want := SmoothSeq(img, ny, nx, Binomial(2))
	for _, shape := range [][2]int{{1, 1}, {2, 2}, {4, 2}} {
		got := smoothOn(t, img, ny, nx, shape[0], shape[1], Binomial(2))
		for i := range want {
			if math.Abs(got[i]-want[i]) > 1e-12 {
				t.Fatalf("grid %v: pixel %d differs: %v vs %v", shape, i, got[i], want[i])
			}
		}
	}
}

func TestSmoothingReducesRoughness(t *testing.T) {
	const ny, nx = 32, 32
	img := checkerboard(ny, nx)
	before := Roughness(img, ny, nx)
	out := smoothOn(t, img, ny, nx, 2, 2, Binomial(1))
	after := Roughness(out, ny, nx)
	if after >= before {
		t.Errorf("roughness %v -> %v; smoothing should reduce it", before, after)
	}
}

func TestConstantImageIsFixedPoint(t *testing.T) {
	// Renormalized edges keep flat images exactly flat.
	f := func(vRaw uint8) bool {
		const ny, nx = 12, 12
		v := float64(vRaw)
		img := make([]float64, ny*nx)
		for i := range img {
			img[i] = v
		}
		out := SmoothSeq(img, ny, nx, Binomial(2))
		for i := range out {
			if math.Abs(out[i]-v) > 1e-12 {
				return false
			}
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 20}); err != nil {
		t.Fatal(err)
	}
}

func TestBinomialKernels(t *testing.T) {
	k1 := Binomial(1) // 1-2-1 / 4: half = [0.5, 0.25]
	if math.Abs(k1[0]-0.5) > 1e-12 || math.Abs(k1[1]-0.25) > 1e-12 {
		t.Errorf("Binomial(1) = %v", k1)
	}
	k2 := Binomial(2) // 1-4-6-4-1 / 16: half = [6/16, 4/16, 1/16]
	if math.Abs(k2[0]-6.0/16) > 1e-12 || math.Abs(k2[1]-4.0/16) > 1e-12 || math.Abs(k2[2]-1.0/16) > 1e-12 {
		t.Errorf("Binomial(2) = %v", k2)
	}
}

func TestSmoothRejectsBadShapes(t *testing.T) {
	m := machine.New(1, machine.ZeroComm())
	g := topology.New1D(1)
	err := kf.Exec(m, g, func(c *kf.Ctx) error {
		a := c.NewArray(darray.Spec{
			Extents: []int{8, 8},
			Dists:   []dist.Dist{dist.Star{}, dist.Block{}},
			Halo:    []int{0, 1},
		})
		b := c.NewArray(darray.Spec{
			Extents: []int{8, 10},
			Dists:   []dist.Dist{dist.Star{}, dist.Block{}},
			Halo:    []int{0, 1},
		})
		a.Zero()
		b.Zero()
		if err := Smooth(c, a, b, Binomial(1)); err == nil {
			t.Error("mismatched extents accepted")
		}
		return nil
	})
	if err != nil {
		t.Fatal(err)
	}
}
