// Package report renders the experiment harness's tables and series as
// fixed-width text, in the style of the tables a paper's evaluation section
// would print. It has no knowledge of the experiments themselves.
package report

import (
	"fmt"
	"strings"
)

// Table accumulates rows of cells under a header and renders them with
// fixed-width columns.
type Table struct {
	title  string
	header []string
	rows   [][]string
	notes  []string
}

// NewTable returns a table with the given title and column header.
func NewTable(title string, header ...string) *Table {
	return &Table{title: title, header: header}
}

// AddRow appends a row; cells are formatted with %v.
func (t *Table) AddRow(cells ...interface{}) {
	row := make([]string, len(cells))
	for i, c := range cells {
		switch v := c.(type) {
		case float64:
			row[i] = formatFloat(v)
		default:
			row[i] = fmt.Sprint(v)
		}
	}
	t.rows = append(t.rows, row)
}

// AddNote appends a free-text footnote rendered under the table.
func (t *Table) AddNote(format string, args ...interface{}) {
	t.notes = append(t.notes, fmt.Sprintf(format, args...))
}

// formatFloat renders measurement values compactly: scientific notation for
// very small or large magnitudes, fixed point otherwise.
func formatFloat(v float64) string {
	av := v
	if av < 0 {
		av = -av
	}
	switch {
	case v == 0:
		return "0"
	case av >= 1e5 || av < 1e-3:
		return fmt.Sprintf("%.3e", v)
	case av >= 100:
		return fmt.Sprintf("%.1f", v)
	default:
		return fmt.Sprintf("%.4g", v)
	}
}

// String renders the table.
func (t *Table) String() string {
	widths := make([]int, len(t.header))
	for i, h := range t.header {
		widths[i] = len(h)
	}
	for _, row := range t.rows {
		for i, c := range row {
			if i < len(widths) && len(c) > widths[i] {
				widths[i] = len(c)
			}
		}
	}
	var sb strings.Builder
	if t.title != "" {
		sb.WriteString(t.title)
		sb.WriteString("\n")
	}
	line := func(cells []string) {
		for i, c := range cells {
			if i > 0 {
				sb.WriteString("  ")
			}
			fmt.Fprintf(&sb, "%-*s", widths[i], c)
		}
		sb.WriteString("\n")
	}
	line(t.header)
	total := 0
	for _, w := range widths {
		total += w
	}
	sb.WriteString(strings.Repeat("-", total+2*(len(widths)-1)))
	sb.WriteString("\n")
	for _, row := range t.rows {
		line(row)
	}
	for _, n := range t.notes {
		sb.WriteString("note: ")
		sb.WriteString(n)
		sb.WriteString("\n")
	}
	return sb.String()
}

// Series renders a labelled sequence of values (one figure series) on one
// line, for residual histories and sweeps.
func Series(label string, values []float64) string {
	var sb strings.Builder
	sb.WriteString(label)
	sb.WriteString(":")
	for _, v := range values {
		sb.WriteString(" ")
		sb.WriteString(formatFloat(v))
	}
	sb.WriteString("\n")
	return sb.String()
}
