package report

import (
	"strings"
	"testing"
)

func TestTableAlignsColumns(t *testing.T) {
	tbl := NewTable("demo", "name", "value")
	tbl.AddRow("short", 1)
	tbl.AddRow("a-much-longer-name", 123456.789)
	out := tbl.String()
	lines := strings.Split(strings.TrimRight(out, "\n"), "\n")
	if len(lines) != 4 { // title, header, rule, 2 rows -> 5? title+header+rule+2
		if len(lines) != 5 {
			t.Fatalf("unexpected line count %d:\n%s", len(lines), out)
		}
	}
	if !strings.HasPrefix(lines[0], "demo") {
		t.Errorf("missing title: %q", lines[0])
	}
	// The value column must start at the same offset in every data row.
	header := lines[1]
	col := strings.Index(header, "value")
	for _, row := range lines[3:] {
		if len(row) < col {
			t.Errorf("row shorter than header: %q", row)
		}
	}
}

func TestTableNotes(t *testing.T) {
	tbl := NewTable("", "a")
	tbl.AddRow(1)
	tbl.AddNote("the answer is %d", 42)
	out := tbl.String()
	if !strings.Contains(out, "note: the answer is 42") {
		t.Errorf("missing note:\n%s", out)
	}
}

func TestFloatFormatting(t *testing.T) {
	cases := []struct {
		v    float64
		want string
	}{
		{0, "0"},
		{1234567, "1.235e+06"},
		{0.0000123, "1.230e-05"},
		{3.14159, "3.142"},
		{123.456, "123.5"},
	}
	for _, c := range cases {
		if got := formatFloat(c.v); got != c.want {
			t.Errorf("formatFloat(%v) = %q, want %q", c.v, got, c.want)
		}
	}
}

func TestSeries(t *testing.T) {
	out := Series("residual", []float64{1, 0.5, 0.25})
	if !strings.HasPrefix(out, "residual:") {
		t.Errorf("series %q", out)
	}
	if !strings.Contains(out, "0.5") || !strings.Contains(out, "0.25") {
		t.Errorf("series values missing: %q", out)
	}
}
