package tridiag

import (
	"math"
	"testing"

	"repro/internal/darray"
	"repro/internal/dist"
	"repro/internal/kf"
	"repro/internal/machine"
	"repro/internal/topology"
)

func TestMappingRolesShuffleDisjoint(t *testing.T) {
	// Under the shuffle mapping every processor has at most one tree
	// role, and each level's holders are disjoint from every other
	// level's.
	const k = 4 // p = 16
	seen := map[int]int{}
	for me := 0; me < 16; me++ {
		roles := ShuffleMapping.roles(me, k)
		if len(roles) > 1 {
			t.Errorf("proc %d has %d roles under shuffle", me, len(roles))
		}
		for _, r := range roles {
			seen[me] = r[0]
		}
	}
	// Level s needs 2^(k-s) holders.
	counts := map[int]int{}
	for _, level := range seen {
		counts[level]++
	}
	for s := 1; s <= k-1; s++ {
		if counts[s] != 1<<(k-s) {
			t.Errorf("level %d has %d holders, want %d", s, counts[s], 1<<(k-s))
		}
	}
}

func TestMappingRolesPackedOverlap(t *testing.T) {
	// Under the packed mapping processor 0 serves every tree level.
	const k = 4
	roles := PackedMapping.roles(0, k)
	if len(roles) != k-1 {
		t.Errorf("proc 0 has %d roles under packed, want %d", len(roles), k-1)
	}
	// Processor 2^(k-1)-1 and beyond serve none.
	if len(PackedMapping.roles(1<<(k-1), k)) != 0 {
		t.Errorf("high proc should have no packed roles")
	}
}

func TestMappingNames(t *testing.T) {
	if ShuffleMapping.String() != "shuffle/unshuffle" || PackedMapping.String() != "left-packed" {
		t.Errorf("names: %q, %q", ShuffleMapping, PackedMapping)
	}
}

func TestPackedMappingSolvesCorrectly(t *testing.T) {
	// The mapping changes only where work lands, never the numbers.
	const p, n, msys = 8, 64, 5
	b0, a0, c0 := -1.0, 4.0, -1.0
	wants := make([][]float64, msys)
	rhss := make([][]float64, msys)
	for j := 0; j < msys; j++ {
		b := make([]float64, n)
		a := make([]float64, n)
		c := make([]float64, n)
		f := make([]float64, n)
		for i := range a {
			b[i], a[i], c[i] = b0, a0, c0
			f[i] = float64((i*(j+2))%9) - 4
		}
		b[0], c[n-1] = 0, 0
		rhss[j] = f
		wants[j] = SolveSeq(b, a, c, f)
	}
	for _, mapping := range []Mapping{ShuffleMapping, PackedMapping} {
		gots := make([][]float64, msys)
		m := machine.New(p, machine.ZeroComm())
		g := topology.New1D(p)
		err := kf.Exec(m, g, func(ctx *kf.Ctx) error {
			xs := make([]*darray.Array, msys)
			fs := make([]*darray.Array, msys)
			for j := 0; j < msys; j++ {
				fv := rhss[j]
				fa := ctx.NewArray(darray.Spec{Extents: []int{n}, Dists: []dist.Dist{dist.Block{}}})
				fa.Fill(func(idx []int) float64 { return fv[idx[0]] })
				xs[j] = ctx.NewArray(darray.Spec{Extents: []int{n}, Dists: []dist.Dist{dist.Block{}}})
				fs[j] = fa
			}
			if err := MTriCMapped(ctx, xs, fs, b0, a0, c0, mapping); err != nil {
				return err
			}
			for j := 0; j < msys; j++ {
				flat := xs[j].GatherTo(ctx.NextScope(), 0)
				if ctx.P.Rank() == 0 {
					gots[j] = flat
				}
			}
			return nil
		})
		if err != nil {
			t.Fatalf("%v: %v", mapping, err)
		}
		for j := 0; j < msys; j++ {
			for i := range wants[j] {
				if math.Abs(gots[j][i]-wants[j][i]) > 1e-9 {
					t.Fatalf("%v: system %d deviates at %d", mapping, j, i)
				}
			}
		}
	}
}

func TestShuffleBeatsPackedOnPipelines(t *testing.T) {
	// Claim behind Figure 5: the disjoint groups of the shuffle mapping
	// pipeline without contention; the packed mapping's overloaded
	// low-index processors serialize the tree stages.
	const p, n, msys = 8, 128, 16
	elapsed := func(mapping Mapping) float64 {
		m := machine.New(p, machine.IPSC2())
		g := topology.New1D(p)
		err := kf.Exec(m, g, func(ctx *kf.Ctx) error {
			xs := make([]*darray.Array, msys)
			fs := make([]*darray.Array, msys)
			for j := 0; j < msys; j++ {
				jj := j
				fa := ctx.NewArray(darray.Spec{Extents: []int{n}, Dists: []dist.Dist{dist.Block{}}})
				fa.Fill(func(idx []int) float64 { return float64((idx[0] + jj) % 7) })
				xs[j] = ctx.NewArray(darray.Spec{Extents: []int{n}, Dists: []dist.Dist{dist.Block{}}})
				fs[j] = fa
			}
			return MTriCMapped(ctx, xs, fs, -1, 4, -1, mapping)
		})
		if err != nil {
			t.Fatal(err)
		}
		return m.Elapsed()
	}
	tShuffle := elapsed(ShuffleMapping)
	tPacked := elapsed(PackedMapping)
	if tShuffle >= tPacked {
		t.Errorf("shuffle %v >= packed %v; the Figure 5 mapping should win on pipelines",
			tShuffle, tPacked)
	}
}
