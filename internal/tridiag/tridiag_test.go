package tridiag

import (
	"math"
	"testing"
	"testing/quick"

	"repro/internal/darray"
	"repro/internal/dist"
	"repro/internal/kf"
	"repro/internal/machine"
	"repro/internal/topology"
	"repro/internal/trace"
)

// randCoeffs builds a diagonally dominant system of size n.
func randCoeffs(seed uint64, n int) (b, a, c, f []float64) {
	b = make([]float64, n)
	a = make([]float64, n)
	c = make([]float64, n)
	f = make([]float64, n)
	s := seed
	next := func() float64 {
		s += 0x9e3779b97f4a7c15
		z := s
		z = (z ^ (z >> 30)) * 0xbf58476d1ce4e5b9
		z = (z ^ (z >> 27)) * 0x94d049bb133111eb
		z ^= z >> 31
		return float64(z%2000)/1000 - 1
	}
	for i := 0; i < n; i++ {
		b[i], c[i] = next(), next()
		a[i] = 4 + math.Abs(next())
		f[i] = 10 * next()
	}
	b[0], c[n-1] = 0, 0
	return
}

// spread constructs block-distributed 1-D arrays holding the given global
// vectors.
func spread(c *kf.Ctx, vecs ...[]float64) []*darray.Array {
	out := make([]*darray.Array, len(vecs))
	for k, v := range vecs {
		a := c.NewArray(darray.Spec{Extents: []int{len(v)}, Dists: []dist.Dist{dist.Block{}}})
		vv := v
		a.Fill(func(idx []int) float64 { return vv[idx[0]] })
		out[k] = a
	}
	return out
}

func solveOn(t *testing.T, procs, n int, seed uint64) (got, want []float64) {
	t.Helper()
	b, a, c, f := randCoeffs(seed, n)
	want = SolveSeq(b, a, c, f)
	m := machine.New(procs, machine.ZeroComm())
	g := topology.New1D(procs)
	err := kf.Exec(m, g, func(ctx *kf.Ctx) error {
		arrs := spread(ctx, nil6(n), f, b, a, c)
		x, fd, bd, ad, cd := arrs[0], arrs[1], arrs[2], arrs[3], arrs[4]
		if err := Tri(ctx, x, fd, bd, ad, cd); err != nil {
			return err
		}
		flat := x.GatherTo(ctx.NextScope(), 0)
		if ctx.P.Rank() == 0 {
			got = flat
		}
		return nil
	})
	if err != nil {
		t.Fatal(err)
	}
	return got, want
}

func nil6(n int) []float64 { return make([]float64, n) }

func maxDiff(a, b []float64) float64 {
	worst := 0.0
	for i := range a {
		if d := math.Abs(a[i] - b[i]); d > worst {
			worst = d
		}
	}
	return worst
}

func TestTriMatchesThomasAcrossGridSizes(t *testing.T) {
	for _, procs := range []int{1, 2, 4, 8, 16} {
		got, want := solveOn(t, procs, 64, uint64(procs)*7+3)
		if d := maxDiff(got, want); d > 1e-9 {
			t.Errorf("p=%d: max diff %v", procs, d)
		}
	}
}

func TestTriUnevenBlocks(t *testing.T) {
	// n not divisible by p: blocks of size 12 or 13.
	got, want := solveOn(t, 4, 50, 99)
	if d := maxDiff(got, want); d > 1e-9 {
		t.Errorf("max diff %v", d)
	}
}

func TestTriRandomProperty(t *testing.T) {
	f := func(seed uint64, nRaw uint8) bool {
		n := 16 + int(nRaw%64)
		got, want := solveOn(t, 8, n, seed)
		return maxDiff(got, want) < 1e-8
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 25}); err != nil {
		t.Fatal(err)
	}
}

func TestTriRejectsNonPowerOfTwo(t *testing.T) {
	m := machine.New(3, machine.ZeroComm())
	g := topology.New1D(3)
	err := kf.Exec(m, g, func(ctx *kf.Ctx) error {
		b, a, c, f := randCoeffs(1, 12)
		arrs := spread(ctx, nil6(12), f, b, a, c)
		return Tri(ctx, arrs[0], arrs[1], arrs[2], arrs[3], arrs[4])
	})
	if err == nil {
		t.Fatal("expected error for p=3")
	}
}

func TestTriRejectsTinyBlocks(t *testing.T) {
	m := machine.New(8, machine.ZeroComm())
	g := topology.New1D(8)
	err := kf.Exec(m, g, func(ctx *kf.Ctx) error {
		b, a, c, f := randCoeffs(1, 8) // one row per processor
		arrs := spread(ctx, nil6(8), f, b, a, c)
		return Tri(ctx, arrs[0], arrs[1], arrs[2], arrs[3], arrs[4])
	})
	if err == nil {
		t.Fatal("expected error for 1-row blocks")
	}
}

func TestSolveGatherAnyGrid(t *testing.T) {
	for _, procs := range []int{1, 3, 5, 7} {
		b, a, c, f := randCoeffs(uint64(procs), 23)
		want := SolveSeq(b, a, c, f)
		var got []float64
		m := machine.New(procs, machine.ZeroComm())
		g := topology.New1D(procs)
		err := kf.Exec(m, g, func(ctx *kf.Ctx) error {
			arrs := spread(ctx, nil6(23), f, b, a, c)
			if err := SolveGather(ctx, arrs[0], arrs[1], arrs[2], arrs[3], arrs[4]); err != nil {
				return err
			}
			flat := arrs[0].GatherTo(ctx.NextScope(), 0)
			if ctx.P.Rank() == 0 {
				got = flat
			}
			return nil
		})
		if err != nil {
			t.Fatal(err)
		}
		if d := maxDiff(got, want); d > 1e-9 {
			t.Errorf("p=%d: max diff %v", procs, d)
		}
	}
}

func TestTriCConstantCoefficients(t *testing.T) {
	const n = 32
	b0, a0, c0 := -1.0, 4.0, -1.0
	b := make([]float64, n)
	a := make([]float64, n)
	c := make([]float64, n)
	f := make([]float64, n)
	for i := range a {
		b[i], a[i], c[i] = b0, a0, c0
		f[i] = float64(i%5) + 1
	}
	b[0], c[n-1] = 0, 0
	want := SolveSeq(b, a, c, f)
	var got []float64
	m := machine.New(4, machine.ZeroComm())
	g := topology.New1D(4)
	err := kf.Exec(m, g, func(ctx *kf.Ctx) error {
		arrs := spread(ctx, nil6(n), f)
		if err := TriC(ctx, arrs[0], arrs[1], b0, a0, c0); err != nil {
			return err
		}
		flat := arrs[0].GatherTo(ctx.NextScope(), 0)
		if ctx.P.Rank() == 0 {
			got = flat
		}
		return nil
	})
	if err != nil {
		t.Fatal(err)
	}
	if d := maxDiff(got, want); d > 1e-9 {
		t.Errorf("max diff %v", d)
	}
}

func TestMTriCSolvesManySystems(t *testing.T) {
	const n, msys = 32, 6
	b0, a0, c0 := -1.0, 4.2, -0.9
	// Sequential references.
	wants := make([][]float64, msys)
	rhss := make([][]float64, msys)
	for j := 0; j < msys; j++ {
		b := make([]float64, n)
		a := make([]float64, n)
		c := make([]float64, n)
		f := make([]float64, n)
		for i := range a {
			b[i], a[i], c[i] = b0, a0, c0
			f[i] = float64((i*j)%7) - 2
		}
		b[0], c[n-1] = 0, 0
		rhss[j] = f
		wants[j] = SolveSeq(b, a, c, f)
	}
	gots := make([][]float64, msys)
	m := machine.New(8, machine.ZeroComm())
	g := topology.New1D(8)
	err := kf.Exec(m, g, func(ctx *kf.Ctx) error {
		xs := make([]*darray.Array, msys)
		fs := make([]*darray.Array, msys)
		for j := 0; j < msys; j++ {
			arrs := spread(ctx, nil6(n), rhss[j])
			xs[j], fs[j] = arrs[0], arrs[1]
		}
		if err := MTriC(ctx, xs, fs, b0, a0, c0); err != nil {
			return err
		}
		for j := 0; j < msys; j++ {
			flat := xs[j].GatherTo(ctx.NextScope(), 0)
			if ctx.P.Rank() == 0 {
				gots[j] = flat
			}
		}
		return nil
	})
	if err != nil {
		t.Fatal(err)
	}
	for j := 0; j < msys; j++ {
		if d := maxDiff(gots[j], wants[j]); d > 1e-9 {
			t.Errorf("system %d: max diff %v", j, d)
		}
	}
}

func TestMTriVariableCoefficients(t *testing.T) {
	const n, msys = 24, 3
	wants := make([][]float64, msys)
	coeffs := make([][4][]float64, msys)
	for j := 0; j < msys; j++ {
		b, a, c, f := randCoeffs(uint64(j)*31+5, n)
		coeffs[j] = [4][]float64{b, a, c, f}
		wants[j] = SolveSeq(b, a, c, f)
	}
	gots := make([][]float64, msys)
	m := machine.New(4, machine.ZeroComm())
	g := topology.New1D(4)
	err := kf.Exec(m, g, func(ctx *kf.Ctx) error {
		xs := make([]*darray.Array, msys)
		fs := make([]*darray.Array, msys)
		bs := make([]*darray.Array, msys)
		as := make([]*darray.Array, msys)
		cs := make([]*darray.Array, msys)
		for j := 0; j < msys; j++ {
			arrs := spread(ctx, nil6(n), coeffs[j][3], coeffs[j][0], coeffs[j][1], coeffs[j][2])
			xs[j], fs[j], bs[j], as[j], cs[j] = arrs[0], arrs[1], arrs[2], arrs[3], arrs[4]
		}
		if err := MTri(ctx, xs, fs, bs, as, cs); err != nil {
			return err
		}
		for j := 0; j < msys; j++ {
			flat := xs[j].GatherTo(ctx.NextScope(), 0)
			if ctx.P.Rank() == 0 {
				gots[j] = flat
			}
		}
		return nil
	})
	if err != nil {
		t.Fatal(err)
	}
	for j := 0; j < msys; j++ {
		if d := maxDiff(gots[j], wants[j]); d > 1e-9 {
			t.Errorf("system %d: max diff %v", j, d)
		}
	}
}

func TestDataflowActiveCountsMatchFigure3(t *testing.T) {
	// Figure 3: reduction halves the active processors each step; the
	// substitution phase doubles them.
	const procs, n = 8, 64
	m := machine.New(procs, machine.ZeroComm())
	rec := trace.NewRecorder(procs)
	m.SetSink(rec)
	g := topology.New1D(procs)
	b, a, c, f := randCoeffs(5, n)
	err := kf.Exec(m, g, func(ctx *kf.Ctx) error {
		arrs := spread(ctx, nil6(n), f, b, a, c)
		return TriTraced(ctx, arrs[0], arrs[1], arrs[2], arrs[3], arrs[4])
	})
	if err != nil {
		t.Fatal(err)
	}
	steps, active := rec.StepActivity("step:")
	counts := trace.ActiveCounts(active)
	// m=1, k=3: steps 0..6. Expected active processors:
	// step 0: 8 (local reduce), 1: 4, 2: 2, 3: 1 (final solve),
	// 4: 2, 5: 4 (tree substitution), 6: 8 (local substitution).
	want := []int{8, 4, 2, 1, 2, 4, 8}
	if len(steps) != len(want) {
		t.Fatalf("steps %v, counts %v", steps, counts)
	}
	for i := range want {
		if counts[i] != want[i] {
			t.Errorf("step %d: %d active, want %d\n%s", steps[i], counts[i], want[i],
				trace.ActivityTable(steps, active))
		}
	}
}

func TestPipelineKeepsGroupsBusy(t *testing.T) {
	// Figure 5 / claim C4: with many systems the disjoint processor
	// groups overlap in time, so mean utilization under the pipelined
	// solver beats solving the systems one after another.
	const procs, n, msys = 8, 128, 16
	elapsedFor := func(pipelined bool) (float64, float64) {
		m := machine.New(procs, machine.IPSC2())
		rec := trace.NewRecorder(procs)
		m.SetSink(rec)
		g := topology.New1D(procs)
		err := kf.Exec(m, g, func(ctx *kf.Ctx) error {
			xs := make([]*darray.Array, msys)
			fs := make([]*darray.Array, msys)
			for j := 0; j < msys; j++ {
				fvec := make([]float64, n)
				for i := range fvec {
					fvec[i] = float64((i + j) % 9)
				}
				arrs := spread(ctx, nil6(n), fvec)
				xs[j], fs[j] = arrs[0], arrs[1]
			}
			if pipelined {
				return MTriC(ctx, xs, fs, -1, 4, -1)
			}
			for j := 0; j < msys; j++ {
				if err := TriC(ctx, xs[j], fs[j], -1, 4, -1); err != nil {
					return err
				}
			}
			return nil
		})
		if err != nil {
			t.Fatal(err)
		}
		return m.Elapsed(), rec.MeanUtilization(m.Elapsed())
	}
	tPipe, _ := elapsedFor(true)
	tSeq, _ := elapsedFor(false)
	if tPipe >= tSeq {
		t.Errorf("pipelined %v >= one-at-a-time %v", tPipe, tSeq)
	}
}
