// Package tridiag implements the paper's Section 3: parallel solution of
// tridiagonal systems on a loosely coupled architecture by the
// substructured ("spike"-variant) divide and conquer algorithm, both one
// system at a time (Listing 4) and pipelined over many systems
// (Listing 6), plus the gather-to-one-processor baseline and the sequential
// reference used by the experiments.
//
// The algorithm: each processor owns a block of rows. A local boundary
// reduction (kernels.Reduce) eliminates the block's interior, leaving two
// boundary rows per processor — the highlighted rows of Figure 1 — which
// form a tridiagonal system of size 2p. log2(p) tree steps follow: at each
// step the boundary rows are mailed pairwise to half as many processors,
// each of which reduces four adjacent rows to two (Figure 2), until a
// four-row system remains and is solved by the Thomas algorithm. The
// substitution phase retraces the tree: solved boundary pairs flow down,
// each processor back-substituting its saved reduced block (Figure 4).
// Active processors halve each reduction step and double each substitution
// step — the dataflow graph of Figure 3.
//
// The step-to-processor assignment is a Mapping; the default is the
// shuffle/unshuffle mapping of Figure 5, whose disjoint processor groups
// let m systems pipeline through the tree like a systolic array — exactly
// why the paper calls the mapping "advantageous when there are multiple
// tridiagonal systems to be solved". PackedMapping is the naive
// alternative the ablation experiment compares against.
package tridiag

import (
	"fmt"

	"repro/internal/kernels"
	"repro/internal/machine"
	"repro/internal/topology"
)

// localSystem is one tridiagonal system's per-processor state: the owned
// block of coefficient rows (modified in place by the reduction) and the
// solution output.
type localSystem struct {
	b, a, c, f []float64
	x          []float64
}

// treeBlock is a saved four-row reduced block awaiting substitution.
type treeBlock struct {
	b, a, c, f [4]float64
}

// Message parts within a (system, level) scope.
const (
	partReduce = 1 // boundary rows flowing up the tree
	partSubst  = 2 // solved pairs flowing down the tree
)

// solverScratch pools the solver's per-call state on one simulated
// processor — line-solve coefficient slices, the systems slice, the saved
// reduced blocks and the tree-role lists — registered via Proc.Scratch so
// iterative drivers (ADI sweeps, multigrid line smoothers) reuse it across
// thousands of line solves instead of reallocating per system.
type solverScratch struct {
	bufs    [][]float64
	systems []localSystem
	saved   map[[2]int]*treeBlock
	blocks  []*treeBlock
	roles   map[[3]int][][2]int // (mapping, grid index, k) -> cached role list
}

// scratchKey is the Proc.Scratch registration key of this package.
type scratchKey struct{}

func scratchOf(p *machine.Proc) *solverScratch {
	return p.Scratch(scratchKey{}, func() any {
		return &solverScratch{
			saved:  make(map[[2]int]*treeBlock),
			bufs:   make([][]float64, 0, 16),
			blocks: make([]*treeBlock, 0, 8),
		}
	}).(*solverScratch)
}

// take returns a float64 slice of length n with unspecified contents,
// reusing pooled capacity when possible; give returns one to the pool.
func (s *solverScratch) take(n int) []float64 {
	for i := len(s.bufs) - 1; i >= 0; i-- {
		if cap(s.bufs[i]) >= n {
			b := s.bufs[i]
			last := len(s.bufs) - 1
			s.bufs[i] = s.bufs[last]
			s.bufs[last] = nil
			s.bufs = s.bufs[:last]
			return b[:n]
		}
	}
	return make([]float64, n)
}

func (s *solverScratch) give(b []float64) {
	if cap(b) > 0 {
		s.bufs = append(s.bufs, b)
	}
}

func (s *solverScratch) takeBlock() *treeBlock {
	if k := len(s.blocks); k > 0 {
		tb := s.blocks[k-1]
		s.blocks = s.blocks[:k-1]
		return tb
	}
	return &treeBlock{}
}

func (s *solverScratch) giveBlock(tb *treeBlock) { s.blocks = append(s.blocks, tb) }

// rolesOf returns the (cached) tree duties of grid index me.
func (s *solverScratch) rolesOf(mapping Mapping, me, k int) [][2]int {
	key := [3]int{int(mapping), me, k}
	if r, ok := s.roles[key]; ok {
		return r
	}
	if s.roles == nil {
		s.roles = make(map[[3]int][][2]int)
	}
	r := mapping.roles(me, k)
	s.roles[key] = r
	return r
}

// takeSystems returns a reusable localSystem slice of length n. The slice
// is checked out of the scratch (nested solves fall back to a fresh
// allocation) and returned by releaseSystems.
func takeSystems(p *machine.Proc, n int) []localSystem {
	s := scratchOf(p)
	sys := s.systems
	s.systems = nil
	if cap(sys) < n {
		sys = make([]localSystem, n)
	}
	return sys[:n]
}

// releaseSystems returns every line-solve slice and the systems slice
// itself to the processor's pool. Call it only after the solutions have
// been copied out of the systems.
func releaseSystems(p *machine.Proc, systems []localSystem) {
	s := scratchOf(p)
	for j := range systems {
		sys := &systems[j]
		s.give(sys.b)
		s.give(sys.a)
		s.give(sys.c)
		s.give(sys.f)
		s.give(sys.x)
		systems[j] = localSystem{}
	}
	s.systems = systems[:0]
}

// log2Exact returns log2(p) for exact powers of two and ok=false otherwise.
func log2Exact(p int) (int, bool) {
	if p <= 0 || p&(p-1) != 0 {
		return 0, false
	}
	k := 0
	for v := p; v > 1; v >>= 1 {
		k++
	}
	return k, true
}

// solvePipeline runs the substructured solver for all systems through the
// mapping's schedule: system j enters tree level s at step j+s, is
// final-solved at step j+k, and is substituted at level s at step j+2k-s.
// With one system this is Listing 4; with many it is Listing 6's pipeline.
// Every processor of g must call it with the same number of systems; marks
// optionally annotate the trace for the Figure 3/5 generators.
func solvePipeline(p *machine.Proc, g *topology.Grid, sc machine.Scope, systems []localSystem, marks bool, mapping Mapping) error {
	P := g.Size()
	me, ok := g.Index(p.Rank())
	if !ok {
		return fmt.Errorf("tridiag: processor %d not in solver grid", p.Rank())
	}
	m := len(systems)
	if P == 1 {
		for j := range systems {
			s := &systems[j]
			kernels.Thomas(p, s.b, s.a, s.c, s.f, s.x)
		}
		return nil
	}
	k, pow2 := log2Exact(P)
	if !pow2 {
		return fmt.Errorf("tridiag: substructured solver needs a power-of-two grid, got %d (use SolveGather)", P)
	}
	for j := range systems {
		if len(systems[j].a) < 2 {
			return fmt.Errorf("tridiag: local block of system %d has %d rows; need at least 2 (use SolveGather)", j, len(systems[j].a))
		}
	}

	scr := scratchOf(p)
	roles := scr.rolesOf(mapping, me, k)
	// saved maps (level, system) -> reduced block. The map lives in the
	// processor's scratch: every entry is deleted during substitution, so
	// it is empty between calls (cleared defensively in case an aborted
	// run left entries behind).
	saved := scr.saved
	clear(saved)
	scopeOf := func(j, level int) machine.Scope { return sc.Child(level, j) }

	// sendUp mails a block's two boundary rows to the level above, in a
	// pooled buffer released by the receiver.
	sendUp := func(j, level, blk int, b0, a0, c0, f0, b1, a1, c1, f1 float64) {
		dst := mapping.holder(level+1, blk/2, k)
		buf := p.AcquireBuf(9)
		buf[0] = float64(blk % 2)
		buf[1], buf[2], buf[3], buf[4] = b0, a0, c0, f0
		buf[5], buf[6], buf[7], buf[8] = b1, a1, c1, f1
		p.SendOwned(g.RankAt(dst), scopeOf(j, level+1).Tag(partReduce), buf)
	}

	// recvRows assembles the four rows a holder at the given level works
	// on: two boundary rows from each of its two children.
	recvRows := func(j, level, blk int) (rows [4][4]float64) {
		for n := 0; n < 2; n++ {
			src := mapping.holder(level-1, 2*blk+n, k)
			buf := p.Recv(g.RankAt(src), scopeOf(j, level).Tag(partReduce))
			half := int(buf[0])
			copy(rows[2*half][:], buf[1:5])
			copy(rows[2*half+1][:], buf[5:9])
			p.ReleaseBuf(buf)
		}
		return rows
	}

	// sendDown distributes a solved block's four values to its two
	// children one level below, each of which needs its (xFirst, xLast).
	sendDown := func(j, level, blk int, x4 [4]float64) {
		for n := 0; n < 2; n++ {
			child := mapping.holder(level-1, 2*blk+n, k)
			buf := p.AcquireBuf(2)
			buf[0], buf[1] = x4[2*n], x4[2*n+1]
			p.SendOwned(g.RankAt(child), scopeOf(j, level-1).Tag(partSubst), buf)
		}
	}

	// recvPair receives this block's solved boundary values from the
	// holder one level up.
	recvPair := func(j, level, blk int) (xFirst, xLast float64) {
		parent := mapping.holder(level+1, blk/2, k)
		buf := p.Recv(g.RankAt(parent), scopeOf(j, level).Tag(partSubst))
		xFirst, xLast = buf[0], buf[1]
		p.ReleaseBuf(buf)
		return xFirst, xLast
	}

	totalSteps := m + 2*k
	for t := 0; t < totalSteps; t++ {
		if marks {
			p.Mark(fmt.Sprintf("step:%d", t))
		}
		// 1. Local boundary reduction of system t (all processors).
		if t < m {
			s := &systems[t]
			kernels.Reduce(p, s.b, s.a, s.c, s.f)
			n := len(s.a)
			sendUp(t, 0, me, s.b[0], s.a[0], s.c[0], s.f[0],
				s.b[n-1], s.a[n-1], s.c[n-1], s.f[n-1])
		}
		// 2. Tree reduction at this processor's roles.
		for _, role := range roles {
			level, blk := role[0], role[1]
			if j := t - level; j >= 0 && j < m {
				rows := recvRows(j, level, blk)
				tb := scr.takeBlock()
				for r := 0; r < 4; r++ {
					tb.b[r], tb.a[r], tb.c[r], tb.f[r] = rows[r][0], rows[r][1], rows[r][2], rows[r][3]
				}
				kernels.Reduce(p, tb.b[:], tb.a[:], tb.c[:], tb.f[:])
				saved[[2]int{level, j}] = tb
				sendUp(j, level, blk, tb.b[0], tb.a[0], tb.c[0], tb.f[0],
					tb.b[3], tb.a[3], tb.c[3], tb.f[3])
			}
		}
		// 3. Final four-row solve (grid index 0) and first send-down.
		if me == 0 {
			if j := t - k; j >= 0 && j < m {
				rows := recvRows(j, k, 0)
				var b4, a4, c4, f4, x4 [4]float64
				for r := 0; r < 4; r++ {
					b4[r], a4[r], c4[r], f4[r] = rows[r][0], rows[r][1], rows[r][2], rows[r][3]
				}
				kernels.Thomas(p, b4[:], a4[:], c4[:], f4[:], x4[:])
				sendDown(j, k, 0, x4)
			}
		}
		// 4. Tree substitution at this processor's roles (innermost
		// level first: deeper levels substitute earlier systems).
		for r := len(roles) - 1; r >= 0; r-- {
			level, blk := roles[r][0], roles[r][1]
			if j := t - (2*k - level); j >= 0 && j < m {
				tb := saved[[2]int{level, j}]
				delete(saved, [2]int{level, j})
				xF, xL := recvPair(j, level, blk)
				var x4 [4]float64
				kernels.BackSubstitute(p, tb.b[:], tb.a[:], tb.c[:], tb.f[:], xF, xL, x4[:])
				sendDown(j, level, blk, x4)
				scr.giveBlock(tb)
			}
		}
		// 5. Local back-substitution of system t-2k (all processors).
		if j := t - 2*k; j >= 0 && j < m {
			s := &systems[j]
			xF, xL := recvPair(j, 0, me)
			kernels.BackSubstitute(p, s.b, s.a, s.c, s.f, xF, xL, s.x)
		}
	}
	return nil
}
