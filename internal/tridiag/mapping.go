package tridiag

// Mapping selects how the tree levels of the substructured algorithm's
// dataflow graph (Figure 3) are assigned to processors — the paper's
// "various ways of mapping this data flow graph onto a multiprocessor
// architecture".
type Mapping int

const (
	// ShuffleMapping is the paper's Figure 5 choice: tree level s lives
	// on the 2^(k-s) processors with grid indices [2^(k-s)-1,
	// 2^(k-s+1)-1), so the levels occupy DISJOINT processor groups and
	// multiple systems pipeline through them without contention.
	ShuffleMapping Mapping = iota
	// PackedMapping is the naive alternative: tree level s lives on
	// processors [0, 2^(k-s)), so low-numbered processors serve every
	// level. One system runs the same; a pipeline of systems contends
	// for those processors — the ablation experiment A1 quantifies the
	// cost.
	PackedMapping
)

// String names the mapping.
func (m Mapping) String() string {
	switch m {
	case ShuffleMapping:
		return "shuffle/unshuffle"
	case PackedMapping:
		return "left-packed"
	default:
		return "unknown"
	}
}

// holder returns the grid index of the processor holding block j of tree
// level s under the mapping (p = 2^k processors). Level 0 blocks always
// live on their owners and the final solve on index 0.
func (m Mapping) holder(s, j, k int) int {
	switch {
	case s == 0:
		return j
	case s == k:
		return 0
	case m == PackedMapping:
		return j
	default:
		return (1 << (k - s)) - 1 + j
	}
}

// roles lists the (level, block) tree duties of grid index me under the
// mapping, for levels 1..k-1. Under ShuffleMapping every processor has at
// most one role; under PackedMapping processor j serves level s whenever
// j < 2^(k-s).
func (m Mapping) roles(me, k int) [][2]int {
	var out [][2]int
	for s := 1; s <= k-1; s++ {
		count := 1 << (k - s)
		switch m {
		case PackedMapping:
			if me < count {
				out = append(out, [2]int{s, me})
			}
		default:
			base := count - 1
			if me >= base && me < base+count {
				out = append(out, [2]int{s, me - base})
			}
		}
	}
	return out
}
