package tridiag

import (
	"fmt"

	"repro/internal/darray"
	"repro/internal/kernels"
	"repro/internal/kf"
	"repro/internal/machine"
	"repro/internal/topology"
)

// buildLocal copies the owned rows of the 1-D arrays into a localSystem.
// Constant-coefficient systems pass b0/a0/c0 with nil coefficient arrays,
// mirroring the paper's tric. The first and last global rows get zeroed
// outer couplings. The five slices come from the processor's pooled solver
// scratch; callers return them with releaseSystems once the solution has
// been copied out.
func buildLocal(p *machine.Proc, x, f, b, a, cc *darray.Array, b0, a0, c0 float64) localSystem {
	n := f.Extent(0)
	ln := f.LocalSize(0)
	scr := scratchOf(p)
	sys := localSystem{
		b: scr.take(ln),
		a: scr.take(ln),
		c: scr.take(ln),
		f: scr.take(ln),
		x: scr.take(ln),
	}
	f.CopyOwned1(sys.f)
	if b != nil {
		b.CopyOwned1(sys.b)
		a.CopyOwned1(sys.a)
		cc.CopyOwned1(sys.c)
	} else {
		for i := range sys.b {
			sys.b[i], sys.a[i], sys.c[i] = b0, a0, c0
		}
	}
	if lo := f.Lower(0); lo == 0 && ln > 0 {
		sys.b[0] = 0
	}
	if hi := f.Upper(0); hi == n-1 && ln > 0 {
		sys.c[ln-1] = 0
	}
	p.Compute(2 * ln) // copy-in traffic
	return sys
}

// Tri solves the tridiagonal system with coefficient arrays b (lower
// diagonal), a (diagonal), cc (upper diagonal) and right-hand side f,
// writing the solution into x. All five arrays must be one-dimensional,
// block-distributed over the subroutine's grid — the paper's Listing 4
//
//	parsub tri( X, f, b, a, c, n; procs )
//
// Every processor of c.G must call Tri; the grid size must be a power of
// two with at least two rows per processor (otherwise use SolveGather).
func Tri(c *kf.Ctx, x, f, b, a, cc *darray.Array) error {
	return solveOne(c, buildLocal(c.P, x, f, b, a, cc, 0, 0, 0), x)
}

// TriC is the constant-coefficient variant of Tri (the paper's tric, used
// by the ADI driver): every row is (b0, a0, c0).
func TriC(c *kf.Ctx, x, f *darray.Array, b0, a0, c0 float64) error {
	return solveOne(c, buildLocal(c.P, x, f, nil, nil, nil, b0, a0, c0), x)
}

func solveOne(c *kf.Ctx, sys localSystem, x *darray.Array) error {
	systems := takeSystems(c.P, 1)
	systems[0] = sys
	if err := solvePipeline(c.P, c.G, c.NextScope(), systems, false, ShuffleMapping); err != nil {
		return err
	}
	x.SetOwned1(systems[0].x)
	c.P.Compute(len(systems[0].x))
	releaseSystems(c.P, systems)
	return nil
}

// TriTraced is Tri with step marks emitted into the machine's trace sink,
// used by the Figure 3 and Figure 5 generators.
func TriTraced(c *kf.Ctx, x, f, b, a, cc *darray.Array) error {
	systems := takeSystems(c.P, 1)
	systems[0] = buildLocal(c.P, x, f, b, a, cc, 0, 0, 0)
	if err := solvePipeline(c.P, c.G, c.NextScope(), systems, true, ShuffleMapping); err != nil {
		return err
	}
	x.SetOwned1(systems[0].x)
	releaseSystems(c.P, systems)
	return nil
}

// MTriC solves m constant-coefficient tridiagonal systems through the
// pipelined schedule of Listing 6: xs[j] and fs[j] are the solution and
// right-hand side of system j, each a one-dimensional block-distributed
// array (or section) on the subroutine's grid. The systems flow through the
// processor groups of the shuffle/unshuffle mapping, keeping all groups
// busy once the pipeline fills.
func MTriC(c *kf.Ctx, xs, fs []*darray.Array, b0, a0, c0 float64) error {
	return MTriCTraced(c, xs, fs, b0, a0, c0, false)
}

// MTriCTraced is MTriC with optional step marks for the trace analyzers.
func MTriCTraced(c *kf.Ctx, xs, fs []*darray.Array, b0, a0, c0 float64, marks bool) error {
	if len(xs) != len(fs) {
		return fmt.Errorf("tridiag: %d solution arrays for %d right-hand sides", len(xs), len(fs))
	}
	systems := takeSystems(c.P, len(xs))
	for j := range xs {
		systems[j] = buildLocal(c.P, xs[j], fs[j], nil, nil, nil, b0, a0, c0)
	}
	if err := solvePipeline(c.P, c.G, c.NextScope(), systems, marks, ShuffleMapping); err != nil {
		return err
	}
	for j := range xs {
		xs[j].SetOwned1(systems[j].x)
		c.P.Compute(len(systems[j].x))
	}
	releaseSystems(c.P, systems)
	return nil
}

// TriCDirichletOn solves a constant-coefficient tridiagonal system whose
// first and last rows are replaced by identity rows with zero right-hand
// side — the form the multigrid line solves use to pin Dirichlet boundary
// nodes. Grid and scope are explicit so it can run inside doall bodies
// whose context is already bound to the line's grid slice.
func TriCDirichletOn(p *machine.Proc, g *topology.Grid, sc machine.Scope, x, f *darray.Array, b0, a0, c0 float64) error {
	systems := takeSystems(p, 1)
	systems[0] = buildLocal(p, x, f, nil, nil, nil, b0, a0, c0)
	sys := &systems[0]
	n := f.Extent(0)
	if ln := len(sys.a); ln > 0 {
		if f.Lower(0) == 0 {
			sys.b[0], sys.a[0], sys.c[0], sys.f[0] = 0, 1, 0, 0
		}
		if f.Upper(0) == n-1 {
			sys.b[ln-1], sys.a[ln-1], sys.c[ln-1], sys.f[ln-1] = 0, 1, 0, 0
		}
	}
	if err := solvePipeline(p, g, sc, systems, false, ShuffleMapping); err != nil {
		return err
	}
	x.SetOwned1(sys.x)
	p.Compute(len(sys.x))
	releaseSystems(p, systems)
	return nil
}

// MTriCOn is MTriC with an explicit solver grid and message scope, for
// callers whose context spans a larger grid than the solve: the pipelined
// ADI driver runs one MTriCOn per grid slice, concurrently, all derived
// from a single scope (safe because the slices are disjoint).
func MTriCOn(p *machine.Proc, g *topology.Grid, sc machine.Scope, xs, fs []*darray.Array, b0, a0, c0 float64) error {
	if len(xs) != len(fs) {
		return fmt.Errorf("tridiag: %d solution arrays for %d right-hand sides", len(xs), len(fs))
	}
	systems := takeSystems(p, len(xs))
	for j := range xs {
		systems[j] = buildLocal(p, xs[j], fs[j], nil, nil, nil, b0, a0, c0)
	}
	if err := solvePipeline(p, g, sc, systems, false, ShuffleMapping); err != nil {
		return err
	}
	for j := range xs {
		xs[j].SetOwned1(systems[j].x)
		p.Compute(len(systems[j].x))
	}
	releaseSystems(p, systems)
	return nil
}

// MTri is the variable-coefficient pipelined solver: system j has
// coefficient arrays bs[j], as[j], cs[j].
func MTri(c *kf.Ctx, xs, fs, bs, as, cs []*darray.Array) error {
	systems := takeSystems(c.P, len(xs))
	for j := range xs {
		systems[j] = buildLocal(c.P, xs[j], fs[j], bs[j], as[j], cs[j], 0, 0, 0)
	}
	if err := solvePipeline(c.P, c.G, c.NextScope(), systems, false, ShuffleMapping); err != nil {
		return err
	}
	for j := range xs {
		xs[j].SetOwned1(systems[j].x)
		c.P.Compute(len(systems[j].x))
	}
	releaseSystems(c.P, systems)
	return nil
}

// SolveGather is the naive baseline: gather the whole system onto the
// grid's first processor, solve it there with the Thomas algorithm, and
// scatter the solution. It works for any grid size and block shape, and its
// serial bottleneck is what the substructured algorithm exists to avoid.
func SolveGather(c *kf.Ctx, x, f, b, a, cc *darray.Array) error {
	sc := c.NextScope()
	fb := f.GatherTo(sc.Child(0, 0), 0)
	bb := b.GatherTo(sc.Child(1, 0), 0)
	ab := a.GatherTo(sc.Child(2, 0), 0)
	cb := cc.GatherTo(sc.Child(3, 0), 0)
	n := f.Extent(0)
	var xs []float64
	if c.GridIndex() == 0 {
		xs = make([]float64, n)
		kernels.Thomas(c.P, bb, ab, cb, fb, xs)
	}
	// Scatter: processor 0 sends each owner its block.
	sc2 := c.NextScope()
	if c.GridIndex() == 0 {
		for q := 0; q < c.G.Size(); q++ {
			lo, hi := ownerRange(x, q)
			if hi < lo {
				continue
			}
			if q == 0 {
				x.SetOwned1(xs[lo : hi+1])
				continue
			}
			c.P.Send(c.G.RankAt(q), sc2.Tag(uint16(q)), xs[lo:hi+1])
		}
	} else if x.LocalSize(0) > 0 {
		buf := c.P.Recv(c.G.RankAt(0), sc2.Tag(uint16(c.GridIndex())))
		x.SetOwned1(buf)
	}
	return nil
}

// ownerRange returns the inclusive global range of dimension 0 owned by
// grid member q of array a (assuming a block distribution).
func ownerRange(a *darray.Array, q int) (lo, hi int) {
	n := a.Extent(0)
	p := a.Grid().Size()
	return q * n / p, (q+1)*n/p - 1
}

// SolveSeq is the sequential reference: the Thomas algorithm on plain
// slices (the paper's Listing 1 equivalent for tridiagonal systems).
func SolveSeq(b, a, c, f []float64) []float64 {
	x := make([]float64, len(a))
	kernels.Thomas(nil, b, a, c, f, x)
	return x
}

// MTriCMapped is MTriC with an explicit dataflow-to-processor mapping, used
// by the mapping ablation experiment: ShuffleMapping (the paper's Figure 5
// choice) pipelines without contention; PackedMapping makes low-numbered
// processors serve every tree level and stalls the pipeline.
func MTriCMapped(c *kf.Ctx, xs, fs []*darray.Array, b0, a0, c0 float64, mapping Mapping) error {
	if len(xs) != len(fs) {
		return fmt.Errorf("tridiag: %d solution arrays for %d right-hand sides", len(xs), len(fs))
	}
	systems := takeSystems(c.P, len(xs))
	for j := range xs {
		systems[j] = buildLocal(c.P, xs[j], fs[j], nil, nil, nil, b0, a0, c0)
	}
	if err := solvePipeline(c.P, c.G, c.NextScope(), systems, false, mapping); err != nil {
		return err
	}
	for j := range xs {
		xs[j].SetOwned1(systems[j].x)
		c.P.Compute(len(systems[j].x))
	}
	releaseSystems(c.P, systems)
	return nil
}
