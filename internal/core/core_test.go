package core

import (
	"testing"

	"repro/internal/darray"
	"repro/internal/dist"
	"repro/internal/kf"
	"repro/internal/machine"
)

func TestNewSystemDefaults(t *testing.T) {
	sys, err := NewSystem(Config{GridShape: []int{2, 3}})
	if err != nil {
		t.Fatal(err)
	}
	if sys.Machine.Size() != 6 || sys.Procs.Size() != 6 {
		t.Errorf("sizes %d/%d", sys.Machine.Size(), sys.Procs.Size())
	}
	if sys.Machine.Cost() != machine.IPSC2() {
		t.Error("default cost model should be IPSC2")
	}
	if sys.Trace != nil {
		t.Error("trace should be off by default")
	}
}

func TestNewSystemRejectsEmptyShape(t *testing.T) {
	if _, err := NewSystem(Config{}); err == nil {
		t.Fatal("empty shape accepted")
	}
}

func TestRunAndStats(t *testing.T) {
	sys, err := NewSystem(Config{GridShape: []int{4}, Cost: machine.Uniform(), EnableTrace: true})
	if err != nil {
		t.Fatal(err)
	}
	elapsed, err := sys.Run(func(c *kf.Ctx) error {
		a := c.NewArray(darray.Spec{Extents: []int{8}, Dists: []dist.Dist{dist.Block{}}})
		a.Fill(func(idx []int) float64 { return 1 })
		c.P.Compute(10)
		c.Barrier()
		return nil
	})
	if err != nil {
		t.Fatal(err)
	}
	if elapsed < 10 {
		t.Errorf("elapsed %v", elapsed)
	}
	if sys.Stats().Flops != 40 {
		t.Errorf("flops %d, want 40", sys.Stats().Flops)
	}
	if sys.Trace == nil || sys.Trace.BusyTime(0) == 0 {
		t.Error("trace not recording")
	}
}
