package core

import (
	"strings"
	"sync"
	"testing"

	"repro/internal/darray"
	"repro/internal/dist"
	"repro/internal/kf"
	"repro/internal/machine"
)

func TestNewSystemDefaults(t *testing.T) {
	sys, err := NewSystem(Grid(2, 3))
	if err != nil {
		t.Fatal(err)
	}
	if sys.Machine.Size() != 6 || sys.Procs.Size() != 6 {
		t.Errorf("sizes %d/%d", sys.Machine.Size(), sys.Procs.Size())
	}
	if sys.Machine.Cost() != machine.IPSC2() {
		t.Error("default cost model should be IPSC2")
	}
	if sys.Trace != nil {
		t.Error("trace should be off by default")
	}
	if sys.TransportName() != "shared" {
		t.Errorf("default transport %q, want shared", sys.TransportName())
	}
	if _, ok := sys.Machine.Transport().(*machine.SharedTransport); !ok {
		t.Errorf("default transport resolved to %T", sys.Machine.Transport())
	}
	if sys.Nodes() != 1 {
		t.Errorf("shared system reports %d nodes", sys.Nodes())
	}
}

func TestEveryOptionTogether(t *testing.T) {
	sys, err := NewSystem(
		Grid(4, 4),
		Transport("federated"),
		Nodes(4),
		Cost(machine.Balanced()),
		LinkCosts(4, 8, LinkSpec{Src: 0, Dst: 1, Latency: 16, Byte: 32}),
		Trace(),
		DirectScheduling(),
	)
	if err != nil {
		t.Fatal(err)
	}
	if sys.Machine.Size() != 16 {
		t.Errorf("size %d", sys.Machine.Size())
	}
	ft, ok := sys.Machine.Transport().(*machine.FederatedTransport)
	if !ok {
		t.Fatalf("transport %T, want federated", sys.Machine.Transport())
	}
	if ft.Nodes() != 4 || sys.Nodes() != 4 {
		t.Errorf("nodes %d/%d, want 4", ft.Nodes(), sys.Nodes())
	}
	cost := sys.Machine.Cost()
	if cost.FlopTime != machine.Balanced().FlopTime {
		t.Error("Cost option not applied")
	}
	if cost.InterNode == nil {
		t.Fatal("LinkCosts not applied")
	}
	want := machine.Balanced().WithInterNode(4, 8).
		WithLink(0, 1, machine.LinkCost{Latency: 16, Byte: 32})
	if cost.LinkMessageTime(0, 1, 100) != want.LinkMessageTime(0, 1, 100) ||
		cost.LinkMessageTime(1, 0, 100) != want.LinkMessageTime(1, 0, 100) {
		t.Error("LinkCosts overrides not equivalent to WithInterNode+WithLink")
	}
	if sys.Trace == nil {
		t.Error("Trace option not applied")
	}
	if !sys.direct {
		t.Error("DirectScheduling option not applied")
	}
}

func TestOptionErrors(t *testing.T) {
	cases := []struct {
		name string
		opts []Option
		want string // substring of the error
	}{
		{"no grid", nil, "no processor grid"},
		{"empty grid", []Option{Grid()}, "at least one extent"},
		{"bad extent", []Option{Grid(4, 0)}, "positive"},
		{"unknown transport", []Option{Grid(4), Transport("carrier-pigeon")}, "carrier-pigeon"},
		{"empty transport", []Option{Grid(4), Transport("")}, "non-empty"},
		{"nodes on shared", []Option{Grid(4), Nodes(2)}, "does not federate"},
		{"nodes zero", []Option{Grid(4), Nodes(0)}, "at least 1"},
		{"nodes not dividing", []Option{Grid(3), Transport("federated"), Nodes(2)}, "dividing"},
		{"linkcosts on shared", []Option{Grid(4), LinkCosts(4, 8)}, "LinkCosts"},
		{"linkcosts bad multiplier", []Option{Grid(4), Transport("federated"), Nodes(2), LinkCosts(0, 8)}, "positive"},
		{"linkspec out of range", []Option{Grid(4), Transport("federated"), Nodes(2),
			LinkCosts(4, 8, LinkSpec{Src: 7, Dst: 0, Latency: 2, Byte: 2})}, "outside"},
		{"linkspec intra-node", []Option{Grid(4), Transport("federated"), Nodes(2),
			LinkCosts(4, 8, LinkSpec{Src: 1, Dst: 1, Latency: 2, Byte: 2})}, "intra-node"},
		{"linkspec bad multiplier", []Option{Grid(4), Transport("federated"), Nodes(2),
			LinkCosts(4, 8, LinkSpec{Src: 0, Dst: 1, Latency: -1, Byte: 2})}, "positive"},
	}
	for _, tc := range cases {
		_, err := NewSystem(tc.opts...)
		if err == nil {
			t.Errorf("%s: accepted", tc.name)
			continue
		}
		if !strings.Contains(err.Error(), tc.want) {
			t.Errorf("%s: error %q missing %q", tc.name, err, tc.want)
		}
	}
}

func TestCostZeroValueKeepsPreset(t *testing.T) {
	// The explicit zero model still selects the iPSC/2 preset — the
	// Config-era behavior, preserved through CostModel.IsZero.
	sys, err := NewSystem(Grid(2), Cost(machine.CostModel{}))
	if err != nil {
		t.Fatal(err)
	}
	if sys.Machine.Cost() != machine.IPSC2() {
		t.Error("zero cost model should select the IPSC2 preset")
	}
}

func TestLaterOptionsWin(t *testing.T) {
	sys, err := NewSystem(Grid(8), Transport("federated"), Nodes(4), Transport("shared"), Nodes(1))
	if err != nil {
		t.Fatal(err)
	}
	if sys.TransportName() != "shared" {
		t.Errorf("transport %q, want shared (later option wins)", sys.TransportName())
	}
}

func TestPoolKeyIdentityAndDivergence(t *testing.T) {
	base := PoolKey([]int{4, 4}, "federated", 4, "calendar", machine.IPSC2())
	if again := PoolKey([]int{4, 4}, "federated", 4, "calendar", machine.IPSC2()); again != base {
		t.Errorf("equal configurations got distinct keys:\n%s\n%s", base, again)
	}
	// Defaults normalize the way NewSystem applies them: an omitted field
	// and its spelled-out default share a key.
	if PoolKey([]int{2}, "", 0, "", machine.CostModel{}) !=
		PoolKey([]int{2}, "shared", 1, "goroutine", machine.IPSC2()) {
		t.Error("normalized defaults should share a pool key")
	}
	variants := []string{
		PoolKey([]int{4, 4}, "shared", 1, "calendar", machine.IPSC2()),
		PoolKey([]int{16}, "federated", 4, "calendar", machine.IPSC2()),
		PoolKey([]int{4, 4}, "federated", 2, "calendar", machine.IPSC2()),
		PoolKey([]int{4, 4}, "federated", 4, "goroutine", machine.IPSC2()),
		PoolKey([]int{4, 4}, "federated", 4, "calendar", machine.Uniform()),
		PoolKey([]int{4, 4}, "federated", 4, "calendar", machine.IPSC2().WithInterNode(4, 8)),
		PoolKey([]int{4, 4}, "federated", 4, "calendar",
			machine.IPSC2().WithInterNode(4, 8).WithLink(0, 1, machine.LinkCost{Latency: 2, Byte: 2})),
	}
	seen := map[string]bool{base: true}
	for i, v := range variants {
		if seen[v] {
			t.Errorf("variant %d collides with another configuration's key", i)
		}
		seen[v] = true
	}
}

func TestSystemPoolKeyMatchesConfiguration(t *testing.T) {
	sys, err := NewSystem(Grid(4, 2), Transport("federated"), Nodes(2),
		Executor("calendar"), LinkCosts(4, 8))
	if err != nil {
		t.Fatal(err)
	}
	want := PoolKey([]int{4, 2}, "federated", 2, "calendar", machine.IPSC2().WithInterNode(4, 8))
	if got := sys.PoolKey(); got != want {
		t.Errorf("system key\n%s\nwant\n%s", got, want)
	}
	// A default-everything system keys identically to the normalized form.
	plain := MustSystem(Grid(3))
	if plain.PoolKey() != PoolKey([]int{3}, "", 0, "", machine.CostModel{}) {
		t.Error("default system key does not normalize")
	}
}

func TestWarmedCountsCompletedRuns(t *testing.T) {
	sys := MustSystem(Grid(2), Cost(machine.Uniform()))
	if sys.Warmed() || sys.RunCount() != 0 {
		t.Error("fresh system should not report warmed")
	}
	prog := &Program{Name: "noop", Body: func(c *kf.Ctx) (Output, error) {
		return Output{Values: []float64{float64(c.P.Rank())}}, nil
	}}
	if _, err := sys.RunProgram(prog); err != nil {
		t.Fatal(err)
	}
	if !sys.Warmed() || sys.RunCount() != 1 {
		t.Errorf("after one run: warmed=%v count=%d", sys.Warmed(), sys.RunCount())
	}
	if _, err := sys.Run(func(c *kf.Ctx) error { return nil }); err != nil {
		t.Fatal(err)
	}
	if sys.RunCount() != 2 {
		t.Errorf("run count %d, want 2", sys.RunCount())
	}
}

func TestRunAndStats(t *testing.T) {
	sys, err := NewSystem(Grid(4), Cost(machine.Uniform()), Trace())
	if err != nil {
		t.Fatal(err)
	}
	elapsed, err := sys.Run(func(c *kf.Ctx) error {
		a := c.NewArray(darray.Spec{Extents: []int{8}, Dists: []dist.Dist{dist.Block{}}})
		a.Fill(func(idx []int) float64 { return 1 })
		c.P.Compute(10)
		c.Barrier()
		return nil
	})
	if err != nil {
		t.Fatal(err)
	}
	if elapsed < 10 {
		t.Errorf("elapsed %v", elapsed)
	}
	if sys.Stats().Flops != 40 {
		t.Errorf("flops %d, want 40", sys.Stats().Flops)
	}
	if sys.Trace == nil || sys.Trace.BusyTime(0) == 0 {
		t.Error("trace not recording")
	}
}

// shiftProgram is a small deterministic program: a halo'd block array, one
// owner-computes shift sweep, gather to rank 0.
func shiftProgram(n int, extraFlops int) *Program {
	return &Program{
		Name: "shift",
		Body: func(c *kf.Ctx) (Output, error) {
			a := c.NewArray(darray.Spec{
				Extents: []int{n},
				Dists:   []dist.Dist{dist.Block{}},
				Halo:    []int{1},
			})
			a.FillOwned(func(idx []int) float64 { return float64(idx[0] * idx[0]) })
			c.Doall1(kf.R(0, n-2), kf.OnOwner1(a), []kf.LoopOpt{kf.Reads(a)},
				func(cc *kf.Ctx, i int) {
					a.Set1(i, a.Old1(i+1))
					cc.P.Compute(1 + extraFlops)
				})
			elapsed := c.AllReduceMax(c.P.Clock())
			flat := a.GatherTo(c.NextScope(), 0)
			var out Output
			out.Elapsed = elapsed
			if c.P.Rank() == 0 {
				out.Values = flat
			}
			return out, nil
		},
	}
}

func TestRunProgramCollectsValuesAndCensus(t *testing.T) {
	sys, err := NewSystem(Grid(4), Cost(machine.Uniform()))
	if err != nil {
		t.Fatal(err)
	}
	run, err := sys.RunProgram(shiftProgram(16, 0))
	if err != nil {
		t.Fatal(err)
	}
	if len(run.Values) != 16 {
		t.Fatalf("values %v", run.Values)
	}
	for i := 0; i < 15; i++ {
		if run.Values[i] != float64((i+1)*(i+1)) {
			t.Errorf("value[%d] = %v", i, run.Values[i])
		}
	}
	if run.Stats.MsgsSent == 0 {
		t.Error("census empty")
	}
	if !(run.Elapsed > 0) || run.Elapsed > run.MachineElapsed {
		t.Errorf("elapsed %v vs machine %v", run.Elapsed, run.MachineElapsed)
	}
	if run.Links != nil {
		t.Error("shared system should have no link census")
	}
}

func TestCompareTransportsIdentical(t *testing.T) {
	shared, err := NewSystem(Grid(4), Cost(machine.Uniform()))
	if err != nil {
		t.Fatal(err)
	}
	fed, err := NewSystem(Grid(4), Transport("federated"), Nodes(2), Cost(machine.Uniform()))
	if err != nil {
		t.Fatal(err)
	}
	cmp, err := Compare(shiftProgram(16, 0), shared, fed)
	if err != nil {
		t.Fatal(err)
	}
	if !cmp.Identical || !cmp.ValuesIdentical || !cmp.CensusIdentical {
		t.Errorf("flat transports must be bit-identical: %+v", cmp)
	}
	if !cmp.TimesIdentical {
		t.Errorf("flat cost model: times must be identical too: %+v", cmp)
	}
	if cmp.B.Links == nil {
		t.Fatal("federated run carries no link census")
	}
	if msgs, bytes := cmp.B.Links.Total(); msgs == 0 || bytes == 0 {
		t.Errorf("2-node federation census empty: %d msgs / %d bytes", msgs, bytes)
	}
	if cmp.A.Links != nil {
		t.Error("shared run should carry no link census")
	}
}

func TestCompareDetectsPerturbedRun(t *testing.T) {
	sysA, err := NewSystem(Grid(4), Cost(machine.Uniform()))
	if err != nil {
		t.Fatal(err)
	}
	sysB, err := NewSystem(Grid(4), Cost(machine.Uniform()))
	if err != nil {
		t.Fatal(err)
	}
	base, err := sysA.RunProgram(shiftProgram(16, 0))
	if err != nil {
		t.Fatal(err)
	}
	// Perturb the computation (extra flops shift the census and times
	// but not the values)...
	perturbed, err := sysB.RunProgram(shiftProgram(16, 3))
	if err != nil {
		t.Fatal(err)
	}
	cmp := CompareRuns(base, perturbed)
	if cmp.Identical || cmp.CensusIdentical || cmp.TimesIdentical {
		t.Errorf("perturbed flop count not detected: %+v", cmp)
	}
	if !cmp.ValuesIdentical {
		t.Error("values should still agree when only compute is perturbed")
	}
	// ...and perturb the problem size (values diverge too).
	sysC, err := NewSystem(Grid(4), Cost(machine.Uniform()))
	if err != nil {
		t.Fatal(err)
	}
	other, err := sysC.RunProgram(shiftProgram(20, 0))
	if err != nil {
		t.Fatal(err)
	}
	cmp = CompareRuns(base, other)
	if cmp.ValuesIdentical || cmp.Identical {
		t.Errorf("perturbed values not detected: %+v", cmp)
	}
}

func TestDirectSchedulingBitIdentical(t *testing.T) {
	sched, err := NewSystem(Grid(4), Cost(machine.IPSC2()))
	if err != nil {
		t.Fatal(err)
	}
	direct, err := NewSystem(Grid(4), Cost(machine.IPSC2()), DirectScheduling())
	if err != nil {
		t.Fatal(err)
	}
	cmp, err := Compare(shiftProgram(16, 0), sched, direct)
	if err != nil {
		t.Fatal(err)
	}
	if !cmp.Identical || !cmp.TimesIdentical {
		t.Errorf("direct derivation must be bit-identical to schedule replay: %+v", cmp)
	}
	// The global scheduling switch must be restored after the run.
	if prev := darray.SetScheduling(true); !prev {
		t.Error("DirectScheduling leaked the global scheduling switch")
	}
}

func TestDirectSchedulingConcurrentRuns(t *testing.T) {
	// The scheduling switch is process-global; direct runs must be
	// serialized against scheduled ones so concurrent systems — the
	// natural use of declare-once Programs — neither race on it nor
	// leave the process stuck in direct mode.
	prog := shiftProgram(16, 0)
	mk := func(opts ...Option) *System {
		sys, err := NewSystem(append([]Option{Grid(4), Cost(machine.ZeroComm())}, opts...)...)
		if err != nil {
			t.Fatal(err)
		}
		return sys
	}
	direct := mk(DirectScheduling())
	sched := mk()
	var wg sync.WaitGroup
	var errs [2]error
	for round := 0; round < 10; round++ {
		wg.Add(2)
		go func() { defer wg.Done(); _, errs[0] = direct.RunProgram(prog) }()
		go func() { defer wg.Done(); _, errs[1] = sched.RunProgram(prog) }()
		wg.Wait()
		for _, err := range errs {
			if err != nil {
				t.Fatal(err)
			}
		}
	}
	if prev := darray.SetScheduling(true); !prev {
		t.Error("concurrent direct/scheduled runs left the process in direct mode")
	}
}

func TestRunProgramErrors(t *testing.T) {
	sys, err := NewSystem(Grid(2), Cost(machine.ZeroComm()))
	if err != nil {
		t.Fatal(err)
	}
	if _, err := sys.RunProgram(nil); err == nil {
		t.Error("nil program accepted")
	}
	if _, err := sys.RunProgram(&Program{Name: "empty"}); err == nil {
		t.Error("bodyless program accepted")
	}
}

func TestLinkCensusSub(t *testing.T) {
	fed, err := NewSystem(Grid(4), Transport("federated"), Nodes(2), Cost(machine.ZeroComm()))
	if err != nil {
		t.Fatal(err)
	}
	a, err := fed.RunProgram(shiftProgram(16, 0))
	if err != nil {
		t.Fatal(err)
	}
	b, err := fed.RunProgram(shiftProgram(16, 0))
	if err != nil {
		t.Fatal(err)
	}
	diff := b.Links.Sub(a.Links)
	if diff == nil {
		t.Fatal("Sub returned nil for matching censuses")
	}
	if msgs, bytes := diff.Total(); msgs != 0 || bytes != 0 {
		t.Errorf("identical runs should difference to zero, got %d msgs / %d bytes", msgs, bytes)
	}
	if b.Links.Sub(nil) != nil {
		t.Error("Sub with nil should be nil")
	}
}
