package core

import (
	"fmt"
	"sort"
	"sync"
)

// The program registry maps stable names to program factories, so a program
// can be identified by (name, args) instead of its Go closure. That pair is
// serializable, which is what the ipc execution plane needs: the
// coordinator ships it in the run spec, and each worker process — linking
// the same registrations — rebuilds the identical program locally and runs
// its node's ranks against it. Registration happens in init functions (see
// internal/progs), so coordinator and workers, being the same binary,
// always agree on the table.
var (
	progMu  sync.RWMutex
	progReg = map[string]func(args []float64) (*Program, error){}
)

// RegisterProgram installs a program factory under a stable name. The
// factory must be deterministic: given equal args it must build programs
// with bit-identical behaviour, because different processes will each build
// their own copy and the model's transport-invariance promise extends to
// them. Registering a duplicate name panics (registries are wired in init
// functions, where a collision is a programming error).
func RegisterProgram(name string, mk func(args []float64) (*Program, error)) {
	if name == "" || mk == nil {
		panic("core: RegisterProgram needs a name and a factory")
	}
	progMu.Lock()
	defer progMu.Unlock()
	if _, dup := progReg[name]; dup {
		panic(fmt.Sprintf("core: program %q registered twice", name))
	}
	progReg[name] = mk
}

// BuildProgram constructs a registered program from its name and arguments,
// stamping the pair into the program so eligible systems can execute it
// inside ipc workers (see RunProgram). Unknown names report the registered
// set.
func BuildProgram(name string, args ...float64) (*Program, error) {
	progMu.RLock()
	mk := progReg[name]
	progMu.RUnlock()
	if mk == nil {
		return nil, fmt.Errorf("core: no program registered as %q (registered: %v)", name, ProgramNames())
	}
	p, err := mk(args)
	if err != nil {
		return nil, fmt.Errorf("core: build program %q: %w", name, err)
	}
	if p == nil || p.Body == nil {
		return nil, fmt.Errorf("core: program factory %q built no body", name)
	}
	p.key = name
	p.args = append([]float64(nil), args...)
	return p, nil
}

// ProgramNames returns the registered program names, sorted.
func ProgramNames() []string {
	progMu.RLock()
	defer progMu.RUnlock()
	names := make([]string, 0, len(progReg))
	for name := range progReg {
		names = append(names, name)
	}
	sort.Strings(names)
	return names
}
