// Package core assembles the KF1 reproduction into a single convenient
// entry point: a simulated loosely coupled machine plus a processor grid,
// ready to execute parallel subroutines. It is the facade the examples and
// command-line tools use; the underlying pieces live in internal/machine
// (the simulated multicomputer), internal/topology (processor arrays),
// internal/dist and internal/darray (distributed data), and internal/kf
// (the language runtime: parsubs, doall loops, on-clauses).
package core

import (
	"fmt"

	"repro/internal/kf"
	"repro/internal/machine"
	"repro/internal/topology"
	"repro/internal/trace"
)

// System is a simulated machine with a declared processor array — the
// paper's "only one real processor declaration is allowed in the whole
// program".
type System struct {
	// Machine is the simulated multicomputer.
	Machine *machine.Machine
	// Procs is the full processor array ("the real estate agent").
	Procs *topology.Grid
	// Trace records per-processor timelines when tracing is enabled.
	Trace *trace.Recorder
}

// Config selects the machine size, shape and cost model.
type Config struct {
	// GridShape is the processor array shape, e.g. [4] or [2, 4]. The
	// machine has exactly prod(GridShape) processors.
	GridShape []int
	// Cost is the virtual-time cost model; the zero value selects the
	// iPSC/2-like preset.
	Cost machine.CostModel
	// EnableTrace attaches a trace recorder.
	EnableTrace bool
}

// NewSystem builds a simulated system per the config.
func NewSystem(cfg Config) (*System, error) {
	if len(cfg.GridShape) == 0 {
		return nil, fmt.Errorf("core: empty grid shape")
	}
	g := topology.New(cfg.GridShape...)
	cost := cfg.Cost
	if cost == (machine.CostModel{}) {
		cost = machine.IPSC2()
	}
	m := machine.New(g.Size(), cost)
	sys := &System{Machine: m, Procs: g}
	if cfg.EnableTrace {
		sys.Trace = trace.NewRecorder(g.Size())
		m.SetSink(sys.Trace)
	}
	return sys, nil
}

// Run executes body as a parallel subroutine over the full processor array
// and returns the virtual elapsed time.
func (s *System) Run(body func(c *kf.Ctx) error) (float64, error) {
	if err := kf.Exec(s.Machine, s.Procs, body); err != nil {
		return 0, err
	}
	return s.Machine.Elapsed(), nil
}

// Stats returns the aggregate machine counters from the last Run.
func (s *System) Stats() machine.Stats { return s.Machine.TotalStats() }
