// Package core is the one entry point user code declares a simulated
// machine through — the paper's "only one real processor declaration is
// allowed in the whole program", grown into a configuration surface:
// examples, experiments, benchmarks and command-line tools all construct
// and run systems here, never against the lower layers directly.
//
// A System is declared with functional options:
//
//	sys, err := core.NewSystem(
//	    core.Grid(4, 4),                    // the processor array
//	    core.Transport("federated"),        // delivery substrate, by registry name
//	    core.Nodes(4),                      // federation shape
//	    core.LinkCosts(4, 8),               // price the node interconnect
//	    core.Trace(),                       // record per-processor timelines
//	)
//
// Every option is independent and optional except Grid; the defaults are a
// shared-memory transport and the iPSC/2-like cost preset. Transports are
// resolved by name through the registry in internal/machine
// (machine.RegisterTransport), so a new substrate — a cross-process one,
// say — reaches every caller of core with a single Register call and zero
// facade edits.
//
// Programs separate the computation from the machine: declare once, run on
// any System, and Compare two systems' runs for the loosely-coupled model's
// central invariant — a program's meaning lives in its messages, so values
// and message censuses must be bit-identical across transports while
// virtual times honestly reflect what each machine charges. See Program,
// Run and Compare.
//
// The underlying pieces remain in internal/machine (the simulated
// multicomputer), internal/topology (processor arrays), internal/dist and
// internal/darray (distributed data), and internal/kf (the language
// runtime: parsubs, doall loops, on-clauses).
package core

import (
	"fmt"
	"io"
	"sync"
	"sync/atomic"

	"repro/internal/chaos"
	"repro/internal/darray"
	"repro/internal/kf"
	"repro/internal/machine"
	"repro/internal/topology"
	"repro/internal/trace"
)

// System is a simulated machine with a declared processor array — the
// paper's single machine declaration, from which the runtime derives
// everything else.
//
// Run and RunProgram are the system's execution surface: they apply the
// run-shaping options (DirectScheduling's derivation mode, the per-run
// trace reset) around every execution. The exported Machine and Procs
// fields are the low-level handles for driver wrappers that predate
// Programs (jacobi.KF1(sys.Machine, sys.Procs, ...)); code driving the
// Machine directly bypasses the run-shaping options by construction, so
// systems declared with DirectScheduling or Trace should be executed
// through Run/RunProgram.
type System struct {
	// Machine is the simulated multicomputer.
	Machine *machine.Machine
	// Procs is the full processor array ("the real estate agent").
	Procs *topology.Grid
	// Trace records per-processor timelines when the Trace option is on.
	Trace *trace.Recorder

	transport string
	executor  string
	direct    bool
	runs      atomic.Int64 // completed runs; see Warmed
}

// settings accumulates option state before validation.
type settings struct {
	shape     []int
	transport string
	executor  string
	nodes     int
	nodesSet  bool
	cost      machine.CostModel
	trace     bool
	direct    bool
	linkSet   bool
	linkLat   float64
	linkByte  float64
	links     []LinkSpec
	chaosSet  bool
	chaosSc   chaos.Scenario
	listen    string
}

// Option configures a System under construction. Options are applied in
// order; later options override earlier ones where they overlap.
type Option func(*settings) error

// Grid declares the processor array shape, e.g. Grid(4) or Grid(2, 4); the
// machine has exactly prod(shape) processors. Exactly what the paper's
// processor declaration says, and the one option every System needs.
func Grid(shape ...int) Option {
	s := append([]int(nil), shape...)
	return func(cfg *settings) error {
		if len(s) == 0 {
			return fmt.Errorf("core: Grid needs at least one extent")
		}
		for _, e := range s {
			if e <= 0 {
				return fmt.Errorf("core: Grid extents must be positive, got %v", s)
			}
		}
		cfg.shape = s
		return nil
	}
}

// Transport selects the message-delivery substrate by its registry name
// (machine.RegisterTransport): "shared" (the default) or "federated" ship
// with the runtime; future transports resolve the same way. Unknown names
// surface as errors from NewSystem.
func Transport(name string) Option {
	return func(cfg *settings) error {
		if name == "" {
			return fmt.Errorf("core: Transport needs a non-empty name (registered: %v)", machine.TransportNames())
		}
		cfg.transport = name
		return nil
	}
}

// Executor selects the engine driving every run by its registry name
// (machine.RegisterExecutor): "goroutine" (the default, one goroutine per
// virtual processor) or "calendar" (a bounded worker pool resuming runnable
// processors in virtual-time order); future engines resolve the same way.
// Programs behave bit-identically on every engine — the conformance battery
// in internal/machine pins it — so the choice is purely a host-performance
// one. Unknown names surface as errors from NewSystem.
func Executor(name string) Option {
	return func(cfg *settings) error {
		if name == "" {
			return fmt.Errorf("core: Executor needs a non-empty name (registered: %v)", machine.ExecutorNames())
		}
		cfg.executor = name
		return nil
	}
}

// Nodes sets the federation shape: the processors are partitioned into n
// equal nodes joined by counted inter-node links. It requires a federating
// transport — Nodes(2) on the shared transport is a configuration conflict
// reported by NewSystem — and n must divide the processor count.
func Nodes(n int) Option {
	return func(cfg *settings) error {
		if n < 1 {
			return fmt.Errorf("core: Nodes must be at least 1, got %d", n)
		}
		cfg.nodes = n
		cfg.nodesSet = true
		return nil
	}
}

// Cost sets the virtual-time cost model. The zero value keeps selecting
// the iPSC/2-like preset, as it always has.
func Cost(cm machine.CostModel) Option {
	return func(cfg *settings) error {
		cfg.cost = cm
		return nil
	}
}

// LinkSpec overrides the price of one directed inter-node link inside a
// LinkCosts option: the latency and byte-period multipliers messages
// crossing from node Src to node Dst pay instead of the sweep's defaults —
// a slow uplink, or a fast backbone pair.
type LinkSpec struct {
	Src, Dst      int
	Latency, Byte float64
}

// LinkCosts prices the node interconnect of a federating transport: every
// inter-node message pays the cost model's Latency and BytePeriod scaled
// by the given multipliers (links of a real federation are slower than
// intra-node delivery, so useful values are > 1), with per-directed-link
// overrides for asymmetric interconnects. It layers onto whatever Cost
// selected and requires a transport that federates. Note that a
// single-node federation (Nodes(1), the federated default) has no
// inter-node links, so the pricing is accepted but charged nowhere — the
// degenerate zero-surcharge case node sweeps deliberately include; set
// Nodes(n >= 2) for the interconnect to exist.
func LinkCosts(latency, bytePeriod float64, links ...LinkSpec) Option {
	ls := append([]LinkSpec(nil), links...)
	return func(cfg *settings) error {
		cfg.linkSet = true
		cfg.linkLat, cfg.linkByte = latency, bytePeriod
		cfg.links = ls
		return nil
	}
}

// ListenAddr sets an explicit TCP listen address (host:port, port 0 for an
// ephemeral port) for the ipc transport's worker listener, replacing the
// default Unix domain socket — for hosts where UDS is unavailable or a
// fixed port must be allowed through a filter. It requires the ipc
// transport (bare or chaos-wrapped); the KF_IPC_ADDR environment variable
// sets the same default without a code change.
func ListenAddr(addr string) Option {
	return func(cfg *settings) error {
		if addr == "" {
			return fmt.Errorf("core: ListenAddr needs a non-empty TCP address")
		}
		cfg.listen = addr
		return nil
	}
}

// Chaos installs a fault-injection scenario (see internal/chaos) on the
// system's transport. It requires a chaos-wrapped transport — select one
// with Transport("chaos:<base>"), e.g. Transport("chaos:federated") — and
// reports a configuration error otherwise. The scenario is validated and
// its retry-policy defaults applied by NewSystem; per-run and cumulative
// fault/recovery reports are read back with System.ChaosReport and
// System.ChaosTotalReport.
func Chaos(sc chaos.Scenario) Option {
	return func(cfg *settings) error {
		cfg.chaosSet = true
		cfg.chaosSc = sc
		return nil
	}
}

// Trace attaches a per-processor timeline recorder, available as
// System.Trace after construction.
func Trace() Option {
	return func(cfg *settings) error {
		cfg.trace = true
		return nil
	}
}

// DirectScheduling makes the system derive all collective communication
// directly on every call instead of replaying compiled schedules — the
// verification mode of the inspector/executor split. Runs on a direct
// system must be bit-identical to scheduled ones; Compare a system with
// and without this option to check. The mode is applied by Run and
// RunProgram; driving sys.Machine directly bypasses it (see System).
func DirectScheduling() Option {
	return func(cfg *settings) error {
		cfg.direct = true
		return nil
	}
}

// NewSystem builds a simulated system from the given options. Grid is
// required; everything else defaults (shared transport, one node, iPSC/2
// costs, no trace, scheduled communication). Conflicting or invalid
// options — Nodes on a non-federating transport, LinkCosts without a
// federation, an unregistered transport name, a node count that does not
// divide the processor count — are reported as errors, never panics.
func NewSystem(opts ...Option) (*System, error) {
	cfg := settings{transport: "shared", nodes: 1}
	for _, opt := range opts {
		if err := opt(&cfg); err != nil {
			return nil, err
		}
	}
	if len(cfg.shape) == 0 {
		return nil, fmt.Errorf("core: no processor grid declared (use core.Grid)")
	}
	cost := cfg.cost
	if cost.IsZero() {
		cost = machine.IPSC2()
	}
	if cfg.linkSet {
		if cfg.linkLat <= 0 || cfg.linkByte <= 0 {
			return nil, fmt.Errorf("core: LinkCosts multipliers must be positive, got (%g, %g)", cfg.linkLat, cfg.linkByte)
		}
		for _, l := range cfg.links {
			if l.Src < 0 || l.Src >= cfg.nodes || l.Dst < 0 || l.Dst >= cfg.nodes {
				return nil, fmt.Errorf("core: LinkSpec %d->%d outside the federation's %d nodes", l.Src, l.Dst, cfg.nodes)
			}
			if l.Src == l.Dst {
				return nil, fmt.Errorf("core: LinkSpec %d->%d prices an intra-node path, which never crosses a link", l.Src, l.Dst)
			}
			if l.Latency <= 0 || l.Byte <= 0 {
				return nil, fmt.Errorf("core: LinkSpec %d->%d multipliers must be positive, got (%g, %g)", l.Src, l.Dst, l.Latency, l.Byte)
			}
		}
		cost = cost.WithInterNode(cfg.linkLat, cfg.linkByte)
		for _, l := range cfg.links {
			cost = cost.WithLink(l.Src, l.Dst, machine.LinkCost{Latency: l.Latency, Byte: l.Byte})
		}
	}
	g := topology.New(cfg.shape...)
	tr, err := machine.NewTransportByName(cfg.transport, g.Size(), cfg.nodes)
	if err != nil {
		return nil, err
	}
	// Capability checks see through the chaos wrapper: chaos:shared must
	// fail federation-only options exactly like shared does.
	_, federates := unwrapTransport(tr).(nodeCounter)
	if cfg.nodesSet && cfg.nodes > 1 && !federates {
		return nil, fmt.Errorf("core: Nodes(%d) set but transport %q does not federate", cfg.nodes, cfg.transport)
	}
	if cfg.linkSet && !federates {
		return nil, fmt.Errorf("core: LinkCosts set but transport %q does not federate (inter-node links would never be crossed)", cfg.transport)
	}
	if cfg.chaosSet {
		ct, ok := tr.(*machine.ChaosTransport)
		if !ok {
			return nil, fmt.Errorf("core: Chaos set but transport %q injects nothing: select a chaos-wrapped transport, e.g. Transport(%q)", cfg.transport, machine.ChaosPrefix+cfg.transport)
		}
		if err := ct.SetScenario(cfg.chaosSc); err != nil {
			return nil, err
		}
	}
	if cfg.listen != "" {
		ipc, ok := unwrapTransport(tr).(*machine.IPCTransport)
		if !ok {
			return nil, fmt.Errorf("core: ListenAddr set but transport %q spawns no workers: it requires the ipc transport", cfg.transport)
		}
		ipc.SetListenAddr(cfg.listen)
	}
	m := machine.NewWithTransport(tr, cost)
	if cfg.executor != "" {
		ex, err := machine.NewExecutorByName(cfg.executor)
		if err != nil {
			return nil, err
		}
		m.SetExecutor(ex)
	}
	sys := &System{
		Machine:   m,
		Procs:     g,
		transport: cfg.transport,
		executor:  m.ExecutorName(),
		direct:    cfg.direct,
	}
	if cfg.trace {
		sys.Trace = trace.NewRecorder(g.Size())
		m.SetSink(sys.Trace)
	}
	return sys, nil
}

// MustSystem is NewSystem for benchmarks, experiments and tools whose
// configuration is static and whose only sensible response to a
// misconfiguration is to stop: it panics on error.
func MustSystem(opts ...Option) *System {
	sys, err := NewSystem(opts...)
	if err != nil {
		panic(err)
	}
	return sys
}

// TransportName returns the registry name the system's transport was
// resolved under.
func (s *System) TransportName() string { return s.transport }

// ExecutorName returns the registry name of the engine driving the system's
// runs ("goroutine" unless the Executor option selected another).
func (s *System) ExecutorName() string { return s.executor }

// Close releases any external resources the system's transport holds —
// for the cross-process "ipc" transport that means shutting down its
// worker processes and removing the socket directory. Transports without
// external state (shared, federated) make this a no-op, so callers can
// defer a Close on every system unconditionally. Idempotent.
func (s *System) Close() error {
	if c, ok := s.Machine.Transport().(io.Closer); ok {
		return c.Close()
	}
	return nil
}

// nodeCounter is the capability a transport exposes when it partitions
// processors into nodes; FederatedTransport (and any future multi-node
// transport) implements it. linkCounters in program.go extends it with
// the per-link traffic counters the censuses read.
type nodeCounter interface{ Nodes() int }

// unwrapTransport sees through a chaos wrapper to the base transport, so
// capability checks (does it federate? does it count links?) answer for the
// transport that actually delivers.
func unwrapTransport(tr machine.Transport) machine.Transport {
	if ct, ok := tr.(*machine.ChaosTransport); ok {
		return ct.Base()
	}
	return tr
}

// Nodes returns the federation's node count (1 on non-federating
// transports).
func (s *System) Nodes() int {
	if f, ok := s.Machine.Transport().(nodeCounter); ok {
		return f.Nodes()
	}
	return 1
}

// ChaosReport returns the fault/recovery report of the most recent run on a
// chaos-wrapped transport, and whether the system has one. Call it after
// Run/RunProgram and before the next run (each run resets the per-run
// report).
func (s *System) ChaosReport() (chaos.Report, bool) {
	if ct, ok := s.Machine.Transport().(*machine.ChaosTransport); ok {
		return ct.Report(), true
	}
	return chaos.Report{}, false
}

// ChaosTotalReport returns the fault/recovery report accumulated over every
// run since the system's scenario was installed, including the most recent
// one.
func (s *System) ChaosTotalReport() (chaos.Report, bool) {
	if ct, ok := s.Machine.Transport().(*machine.ChaosTransport); ok {
		return ct.TotalReport(), true
	}
	return chaos.Report{}, false
}

// Run executes body as a parallel subroutine over the full processor array
// and returns the virtual elapsed time. Like the machine's clocks and
// counters, the trace recorder (when attached) is reset at the start, so
// a System runs any number of programs in sequence, each cleanly.
func (s *System) Run(body func(c *kf.Ctx) error) (float64, error) {
	restore := s.applyScheduling()
	defer restore()
	if s.Trace != nil {
		s.Trace.Reset()
	}
	if err := kf.Exec(s.Machine, s.Procs, body); err != nil {
		return 0, err
	}
	s.runs.Add(1)
	return s.Machine.Elapsed(), nil
}

// schedMu guards the darray scheduling switch, which is process-global: a
// DirectScheduling run holds the write side for its whole duration, any
// other run the read side, so concurrent systems never observe (or
// clobber) another run's scheduling mode.
var schedMu sync.RWMutex

// applyScheduling flips the darray layer into direct derivation for the
// duration of a run on a DirectScheduling system, returning the restore
// function. Scheduled systems share the read lock and touch nothing.
func (s *System) applyScheduling() func() {
	if !s.direct {
		schedMu.RLock()
		return schedMu.RUnlock
	}
	schedMu.Lock()
	prev := darray.SetScheduling(false)
	return func() {
		darray.SetScheduling(prev)
		schedMu.Unlock()
	}
}

// Stats returns the aggregate machine counters from the last Run.
func (s *System) Stats() machine.Stats { return s.Machine.TotalStats() }
