package core

import (
	"strings"
	"testing"

	"repro/internal/chaos"
	"repro/internal/machine"
)

func TestChaosOptionRequiresChaosTransport(t *testing.T) {
	// Chaos on an unwrapped transport is a configuration conflict; the error
	// must point at the chaos-wrapped name that would work.
	_, err := NewSystem(Grid(4), Chaos(chaos.Scenario{Seed: 1, Drop: 0.1}))
	if err == nil {
		t.Fatal("Chaos on the shared transport accepted")
	}
	if !strings.Contains(err.Error(), "chaos:shared") {
		t.Errorf("error should suggest the chaos-wrapped transport: %v", err)
	}
	_, err = NewSystem(Grid(4), Transport("federated"), Nodes(2), Chaos(chaos.Scenario{Seed: 1, Drop: 0.1}))
	if err == nil || !strings.Contains(err.Error(), "chaos:federated") {
		t.Errorf("error should suggest chaos:federated: %v", err)
	}
}

func TestChaosOptionValidatesScenario(t *testing.T) {
	_, err := NewSystem(Grid(4), Transport("chaos:shared"), Chaos(chaos.Scenario{Drop: 1.5}))
	if err == nil {
		t.Fatal("drop probability 1.5 accepted")
	}
	if !strings.Contains(err.Error(), "probability") {
		t.Errorf("error should name the bad probability: %v", err)
	}
}

func TestChaosSharedKeepsSharedCapabilities(t *testing.T) {
	// Capability checks see through the wrapper: chaos:shared must reject
	// federation-only options exactly like shared, and carry no link census.
	if _, err := NewSystem(Grid(4), Transport("chaos:shared"), Nodes(2)); err == nil {
		t.Error("chaos:shared accepted Nodes(2)")
	}
	if _, err := NewSystem(Grid(4), Transport("chaos:shared"), LinkCosts(4, 8)); err == nil {
		t.Error("chaos:shared accepted LinkCosts")
	}
	sys := MustSystem(Grid(4), Transport("chaos:shared"))
	run, err := sys.RunProgram(shiftProgram(16, 0))
	if err != nil {
		t.Fatal(err)
	}
	if run.Links != nil {
		t.Error("chaos:shared run carries a phantom link census")
	}
}

func TestChaosZeroFaultBitIdenticalToBase(t *testing.T) {
	// The inactive wrapper is a pure pass-through: values, censuses and
	// virtual times bit-identical to the unwrapped base.
	base := MustSystem(Grid(4))
	wrapped := MustSystem(Grid(4), Transport("chaos:shared"))
	cmp, err := Compare(shiftProgram(16, 0), base, wrapped)
	if err != nil {
		t.Fatal(err)
	}
	if !cmp.Identical || !cmp.TimesIdentical {
		t.Errorf("inactive chaos wrapper diverged from base: %+v", cmp)
	}
}

func TestChaosFaultedRunValuesIdenticalTimesDiverge(t *testing.T) {
	base := MustSystem(Grid(4))
	faulted := MustSystem(Grid(4), Transport("chaos:shared"),
		Chaos(chaos.Scenario{Name: "core", Seed: 11, Drop: 0.1, Dup: 0.05}))
	cmp, err := Compare(shiftProgram(16, 0), base, faulted)
	if err != nil {
		t.Fatal(err)
	}
	if !cmp.Identical {
		t.Errorf("faults changed the program's meaning: %+v", cmp)
	}
	rep, ok := faulted.ChaosReport()
	if !ok {
		t.Fatal("chaos system reports no chaos")
	}
	if rep.Injected() == 0 {
		t.Fatal("scenario injected nothing; the comparison proved nothing")
	}
	if rep.Drops > 0 && !(cmp.B.Elapsed > cmp.A.Elapsed) {
		t.Errorf("recovered drops should cost virtual time: %v vs %v", cmp.B.Elapsed, cmp.A.Elapsed)
	}
}

func TestChaosReportAccessors(t *testing.T) {
	plain := MustSystem(Grid(2))
	if _, ok := plain.ChaosReport(); ok {
		t.Error("plain system claims a chaos report")
	}
	if _, ok := plain.ChaosTotalReport(); ok {
		t.Error("plain system claims a cumulative chaos report")
	}

	sys := MustSystem(Grid(4), Transport("chaos:shared"),
		Chaos(chaos.Scenario{Name: "acc", Seed: 2, Drop: 0.1}))
	if _, err := sys.RunProgram(shiftProgram(16, 0)); err != nil {
		t.Fatal(err)
	}
	rep, ok := sys.ChaosReport()
	if !ok || rep.Sends == 0 {
		t.Fatalf("per-run report missing or empty: %+v (ok=%v)", rep, ok)
	}
	if rep.Name != "acc" || rep.Seed != 2 {
		t.Errorf("report not labeled with the scenario: %+v", rep)
	}
	// A second pooled run folds into the cumulative report.
	if _, err := sys.RunProgram(shiftProgram(16, 0)); err != nil {
		t.Fatal(err)
	}
	total, ok := sys.ChaosTotalReport()
	if !ok || total.Sends != 2*rep.Sends {
		t.Errorf("cumulative Sends = %d, want %d", total.Sends, 2*rep.Sends)
	}
}

func TestChaosAbortSurfacesThroughRunProgram(t *testing.T) {
	// A retry-budget exhaustion must surface from RunProgram as a structured
	// error, not a hang or a bare deadlock.
	sys := MustSystem(Grid(2), Transport("chaos:shared"),
		Chaos(chaos.Scenario{Name: "doom", Seed: 1, Drop: 1, MaxRetries: 1}))
	_, err := sys.RunProgram(shiftProgram(16, 0))
	if err == nil {
		t.Fatal("unrecoverable loss completed")
	}
	if !strings.Contains(err.Error(), "retry") && !strings.Contains(err.Error(), "budget") {
		t.Errorf("error should describe the exhausted retry budget: %v", err)
	}
	rep, _ := sys.ChaosReport()
	if !rep.Aborted || rep.Failure == nil {
		t.Errorf("abort not recorded in the report: %+v", rep)
	}
	// The machine is clean for reuse after an abort: install a survivable
	// scenario and the same pooled system completes again.
	ct := sys.Machine.Transport().(*machine.ChaosTransport)
	if err := ct.SetScenario(chaos.Scenario{Name: "calm", Seed: 1, Drop: 0.05}); err != nil {
		t.Fatal(err)
	}
	if _, err := sys.RunProgram(shiftProgram(16, 0)); err != nil {
		t.Errorf("system not reusable after a fault abort: %v", err)
	}
}
