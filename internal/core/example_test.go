package core_test

import (
	"fmt"
	"log"

	"repro/internal/core"
	"repro/internal/darray"
	"repro/internal/dist"
	"repro/internal/kf"
	"repro/internal/machine"
)

// The smallest complete use of the facade: declare a machine with
// functional options, distribute an array, run an owner-computes doall,
// and read the deterministic message census.
func ExampleNewSystem() {
	sys, err := core.NewSystem(
		core.Grid(4),                  // a 1-D processor array of 4 nodes
		core.Cost(machine.ZeroComm()), // free communication, for a clock-free census
	)
	if err != nil {
		log.Fatal(err)
	}

	const n = 8
	_, err = sys.Run(func(c *kf.Ctx) error {
		// real A(n) dist(block) — with one ghost cell for the stencil.
		a := c.NewArray(darray.Spec{
			Extents: []int{n},
			Dists:   []dist.Dist{dist.Block{}},
			Halo:    []int{1},
		})
		a.FillOwned(func(idx []int) float64 { return float64(idx[0]) })

		// doall i = 0, n-2 on owner(A(i)):  A(i) = A(i+1)
		c.Doall1(kf.R(0, n-2), kf.OnOwner1(a), []kf.LoopOpt{kf.Reads(a)},
			func(cc *kf.Ctx, i int) {
				a.Set1(i, a.Old1(i+1))
			})

		flat := a.GatherTo(c.NextScope(), 0)
		if c.P.Rank() == 0 {
			fmt.Println("shifted:", flat)
		}
		return nil
	})
	if err != nil {
		log.Fatal(err)
	}
	fmt.Printf("messages: %d\n", sys.Stats().MsgsSent)
	// Output:
	// shifted: [1 2 3 4 5 6 7 7]
	// messages: 9
}

// The same program, declared once, runs on a shared machine and a priced
// 2-node federation; values and message census are bit-identical while
// the federation's clock honestly pays the interconnect surcharge.
func ExampleCompare() {
	prog := &core.Program{
		Name: "shift",
		Body: func(c *kf.Ctx) (core.Output, error) {
			const n = 8
			a := c.NewArray(darray.Spec{
				Extents: []int{n},
				Dists:   []dist.Dist{dist.Block{}},
				Halo:    []int{1},
			})
			a.FillOwned(func(idx []int) float64 { return float64(idx[0]) })
			c.Doall1(kf.R(0, n-2), kf.OnOwner1(a), []kf.LoopOpt{kf.Reads(a)},
				func(cc *kf.Ctx, i int) {
					a.Set1(i, a.Old1(i+1))
				})
			var out core.Output
			flat := a.GatherTo(c.NextScope(), 0)
			if c.P.Rank() == 0 {
				out.Values = flat
			}
			return out, nil
		},
	}
	shared, err := core.NewSystem(core.Grid(4))
	if err != nil {
		log.Fatal(err)
	}
	federated, err := core.NewSystem(
		core.Grid(4),
		core.Transport("federated"), core.Nodes(2),
		core.LinkCosts(4, 8), // inter-node links: 4x latency, 8x byte period
	)
	if err != nil {
		log.Fatal(err)
	}
	cmp, err := core.Compare(prog, shared, federated)
	if err != nil {
		log.Fatal(err)
	}
	fmt.Println("values identical:", cmp.ValuesIdentical)
	fmt.Println("census identical:", cmp.CensusIdentical)
	fmt.Println("federation slower:", cmp.B.Elapsed > cmp.A.Elapsed)
	// Output:
	// values identical: true
	// census identical: true
	// federation slower: true
}
