package core

import (
	"encoding/json"
	"fmt"
	"strconv"
	"strings"

	"repro/internal/machine"
)

// This file is the identity half of warmed-System pooling: a long-lived
// server (internal/serve) reuses constructed Systems across requests, and
// two requests may share one only when every ingredient that shapes a
// run's meaning or price is equal — the grid, the transport, the
// federation shape, the execution engine, and the full cost model down to
// each per-link override. PoolKey collapses that tuple into one canonical
// string; CostSignature is the cost-model component on its own.

// CostSignature returns a canonical, deterministic string form of a cost
// model: equal models yield equal signatures, and any difference — a flop
// time, an inter-node default, one directed link override — changes it.
// The encoding is the same shortest-round-trip JSON the ipc execution
// plane ships to its workers (link overrides in sorted order), so two
// systems with equal signatures price every message bit-identically.
func CostSignature(cm machine.CostModel) string {
	raw, err := json.Marshal(encodeCost(cm))
	if err != nil {
		// specCost is plain numbers and bools; Marshal cannot fail.
		panic(fmt.Sprintf("core: encode cost signature: %v", err))
	}
	return string(raw)
}

// PoolKey returns the canonical pool identity of a System configuration:
// two configurations with equal keys build Systems that are
// interchangeable for running programs (same values, censuses and virtual
// times), which is the contract a warmed-System pool needs before it may
// serve one request's run from a System another request constructed.
// Defaults are normalized the way NewSystem applies them — empty
// transport means "shared", a zero cost model means the iPSC/2 preset,
// empty executor the goroutine engine — so a caller spelling a default
// out and one omitting it share a pool slot.
func PoolKey(shape []int, transport string, nodes int, executor string, cm machine.CostModel) string {
	if transport == "" {
		transport = "shared"
	}
	if nodes < 1 {
		nodes = 1
	}
	if executor == "" {
		executor = "goroutine"
	}
	if cm.IsZero() {
		cm = machine.IPSC2()
	}
	dims := make([]string, len(shape))
	for i, e := range shape {
		dims[i] = strconv.Itoa(e)
	}
	return fmt.Sprintf("g=%s t=%s n=%d e=%s c=%s",
		strings.Join(dims, "x"), transport, nodes, executor, CostSignature(cm))
}

// PoolKey returns the system's own pool identity — the key under which a
// warmed-System pool would file it.
func (s *System) PoolKey() string {
	return PoolKey(s.Procs.Shape(), s.transport, s.Nodes(), s.executor, s.Machine.Cost())
}

// RunCount returns how many runs (Run or RunProgram) have completed
// successfully on this system.
func (s *System) RunCount() int64 { return s.runs.Load() }

// Warmed reports whether the system has completed at least one run — its
// compiled schedules, loop plans and size-classed buffer pools are
// populated, so the next run replays instead of compiling. The warmed-pool
// hit metrics in internal/serve are counted off this.
func (s *System) Warmed() bool { return s.runs.Load() > 0 }
