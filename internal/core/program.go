package core

import (
	"fmt"

	"repro/internal/kf"
	"repro/internal/machine"
)

// Program is a parallel computation declared once, independently of any
// machine: the body runs SPMD-style on every processor of whichever System
// it is handed to. Declaring the program separately from the machine is
// the paper's separation made literal — the same source runs on a shared
// mailbox array, a priced federation, or any future transport, and Compare
// checks that its meaning (values and message census) never moves.
type Program struct {
	// Name labels the program in reports and errors.
	Name string
	// Body is the per-processor computation. Each processor returns an
	// Output; see Output for how per-rank outputs combine into a Run.
	Body func(c *kf.Ctx) (Output, error)

	// key and args identify a registry-built program (see RegisterProgram
	// and BuildProgram): key is the registered factory name and args its
	// construction arguments, together enough for any process linking the
	// same registrations to rebuild an equivalent program. They are what
	// lets a run cross a process boundary — the ipc execution plane ships
	// (key, args) to its workers instead of the unserializable Body.
	// Programs constructed literally (key == "") run coordinator-side on
	// every transport.
	key  string
	args []float64
}

// Output is one processor's contribution to a Run.
type Output struct {
	// Values carries program-defined result values (typically the
	// gathered solution, emitted by the root rank only). Per-rank values
	// are concatenated in rank order into Run.Values.
	Values []float64
	// Elapsed optionally reports a program-defined elapsed time — e.g.
	// the iteration loop's finish time, excluding a verification gather.
	// The maximum over ranks becomes Run.Elapsed; if every rank leaves
	// it zero, the machine's whole-run elapsed time is used.
	Elapsed float64
}

// Run is the record of one Program execution on one System.
type Run struct {
	// Elapsed is the program-reported elapsed virtual time (see
	// Output.Elapsed), falling back to the machine's whole-run time.
	Elapsed float64
	// MachineElapsed is the machine's whole-run virtual time (always the
	// maximum processor clock, including any gather epilogue).
	MachineElapsed float64
	// Stats aggregates the machine counters for the whole run.
	Stats machine.Stats
	// Values concatenates the per-rank Output values in rank order.
	Values []float64
	// Links is the run's inter-node link census on federating
	// transports, nil otherwise.
	Links *LinkCensus
}

// LinkCensus is the per-directed-link message and byte counts of one run
// on a federating transport.
type LinkCensus struct {
	// Nodes is the federation's node count.
	Nodes int
	// Msgs and Bytes are indexed [src][dst]; diagonal entries are zero
	// (intra-node traffic never crosses a link).
	Msgs, Bytes [][]int64
}

// Total sums the census over all links.
func (lc *LinkCensus) Total() (msgs, bytes int64) {
	if lc == nil {
		return 0, 0
	}
	for a := range lc.Msgs {
		for b := range lc.Msgs[a] {
			msgs += lc.Msgs[a][b]
			bytes += lc.Bytes[a][b]
		}
	}
	return msgs, bytes
}

// Sub returns the per-link difference census lc - prev (the usual way to
// isolate per-iteration traffic: run two iteration counts and difference
// away the epilogue). The censuses must agree on the node count.
func (lc *LinkCensus) Sub(prev *LinkCensus) *LinkCensus {
	if lc == nil || prev == nil || lc.Nodes != prev.Nodes {
		return nil
	}
	out := &LinkCensus{Nodes: lc.Nodes}
	out.Msgs = make([][]int64, lc.Nodes)
	out.Bytes = make([][]int64, lc.Nodes)
	for a := 0; a < lc.Nodes; a++ {
		out.Msgs[a] = make([]int64, lc.Nodes)
		out.Bytes[a] = make([]int64, lc.Nodes)
		for b := 0; b < lc.Nodes; b++ {
			out.Msgs[a][b] = lc.Msgs[a][b] - prev.Msgs[a][b]
			out.Bytes[a][b] = lc.Bytes[a][b] - prev.Bytes[a][b]
		}
	}
	return out
}

// linkCounters is the observability surface a federating transport offers;
// FederatedTransport implements it, and so would any future multi-node
// transport that wants its traffic priced and censused.
type linkCounters interface {
	nodeCounter
	LinkTraffic(src, dst int) (msgs, bytes int64)
}

// linkCensus snapshots the system transport's per-link counters, nil when
// the transport has no notion of links. The chaos wrapper is unwrapped
// first: chaos:shared has no links (no phantom one-node census), while
// chaos:federated censuses the base's counters — which, under an active
// scenario, include injected duplicates, because those genuinely cross the
// wire.
func (s *System) linkCensus() *LinkCensus {
	f, ok := unwrapTransport(s.Machine.Transport()).(linkCounters)
	if !ok {
		return nil
	}
	nodes := f.Nodes()
	lc := &LinkCensus{Nodes: nodes}
	lc.Msgs = make([][]int64, nodes)
	lc.Bytes = make([][]int64, nodes)
	for a := 0; a < nodes; a++ {
		lc.Msgs[a] = make([]int64, nodes)
		lc.Bytes[a] = make([]int64, nodes)
		for b := 0; b < nodes; b++ {
			if a == b {
				continue
			}
			lc.Msgs[a][b], lc.Bytes[a][b] = f.LinkTraffic(a, b)
		}
	}
	return lc
}

// RunProgram executes p on the system and returns the run record. The
// machine's clocks, counters, transport and trace recorder are reset at
// the start, so a System can run any number of programs in sequence.
func (s *System) RunProgram(p *Program) (Run, error) {
	if p == nil || p.Body == nil {
		return Run{}, fmt.Errorf("core: RunProgram needs a program with a body")
	}
	if t := s.distributedTransport(p); t != nil {
		return s.runDistributed(p, t)
	}
	outs := make([]Output, s.Procs.Size())
	restore := s.applyScheduling()
	defer restore()
	if s.Trace != nil {
		s.Trace.Reset()
	}
	err := kf.Exec(s.Machine, s.Procs, func(c *kf.Ctx) error {
		out, err := p.Body(c)
		if idx, ok := s.Procs.Index(c.P.Rank()); ok {
			outs[idx] = out
		}
		return err
	})
	if err != nil {
		return Run{}, fmt.Errorf("core: program %q: %w", p.Name, err)
	}
	run := Run{
		MachineElapsed: s.Machine.Elapsed(),
		Stats:          s.Machine.TotalStats(),
		Links:          s.linkCensus(),
	}
	for _, out := range outs {
		if out.Elapsed > run.Elapsed {
			run.Elapsed = out.Elapsed
		}
		run.Values = append(run.Values, out.Values...)
	}
	if run.Elapsed == 0 {
		run.Elapsed = run.MachineElapsed
	}
	s.runs.Add(1)
	return run, nil
}

// Comparison is the verdict of running one Program on two Systems. The
// loosely-coupled model's invariant is that a program's meaning lives in
// its messages: Values and the message census must be bit-identical on
// every conforming transport (Identical), while times may honestly
// diverge when one machine prices links the other does not have.
type Comparison struct {
	// A and B are the two run records.
	A, B Run
	// ValuesIdentical reports bit-identical program values; false when
	// either run emitted none (no evidence is not identity).
	ValuesIdentical bool
	// CensusIdentical reports identical flop, message and byte counters.
	CensusIdentical bool
	// TimesIdentical additionally reports identical elapsed times and
	// full statistics (idle and overhead times included) — expected
	// between systems with the same cost structure, e.g. scheduled
	// versus direct derivation, or a flat federation versus shared.
	TimesIdentical bool
	// Identical is the transport-invariance verdict: values and census
	// both bit-identical.
	Identical bool
}

// CompareRuns renders the bit-identity verdict over two existing run
// records (reuse a baseline run across many comparisons; Compare is the
// two-system convenience form). Runs that emitted no values are never
// values-identical: bit-identity is a positive claim, and a program whose
// body forgot to emit must not pass the verdict vacuously.
func CompareRuns(a, b Run) Comparison {
	c := Comparison{A: a, B: b}
	c.ValuesIdentical = len(a.Values) > 0 && len(a.Values) == len(b.Values)
	if c.ValuesIdentical {
		for i := range a.Values {
			if a.Values[i] != b.Values[i] {
				c.ValuesIdentical = false
				break
			}
		}
	}
	c.CensusIdentical = a.Stats.Flops == b.Stats.Flops &&
		a.Stats.MsgsSent == b.Stats.MsgsSent &&
		a.Stats.BytesSent == b.Stats.BytesSent &&
		a.Stats.MsgsRecv == b.Stats.MsgsRecv
	c.TimesIdentical = a.Elapsed == b.Elapsed &&
		a.MachineElapsed == b.MachineElapsed &&
		a.Stats == b.Stats
	c.Identical = c.ValuesIdentical && c.CensusIdentical
	return c
}

// Compare runs prog on both systems and returns the bit-identity verdict:
// per-run stats and link censuses in A and B, plus the values/census
// verdict fields.
func Compare(prog *Program, sysA, sysB *System) (Comparison, error) {
	ra, err := sysA.RunProgram(prog)
	if err != nil {
		return Comparison{}, err
	}
	rb, err := sysB.RunProgram(prog)
	if err != nil {
		return Comparison{}, err
	}
	return CompareRuns(ra, rb), nil
}
