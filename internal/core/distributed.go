package core

import (
	"encoding/json"
	"errors"
	"fmt"
	"math"
	"sort"
	"sync"

	"repro/internal/kf"
	"repro/internal/machine"
	"repro/internal/topology"
)

// This file is the core half of the ipc execution plane: when a registered
// program runs on a bare ipc transport in an exec-armed binary, the ranks
// execute inside the worker processes instead of the coordinator. The
// coordinator serializes everything a worker needs to rebuild the run — the
// program's registry key and args, the grid shape, the federation's node
// count, the executor name and the full cost model — into a runSpec, the
// transport ships it (machine.RunDistributed), and each worker's execution
// hook (buildWorkerRun below) constructs the identical sub-machine over its
// node's rank window. Per-rank outcomes come back as opaque records that
// runDistributed reassembles into exactly the Run a coordinator-side
// execution would have produced: values concatenated in rank order, stats
// summed in rank order, elapsed times as maxima, censuses from the
// transport's link counters — bit-identical, because the Kahn-network
// determinism that makes transports interchangeable makes processes
// interchangeable too.
//
// Systems that shape the run coordinator-side keep the relay path: Trace
// needs every event in one process, DirectScheduling flips a process-global
// mode the workers cannot see, and a chaos-wrapped transport injects faults
// above the wire (the scenario would have to replicate into every worker to
// mean the same thing). Programs built literally (not via BuildProgram)
// have no registry identity to ship and also run coordinator-side.

// specLink is one directed inter-node link override in a serialized cost
// model.
type specLink struct {
	Src  int     `json:"src"`
	Dst  int     `json:"dst"`
	Lat  float64 `json:"lat"`
	Byte float64 `json:"byte"`
}

// specCost is the wire form of machine.CostModel. JSON float64 encoding is
// shortest-round-trip, so every finite value crosses bit-exactly — the
// virtual times the workers compute must match a coordinator-side run to
// the last bit.
type specCost struct {
	Flop    float64    `json:"flop"`
	Lat     float64    `json:"lat"`
	Byte    float64    `json:"byte"`
	Send    float64    `json:"send"`
	Recv    float64    `json:"recv"`
	HasIn   bool       `json:"hasInter,omitempty"`
	InLat   float64    `json:"interLat,omitempty"`
	InByte  float64    `json:"interByte,omitempty"`
	InLinks []specLink `json:"interLinks,omitempty"`
}

func encodeCost(c machine.CostModel) specCost {
	sc := specCost{Flop: c.FlopTime, Lat: c.Latency, Byte: c.BytePeriod, Send: c.SendOverhead, Recv: c.RecvOverhead}
	if in := c.InterNode; in != nil {
		sc.HasIn = true
		sc.InLat, sc.InByte = in.Default.Latency, in.Default.Byte
		for k, v := range in.Links {
			sc.InLinks = append(sc.InLinks, specLink{Src: k[0], Dst: k[1], Lat: v.Latency, Byte: v.Byte})
		}
		sort.Slice(sc.InLinks, func(i, j int) bool {
			a, b := sc.InLinks[i], sc.InLinks[j]
			if a.Src != b.Src {
				return a.Src < b.Src
			}
			return a.Dst < b.Dst
		})
	}
	return sc
}

func (sc specCost) model() machine.CostModel {
	c := machine.CostModel{FlopTime: sc.Flop, Latency: sc.Lat, BytePeriod: sc.Byte, SendOverhead: sc.Send, RecvOverhead: sc.Recv}
	if sc.HasIn {
		c = c.WithInterNode(sc.InLat, sc.InByte)
		for _, l := range sc.InLinks {
			c = c.WithLink(l.Src, l.Dst, machine.LinkCost{Latency: l.Lat, Byte: l.Byte})
		}
	}
	return c
}

// runSpec is everything a worker needs to rebuild one distributed run.
type runSpec struct {
	Program  string    `json:"program"`
	Args     []float64 `json:"args,omitempty"`
	Shape    []int     `json:"shape"`
	Nodes    int       `json:"nodes"`
	Executor string    `json:"executor,omitempty"`
	Cost     specCost  `json:"cost"`
}

// rankRecordLen is the fixed prefix of a per-rank result record:
// [outElapsed, clock, flops, msgsSent, bytesSent, msgsRecv, idleTime,
// commTime, nValues], followed by nValues program values. The int64
// counters cross as raw bit patterns (i64bits) — a float64 conversion
// would round counts above 2^53.
const rankRecordLen = 9

func i64bits(v int64) float64 { return math.Float64frombits(uint64(v)) }
func bitsI64(f float64) int64 { return int64(math.Float64bits(f)) }

// distributedTransport returns the bare ipc transport when p is eligible to
// execute inside the workers, nil when the run must stay coordinator-side.
// The type assertion is deliberately on the unwrapped concrete type: a
// chaos wrapper (or any other shaping layer) falls through to the relay
// path.
func (s *System) distributedTransport(p *Program) *machine.IPCTransport {
	if p.key == "" || s.Trace != nil || s.direct || !machine.WorkerExecEnabled() {
		return nil
	}
	t, ok := s.Machine.Transport().(*machine.IPCTransport)
	if !ok {
		return nil
	}
	return t
}

// remoteRankError reconstructs a worker rank's failure on the coordinator:
// the exact message text, with the machine-level cause (ErrDeadlock)
// restored for errors.Is.
type remoteRankError struct {
	text string
	base error
}

func (e *remoteRankError) Error() string { return e.text }
func (e *remoteRankError) Unwrap() error { return e.base }

func rankError(r machine.RankResult) error {
	if r.ErrClass == machine.RankErrDeadlock {
		return &remoteRankError{text: r.ErrText, base: machine.ErrDeadlock}
	}
	return errors.New(r.ErrText)
}

// runDistributed executes p inside the transport's worker fleet and
// reassembles the Run record a coordinator-side execution would produce.
func (s *System) runDistributed(p *Program, t *machine.IPCTransport) (Run, error) {
	spec := runSpec{
		Program:  p.key,
		Args:     p.args,
		Shape:    s.Procs.Shape(),
		Nodes:    t.Nodes(),
		Executor: s.executor,
		Cost:     encodeCost(s.Machine.Cost()),
	}
	raw, err := json.Marshal(spec)
	if err != nil {
		return Run{}, fmt.Errorf("core: program %q: encode run spec: %w", p.Name, err)
	}
	results, err := t.RunDistributed(raw)
	if err != nil {
		return Run{}, fmt.Errorf("core: program %q: %w", p.Name, err)
	}
	var run Run
	var firstErr error
	for rank := range results {
		r := &results[rank]
		if r.ErrClass != machine.RankErrNone && firstErr == nil {
			firstErr = rankError(*r)
		}
		rec := r.Payload
		if len(rec) < rankRecordLen || len(rec) != rankRecordLen+int(rec[8]) {
			return Run{}, fmt.Errorf("core: program %q: malformed result record for rank %d", p.Name, rank)
		}
		if rec[0] > run.Elapsed {
			run.Elapsed = rec[0]
		}
		if rec[1] > run.MachineElapsed {
			run.MachineElapsed = rec[1]
		}
		// Summed in ascending rank order — the same float64 addition order
		// TotalStats uses — so the aggregate is bit-identical.
		run.Stats = run.Stats.Add(machine.Stats{
			Flops:     bitsI64(rec[2]),
			MsgsSent:  bitsI64(rec[3]),
			BytesSent: bitsI64(rec[4]),
			MsgsRecv:  bitsI64(rec[5]),
			IdleTime:  rec[6],
			CommTime:  rec[7],
		})
		run.Values = append(run.Values, rec[rankRecordLen:]...)
	}
	if firstErr != nil {
		return Run{}, fmt.Errorf("core: program %q: %w", p.Name, firstErr)
	}
	if run.Elapsed == 0 {
		run.Elapsed = run.MachineElapsed
	}
	run.Links = s.linkCensus()
	s.runs.Add(1)
	return run, nil
}

// workerRun hosts one node's share of a distributed run inside a worker
// process; see machine.WorkerRun.
type workerRun struct {
	p  *Program
	g  *topology.Grid
	wt *machine.WorkerTransport
	m  *machine.Machine
}

func (r *workerRun) Transport() *machine.WorkerTransport { return r.wt }

// Execute runs the node's rank window to completion and packs one result
// record per local rank.
func (r *workerRun) Execute() []machine.RankResult {
	outs := make([]Output, r.g.Size())
	// The first rank-body error is also in RankErrors; Exec's return adds
	// nothing here.
	_ = kf.Exec(r.m, r.g, func(c *kf.Ctx) error {
		out, err := r.p.Body(c)
		if idx, ok := r.g.Index(c.P.Rank()); ok {
			outs[idx] = out
		}
		return err
	})
	lo, hi := r.wt.LocalRanks()
	errs := r.m.RankErrors()
	results := make([]machine.RankResult, 0, hi-lo)
	for rank := lo; rank < hi; rank++ {
		var out Output
		if idx, ok := r.g.Index(rank); ok {
			out = outs[idx]
		}
		st := r.m.ProcStats(rank)
		rec := make([]float64, 0, rankRecordLen+len(out.Values))
		rec = append(rec,
			out.Elapsed,
			r.m.ProcClock(rank),
			i64bits(st.Flops),
			i64bits(st.MsgsSent),
			i64bits(st.BytesSent),
			i64bits(st.MsgsRecv),
			st.IdleTime,
			st.CommTime,
			float64(len(out.Values)),
		)
		rec = append(rec, out.Values...)
		rr := machine.RankResult{Rank: rank, Payload: rec}
		if err := errs[rank]; err != nil {
			rr.ErrText = err.Error()
			if errors.Is(err, machine.ErrDeadlock) {
				rr.ErrClass = machine.RankErrDeadlock
			} else {
				rr.ErrClass = machine.RankErrGeneric
			}
		}
		results = append(results, rr)
	}
	return results
}

// workerRunCache keeps recently built sub-machines warm inside a worker
// process. The raw spec bytes are the cache key — they carry everything
// that shaped the build (program, args, shape, nodes, executor, cost), so
// equal bytes mean an interchangeable sub-machine; the node number keeps
// in-process worker fleets from colliding. A cached hit skips program
// construction, grid and transport setup and machine allocation, which is
// what makes a warm pooled System's runs cheap on the worker side too:
// the coordinator's reset fence already tore the cached transport down,
// and Rebind rewinds it for the new run generation. Entries are plain
// memory (no processes, no sockets), so eviction is just forgetting.
const workerRunCacheCap = 4

type runCache struct {
	sync.Mutex
	runs  map[string]*workerRun
	order []string // LRU first
}

var workerRunCache runCache

func (c *runCache) get(key string) *workerRun {
	c.Lock()
	defer c.Unlock()
	r := c.runs[key]
	if r != nil {
		c.touch(key)
	}
	return r
}

func (c *runCache) put(key string, r *workerRun) {
	c.Lock()
	defer c.Unlock()
	if c.runs == nil {
		c.runs = make(map[string]*workerRun)
	}
	if _, ok := c.runs[key]; !ok && len(c.order) >= workerRunCacheCap {
		delete(c.runs, c.order[0])
		c.order = c.order[1:]
	}
	c.runs[key] = r
	c.touch(key)
}

func (c *runCache) touch(key string) {
	for i, k := range c.order {
		if k == key {
			c.order = append(c.order[:i], c.order[i+1:]...)
			break
		}
	}
	c.order = append(c.order, key)
}

// buildWorkerRun is the worker-side execution hook: parse the spec, rebuild
// the program from the registry, and stand up the sub-machine over this
// node's rank window — or rebind a cached one when this worker has run the
// identical spec before.
func buildWorkerRun(h *machine.WorkerHost, raw []byte) (machine.WorkerRun, error) {
	key := fmt.Sprintf("%d\x00%s", h.Node(), raw)
	if r := workerRunCache.get(key); r != nil {
		if err := h.Rebind(r.wt); err == nil {
			return r, nil
		}
	}
	var spec runSpec
	if err := json.Unmarshal(raw, &spec); err != nil {
		return nil, fmt.Errorf("decode run spec: %v", err)
	}
	p, err := BuildProgram(spec.Program, spec.Args...)
	if err != nil {
		return nil, err
	}
	if len(spec.Shape) == 0 || spec.Nodes <= 0 {
		return nil, fmt.Errorf("run spec has no machine shape")
	}
	for _, e := range spec.Shape {
		if e <= 0 {
			return nil, fmt.Errorf("run spec grid shape %v invalid", spec.Shape)
		}
	}
	g := topology.New(spec.Shape...)
	wt, err := h.NewTransport(g.Size(), spec.Nodes)
	if err != nil {
		return nil, err
	}
	m := machine.NewWithTransport(wt, spec.Cost.model())
	if spec.Executor != "" {
		ex, err := machine.NewExecutorByName(spec.Executor)
		if err != nil {
			return nil, err
		}
		m.SetExecutor(ex)
	}
	r := &workerRun{p: p, g: g, wt: wt, m: m}
	workerRunCache.put(key, r)
	return r, nil
}

// EnableWorkerExec arms the process for worker-side execution: ipc
// coordinators in this process spawn exec-capable workers, and when the
// process is itself spawned as a worker it enters the daemon loop here
// (never returning). It must run after every RegisterProgram the process
// will ever need — internal/progs calls it from its init, after its own
// registrations, which is the ordering Go initialization guarantees.
// Idempotent.
func EnableWorkerExec() {
	if !machine.WorkerExecEnabled() {
		machine.EnableWorkerExec(buildWorkerRun)
	}
}
