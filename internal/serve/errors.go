package serve

import (
	"errors"
	"fmt"
	"net/http"

	"repro/internal/progs"
)

// The server's failure surface, mapped onto HTTP. Admission failures are
// sentinel errors (the scheduler returns them); request failures carry a
// code so clients can branch without parsing prose.

var (
	// ErrDraining rejects new runs while the server is shutting down:
	// in-flight runs complete, nothing new is admitted.
	ErrDraining = errors.New("server is draining")
	// ErrQueueFull rejects a run when the FIFO admission queue is at
	// capacity — the server is overloaded, retry with backoff.
	ErrQueueFull = errors.New("admission queue full")
	// ErrDeadline rejects a run whose deadline expired while it was still
	// queued (runs are never cancelled mid-flight; the deadline bounds the
	// wait for a slot).
	ErrDeadline = errors.New("deadline expired while queued")
	// ErrPoolClosed rejects a checkout after the pool has been drained.
	ErrPoolClosed = errors.New("system pool closed")
)

// Error codes in the JSON error envelope.
const (
	CodeBadRequest = "bad_request" // malformed body, unknown program/transport/executor, bad args
	CodeBadArgs    = "bad_args"    // program args rejected by their schema (Arg names the field)
	CodeDraining   = "draining"    // server shutting down
	CodeQueueFull  = "queue_full"  // admission queue at capacity
	CodeDeadline   = "deadline"    // deadline expired while queued
	CodeRunFailed  = "run_failed"  // the simulation itself failed (e.g. deadlock)
	CodeVerify     = "verify_failed"
	CodeInternal   = "internal"
)

// BadRequestError marks a client-side validation failure: malformed body,
// unknown program/transport/executor, a grid beyond the server's caps, or
// a System configuration the constructor rejected.
type BadRequestError struct{ Msg string }

func (e *BadRequestError) Error() string { return e.Msg }

// RunError marks a simulation that was admitted and then failed — a
// deadlock, a lost ipc worker, a program-body error. The System it ran on
// is discarded, never pooled.
type RunError struct {
	Program string
	Err     error
}

func (e *RunError) Error() string { return fmt.Sprintf("run %s: %v", e.Program, e.Err) }
func (e *RunError) Unwrap() error { return e.Err }

// VerifyError marks a verify-mode request whose two runs on the same
// checked-out System were not bit-identical — the pool's Reset-reuse
// contract failed, and the System was discarded.
type VerifyError struct {
	Program string
	Result  VerifyResult
}

func (e *VerifyError) Error() string {
	return fmt.Sprintf("verify %s: runs not bit-identical (values=%v census=%v times=%v)",
		e.Program, e.Result.ValuesIdentical, e.Result.CensusIdentical, e.Result.TimesIdentical)
}

// ErrorBody is the JSON error envelope every non-2xx response carries.
type ErrorBody struct {
	Error string `json:"error"`
	Code  string `json:"code"`
	// Arg carries the structured argument rejection when Code is
	// bad_args: which argument, what range was allowed.
	Arg *progs.ArgError `json:"arg,omitempty"`
}

// httpStatus maps an admission/run error to its status code and envelope.
func errorEnvelope(err error) (int, ErrorBody) {
	switch {
	case errors.Is(err, ErrDraining):
		return http.StatusServiceUnavailable, ErrorBody{Error: err.Error(), Code: CodeDraining}
	case errors.Is(err, ErrQueueFull):
		return http.StatusTooManyRequests, ErrorBody{Error: err.Error(), Code: CodeQueueFull}
	case errors.Is(err, ErrDeadline):
		return http.StatusGatewayTimeout, ErrorBody{Error: err.Error(), Code: CodeDeadline}
	}
	var ae *progs.ArgError
	if errors.As(err, &ae) {
		return http.StatusBadRequest, ErrorBody{Error: err.Error(), Code: CodeBadArgs, Arg: ae}
	}
	var bad *BadRequestError
	if errors.As(err, &bad) {
		return http.StatusBadRequest, ErrorBody{Error: err.Error(), Code: CodeBadRequest}
	}
	var ve *VerifyError
	if errors.As(err, &ve) {
		return http.StatusInternalServerError, ErrorBody{Error: err.Error(), Code: CodeVerify}
	}
	var re *RunError
	if errors.As(err, &re) {
		return http.StatusUnprocessableEntity, ErrorBody{Error: err.Error(), Code: CodeRunFailed}
	}
	return http.StatusInternalServerError, ErrorBody{Error: err.Error(), Code: CodeInternal}
}
