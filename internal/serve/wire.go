package serve

import (
	"repro/internal/core"
	"repro/internal/machine"
	"repro/internal/progs"
)

// The HTTP/JSON request and response shapes. A RunRequest is exactly the
// tuple core needs to key a warmed System (grid, transport, nodes,
// executor, cost) plus the registry identity of the program to run on it
// ((name, args), the same pair the ipc execution plane ships to its
// workers) — nothing here requires shipping code, which is what makes the
// server multi-tenant-safe: clients select from registered programs, they
// do not define them.

// LinkSpec is one directed inter-node link price override, mirroring
// core.LinkSpec.
type LinkSpec struct {
	Src     int     `json:"src"`
	Dst     int     `json:"dst"`
	Latency float64 `json:"latency"`
	Byte    float64 `json:"byte"`
}

// RunRequest asks the server to run one registered program on one System
// configuration.
type RunRequest struct {
	// Program is the registry name (see /v1/programs); Args its schema-
	// validated argument list.
	Program string    `json:"program"`
	Args    []float64 `json:"args,omitempty"`

	// Grid is the processor array shape, e.g. [8, 8]. Required.
	Grid []int `json:"grid"`
	// Transport is the registry name of the delivery substrate
	// ("shared" when empty).
	Transport string `json:"transport,omitempty"`
	// Nodes is the federation node count (federating transports only).
	Nodes int `json:"nodes,omitempty"`
	// Executor is the engine registry name ("goroutine" when empty).
	Executor string `json:"executor,omitempty"`
	// LinkLatency/LinkByte price the node interconnect (core.LinkCosts);
	// both zero means unpriced. Links carries per-directed-link overrides.
	LinkLatency float64    `json:"link_latency,omitempty"`
	LinkByte    float64    `json:"link_byte,omitempty"`
	Links       []LinkSpec `json:"links,omitempty"`

	// Verify makes the server run the program twice on the checked-out
	// System and fail the request unless the two runs are bit-identical
	// (core.CompareRuns) — the pool's Reset-reuse contract, checked per
	// request.
	Verify bool `json:"verify,omitempty"`
	// TimeoutMs bounds the time the request may wait for an execution
	// slot; 0 uses the server default. Runs are never cancelled once
	// started.
	TimeoutMs int `json:"timeout_ms,omitempty"`
}

// RunResponse reports one completed run.
type RunResponse struct {
	// Program is the resolved program name (e.g. "jacobi-n8-x4"), Key the
	// pool key the System was filed under.
	Program string `json:"program"`
	Key     string `json:"key"`

	// Values, Elapsed, MachineElapsed, Stats and Links mirror core.Run.
	Values         []float64        `json:"values,omitempty"`
	Elapsed        float64          `json:"elapsed"`
	MachineElapsed float64          `json:"machine_elapsed"`
	Stats          machine.Stats    `json:"stats"`
	Links          *core.LinkCensus `json:"links,omitempty"`

	// PoolHit reports whether the run reused a warmed System; Warmed is
	// that System's completed-run count after this request.
	PoolHit bool  `json:"pool_hit"`
	Warmed  int64 `json:"warmed"`

	// QueueNs and RunNs are host-side durations: time spent waiting for
	// an execution slot and time spent running.
	QueueNs int64 `json:"queue_ns"`
	RunNs   int64 `json:"run_ns"`

	// Verify carries the bit-identity verdict when the request asked for
	// it.
	Verify *VerifyResult `json:"verify,omitempty"`
}

// VerifyResult is the bit-identity verdict of running the program twice on
// the same checked-out System.
type VerifyResult struct {
	Identical       bool `json:"identical"`
	ValuesIdentical bool `json:"values_identical"`
	CensusIdentical bool `json:"census_identical"`
	TimesIdentical  bool `json:"times_identical"`
}

// ProgramInfo is one /v1/programs entry: a registered program and its
// argument schema.
type ProgramInfo struct {
	Name string          `json:"name"`
	Args []progs.ArgSpec `json:"args"`
}

// ListResponse is the /v1/programs, /v1/transports and /v1/executors
// payload; only the field matching the endpoint is populated.
type ListResponse struct {
	Programs   []ProgramInfo `json:"programs,omitempty"`
	Transports []string      `json:"transports,omitempty"`
	Executors  []string      `json:"executors,omitempty"`
}
