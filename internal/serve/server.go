// Package serve is the long-lived multi-tenant simulation server: an
// HTTP/JSON daemon (cmd/kfserve) that runs registered programs
// (internal/progs keys + schema-validated args) on pooled, warmed
// core.Systems. The pool amortizes System construction — compiled
// communication schedules, loop plans and size-classed buffer pools
// survive across runs, and for the ipc transport so does the worker
// process fleet — which is what turns "declare once, run anywhere" into
// "declare once, serve millions": a warm Jacobi run costs microseconds
// where a cold construction costs milliseconds.
//
// The layering is pool (warmed Systems, bounded LRU, eviction Closes),
// scheduler (slots bounded to host cores, fair FIFO admission, queue-wait
// deadlines, graceful drain) and server (validation, run orchestration,
// verify mode, metrics). See README "Serving".
package serve

import (
	"context"
	"encoding/json"
	"fmt"
	"net/http"
	"runtime"
	"strings"
	"sync/atomic"
	"time"

	"repro/internal/core"
	"repro/internal/machine"
	"repro/internal/progs"
)

// Config shapes a Server. Zero values select the defaults.
type Config struct {
	// PoolSize bounds the idle warmed-System population (default 8).
	PoolSize int
	// MaxConcurrent bounds simultaneously executing runs (default
	// GOMAXPROCS): each run already parallelizes internally, so slots
	// beyond the host cores only add scheduling pressure.
	MaxConcurrent int
	// MaxQueue bounds the FIFO admission queue (default 4x
	// MaxConcurrent); beyond it requests fail fast with 429.
	MaxQueue int
	// DefaultTimeout bounds a request's queue wait when the request
	// does not set timeout_ms (default 30s).
	DefaultTimeout time.Duration
	// MaxProcessors caps the requested grid size (default 16384, the
	// largest the scaling experiments pin).
	MaxProcessors int
	// MaxNodes caps the requested federation size (default 64).
	MaxNodes int
}

func (c Config) withDefaults() Config {
	if c.PoolSize <= 0 {
		c.PoolSize = 8
	}
	if c.MaxConcurrent <= 0 {
		c.MaxConcurrent = runtime.GOMAXPROCS(0)
	}
	if c.MaxQueue <= 0 {
		c.MaxQueue = 4 * c.MaxConcurrent
	}
	if c.DefaultTimeout <= 0 {
		c.DefaultTimeout = 30 * time.Second
	}
	if c.MaxProcessors <= 0 {
		c.MaxProcessors = 16384
	}
	if c.MaxNodes <= 0 {
		c.MaxNodes = 64
	}
	return c
}

// Server wires the pool, the scheduler and the HTTP surface together.
type Server struct {
	cfg      Config
	pool     *Pool
	sched    *Scheduler
	metrics  *Metrics
	mux      *http.ServeMux
	draining atomic.Bool
}

// New builds a Server from cfg (zero value: all defaults).
func New(cfg Config) *Server {
	cfg = cfg.withDefaults()
	s := &Server{
		cfg:     cfg,
		pool:    NewPool(cfg.PoolSize),
		sched:   NewScheduler(cfg.MaxConcurrent, cfg.MaxQueue),
		metrics: newMetrics(),
		mux:     http.NewServeMux(),
	}
	s.mux.HandleFunc("POST /v1/run", s.handleRun)
	s.mux.HandleFunc("GET /v1/programs", s.handlePrograms)
	s.mux.HandleFunc("GET /v1/transports", s.handleTransports)
	s.mux.HandleFunc("GET /v1/executors", s.handleExecutors)
	s.mux.HandleFunc("GET /healthz", s.handleHealthz)
	s.mux.HandleFunc("GET /metrics", s.handleMetrics)
	return s
}

// Handler returns the server's HTTP handler.
func (s *Server) Handler() http.Handler { return s.mux }

// Pool exposes the warmed-System pool (read-side, for tests and
// benchmarks).
func (s *Server) Pool() *Pool { return s.pool }

// Scheduler exposes the admission scheduler (read-side).
func (s *Server) Scheduler() *Scheduler { return s.sched }

// Drain gracefully shuts the server down: new runs are rejected with 503
// (and /healthz reports draining), queued requests are bounced, in-flight
// runs complete, and then every pooled System is Closed — for ipc Systems
// that tears down their worker processes, so a drained server leaves no
// orphans. ctx bounds the wait for in-flight runs; on expiry the pool is
// closed anyway (in-flight Systems are then Closed on return) and the
// ctx error returned.
func (s *Server) Drain(ctx context.Context) error {
	s.draining.Store(true)
	done := s.sched.Drain()
	var err error
	select {
	case <-done:
	case <-ctx.Done():
		err = fmt.Errorf("serve: drain: %w", ctx.Err())
	}
	if cerr := s.pool.Close(); cerr != nil && err == nil {
		err = cerr
	}
	return err
}

// validate checks the cheap request invariants — program schema, grid
// shape and caps — before the request is allowed to queue. Everything the
// System constructor itself validates (transport names, node
// divisibility, link specs) is deferred to it and classified as a bad
// request there.
func (s *Server) validate(req *RunRequest) error {
	if req.Program == "" {
		return &BadRequestError{Msg: fmt.Sprintf("no program named (registered: %v)", core.ProgramNames())}
	}
	if _, ok := progs.Schema(req.Program); !ok {
		return &BadRequestError{Msg: fmt.Sprintf("unknown program %q (registered: %v)", req.Program, core.ProgramNames())}
	}
	if err := progs.ValidateArgs(req.Program, req.Args); err != nil {
		return err
	}
	if len(req.Grid) == 0 {
		return &BadRequestError{Msg: "no processor grid declared"}
	}
	size := 1
	for _, e := range req.Grid {
		if e <= 0 {
			return &BadRequestError{Msg: fmt.Sprintf("grid extents must be positive, got %v", req.Grid)}
		}
		if size > s.cfg.MaxProcessors/e {
			return &BadRequestError{Msg: fmt.Sprintf("grid %v exceeds the server's %d-processor cap", req.Grid, s.cfg.MaxProcessors)}
		}
		size *= e
	}
	if req.Nodes < 0 || req.Nodes > s.cfg.MaxNodes {
		return &BadRequestError{Msg: fmt.Sprintf("nodes %d outside [0, %d]", req.Nodes, s.cfg.MaxNodes)}
	}
	if req.TimeoutMs < 0 {
		return &BadRequestError{Msg: "timeout_ms must be non-negative"}
	}
	return nil
}

// options translates a validated request into the core option list its
// System is constructed from.
func (req *RunRequest) options() []core.Option {
	opts := []core.Option{core.Grid(req.Grid...)}
	if req.Transport != "" {
		opts = append(opts, core.Transport(req.Transport))
	}
	if req.Nodes > 0 {
		opts = append(opts, core.Nodes(req.Nodes))
	}
	if req.Executor != "" {
		opts = append(opts, core.Executor(req.Executor))
	}
	if req.LinkLatency != 0 || req.LinkByte != 0 || len(req.Links) > 0 {
		links := make([]core.LinkSpec, len(req.Links))
		for i, l := range req.Links {
			links[i] = core.LinkSpec{Src: l.Src, Dst: l.Dst, Latency: l.Latency, Byte: l.Byte}
		}
		opts = append(opts, core.LinkCosts(req.LinkLatency, req.LinkByte, links...))
	}
	return opts
}

// costModel mirrors the cost NewSystem would derive from the request, for
// keying the pool without constructing anything. It may describe an
// invalid configuration (negative multipliers); the constructor is the
// arbiter, this only has to be deterministic per configuration.
func (req *RunRequest) costModel() machine.CostModel {
	cm := machine.IPSC2()
	if req.LinkLatency != 0 || req.LinkByte != 0 || len(req.Links) > 0 {
		cm = cm.WithInterNode(req.LinkLatency, req.LinkByte)
		for _, l := range req.Links {
			cm = cm.WithLink(l.Src, l.Dst, machine.LinkCost{Latency: l.Latency, Byte: l.Byte})
		}
	}
	return cm
}

func (s *Server) handleRun(w http.ResponseWriter, r *http.Request) {
	var req RunRequest
	dec := json.NewDecoder(r.Body)
	dec.DisallowUnknownFields()
	if err := dec.Decode(&req); err != nil {
		s.fail(w, "", &BadRequestError{Msg: fmt.Sprintf("decode request: %v", err)})
		return
	}
	if s.draining.Load() {
		s.fail(w, req.Program, ErrDraining)
		return
	}
	if err := s.validate(&req); err != nil {
		s.fail(w, req.Program, err)
		return
	}
	timeout := s.cfg.DefaultTimeout
	if req.TimeoutMs > 0 {
		timeout = time.Duration(req.TimeoutMs) * time.Millisecond
	}
	ctx, cancel := context.WithTimeout(r.Context(), timeout)
	defer cancel()

	queued := time.Now()
	if err := s.sched.Acquire(ctx); err != nil {
		s.fail(w, req.Program, err)
		return
	}
	defer s.sched.Release()
	queueWait := time.Since(queued)
	s.metrics.queueSeconds.observe(queueWait.Seconds())

	key := core.PoolKey(req.Grid, req.Transport, req.Nodes, req.Executor, req.costModel())
	resp, err := s.execute(&req, key, queueWait)
	if err != nil {
		s.fail(w, req.Program, err)
		return
	}
	s.metrics.countRun(req.Program, "ok")
	writeJSON(w, http.StatusOK, resp)
}

// execute checks a System out of the pool, runs the program (twice under
// verify), and files the System back — or discards it when the run
// failed, since a failed run may leave a poisoned transport (a lost ipc
// worker does not come back).
func (s *Server) execute(req *RunRequest, key string, queueWait time.Duration) (*RunResponse, error) {
	prog, err := core.BuildProgram(req.Program, req.Args...)
	if err != nil {
		// Args were schema-validated, so this is a factory-level
		// rejection; surface it as the client's error.
		return nil, &BadRequestError{Msg: err.Error()}
	}
	lease, err := s.pool.Checkout(key, func() (*core.System, error) {
		sys, err := core.NewSystem(req.options()...)
		if err != nil {
			// Constructor rejections (unknown transport, node count that
			// does not divide, bad link specs) are configuration errors.
			return nil, &BadRequestError{Msg: err.Error()}
		}
		return sys, nil
	})
	if err != nil {
		return nil, err
	}
	started := time.Now()
	run, err := lease.Sys.RunProgram(prog)
	if err != nil {
		lease.Discard()
		return nil, &RunError{Program: prog.Name, Err: err}
	}
	resp := &RunResponse{
		Program:        prog.Name,
		Key:            key,
		Values:         run.Values,
		Elapsed:        run.Elapsed,
		MachineElapsed: run.MachineElapsed,
		Stats:          run.Stats,
		Links:          run.Links,
		PoolHit:        lease.Hit(),
		QueueNs:        queueWait.Nanoseconds(),
	}
	if req.Verify {
		again, err := lease.Sys.RunProgram(prog)
		if err != nil {
			lease.Discard()
			return nil, &RunError{Program: prog.Name, Err: err}
		}
		cmp := core.CompareRuns(run, again)
		resp.Verify = &VerifyResult{
			Identical:       cmp.Identical,
			ValuesIdentical: cmp.ValuesIdentical,
			CensusIdentical: cmp.CensusIdentical,
			TimesIdentical:  cmp.TimesIdentical,
		}
		if !cmp.Identical {
			// A pooled System that does not reproduce its own run
			// bit-for-bit must never serve another request.
			lease.Discard()
			return nil, &VerifyError{Program: prog.Name, Result: *resp.Verify}
		}
	}
	resp.RunNs = time.Since(started).Nanoseconds()
	s.metrics.runSeconds.observe(time.Since(started).Seconds())
	resp.Warmed = lease.Sys.RunCount()
	lease.Return()
	return resp, nil
}

// fail writes the error envelope and counts the outcome.
func (s *Server) fail(w http.ResponseWriter, program string, err error) {
	status, body := errorEnvelope(err)
	if program == "" {
		program = "_"
	}
	s.metrics.countRun(program, body.Code)
	writeJSON(w, status, body)
}

func (s *Server) handlePrograms(w http.ResponseWriter, r *http.Request) {
	var resp ListResponse
	for _, name := range core.ProgramNames() {
		specs, _ := progs.Schema(name)
		resp.Programs = append(resp.Programs, ProgramInfo{Name: name, Args: specs})
	}
	writeJSON(w, http.StatusOK, resp)
}

func (s *Server) handleTransports(w http.ResponseWriter, r *http.Request) {
	writeJSON(w, http.StatusOK, ListResponse{Transports: machine.TransportNames()})
}

func (s *Server) handleExecutors(w http.ResponseWriter, r *http.Request) {
	writeJSON(w, http.StatusOK, ListResponse{Executors: machine.ExecutorNames()})
}

func (s *Server) handleHealthz(w http.ResponseWriter, r *http.Request) {
	if s.draining.Load() {
		w.WriteHeader(http.StatusServiceUnavailable)
		fmt.Fprintln(w, "draining")
		return
	}
	fmt.Fprintln(w, "ok")
}

func (s *Server) handleMetrics(w http.ResponseWriter, r *http.Request) {
	var b strings.Builder
	ps := s.pool.Stats()
	fmt.Fprintf(&b, "# TYPE kfserve_pool_hits_total counter\nkfserve_pool_hits_total %d\n", ps.Hits)
	fmt.Fprintf(&b, "# TYPE kfserve_pool_misses_total counter\nkfserve_pool_misses_total %d\n", ps.Misses)
	fmt.Fprintf(&b, "# TYPE kfserve_pool_evictions_total counter\nkfserve_pool_evictions_total %d\n", ps.Evictions)
	fmt.Fprintf(&b, "# TYPE kfserve_pool_discards_total counter\nkfserve_pool_discards_total %d\n", ps.Discards)
	fmt.Fprintf(&b, "# TYPE kfserve_pool_idle gauge\nkfserve_pool_idle %d\n", ps.Idle)
	fmt.Fprintf(&b, "# TYPE kfserve_pool_idle_systems gauge\n# TYPE kfserve_pool_warm_runs gauge\n")
	for _, wk := range s.pool.Warmth() {
		fmt.Fprintf(&b, "kfserve_pool_idle_systems{key=%q} %d\n", wk.Key, wk.Idle)
		fmt.Fprintf(&b, "kfserve_pool_warm_runs{key=%q} %d\n", wk.Key, wk.Runs)
	}
	fmt.Fprintf(&b, "# TYPE kfserve_queue_depth gauge\nkfserve_queue_depth %d\n", s.sched.QueueDepth())
	fmt.Fprintf(&b, "# TYPE kfserve_inflight gauge\nkfserve_inflight %d\n", s.sched.Inflight())
	draining := 0
	if s.draining.Load() {
		draining = 1
	}
	fmt.Fprintf(&b, "# TYPE kfserve_draining gauge\nkfserve_draining %d\n", draining)
	s.metrics.writeRuns(&b)
	s.metrics.runSeconds.write(&b, "kfserve_run_seconds")
	s.metrics.queueSeconds.write(&b, "kfserve_queue_seconds")
	w.Header().Set("Content-Type", "text/plain; version=0.0.4")
	fmt.Fprint(w, b.String())
}

func writeJSON(w http.ResponseWriter, status int, v any) {
	w.Header().Set("Content-Type", "application/json")
	w.WriteHeader(status)
	enc := json.NewEncoder(w)
	_ = enc.Encode(v)
}
