package serve

import (
	"container/list"
	"sort"
	"sync"

	"repro/internal/core"
)

// Pool is a bounded LRU pool of warmed core.Systems, keyed by
// core.PoolKey. A System is expensive to construct (machine, transport,
// and for ipc a fleet of worker processes) and cheap to reuse
// (Machine.Run resets clocks, counters and the transport at the start of
// every run, and compiled schedules, loop plans and buffer pools survive
// across runs) — so the pool amortizes construction across requests the
// way the inspector/executor split amortizes schedule derivation across
// iterations.
//
// Checkout hands a System out exclusively: concurrent requests for the
// same key either take distinct idle Systems or build fresh ones, never
// share. Return files the System back as most-recently-used; when the
// idle population exceeds the capacity, the least-recently-used idle
// System — whatever its key — is evicted and Closed, which for ipc
// Systems tears down real worker processes. Discard closes a System
// without pooling it (a failed run may hold a poisoned transport — a
// worker lost mid-run does not come back).
type Pool struct {
	mu     sync.Mutex
	cap    int
	closed bool
	idle   *list.List               // of *poolEntry; front = MRU, evict from back
	byKey  map[string][]*list.Element // idle entries per key, top of slice = MRU

	hits, misses, evictions, discards int64
}

type poolEntry struct {
	key string
	sys *core.System
}

// NewPool builds a pool bounding the idle warmed-System population to
// capacity (minimum 1). Checked-out Systems do not count against it.
func NewPool(capacity int) *Pool {
	if capacity < 1 {
		capacity = 1
	}
	return &Pool{cap: capacity, idle: list.New(), byKey: map[string][]*list.Element{}}
}

// Lease is one exclusive checkout. Exactly one of Return or Discard must
// be called when the run is over.
type Lease struct {
	// Sys is the checked-out System, exclusively owned until returned.
	Sys  *core.System
	key  string
	hit  bool
	p    *Pool
	done bool
}

// Hit reports whether the lease reused a warmed System from the pool.
func (l *Lease) Hit() bool { return l.hit }

// Key returns the pool key the lease was checked out under.
func (l *Lease) Key() string { return l.key }

// Checkout takes an idle System filed under key, or builds a fresh one
// with build when none is idle (construction happens outside the pool
// lock, so a slow build — spawning ipc workers — never blocks other
// checkouts). After the pool is Closed, checkouts fail with ErrPoolClosed.
func (p *Pool) Checkout(key string, build func() (*core.System, error)) (*Lease, error) {
	p.mu.Lock()
	if p.closed {
		p.mu.Unlock()
		return nil, ErrPoolClosed
	}
	if elems := p.byKey[key]; len(elems) > 0 {
		el := elems[len(elems)-1] // most recently warmed first
		p.byKey[key] = elems[:len(elems)-1]
		if len(p.byKey[key]) == 0 {
			delete(p.byKey, key)
		}
		ent := p.idle.Remove(el).(*poolEntry)
		p.hits++
		p.mu.Unlock()
		return &Lease{Sys: ent.sys, key: key, hit: true, p: p}, nil
	}
	p.misses++
	p.mu.Unlock()
	sys, err := build()
	if err != nil {
		return nil, err
	}
	return &Lease{Sys: sys, key: key, p: p}, nil
}

// Return files the System back into the pool as most-recently-used,
// evicting (and Closing) the least-recently-used idle System when the
// population exceeds the capacity. Returning to a closed pool Closes the
// System instead. Idempotent with Discard: the first call wins.
func (l *Lease) Return() {
	if l.done {
		return
	}
	l.done = true
	p := l.p
	p.mu.Lock()
	if p.closed {
		p.mu.Unlock()
		l.Sys.Close()
		return
	}
	el := p.idle.PushFront(&poolEntry{key: l.key, sys: l.Sys})
	p.byKey[l.key] = append(p.byKey[l.key], el)
	var evicted *core.System
	if p.idle.Len() > p.cap {
		back := p.idle.Back()
		ent := p.idle.Remove(back).(*poolEntry)
		elems := p.byKey[ent.key]
		for i, e := range elems {
			if e == back {
				p.byKey[ent.key] = append(elems[:i], elems[i+1:]...)
				break
			}
		}
		if len(p.byKey[ent.key]) == 0 {
			delete(p.byKey, ent.key)
		}
		p.evictions++
		evicted = ent.sys
	}
	p.mu.Unlock()
	if evicted != nil {
		// Close outside the lock: tearing down an ipc worker fleet takes
		// real time.
		evicted.Close()
	}
}

// Discard closes the System without pooling it — for runs that failed and
// may have poisoned the transport. Idempotent with Return.
func (l *Lease) Discard() {
	if l.done {
		return
	}
	l.done = true
	l.p.mu.Lock()
	l.p.discards++
	l.p.mu.Unlock()
	l.Sys.Close()
}

// Close drains the pool: every idle System is Closed (ipc worker fleets
// torn down), and all future checkouts fail with ErrPoolClosed. Leases
// still out have their Systems Closed on Return. Idempotent.
func (p *Pool) Close() error {
	p.mu.Lock()
	if p.closed {
		p.mu.Unlock()
		return nil
	}
	p.closed = true
	var all []*core.System
	for el := p.idle.Front(); el != nil; el = el.Next() {
		all = append(all, el.Value.(*poolEntry).sys)
	}
	p.idle.Init()
	p.byKey = map[string][]*list.Element{}
	p.mu.Unlock()
	var firstErr error
	for _, sys := range all {
		if err := sys.Close(); err != nil && firstErr == nil {
			firstErr = err
		}
	}
	return firstErr
}

// PoolStats is a snapshot of the pool's counters.
type PoolStats struct {
	Hits, Misses, Evictions, Discards int64
	Idle                              int
}

// Stats snapshots the pool counters.
func (p *Pool) Stats() PoolStats {
	p.mu.Lock()
	defer p.mu.Unlock()
	return PoolStats{Hits: p.hits, Misses: p.misses, Evictions: p.evictions,
		Discards: p.discards, Idle: p.idle.Len()}
}

// KeyWarmth is the per-key warm population: how many idle Systems are
// filed under the key and how many runs they have completed between them.
type KeyWarmth struct {
	Key  string
	Idle int
	Runs int64
}

// Warmth reports the per-key idle populations, sorted by key for
// deterministic metrics output.
func (p *Pool) Warmth() []KeyWarmth {
	p.mu.Lock()
	defer p.mu.Unlock()
	out := make([]KeyWarmth, 0, len(p.byKey))
	for key, elems := range p.byKey {
		w := KeyWarmth{Key: key, Idle: len(elems)}
		for _, el := range elems {
			w.Runs += el.Value.(*poolEntry).sys.RunCount()
		}
		out = append(out, w)
	}
	sort.Slice(out, func(i, j int) bool { return out[i].Key < out[j].Key })
	return out
}
