package serve_test

import (
	"fmt"
	"sync"
	"testing"

	"repro/internal/core"
	"repro/internal/machine"
	"repro/internal/serve"
)

// The pool's whole premise is that a Reset-reused System is
// indistinguishable from a fresh one. This stress test hammers that claim
// under -race: N goroutines funnel through a size-1 pool — checkout, run,
// return — on every transport, and every run's values and virtual times
// must be bit-identical to a fresh System's. A size-1 pool maximizes
// churn: concurrent checkouts miss and build, returns beyond capacity
// evict and Close, so the same test also races construction, eviction and
// teardown against live runs.
func TestPoolReuseBitIdenticalUnderStress(t *testing.T) {
	cases := []struct {
		name       string
		opts       []core.Option
		key        string
		goroutines int
		iters      int
	}{
		{
			name:       "shared",
			opts:       []core.Option{core.Grid(2, 2)},
			key:        core.PoolKey([]int{2, 2}, "", 0, "", machine.CostModel{}),
			goroutines: 8,
			iters:      6,
		},
		{
			name:       "federated",
			opts:       []core.Option{core.Grid(2, 2), core.Transport("federated"), core.Nodes(2)},
			key:        core.PoolKey([]int{2, 2}, "federated", 2, "", machine.CostModel{}),
			goroutines: 6,
			iters:      4,
		},
		{
			name:       "ipc",
			opts:       []core.Option{core.Grid(2, 2), core.Transport("ipc"), core.Nodes(2)},
			key:        core.PoolKey([]int{2, 2}, "ipc", 2, "", machine.CostModel{}),
			goroutines: 3,
			iters:      2,
		},
	}
	prog, err := core.BuildProgram("jacobi", 32, 2)
	if err != nil {
		t.Fatal(err)
	}
	for _, tc := range cases {
		tc := tc
		t.Run(tc.name, func(t *testing.T) {
			// The truth: one run on a fresh, never-pooled System.
			fresh, err := core.NewSystem(tc.opts...)
			if err != nil {
				t.Fatal(err)
			}
			want, err := fresh.RunProgram(prog)
			fresh.Close()
			if err != nil {
				t.Fatal(err)
			}

			pool := serve.NewPool(1)
			defer pool.Close()
			var wg sync.WaitGroup
			errs := make(chan error, tc.goroutines*tc.iters)
			for g := 0; g < tc.goroutines; g++ {
				wg.Add(1)
				go func() {
					defer wg.Done()
					for i := 0; i < tc.iters; i++ {
						lease, err := pool.Checkout(tc.key, func() (*core.System, error) {
							return core.NewSystem(tc.opts...)
						})
						if err != nil {
							errs <- err
							return
						}
						run, err := lease.Sys.RunProgram(prog)
						if err != nil {
							lease.Discard()
							errs <- err
							return
						}
						lease.Return()
						cmp := core.CompareRuns(want, run)
						if !cmp.Identical || !cmp.TimesIdentical {
							errs <- fmt.Errorf("pooled run diverged from fresh: values=%v census=%v times=%v",
								cmp.ValuesIdentical, cmp.CensusIdentical, cmp.TimesIdentical)
							return
						}
					}
				}()
			}
			wg.Wait()
			close(errs)
			for err := range errs {
				t.Error(err)
			}
			st := pool.Stats()
			if st.Idle > 1 {
				t.Errorf("size-1 pool holds %d idle systems", st.Idle)
			}
			if st.Hits == 0 {
				t.Error("stress run never reused a warmed system")
			}
		})
	}
}
