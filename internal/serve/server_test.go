package serve_test

import (
	"bytes"
	"encoding/json"
	"io"
	"net/http"
	"net/http/httptest"
	"strings"
	"testing"

	"repro/internal/core"
	"repro/internal/serve"
)

func newTestServer(t *testing.T, cfg serve.Config) (*serve.Server, *httptest.Server) {
	t.Helper()
	s := serve.New(cfg)
	ts := httptest.NewServer(s.Handler())
	t.Cleanup(ts.Close)
	t.Cleanup(func() { s.Pool().Close() })
	return s, ts
}

func postRun(t *testing.T, ts *httptest.Server, req serve.RunRequest) (*http.Response, []byte) {
	t.Helper()
	body, err := json.Marshal(req)
	if err != nil {
		t.Fatal(err)
	}
	resp, err := http.Post(ts.URL+"/v1/run", "application/json", bytes.NewReader(body))
	if err != nil {
		t.Fatal(err)
	}
	data, err := io.ReadAll(resp.Body)
	resp.Body.Close()
	if err != nil {
		t.Fatal(err)
	}
	return resp, data
}

func decodeRun(t *testing.T, data []byte) serve.RunResponse {
	t.Helper()
	var rr serve.RunResponse
	if err := json.Unmarshal(data, &rr); err != nil {
		t.Fatalf("decode run response: %v\n%s", err, data)
	}
	return rr
}

func TestRunPoolHitAndBitIdentity(t *testing.T) {
	_, ts := newTestServer(t, serve.Config{})
	req := serve.RunRequest{Program: "jacobi", Args: []float64{8, 4}, Grid: []int{4, 4}}
	resp, data := postRun(t, ts, req)
	if resp.StatusCode != http.StatusOK {
		t.Fatalf("first run: %d %s", resp.StatusCode, data)
	}
	first := decodeRun(t, data)
	if first.PoolHit {
		t.Error("first request reported a pool hit")
	}
	if len(first.Values) == 0 || first.Elapsed <= 0 {
		t.Fatalf("first run empty: %+v", first)
	}

	resp, data = postRun(t, ts, req)
	if resp.StatusCode != http.StatusOK {
		t.Fatalf("second run: %d %s", resp.StatusCode, data)
	}
	second := decodeRun(t, data)
	if !second.PoolHit {
		t.Error("second identical request missed the pool")
	}
	if second.Warmed < 2 {
		t.Errorf("reused system reports %d completed runs", second.Warmed)
	}
	if first.Key != second.Key {
		t.Errorf("keys diverged: %q vs %q", first.Key, second.Key)
	}
	// The warm run must mean exactly what the cold one meant.
	if len(first.Values) != len(second.Values) {
		t.Fatal("value lengths diverged across pool reuse")
	}
	for i := range first.Values {
		if first.Values[i] != second.Values[i] {
			t.Fatalf("value %d diverged across pool reuse", i)
		}
	}
	if first.Elapsed != second.Elapsed || first.Stats != second.Stats {
		t.Error("elapsed/stats diverged across pool reuse")
	}
}

func TestRunVerifyMode(t *testing.T) {
	_, ts := newTestServer(t, serve.Config{})
	req := serve.RunRequest{Program: "jacobi", Args: []float64{8, 2}, Grid: []int{2, 2}, Verify: true}
	resp, data := postRun(t, ts, req)
	if resp.StatusCode != http.StatusOK {
		t.Fatalf("verify run: %d %s", resp.StatusCode, data)
	}
	rr := decodeRun(t, data)
	if rr.Verify == nil || !rr.Verify.Identical || !rr.Verify.TimesIdentical {
		t.Errorf("verify verdict %+v", rr.Verify)
	}
}

func TestRunFederatedAndDistinctKeys(t *testing.T) {
	_, ts := newTestServer(t, serve.Config{})
	shared := serve.RunRequest{Program: "jacobi", Args: []float64{8, 2}, Grid: []int{2, 2}}
	fed := serve.RunRequest{Program: "jacobi", Args: []float64{8, 2}, Grid: []int{2, 2},
		Transport: "federated", Nodes: 2, LinkLatency: 4, LinkByte: 8}
	_, sharedData := postRun(t, ts, shared)
	respF, fedData := postRun(t, ts, fed)
	if respF.StatusCode != http.StatusOK {
		t.Fatalf("federated run: %d %s", respF.StatusCode, fedData)
	}
	sr, fr := decodeRun(t, sharedData), decodeRun(t, fedData)
	if sr.Key == fr.Key {
		t.Error("shared and priced-federated requests share a pool key")
	}
	if fr.Links == nil || fr.Links.Nodes != 2 {
		t.Errorf("federated run census %+v", fr.Links)
	}
	// Transport invariance: same program, same values.
	for i := range sr.Values {
		if sr.Values[i] != fr.Values[i] {
			t.Fatal("values diverged across transports")
		}
	}
}

func TestRunRejectsMalformedRequests(t *testing.T) {
	_, ts := newTestServer(t, serve.Config{MaxProcessors: 64})
	cases := []struct {
		name       string
		req        serve.RunRequest
		wantStatus int
		wantCode   string
	}{
		{"unknown program", serve.RunRequest{Program: "nope", Grid: []int{4}}, 400, serve.CodeBadRequest},
		{"bad args", serve.RunRequest{Program: "jacobi", Args: []float64{-3, 2}, Grid: []int{2, 2}}, 400, serve.CodeBadArgs},
		{"arity", serve.RunRequest{Program: "jacobi", Args: []float64{8}, Grid: []int{2, 2}}, 400, serve.CodeBadArgs},
		{"no grid", serve.RunRequest{Program: "jacobi", Args: []float64{8, 2}}, 400, serve.CodeBadRequest},
		{"grid too big", serve.RunRequest{Program: "jacobi", Args: []float64{8, 2}, Grid: []int{128}}, 400, serve.CodeBadRequest},
		{"bad extent", serve.RunRequest{Program: "jacobi", Args: []float64{8, 2}, Grid: []int{0}}, 400, serve.CodeBadRequest},
		{"unknown transport", serve.RunRequest{Program: "jacobi", Args: []float64{8, 2}, Grid: []int{2, 2}, Transport: "carrier-pigeon"}, 400, serve.CodeBadRequest},
		{"nodes on shared", serve.RunRequest{Program: "jacobi", Args: []float64{8, 2}, Grid: []int{2, 2}, Nodes: 2}, 400, serve.CodeBadRequest},
		{"nodes not dividing", serve.RunRequest{Program: "jacobi", Args: []float64{8, 2}, Grid: []int{2, 2}, Transport: "federated", Nodes: 3}, 400, serve.CodeBadRequest},
	}
	for _, tc := range cases {
		resp, data := postRun(t, ts, tc.req)
		if resp.StatusCode != tc.wantStatus {
			t.Errorf("%s: status %d, want %d (%s)", tc.name, resp.StatusCode, tc.wantStatus, data)
			continue
		}
		var eb serve.ErrorBody
		if err := json.Unmarshal(data, &eb); err != nil {
			t.Errorf("%s: decode error body: %v", tc.name, err)
			continue
		}
		if eb.Code != tc.wantCode {
			t.Errorf("%s: code %q, want %q (%s)", tc.name, eb.Code, tc.wantCode, eb.Error)
		}
		if tc.wantCode == serve.CodeBadArgs && tc.name == "bad args" {
			if eb.Arg == nil || eb.Arg.Arg != "n" || eb.Arg.Min != 1 {
				t.Errorf("%s: structured arg %+v", tc.name, eb.Arg)
			}
		}
	}
	// Unknown JSON fields are rejected, not ignored: a typoed option must
	// not silently select a default.
	resp, err := http.Post(ts.URL+"/v1/run", "application/json",
		strings.NewReader(`{"program":"jacobi","args":[8,2],"grid":[4],"transprot":"ipc"}`))
	if err != nil {
		t.Fatal(err)
	}
	resp.Body.Close()
	if resp.StatusCode != http.StatusBadRequest {
		t.Errorf("unknown field accepted: %d", resp.StatusCode)
	}
}

func TestRunFailureDiscardsSystem(t *testing.T) {
	s, ts := newTestServer(t, serve.Config{})
	req := serve.RunRequest{Program: "stall", Grid: []int{2}}
	resp, data := postRun(t, ts, req)
	if resp.StatusCode != http.StatusUnprocessableEntity {
		t.Fatalf("stall run: %d %s", resp.StatusCode, data)
	}
	var eb serve.ErrorBody
	if err := json.Unmarshal(data, &eb); err != nil {
		t.Fatal(err)
	}
	if eb.Code != serve.CodeRunFailed || !strings.Contains(eb.Error, "deadlock") {
		t.Errorf("error body %+v", eb)
	}
	st := s.Pool().Stats()
	if st.Discards != 1 || st.Idle != 0 {
		t.Errorf("failed run was pooled: %+v", st)
	}
}

func TestListingsAndHealth(t *testing.T) {
	_, ts := newTestServer(t, serve.Config{})
	get := func(path string) []byte {
		t.Helper()
		resp, err := http.Get(ts.URL + path)
		if err != nil {
			t.Fatal(err)
		}
		defer resp.Body.Close()
		if resp.StatusCode != http.StatusOK {
			t.Fatalf("%s: %d", path, resp.StatusCode)
		}
		data, _ := io.ReadAll(resp.Body)
		return data
	}
	var progsResp serve.ListResponse
	if err := json.Unmarshal(get("/v1/programs"), &progsResp); err != nil {
		t.Fatal(err)
	}
	names := map[string]bool{}
	for _, p := range progsResp.Programs {
		names[p.Name] = true
		if p.Name == "jacobi" && (len(p.Args) != 2 || p.Args[0].Name != "n") {
			t.Errorf("jacobi schema in listing: %+v", p.Args)
		}
	}
	for _, want := range core.ProgramNames() {
		if !names[want] {
			t.Errorf("program %q missing from listing", want)
		}
	}
	var tr serve.ListResponse
	if err := json.Unmarshal(get("/v1/transports"), &tr); err != nil {
		t.Fatal(err)
	}
	if len(tr.Transports) == 0 {
		t.Error("no transports listed")
	}
	var ex serve.ListResponse
	if err := json.Unmarshal(get("/v1/executors"), &ex); err != nil {
		t.Fatal(err)
	}
	if len(ex.Executors) == 0 {
		t.Error("no executors listed")
	}
	if !strings.Contains(string(get("/healthz")), "ok") {
		t.Error("healthz not ok")
	}
}

func TestMetricsExposition(t *testing.T) {
	_, ts := newTestServer(t, serve.Config{})
	req := serve.RunRequest{Program: "jacobi", Args: []float64{8, 2}, Grid: []int{2, 2}}
	postRun(t, ts, req)
	postRun(t, ts, req)
	resp, err := http.Get(ts.URL + "/metrics")
	if err != nil {
		t.Fatal(err)
	}
	defer resp.Body.Close()
	data, _ := io.ReadAll(resp.Body)
	text := string(data)
	for _, want := range []string{
		"kfserve_pool_hits_total 1",
		"kfserve_pool_misses_total 1",
		"kfserve_pool_idle 1",
		"kfserve_pool_idle_systems{key=",
		"kfserve_pool_warm_runs{key=",
		"kfserve_queue_depth 0",
		"kfserve_inflight 0",
		"kfserve_draining 0",
		`kfserve_runs_total{program="jacobi",outcome="ok"} 2`,
		"kfserve_run_seconds_bucket{le=\"+Inf\"} 2",
		"kfserve_run_seconds_count 2",
		"kfserve_queue_seconds_count 2",
	} {
		if !strings.Contains(text, want) {
			t.Errorf("metrics missing %q\n%s", want, text)
		}
	}
}
