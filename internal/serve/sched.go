package serve

import (
	"container/list"
	"context"
	"sync"
)

// Scheduler bounds concurrent runs to a fixed slot count (host cores, by
// default) with a fair FIFO admission queue: a request that cannot get a
// slot immediately waits in arrival order, and a freed slot always goes
// to the head of the queue — no barging. Deadlines bound only the queue
// wait (a simulation run, once started, always completes; cancelling one
// mid-flight would leave a half-run System no pool should reuse). Drain
// flips the scheduler into shutdown: queued and future requests are
// rejected with ErrDraining, in-flight runs complete, and the returned
// channel closes when the last one does.
type Scheduler struct {
	mu        sync.Mutex
	slots     int // free execution slots
	maxQueue  int
	queue     *list.List // of *waiter, front = oldest
	inflight  int
	draining  bool
	drainDone chan struct{}
}

// waiter.ready is buffered so grants and rejections never block the
// scheduler: a grant (nil) or rejection (error) is deposited under the
// lock, and exactly one of Release/Drain/the waiter's own ctx branch
// consumes it.
type waiter struct {
	ready chan error
}

// NewScheduler builds a scheduler with the given concurrency and queue
// bounds (minimums 1 and 0).
func NewScheduler(maxConcurrent, maxQueue int) *Scheduler {
	if maxConcurrent < 1 {
		maxConcurrent = 1
	}
	if maxQueue < 0 {
		maxQueue = 0
	}
	return &Scheduler{slots: maxConcurrent, maxQueue: maxQueue, queue: list.New()}
}

// Acquire takes an execution slot, waiting in FIFO order when all are
// busy. It fails with ErrDraining during shutdown, ErrQueueFull when the
// queue is at capacity, and ErrDeadline when ctx expires before a slot
// frees.
func (s *Scheduler) Acquire(ctx context.Context) error {
	s.mu.Lock()
	if s.draining {
		s.mu.Unlock()
		return ErrDraining
	}
	if s.slots > 0 {
		s.slots--
		s.inflight++
		s.mu.Unlock()
		return nil
	}
	if s.queue.Len() >= s.maxQueue {
		s.mu.Unlock()
		return ErrQueueFull
	}
	w := &waiter{ready: make(chan error, 1)}
	el := s.queue.PushBack(w)
	s.mu.Unlock()
	select {
	case err := <-w.ready:
		return err
	case <-ctx.Done():
		s.mu.Lock()
		// The grant may have raced the deadline: Release deposits it
		// under the lock, so checking the channel here is decisive. An
		// already-granted slot is taken (returning it would barge past
		// the queue), and the run proceeds — the deadline bounds the
		// wait, not the run.
		select {
		case err := <-w.ready:
			s.mu.Unlock()
			return err
		default:
		}
		s.queue.Remove(el)
		s.mu.Unlock()
		return ErrDeadline
	}
}

// Release frees a slot, handing it directly to the oldest queued waiter
// if any. It must be called exactly once per successful Acquire.
func (s *Scheduler) Release() {
	s.mu.Lock()
	s.inflight--
	if el := s.queue.Front(); el != nil {
		w := s.queue.Remove(el).(*waiter)
		s.inflight++
		w.ready <- nil
		s.mu.Unlock()
		return
	}
	s.slots++
	if s.draining && s.inflight == 0 && s.drainDone != nil {
		close(s.drainDone)
		s.drainDone = nil
	}
	s.mu.Unlock()
}

// Drain flips the scheduler into shutdown: every queued waiter is
// rejected with ErrDraining, future Acquires fail the same way, and the
// returned channel closes once every in-flight run has Released. Calling
// Drain again returns a channel that is already closed if the first drain
// has completed.
func (s *Scheduler) Drain() <-chan struct{} {
	s.mu.Lock()
	defer s.mu.Unlock()
	if !s.draining {
		s.draining = true
		s.drainDone = make(chan struct{})
		for el := s.queue.Front(); el != nil; el = el.Next() {
			el.Value.(*waiter).ready <- ErrDraining
		}
		s.queue.Init()
	}
	if s.drainDone == nil { // drain already completed
		done := make(chan struct{})
		close(done)
		return done
	}
	if s.inflight == 0 {
		close(s.drainDone)
		done := s.drainDone
		s.drainDone = nil
		return done
	}
	return s.drainDone
}

// Draining reports whether the scheduler is in shutdown.
func (s *Scheduler) Draining() bool {
	s.mu.Lock()
	defer s.mu.Unlock()
	return s.draining
}

// QueueDepth returns the number of requests waiting for a slot.
func (s *Scheduler) QueueDepth() int {
	s.mu.Lock()
	defer s.mu.Unlock()
	return s.queue.Len()
}

// Inflight returns the number of runs currently holding slots.
func (s *Scheduler) Inflight() int {
	s.mu.Lock()
	defer s.mu.Unlock()
	return s.inflight
}
