package serve_test

import (
	"context"
	"encoding/json"
	"net/http"
	"net/http/httptest"
	"os"
	"syscall"
	"testing"
	"time"

	"repro/internal/serve"
)

func waitFor(t *testing.T, cond func() bool) {
	t.Helper()
	deadline := time.Now().Add(30 * time.Second)
	for !cond() {
		if time.Now().After(deadline) {
			t.Fatal("condition not reached")
		}
		time.Sleep(time.Millisecond)
	}
}

// Graceful drain, end to end: with an ipc System warm in the pool (live
// worker processes) and a run in flight, Drain must let the in-flight run
// complete with 200, reject new work with 503 draining, and then Close
// every pooled System — for ipc that tears down the worker fleet, so a
// drained server leaves no orphan processes. cmd/kfserve wires SIGTERM to
// exactly this Drain call; the CI smoke job exercises the signal path.
func TestDrainCompletesInflightRejectsNewClosesWorkers(t *testing.T) {
	s := serve.New(serve.Config{MaxConcurrent: 1, PoolSize: 4})
	ts := httptest.NewServer(s.Handler())
	defer ts.Close()

	// Warm an ipc System: hostpid reports the pid hosting each rank, which
	// is the worker fleet this test must later prove dead.
	resp, data := postRun(t, ts, serve.RunRequest{
		Program: "hostpid", Grid: []int{2, 2}, Transport: "ipc", Nodes: 2,
	})
	if resp.StatusCode != http.StatusOK {
		t.Fatalf("ipc hostpid run: %d %s", resp.StatusCode, data)
	}
	coord := float64(os.Getpid())
	pidset := map[int]bool{}
	for rank, v := range decodeRun(t, data).Values {
		if v == coord {
			t.Fatalf("rank %d ran in the coordinator, not a worker", rank)
		}
		pidset[int(v)] = true
	}
	if len(pidset) != 2 {
		t.Fatalf("worker pids %v, want 2 distinct", pidset)
	}
	for pid := range pidset {
		if err := syscall.Kill(pid, 0); err != nil {
			t.Fatalf("worker %d not alive before drain: %v", pid, err)
		}
	}

	// A deliberately heavy run occupies the single slot while we drain.
	slow := make(chan *http.Response, 1)
	slowBody := make(chan []byte, 1)
	go func() {
		resp, data := postRun(t, ts, serve.RunRequest{
			Program: "jacobi", Args: []float64{256, 24}, Grid: []int{2, 2},
		})
		slow <- resp
		slowBody <- data
	}()
	waitFor(t, func() bool { return s.Scheduler().Inflight() == 1 })

	drained := make(chan error, 1)
	go func() {
		ctx, cancel := context.WithTimeout(context.Background(), 60*time.Second)
		defer cancel()
		drained <- s.Drain(ctx)
	}()
	waitFor(t, func() bool { return s.Scheduler().Draining() })

	// New work is turned away while the in-flight run continues.
	resp, data = postRun(t, ts, serve.RunRequest{
		Program: "jacobi", Args: []float64{8, 1}, Grid: []int{2, 2},
	})
	if resp.StatusCode != http.StatusServiceUnavailable {
		t.Errorf("run during drain: %d %s", resp.StatusCode, data)
	}
	var eb serve.ErrorBody
	if err := json.Unmarshal(data, &eb); err != nil || eb.Code != serve.CodeDraining {
		t.Errorf("drain rejection body %s (%v)", data, err)
	}
	if hresp, err := http.Get(ts.URL + "/healthz"); err != nil {
		t.Error(err)
	} else {
		hresp.Body.Close()
		if hresp.StatusCode != http.StatusServiceUnavailable {
			t.Errorf("healthz during drain: %d", hresp.StatusCode)
		}
	}

	// The in-flight run completes normally; only then does drain finish.
	if resp := <-slow; resp.StatusCode != http.StatusOK {
		t.Errorf("in-flight run during drain: %d %s", resp.StatusCode, <-slowBody)
	} else {
		<-slowBody
	}
	select {
	case err := <-drained:
		if err != nil {
			t.Fatalf("drain: %v", err)
		}
	case <-time.After(60 * time.Second):
		t.Fatal("drain never completed")
	}

	// The pooled ipc System was Closed: its workers must be gone. Reaping
	// is asynchronous, so poll for ESRCH.
	for pid := range pidset {
		waitFor(t, func() bool { return syscall.Kill(pid, 0) == syscall.ESRCH })
	}
	if st := s.Pool().Stats(); st.Idle != 0 {
		t.Errorf("%d idle systems survived drain", st.Idle)
	}
}
