package serve

import (
	"fmt"
	"math"
	"sort"
	"strings"
	"sync"
)

// Minimal Prometheus text-format metrics — counters and fixed-bucket
// histograms, hand-rolled because the container bakes in no client
// library and the exposition format is three lines of convention:
// cumulative buckets keyed by `le`, a _sum and a _count per histogram,
// and one sample per line.

// histogram is a fixed-bucket latency histogram (seconds).
type histogram struct {
	mu     sync.Mutex
	bounds []float64 // upper bounds, ascending; an implicit +Inf follows
	counts []int64   // len(bounds)+1
	sum    float64
	n      int64
}

func newHistogram(bounds ...float64) *histogram {
	return &histogram{bounds: bounds, counts: make([]int64, len(bounds)+1)}
}

func (h *histogram) observe(v float64) {
	h.mu.Lock()
	i := sort.SearchFloat64s(h.bounds, v)
	h.counts[i]++
	h.sum += v
	h.n++
	h.mu.Unlock()
}

// write renders the histogram in exposition format under name.
func (h *histogram) write(b *strings.Builder, name string) {
	h.mu.Lock()
	defer h.mu.Unlock()
	fmt.Fprintf(b, "# TYPE %s histogram\n", name)
	var cum int64
	for i, bound := range h.bounds {
		cum += h.counts[i]
		fmt.Fprintf(b, "%s_bucket{le=%q} %d\n", name, formatBound(bound), cum)
	}
	cum += h.counts[len(h.bounds)]
	fmt.Fprintf(b, "%s_bucket{le=\"+Inf\"} %d\n", name, cum)
	fmt.Fprintf(b, "%s_sum %g\n", name, h.sum)
	fmt.Fprintf(b, "%s_count %d\n", name, h.n)
}

func formatBound(v float64) string {
	if v == math.Trunc(v) {
		return fmt.Sprintf("%.1f", v)
	}
	return fmt.Sprintf("%g", v)
}

// runKey labels a completed request for the runs counter.
type runKey struct{ program, outcome string }

// Metrics accumulates the server's own counters; the pool and scheduler
// gauges are sampled live at render time (see Server.writeMetrics).
type Metrics struct {
	mu   sync.Mutex
	runs map[runKey]int64

	// runSeconds measures host-side run latency (checkout through
	// return); queueSeconds the admission wait.
	runSeconds   *histogram
	queueSeconds *histogram
}

func newMetrics() *Metrics {
	// Small simulated runs land in the sub-millisecond decades; cold ipc
	// constructions in the hundreds of milliseconds.
	buckets := []float64{0.0001, 0.00025, 0.0005, 0.001, 0.0025, 0.005, 0.01,
		0.025, 0.05, 0.1, 0.25, 0.5, 1, 2.5, 5, 10}
	return &Metrics{
		runs:         map[runKey]int64{},
		runSeconds:   newHistogram(buckets...),
		queueSeconds: newHistogram(buckets...),
	}
}

// countRun records one finished request for program with the given
// outcome ("ok", "bad_request", "run_failed", ...).
func (m *Metrics) countRun(program, outcome string) {
	m.mu.Lock()
	m.runs[runKey{program, outcome}]++
	m.mu.Unlock()
}

// writeRuns renders the per-program outcome counters in sorted order.
func (m *Metrics) writeRuns(b *strings.Builder) {
	m.mu.Lock()
	keys := make([]runKey, 0, len(m.runs))
	for k := range m.runs {
		keys = append(keys, k)
	}
	sort.Slice(keys, func(i, j int) bool {
		if keys[i].program != keys[j].program {
			return keys[i].program < keys[j].program
		}
		return keys[i].outcome < keys[j].outcome
	})
	fmt.Fprintf(b, "# TYPE kfserve_runs_total counter\n")
	for _, k := range keys {
		fmt.Fprintf(b, "kfserve_runs_total{program=%q,outcome=%q} %d\n", k.program, k.outcome, m.runs[k])
	}
	m.mu.Unlock()
}
