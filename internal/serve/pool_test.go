package serve

import (
	"errors"
	"testing"

	"repro/internal/core"
	"repro/internal/kf"
	"repro/internal/machine"
)

func shared2() (*core.System, error) {
	return core.NewSystem(core.Grid(2), core.Cost(machine.Uniform()))
}

func key2() string {
	return core.PoolKey([]int{2}, "", 0, "", machine.Uniform())
}

func TestPoolHitMissAndWarmth(t *testing.T) {
	p := NewPool(4)
	l1, err := p.Checkout(key2(), shared2)
	if err != nil {
		t.Fatal(err)
	}
	if l1.Hit() {
		t.Error("first checkout reported a hit")
	}
	sys := l1.Sys
	if _, err := sys.Run(func(c *kf.Ctx) error { return nil }); err != nil {
		t.Fatal(err)
	}
	l1.Return()
	st := p.Stats()
	if st.Hits != 0 || st.Misses != 1 || st.Idle != 1 {
		t.Errorf("stats after first cycle: %+v", st)
	}
	l2, err := p.Checkout(key2(), shared2)
	if err != nil {
		t.Fatal(err)
	}
	if !l2.Hit() || l2.Sys != sys {
		t.Error("second checkout did not reuse the warmed system")
	}
	if !l2.Sys.Warmed() {
		t.Error("reused system not warmed")
	}
	// A different key misses even with an idle system present.
	other := core.PoolKey([]int{3}, "", 0, "", machine.Uniform())
	l3, err := p.Checkout(other, func() (*core.System, error) {
		return core.NewSystem(core.Grid(3), core.Cost(machine.Uniform()))
	})
	if err != nil {
		t.Fatal(err)
	}
	if l3.Hit() {
		t.Error("cross-key checkout reported a hit")
	}
	l2.Return()
	l3.Return()
	warm := p.Warmth()
	if len(warm) != 2 {
		t.Fatalf("warmth %v, want two keys", warm)
	}
	if warm[0].Idle+warm[1].Idle != 2 {
		t.Errorf("idle population %v", warm)
	}
}

func TestPoolEvictsLRUAcrossKeys(t *testing.T) {
	p := NewPool(2)
	mk := func(n int) func() (*core.System, error) {
		return func() (*core.System, error) {
			return core.NewSystem(core.Grid(n), core.Cost(machine.Uniform()))
		}
	}
	keyN := func(n int) string { return core.PoolKey([]int{n}, "", 0, "", machine.Uniform()) }
	var leases []*Lease
	for n := 2; n <= 4; n++ {
		l, err := p.Checkout(keyN(n), mk(n))
		if err != nil {
			t.Fatal(err)
		}
		leases = append(leases, l)
	}
	// Return in order 2, 3, 4: capacity 2 means returning 4 evicts 2 (the
	// least recently used idle system).
	for _, l := range leases {
		l.Return()
	}
	st := p.Stats()
	if st.Evictions != 1 || st.Idle != 2 {
		t.Fatalf("stats after eviction: %+v", st)
	}
	if l, err := p.Checkout(keyN(2), mk(2)); err != nil {
		t.Fatal(err)
	} else if l.Hit() {
		t.Error("evicted key still produced a hit")
	} else {
		l.Return()
	}
	if l, err := p.Checkout(keyN(4), mk(4)); err != nil {
		t.Fatal(err)
	} else if !l.Hit() {
		t.Error("most recently returned key missed")
	} else {
		l.Return()
	}
}

func TestPoolCloseAndLateReturn(t *testing.T) {
	p := NewPool(2)
	l, err := p.Checkout(key2(), shared2)
	if err != nil {
		t.Fatal(err)
	}
	idle, err := p.Checkout(key2(), shared2)
	if err != nil {
		t.Fatal(err)
	}
	idle.Return()
	if err := p.Close(); err != nil {
		t.Fatal(err)
	}
	if p.Stats().Idle != 0 {
		t.Error("idle systems survived Close")
	}
	// The lease still out returns into a closed pool: closed, not pooled.
	l.Return()
	if p.Stats().Idle != 0 {
		t.Error("late return was pooled after Close")
	}
	if _, err := p.Checkout(key2(), shared2); !errors.Is(err, ErrPoolClosed) {
		t.Errorf("checkout after Close returned %v", err)
	}
	if err := p.Close(); err != nil {
		t.Errorf("second Close: %v", err)
	}
}

func TestPoolDiscardNeverPools(t *testing.T) {
	p := NewPool(2)
	l, err := p.Checkout(key2(), shared2)
	if err != nil {
		t.Fatal(err)
	}
	l.Discard()
	l.Return() // idempotent: first call (Discard) wins
	st := p.Stats()
	if st.Discards != 1 || st.Idle != 0 {
		t.Errorf("stats after discard: %+v", st)
	}
}
