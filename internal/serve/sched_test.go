package serve

import (
	"context"
	"errors"
	"sync"
	"testing"
	"time"
)

func TestSchedulerImmediateSlots(t *testing.T) {
	s := NewScheduler(2, 4)
	ctx := context.Background()
	if err := s.Acquire(ctx); err != nil {
		t.Fatal(err)
	}
	if err := s.Acquire(ctx); err != nil {
		t.Fatal(err)
	}
	if got := s.Inflight(); got != 2 {
		t.Errorf("inflight %d, want 2", got)
	}
	s.Release()
	s.Release()
	if got := s.Inflight(); got != 0 {
		t.Errorf("inflight %d after releases, want 0", got)
	}
}

func TestSchedulerFIFOOrder(t *testing.T) {
	s := NewScheduler(1, 16)
	if err := s.Acquire(context.Background()); err != nil {
		t.Fatal(err)
	}
	const waiters = 8
	var mu sync.Mutex
	var order []int
	var wg sync.WaitGroup
	enqueued := make(chan int, waiters)
	for i := 0; i < waiters; i++ {
		i := i
		wg.Add(1)
		go func() {
			defer wg.Done()
			// Serialize arrival so queue order is the loop order.
			<-enqueued
			if err := s.Acquire(context.Background()); err != nil {
				t.Errorf("waiter %d: %v", i, err)
				return
			}
			mu.Lock()
			order = append(order, i)
			mu.Unlock()
			s.Release()
		}()
		enqueued <- i
		waitFor(t, func() bool { return s.QueueDepth() == i+1 })
	}
	s.Release() // free the seed slot; grants must drain in FIFO order
	wg.Wait()
	for i, got := range order {
		if got != i {
			t.Fatalf("grant order %v is not FIFO", order)
		}
	}
}

func TestSchedulerQueueFull(t *testing.T) {
	s := NewScheduler(1, 1)
	ctx := context.Background()
	if err := s.Acquire(ctx); err != nil {
		t.Fatal(err)
	}
	errc := make(chan error, 1)
	go func() { errc <- s.Acquire(ctx) }()
	waitFor(t, func() bool { return s.QueueDepth() == 1 })
	if err := s.Acquire(ctx); !errors.Is(err, ErrQueueFull) {
		t.Errorf("queue-full acquire returned %v", err)
	}
	s.Release()
	if err := <-errc; err != nil {
		t.Errorf("queued waiter: %v", err)
	}
	s.Release()
}

func TestSchedulerDeadlineWhileQueued(t *testing.T) {
	s := NewScheduler(1, 4)
	if err := s.Acquire(context.Background()); err != nil {
		t.Fatal(err)
	}
	ctx, cancel := context.WithTimeout(context.Background(), 20*time.Millisecond)
	defer cancel()
	if err := s.Acquire(ctx); !errors.Is(err, ErrDeadline) {
		t.Errorf("expired acquire returned %v", err)
	}
	if s.QueueDepth() != 0 {
		t.Error("expired waiter left in queue")
	}
	// The slot must still be whole: release and re-acquire.
	s.Release()
	if err := s.Acquire(context.Background()); err != nil {
		t.Errorf("slot lost after deadline: %v", err)
	}
	s.Release()
}

func TestSchedulerDrain(t *testing.T) {
	s := NewScheduler(1, 4)
	if err := s.Acquire(context.Background()); err != nil {
		t.Fatal(err)
	}
	queued := make(chan error, 1)
	go func() { queued <- s.Acquire(context.Background()) }()
	waitFor(t, func() bool { return s.QueueDepth() == 1 })

	done := s.Drain()
	if err := <-queued; !errors.Is(err, ErrDraining) {
		t.Errorf("queued waiter got %v during drain", err)
	}
	if err := s.Acquire(context.Background()); !errors.Is(err, ErrDraining) {
		t.Errorf("new acquire got %v during drain", err)
	}
	select {
	case <-done:
		t.Fatal("drain completed with a run in flight")
	case <-time.After(20 * time.Millisecond):
	}
	s.Release()
	select {
	case <-done:
	case <-time.After(2 * time.Second):
		t.Fatal("drain did not complete after the last release")
	}
	// Drain after completion returns an already-closed channel.
	select {
	case <-s.Drain():
	default:
		t.Error("second Drain channel not closed")
	}
}

func waitFor(t *testing.T, cond func() bool) {
	t.Helper()
	deadline := time.Now().Add(5 * time.Second)
	for !cond() {
		if time.Now().After(deadline) {
			t.Fatal("condition not reached")
		}
		time.Sleep(time.Millisecond)
	}
}
