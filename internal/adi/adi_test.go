package adi

import (
	"math"
	"testing"

	"repro/internal/machine"
	"repro/internal/topology"
)

func TestSequentialConverges(t *testing.T) {
	par := Params{N: 15, A: 1, B: 1, Iters: 20}
	f := TestProblem(par.N)
	u, hist := Sequential(par, f)
	if len(hist) != par.Iters {
		t.Fatalf("history length %d", len(hist))
	}
	// Residual must drop monotonically (PR with fixed rho contracts on
	// the model problem) until it reaches the rounding floor.
	const floor = 1e-10
	for i := 1; i < len(hist); i++ {
		if hist[i] > floor && hist[i] > hist[i-1]*1.0001 {
			t.Errorf("residual rose at iteration %d: %v -> %v", i, hist[i-1], hist[i])
		}
	}
	if hist[len(hist)-1] > hist[0]*1e-3 {
		t.Errorf("weak convergence: %v -> %v", hist[0], hist[len(hist)-1])
	}
	// The discrete solution should approximate sin(pi x) sin(pi y).
	h := 1 / float64(par.N+1)
	worst := 0.0
	for i := 0; i < par.N; i++ {
		for j := 0; j < par.N; j++ {
			x, y := float64(i+1)*h, float64(j+1)*h
			want := math.Sin(math.Pi*x) * math.Sin(math.Pi*y)
			if d := math.Abs(u[i][j] - want); d > worst {
				worst = d
			}
		}
	}
	if worst > 0.02 {
		t.Errorf("solution error %v vs analytic", worst)
	}
}

func TestParallelMatchesSequential(t *testing.T) {
	par := Params{N: 16, A: 1, B: 1, Iters: 5}
	f := TestProblem(par.N)
	want, wantHist := Sequential(par, f)
	for _, shape := range [][2]int{{1, 1}, {2, 2}, {2, 4}} {
		m := machine.New(shape[0]*shape[1], machine.ZeroComm())
		g := topology.New(shape[0], shape[1])
		res, err := Parallel(m, g, par, f, false)
		if err != nil {
			t.Fatalf("grid %v: %v", shape, err)
		}
		if res.U == nil {
			t.Fatalf("grid %v: no gathered solution", shape)
		}
		worst := 0.0
		for i := 0; i < par.N; i++ {
			for j := 0; j < par.N; j++ {
				if d := math.Abs(res.U[i][j] - want[i][j]); d > worst {
					worst = d
				}
			}
		}
		if worst > 1e-8 {
			t.Errorf("grid %v: max deviation from sequential %v", shape, worst)
		}
		for k := range wantHist {
			if math.Abs(res.ResNorm[k]-wantHist[k]) > 1e-6*(1+wantHist[k]) {
				t.Errorf("grid %v: residual history diverges at %d: %v vs %v",
					shape, k, res.ResNorm[k], wantHist[k])
			}
		}
	}
}

func TestPipelinedMatchesLineByLine(t *testing.T) {
	par := Params{N: 16, A: 1, B: 2, Iters: 4}
	f := TestProblem(par.N)
	g := topology.New(2, 2)

	m1 := machine.New(4, machine.ZeroComm())
	plain, err := Parallel(m1, g, par, f, false)
	if err != nil {
		t.Fatal(err)
	}
	m2 := machine.New(4, machine.ZeroComm())
	piped, err := Parallel(m2, g, par, f, true)
	if err != nil {
		t.Fatal(err)
	}
	worst := 0.0
	for i := 0; i < par.N; i++ {
		for j := 0; j < par.N; j++ {
			if d := math.Abs(plain.U[i][j] - piped.U[i][j]); d > worst {
				worst = d
			}
		}
	}
	if worst > 1e-10 {
		t.Errorf("pipelined deviates from line-by-line by %v", worst)
	}
}

func TestPipelinedIsFasterOnRealCosts(t *testing.T) {
	// Claim C4 for ADI: madi beats adi in virtual time once latency
	// matters, because each slice's lines share the tree instead of
	// paying log2(p) latencies per line.
	par := Params{N: 32, A: 1, B: 1, Iters: 3}
	f := TestProblem(par.N)
	g := topology.New(2, 2)

	m1 := machine.New(4, machine.IPSC2())
	plain, err := Parallel(m1, g, par, f, false)
	if err != nil {
		t.Fatal(err)
	}
	m2 := machine.New(4, machine.IPSC2())
	piped, err := Parallel(m2, g, par, f, true)
	if err != nil {
		t.Fatal(err)
	}
	if piped.Elapsed >= plain.Elapsed {
		t.Errorf("pipelined %v >= line-by-line %v", piped.Elapsed, plain.Elapsed)
	}
}

func TestAnisotropicProblem(t *testing.T) {
	par := Params{N: 12, A: 5, B: 0.5, Rho: 8, Iters: 30}
	f := TestProblem(par.N)
	_, hist := Sequential(par, f)
	if hist[len(hist)-1] > hist[0] {
		t.Errorf("anisotropic run diverged: %v -> %v", hist[0], hist[len(hist)-1])
	}
}

func TestRhoDefault(t *testing.T) {
	if (Params{}).rho() != 2*math.Pi {
		t.Errorf("default rho = %v", (Params{}).rho())
	}
	if (Params{Rho: 3}).rho() != 3 {
		t.Errorf("explicit rho ignored")
	}
}

func TestParallelRejectsNonPowerOfTwoSlices(t *testing.T) {
	// The substructured line solver needs power-of-two slices; a 3-wide
	// grid must surface an error, not hang or corrupt.
	par := Params{N: 12, A: 1, B: 1, Iters: 1}
	f := TestProblem(par.N)
	m := machine.New(6, machine.ZeroComm())
	g := topology.New(2, 3)
	if _, err := Parallel(m, g, par, f, false); err == nil {
		t.Fatal("3-wide grid accepted")
	}
}

func TestStatsAccumulate(t *testing.T) {
	par := Params{N: 16, A: 1, B: 1, Iters: 2}
	f := TestProblem(par.N)
	m := machine.New(4, machine.IPSC2())
	res, err := Parallel(m, topology.New(2, 2), par, f, false)
	if err != nil {
		t.Fatal(err)
	}
	if res.Stats.MsgsSent == 0 || res.Stats.Flops == 0 {
		t.Errorf("stats not accumulated: %+v", res.Stats)
	}
	if res.Elapsed <= 0 {
		t.Errorf("elapsed %v", res.Elapsed)
	}
}
