// Package adi implements the paper's Section 4: two-dimensional ADI
// (Alternating Direction Implicit) iteration built from the one-dimensional
// parallel tridiagonal kernels, in the two forms of Listings 7 and 8:
//
//   - Parallel (Listing 7): each implicit line solve is a call to the
//     constant-coefficient tridiagonal solver on the grid slice owning that
//     line ("doall i = 1, nx on owner(r(i,*)) : call tric(...)"), so a grid
//     row solves its lines one at a time.
//   - ParallelPipelined (Listing 8): each grid slice hands all of its lines
//     to the pipelined multi-system solver at once, keeping the slice's
//     processors busy — the paper's madi.
//
// The iteration itself is Peaceman-Rachford with a fixed acceleration
// parameter rho: for -(a·u_xx + b·u_yy) = f with homogeneous Dirichlet
// boundaries,
//
//	(rho·I + H) u*   = (rho·I - V) u  + f     (tridiagonal solves along x)
//	(rho·I + V) u'   = (rho·I - H) u* + f     (tridiagonal solves along y)
//
// where H = -a·∂xx and V = -b·∂yy. The paper's Listing 7 abbreviates the
// update ("one replaces the right hand side f by the residual and repeats");
// Peaceman-Rachford is the standard concrete realization with the same
// parallel structure — two stencil sweeps and two families of tridiagonal
// solves per iteration — and it actually converges, which the experiments
// need. The deviation is recorded in DESIGN.md.
package adi

import (
	"math"

	"repro/internal/darray"
	"repro/internal/dist"
	"repro/internal/kernels"
	"repro/internal/kf"
	"repro/internal/machine"
	"repro/internal/topology"
	"repro/internal/tridiag"
)

// Params configures an ADI solve of -(a·u_xx + b·u_yy) = f on the unit
// square with an N x N interior point grid (unknowns only; the zero
// boundary is implicit) and spacing h = 1/(N+1).
type Params struct {
	// N is the number of interior points per side.
	N int
	// A and B are the (positive) diffusion coefficients in x and y.
	A, B float64
	// Rho is the Peaceman-Rachford parameter; 0 selects the single
	// optimal parameter 2*pi for the unit square model problem.
	Rho float64
	// Iters is the number of double sweeps to run.
	Iters int
}

func (p Params) rho() float64 {
	if p.Rho != 0 {
		return p.Rho
	}
	return 2 * math.Pi
}

func (p Params) h() float64 { return 1 / float64(p.N+1) }

// Result carries a parallel ADI run's outputs.
type Result struct {
	// U is the final interior solution, gathered on rank 0 (nil
	// elsewhere).
	U [][]float64
	// ResNorm is the max-norm residual after each iteration.
	ResNorm []float64
	// Elapsed is the virtual time of the iteration loop.
	Elapsed float64
	// Stats aggregates the machine counters for the whole run.
	Stats machine.Stats
}

// Sequential runs the same iteration on plain slices — the reference the
// parallel versions must match.
func Sequential(par Params, f [][]float64) ([][]float64, []float64) {
	n := par.N
	h := par.h()
	rho := par.rho()
	ax := par.A / (h * h)
	by := par.B / (h * h)
	u := mat(n)
	ustar := mat(n)
	rhs := mat(n)
	var history []float64
	bvec := make([]float64, n)
	avec := make([]float64, n)
	cvec := make([]float64, n)
	rvec := make([]float64, n)
	xvec := make([]float64, n)
	cpvec := make([]float64, n)
	fpvec := make([]float64, n)
	for it := 0; it < par.Iters; it++ {
		// Sweep 1: (rho + H) u* = (rho - V) u + f, tridiagonal in x.
		for i := 0; i < n; i++ {
			for j := 0; j < n; j++ {
				rhs[i][j] = (rho-2*by)*u[i][j] + by*(at(u, i, j-1)+at(u, i, j+1)) + f[i][j]
			}
		}
		for j := 0; j < n; j++ {
			for i := 0; i < n; i++ {
				bvec[i], avec[i], cvec[i] = -ax, rho+2*ax, -ax
				rvec[i] = rhs[i][j]
			}
			bvec[0], cvec[n-1] = 0, 0
			kernels.ThomasWith(nil, bvec, avec, cvec, rvec, xvec, cpvec, fpvec)
			for i := 0; i < n; i++ {
				ustar[i][j] = xvec[i]
			}
		}
		// Sweep 2: (rho + V) u = (rho - H) u* + f, tridiagonal in y.
		for i := 0; i < n; i++ {
			for j := 0; j < n; j++ {
				rhs[i][j] = (rho-2*ax)*ustar[i][j] + ax*(at(ustar, i-1, j)+at(ustar, i+1, j)) + f[i][j]
			}
		}
		for i := 0; i < n; i++ {
			for j := 0; j < n; j++ {
				bvec[j], avec[j], cvec[j] = -by, rho+2*by, -by
				rvec[j] = rhs[i][j]
			}
			bvec[0], cvec[n-1] = 0, 0
			kernels.ThomasWith(nil, bvec, avec, cvec, rvec, xvec, cpvec, fpvec)
			copy(u[i], xvec[:n])
		}
		history = append(history, residualNorm(par, u, f))
	}
	return u, history
}

// at reads u with zero Dirichlet boundary outside [0, n).
func at(u [][]float64, i, j int) float64 {
	if i < 0 || j < 0 || i >= len(u) || j >= len(u) {
		return 0
	}
	return u[i][j]
}

// residualNorm returns ||f - (H+V)u||_inf for the sequential grids.
func residualNorm(par Params, u, f [][]float64) float64 {
	n := par.N
	h := par.h()
	ax := par.A / (h * h)
	by := par.B / (h * h)
	worst := 0.0
	for i := 0; i < n; i++ {
		for j := 0; j < n; j++ {
			lap := ax*(at(u, i-1, j)-2*u[i][j]+at(u, i+1, j)) +
				by*(at(u, i, j-1)-2*u[i][j]+at(u, i, j+1))
			if r := math.Abs(f[i][j] + lap); r > worst {
				worst = r
			}
		}
	}
	return worst
}

// Parallel runs ADI on a px x py processor grid with (block, block) arrays,
// line by line (Listing 7). Set pipelined to solve each slice's lines
// through the pipelined multi-system solver instead (Listing 8's madi).
func Parallel(m *machine.Machine, g *topology.Grid, par Params, f [][]float64, pipelined bool) (Result, error) {
	var res Result
	err := kf.Exec(m, g, func(c *kf.Ctx) error {
		flat, hist, elapsed := ParallelCtx(c, par, f, pipelined)
		if c.GridIndex() == 0 {
			res.ResNorm = hist
			res.Elapsed = elapsed
		}
		if c.P.Rank() == 0 {
			n := par.N
			out := make([][]float64, n)
			for i := range out {
				out[i] = flat[i*n : (i+1)*n]
			}
			res.U = out
		}
		return nil
	})
	res.Stats = m.TotalStats()
	return res, err
}

// ParallelCtx is the ADI iteration as a plain parallel subroutine body —
// the declare-once form a core.Program wraps to run the identical
// computation on any system. It returns the flat gathered solution on
// rank 0 (nil elsewhere), the residual history on grid index 0, and the
// iteration loop's elapsed virtual time (identical on every rank).
func ParallelCtx(c *kf.Ctx, par Params, f [][]float64, pipelined bool) (flat, resNorm []float64, elapsed float64) {
	n := par.N
	h := par.h()
	rho := par.rho()
	ax := par.A / (h * h)
	by := par.B / (h * h)
	spec := darray.Spec{
		Extents: []int{n, n},
		Dists:   []dist.Dist{dist.Block{}, dist.Block{}},
		Halo:    []int{1, 1},
	}
	u := c.NewArray(spec)
	ustar := c.NewArray(spec)
	rhs := c.NewArray(spec)
	fd := c.NewArray(spec)
	u.Zero()
	ustar.Zero()
	rhs.Zero()
	fd.Fill(func(idx []int) float64 { return f[idx[0]][idx[1]] })

	stencilY := func(src *darray.Array, coef float64) func(cc *kf.Ctx, i, j int) {
		return func(cc *kf.Ctx, i, j int) {
			up, down := 0.0, 0.0
			if j > 0 {
				up = src.Old2(i, j-1)
			}
			if j < n-1 {
				down = src.Old2(i, j+1)
			}
			rhs.Set2(i, j, (rho-2*coef)*src.Old2(i, j)+coef*(up+down)+fd.At2(i, j))
			cc.P.Compute(6)
		}
	}
	stencilX := func(src *darray.Array, coef float64) func(cc *kf.Ctx, i, j int) {
		return func(cc *kf.Ctx, i, j int) {
			left, right := 0.0, 0.0
			if i > 0 {
				left = src.Old2(i-1, j)
			}
			if i < n-1 {
				right = src.Old2(i+1, j)
			}
			rhs.Set2(i, j, (rho-2*coef)*src.Old2(i, j)+coef*(left+right)+fd.At2(i, j))
			cc.P.Compute(6)
		}
	}

	// Compile every loop header once, outside the iteration loop —
	// the hoisting a KF1 compiler performs: halo schedules, owned
	// strips and iteration grids derive here, and the loop body only
	// moves data.
	all := kf.R(0, n-1)
	sweep1 := c.Plan2(all, all, kf.OnOwner2(rhs), kf.Reads(u, 1))
	sweep2 := c.Plan2(all, all, kf.OnOwner2(rhs), kf.Reads(ustar, 0))
	residual := c.Plan2(all, all, kf.OnOwner2(u), kf.Reads(u))
	solveX := c.Plan1(all, kf.OnOwnerSection(rhs, 1))
	solveY := c.Plan1(all, kf.OnOwnerSection(rhs, 0))

	for it := 0; it < par.Iters; it++ {
		// Sweep 1 right-hand side: y-stencil of u.
		sweep1.Run(stencilY(u, by))
		// x-direction solves: columns j, each on the grid column
		// slice owning it.
		if pipelined {
			solveLinesPipelined(c, ustar, rhs, 1, -ax, rho+2*ax, -ax)
		} else {
			solveX.Run(func(cc *kf.Ctx, j int) {
				must(tridiag.TriC(cc, ustar.Section(1, j), rhs.Section(1, j), -ax, rho+2*ax, -ax))
			})
		}
		// Sweep 2 right-hand side: x-stencil of u*.
		sweep2.Run(stencilX(ustar, ax))
		// y-direction solves: rows i on grid row slices.
		if pipelined {
			solveLinesPipelined(c, u, rhs, 0, -by, rho+2*by, -by)
		} else {
			solveY.Run(func(cc *kf.Ctx, i int) {
				must(tridiag.TriC(cc, u.Section(0, i), rhs.Section(0, i), -by, rho+2*by, -by))
			})
		}
		// Residual in the max norm.
		worst := 0.0
		residual.Run(func(cc *kf.Ctx, i, j int) {
			lap := ax*(edge(u, i-1, j, n)-2*u.Old2(i, j)+edge(u, i+1, j, n)) +
				by*(edge(u, i, j-1, n)-2*u.Old2(i, j)+edge(u, i, j+1, n))
			if r := math.Abs(fd.At2(i, j) + lap); r > worst {
				worst = r
			}
			cc.P.Compute(8)
		})
		rn := c.AllReduceMax(worst)
		if c.GridIndex() == 0 {
			resNorm = append(resNorm, rn)
		}
	}
	elapsed = c.AllReduceMax(c.P.Clock())
	out := u.GatherTo(c.NextScope(), 0)
	if c.P.Rank() == 0 {
		flat = out
	}
	return flat, resNorm, elapsed
}

// edge reads the snapshot of u with zero Dirichlet boundary outside the
// interior index range.
func edge(u *darray.Array, i, j, n int) float64 {
	if i < 0 || j < 0 || i >= n || j >= n {
		return 0
	}
	return u.Old2(i, j)
}

// solveLinesPipelined gives each grid slice (perpendicular to dim) all of
// its lines at once via the pipelined multi-system solver — the madi
// upgrade of Listing 8.
func solveLinesPipelined(c *kf.Ctx, x, rhs *darray.Array, dim int, b0, a0, c0 float64) {
	// Lines with the same owner coordinate along dim share a slice;
	// every processor participates in exactly the slices of its own
	// coordinate. Group the owned lines and solve them together.
	n := x.Extent(dim)
	lo, hi := x.Lower(dim), x.Upper(dim)
	_ = n
	var xs, fs []*darray.Array
	for i := lo; i <= hi; i++ {
		xs = append(xs, x.Section(dim, i))
		fs = append(fs, rhs.Section(dim, i))
	}
	phase := c.NextScope()
	if len(xs) == 0 {
		return
	}
	sub := xs[0].Grid()
	must(tridiag.MTriCOn(c.P, sub, phase, xs, fs, b0, a0, c0))
}

func must(err error) {
	if err != nil {
		panic(err)
	}
}

func mat(n int) [][]float64 {
	backing := make([]float64, n*n)
	m := make([][]float64, n)
	for i := range m {
		m[i] = backing[i*n : (i+1)*n]
	}
	return m
}

// TestProblem returns a smooth right-hand side for an N x N interior grid.
func TestProblem(n int) [][]float64 {
	f := mat(n)
	h := 1 / float64(n+1)
	for i := 0; i < n; i++ {
		for j := 0; j < n; j++ {
			x := float64(i+1) * h
			y := float64(j+1) * h
			f[i][j] = 2 * math.Pi * math.Pi * math.Sin(math.Pi*x) * math.Sin(math.Pi*y)
		}
	}
	return f
}
