// Package jacobi implements the paper's Section 2 example three ways:
//
//   - Sequential: plain Go, the paper's Listing 1.
//   - MessagePassing: hand-written sends and receives against the raw
//     simulated machine, the paper's Listing 2 — every guard, edge copy and
//     tag written out by hand, as an Occam-style programmer would.
//   - KF1: the kf runtime version, the paper's Listing 3 — a doall loop
//     with an owner-computes clause; all communication derived by the
//     runtime.
//
// The three produce bitwise-identical iterates, and the virtual-time cost
// of KF1 matches MessagePassing (claim C2: "there would be no difference
// between the execution time of algorithms expressed in KF1, and those
// expressed in a message passing language"), while the statement-count
// ratio between MessagePassing and Sequential reproduces claim C1.
package jacobi

import (
	"fmt"

	"repro/internal/darray"
	"repro/internal/dist"
	"repro/internal/kf"
	"repro/internal/machine"
	"repro/internal/topology"
)

// Result carries a parallel Jacobi run's outputs: the gathered solution
// (only meaningful entries on success), the virtual time consumed by the
// iteration loop (max over processors, excluding the final verification
// gather), and the machine's aggregate statistics.
type Result struct {
	X       [][]float64
	Elapsed float64
	Stats   machine.Stats
}

// Sequential runs niter Jacobi sweeps for Poisson's equation on an NxN
// point grid (boundary points held fixed), the paper's Listing 1:
//
//	X(i,j) = 0.25*(X(i+1,j) + X(i-1,j) + X(i,j+1) + X(i,j-1)) - f(i,j)
//
// x0 is not modified; the final grid is returned.
func Sequential(x0, f [][]float64, niter int) [][]float64 {
	n := len(x0)
	x := cloneGrid(x0)
	tmp := cloneGrid(x0)
	for it := 0; it < niter; it++ {
		for i := 1; i < n-1; i++ {
			for j := 1; j < n-1; j++ {
				tmp[i][j] = x[i][j]
			}
		}
		for i := 1; i < n-1; i++ {
			for j := 1; j < n-1; j++ {
				x[i][j] = 0.25*(tmp[i+1][j]+tmp[i-1][j]+tmp[i][j+1]+tmp[i][j-1]) - f[i][j]
			}
		}
		// Boundary rows feed the interior but are never overwritten, so
		// tmp's boundary must track x's (it does: both copies of x0).
	}
	return x
}

// KF1 runs the same iteration as a KF1 parallel subroutine on a pxp
// processor grid (the paper's Listing 3): X and f are (block, block)
// distributed and the sweep is a two-dimensional doall with an
// owner-computes on-clause. The returned grid is gathered onto rank 0.
func KF1(m *machine.Machine, g *topology.Grid, x0, f [][]float64, niter int) (Result, error) {
	var res Result
	err := kf.Exec(m, g, func(c *kf.Ctx) error {
		flat, elapsed := KF1Ctx(c, x0, f, niter)
		if c.P.Rank() == 0 {
			res.Elapsed = elapsed
			res.X = unflatten(flat, len(x0))
		}
		return nil
	})
	res.Stats = m.TotalStats()
	return res, err
}

// kf1Key identifies a processor's reusable KF1 Jacobi state in
// Proc.Scratch, one per processor grid. Single pointer field on purpose:
// pointer-shaped keys convert to the scratch map's `any` without
// allocating, so cache hits are allocation-free.
type kf1Key struct {
	g *topology.Grid
}

// kf1State is the declaration half of KF1Ctx — the distributed arrays and
// the compiled sweep plan — kept per processor across runs. It is bound to
// the context and problem size that built it: arrays and plans carry that
// context's scope discipline and the problem's extents, so a different
// driving context or size must rebuild.
type kf1State struct {
	c     *kf.Ctx
	n     int
	x, fd *darray.Array
	sweep *kf.Plan2
}

// KF1Ctx is the KF1 Jacobi iteration as a plain parallel subroutine body —
// the declare-once form a core.Program wraps to run the identical
// computation on any system. It returns the flat gathered solution on rank
// 0 (nil elsewhere) and the iteration loop's elapsed virtual time
// (excluding the verification gather; identical on every rank).
//
// The arrays and the compiled sweep header are cached per (processor, grid)
// across runs when the same root context drives them repeatedly (which
// kf.Exec arranges and reports via Ctx.Reused): repeated runs re-fill the
// owned cells and replay the data motion without re-deriving distribution
// or communication. First runs — every run on a freshly built machine —
// build the state directly and skip the cache, so one-shot programs pay no
// bookkeeping. Array construction and plan compilation consume no message
// scopes, so cached and fresh runs are bit-identical.
func KF1Ctx(c *kf.Ctx, x0, f [][]float64, niter int) (flat []float64, elapsed float64) {
	n := len(x0)
	var x, fd *darray.Array
	var sweep *kf.Plan2
	if c.Reused() {
		st := c.P.Scratch(kf1Key{c.G}, func() any { return &kf1State{} }).(*kf1State)
		if st.c != c || st.n != n {
			st.c, st.n = c, n
			st.x, st.fd, st.sweep = kf1Build(c, n)
		}
		x, fd, sweep = st.x, st.fd, st.sweep
	} else {
		x, fd, sweep = kf1Build(c, n)
	}
	// (Re)fill the owned cells every run; halo ghosts left over from a
	// previous run are refreshed by the first sweep's exchange before any
	// read.
	x.FillOwned(func(idx []int) float64 { return x0[idx[0]][idx[1]] })
	fd.FillOwned(func(idx []int) float64 { return f[idx[0]][idx[1]] })
	for it := 0; it < niter; it++ {
		sweep.Run(func(cc *kf.Ctx, i, j int) {
			x.Set2(i, j, 0.25*(x.Old2(i+1, j)+x.Old2(i-1, j)+x.Old2(i, j+1)+x.Old2(i, j-1))-fd.Old2(i, j))
			cc.P.Compute(5)
		})
	}
	elapsed = c.AllReduceMax(c.P.Clock())
	out := x.GatherTo(c.NextScope(), 0)
	if c.P.Rank() == 0 {
		flat = out
	}
	return flat, elapsed
}

// kf1Build is KF1Ctx's declaration half: the distributed arrays and the
// compiled sweep header — halo schedule, snapshots, owned strip — derived
// once; each pass only replays the data motion.
func kf1Build(c *kf.Ctx, n int) (x, fd *darray.Array, sweep *kf.Plan2) {
	spec := darray.Spec{
		Extents: []int{n, n},
		Dists:   []dist.Dist{dist.Block{}, dist.Block{}},
		Halo:    []int{1, 1},
	}
	x = c.NewArray(spec)
	fd = c.NewArray(spec)
	sweep = c.Plan2(kf.R(1, n-2), kf.R(1, n-2), kf.OnOwner2(x),
		kf.Reads(x), kf.ReadsNoHalo(fd))
	return x, fd, sweep
}

// Tags for the hand-written message passing version, one per edge
// direction, exactly the four guarded send/receive pairs of Listing 2.
const (
	tagNorth = iota + 1 // to smaller i
	tagSouth            // to larger i
	tagWest             // to smaller j
	tagEast             // to larger j
	tagGather
)

// MessagePassing runs the same iteration written directly against the
// machine's send/receive primitives, following the paper's Listing 2: the
// programmer decomposes the array by hand, maintains a (m+2)x(m+2) local
// block with boundary rows, and writes one guarded send and receive per
// neighbor per iteration. g must be a square pxp grid and the array
// dimension must be divisible by p.
func MessagePassing(m *machine.Machine, g *topology.Grid, x0, f [][]float64, niter int) (Result, error) {
	n := len(x0)
	if g.Dims() != 2 || g.Extent(0) != g.Extent(1) {
		return Result{}, fmt.Errorf("jacobi: message passing version needs a square processor grid, got %v", g.Shape())
	}
	p := g.Extent(0)
	var res Result
	err := m.Run(func(pr *machine.Proc) error {
		coord, ok := g.CoordOf(pr.Rank())
		if !ok {
			return nil
		}
		ip, jp := coord[0], coord[1]
		// Hand strip-mining: this processor owns rows [ilo, ihi] and
		// columns [jlo, jhi] of the global array.
		ilo, ihi := ip*n/p, (ip+1)*n/p-1
		jlo, jhi := jp*n/p, (jp+1)*n/p-1
		mi, mj := ihi-ilo+1, jhi-jlo+1
		// Local block with one ghost layer all around.
		x := make([][]float64, mi+2)
		tmp := make([][]float64, mi+2)
		fl := make([][]float64, mi+2)
		for i := range x {
			x[i] = make([]float64, mj+2)
			tmp[i] = make([]float64, mj+2)
			fl[i] = make([]float64, mj+2)
		}
		for i := 0; i < mi; i++ {
			for j := 0; j < mj; j++ {
				x[i+1][j+1] = x0[ilo+i][jlo+j]
				fl[i+1][j+1] = f[ilo+i][jlo+j]
			}
		}
		// Fixed global boundary values live in the ghost layer for
		// blocks that touch the domain edge.
		if ilo == 0 {
			for j := 0; j < mj; j++ {
				x[0][j+1] = x0[0][jlo+j]
			}
		}
		if ihi == n-1 {
			for j := 0; j < mj; j++ {
				x[mi+1][j+1] = x0[n-1][jlo+j]
			}
		}
		if jlo == 0 {
			for i := 0; i < mi; i++ {
				x[i+1][0] = x0[ilo+i][0]
			}
		}
		if jhi == n-1 {
			for i := 0; i < mi; i++ {
				x[i+1][mj+1] = x0[ilo+i][n-1]
			}
		}
		row := make([]float64, mj)
		col := make([]float64, mi)
		for it := 0; it < niter; it++ {
			// Copy solution into the temporary array (including
			// ghosts, which hold either fixed boundary values or
			// last iteration's neighbor edges).
			for i := 0; i < mi+2; i++ {
				copy(tmp[i], x[i])
			}
			// Send edge values to the four neighbors, guarded as
			// in Listing 2.
			if ip > 0 {
				copy(row, x[1][1:mj+1])
				pr.Send(g.Rank(ip-1, jp), machine.TagOf(tagNorth, uint16(it)), row)
			}
			if ip < p-1 {
				copy(row, x[mi][1:mj+1])
				pr.Send(g.Rank(ip+1, jp), machine.TagOf(tagSouth, uint16(it)), row)
			}
			if jp > 0 {
				for i := 0; i < mi; i++ {
					col[i] = x[i+1][1]
				}
				pr.Send(g.Rank(ip, jp-1), machine.TagOf(tagWest, uint16(it)), col)
			}
			if jp < p-1 {
				for i := 0; i < mi; i++ {
					col[i] = x[i+1][mj]
				}
				pr.Send(g.Rank(ip, jp+1), machine.TagOf(tagEast, uint16(it)), col)
			}
			// Receive edge values from the four neighbors.
			if ip < p-1 {
				edge := pr.Recv(g.Rank(ip+1, jp), machine.TagOf(tagNorth, uint16(it)))
				copy(tmp[mi+1][1:mj+1], edge)
			}
			if ip > 0 {
				edge := pr.Recv(g.Rank(ip-1, jp), machine.TagOf(tagSouth, uint16(it)))
				copy(tmp[0][1:mj+1], edge)
			}
			if jp < p-1 {
				edge := pr.Recv(g.Rank(ip, jp+1), machine.TagOf(tagWest, uint16(it)))
				for i := 0; i < mi; i++ {
					tmp[i+1][mj+1] = edge[i]
				}
			}
			if jp > 0 {
				edge := pr.Recv(g.Rank(ip, jp-1), machine.TagOf(tagEast, uint16(it)))
				for i := 0; i < mi; i++ {
					tmp[i+1][0] = edge[i]
				}
			}
			// Update the solution, skipping global boundary points.
			for i := 1; i <= mi; i++ {
				gi := ilo + i - 1
				if gi == 0 || gi == n-1 {
					continue
				}
				for j := 1; j <= mj; j++ {
					gj := jlo + j - 1
					if gj == 0 || gj == n-1 {
						continue
					}
					x[i][j] = 0.25*(tmp[i+1][j]+tmp[i-1][j]+tmp[i][j+1]+tmp[i][j-1]) - fl[i][j]
					pr.Compute(5)
				}
			}
		}
		// Record the loop's finish time before the verification
		// gather (hand-coded max-reduction to rank 0 and broadcast).
		finish := maxReduce(pr, g, pr.Clock())
		// Gather the solution on rank 0 for verification.
		buf := make([]float64, 0, mi*mj)
		for i := 1; i <= mi; i++ {
			buf = append(buf, x[i][1:mj+1]...)
		}
		if pr.Rank() != g.Rank(0, 0) {
			pr.Send(g.Rank(0, 0), machine.TagOf(tagGather, uint16(ip), uint16(jp)), buf)
			return nil
		}
		out := make([][]float64, n)
		for i := range out {
			out[i] = make([]float64, n)
		}
		for qi := 0; qi < p; qi++ {
			for qj := 0; qj < p; qj++ {
				blk := buf
				if qi != 0 || qj != 0 {
					blk = pr.Recv(g.Rank(qi, qj), machine.TagOf(tagGather, uint16(qi), uint16(qj)))
				}
				qlo, qhi := qi*n/p, (qi+1)*n/p-1
				rlo, rhi := qj*n/p, (qj+1)*n/p-1
				k := 0
				for i := qlo; i <= qhi; i++ {
					for j := rlo; j <= rhi; j++ {
						out[i][j] = blk[k]
						k++
					}
				}
			}
		}
		res.X = out
		res.Elapsed = finish
		return nil
	})
	res.Stats = m.TotalStats()
	return res, err
}

// maxReduce is a hand-written max-reduction to rank (0,0) followed by a
// broadcast — the kind of utility an Occam-style programmer writes by hand.
func maxReduce(pr *machine.Proc, g *topology.Grid, v float64) float64 {
	const tagUp, tagDown = 101, 102
	idx, _ := g.Index(pr.Rank())
	n := g.Size()
	acc := v
	for stride := 1; stride < n; stride *= 2 {
		if idx%(2*stride) == 0 {
			if idx+stride < n {
				o := pr.RecvValue(g.RankAt(idx+stride), machine.TagOf(tagUp, uint16(stride)))
				if o > acc {
					acc = o
				}
			}
		} else {
			pr.SendValue(g.RankAt(idx-stride), machine.TagOf(tagUp, uint16(stride)), acc)
			break
		}
	}
	if idx != 0 {
		stride := 1
		for ; idx%(2*stride) == 0; stride *= 2 {
		}
		acc = pr.RecvValue(g.RankAt(idx-stride), machine.TagOf(tagDown, uint16(stride)))
		for s := stride / 2; s >= 1; s /= 2 {
			if idx+s < n {
				pr.SendValue(g.RankAt(idx+s), machine.TagOf(tagDown, uint16(s)), acc)
			}
		}
	} else {
		top := 1
		for top < n {
			top *= 2
		}
		for s := top / 2; s >= 1; s /= 2 {
			if s < n {
				pr.SendValue(g.RankAt(s), machine.TagOf(tagDown, uint16(s)), acc)
			}
		}
	}
	return acc
}

func cloneGrid(src [][]float64) [][]float64 {
	out := make([][]float64, len(src))
	for i := range src {
		out[i] = append([]float64(nil), src[i]...)
	}
	return out
}

func unflatten(flat []float64, n int) [][]float64 {
	out := make([][]float64, n)
	for i := range out {
		out[i] = flat[i*n : (i+1)*n]
	}
	return out
}

// Problem builds a test problem: an NxN grid with boundary values g(i,j)
// and interior start 0, plus a right-hand side.
func Problem(n int) (x0, f [][]float64) {
	x0 = make([][]float64, n)
	f = make([][]float64, n)
	for i := range x0 {
		x0[i] = make([]float64, n)
		f[i] = make([]float64, n)
		for j := range x0[i] {
			if i == 0 || j == 0 || i == n-1 || j == n-1 {
				x0[i][j] = float64(i+j) / float64(2*n)
			}
			f[i][j] = -1.0 / float64(n*n)
		}
	}
	return x0, f
}
