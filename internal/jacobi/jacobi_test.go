package jacobi

import (
	"math"
	"testing"

	"repro/internal/machine"
	"repro/internal/topology"
)

func TestSequentialFixedBoundary(t *testing.T) {
	x0, f := Problem(8)
	x := Sequential(x0, f, 3)
	for i := 0; i < 8; i++ {
		for _, j := range []int{0, 7} {
			if x[i][j] != x0[i][j] || x[j][i] != x0[j][i] {
				t.Fatalf("boundary moved at (%d,%d)", i, j)
			}
		}
	}
}

func TestSequentialDoesNotModifyInput(t *testing.T) {
	x0, f := Problem(6)
	before := cloneGrid(x0)
	Sequential(x0, f, 2)
	for i := range x0 {
		for j := range x0[i] {
			if x0[i][j] != before[i][j] {
				t.Fatal("input grid modified")
			}
		}
	}
}

func TestKF1MatchesSequentialBitwise(t *testing.T) {
	const n, niter = 16, 10
	x0, f := Problem(n)
	want := Sequential(x0, f, niter)
	for _, p := range []int{1, 2, 4} {
		m := machine.New(p*p, machine.ZeroComm())
		g := topology.New(p, p)
		res, err := KF1(m, g, x0, f, niter)
		if err != nil {
			t.Fatalf("p=%d: %v", p, err)
		}
		for i := 0; i < n; i++ {
			for j := 0; j < n; j++ {
				if res.X[i][j] != want[i][j] {
					t.Fatalf("p=%d: X[%d][%d] = %v, want %v (must be bitwise equal)",
						p, i, j, res.X[i][j], want[i][j])
				}
			}
		}
	}
}

func TestMessagePassingMatchesSequentialBitwise(t *testing.T) {
	const n, niter = 16, 10
	x0, f := Problem(n)
	want := Sequential(x0, f, niter)
	for _, p := range []int{1, 2, 4} {
		m := machine.New(p*p, machine.ZeroComm())
		g := topology.New(p, p)
		res, err := MessagePassing(m, g, x0, f, niter)
		if err != nil {
			t.Fatalf("p=%d: %v", p, err)
		}
		for i := 0; i < n; i++ {
			for j := 0; j < n; j++ {
				if res.X[i][j] != want[i][j] {
					t.Fatalf("p=%d: X[%d][%d] = %v, want %v (must be bitwise equal)",
						p, i, j, res.X[i][j], want[i][j])
				}
			}
		}
	}
}

func TestKF1TimeParityWithMessagePassing(t *testing.T) {
	// Claim C2: same execution time for KF1 and hand message passing,
	// given equally good code generation. Allow a modest envelope for
	// bookkeeping differences.
	const n, niter = 32, 8
	x0, f := Problem(n)
	g := topology.New(2, 2)

	m1 := machine.New(4, machine.IPSC2())
	kf1, err := KF1(m1, g, x0, f, niter)
	if err != nil {
		t.Fatal(err)
	}
	m2 := machine.New(4, machine.IPSC2())
	mp, err := MessagePassing(m2, g, x0, f, niter)
	if err != nil {
		t.Fatal(err)
	}
	ratio := kf1.Elapsed / mp.Elapsed
	if ratio < 0.8 || ratio > 1.25 {
		t.Errorf("KF1/MP time ratio %v outside [0.8, 1.25] (KF1 %v, MP %v)",
			ratio, kf1.Elapsed, mp.Elapsed)
	}
	// Identical communication volume: same distribution, same stencil.
	if kf1.Stats.MsgsSent != mp.Stats.MsgsSent {
		// KF1 runs one reduction at the end (AllReduceMax) that MP
		// mirrors with maxReduce, and gathers identically; message
		// counts should agree exactly.
		t.Logf("note: KF1 msgs %d, MP msgs %d", kf1.Stats.MsgsSent, mp.Stats.MsgsSent)
	}
}

func TestParallelSpeedsUpWithProcessors(t *testing.T) {
	// With compute-heavy settings (large n, cheap comm) more processors
	// must reduce virtual time.
	const n, niter = 64, 4
	x0, f := Problem(n)
	elapsed := func(p int) float64 {
		m := machine.New(p*p, machine.Balanced())
		g := topology.New(p, p)
		res, err := KF1(m, g, x0, f, niter)
		if err != nil {
			t.Fatal(err)
		}
		return res.Elapsed
	}
	t1 := elapsed(1)
	t2 := elapsed(2)
	t4 := elapsed(4)
	if !(t1 > t2 && t2 > t4) {
		t.Errorf("no speedup: t1=%v t2=%v t4=%v", t1, t2, t4)
	}
	if t1/t4 < 4 {
		t.Errorf("16 processors give speedup %v, want >= 4", t1/t4)
	}
}

func TestMessagePassingRejectsBadGrid(t *testing.T) {
	x0, f := Problem(8)
	m := machine.New(6, machine.ZeroComm())
	g := topology.New(2, 3)
	if _, err := MessagePassing(m, g, x0, f, 1); err == nil {
		t.Fatal("non-square grid accepted")
	}
}

func TestProblemShape(t *testing.T) {
	x0, f := Problem(10)
	if len(x0) != 10 || len(f) != 10 || len(x0[3]) != 10 {
		t.Fatal("bad problem shape")
	}
	if x0[0][5] == 0 && x0[5][0] == 0 && x0[9][5] == 0 {
		t.Fatal("boundary should be nonzero somewhere")
	}
	if math.IsNaN(f[2][2]) {
		t.Fatal("NaN rhs")
	}
}
