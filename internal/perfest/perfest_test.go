package perfest

import (
	"testing"
	"testing/quick"

	"repro/internal/machine"
)

func TestJacobiCountsFormula(t *testing.T) {
	// Spot-check the census arithmetic against hand counts.
	e := Jacobi(machine.IPSC2(), 32, 2, 10)
	if e.Msgs != 80 {
		t.Errorf("msgs = %d, want 80", e.Msgs)
	}
	if e.Bytes != 80*16*8 {
		t.Errorf("bytes = %d, want %d", e.Bytes, 80*16*8)
	}
	if e.Time <= 0 {
		t.Errorf("time = %v", e.Time)
	}
}

func TestJacobiSingleProcessorNoComm(t *testing.T) {
	e := Jacobi(machine.IPSC2(), 32, 1, 5)
	if e.Msgs != 0 || e.Bytes != 0 {
		t.Errorf("p=1 should not communicate: %+v", e)
	}
	if e.Time <= 0 {
		t.Error("p=1 still computes")
	}
}

func TestTriSolveCountsFormula(t *testing.T) {
	// 4p-4 messages for any power-of-two p.
	for _, p := range []int{2, 4, 8, 16, 32} {
		e := TriSolve(machine.IPSC2(), 2048, p)
		if e.Msgs != 4*p-4 {
			t.Errorf("p=%d: msgs %d, want %d", p, e.Msgs, 4*p-4)
		}
		if e.Bytes != (2*p-2)*9*8+(2*p-2)*2*8 {
			t.Errorf("p=%d: bytes %d", p, e.Bytes)
		}
	}
}

func TestTriSolveSequential(t *testing.T) {
	e := TriSolve(machine.Uniform(), 100, 1)
	if e.Msgs != 0 || e.Bytes != 0 {
		t.Errorf("p=1: %+v", e)
	}
	if e.Time != 800 {
		t.Errorf("p=1 time %v, want 800 (8 flops/row)", e.Time)
	}
}

func TestCollectiveHelpers(t *testing.T) {
	if GatherMsgs(4) != 3 || AllReduceMsgs(4) != 6 {
		t.Errorf("helper counts wrong: %d %d", GatherMsgs(4), AllReduceMsgs(4))
	}
	if GatherBytes(4, 1024) != (1024-256)*8 {
		t.Errorf("gather bytes %d", GatherBytes(4, 1024))
	}
	if AllReduceBytes(4) != 48 {
		t.Errorf("allreduce bytes %d", AllReduceBytes(4))
	}
}

func TestJacobiInterNode(t *testing.T) {
	// One node: nothing crosses the interconnect.
	if m, b := JacobiInterNode(256, 16, 1); m != 0 || b != 0 {
		t.Errorf("single node: %d msgs / %d bytes, want 0 / 0", m, b)
	}
	// 16x16 grid over 4 nodes: 3 boundaries x 16 columns x 2 directions,
	// each message one local row of 16 values.
	if m, b := JacobiInterNode(256, 16, 4); m != 96 || b != 96*16*8 {
		t.Errorf("4 nodes: %d msgs / %d bytes, want 96 / %d", m, b, 96*16*8)
	}
	// Every grid row its own node: all dimension-0 halo traffic crosses.
	if m, _ := JacobiInterNode(128, 8, 8); m != 2*8*7 {
		t.Errorf("per-row nodes: %d msgs, want %d", m, 2*8*7)
	}
}

func TestEstimatesScaleMonotonically(t *testing.T) {
	// Property: more iterations mean proportionally more messages and
	// never less time.
	f := func(itRaw uint8) bool {
		iters := int(itRaw%20) + 1
		e1 := Jacobi(machine.IPSC2(), 32, 2, iters)
		e2 := Jacobi(machine.IPSC2(), 32, 2, iters+1)
		return e2.Msgs > e1.Msgs && e2.Time > e1.Time &&
			e1.Msgs == iters*8 && e2.Msgs == (iters+1)*8
	}
	if err := quick.Check(f, nil); err != nil {
		t.Fatal(err)
	}
}
