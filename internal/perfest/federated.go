package perfest

import "repro/internal/machine"

// This file is the hierarchical half of the estimator: static predictions
// for programs running on a node-federated machine whose cost model prices
// inter-node links (machine.CostModel.InterNode). The federation partitions
// the p x p grid's ranks consecutively into `nodes` equal nodes, exactly as
// machine.NewFederated does.
//
// The Jacobi predictions evaluate the compiled halo schedule's clock
// recurrence exactly: one Jacobi iteration is a max-plus map from the
// processors' previous finish times to their next ones (each receive gates
// on its sender's departure plus the crossed link's transfer time, then
// pays the remaining receive overheads), and JacobiFederatedTime iterates
// that map — pure arithmetic on the schedule, no simulation — so the
// predicted loop time matches the simulator to floating-point noise,
// transients and steady-state processor offsets included. Experiment S3
// validates the federated-minus-shared surcharge at 1024 processors
// against the simulator.

// node returns the federation node of grid position (i, j) on a p x p grid
// split into nodes consecutive-rank nodes.
func nodeOf(i, j, p, nodes int) int { return (i*p + j) / (p * p / nodes) }

// checkNodes rejects federations machine.NewFederated would reject, so the
// estimator cannot silently predict a partition the simulator cannot build.
func checkNodes(p, nodes int) {
	if nodes <= 0 || (p*p)%nodes != 0 {
		panic("perfest: federation node count must be positive and divide p*p")
	}
}

// blockSize is dist.Block's size of block q of n over P.
func blockSize(q, n, P int) int { return (q+1)*n/P - q*n/P }

// blockLower is dist.Block's first index of block q of n over P.
func blockLower(q, n, P int) int { return q * n / P }

// haloMsg is one compiled halo message in schedule order.
type haloMsg struct {
	srcI, srcJ int // sender grid position
	dstI, dstJ int
	words      int
}

// haloSchedule mirrors darray's compiled halo exchange for the (block,
// block) array of extent n x n on the p x p grid: for each exchanged
// dimension in order, a send to the lower then the upper neighbour; then,
// in the same dimension order, a receive from the lower then the upper
// neighbour. It returns processor (i, j)'s sends and receives in exactly
// the executor's order (all sends are posted before any receive).
func haloSchedule(n, p, i, j int, dims []int) (sends, recvs []haloMsg) {
	for _, d := range dims {
		// The message perpendicular to dimension d carries one plane of
		// the sender's block in the other dimension.
		words := blockSize(j, n, p)
		if d == 1 {
			words = blockSize(i, n, p)
		}
		var lo, hi haloMsg
		if d == 0 {
			lo = haloMsg{srcI: i, srcJ: j, dstI: i - 1, dstJ: j, words: words}
			hi = haloMsg{srcI: i, srcJ: j, dstI: i + 1, dstJ: j, words: words}
		} else {
			lo = haloMsg{srcI: i, srcJ: j, dstI: i, dstJ: j - 1, words: words}
			hi = haloMsg{srcI: i, srcJ: j, dstI: i, dstJ: j + 1, words: words}
		}
		if lo.dstI >= 0 && lo.dstJ >= 0 {
			sends = append(sends, lo)
		}
		if hi.dstI < p && hi.dstJ < p {
			sends = append(sends, hi)
		}
	}
	for _, d := range dims {
		words := blockSize(j, n, p)
		if d == 1 {
			words = blockSize(i, n, p)
		}
		if d == 0 {
			if i > 0 {
				recvs = append(recvs, haloMsg{srcI: i - 1, srcJ: j, dstI: i, dstJ: j, words: blockSize(j, n, p)})
			}
			if i < p-1 {
				recvs = append(recvs, haloMsg{srcI: i + 1, srcJ: j, dstI: i, dstJ: j, words: words})
			}
		} else {
			if j > 0 {
				recvs = append(recvs, haloMsg{srcI: i, srcJ: j - 1, dstI: i, dstJ: j, words: blockSize(i, n, p)})
			}
			if j < p-1 {
				recvs = append(recvs, haloMsg{srcI: i, srcJ: j + 1, dstI: i, dstJ: j, words: words})
			}
		}
	}
	return sends, recvs
}

// sendOrdinal returns the 1-based position of the send (src -> dst) in the
// sender's schedule — the term deciding when the message departs.
func sendOrdinal(n, p int, dims []int, srcI, srcJ, dstI, dstJ int) int {
	sends, _ := haloSchedule(n, p, srcI, srcJ, dims)
	for k, s := range sends {
		if s.dstI == dstI && s.dstJ == dstJ {
			return k + 1
		}
	}
	panic("perfest: halo schedule has no such send")
}

// haloIterTime is the one-shot (synchronized-start) critical path of one
// halo-exchange round over the exchanged dims: jacobiStep from all-zero
// finish times. The ADI surcharge model uses it per component.
func haloIterTime(cost machine.CostModel, n, p, nodes int, dims []int, flopsAt func(i, j int) int) float64 {
	finish := make([]float64, p*p)
	next := make([]float64, p*p)
	jacobiStep(cost, n, p, nodes, dims, flopsAt, finish, next)
	worst := 0.0
	for _, f := range next {
		if f > worst {
			worst = f
		}
	}
	return worst
}

// jacobiStep advances every processor's finish time by one iteration of
// the halo-exchange-plus-compute recurrence: processor P, starting at its
// previous finish time, posts its sends (SendOverhead each), then works
// through its receives in schedule order — each gated by the sender's
// departure (the sender's previous finish plus the send's ordinal
// overheads) plus the crossed link's transfer time — and finally computes.
// The sequential receive replay folds into a max over one term per gate:
//
//	finish'[P] = comp + max( finish[P] + S*so + R*ro,
//	                         max_i finish[src_i] + ord_i*so + mt_i + (R-i)*ro )
//
// which is exactly the simulator's clock arithmetic.
func jacobiStep(cost machine.CostModel, n, p, nodes int, dims []int, flopsAt func(i, j int) int, finish, next []float64) {
	for i := 0; i < p; i++ {
		for j := 0; j < p; j++ {
			me := i*p + j
			sends, recvs := haloSchedule(n, p, i, j, dims)
			comp := 0.0
			if flopsAt != nil {
				comp = float64(flopsAt(i, j)) * cost.FlopTime
			}
			R := len(recvs)
			best := finish[me] + float64(len(sends))*cost.SendOverhead + float64(R)*cost.RecvOverhead
			for k, r := range recvs {
				src := r.srcI*p + r.srcJ
				ord := sendOrdinal(n, p, dims, r.srcI, r.srcJ, i, j)
				cand := finish[src] + float64(ord)*cost.SendOverhead +
					cost.LinkMessageTime(nodeOf(r.srcI, r.srcJ, p, nodes), nodeOf(i, j, p, nodes), r.words*wordBytes) +
					float64(R-k)*cost.RecvOverhead
				if cand > best {
					best = cand
				}
			}
			next[me] = best + comp
		}
	}
}

// jacobiInterior returns processor (i, j)'s count of interior points (the
// 5-flop Jacobi updates it performs per iteration).
func jacobiInterior(n, p, i, j int) int {
	rows := overlap(blockLower(i, n, p), blockLower(i, n, p)+blockSize(i, n, p)-1, 1, n-2)
	cols := overlap(blockLower(j, n, p), blockLower(j, n, p)+blockSize(j, n, p)-1, 1, n-2)
	return rows * cols
}

func overlap(lo, hi, a, b int) int {
	if lo < a {
		lo = a
	}
	if hi > b {
		hi = b
	}
	if hi < lo {
		return 0
	}
	return hi - lo + 1
}

// JacobiFederatedTime predicts the virtual time of the KF1 Jacobi
// program's iteration loop — iters iterations, n x n points, p x p grid —
// on a machine federated into `nodes` consecutive-rank nodes, by iterating
// the halo schedule's exact finish-time recurrence. With a flat cost model
// (or nodes == 1) it predicts the shared machine; with a hierarchical
// model every ghost message is priced by the link it crosses. The
// prediction matches the simulator's Elapsed to floating-point noise,
// including start-up transients and steady-state processor offsets.
func JacobiFederatedTime(cost machine.CostModel, n, p, iters, nodes int) float64 {
	checkNodes(p, nodes)
	finish := make([]float64, p*p)
	next := make([]float64, p*p)
	flops := func(i, j int) int { return 5 * jacobiInterior(n, p, i, j) }
	for k := 0; k < iters; k++ {
		jacobiStep(cost, n, p, nodes, []int{0, 1}, flops, finish, next)
		finish, next = next, finish
	}
	worst := 0.0
	for _, f := range finish {
		if f > worst {
			worst = f
		}
	}
	return worst
}

// JacobiFederated predicts the iteration loop of the KF1 Jacobi program on
// a federated machine: counts are exact (and transport-invariant — the
// federation moves the same messages), time is the exact finish-time
// recurrence under the hierarchical cost model.
func JacobiFederated(cost machine.CostModel, n, p, iters, nodes int) Estimate {
	flat := Jacobi(cost, n, p, iters)
	return Estimate{
		Msgs:  flat.Msgs,
		Bytes: flat.Bytes,
		Time:  JacobiFederatedTime(cost, n, p, iters, nodes),
	}
}

// JacobiFederatedSurcharge predicts how much longer the iters-iteration
// Jacobi loop runs on the federation than on the shared machine under the
// same hierarchical cost model: the inter-node ghost messages on the
// critical path pay their link price instead of the flat one. Zero when
// the model has no InterNode table or the federation has one node.
func JacobiFederatedSurcharge(cost machine.CostModel, n, p, iters, nodes int) float64 {
	flat := cost
	flat.InterNode = nil
	return JacobiFederatedTime(cost, n, p, iters, nodes) - JacobiFederatedTime(flat, n, p, iters, 1)
}

// reduceChainCross counts the inter-node hops on the critical chain of a
// binomial reduction (or its mirror broadcast) over the row-major grid of
// size pp split into `nodes` consecutive nodes: the chain from the root
// through its largest-stride child down to a leaf, one hop per power-of-two
// stride.
func reduceChainCross(pp, nodes int) int {
	// The critical chain's hops are (0, s_max), (s_max, s_max + s_max/2),
	// ... — each node's own largest-stride child — down to a leaf.
	perNode := pp / nodes
	cross := 0
	base := 0
	for s := largestPow2Below(pp); s >= 1; s /= 2 {
		child := base + s
		if child < pp {
			if base/perNode != child/perNode {
				cross++
			}
			base = child
		}
	}
	return cross
}

func largestPow2Below(n int) int {
	s := 1
	for s*2 < n {
		s *= 2
	}
	return s
}

// AllReduceFederatedSurcharge predicts the extra virtual time one
// AllReduce over all pp processors pays on the federation: every
// inter-node hop on the reduce chain and the broadcast chain carries one
// scalar at the link price instead of the flat one.
func AllReduceFederatedSurcharge(cost machine.CostModel, pp, nodes int) float64 {
	if nodes <= 0 || pp%nodes != 0 {
		panic("perfest: federation node count must be positive and divide the processor count")
	}
	if nodes == 1 || cost.InterNode == nil {
		return 0
	}
	return 2 * float64(reduceChainCross(pp, nodes)) * cost.InterNodeExtra(wordBytes)
}

// triChainCross counts the inter-node hops on one system's up (reduction)
// and down (substitution) chains of the substructured tridiagonal solver
// under the shuffle mapping, maximized over the solver grid's members.
// The solver grid is one line-slice of the p x p grid along dim (its
// members' ranks step by p for dim 1 — a grid column — and by 1 for dim 0),
// federated into `nodes` consecutive-rank nodes.
func triChainCross(p, nodes, dim, fixed int) int {
	perNode := p * p / nodes
	memberNode := func(m int) int {
		if dim == 1 { // grid column: member m is grid position (m, fixed)
			return (m*p + fixed) / perNode
		}
		return (fixed*p + m) / perNode // grid row
	}
	k := 0
	for v := p; v > 1; v >>= 1 {
		k++
	}
	holder := func(s, blk int) int {
		switch {
		case s == 0:
			return blk
		case s == k:
			return 0
		default:
			return 1<<(k-s) - 1 + blk
		}
	}
	worst := 0
	for me := 0; me < p; me++ {
		cross := 0
		for s := 1; s <= k; s++ {
			a := holder(s-1, me>>(s-1))
			b := holder(s, me>>s)
			if memberNode(a) != memberNode(b) {
				cross++
			}
		}
		if cross > worst {
			worst = cross
		}
	}
	return worst
}

// ADIFederatedSurcharge predicts the per-iteration virtual-time surcharge
// of the pipelined ADI iteration (the paper's madi, Listing 8) on a
// federation of `nodes` consecutive-rank nodes of the p x p grid, n x n
// unknowns. Per iteration the critical path crosses the interconnect in
// four places, each charged its link price instead of the flat one:
//
//   - the two stencil-sweep halo exchanges and the residual exchange
//     (replayed exactly like Jacobi's, per exchanged dimension);
//   - the pipelined line solves perpendicular to each swept dimension,
//     whose reduction/substitution chains hop across nodes (9-word rows
//     up, 2-word pairs down, one chain per pipelined system);
//   - the residual's max-reduction over all processors (scalar binomial
//     tree up and down).
//
// The pipeline overlaps systems, so the solve term is a critical-path
// estimate, not an exact replay; S3 validates the total to a tolerance.
func ADIFederatedSurcharge(cost machine.CostModel, n, p, nodes int) float64 {
	checkNodes(p, nodes)
	if nodes == 1 || cost.InterNode == nil {
		return 0
	}
	flat := cost
	flat.InterNode = nil
	haloDelta := func(dims []int) float64 {
		return haloIterTime(cost, n, p, nodes, dims, nil) - haloIterTime(flat, n, p, nodes, dims, nil)
	}
	extraUp := cost.InterNodeExtra(9 * wordBytes)
	extraDown := cost.InterNodeExtra(2 * wordBytes)
	// The pipeline charges one chain's crossings: successive systems'
	// inter-node hops overlap with other tree levels' work (system j is
	// at level s while system j+1 is at s-1), so only the critical
	// chain's crossings — the drain of the last system — survive on the
	// critical path.
	solveDelta := func(dim int) float64 {
		worstCross := 0
		for fixed := 0; fixed < p; fixed++ {
			if c := triChainCross(p, nodes, dim, fixed); c > worstCross {
				worstCross = c
			}
		}
		return float64(worstCross) * (extraUp + extraDown)
	}
	return haloDelta([]int{1}) + // sweep 1 rhs: y-stencil of u
		solveDelta(1) + // x-direction solves along grid columns
		haloDelta([]int{0}) + // sweep 2 rhs: x-stencil of u*
		solveDelta(0) + // y-direction solves along grid rows
		haloDelta([]int{0, 1}) + // residual stencil
		AllReduceFederatedSurcharge(cost, p*p, nodes) // residual max-reduce
}
