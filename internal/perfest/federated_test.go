package perfest

import (
	"math"
	"testing"

	"repro/internal/jacobi"
	"repro/internal/machine"
	"repro/internal/topology"
)

func relDiff(a, b float64) float64 {
	if b == 0 {
		return math.Abs(a)
	}
	return math.Abs(a-b) / math.Abs(b)
}

// runJacobi returns (elapsed, per-iteration msgs, per-iteration bytes) by
// differencing two run lengths, which cancels the verification epilogue.
func runJacobi(m *machine.Machine, n, p, i1, i2 int) (dElapsed float64, iterMsgs, iterBytes int64) {
	x0, f := jacobi.Problem(n)
	g := topology.New(p, p)
	r1, err := jacobi.KF1(m, g, x0, f, i1)
	if err != nil {
		panic(err)
	}
	s1 := m.TotalStats()
	r2, err := jacobi.KF1(m, g, x0, f, i2)
	if err != nil {
		panic(err)
	}
	s2 := m.TotalStats()
	d := i2 - i1
	return (r2.Elapsed - r1.Elapsed) / float64(d),
		(s2.MsgsSent - s1.MsgsSent) / int64(d),
		(s2.BytesSent - s1.BytesSent) / int64(d)
}

func TestJacobiCountsExactBalancedAndUnbalanced(t *testing.T) {
	cost := machine.IPSC2()
	for _, tc := range []struct{ n, p int }{
		{32, 4}, // balanced: 4 | 32
		{10, 3}, // unbalanced: blocks 3,3,4
		{37, 4}, // unbalanced: blocks 9,9,9,10
		{65, 8}, // unbalanced at scale
		{7, 7},  // one point per processor... balanced edge
		{11, 2}, // p=2 unbalanced
	} {
		m := machine.New(tc.p*tc.p, cost)
		_, iterMsgs, iterBytes := runJacobi(m, tc.n, tc.p, 2, 5)
		est := Jacobi(cost, tc.n, tc.p, 1)
		if int64(est.Msgs) != iterMsgs || int64(est.Bytes) != iterBytes {
			t.Errorf("n=%d p=%d: predicted %d msgs / %d bytes per iteration, simulator moved %d / %d",
				tc.n, tc.p, est.Msgs, est.Bytes, iterMsgs, iterBytes)
		}
	}
}

func TestJacobiRejectsEmptyBlocks(t *testing.T) {
	defer func() {
		if recover() == nil {
			t.Fatal("Jacobi(p > n) did not panic")
		}
	}()
	Jacobi(machine.IPSC2(), 4, 5, 1)
}

// elapsedOf runs the KF1 Jacobi loop and returns its Elapsed.
func elapsedOf(m *machine.Machine, n, p, iters int) float64 {
	x0, f := jacobi.Problem(n)
	r, err := jacobi.KF1(m, topology.New(p, p), x0, f, iters)
	if err != nil {
		panic(err)
	}
	return r.Elapsed
}

func TestJacobiFederatedTimeMatchesSimulatorFlat(t *testing.T) {
	// The finish-time recurrence must reproduce the simulator's loop time
	// to floating-point noise — transients included, so short and long
	// runs, balanced and unbalanced blocks, all match.
	cost := machine.IPSC2()
	for _, tc := range []struct{ n, p, iters int }{
		{64, 4, 1}, {64, 4, 3}, {64, 4, 10}, {37, 4, 4}, {65, 8, 3},
	} {
		m := machine.New(tc.p*tc.p, cost)
		got := elapsedOf(m, tc.n, tc.p, tc.iters)
		pred := JacobiFederatedTime(cost, tc.n, tc.p, tc.iters, 1)
		if d := relDiff(pred, got); d > 1e-9 {
			t.Errorf("n=%d p=%d iters=%d: predicted %v, simulated %v (rel diff %v)",
				tc.n, tc.p, tc.iters, pred, got, d)
		}
	}
}

func TestJacobiFederatedSurchargeMatchesSimulator(t *testing.T) {
	cost := machine.IPSC2().WithInterNode(4, 8)
	const n, iters = 64, 5
	for _, tc := range []struct{ p, nodes int }{
		{4, 2},  // whole-row nodes, 2 rows per node
		{4, 4},  // one row per node: both dim-0 ghosts cross
		{4, 8},  // half-row nodes: dim-1 seams cross too
		{8, 4},  // larger grid
		{8, 16}, // half-row nodes on the larger grid
	} {
		pp := tc.p * tc.p
		eShared := elapsedOf(machine.New(pp, cost), n, tc.p, iters)
		eFed := elapsedOf(machine.NewFederated(pp, tc.nodes, cost), n, tc.p, iters)
		pred := JacobiFederatedSurcharge(cost, n, tc.p, iters, tc.nodes)
		got := eFed - eShared
		if d := relDiff(pred, got); d > 1e-9 {
			t.Errorf("p=%d nodes=%d: predicted surcharge %v, simulated %v (rel diff %v)",
				tc.p, tc.nodes, pred, got, d)
		}
		if !(eFed > eShared) {
			t.Errorf("p=%d nodes=%d: federated loop %v not slower than shared %v",
				tc.p, tc.nodes, eFed, eShared)
		}
	}
}

func TestJacobiInterNodeClosedFormAgreement(t *testing.T) {
	// For whole-row federations the enumeration must reproduce the old
	// closed form 2*p*(nodes-1) messages, 2*(nodes-1)*n words.
	for _, tc := range []struct{ n, p, nodes int }{
		{256, 16, 4}, {256, 16, 16}, {64, 8, 2}, {37, 4, 4},
	} {
		msgs, bytes := JacobiInterNode(tc.n, tc.p, tc.nodes)
		if wantM := 2 * tc.p * (tc.nodes - 1); msgs != wantM {
			t.Errorf("n=%d p=%d nodes=%d: %d msgs, closed form %d", tc.n, tc.p, tc.nodes, msgs, wantM)
		}
		if wantB := 2 * (tc.nodes - 1) * tc.n * wordBytes; bytes != wantB {
			t.Errorf("n=%d p=%d nodes=%d: %d bytes, closed form %d", tc.n, tc.p, tc.nodes, bytes, wantB)
		}
	}
}

func TestFederatedEstimatesRejectBadNodeCounts(t *testing.T) {
	// The estimator must reject exactly the federations the simulator's
	// NewFederated would reject, instead of predicting a partition that
	// cannot be built.
	for name, fn := range map[string]func(){
		"JacobiFederatedTime": func() { JacobiFederatedTime(machine.IPSC2(), 256, 32, 3, 3) },
		"ADIFederated":        func() { ADIFederatedSurcharge(machine.IPSC2().WithInterNode(2, 2), 64, 32, 2048) },
		"AllReduceFederated":  func() { AllReduceFederatedSurcharge(machine.IPSC2().WithInterNode(2, 2), 1024, 3) },
	} {
		func() {
			defer func() {
				if recover() == nil {
					t.Errorf("%s: node count not dividing the processor count did not panic", name)
				}
			}()
			fn()
		}()
	}
}

func TestReduceChainCross(t *testing.T) {
	// Consecutive partition with power-of-two nodes: the chain crosses on
	// exactly the strides >= processors-per-node.
	for _, tc := range []struct{ pp, nodes, want int }{
		{1024, 4, 2}, {1024, 16, 4}, {1024, 64, 6}, {16, 1, 0}, {16, 16, 4},
	} {
		if got := reduceChainCross(tc.pp, tc.nodes); got != tc.want {
			t.Errorf("reduceChainCross(%d, %d) = %d, want %d", tc.pp, tc.nodes, got, tc.want)
		}
	}
}
