// Package perfest is a static performance estimator for KF1 programs — the
// tool the paper's Section 2 promises ("we plan to address this issue by
// providing performance estimation tools, which will indicate which parts
// of a program will compile into efficient executable code"). Given a cost
// model and a program's distribution parameters, it predicts message
// counts, communication volumes and virtual execution time without running
// the program; experiment A2 validates the predictions against the
// simulator.
//
// Counts and volumes are exact (they follow combinatorially from the
// distributions); times are critical-path estimates that ignore secondary
// overlap effects and are validated to a tolerance.
package perfest

import "repro/internal/machine"

// Estimate is a static prediction for one program phase.
type Estimate struct {
	// Msgs is the total number of messages across all processors.
	Msgs int
	// Bytes is the total payload volume in bytes.
	Bytes int
	// Time is the predicted virtual execution time in seconds.
	Time float64
}

// wordBytes mirrors the simulator's 8-byte array elements.
const wordBytes = 8

// Jacobi predicts the iteration loop of the KF1 Jacobi program (Listing 3):
// n x n points block/block-distributed on a p x p grid, iters iterations,
// each iteration one two-dimensional halo exchange plus the five-flop
// update per interior point. p must not exceed n (an empty block has no
// edge to exchange, and dist.Block never assigns one when p <= n).
//
// Counts are exact for balanced and unbalanced blocks alike: every
// adjacent pair still trades two messages per line, and along each
// dimension the per-line message sizes are the blocks of the perpendicular
// dimension, which sum to n no matter how Block rounds them.
func Jacobi(cost machine.CostModel, n, p, iters int) Estimate {
	if p > n {
		panic("perfest: Jacobi needs p <= n (processors would own empty blocks)")
	}
	// Messages: per dimension, every adjacent processor pair exchanges
	// two messages per line of processors; p lines per dimension.
	msgsPerIter := 4 * p * (p - 1)
	// Bytes: per dimension, each of the p lines trades 2*(p-1) messages
	// whose sizes are that line's perpendicular block sizes; summed over
	// the p lines the block sizes cover all n indices exactly, balanced
	// or not.
	bytesPerIter := 4 * (p - 1) * n * wordBytes

	// Critical path per iteration: the busiest processor posts its edge
	// sends, waits one latency + transfer for the matching ghosts,
	// completes its receives, then updates its interior points. The
	// busiest processor owns a ceiling-sized block.
	local := (n + p - 1) / p
	nbrs := 4
	switch {
	case p == 1:
		nbrs = 0
	case p == 2:
		nbrs = 2
	}
	interior := local * local
	tIter := float64(nbrs)*cost.SendOverhead +
		float64(nbrs)*cost.RecvOverhead +
		5*float64(interior)*cost.FlopTime
	if nbrs > 0 {
		tIter += cost.MessageTime(local * wordBytes)
	}
	return Estimate{
		Msgs:  iters * msgsPerIter,
		Bytes: iters * bytesPerIter,
		Time:  float64(iters) * tIter,
	}
}

// TriSolve predicts one substructured tridiagonal solve (Listing 4) of n
// rows on p = 2^k processors under the shuffle mapping.
//
// Message census: every processor mails its two boundary rows up (p
// messages of 9 values); each tree level's holders mail theirs (p-2 more);
// the final solve and every tree holder mail two substitution pairs down
// (2p-2 messages of 2 values). Total 4p-4 messages, (2p-2)*(72+16) bytes.
func TriSolve(cost machine.CostModel, n, p int) Estimate {
	if p == 1 {
		return Estimate{Time: 8 * float64(n) * cost.FlopTime}
	}
	k := 0
	for v := p; v > 1; v >>= 1 {
		k++
	}
	local := n / p
	upMsgs := 2*p - 2
	downMsgs := 2*p - 2
	bytes := upMsgs*9*wordBytes + downMsgs*2*wordBytes

	F := cost.FlopTime
	up := cost.MessageTime(9 * wordBytes)
	down := cost.MessageTime(2 * wordBytes)
	// Critical path: local reduce, k-1 tree hops, the final solve, k-1
	// substitution hops, local back-substitution.
	t := (2*float64(local) + 11*float64(local-2) + 2) * F // copy-in + local reduce
	t += cost.SendOverhead
	for s := 1; s <= k-1; s++ {
		t += up + 2*cost.RecvOverhead + 24*F + cost.SendOverhead
	}
	t += up + 2*cost.RecvOverhead + 32*F + 2*cost.SendOverhead // final solve
	for s := k - 1; s >= 1; s-- {
		t += down + cost.RecvOverhead + 10*F + 2*cost.SendOverhead
	}
	t += down + cost.RecvOverhead + (5*float64(local-2)+float64(local))*F
	return Estimate{
		Msgs:  4*p - 4,
		Bytes: bytes,
		Time:  t,
	}
}

// JacobiInterNode predicts the per-iteration node-interconnect traffic of
// the KF1 Jacobi iteration on a p x p processor grid federated across
// `nodes` nodes of consecutive ranks (row-major); nodes must divide p*p.
// When each node owns whole grid rows (nodes <= p) only the dimension-0
// halo exchanges that straddle a node boundary cross the interconnect: per
// boundary, every grid column trades one message each way, each carrying
// one local row. With more nodes than grid rows a node owns part of a row,
// so every dimension-0 exchange crosses, plus the dimension-1 exchanges at
// the intra-row seams. The counts are enumerated exactly — including
// unbalanced blocks, whose message sizes per line sum to n — and validated
// against FederatedTransport's link counters by experiments S2 and S3.
func JacobiInterNode(n, p, nodes int) (msgs, bytes int) {
	checkNodes(p, nodes)
	for i := 0; i < p; i++ {
		for j := 0; j < p; j++ {
			// Dimension-0 neighbours trade one local row each way.
			if i+1 < p && nodeOf(i, j, p, nodes) != nodeOf(i+1, j, p, nodes) {
				msgs += 2
				bytes += 2 * blockSize(j, n, p) * wordBytes
			}
			// Dimension-1 neighbours trade one local column each way.
			if j+1 < p && nodeOf(i, j, p, nodes) != nodeOf(i, j+1, p, nodes) {
				msgs += 2
				bytes += 2 * blockSize(i, n, p) * wordBytes
			}
		}
	}
	return msgs, bytes
}

// GatherMsgs returns the message count of darray.GatherTo on a grid of
// size gp: every non-root member sends one message.
func GatherMsgs(gp int) int { return gp - 1 }

// GatherBytes returns the payload volume of gathering cells total elements
// onto the root, which already owns cells/gp of them (balanced blocks).
func GatherBytes(gp, cells int) int {
	return (cells - cells/gp) * wordBytes
}

// AllReduceMsgs returns the message count of coll.AllReduce on gp
// processors (binomial reduce plus binomial broadcast).
func AllReduceMsgs(gp int) int { return 2 * (gp - 1) }

// AllReduceBytes returns the corresponding volume (one scalar per message).
func AllReduceBytes(gp int) int { return AllReduceMsgs(gp) * wordBytes }
