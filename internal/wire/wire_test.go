package wire

import (
	"bytes"
	"encoding/binary"
	"errors"
	"io"
	"math"
	"testing"
)

// sampleFrames covers every kind plus the numeric edge cases the codec must
// carry bit-exactly: NaN, infinities, signed zero, subnormals, extreme ints.
func sampleFrames() []Frame {
	return []Frame{
		{Kind: KindHello, Seq: 3},
		{Kind: KindData, Src: 0, Dst: 1, Tag: 0xCAFE, Seq: 1, Arrival: 1.5, Payload: []float64{1, 2, 3}},
		{Kind: KindDeliver, Src: 7, Dst: 2, Tag: 1 << 40, Seq: 99, Arrival: 1e-300,
			Payload: []float64{math.NaN(), math.Inf(1), math.Inf(-1), math.Copysign(0, -1), 5e-324}},
		{Kind: KindData, Src: -1, Dst: math.MaxInt32, Tag: math.MaxUint64, Seq: math.MaxUint64,
			A: 1, B: 2, Arrival: math.MaxFloat64},
		{Kind: KindBarrier, Seq: 41},
		{Kind: KindReset, Seq: 2},
		{Kind: KindResetAck, Seq: 2, A: 77},
		{Kind: KindAbort},
		{Kind: KindProbe, Seq: 5},
		{Kind: KindProbeAck, Seq: 5, A: 123, B: 122},
		{Kind: KindShutdown},
		{Kind: KindData, Src: 3, Dst: 4, Tag: 9, Seq: 10, Arrival: 0.25, Payload: make([]float64, 1000)},
		{Kind: KindRunSpec, Seq: 1, A: 27, Payload: PackBytes([]byte(`{"program":"jacobi","n":64}`))},
		{Kind: KindRunAck, Seq: 1, A: 1, B: 9, Payload: PackBytes([]byte("no such p"))},
		{Kind: KindRunStart, Seq: 1},
		{Kind: KindRankResult, Src: 12, Seq: 1, A: 0, B: 0,
			Payload: []float64{1.25, 2.5, math.Float64frombits(300), math.Float64frombits(12), 0, 0, 0.5, 0.25, 1, 3.75}},
		{Kind: KindStallHint, Seq: 2},
	}
}

// TestPackBytesRoundTrip pins the byte<->payload-word packing used by the
// run protocol for opaque content (specs, error texts), including lengths
// that straddle word boundaries and high-bit bytes whose packed words look
// like NaNs.
func TestPackBytesRoundTrip(t *testing.T) {
	cases := [][]byte{
		nil,
		[]byte("x"),
		[]byte("exactly8"),
		[]byte("nine long"),
		[]byte(`{"program":"adi","args":[64,1,1,0,2]}`),
		{0xFF, 0xF8, 0, 0, 0, 0, 0, 0x7F, 0xFF}, // packs into a NaN-patterned word
	}
	for _, b := range cases {
		words := PackBytes(b)
		if len(words) != (len(b)+7)/8 {
			t.Fatalf("%q: packed into %d words, want %d", b, len(words), (len(b)+7)/8)
		}
		got, err := UnpackBytes(words, len(b))
		if err != nil {
			t.Fatalf("%q: unpack: %v", b, err)
		}
		if !bytes.Equal(got, b) {
			t.Fatalf("round trip mismatch: %q -> %q", b, got)
		}
	}
	if _, err := UnpackBytes(PackBytes([]byte("short")), 9); err == nil {
		t.Fatal("unpacking more bytes than the words hold did not error")
	}
	if _, err := UnpackBytes(nil, -1); err == nil {
		t.Fatal("negative length did not error")
	}
}

// TestDecodeConcatenatedFrames pins the property frame batching relies on:
// many frames coalesced into one socket write decode back one by one, each
// consuming exactly its own bytes, with no framing drift across the batch.
func TestDecodeConcatenatedFrames(t *testing.T) {
	frames := sampleFrames()
	var batch []byte
	for i := range frames {
		batch = AppendFrame(batch, &frames[i])
	}
	rest := batch
	for i := range frames {
		var got Frame
		n, err := DecodeFrame(rest, &got, nil)
		if err != nil {
			t.Fatalf("frame %d in batch: %v", i, err)
		}
		if !framesEqual(&frames[i], &got) {
			t.Fatalf("frame %d in batch mismatch:\n in: %+v\nout: %+v", i, frames[i], got)
		}
		rest = rest[n:]
	}
	if len(rest) != 0 {
		t.Fatalf("%d bytes left over after decoding the batch", len(rest))
	}
}

// framesEqual compares frames with payload floats by bit pattern, so NaN
// equals NaN and -0 differs from +0.
func framesEqual(a, b *Frame) bool {
	if a.Kind != b.Kind || a.Src != b.Src || a.Dst != b.Dst || a.Tag != b.Tag ||
		a.Seq != b.Seq || a.A != b.A || a.B != b.B ||
		math.Float64bits(a.Arrival) != math.Float64bits(b.Arrival) ||
		len(a.Payload) != len(b.Payload) {
		return false
	}
	for i := range a.Payload {
		if math.Float64bits(a.Payload[i]) != math.Float64bits(b.Payload[i]) {
			return false
		}
	}
	return true
}

func TestFrameRoundTrip(t *testing.T) {
	for _, f := range sampleFrames() {
		f := f
		enc := AppendFrame(nil, &f)
		if len(enc) != EncodedLen(&f) {
			t.Fatalf("%v: encoded %d bytes, EncodedLen says %d", f.Kind, len(enc), EncodedLen(&f))
		}
		var got Frame
		n, err := DecodeFrame(enc, &got, nil)
		if err != nil {
			t.Fatalf("%v: decode: %v", f.Kind, err)
		}
		if n != len(enc) {
			t.Fatalf("%v: consumed %d of %d bytes", f.Kind, n, len(enc))
		}
		if !framesEqual(&f, &got) {
			t.Fatalf("%v: round trip mismatch:\n in: %+v\nout: %+v", f.Kind, f, got)
		}
		// Canonical: re-encoding the decoded frame reproduces the bytes.
		if re := AppendFrame(nil, &got); !bytes.Equal(enc, re) {
			t.Fatalf("%v: re-encode differs from original bytes", f.Kind)
		}
	}
}

func TestFrameStreamRoundTrip(t *testing.T) {
	frames := sampleFrames()
	var buf bytes.Buffer
	var wscratch []byte
	for i := range frames {
		if err := WriteFrame(&buf, &wscratch, &frames[i]); err != nil {
			t.Fatalf("write %d: %v", i, err)
		}
	}
	var rscratch []byte
	for i := range frames {
		var got Frame
		if err := ReadFrame(&buf, &got, &rscratch, nil); err != nil {
			t.Fatalf("read %d: %v", i, err)
		}
		if !framesEqual(&frames[i], &got) {
			t.Fatalf("frame %d: stream round trip mismatch:\n in: %+v\nout: %+v", i, frames[i], got)
		}
	}
	// A clean close between frames is io.EOF, not a decode error.
	var got Frame
	if err := ReadFrame(&buf, &got, &rscratch, nil); err != io.EOF {
		t.Fatalf("read past end: got %v, want io.EOF", err)
	}
}

func TestDecodeAcquireHook(t *testing.T) {
	f := Frame{Kind: KindData, Src: 1, Dst: 2, Tag: 3, Seq: 4, Arrival: 0.5, Payload: []float64{9, 8, 7}}
	enc := AppendFrame(nil, &f)
	backing := make([]float64, 16)
	calls := 0
	acquire := func(n int) []float64 { calls++; return backing[:n] }
	var got Frame
	if _, err := DecodeFrame(enc, &got, acquire); err != nil {
		t.Fatal(err)
	}
	if calls != 1 {
		t.Fatalf("acquire called %d times, want 1", calls)
	}
	if &got.Payload[0] != &backing[0] {
		t.Fatal("decoded payload does not use the acquired buffer")
	}
	if !framesEqual(&f, &got) {
		t.Fatalf("mismatch: %+v vs %+v", f, got)
	}
	// Zero-payload frames must not call acquire at all.
	ctrl := Frame{Kind: KindProbe, Seq: 1}
	enc = AppendFrame(nil, &ctrl)
	if _, err := DecodeFrame(enc, &got, acquire); err != nil {
		t.Fatal(err)
	}
	if calls != 1 {
		t.Fatalf("acquire called for an empty payload")
	}
}

func TestDecodeErrors(t *testing.T) {
	valid := AppendFrame(nil, &Frame{Kind: KindData, Src: 1, Dst: 2, Tag: 3, Arrival: 1, Payload: []float64{4}})

	corrupt := func(mutate func(b []byte)) []byte {
		b := append([]byte(nil), valid...)
		mutate(b)
		return b
	}

	cases := []struct {
		name string
		in   []byte
		want error
	}{
		{"empty", nil, ErrTruncated},
		{"short prefix", valid[:3], ErrTruncated},
		{"truncated body", valid[:len(valid)-1], ErrTruncated},
		{"header only declared", corrupt(func(b []byte) { binary.LittleEndian.PutUint32(b, HeaderLen-1) }), ErrTruncated},
		{"oversize prefix", corrupt(func(b []byte) { binary.LittleEndian.PutUint32(b, MaxBody+1) }), ErrOversize},
		{"oversize payload count", corrupt(func(b []byte) { binary.LittleEndian.PutUint32(b[4+49:], MaxPayloadWords+1) }), ErrOversize},
		{"zero kind", corrupt(func(b []byte) { b[4] = 0 }), ErrBadKind},
		{"unknown kind", corrupt(func(b []byte) { b[4] = 0xEE }), ErrBadKind},
		{"length mismatch", corrupt(func(b []byte) { binary.LittleEndian.PutUint32(b[4+49:], 2) }), ErrLengthMismatch},
	}
	for _, tc := range cases {
		var f Frame
		n, err := DecodeFrame(tc.in, &f, nil)
		if !errors.Is(err, tc.want) {
			t.Errorf("%s: got error %v, want %v", tc.name, err, tc.want)
		}
		if n != 0 {
			t.Errorf("%s: consumed %d bytes on error", tc.name, n)
		}
	}
}

// TestDecodeNoOverAllocate pins that a hostile length prefix cannot make the
// decoder allocate: the mismatch between the declared payload count and the
// actual body length is detected before any buffer is sized from the count.
func TestDecodeNoOverAllocate(t *testing.T) {
	// A frame whose header claims MaxPayloadWords of payload but carries one.
	b := AppendFrame(nil, &Frame{Kind: KindData, Payload: []float64{1}})
	binary.LittleEndian.PutUint32(b[4+49:], MaxPayloadWords)
	var f Frame
	acquired := false
	_, err := DecodeFrame(b, &f, func(n int) []float64 { acquired = true; return make([]float64, n) })
	if !errors.Is(err, ErrLengthMismatch) {
		t.Fatalf("got %v, want ErrLengthMismatch", err)
	}
	if acquired {
		t.Fatal("decoder sized a buffer from an unvalidated payload count")
	}
}

func TestReadFrameTruncatedStream(t *testing.T) {
	enc := AppendFrame(nil, &Frame{Kind: KindData, Payload: []float64{1, 2}})
	for cut := 1; cut < len(enc); cut++ {
		var f Frame
		var scratch []byte
		err := ReadFrame(bytes.NewReader(enc[:cut]), &f, &scratch, nil)
		if !errors.Is(err, ErrTruncated) {
			t.Fatalf("cut at %d: got %v, want ErrTruncated", cut, err)
		}
	}
}

func TestKindString(t *testing.T) {
	for k := KindInvalid + 1; k < kindEnd; k++ {
		if s := k.String(); s == "" || s[0] == 'w' {
			t.Errorf("kind %d has no name: %q", k, s)
		}
	}
	if s := Kind(200).String(); s != "wire.Kind(200)" {
		t.Errorf("unknown kind string: %q", s)
	}
}

// TestHotPathAllocFree pins the warmed encode/decode cycle at zero
// allocations: scratch buffers reused, payloads from the acquire hook.
func TestHotPathAllocFree(t *testing.T) {
	f := Frame{Kind: KindData, Src: 1, Dst: 2, Tag: 3, Seq: 4, Arrival: 0.5, Payload: make([]float64, 64)}
	var wscratch, rscratch []byte
	var sink bytes.Buffer
	backing := make([]float64, 64)
	acquire := func(n int) []float64 { return backing[:n] }
	sink.Grow(1 << 16)
	// Warm the scratch buffers.
	if err := WriteFrame(&sink, &wscratch, &f); err != nil {
		t.Fatal(err)
	}
	var got Frame
	var rd bytes.Reader
	allocs := testing.AllocsPerRun(100, func() {
		sink.Reset()
		if err := WriteFrame(&sink, &wscratch, &f); err != nil {
			t.Fatal(err)
		}
		rd.Reset(sink.Bytes())
		if err := ReadFrame(&rd, &got, &rscratch, acquire); err != nil {
			t.Fatal(err)
		}
	})
	if allocs != 0 {
		t.Fatalf("warmed encode/decode cycle allocates %.1f times per frame, want 0", allocs)
	}
}
