package wire

import (
	"bytes"
	"errors"
	"testing"
)

// FuzzFrameRoundTrip throws arbitrary bytes at the decoder and checks the
// codec's whole contract: decoding never panics; a failure is always one of
// the four structured sentinel errors and never sizes a payload buffer from
// an unvalidated count; a success consumes exactly the frame it decoded and,
// because the encoding is canonical, re-encoding the decoded frame must
// reproduce the consumed bytes bit-for-bit (which also re-checks every field
// survived the trip). The committed corpus under testdata/fuzz seeds one
// encoding of every frame kind plus truncation, oversize, bad-kind and
// length-mismatch shapes.
func FuzzFrameRoundTrip(f *testing.F) {
	for _, s := range sampleFrames() {
		s := s
		f.Add(AppendFrame(nil, &s))
	}
	f.Fuzz(func(t *testing.T, data []byte) {
		var fr Frame
		acquired := -1
		n, err := DecodeFrame(data, &fr, func(n int) []float64 {
			acquired = n
			return make([]float64, n)
		})
		if err != nil {
			if !errors.Is(err, ErrTruncated) && !errors.Is(err, ErrOversize) &&
				!errors.Is(err, ErrBadKind) && !errors.Is(err, ErrLengthMismatch) {
				t.Fatalf("unstructured decode error: %v", err)
			}
			if n != 0 {
				t.Fatalf("error path consumed %d bytes", n)
			}
			if acquired > 0 && acquired > (len(data)-4-HeaderLen)/8 {
				t.Fatalf("decoder acquired %d words from %d input bytes", acquired, len(data))
			}
			return
		}
		if n < 4+HeaderLen || n > len(data) {
			t.Fatalf("decoded %d bytes from %d input bytes", n, len(data))
		}
		re := AppendFrame(nil, &fr)
		if !bytes.Equal(re, data[:n]) {
			t.Fatalf("re-encode differs from consumed bytes:\n in: %x\nout: %x", data[:n], re)
		}
		// And the re-encoded bytes must decode to the same frame again.
		var fr2 Frame
		n2, err := DecodeFrame(re, &fr2, nil)
		if err != nil || n2 != len(re) {
			t.Fatalf("re-decode failed: n=%d err=%v", n2, err)
		}
		if !framesEqual(&fr, &fr2) {
			t.Fatalf("re-decode mismatch: %+v vs %+v", fr, fr2)
		}
	})
}
