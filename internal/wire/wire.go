// Package wire implements the length-prefixed binary frame codec the
// cross-process IPC transport speaks over its node sockets. A frame is
//
//	u32 length | u8 kind | i32 src | i32 dst | u64 tag | u64 seq |
//	u64 a | u64 b | f64 arrival | u32 plen | plen * f64 payload
//
// all little-endian, where length counts every byte after the prefix
// (HeaderLen + 8*plen). Data/Deliver frames carry one simulated message —
// (src, dst, tag, arrival, []float64) — and the remaining kinds are the
// control vocabulary of the transport: session hello, host-barrier epoch
// announcements, reset fencing, abort broadcast, the two-phase stall
// probe, shutdown, and the execution-plane run protocol (RunSpec out to
// the workers; RunAck, RankResult and StallHint back). Opaque bytes —
// run specs, error texts — ride in the float64 payload via PackBytes/
// UnpackBytes. The encoding is canonical: any frame that decodes
// re-encodes to exactly the same bytes, which is what lets the round-trip
// fuzzer compare raw bytes instead of trusting the decoder twice.
//
// The decoder is built for a hot receive loop: ReadFrame reads into a
// caller-owned scratch buffer and decodes the payload into a buffer from a
// caller-supplied acquire hook (the machine's pooled tier), so a warmed
// steady state performs no heap allocation. Malformed input — truncated,
// oversized, unknown kind, inconsistent lengths — returns one of the
// structured sentinel errors below; the decoder never panics and never
// allocates more than the input's own length can justify (lengths are
// validated before any buffer is sized from them).
package wire

import (
	"encoding/binary"
	"errors"
	"fmt"
	"io"
	"math"
)

// Kind discriminates the frame vocabulary.
type Kind uint8

// The frame kinds. Data carries one simulated message in either direction:
// coordinator -> worker it is an inter-node edge being routed toward the
// destination node, worker -> coordinator it is an inter-node send leaving
// a worker-hosted rank. Deliver is a Data frame reflected back off a relay
// worker (the two differ only in the kind byte, so a relay worker routes
// without re-encoding). RunSpec through StallHint are the execution-plane
// control vocabulary: the coordinator ships a serialized run request to
// every worker, each worker instantiates the named program over its local
// ranks and streams back one RankResult per rank. The rest are session
// control frames.
const (
	KindInvalid    Kind = iota
	KindHello           // worker session opener; Seq = node id
	KindData            // simulated message; Seq = per-socket FIFO sequence, A = run generation on worker->coordinator frames
	KindDeliver         // simulated message, relay worker -> coordinator; same fields as the Data it reflects
	KindBarrier         // host-barrier epoch announcement; Seq = generation, A = run generation on worker->coordinator arrivals
	KindReset           // run fence, coordinator -> worker; Seq = reset generation
	KindResetAck        // run fence acknowledgement; Seq echoes the generation, A = data frames seen before the fence
	KindAbort           // abort broadcast, coordinator -> worker; Seq = 1 when a distributed stall was declared (ranks unwind with the deadlock cause)
	KindProbe           // stall probe, coordinator -> worker; Seq = probe epoch
	KindProbeAck        // stall probe reply; Seq echoes the epoch, A = frames received, B = frames forwarded, Tag = worker status flags (bit 0 locally stalled, bit 1 all local ranks finished)
	KindShutdown        // orderly teardown, coordinator -> worker
	KindRunSpec         // distributed run request (and start signal), coordinator -> worker; Seq = run generation, A = spec byte length, payload = PackBytes(spec JSON)
	KindRunAck          // run request rejection, worker -> coordinator; Seq echoes the generation, A = 1, B = error byte length, payload = PackBytes(error text). Acceptance is not acked.
	KindRunStart        // retired: run start, coordinator -> worker (the spec now doubles as the start signal); kept in the vocabulary for frame-log compatibility
	KindRankResult      // a node's rank results, worker -> coordinator; Src = node, Seq = run generation, A = record count, payload = packed per-rank records (rank, error class, error byte length, payload word count header words — pure bit containers — then payload words, then PackBytes(error text))
	KindStallHint       // worker -> coordinator: the node's live ranks are all blocked; Seq = run generation
	kindEnd
)

// Valid reports whether k names a defined frame kind.
func (k Kind) Valid() bool { return k > KindInvalid && k < kindEnd }

// String names the kind for diagnostics.
func (k Kind) String() string {
	switch k {
	case KindHello:
		return "hello"
	case KindData:
		return "data"
	case KindDeliver:
		return "deliver"
	case KindBarrier:
		return "barrier"
	case KindReset:
		return "reset"
	case KindResetAck:
		return "reset-ack"
	case KindAbort:
		return "abort"
	case KindProbe:
		return "probe"
	case KindProbeAck:
		return "probe-ack"
	case KindShutdown:
		return "shutdown"
	case KindRunSpec:
		return "run-spec"
	case KindRunAck:
		return "run-ack"
	case KindRunStart:
		return "run-start"
	case KindRankResult:
		return "rank-result"
	case KindStallHint:
		return "stall-hint"
	}
	return fmt.Sprintf("wire.Kind(%d)", uint8(k))
}

// PackBytes packs b into the frame payload unit — float64 words holding
// the bytes little-endian, the final word zero-padded. The words are pure
// bit containers (never arithmetic operands), so the round trip through
// Float64bits is exact for any input. The byte length travels separately
// in a frame header field (see KindRunSpec/KindRankResult).
func PackBytes(b []byte) []float64 {
	words := make([]float64, (len(b)+7)/8)
	for i := range words {
		var chunk [8]byte
		copy(chunk[:], b[8*i:])
		words[i] = math.Float64frombits(binary.LittleEndian.Uint64(chunk[:]))
	}
	return words
}

// UnpackBytes recovers n bytes from the tail-aligned words produced by
// PackBytes. It errors rather than panics on an n the words cannot hold,
// since both travel over the wire and may disagree under corruption.
func UnpackBytes(words []float64, n int) ([]byte, error) {
	if n < 0 || (n+7)/8 > len(words) {
		return nil, fmt.Errorf("wire: %d bytes do not fit in %d payload words", n, len(words))
	}
	b := make([]byte, n)
	for i := 0; i < n; i += 8 {
		var chunk [8]byte
		binary.LittleEndian.PutUint64(chunk[:], math.Float64bits(words[i/8]))
		copy(b[i:], chunk[:])
	}
	return b, nil
}

const (
	// HeaderLen is the fixed frame body size before the payload: kind,
	// src, dst, tag, seq, a, b, arrival, plen.
	HeaderLen = 1 + 4 + 4 + 8 + 8 + 8 + 8 + 8 + 4
	// MaxPayloadWords bounds one frame's payload (128 MiB of float64s) —
	// the allocation guard a hostile length prefix is validated against
	// before any buffer is sized from it.
	MaxPayloadWords = 1 << 24
	// MaxBody is the largest legal frame body (everything after the
	// length prefix).
	MaxBody = HeaderLen + 8*MaxPayloadWords
)

// The structured decode errors. Every failure of DecodeFrame/ReadFrame on
// malformed bytes wraps exactly one of these (ReadFrame additionally
// passes through I/O errors from the underlying reader, including io.EOF
// on a clean close between frames).
var (
	// ErrTruncated reports input ending before the declared frame does,
	// or a body shorter than the fixed header.
	ErrTruncated = errors.New("wire: truncated frame")
	// ErrOversize reports a length prefix or payload count beyond MaxBody
	// / MaxPayloadWords.
	ErrOversize = errors.New("wire: frame exceeds maximum size")
	// ErrBadKind reports an undefined kind byte.
	ErrBadKind = errors.New("wire: invalid frame kind")
	// ErrLengthMismatch reports a length prefix that disagrees with the
	// payload count (the two encode the same fact; a consistent frame
	// must agree).
	ErrLengthMismatch = errors.New("wire: frame length disagrees with payload length")
)

// Frame is one decoded frame. Field meaning depends on Kind (see the kind
// constants); unused fields encode as zero and must decode as zero, which
// the canonical-bytes fuzz property enforces for free.
type Frame struct {
	Kind     Kind
	Src, Dst int32
	Tag      uint64
	Seq      uint64
	A, B     uint64
	Arrival  float64
	Payload  []float64
}

// EncodedLen returns the full encoded size of f, length prefix included.
func EncodedLen(f *Frame) int { return 4 + HeaderLen + 8*len(f.Payload) }

// AppendFrame appends f's canonical encoding (length prefix included) to
// dst and returns the extended slice. Payloads beyond MaxPayloadWords are
// a programming error and panic: the cap exists to bound what a decoder
// can be made to allocate, not to silently drop traffic.
func AppendFrame(dst []byte, f *Frame) []byte {
	if len(f.Payload) > MaxPayloadWords {
		panic(fmt.Sprintf("wire: payload of %d words exceeds MaxPayloadWords (%d)", len(f.Payload), MaxPayloadWords))
	}
	body := HeaderLen + 8*len(f.Payload)
	dst = binary.LittleEndian.AppendUint32(dst, uint32(body))
	dst = append(dst, byte(f.Kind))
	dst = binary.LittleEndian.AppendUint32(dst, uint32(f.Src))
	dst = binary.LittleEndian.AppendUint32(dst, uint32(f.Dst))
	dst = binary.LittleEndian.AppendUint64(dst, f.Tag)
	dst = binary.LittleEndian.AppendUint64(dst, f.Seq)
	dst = binary.LittleEndian.AppendUint64(dst, f.A)
	dst = binary.LittleEndian.AppendUint64(dst, f.B)
	dst = binary.LittleEndian.AppendUint64(dst, math.Float64bits(f.Arrival))
	dst = binary.LittleEndian.AppendUint32(dst, uint32(len(f.Payload)))
	for _, v := range f.Payload {
		dst = binary.LittleEndian.AppendUint64(dst, math.Float64bits(v))
	}
	return dst
}

// decodeBody decodes one frame body (the bytes after the length prefix)
// into f. The payload buffer comes from acquire (nil acquire allocates);
// acquire is only called after the payload count has been validated
// against both MaxPayloadWords and the actual body length.
func decodeBody(body []byte, f *Frame, acquire func(n int) []float64) error {
	if len(body) < HeaderLen {
		return fmt.Errorf("%w: body of %d bytes, header needs %d", ErrTruncated, len(body), HeaderLen)
	}
	k := Kind(body[0])
	if !k.Valid() {
		return fmt.Errorf("%w: %d", ErrBadKind, body[0])
	}
	plen := binary.LittleEndian.Uint32(body[49:53])
	if plen > MaxPayloadWords {
		return fmt.Errorf("%w: payload of %d words (max %d)", ErrOversize, plen, MaxPayloadWords)
	}
	if want := HeaderLen + 8*int(plen); len(body) != want {
		return fmt.Errorf("%w: body of %d bytes, %d payload words need %d", ErrLengthMismatch, len(body), plen, want)
	}
	f.Kind = k
	f.Src = int32(binary.LittleEndian.Uint32(body[1:5]))
	f.Dst = int32(binary.LittleEndian.Uint32(body[5:9]))
	f.Tag = binary.LittleEndian.Uint64(body[9:17])
	f.Seq = binary.LittleEndian.Uint64(body[17:25])
	f.A = binary.LittleEndian.Uint64(body[25:33])
	f.B = binary.LittleEndian.Uint64(body[33:41])
	f.Arrival = math.Float64frombits(binary.LittleEndian.Uint64(body[41:49]))
	if plen == 0 {
		f.Payload = nil
		return nil
	}
	var buf []float64
	if acquire != nil {
		buf = acquire(int(plen))
	} else {
		buf = make([]float64, plen)
	}
	for i := 0; i < int(plen); i++ {
		buf[i] = math.Float64frombits(binary.LittleEndian.Uint64(body[HeaderLen+8*i:]))
	}
	f.Payload = buf
	return nil
}

// DecodeFrame decodes one length-prefixed frame from the start of buf into
// f, returning the number of bytes consumed. Malformed input returns a
// structured error (see the sentinels above) and consumes nothing.
func DecodeFrame(buf []byte, f *Frame, acquire func(n int) []float64) (int, error) {
	if len(buf) < 4 {
		return 0, fmt.Errorf("%w: %d bytes, length prefix needs 4", ErrTruncated, len(buf))
	}
	n := binary.LittleEndian.Uint32(buf)
	if n > MaxBody {
		return 0, fmt.Errorf("%w: declared body of %d bytes (max %d)", ErrOversize, n, MaxBody)
	}
	if len(buf) < 4+int(n) {
		return 0, fmt.Errorf("%w: declared body of %d bytes, %d available", ErrTruncated, n, len(buf)-4)
	}
	if err := decodeBody(buf[4:4+int(n)], f, acquire); err != nil {
		return 0, err
	}
	return 4 + int(n), nil
}

// ReadFrame reads one frame from r into f. *scratch is the caller's reused
// body buffer (grown as needed, never shrunk); acquire supplies the
// payload buffer as in DecodeFrame. A clean close between frames returns
// io.EOF unwrapped; a close mid-frame returns an error wrapping
// ErrTruncated.
func ReadFrame(r io.Reader, f *Frame, scratch *[]byte, acquire func(n int) []float64) error {
	// The prefix is read through the scratch buffer rather than a local
	// array: a stack array passed through the io.Reader interface escapes
	// and would cost one heap allocation per frame.
	if cap(*scratch) < 4 {
		*scratch = make([]byte, 64)
	}
	prefix := (*scratch)[:4]
	if _, err := io.ReadFull(r, prefix); err != nil {
		if err == io.ErrUnexpectedEOF {
			return fmt.Errorf("%w: connection closed inside length prefix", ErrTruncated)
		}
		return err
	}
	n := binary.LittleEndian.Uint32(prefix)
	if n > MaxBody {
		return fmt.Errorf("%w: declared body of %d bytes (max %d)", ErrOversize, n, MaxBody)
	}
	if n < HeaderLen {
		return fmt.Errorf("%w: declared body of %d bytes, header needs %d", ErrTruncated, n, HeaderLen)
	}
	if cap(*scratch) < int(n) {
		*scratch = make([]byte, n)
	}
	body := (*scratch)[:n]
	if _, err := io.ReadFull(r, body); err != nil {
		if err == io.EOF || err == io.ErrUnexpectedEOF {
			return fmt.Errorf("%w: connection closed inside frame body", ErrTruncated)
		}
		return err
	}
	return decodeBody(body, f, acquire)
}

// WriteFrame encodes f into *scratch (reused across calls) and writes it
// to w in one call.
func WriteFrame(w io.Writer, scratch *[]byte, f *Frame) error {
	*scratch = AppendFrame((*scratch)[:0], f)
	_, err := w.Write(*scratch)
	return err
}
