// Package spline implements natural cubic spline fitting on uniform knots
// — one of the one-dimensional tensor product kernels the paper names in
// Section 3 ("other 'one-dimensional kernels' frequently needed are cubic
// spline fitting routines, Fast Fourier Transforms, and so forth") and one
// of the application areas its introduction motivates ("tensor product
// algorithms are widely used in spline fitting ...").
//
// Fitting reduces to a diagonally dominant tridiagonal solve for the knot
// second derivatives:
//
//	M[i-1] + 4·M[i] + M[i+1] = 6·(y[i-1] - 2·y[i] + y[i+1]) / h²
//
// with M[0] = M[n-1] = 0 (natural boundary conditions) — exactly the kernel
// the parallel substructured solver provides, so the parallel fit is the
// paper's Listing 4 applied to a different science.
package spline

import (
	"fmt"

	"repro/internal/darray"
	"repro/internal/dist"
	"repro/internal/kernels"
	"repro/internal/kf"
	"repro/internal/tridiag"
)

// Spline is a fitted natural cubic spline on uniform knots.
type Spline struct {
	// X0 is the first knot's abscissa and H the knot spacing.
	X0, H float64
	// Y holds the knot values and M the fitted second derivatives.
	Y, M []float64
}

// Fit fits a natural cubic spline through the values y at knots
// x0, x0+h, ..., sequentially (Thomas algorithm).
func Fit(x0, h float64, y []float64) *Spline {
	n := len(y)
	if n < 3 {
		panic(fmt.Sprintf("spline: need at least 3 knots, got %d", n))
	}
	b := make([]float64, n)
	a := make([]float64, n)
	c := make([]float64, n)
	f := make([]float64, n)
	buildSystem(h, y, b, a, c, f)
	m := make([]float64, n)
	kernels.Thomas(nil, b, a, c, f, m)
	return &Spline{X0: x0, H: h, Y: append([]float64(nil), y...), M: m}
}

// buildSystem fills the tridiagonal fitting system with identity rows at
// the ends (natural boundary conditions M=0).
func buildSystem(h float64, y, b, a, c, f []float64) {
	n := len(y)
	for i := 1; i < n-1; i++ {
		b[i], a[i], c[i] = 1, 4, 1
		f[i] = 6 * (y[i-1] - 2*y[i] + y[i+1]) / (h * h)
	}
	b[0], a[0], c[0], f[0] = 0, 1, 0, 0
	b[n-1], a[n-1], c[n-1], f[n-1] = 0, 1, 0, 0
}

// FitParallel fits the spline with the knot values distributed by blocks
// over the subroutine's grid, using the parallel substructured tridiagonal
// solver for the second-derivative system. Every processor of c.G must
// call it; the fitted spline is gathered and returned on every processor.
func FitParallel(c *kf.Ctx, x0, h float64, y *darray.Array) (*Spline, error) {
	n := y.Extent(0)
	if n < 3 {
		return nil, fmt.Errorf("spline: need at least 3 knots, got %d", n)
	}
	// Right-hand side needs neighbor knot values: one halo exchange.
	y.ExchangeHalo(c.NextScope())
	rhs := c.NewArray(darray.Spec{Extents: []int{n}, Dists: []dist.Dist{dist.Block{}}})
	for i := rhs.Lower(0); i <= rhs.Upper(0); i++ {
		if i == 0 || i == n-1 {
			rhs.Set1(i, 0)
			continue
		}
		rhs.Set1(i, 6*(y.At1(i-1)-2*y.At1(i)+y.At1(i+1))/(h*h))
	}
	c.P.Compute(5 * rhs.LocalSize(0))
	msec := c.NewArray(darray.Spec{Extents: []int{n}, Dists: []dist.Dist{dist.Block{}}})
	if err := tridiag.TriCDirichletOn(c.P, c.G, c.NextScope(), msec, rhs, 1, 4, 1); err != nil {
		return nil, err
	}
	// Assemble the spline everywhere (fits are small relative to the
	// solve; a production variant would keep M distributed).
	sc := c.NextScope()
	mFlat := msec.GatherTo(sc, 0)
	yFlat := y.GatherTo(c.NextScope(), 0)
	out := &Spline{X0: x0, H: h}
	if c.GridIndex() == 0 {
		out.M = mFlat
		out.Y = yFlat
	}
	return out, nil
}

// Eval evaluates the spline at x (clamped to the knot range).
func (s *Spline) Eval(x float64) float64 {
	n := len(s.Y)
	t := (x - s.X0) / s.H
	i := int(t)
	if i < 0 {
		i = 0
	}
	if i > n-2 {
		i = n - 2
	}
	// Local coordinate within [x_i, x_i+1].
	u := t - float64(i)
	h2 := s.H * s.H
	// Standard cubic segment in terms of the second derivatives.
	a := s.Y[i]
	b := s.Y[i+1] - s.Y[i] - h2*(2*s.M[i]+s.M[i+1])/6
	cc := h2 * s.M[i] / 2
	d := h2 * (s.M[i+1] - s.M[i]) / 6
	return a + u*(b+u*(cc+u*d))
}

// MaxKnotResidual returns the largest violation of the fitting equations —
// a fit-quality diagnostic used by the tests.
func (s *Spline) MaxKnotResidual() float64 {
	n := len(s.Y)
	worst := 0.0
	for i := 1; i < n-1; i++ {
		lhs := s.M[i-1] + 4*s.M[i] + s.M[i+1]
		rhs := 6 * (s.Y[i-1] - 2*s.Y[i] + s.Y[i+1]) / (s.H * s.H)
		if d := abs(lhs - rhs); d > worst {
			worst = d
		}
	}
	return worst
}

func abs(x float64) float64 {
	if x < 0 {
		return -x
	}
	return x
}
