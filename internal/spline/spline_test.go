package spline

import (
	"math"
	"testing"
	"testing/quick"

	"repro/internal/darray"
	"repro/internal/dist"
	"repro/internal/kf"
	"repro/internal/machine"
	"repro/internal/topology"
)

func TestInterpolatesKnotsExactly(t *testing.T) {
	y := []float64{1, -2, 3, 0.5, 4, -1, 2}
	s := Fit(0, 0.5, y)
	for i, v := range y {
		x := 0.5 * float64(i)
		if d := math.Abs(s.Eval(x) - v); d > 1e-12 {
			t.Errorf("knot %d: eval %v, want %v", i, s.Eval(x), v)
		}
	}
}

func TestReproducesLinearFunctions(t *testing.T) {
	const n = 12
	y := make([]float64, n)
	for i := range y {
		y[i] = 3*float64(i)*0.25 - 7
	}
	s := Fit(0, 0.25, y)
	for x := 0.0; x <= 0.25*float64(n-1); x += 0.01 {
		want := 3*x - 7
		if d := math.Abs(s.Eval(x) - want); d > 1e-10 {
			t.Fatalf("x=%v: eval %v, want %v", x, s.Eval(x), want)
		}
	}
}

func TestApproximatesSmoothFunction(t *testing.T) {
	const n = 64
	h := math.Pi / float64(n-1)
	y := make([]float64, n)
	for i := range y {
		y[i] = math.Sin(h * float64(i))
	}
	s := Fit(0, h, y)
	worst := 0.0
	for x := 0.3; x < math.Pi-0.3; x += 0.01 {
		if d := math.Abs(s.Eval(x) - math.Sin(x)); d > worst {
			worst = d
		}
	}
	// Natural cubic spline error away from the ends is O(h^4).
	if worst > 1e-5 {
		t.Errorf("interior error %v", worst)
	}
}

func TestKnotResidualSmall(t *testing.T) {
	f := func(seed int64) bool {
		n := 16
		y := make([]float64, n)
		s := uint64(seed)
		for i := range y {
			s = s*2654435761 + 12345
			y[i] = float64(s%1000)/100 - 5
		}
		sp := Fit(0, 1, y)
		return sp.MaxKnotResidual() < 1e-9
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 50}); err != nil {
		t.Fatal(err)
	}
}

func TestParallelMatchesSequential(t *testing.T) {
	const n = 64
	h := 1.0 / float64(n-1)
	y := make([]float64, n)
	for i := range y {
		x := h * float64(i)
		y[i] = math.Exp(-x) * math.Cos(6*x)
	}
	want := Fit(0, h, y)
	for _, p := range []int{2, 4, 8} {
		m := machine.New(p, machine.ZeroComm())
		g := topology.New1D(p)
		var got *Spline
		err := kf.Exec(m, g, func(c *kf.Ctx) error {
			yd := c.NewArray(darray.Spec{
				Extents: []int{n},
				Dists:   []dist.Dist{dist.Block{}},
				Halo:    []int{1},
			})
			yd.Fill(func(idx []int) float64 { return y[idx[0]] })
			s, err := FitParallel(c, 0, h, yd)
			if err != nil {
				return err
			}
			if c.GridIndex() == 0 {
				got = s
			}
			return nil
		})
		if err != nil {
			t.Fatalf("p=%d: %v", p, err)
		}
		for i := range want.M {
			if d := math.Abs(got.M[i] - want.M[i]); d > 1e-9 {
				t.Errorf("p=%d: M[%d] differs by %v", p, i, d)
			}
		}
	}
}

func TestFitPanicsOnTinyInput(t *testing.T) {
	defer func() {
		if recover() == nil {
			t.Fatal("2-knot fit did not panic")
		}
	}()
	Fit(0, 1, []float64{1, 2})
}
