// Package darray implements KF1's distributed arrays: multidimensional
// arrays whose dimensions are mapped onto a processor grid by per-dimension
// distribution patterns (block, cyclic, "*"), exactly as declared by the
// paper's dist clauses, e.g.
//
//	real u(0:nx, 0:ny, 0:nz) dist (*, block, block)
//
// becomes
//
//	u := darray.New(p, grid, darray.Spec{
//		Extents: []int{nx + 1, ny + 1, nz + 1},
//		Dists:   []dist.Dist{dist.Star{}, dist.Block{}, dist.Block{}},
//		Halo:    []int{0, 1, 1},
//	})
//
// Arrays are SPMD values: every processor constructs its own descriptor (the
// same way a compiled KF1 program would materialize one per node) holding
// only that processor's local block, padded with halo (ghost) cells for
// block-distributed dimensions. Remote values move only through explicit
// collectives (ExchangeHalo, GatherTo, Redistribute, ...), each of which is
// built on simulated message passing and therefore fully accounted in
// virtual time.
//
// Sections of an array — the paper's u(*, *, k) — are taken with Section,
// which fixes one dimension and binds the result to the matching slice of
// the processor grid; sections of sections compose, which is what lets the
// 3-D multigrid solver hand planes to the 2-D solver and the 2-D solver hand
// lines to a sequential kernel.
package darray

import (
	"fmt"

	"repro/internal/dist"
	"repro/internal/machine"
	"repro/internal/sched"
	"repro/internal/topology"
)

// Spec declares a distributed array: global extents, one distribution per
// dimension, and optional halo (ghost-cell) widths for block-distributed
// dimensions.
type Spec struct {
	// Extents are the global array extents per dimension.
	Extents []int
	// Dists give the distribution pattern per dimension. The number of
	// non-Star entries must equal the grid's dimensionality, unless every
	// entry is Star (a replicated array, legal on any grid).
	Dists []dist.Dist
	// Halo gives the ghost-cell width per dimension (nil means zero).
	// Halo is only meaningful on Block dimensions.
	Halo []int
}

// store holds the per-processor storage and layout of a root array.
type store struct {
	p        *machine.Proc
	rootGrid *topology.Grid
	extents  []int
	dists    []dist.Dist
	halo     []int
	axisOf   []int // store dim -> root grid axis, -1 for Star dims
	member   bool
	coord    []int // p's coordinate in rootGrid (nil if not a member)

	// Local block layout (valid only when member):
	lsize  []int // owned extent per dim
	lower  []int // first owned global index per dim (Block); 0 for Star
	pad    []int // lsize + 2*halo
	stride []int // row-major strides over pad
	data   []float64
	shadow []float64 // copy-in snapshot buffer, kept across snapshots
	snapOn bool      // whether a snapshot is currently active

	// Reusable per-store scratch for the halo-exchange hot path, so a
	// steady-state exchange performs no heap allocation. A store is
	// private to one simulated processor, so the scratch needs no lock.
	coordBuf          []int      // rankAlongAxis coordinate scratch
	runsBuf           []ghostRun // ghostRuns result scratch
	itLo, itHi, itIdx []int      // plane pack/unpack odometer scratch
}

// Array is a distributed array or a section of one. The zero value is not
// useful; construct root arrays with New and sections with Section.
//
// An Array is an immutable view private to one simulated processor; the
// caches below memoize derived views and compiled communication schedules
// so iterative programs pay for derivation once, not per loop pass.
type Array struct {
	st   *store
	grid *topology.Grid // grid of this array/section
	dims []int          // array dim -> store dim
	pfix []int          // per store dim: fixed global index, or -1 if free
	axes []int          // root-grid axes remaining in grid, in order

	// View cache, filled by finishView: Arrays are immutable views, so
	// participation and the per-free-dimension index arithmetic are
	// computed once at construction instead of on every element access.
	participates bool
	fixedOff     int          // data offset contributed by the fixed dims
	acc          []axisAccess // one entry per free dimension, in order

	// Inline backing for the small per-view slices: with at most
	// maxInlineDims store dimensions a Section costs one allocation (the
	// Array itself) instead of one per slice.
	pfixBuf [maxInlineDims]int
	axesBuf [maxInlineDims]int
	accBuf  [maxInlineDims]axisAccess

	// Per-view memoization (no locks needed: a view belongs to one
	// simulated processor's goroutine):
	secs        map[sectionKey]*Array   // Section views by (dim, index)
	haloScheds  map[int]*sched.Schedule // compiled halo exchanges by dims key
	gatherPlans map[int]*gatherPlan     // compiled gathers by root index
	sig         string                  // memoized layout signature (see layoutSig)

	// Owned-walk scratch, bound on first use (to the inline buffers below
	// when the dimensionality fits) and reused by every subsequent
	// OwnedEach/OwnedRuns/FillOwned on this view. A walk's visitor must
	// not start another owned walk on the same view.
	walkIdx, walkLoc       []int
	walkIdxBuf, walkLocBuf [maxInlineDims]int

	// secArena chunk-allocates the Array structs of this view's sections
	// (several sections per heap allocation). Chunks are never grown in
	// place — cached section pointers must stay valid — so a full chunk
	// is simply replaced by a fresh one.
	secArena []Array
}

// secChunk is how many section views one arena chunk holds.
const secChunk = 8

// bindWalkScratch points the owned-walk scratch at the inline buffers (or
// heap slices for high-dimensional views); called on a view's first walk.
func (a *Array) bindWalkScratch(nfree int) {
	if nfree <= maxInlineDims {
		a.walkIdx = a.walkIdxBuf[:nfree]
		a.walkLoc = a.walkLocBuf[:nfree]
	} else {
		a.walkIdx = make([]int, nfree)
		a.walkLoc = make([]int, nfree)
	}
}

// newSection carves one Array out of the view's section arena.
func (a *Array) newSection() *Array {
	if len(a.secArena) == cap(a.secArena) {
		a.secArena = make([]Array, 0, secChunk)
	}
	a.secArena = a.secArena[:len(a.secArena)+1]
	return &a.secArena[len(a.secArena)-1]
}

// maxInlineDims bounds the dimensionality served by the inline view
// buffers; larger arrays fall back to heap slices.
const maxInlineDims = 4

// sectionKey indexes the Section cache: the fixed dimension and its index.
type sectionKey struct{ d, i int }

// Access classification of one free dimension.
const (
	axStar    uint8 = iota // replicated: local index == global index
	axContig               // contiguous ownership with halo window
	axGeneral              // anything else: ask the distribution
)

// axisAccess caches everything needed to turn one global index into a
// local storage offset without interface calls or slice walks.
type axisAccess struct {
	kind   uint8
	sd     int // store dimension
	stride int
	halo   int
	extent int
	lower  int // first owned global index (axContig)
	lsize  int // owned extent
	d      dist.Dist
	q, P   int // grid coordinate and axis length (axGeneral)
}

// finishView fills the view cache; every constructor of an Array must call
// it last.
func (a *Array) finishView() {
	st := a.st
	a.participates = a.computeParticipates()
	a.fixedOff = 0
	a.acc = nil
	if !a.participates {
		return
	}
	nfree := 0
	for _, f := range a.pfix {
		if f < 0 {
			nfree++
		}
	}
	if nfree <= maxInlineDims {
		a.acc = a.accBuf[:0]
	} else {
		a.acc = make([]axisAccess, 0, nfree)
	}
	for sd, f := range a.pfix {
		if f >= 0 {
			a.fixedOff += st.localPos(sd, f) * st.stride[sd]
			continue
		}
		ax := axisAccess{
			sd:     sd,
			stride: st.stride[sd],
			halo:   st.halo[sd],
			extent: st.extents[sd],
			lsize:  st.lsize[sd],
		}
		switch {
		case st.axisOf[sd] < 0:
			ax.kind = axStar
		default:
			if _, ok := st.dists[sd].(dist.Contiguous); ok {
				ax.kind = axContig
				ax.lower = st.lower[sd]
			} else {
				ax.kind = axGeneral
				ax.d = st.dists[sd]
				ax.q = st.coord[st.axisOf[sd]]
				ax.P = st.rootGrid.Extent(st.axisOf[sd])
			}
		}
		a.acc = append(a.acc, ax)
	}
}

// globalOf returns the global index of the l-th owned element along this
// free dimension.
func (ax *axisAccess) globalOf(l int) int {
	switch ax.kind {
	case axStar:
		return l
	case axContig:
		return ax.lower + l
	default:
		return ax.d.ToGlobal(l, ax.q, ax.extent, ax.P)
	}
}

// roff returns the storage offset contribution of global index g along free
// dimension k for a read: owned cells and halo cells are legal.
func (a *Array) roff(k, g int) int {
	ax := &a.acc[k]
	if g < 0 || g >= ax.extent {
		panic(fmt.Sprintf("darray: index %d out of extent %d (dim %d)", g, ax.extent, ax.sd))
	}
	switch ax.kind {
	case axStar:
		return g * ax.stride
	case axContig:
		l := g - ax.lower
		if l < -ax.halo || l >= ax.lsize+ax.halo {
			panic(fmt.Sprintf("darray: proc %d cannot access global index %d of dim %d (owns [%d,%d], halo %d)",
				a.st.p.Rank(), g, ax.sd, ax.lower, ax.lower+ax.lsize-1, ax.halo))
		}
		return (l + ax.halo) * ax.stride
	default:
		if ax.d.Owner(g, ax.extent, ax.P) != ax.q {
			panic(fmt.Sprintf("darray: proc %d does not own global index %d of %s dim %d",
				a.st.p.Rank(), g, ax.d.Name(), ax.sd))
		}
		return (ax.d.ToLocal(g, ax.extent, ax.P) + ax.halo) * ax.stride
	}
}

// woff is roff for writes: only owned cells are legal (ghost values are
// read-only copies).
func (a *Array) woff(k, g int) int {
	ax := &a.acc[k]
	if ax.kind == axContig {
		l := g - ax.lower
		if g < 0 || g >= ax.extent || l < 0 || l >= ax.lsize {
			panic(fmt.Sprintf("darray: proc %d writing unowned index %d of dim %d", a.st.p.Rank(), g, ax.sd))
		}
		return (l + ax.halo) * ax.stride
	}
	return a.roff(k, g)
}

// New constructs a distributed array on grid g from the calling processor's
// point of view. Every processor of the machine may call New (processors
// outside g get an inert descriptor whose element accessors panic), and all
// processors inside g must construct identical specs.
func New(p *machine.Proc, g *topology.Grid, spec Spec) *Array {
	nd := len(spec.Extents)
	if nd == 0 || nd != len(spec.Dists) {
		panic(fmt.Sprintf("darray: bad spec: %d extents, %d dists", nd, len(spec.Dists)))
	}
	halo := spec.Halo
	if halo == nil {
		halo = make([]int, nd)
	}
	if len(halo) != nd {
		panic(fmt.Sprintf("darray: halo has %d entries for %d dims", len(halo), nd))
	}
	// One backing array for the store's three per-dimension int slices.
	hdr := make([]int, 3*nd)
	st := &store{
		p:        p,
		rootGrid: g,
		extents:  hdr[0*nd : 1*nd : 1*nd],
		dists:    append([]dist.Dist(nil), spec.Dists...),
		halo:     hdr[1*nd : 2*nd : 2*nd],
		axisOf:   hdr[2*nd : 3*nd : 3*nd],
	}
	copy(st.extents, spec.Extents)
	copy(st.halo, halo)
	axis := 0
	for d := 0; d < nd; d++ {
		if spec.Extents[d] <= 0 {
			panic(fmt.Sprintf("darray: extent %d of dim %d", spec.Extents[d], d))
		}
		if _, isStar := spec.Dists[d].(dist.Star); isStar {
			st.axisOf[d] = -1
			continue
		}
		if axis >= g.Dims() {
			panic(fmt.Sprintf("darray: more distributed dims than grid dims (%d)", g.Dims()))
		}
		st.axisOf[d] = axis
		axis++
	}
	if axis != 0 && axis != g.Dims() {
		panic(fmt.Sprintf("darray: %d distributed dims must match grid dims %d (or be zero for a replicated array)", axis, g.Dims()))
	}
	for d := 0; d < nd; d++ {
		if halo[d] != 0 {
			if _, isContig := spec.Dists[d].(dist.Contiguous); !isContig {
				panic(fmt.Sprintf("darray: halo on non-contiguous dim %d (%s)", d, spec.Dists[d].Name()))
			}
		}
	}
	coord, member := g.CoordOf(p.Rank())
	st.member = member
	st.coord = coord
	if member {
		st.allocate()
	}
	a := &Array{st: st, grid: g}
	a.dims = make([]int, nd)
	if nd <= maxInlineDims {
		a.pfix = a.pfixBuf[:nd]
	} else {
		a.pfix = make([]int, nd)
	}
	for d := range a.dims {
		a.dims[d] = d
		a.pfix[d] = -1
	}
	if g.Dims() <= maxInlineDims {
		a.axes = a.axesBuf[:g.Dims()]
	} else {
		a.axes = make([]int, g.Dims())
	}
	for i := range a.axes {
		a.axes[i] = i
	}
	a.finishView()
	return a
}

// allocate computes the local block layout and allocates storage. The
// seven per-dimension layout/scratch slices share one backing array.
func (st *store) allocate() {
	nd := len(st.extents)
	lay := make([]int, 7*nd+len(st.coord))
	st.lsize = lay[0*nd : 1*nd : 1*nd]
	st.lower = lay[1*nd : 2*nd : 2*nd]
	st.pad = lay[2*nd : 3*nd : 3*nd]
	st.stride = lay[3*nd : 4*nd : 4*nd]
	st.itLo = lay[4*nd : 5*nd : 5*nd]
	st.itHi = lay[5*nd : 6*nd : 6*nd]
	st.itIdx = lay[6*nd : 7*nd : 7*nd]
	st.coordBuf = lay[7*nd:]
	total := 1
	for d := 0; d < nd; d++ {
		n := st.extents[d]
		if st.axisOf[d] < 0 {
			st.lsize[d] = n
			st.lower[d] = 0
		} else {
			q := st.coord[st.axisOf[d]]
			P := st.rootGrid.Extent(st.axisOf[d])
			st.lsize[d] = st.dists[d].Size(q, n, P)
			if b, ok := st.dists[d].(dist.Contiguous); ok {
				st.lower[d] = b.Lower(q, n, P)
			}
		}
		st.pad[d] = st.lsize[d] + 2*st.halo[d]
		total *= st.pad[d]
	}
	stride := 1
	for d := nd - 1; d >= 0; d-- {
		st.stride[d] = stride
		stride *= st.pad[d]
	}
	st.data = make([]float64, total)
}

// Dims returns the number of (free) dimensions of the array or section.
func (a *Array) Dims() int {
	n := 0
	for _, f := range a.pfix {
		if f < 0 {
			n++
		}
	}
	return n
}

// Extent returns the global extent of free dimension d.
func (a *Array) Extent(d int) int { return a.st.extents[a.storeDim(d)] }

// Dist returns the distribution of free dimension d.
func (a *Array) Dist(d int) dist.Dist { return a.st.dists[a.storeDim(d)] }

// Grid returns the processor grid the array (or section) lives on.
func (a *Array) Grid() *topology.Grid { return a.grid }

// Proc returns the processor this descriptor belongs to.
func (a *Array) Proc() *machine.Proc { return a.st.p }

// Participates reports whether the calling processor holds a piece of this
// array (or section): it is a member of the array's grid and, for a section,
// owns the fixed indices. The answer is precomputed at construction.
func (a *Array) Participates() bool { return a.participates }

func (a *Array) computeParticipates() bool {
	if !a.st.member {
		return false
	}
	for sd, f := range a.pfix {
		if f < 0 {
			continue
		}
		if !a.st.ownsStoreIndex(sd, f) {
			return false
		}
	}
	return true
}

// ownsStoreIndex reports whether the calling processor owns global index i
// of store dim sd (Star dims are owned by everyone).
func (st *store) ownsStoreIndex(sd, i int) bool {
	if st.axisOf[sd] < 0 {
		return true
	}
	q := st.coord[st.axisOf[sd]]
	P := st.rootGrid.Extent(st.axisOf[sd])
	return st.dists[sd].Owner(i, st.extents[sd], P) == q
}

// storeDim maps a free (view) dimension index to the underlying store dim.
func (a *Array) storeDim(d int) int {
	seen := 0
	for sd, f := range a.pfix {
		if f < 0 {
			if seen == d {
				return sd
			}
			seen++
		}
	}
	panic(fmt.Sprintf("darray: dimension %d out of %d", d, seen))
}

// Lower returns the first global index of free dimension d owned by the
// calling processor — the paper's lower intrinsic. For Star dimensions it
// returns 0. Only meaningful for Block and Star distributions.
func (a *Array) Lower(d int) int {
	a.mustParticipate()
	return a.st.lower[a.storeDim(d)]
}

// Upper returns the last global index of free dimension d owned by the
// calling processor — the paper's upper intrinsic. For Star dimensions it
// returns the extent minus one. When the processor owns no elements,
// Upper(d) == Lower(d)-1.
func (a *Array) Upper(d int) int {
	a.mustParticipate()
	sd := a.storeDim(d)
	return a.st.lower[sd] + a.st.lsize[sd] - 1
}

// LocalSize returns the number of elements of free dimension d owned by the
// calling processor.
func (a *Array) LocalSize(d int) int {
	a.mustParticipate()
	return a.st.lsize[a.storeDim(d)]
}

// OwnerIndex returns, for free dimension d, the grid coordinate (along the
// dimension's grid axis) of the processor owning global index i. It panics
// for Star dimensions, which have no owner.
func (a *Array) OwnerIndex(d, i int) int {
	sd := a.storeDim(d)
	ax := a.st.axisOf[sd]
	if ax < 0 {
		panic("darray: OwnerIndex on an undistributed (*) dimension")
	}
	return a.st.dists[sd].Owner(i, a.st.extents[sd], a.st.rootGrid.Extent(ax))
}

// Owns reports whether the calling processor owns the element at the given
// global index (of the free dimensions).
func (a *Array) Owns(idx ...int) bool {
	if !a.Participates() {
		return false
	}
	if len(idx) != a.Dims() {
		panic(fmt.Sprintf("darray: Owns got %d indices for %d dims", len(idx), a.Dims()))
	}
	k := 0
	for sd, f := range a.pfix {
		if f >= 0 {
			continue
		}
		if idx[k] < 0 || idx[k] >= a.st.extents[sd] {
			return false // out-of-extent indices are owned by nobody
		}
		if !a.st.ownsStoreIndex(sd, idx[k]) {
			return false
		}
		k++
	}
	return true
}

func (a *Array) mustParticipate() {
	if !a.Participates() {
		panic("darray: processor does not participate in this array/section")
	}
}

// offset computes the position in st.data of the element at the given
// global index of the free dims, allowing halo offsets of up to halo[d] on
// block dims. It panics when the element is neither owned nor in the halo.
func (a *Array) offset(idx []int) int {
	st := a.st
	off := 0
	k := 0
	for sd, f := range a.pfix {
		g := f
		if f < 0 {
			g = idx[k]
			k++
		}
		if g < 0 || g >= st.extents[sd] {
			panic(fmt.Sprintf("darray: index %d out of extent %d (dim %d)", g, st.extents[sd], sd))
		}
		var l int
		if st.axisOf[sd] < 0 {
			l = g
		} else if _, isContig := st.dists[sd].(dist.Contiguous); isContig {
			l = g - st.lower[sd]
			if l < -st.halo[sd] || l >= st.lsize[sd]+st.halo[sd] {
				panic(fmt.Sprintf("darray: proc %d cannot access global index %d of dim %d (owns [%d,%d], halo %d)",
					st.p.Rank(), g, sd, st.lower[sd], st.lower[sd]+st.lsize[sd]-1, st.halo[sd]))
			}
		} else {
			q := st.coord[st.axisOf[sd]]
			P := st.rootGrid.Extent(st.axisOf[sd])
			if st.dists[sd].Owner(g, st.extents[sd], P) != q {
				panic(fmt.Sprintf("darray: proc %d does not own global index %d of %s dim %d",
					st.p.Rank(), g, st.dists[sd].Name(), sd))
			}
			l = st.dists[sd].ToLocal(g, st.extents[sd], P)
		}
		off += (l + st.halo[sd]) * st.stride[sd]
	}
	return off
}

// At returns the element at the given global index. The element must be
// owned by the calling processor or lie within its halo region (after an
// ExchangeHalo that covered it).
func (a *Array) At(idx ...int) float64 {
	a.mustParticipate()
	return a.st.data[a.offset(idx)]
}

// Set stores v at the given global index, which must be owned by the
// calling processor (writes into halo cells are rejected: ghost values are
// read-only copies).
func (a *Array) Set(v float64, idx ...int) {
	a.mustParticipate()
	st := a.st
	k := 0
	for sd, f := range a.pfix {
		g := f
		if f < 0 {
			g = idx[k]
			k++
		}
		if !st.ownsStoreIndex(sd, g) {
			panic(fmt.Sprintf("darray: proc %d writing unowned index %d of dim %d", st.p.Rank(), g, sd))
		}
	}
	st.data[a.offset(idx)] = v
}

// At1, At2, At3 are arity-specific fast paths for At: they compute the
// storage offset from the cached per-dimension access data, with no
// variadic slice and no per-access scan of the section's fixed dims.
func (a *Array) At1(i int) float64 {
	if len(a.acc) == 1 {
		return a.st.data[a.fixedOff+a.roff(0, i)]
	}
	return a.At(i)
}

func (a *Array) At2(i, j int) float64 {
	if len(a.acc) == 2 {
		return a.st.data[a.fixedOff+a.roff(0, i)+a.roff(1, j)]
	}
	return a.At(i, j)
}

func (a *Array) At3(i, j, k int) float64 {
	if len(a.acc) == 3 {
		return a.st.data[a.fixedOff+a.roff(0, i)+a.roff(1, j)+a.roff(2, k)]
	}
	return a.At(i, j, k)
}

// Set1, Set2, Set3 are arity-specific fast paths for Set.
func (a *Array) Set1(i int, v float64) {
	if len(a.acc) == 1 {
		a.st.data[a.fixedOff+a.woff(0, i)] = v
		return
	}
	a.Set(v, i)
}

func (a *Array) Set2(i, j int, v float64) {
	if len(a.acc) == 2 {
		a.st.data[a.fixedOff+a.woff(0, i)+a.woff(1, j)] = v
		return
	}
	a.Set(v, i, j)
}

func (a *Array) Set3(i, j, k int, v float64) {
	if len(a.acc) == 3 {
		a.st.data[a.fixedOff+a.woff(0, i)+a.woff(1, j)+a.woff(2, k)] = v
		return
	}
	a.Set(v, i, j, k)
}

// Section fixes free dimension d at global index i, returning a lower
// dimensional section of the array — the paper's u(*, *, k) notation. If
// dimension d is distributed, the section's grid is the slice of the
// current grid through the owner of i, and only processors on that slice
// participate. The section shares storage with its parent.
//
// Sections are memoized: repeated Section(d, i) calls return the same view,
// so a section's compiled communication schedules survive across loop
// iterations and a steady-state Section call allocates nothing.
func (a *Array) Section(d, i int) *Array {
	sd := a.storeDim(d)
	a.checkSectionIndex(sd, i)
	key := sectionKey{d: sd, i: i}
	if sec, ok := a.secs[key]; ok {
		return sec
	}
	sec := a.buildSection(sd, i, true)
	if a.secs == nil {
		a.secs = make(map[sectionKey]*Array, 2*secChunk)
	}
	a.secs[key] = sec
	return sec
}

func (a *Array) checkSectionIndex(sd, i int) {
	if i < 0 || i >= a.st.extents[sd] {
		panic(fmt.Sprintf("darray: section index %d out of extent %d", i, a.st.extents[sd]))
	}
}

// SectionGrid returns Section(d, i).Grid() without memoizing a section
// view: the grid itself comes from the bounded per-processor grid-slice
// cache, but the throwaway view is garbage-collected. Per-iteration
// on-clause resolution uses this so a loop over n indices does not retain
// O(n) views.
func (a *Array) SectionGrid(d, i int) *topology.Grid {
	sd := a.storeDim(d)
	a.checkSectionIndex(sd, i)
	return a.buildSection(sd, i, false).grid
}

// OwnerGrid returns the iteration grid of the element (or leading-index
// section chain) at idx — Section(0, idx[0]).Section(0, idx[1])...Grid()
// — again without memoizing any intermediate view.
func (a *Array) OwnerGrid(idx ...int) *topology.Grid {
	sec := a
	for _, i := range idx {
		sd := sec.storeDim(0)
		sec.checkSectionIndex(sd, i)
		sec = sec.buildSection(sd, i, false)
	}
	return sec.grid
}

// buildSection constructs the section view fixing store dim sd at i.
// Cached views are carved from the parent's arena; uncached ones are
// standalone allocations the collector reclaims.
func (a *Array) buildSection(sd, i int, cached bool) *Array {
	var sec *Array
	if cached {
		sec = a.newSection()
	} else {
		sec = &Array{}
	}
	sec.st = a.st
	sec.grid = a.grid
	sec.dims = a.dims
	sec.axes = a.axes
	if nd := len(a.pfix); nd <= maxInlineDims {
		sec.pfix = sec.pfixBuf[:nd]
	} else {
		sec.pfix = make([]int, nd)
	}
	copy(sec.pfix, a.pfix)
	sec.pfix[sd] = i
	ax := a.st.axisOf[sd]
	if ax >= 0 {
		// Slice the current grid through the owner of i along ax.
		pos := -1
		for k, rootAx := range a.axes {
			if rootAx == ax {
				pos = k
				break
			}
		}
		if pos < 0 {
			panic("darray: internal error: sectioned axis not in current grid")
		}
		owner := a.st.dists[sd].Owner(i, a.st.extents[sd], a.st.rootGrid.Extent(ax))
		var newAxes []int
		if len(a.axes)-1 <= maxInlineDims {
			newAxes = sec.axesBuf[:0]
		} else {
			newAxes = make([]int, 0, len(a.axes)-1)
		}
		for k := range a.axes {
			if k != pos {
				newAxes = append(newAxes, a.axes[k])
			}
		}
		sec.grid = a.gridSliceThrough(pos, owner)
		sec.axes = newAxes
	}
	sec.finishView()
	return sec
}

// gridSliceKey identifies a grid slice in the per-processor cache: the
// parent grid, the sliced dimension position, and the fixed coordinate.
type gridSliceKey struct {
	g          *topology.Grid
	pos, owner int
}

// gridSliceCacheKey is this package's Proc.Scratch registration key.
type gridSliceCacheKey struct{}

// gridSliceThrough returns the slice of the view's grid with the dimension
// at position pos fixed at coordinate owner, memoized per processor and
// parent grid: every section through the same owner — of any array on that
// grid — shares one grid object, so sectioning a dimension of extent n
// costs O(owners), not O(n · arrays), grid constructions.
func (a *Array) gridSliceThrough(pos, owner int) *topology.Grid {
	cache := a.st.p.Scratch(gridSliceCacheKey{}, func() any {
		return make(map[gridSliceKey]*topology.Grid)
	}).(map[gridSliceKey]*topology.Grid)
	key := gridSliceKey{g: a.grid, pos: pos, owner: owner}
	if g, ok := cache[key]; ok {
		return g
	}
	var specBuf [maxInlineDims]int
	var spec []int
	if gd := a.grid.Dims(); gd <= maxInlineDims {
		spec = specBuf[:gd]
	} else {
		spec = make([]int, gd)
	}
	for k := range spec {
		if k == pos {
			spec[k] = owner
		} else {
			spec[k] = topology.All
		}
	}
	g := a.grid.Slice(spec...)
	cache[key] = g
	return g
}

// String describes the array for diagnostics.
func (a *Array) String() string {
	s := "darray("
	for d := 0; d < a.Dims(); d++ {
		if d > 0 {
			s += ", "
		}
		s += fmt.Sprintf("%d:%s", a.Extent(d), a.Dist(d).Name())
	}
	return s + ") on " + a.grid.String()
}
