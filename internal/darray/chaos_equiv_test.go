package darray

import (
	"fmt"
	"testing"

	"repro/internal/chaos"
	"repro/internal/machine"
	"repro/internal/topology"
)

// Fault-injection face of the schedule-equivalence suite: the same randomized
// scenarios as fuzz_equiv_test.go, run on a chaos-wrapped transport with
// seeded drop/duplicate/delay rates. Two invariants per case:
//
//  1. Values are bit-identical to the fault-free run — retransmission and
//     duplicate absorption restore exactly the message streams the program
//     means, so faults may only cost virtual time.
//  2. Schedule replay stays bit-identical to direct derivation (values,
//     stats, clocks) under faults. The chaos layer draws from per-pair
//     streams in sender program order, so if replay reordered or renamed any
//     message the fault pattern itself would diverge and amplify the
//     difference — faults make this equivalence strictly harder, not softer.

// chaosScenario is the fixed fault mix each fuzz case runs under; rates are
// high enough to fault most cases but far from exhausting the default retry
// budget (eight consecutive losses at 8% is a ~1e-10 event per message).
func chaosScenario(seed int64) chaos.Scenario {
	return chaos.Scenario{
		Name:     "darray-fuzz",
		Seed:     seed,
		Drop:     0.08,
		Dup:      0.08,
		Delay:    0.15,
		DelayMax: 5e-4,
	}
}

// captureChaosRun executes prog on a fresh chaos:shared machine under the
// scenario and records the same observables as captureRun.
func captureChaosRun(t *testing.T, n int, sc chaos.Scenario, prog func(p *machine.Proc) []float64) capture {
	t.Helper()
	tr, err := machine.NewTransportByName("chaos:shared", n, 1)
	if err != nil {
		t.Fatal(err)
	}
	ct := tr.(*machine.ChaosTransport)
	if err := ct.SetScenario(sc); err != nil {
		t.Fatal(err)
	}
	m := machine.NewWithTransport(ct, machine.IPSC2())
	c := capture{
		clocks: make([]float64, n),
		stats:  make([]machine.Stats, n),
		data:   make([][]float64, n),
	}
	if err := m.Run(func(p *machine.Proc) error {
		c.data[p.Rank()] = prog(p)
		return nil
	}); err != nil {
		t.Fatal(err)
	}
	for i := 0; i < n; i++ {
		c.clocks[i] = m.ProcClock(i)
		c.stats[i] = m.ProcStats(i)
	}
	return c
}

func TestRandomizedChaosEquivalence(t *testing.T) {
	cases := 20
	if testing.Short() {
		cases = 5
	}
	for ci := 0; ci < cases; ci++ {
		r := &fzRng{s: 0xD1CE ^ uint64(ci)*0x9e3779b97f4a7c15}
		c := genCase(r)
		name := fmt.Sprintf("case%03d/%v_%s", ci, c.gridShape, specName(c.spec))
		g := topology.New(c.gridShape...)
		n := g.Size()
		sc := chaosScenario(int64(1000 + ci))
		prog := func(p *machine.Proc) []float64 { return c.run(p, g) }

		prev := SetScheduling(false)
		faultFree := captureRun(t, n, prog)
		direct := captureChaosRun(t, n, sc, prog)
		SetScheduling(true)
		replay := captureChaosRun(t, n, sc, prog)
		SetScheduling(prev)

		for rk := 0; rk < n; rk++ {
			// Invariant 1: faults never change values (clocks honestly move,
			// so only the payloads are compared against fault-free).
			if len(direct.data[rk]) != len(faultFree.data[rk]) {
				t.Fatalf("%s: rank %d payload length %d under faults != %d fault-free",
					name, rk, len(direct.data[rk]), len(faultFree.data[rk]))
			}
			for k := range direct.data[rk] {
				if direct.data[rk][k] != faultFree.data[rk][k] {
					t.Fatalf("%s: rank %d payload[%d] = %v under faults != %v fault-free",
						name, rk, k, direct.data[rk][k], faultFree.data[rk][k])
				}
			}
			// Invariant 2: schedule replay is bit-identical to direct
			// derivation under the same seeded faults — times included.
			if direct.clocks[rk] != replay.clocks[rk] {
				t.Fatalf("%s: rank %d clock %v (direct) != %v (scheduled) under faults",
					name, rk, direct.clocks[rk], replay.clocks[rk])
			}
			if direct.stats[rk] != replay.stats[rk] {
				t.Fatalf("%s: rank %d stats %+v (direct) != %+v (scheduled) under faults",
					name, rk, direct.stats[rk], replay.stats[rk])
			}
			for k := range direct.data[rk] {
				if direct.data[rk][k] != replay.data[rk][k] {
					t.Fatalf("%s: rank %d payload[%d] = %v (direct) != %v (scheduled) under faults",
						name, rk, k, direct.data[rk][k], replay.data[rk][k])
				}
			}
		}
	}
}
