package darray

import (
	"testing"

	"repro/internal/dist"
	"repro/internal/machine"
	"repro/internal/topology"
)

// The compiled-schedule paths (ExchangeHalo, GatherTo, Redistribute) must
// be indistinguishable from the direct derivation they were compiled from:
// same message counts, same byte counts, same per-processor virtual times,
// same values. These tests run every collective twice — schedules off, then
// on — under a cost model with real latencies, and require bitwise
// equality.

// capture holds one run's observable outcome.
type capture struct {
	clocks []float64
	stats  []machine.Stats
	data   [][]float64
}

// captureRun executes prog on a fresh n-processor machine and records
// clocks, per-processor statistics and each processor's returned payload.
func captureRun(t *testing.T, n int, prog func(p *machine.Proc) []float64) capture {
	t.Helper()
	m := machine.New(n, machine.IPSC2())
	c := capture{
		clocks: make([]float64, n),
		stats:  make([]machine.Stats, n),
		data:   make([][]float64, n),
	}
	err := m.Run(func(p *machine.Proc) error {
		c.data[p.Rank()] = prog(p)
		return nil
	})
	if err != nil {
		t.Fatal(err)
	}
	for i := 0; i < n; i++ {
		c.clocks[i] = m.ProcClock(i)
		c.stats[i] = m.ProcStats(i)
	}
	return c
}

// assertEquivalent runs prog with scheduling disabled and enabled and
// requires bit-identical outcomes.
func assertEquivalent(t *testing.T, name string, n int, prog func(p *machine.Proc) []float64) {
	t.Helper()
	prev := SetScheduling(false)
	direct := captureRun(t, n, prog)
	SetScheduling(true)
	replay := captureRun(t, n, prog)
	SetScheduling(prev)
	for r := 0; r < n; r++ {
		if direct.clocks[r] != replay.clocks[r] {
			t.Errorf("%s: rank %d clock %v (direct) != %v (scheduled)", name, r, direct.clocks[r], replay.clocks[r])
		}
		if direct.stats[r] != replay.stats[r] {
			t.Errorf("%s: rank %d stats %+v (direct) != %+v (scheduled)", name, r, direct.stats[r], replay.stats[r])
		}
		if len(direct.data[r]) != len(replay.data[r]) {
			t.Errorf("%s: rank %d payload length %d != %d", name, r, len(direct.data[r]), len(replay.data[r]))
			continue
		}
		for k := range direct.data[r] {
			if direct.data[r][k] != replay.data[r][k] {
				t.Errorf("%s: rank %d payload[%d] = %v != %v", name, r, k, direct.data[r][k], replay.data[r][k])
				break
			}
		}
	}
}

// fillPattern gives every element a value unique to its global index.
func fillPattern(a *Array) {
	a.FillOwned(func(idx []int) float64 {
		v := 1.0
		for _, g := range idx {
			v = v*1000 + float64(g)
		}
		return v
	})
}

// snapshotLocal returns a copy of the processor's whole local block
// (including ghost cells), so ghost contents participate in the comparison.
func snapshotLocal(a *Array) []float64 {
	if !a.Participates() {
		return nil
	}
	return append([]float64(nil), a.st.data...)
}

func TestHaloEquivalence2D(t *testing.T) {
	g := topology.New(2, 2)
	assertEquivalent(t, "halo-2d", 4, func(p *machine.Proc) []float64 {
		a := New(p, g, Spec{
			Extents: []int{13, 11},
			Dists:   []dist.Dist{dist.Block{}, dist.Block{}},
			Halo:    []int{2, 1},
		})
		fillPattern(a)
		sc := machine.RootScope()
		for it := 0; it < 3; it++ {
			a.ExchangeHalo(sc.Child(it, -1))
			// Mutate between exchanges so replay must move fresh data.
			a.FillOwned(func(idx []int) float64 {
				return a.At(idx...) + 1
			})
		}
		a.ExchangeHalo(sc.Child(99, -1))
		return snapshotLocal(a)
	})
}

func TestHaloEquivalence3DStarAndSection(t *testing.T) {
	g := topology.New(2, 2)
	assertEquivalent(t, "halo-3d-section", 4, func(p *machine.Proc) []float64 {
		a := New(p, g, Spec{
			Extents: []int{5, 13, 11},
			Dists:   []dist.Dist{dist.Star{}, dist.Block{}, dist.Block{}},
			Halo:    []int{0, 2, 1},
		})
		fillPattern(a)
		sc := machine.RootScope()
		a.ExchangeHalo(sc.Child(0, -1))
		// A section fixing the Star dimension exchanges the remaining
		// two haloed dimensions, in explicit (reversed) dim order.
		sec := a.Section(0, 2)
		sec.ExchangeHalo(sc.Child(1, -1), 1, 0)
		return snapshotLocal(a)
	})
}

func TestHaloEquivalenceEmptyBlocks(t *testing.T) {
	// Extent 3 over 4 processors leaves empty blocks; the degenerate
	// ghost windows must match between the two paths.
	g := topology.New1D(4)
	assertEquivalent(t, "halo-empty", 4, func(p *machine.Proc) []float64 {
		a := New(p, g, Spec{
			Extents: []int{3, 6},
			Dists:   []dist.Dist{dist.Block{}, dist.Star{}},
			Halo:    []int{1, 0},
		})
		fillPattern(a)
		a.ExchangeHalo(machine.RootScope())
		return snapshotLocal(a)
	})
}

func TestGatherEquivalence(t *testing.T) {
	g := topology.New(2, 2)
	assertEquivalent(t, "gather", 4, func(p *machine.Proc) []float64 {
		a := New(p, g, Spec{
			Extents: []int{9, 7},
			Dists:   []dist.Dist{dist.Block{}, dist.Block{}},
		})
		fillPattern(a)
		sc := machine.RootScope()
		out := a.GatherTo(sc.Child(0, -1), 0)
		// Gather again to a non-origin root, through a section.
		sec := a.Section(0, 4)
		if sec.Participates() {
			if o := sec.GatherTo(sc.Child(1, -1), 1); o != nil {
				out = append(out, o...)
			}
		}
		return out
	})
}

func TestRedistributeEquivalence(t *testing.T) {
	g := topology.New1D(4)
	assertEquivalent(t, "redistribute-1d", 4, func(p *machine.Proc) []float64 {
		a := New(p, g, Spec{
			Extents: []int{17},
			Dists:   []dist.Dist{dist.Block{}},
		})
		fillPattern(a)
		sc := machine.RootScope()
		b := a.Redistribute(sc.Child(0, -1), g, Spec{
			Extents: []int{17},
			Dists:   []dist.Dist{dist.Cyclic{}},
		})
		c := b.Redistribute(sc.Child(1, -1), g, Spec{
			Extents: []int{17},
			Dists:   []dist.Dist{dist.Star{}},
		})
		out := snapshotLocal(b)
		return append(out, snapshotLocal(c)...)
	})
}

func TestRedistributeEquivalence2D(t *testing.T) {
	g := topology.New(2, 2)
	assertEquivalent(t, "redistribute-2d", 4, func(p *machine.Proc) []float64 {
		a := New(p, g, Spec{
			Extents: []int{6, 10},
			Dists:   []dist.Dist{dist.Block{}, dist.Block{}},
		})
		fillPattern(a)
		b := a.Redistribute(machine.RootScope(), g, Spec{
			Extents: []int{6, 10},
			Dists:   []dist.Dist{dist.Cyclic{}, dist.Block{}},
		})
		return snapshotLocal(b)
	})
}

// TestHaloScheduleCachedIdentity pins the memoization: repeated exchanges
// reuse one compiled schedule, and distinct dim selections get distinct
// schedules.
func TestHaloScheduleCachedIdentity(t *testing.T) {
	g := topology.New(2, 2)
	m := machine.New(4, machine.ZeroComm())
	err := m.Run(func(p *machine.Proc) error {
		a := New(p, g, Spec{
			Extents: []int{8, 8},
			Dists:   []dist.Dist{dist.Block{}, dist.Block{}},
			Halo:    []int{1, 1},
		})
		s1 := a.haloSchedule(nil)
		s2 := a.haloSchedule(nil)
		if s1 != s2 {
			t.Error("default halo schedule not memoized")
		}
		d0 := a.haloSchedule([]int{0})
		d01 := a.haloSchedule([]int{0, 1})
		d10 := a.haloSchedule([]int{1, 0})
		if d0 == d01 || d01 == d10 {
			t.Error("distinct dim selections must compile distinct schedules")
		}
		if d01 == a.haloSchedule([]int{0, 1}) != true {
			t.Error("explicit dim schedule not memoized")
		}
		return nil
	})
	if err != nil {
		t.Fatal(err)
	}
}
