package darray

import (
	"fmt"

	"repro/internal/dist"
	"repro/internal/machine"
)

// ghostRun is one contiguous run of ghost indices along a dimension,
// together with the grid coordinate (along that dimension's axis) of the
// processor that owns it.
type ghostRun struct {
	ownerCoord int
	lo, hi     int // global index range, inclusive
}

// ghostRuns returns the contiguous per-owner runs covering the global index
// range [lo, hi] of store dim sd (clipped to the extent). Block ownership is
// contiguous, so each owner contributes at most one run.
func (a *Array) ghostRuns(sd, lo, hi int) []ghostRun {
	st := a.st
	n := st.extents[sd]
	if lo < 0 {
		lo = 0
	}
	if hi >= n {
		hi = n - 1
	}
	var runs []ghostRun
	P := st.rootGrid.Extent(st.axisOf[sd])
	for i := lo; i <= hi; {
		q := st.dists[sd].Owner(i, n, P)
		j := i
		for j+1 <= hi && st.dists[sd].Owner(j+1, n, P) == q {
			j++
		}
		runs = append(runs, ghostRun{ownerCoord: q, lo: i, hi: j})
		i = j + 1
	}
	return runs
}

// rankAlongAxis returns the machine rank of the processor at the calling
// processor's root coordinate with the coordinate along root axis ax
// replaced by q.
func (st *store) rankAlongAxis(ax, q int) int {
	coord := append([]int(nil), st.coord...)
	coord[ax] = q
	return st.rootGrid.Rank(coord...)
}

// planeCells enumerates, in row-major order, the local offsets of the cells
// of the hyperplane where store dim sd has local position l (halo-relative),
// the fixed dims of the section take their fixed values, and the remaining
// free dims range over the calling processor's owned cells. The visit
// function receives each cell's offset into st.data.
func (a *Array) planeCells(sd, l int, visit func(off int)) {
	st := a.st
	nd := len(st.extents)
	// Build per-dim local index ranges (halo-relative positions).
	lo := make([]int, nd)
	hi := make([]int, nd)
	for d := 0; d < nd; d++ {
		switch {
		case d == sd:
			lo[d], hi[d] = l, l
		case a.pfix[d] >= 0:
			// Fixed section index: its local position.
			lo[d] = st.localPos(d, a.pfix[d])
			hi[d] = lo[d]
		default:
			lo[d] = st.halo[d]
			hi[d] = st.halo[d] + st.lsize[d] - 1
		}
	}
	for d := 0; d < nd; d++ {
		if hi[d] < lo[d] {
			return // an empty local extent: no cells to visit
		}
	}
	idx := make([]int, nd)
	copy(idx, lo)
	for {
		off := 0
		for d := 0; d < nd; d++ {
			off += idx[d] * st.stride[d]
		}
		visit(off)
		d := nd - 1
		for d >= 0 {
			idx[d]++
			if idx[d] <= hi[d] {
				break
			}
			idx[d] = lo[d]
			d--
		}
		if d < 0 {
			return
		}
	}
}

// localPos returns the halo-relative local position of global index g in
// store dim d on the calling processor (which must hold it).
func (st *store) localPos(d, g int) int {
	if st.axisOf[d] < 0 {
		return g + st.halo[d]
	}
	q := st.coord[st.axisOf[d]]
	P := st.rootGrid.Extent(st.axisOf[d])
	if b, ok := st.dists[d].(dist.Contiguous); ok {
		l := g - b.Lower(q, st.extents[d], P) + st.halo[d]
		return l
	}
	return st.dists[d].ToLocal(g, st.extents[d], P) + st.halo[d]
}

// planeSize returns the number of cells in one hyperplane of the section
// perpendicular to store dim sd (owned cells of free dims, single cells of
// fixed dims).
func (a *Array) planeSize(sd int) int {
	st := a.st
	n := 1
	for d := range st.extents {
		if d == sd || a.pfix[d] >= 0 {
			continue
		}
		n *= st.lsize[d]
	}
	return n
}

// ExchangeHalo updates the ghost cells of the given free dimensions (all
// block-distributed dimensions with nonzero halo when none are specified)
// by exchanging boundary hyperplanes with the owning processors. Every
// participant of the array (or section) must call it with the same scope;
// non-participants must not call it.
//
// Corner ghost cells (diagonal neighbors) are not exchanged; the tensor
// product algorithms in this repository use axis-aligned stencils only.
func (a *Array) ExchangeHalo(sc machine.Scope, dims ...int) {
	a.mustParticipate()
	st := a.st
	if len(dims) == 0 {
		for d := 0; d < a.Dims(); d++ {
			sd := a.storeDim(d)
			if st.halo[sd] > 0 && st.axisOf[sd] >= 0 {
				dims = append(dims, d)
			}
		}
	}
	// Post every dimension's sends before any receive, so one round of
	// latency covers the whole exchange — the batching a compiler would
	// generate (and what the hand message-passing baselines do).
	for _, d := range dims {
		sd := a.storeDim(d)
		if st.halo[sd] == 0 {
			panic(fmt.Sprintf("darray: ExchangeHalo on dim %d with zero halo", d))
		}
		a.sendHalo(sc, sd)
	}
	for _, d := range dims {
		a.recvHalo(sc, a.storeDim(d))
	}
}

// sendHalo posts the outgoing boundary hyperplanes along store dim sd.
func (a *Array) sendHalo(sc machine.Scope, sd int) {
	st := a.st
	ax := st.axisOf[sd]
	n := st.extents[sd]
	P := st.rootGrid.Extent(ax)
	q := st.coord[ax]
	h := st.halo[sd]
	myLo, myHi := st.lower[sd], st.lower[sd]+st.lsize[sd]-1
	plane := a.planeSize(sd)
	if plane == 0 {
		return // some other dimension is empty: peers mirror this skip
	}

	// Send plan: for every other processor q' along the axis, the ghost
	// indices q' needs that fall in my owned range. q''s ghost windows
	// are [lo'-h, lo'-1] and [hi'+1, hi'+h].
	type sendJob struct {
		dst  int
		part uint16
		lo   int // first global index of the run (within my owned range)
		len  int
	}
	var jobs []sendJob
	if st.lsize[sd] > 0 {
		b := st.dists[sd].(dist.Contiguous)
		for qq := 0; qq < P; qq++ {
			if qq == q {
				continue
			}
			// Processors with empty blocks (deep multigrid coarse
			// levels) still receive ghosts: their degenerate
			// windows [lo'-h, lo'-1] and [lo', lo'+h-1] are exactly
			// the surrounding values interpolation needs.
			qlo, qhi := b.Lower(qq, n, P), b.Upper(qq, n, P)
			// Low-side window of qq.
			lo, hi := maxI(qlo-h, myLo), minI(qlo-1, myHi)
			if lo <= hi {
				jobs = append(jobs, sendJob{dst: st.rankAlongAxis(ax, qq), part: uint16(sd<<2 | 0), lo: lo, len: hi - lo + 1})
			}
			// High-side window of qq.
			lo, hi = maxI(qhi+1, myLo), minI(qhi+h, myHi)
			if lo <= hi {
				jobs = append(jobs, sendJob{dst: st.rankAlongAxis(ax, qq), part: uint16(sd<<2 | 1), lo: lo, len: hi - lo + 1})
			}
		}
	}
	for _, job := range jobs {
		buf := make([]float64, 0, job.len*plane)
		for g := job.lo; g < job.lo+job.len; g++ {
			a.planeCells(sd, g-st.lower[sd]+h, func(off int) {
				buf = append(buf, st.data[off])
			})
		}
		st.p.Send(job.dst, sc.Tag(job.part), buf)
	}
}

// recvHalo completes the exchange along store dim sd: receive this
// processor's ghost windows, grouped by owner.
func (a *Array) recvHalo(sc machine.Scope, sd int) {
	st := a.st
	ax := st.axisOf[sd]
	h := st.halo[sd]
	// For an empty block (lower == upper+1 == L) the two windows
	// degenerate to [L-h, L-1] and [L, L+h-1]: the values surrounding the
	// block's position, which grid-transfer operators on deep multigrid
	// levels still need.
	myLo, myHi := st.lower[sd], st.lower[sd]+st.lsize[sd]-1
	plane := a.planeSize(sd)
	if plane == 0 {
		return // some other dimension is empty here: no cells at all
	}
	recvSide := func(side int, lo, hi int) {
		for _, run := range a.ghostRuns(sd, lo, hi) {
			src := st.rankAlongAxis(ax, run.ownerCoord)
			buf := st.p.Recv(src, sc.Tag(uint16(sd<<2|side)))
			want := (run.hi - run.lo + 1) * plane
			if len(buf) != want {
				panic(fmt.Sprintf("darray: halo exchange dim %d: got %d values, want %d", sd, len(buf), want))
			}
			k := 0
			for g := run.lo; g <= run.hi; g++ {
				a.planeCells(sd, g-st.lower[sd]+h, func(off int) {
					st.data[off] = buf[k]
					k++
				})
			}
		}
	}
	recvSide(0, myLo-h, myLo-1)
	recvSide(1, myHi+1, myHi+h)
}

func maxI(a, b int) int {
	if a > b {
		return a
	}
	return b
}

func minI(a, b int) int {
	if a < b {
		return a
	}
	return b
}
