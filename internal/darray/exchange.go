package darray

import (
	"fmt"

	"repro/internal/dist"
	"repro/internal/machine"
)

// ghostRun is one contiguous run of ghost indices along a dimension,
// together with the grid coordinate (along that dimension's axis) of the
// processor that owns it.
type ghostRun struct {
	ownerCoord int
	lo, hi     int // global index range, inclusive
}

// ghostRuns returns the contiguous per-owner runs covering the global index
// range [lo, hi] of store dim sd (clipped to the extent). For Contiguous
// distributions the runs are derived from the owners' block bounds in
// O(owners) instead of probing Owner per index. The returned slice is the
// store's reusable scratch: it is valid until the next ghostRuns call.
func (a *Array) ghostRuns(sd, lo, hi int) []ghostRun {
	st := a.st
	n := st.extents[sd]
	if lo < 0 {
		lo = 0
	}
	if hi >= n {
		hi = n - 1
	}
	runs := st.runsBuf[:0]
	P := st.rootGrid.Extent(st.axisOf[sd])
	if b, ok := st.dists[sd].(dist.Contiguous); ok {
		q := 0
		if lo <= hi {
			q = st.dists[sd].Owner(lo, n, P)
		}
		for i := lo; i <= hi; {
			for b.Upper(q, n, P) < i {
				q++ // skip owners with empty blocks
			}
			end := b.Upper(q, n, P)
			if end > hi {
				end = hi
			}
			runs = append(runs, ghostRun{ownerCoord: q, lo: i, hi: end})
			i = end + 1
			q++
		}
	} else {
		for i := lo; i <= hi; {
			q := st.dists[sd].Owner(i, n, P)
			j := i
			for j+1 <= hi && st.dists[sd].Owner(j+1, n, P) == q {
				j++
			}
			runs = append(runs, ghostRun{ownerCoord: q, lo: i, hi: j})
			i = j + 1
		}
	}
	st.runsBuf = runs
	return runs
}

// rankAlongAxis returns the machine rank of the processor at the calling
// processor's root coordinate with the coordinate along root axis ax
// replaced by q.
func (st *store) rankAlongAxis(ax, q int) int {
	copy(st.coordBuf, st.coord)
	st.coordBuf[ax] = q
	return st.rootGrid.Rank(st.coordBuf...)
}

// planeBounds fills the store's iteration scratch with the halo-relative
// local position range of every store dim for the hyperplane at position l
// of store dim sd (fixed dims pinned, free dims over owned cells). It
// reports false when some dimension is empty.
func (a *Array) planeBounds(sd, l int) bool {
	st := a.st
	for d := range st.extents {
		switch {
		case d == sd:
			st.itLo[d], st.itHi[d] = l, l
		case a.pfix[d] >= 0:
			st.itLo[d] = st.localPos(d, a.pfix[d])
			st.itHi[d] = st.itLo[d]
		default:
			st.itLo[d] = st.halo[d]
			st.itHi[d] = st.halo[d] + st.lsize[d] - 1
		}
		if st.itHi[d] < st.itLo[d] {
			return false
		}
		st.itIdx[d] = st.itLo[d]
	}
	return true
}

// packPlane copies the cells of the hyperplane at halo-relative position l
// of store dim sd into dst in row-major order, returning the number of
// values written. The innermost store dimension is stride-1, so each
// innermost run moves with a single copy — the packed-buffer staging a
// message-passing compiler would generate — rather than a call per cell.
func (a *Array) packPlane(sd, l int, dst []float64) int {
	st := a.st
	if !a.planeBounds(sd, l) {
		return 0
	}
	nd := len(st.extents)
	base := 0
	for d := 0; d < nd; d++ {
		base += st.itLo[d] * st.stride[d]
	}
	runLen := st.itHi[nd-1] - st.itLo[nd-1] + 1 // stride[nd-1] == 1
	k := 0
	for {
		copy(dst[k:k+runLen], st.data[base:base+runLen])
		k += runLen
		d := nd - 2
		for d >= 0 {
			st.itIdx[d]++
			base += st.stride[d]
			if st.itIdx[d] <= st.itHi[d] {
				break
			}
			base -= (st.itIdx[d] - st.itLo[d]) * st.stride[d]
			st.itIdx[d] = st.itLo[d]
			d--
		}
		if d < 0 {
			return k
		}
	}
}

// unpackPlane is the inverse of packPlane: it scatters src into the
// hyperplane's cells, returning the number of values consumed.
func (a *Array) unpackPlane(sd, l int, src []float64) int {
	st := a.st
	if !a.planeBounds(sd, l) {
		return 0
	}
	nd := len(st.extents)
	base := 0
	for d := 0; d < nd; d++ {
		base += st.itLo[d] * st.stride[d]
	}
	runLen := st.itHi[nd-1] - st.itLo[nd-1] + 1
	k := 0
	for {
		copy(st.data[base:base+runLen], src[k:k+runLen])
		k += runLen
		d := nd - 2
		for d >= 0 {
			st.itIdx[d]++
			base += st.stride[d]
			if st.itIdx[d] <= st.itHi[d] {
				break
			}
			base -= (st.itIdx[d] - st.itLo[d]) * st.stride[d]
			st.itIdx[d] = st.itLo[d]
			d--
		}
		if d < 0 {
			return k
		}
	}
}

// localPos returns the halo-relative local position of global index g in
// store dim d on the calling processor (which must hold it).
func (st *store) localPos(d, g int) int {
	if st.axisOf[d] < 0 {
		return g + st.halo[d]
	}
	q := st.coord[st.axisOf[d]]
	P := st.rootGrid.Extent(st.axisOf[d])
	if b, ok := st.dists[d].(dist.Contiguous); ok {
		l := g - b.Lower(q, st.extents[d], P) + st.halo[d]
		return l
	}
	return st.dists[d].ToLocal(g, st.extents[d], P) + st.halo[d]
}

// planeSize returns the number of cells in one hyperplane of the section
// perpendicular to store dim sd (owned cells of free dims, single cells of
// fixed dims).
func (a *Array) planeSize(sd int) int {
	st := a.st
	n := 1
	for d := range st.extents {
		if d == sd || a.pfix[d] >= 0 {
			continue
		}
		n *= st.lsize[d]
	}
	return n
}

// ExchangeHalo updates the ghost cells of the given free dimensions (all
// block-distributed dimensions with nonzero halo when none are specified)
// by exchanging boundary hyperplanes with the owning processors. Every
// participant of the array (or section) must call it with the same scope;
// non-participants must not call it.
//
// Corner ghost cells (diagonal neighbors) are not exchanged; the tensor
// product algorithms in this repository use axis-aligned stencils only.
//
// A steady-state exchange allocates nothing and derives nothing: the first
// exchange of a view compiles the complete pack/unpack layout into a cached
// schedule (the inspector), and every call replays it (the executor) —
// hyperplanes are packed into pooled message buffers with contiguous copies
// and unpacked the same way on the receiver, which releases the buffers
// back to its pool.
func (a *Array) ExchangeHalo(sc machine.Scope, dims ...int) {
	a.mustParticipate()
	if scheduling {
		a.haloSchedule(dims).Execute(a.st.p, sc, a.st.data, a.st.data)
		return
	}
	a.exchangeHaloDirect(sc, dims...)
}

// exchangeHaloDirect is the uncompiled reference path: it re-derives owner
// windows and hyperplane runs on every call. The compiled schedule must
// replay bit-identical traffic; the equivalence suite holds it to that.
func (a *Array) exchangeHaloDirect(sc machine.Scope, dims ...int) {
	st := a.st
	// Post every dimension's sends before any receive, so one round of
	// latency covers the whole exchange — the batching a compiler would
	// generate (and what the hand message-passing baselines do).
	if len(dims) == 0 {
		for k := range a.acc {
			sd := a.acc[k].sd
			if st.halo[sd] > 0 && st.axisOf[sd] >= 0 {
				a.sendHalo(sc, sd)
			}
		}
		for k := range a.acc {
			sd := a.acc[k].sd
			if st.halo[sd] > 0 && st.axisOf[sd] >= 0 {
				a.recvHalo(sc, sd)
			}
		}
		return
	}
	for _, d := range dims {
		sd := a.storeDim(d)
		if st.halo[sd] == 0 {
			panic(fmt.Sprintf("darray: ExchangeHalo on dim %d with zero halo", d))
		}
		a.sendHalo(sc, sd)
	}
	for _, d := range dims {
		a.recvHalo(sc, a.storeDim(d))
	}
}

// sendHalo posts the outgoing boundary hyperplanes along store dim sd: for
// every other processor along the axis, the ghost indices it needs that
// fall in this processor's owned range, packed into one pooled buffer per
// (peer, side).
func (a *Array) sendHalo(sc machine.Scope, sd int) {
	st := a.st
	ax := st.axisOf[sd]
	n := st.extents[sd]
	P := st.rootGrid.Extent(ax)
	q := st.coord[ax]
	h := st.halo[sd]
	myLo, myHi := st.lower[sd], st.lower[sd]+st.lsize[sd]-1
	plane := a.planeSize(sd)
	if plane == 0 || st.lsize[sd] == 0 {
		return // an empty dimension: peers mirror this skip
	}
	b := st.dists[sd].(dist.Contiguous)
	for qq := 0; qq < P; qq++ {
		if qq == q {
			continue
		}
		// Processors with empty blocks (deep multigrid coarse levels)
		// still receive ghosts: their degenerate windows
		// [lo'-h, lo'-1] and [lo', lo'+h-1] are exactly the
		// surrounding values interpolation needs.
		qlo, qhi := b.Lower(qq, n, P), b.Upper(qq, n, P)
		// Low-side window of qq.
		if lo, hi := maxI(qlo-h, myLo), minI(qlo-1, myHi); lo <= hi {
			a.sendRun(sc, sd, uint16(sd<<2|0), ax, qq, lo, hi, plane)
		}
		// High-side window of qq.
		if lo, hi := maxI(qhi+1, myLo), minI(qhi+h, myHi); lo <= hi {
			a.sendRun(sc, sd, uint16(sd<<2|1), ax, qq, lo, hi, plane)
		}
	}
}

// sendRun packs the hyperplanes of global indices [lo, hi] of store dim sd
// into a pooled buffer and sends it to the processor at coordinate qq.
func (a *Array) sendRun(sc machine.Scope, sd int, part uint16, ax, qq, lo, hi, plane int) {
	st := a.st
	buf := st.p.AcquireBuf((hi - lo + 1) * plane)
	k := 0
	for g := lo; g <= hi; g++ {
		k += a.packPlane(sd, g-st.lower[sd]+st.halo[sd], buf[k:])
	}
	st.p.SendOwned(st.rankAlongAxis(ax, qq), sc.Tag(part), buf)
}

// recvHalo completes the exchange along store dim sd: receive this
// processor's ghost windows, grouped by owner, and release each message
// buffer back to the pool after unpacking.
func (a *Array) recvHalo(sc machine.Scope, sd int) {
	st := a.st
	ax := st.axisOf[sd]
	h := st.halo[sd]
	// For an empty block (lower == upper+1 == L) the two windows
	// degenerate to [L-h, L-1] and [L, L+h-1]: the values surrounding the
	// block's position, which grid-transfer operators on deep multigrid
	// levels still need.
	myLo, myHi := st.lower[sd], st.lower[sd]+st.lsize[sd]-1
	plane := a.planeSize(sd)
	if plane == 0 {
		return // some other dimension is empty here: no cells at all
	}
	a.recvSide(sc, sd, ax, 0, myLo-h, myLo-1, plane, h)
	a.recvSide(sc, sd, ax, 1, myHi+1, myHi+h, plane, h)
}

func (a *Array) recvSide(sc machine.Scope, sd, ax, side, lo, hi, plane, h int) {
	st := a.st
	for _, run := range a.ghostRuns(sd, lo, hi) {
		src := st.rankAlongAxis(ax, run.ownerCoord)
		buf := st.p.Recv(src, sc.Tag(uint16(sd<<2|side)))
		want := (run.hi - run.lo + 1) * plane
		if len(buf) != want {
			panic(fmt.Sprintf("darray: halo exchange dim %d: got %d values, want %d", sd, len(buf), want))
		}
		k := 0
		for g := run.lo; g <= run.hi; g++ {
			k += a.unpackPlane(sd, g-st.lower[sd]+h, buf[k:])
		}
		st.p.ReleaseBuf(buf)
	}
}

func maxI(a, b int) int {
	if a > b {
		return a
	}
	return b
}

func minI(a, b int) int {
	if a < b {
		return a
	}
	return b
}
