package darray

import (
	"testing"

	"repro/internal/dist"
	"repro/internal/machine"
	"repro/internal/topology"
)

// The runtime's hot paths must not allocate in steady state: element access
// goes through cached per-dimension offsets, and halo exchange packs into
// pooled message buffers that the receiver releases. These tests pin that
// property with testing.AllocsPerRun so a regression fails loudly instead
// of silently bloating every simulated program.

func TestAt2Set2ZeroAllocs(t *testing.T) {
	m := machine.New(1, machine.ZeroComm())
	g := topology.New(1, 1)
	err := m.Run(func(p *machine.Proc) error {
		a := New(p, g, Spec{
			Extents: []int{32, 32},
			Dists:   []dist.Dist{dist.Block{}, dist.Block{}},
			Halo:    []int{1, 1},
		})
		a.Fill(func(idx []int) float64 { return float64(idx[0] + idx[1]) })
		sink := 0.0
		avg := testing.AllocsPerRun(200, func() {
			for i := 1; i < 31; i++ {
				for j := 1; j < 31; j++ {
					sink += a.At2(i-1, j) + a.At2(i+1, j)
					a.Set2(i, j, sink)
				}
			}
		})
		if avg != 0 {
			t.Errorf("At2/Set2 sweep: %v allocs per run, want 0", avg)
		}
		_ = sink
		return nil
	})
	if err != nil {
		t.Fatal(err)
	}
}

func TestAt1Set1SectionZeroAllocs(t *testing.T) {
	m := machine.New(1, machine.ZeroComm())
	g := topology.New(1, 1)
	err := m.Run(func(p *machine.Proc) error {
		a := New(p, g, Spec{
			Extents: []int{16, 16},
			Dists:   []dist.Dist{dist.Block{}, dist.Block{}},
		})
		a.Zero()
		row := a.Section(0, 3)
		sink := 0.0
		avg := testing.AllocsPerRun(200, func() {
			for j := 0; j < 16; j++ {
				row.Set1(j, sink)
				sink += row.At1(j)
			}
		})
		if avg != 0 {
			t.Errorf("section At1/Set1 sweep: %v allocs per run, want 0", avg)
		}
		_ = sink
		return nil
	})
	if err != nil {
		t.Fatal(err)
	}
}

func TestExchangeHaloZeroAllocsSteadyState(t *testing.T) {
	// Both processors run warm+runs+1 exchanges on one fixed scope
	// (repeated tags match FIFO per stream). Rank 0 measures the last
	// runs+1 of them; rank 1 mirrors them outside the measurement.
	// AllocsPerRun counts process-global allocations, so rank 1
	// allocating would fail the test too — which is exactly the
	// property under test, on both sides.
	const warm, runs = 8, 50
	m := machine.New(2, machine.ZeroComm())
	g := topology.New1D(2)
	sc := machine.RootScope()
	err := m.Run(func(p *machine.Proc) error {
		a := New(p, g, Spec{
			Extents: []int{64, 64},
			Dists:   []dist.Dist{dist.Star{}, dist.Block{}},
			Halo:    []int{0, 2},
		})
		a.Fill(func(idx []int) float64 { return float64(idx[0]*64 + idx[1]) })
		for i := 0; i < warm; i++ {
			a.ExchangeHalo(sc)
		}
		if p.Rank() == 0 {
			avg := testing.AllocsPerRun(runs, func() { a.ExchangeHalo(sc) })
			if avg != 0 {
				t.Errorf("warmed ExchangeHalo: %v allocs per run, want 0", avg)
			}
		} else {
			for i := 0; i < runs+1; i++ {
				a.ExchangeHalo(sc)
			}
		}
		return nil
	})
	if err != nil {
		t.Fatal(err)
	}
}

func TestExchangeHalo2DZeroAllocsSteadyState(t *testing.T) {
	// The 2-D version exercises strided (non-innermost) plane packing.
	const warm, runs = 8, 30
	m := machine.New(4, machine.ZeroComm())
	g := topology.New(2, 2)
	sc := machine.RootScope()
	err := m.Run(func(p *machine.Proc) error {
		a := New(p, g, Spec{
			Extents: []int{32, 32},
			Dists:   []dist.Dist{dist.Block{}, dist.Block{}},
			Halo:    []int{1, 1},
		})
		a.Fill(func(idx []int) float64 { return float64(idx[0] + idx[1]) })
		for i := 0; i < warm; i++ {
			a.ExchangeHalo(sc)
		}
		if p.Rank() == 0 {
			avg := testing.AllocsPerRun(runs, func() { a.ExchangeHalo(sc) })
			if avg != 0 {
				t.Errorf("warmed 2-D ExchangeHalo: %v allocs per run, want 0", avg)
			}
		} else {
			for i := 0; i < runs+1; i++ {
				a.ExchangeHalo(sc)
			}
		}
		return nil
	})
	if err != nil {
		t.Fatal(err)
	}
}

// TestExchangeHaloRunBasedMatchesReference cross-checks the run-based
// pack/unpack against a straightforward per-cell reference on an uneven
// 3-D section-free layout, so the copy-based fast path cannot silently
// reorder values.
func TestExchangeHaloRunBasedMatchesReference(t *testing.T) {
	m := machine.New(4, machine.ZeroComm())
	g := topology.New(2, 2)
	sc := machine.RootScope()
	err := m.Run(func(p *machine.Proc) error {
		a := New(p, g, Spec{
			Extents: []int{5, 13, 11},
			Dists:   []dist.Dist{dist.Star{}, dist.Block{}, dist.Block{}},
			Halo:    []int{0, 2, 1},
		})
		a.Fill(func(idx []int) float64 {
			return float64(idx[0]*10000 + idx[1]*100 + idx[2])
		})
		a.ExchangeHalo(sc)
		for i := 0; i < 5; i++ {
			for j := a.Lower(1) - 2; j <= a.Upper(1)+2; j++ {
				if j < 0 || j > 12 {
					continue
				}
				jGhost := j < a.Lower(1) || j > a.Upper(1)
				for k := a.Lower(2) - 1; k <= a.Upper(2)+1; k++ {
					if k < 0 || k > 10 {
						continue
					}
					kGhost := k < a.Lower(2) || k > a.Upper(2)
					if jGhost && kGhost {
						continue // corner ghosts are not exchanged
					}
					want := float64(i*10000 + j*100 + k)
					if got := a.At3(i, j, k); got != want {
						t.Errorf("rank %d: At(%d,%d,%d) = %v, want %v", p.Rank(), i, j, k, got, want)
					}
				}
			}
		}
		return nil
	})
	if err != nil {
		t.Fatal(err)
	}
}
