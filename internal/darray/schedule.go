package darray

import (
	"fmt"
	"strings"

	"repro/internal/dist"
	"repro/internal/machine"
	"repro/internal/sched"
)

// scheduling selects between the two implementations of every collective:
// compile a communication schedule once and replay it (the
// inspector/executor path a KF1 compiler would generate for iterative
// loops), or derive the communication inline on every call (the reference
// path the schedules were compiled from). The two produce bit-identical
// traffic — same messages, same order, same bytes, same virtual times —
// which the equivalence suite and the 64-processor scaling experiment
// verify by flipping this switch. Production code leaves it on.
var scheduling = true

// SetScheduling enables or disables compiled communication schedules,
// returning the previous setting. It must only be flipped outside
// Machine.Run (the flag is read concurrently by every simulated
// processor); it exists for verification, not for tuning.
func SetScheduling(on bool) bool {
	prev := scheduling
	scheduling = on
	return prev
}

// appendRun extends runs with storage offset off, merging with the last run
// when adjacent — the generic run-coalescing step every inspector uses.
func appendRun(runs []sched.Run, off int) []sched.Run {
	if k := len(runs); k > 0 {
		if last := &runs[k-1]; last.Off+last.Len == off {
			last.Len++
			return runs
		}
	}
	return append(runs, sched.Run{Off: off, Len: 1})
}

// --- Halo exchange -------------------------------------------------------

// haloSchedule returns the compiled halo-exchange schedule for the given
// free dimensions (all haloed dimensions when empty), compiling and caching
// it on first use. The schedule depends only on the view's immutable layout
// (extents, distributions, halo widths, grid, fixed indices), so a cached
// schedule is never invalidated; arrays with new layouts are new views with
// empty caches.
func (a *Array) haloSchedule(dims []int) *sched.Schedule {
	key := -1
	if len(dims) > 0 {
		key = 0
		for _, d := range dims {
			key = key*(maxInlineDims*4) + a.storeDim(d) + 1
		}
	}
	if s, ok := a.haloScheds[key]; ok {
		return s
	}
	s := a.compileHalo(dims)
	if a.haloScheds == nil {
		a.haloScheds = make(map[int]*sched.Schedule)
	}
	a.haloScheds[key] = s
	return s
}

// compileHalo is the halo-exchange inspector: it walks the same owner
// windows and hyperplanes as the direct path (sendHalo/recvHalo) and
// records, instead of performing, every pack and unpack.
func (a *Array) compileHalo(dims []int) *sched.Schedule {
	st := a.st
	s := &sched.Schedule{
		Sends: make([]sched.Msg, 0, 4),
		Recvs: make([]sched.Msg, 0, 4),
	}
	var sdsBuf [maxInlineDims]int
	sds := sdsBuf[:0]
	if len(dims) == 0 {
		for k := range a.acc {
			sd := a.acc[k].sd
			if st.halo[sd] > 0 && st.axisOf[sd] >= 0 {
				sds = append(sds, sd)
			}
		}
	} else {
		for _, d := range dims {
			sd := a.storeDim(d)
			if st.halo[sd] == 0 {
				panic(fmt.Sprintf("darray: ExchangeHalo on dim %d with zero halo", d))
			}
			sds = append(sds, sd)
		}
	}
	for _, sd := range sds {
		a.compileHaloSends(s, sd)
	}
	for _, sd := range sds {
		a.compileHaloRecvs(s, sd)
	}
	return s
}

// compileHaloSends mirrors sendHalo: for every other processor along the
// dimension's axis, the ghost windows falling in this processor's owned
// range become one send message of pack runs per (peer, side).
func (a *Array) compileHaloSends(s *sched.Schedule, sd int) {
	st := a.st
	ax := st.axisOf[sd]
	n := st.extents[sd]
	P := st.rootGrid.Extent(ax)
	q := st.coord[ax]
	h := st.halo[sd]
	myLo, myHi := st.lower[sd], st.lower[sd]+st.lsize[sd]-1
	if a.planeSize(sd) == 0 || st.lsize[sd] == 0 {
		return // an empty dimension: peers mirror this skip
	}
	b := st.dists[sd].(dist.Contiguous)
	for qq := 0; qq < P; qq++ {
		if qq == q {
			continue
		}
		qlo, qhi := b.Lower(qq, n, P), b.Upper(qq, n, P)
		if lo, hi := maxI(qlo-h, myLo), minI(qlo-1, myHi); lo <= hi {
			a.compileSendRun(s, sd, uint16(sd<<2|0), ax, qq, lo, hi)
		}
		if lo, hi := maxI(qhi+1, myLo), minI(qhi+h, myHi); lo <= hi {
			a.compileSendRun(s, sd, uint16(sd<<2|1), ax, qq, lo, hi)
		}
	}
}

func (a *Array) compileSendRun(s *sched.Schedule, sd int, part uint16, ax, qq, lo, hi int) {
	st := a.st
	s.BeginSend(st.rankAlongAxis(ax, qq), part)
	for g := lo; g <= hi; g++ {
		a.appendPlaneRuns(s, sd, g-st.lower[sd]+st.halo[sd], true)
	}
}

// compileHaloRecvs mirrors recvHalo/recvSide: this processor's ghost
// windows, grouped into one receive message of unpack runs per owner run.
func (a *Array) compileHaloRecvs(s *sched.Schedule, sd int) {
	st := a.st
	ax := st.axisOf[sd]
	h := st.halo[sd]
	myLo, myHi := st.lower[sd], st.lower[sd]+st.lsize[sd]-1
	if a.planeSize(sd) == 0 {
		return // some other dimension is empty here: no cells at all
	}
	a.compileRecvSide(s, sd, ax, 0, myLo-h, myLo-1)
	a.compileRecvSide(s, sd, ax, 1, myHi+1, myHi+h)
}

func (a *Array) compileRecvSide(s *sched.Schedule, sd, ax, side, lo, hi int) {
	st := a.st
	for _, run := range a.ghostRuns(sd, lo, hi) {
		s.BeginRecv(st.rankAlongAxis(ax, run.ownerCoord), uint16(sd<<2|side))
		for g := run.lo; g <= run.hi; g++ {
			a.appendPlaneRuns(s, sd, g-st.lower[sd]+st.halo[sd], false)
		}
	}
}

// appendPlaneRuns records the storage runs of the hyperplane at
// halo-relative position l of store dim sd, in the exact order
// packPlane/unpackPlane move them, onto the schedule's current send or
// receive message.
func (a *Array) appendPlaneRuns(s *sched.Schedule, sd, l int, send bool) {
	st := a.st
	if !a.planeBounds(sd, l) {
		return
	}
	nd := len(st.extents)
	base := 0
	for d := 0; d < nd; d++ {
		base += st.itLo[d] * st.stride[d]
	}
	runLen := st.itHi[nd-1] - st.itLo[nd-1] + 1 // stride[nd-1] == 1
	for {
		if send {
			s.AddSendRun(base, runLen)
		} else {
			s.AddRecvRun(base, runLen)
		}
		d := nd - 2
		for d >= 0 {
			st.itIdx[d]++
			base += st.stride[d]
			if st.itIdx[d] <= st.itHi[d] {
				break
			}
			base -= (st.itIdx[d] - st.itLo[d]) * st.stride[d]
			st.itIdx[d] = st.itLo[d]
			d--
		}
		if d < 0 {
			return
		}
	}
}

// --- GatherTo ------------------------------------------------------------

// gatherPlan is a compiled GatherTo: the calling processor's pack runs and,
// on the root, every member's unpack runs into the dense result.
type gatherPlan struct {
	n        int         // values this member contributes
	packRuns []sched.Run // storage runs of owned cells, in OwnedEach order
	root     bool
	size     int            // dense result length (root only)
	members  []memberUnpack // per grid member, in rank order (root only)
}

// memberUnpack holds one member's contribution layout on the root: the runs
// of the dense result its pack fills, in the member's pack order.
type memberUnpack struct {
	n    int
	runs []sched.Run
}

// gatherPlanFor compiles (or returns the cached) gather plan of this view
// for the given root index.
func (a *Array) gatherPlanFor(me, rootIdx int) *gatherPlan {
	if pl, ok := a.gatherPlans[rootIdx]; ok {
		return pl
	}
	pl := &gatherPlan{}
	a.ownedWalk(func(idx []int, off int) {
		pl.packRuns = appendRun(pl.packRuns, off)
		pl.n++
	})
	if me == rootIdx {
		pl.root = true
		nd := a.Dims()
		ext := make([]int, nd)
		pl.size = 1
		for d := 0; d < nd; d++ {
			ext[d] = a.Extent(d)
			pl.size *= ext[d]
		}
		pl.members = make([]memberUnpack, a.grid.Size())
		for m := range pl.members {
			mu := &pl.members[m]
			mu.runs = make([]sched.Run, 0, 8)
			a.memberOwnedEach(m, func(idx []int) {
				off := 0
				for d := 0; d < nd; d++ {
					off = off*ext[d] + idx[d]
				}
				mu.runs = appendRun(mu.runs, off)
				mu.n++
			})
		}
	}
	if a.gatherPlans == nil {
		a.gatherPlans = make(map[int]*gatherPlan)
	}
	a.gatherPlans[rootIdx] = pl
	return pl
}

// gatherToScheduled replays the compiled gather plan: members pack owned
// runs into a pooled buffer and ship it; the root unpacks every member's
// message (and its own staged pack) into the dense result via the compiled
// runs. Traffic is bit-identical to gatherToDirect.
func (a *Array) gatherToScheduled(sc machine.Scope, rootIdx int) []float64 {
	st := a.st
	g := a.grid
	p := st.p
	me, ok := g.Index(p.Rank())
	if !ok {
		panic("darray: GatherTo caller not in the array's grid")
	}
	pl := a.gatherPlanFor(me, rootIdx)
	pack := func() []float64 {
		buf := p.AcquireBuf(pl.n)
		k := 0
		for _, r := range pl.packRuns {
			k += copy(buf[k:], st.data[r.Off:r.Off+r.Len])
		}
		return buf
	}
	if me != rootIdx {
		p.SendOwned(g.RankAt(rootIdx), sc.Tag(uint16(me)), pack())
		return nil
	}
	out := make([]float64, pl.size)
	for m := 0; m < g.Size(); m++ {
		mu := &pl.members[m]
		var buf []float64
		if m == me {
			buf = pack()
		} else {
			buf = p.Recv(g.RankAt(m), sc.Tag(uint16(m)))
		}
		if len(buf) != mu.n {
			panic(fmt.Sprintf("darray: GatherTo: member %d sent %d values, want %d", m, len(buf), mu.n))
		}
		k := 0
		for _, r := range mu.runs {
			k += copy(out[r.Off:r.Off+r.Len], buf[k:k+r.Len])
		}
		p.ReleaseBuf(buf)
	}
	return out
}

// --- Redistribute --------------------------------------------------------

// layoutSig returns a string identifying everything a compiled move
// schedule depends on for this processor: the root grid's rank mapping
// (shape, origin, strides), and per store dimension the extent,
// distribution (type and parameters), halo width and section fixing. Two
// views with equal signatures produce identical pack/move/unpack layouts on
// this processor, so the signature pair keys the Redistribute schedule
// cache. The signature is memoized on the view.
func (a *Array) layoutSig() string {
	if a.sig != "" {
		return a.sig
	}
	st := a.st
	g := st.rootGrid
	var sb strings.Builder
	base := g.RankAt(0)
	fmt.Fprintf(&sb, "g%v@%d", g.Shape(), base)
	// Recover the grid's per-dimension rank strides (sliced grids keep
	// parent strides, so shape and origin alone do not pin the mapping).
	coord := make([]int, g.Dims())
	for d := 0; d < g.Dims(); d++ {
		if g.Extent(d) > 1 {
			coord[d] = 1
			fmt.Fprintf(&sb, "s%d", g.Rank(coord...)-base)
			coord[d] = 0
		}
	}
	for sd := range st.extents {
		fmt.Fprintf(&sb, ";%d:%T%v:h%d:f%d",
			st.extents[sd], st.dists[sd], st.dists[sd], st.halo[sd], a.pfix[sd])
	}
	a.sig = sb.String()
	return a.sig
}

// moveCacheKey is the Proc.Scratch key of the per-processor Redistribute
// schedule cache.
type moveCacheKey struct{}

// moveScheduleFor returns the compiled move schedule for src -> dst,
// caching it per (source layout, destination layout) pair in the
// processor's scratch. Redistribute builds a fresh destination array per
// call, but ping-pong redistribution (an out-of-place FFT transpose, say)
// cycles between the same two layouts — the second and every later trip
// replays the first trip's schedule instead of re-deriving the data motion.
func moveScheduleFor(src, dst *Array) *sched.Schedule {
	cache := src.st.p.Scratch(moveCacheKey{}, func() any {
		return make(map[string]*sched.Schedule)
	}).(map[string]*sched.Schedule)
	key := src.layoutSig() + ">" + dst.layoutSig()
	if s, ok := cache[key]; ok {
		return s
	}
	s := compileMove(src, dst)
	cache[key] = s
	return s
}

// compileMove is the Redistribute inspector: it derives, once, the complete
// data motion from src's layout to dst's — per-destination pack runs in
// ascending rank order, local moves for cells staying on this processor,
// and per-source unpack runs in ascending rank order — so the executor
// replays plain copies. The message sequence matches moveContentsDirect
// exactly.
func compileMove(src, dst *Array) *sched.Schedule {
	p := src.st.p
	n := p.Size()
	self := p.Rank()
	s := &sched.Schedule{}

	outRuns := make([][]sched.Run, n)
	outN := make([]int, n)
	if src.Participates() && src.isCanonicalOwner() {
		src.ownedWalk(func(idx []int, off int) {
			for _, r := range dst.holderRanks(idx) {
				outRuns[r] = appendRun(outRuns[r], off)
				outN[r]++
			}
		})
	}
	for r := 0; r < n; r++ {
		if r == self || outRuns[r] == nil {
			continue
		}
		s.Sends = append(s.Sends, sched.Msg{Peer: r, Part: 0, N: outN[r], Runs: outRuns[r]})
	}

	if !dst.Participates() {
		return s
	}
	inRuns := make([][]sched.Run, n)
	inN := make([]int, n)
	var order []int
	dst.ownedWalk(func(idx []int, off int) {
		r := src.canonicalRank(idx)
		if inRuns[r] == nil {
			order = append(order, r)
		}
		inRuns[r] = appendRun(inRuns[r], off)
		inN[r]++
	})
	sortInts(order)
	for _, r := range order {
		if r == self {
			zipMoves(s, outRuns[self], inRuns[self])
			continue
		}
		s.Recvs = append(s.Recvs, sched.Msg{Peer: r, Part: 0, N: inN[r], Runs: inRuns[r]})
	}
	return s
}

// zipMoves pairs the k-th element of the sender-order source runs with the
// k-th element of the receiver-order destination runs — both enumerate the
// same cell set in row-major global order — and emits merged local moves.
func zipMoves(s *sched.Schedule, srcRuns, dstRuns []sched.Run) {
	si, so, di, do := 0, 0, 0, 0
	for si < len(srcRuns) && di < len(dstRuns) {
		sr, dr := srcRuns[si], dstRuns[di]
		n := minI(sr.Len-so, dr.Len-do)
		s.AddMove(sr.Off+so, dr.Off+do, n)
		so += n
		do += n
		if so == sr.Len {
			si, so = si+1, 0
		}
		if do == dr.Len {
			di, do = di+1, 0
		}
	}
}
