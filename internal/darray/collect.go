package darray

import (
	"fmt"

	"repro/internal/dist"
	"repro/internal/machine"
	"repro/internal/sched"
	"repro/internal/topology"
)

// ownedWalk visits every owned element of the view in row-major global
// order, passing the global index of the free dimensions (a reused slice)
// and the element's position in the flat local storage. It is the engine
// under OwnedEach, Fill, FillOwned, OwnedRuns, CopyOwned1 and SetOwned1:
// indices and offsets advance incrementally from the cached per-dimension
// access data, so one visit costs O(1) and a steady-state walk allocates
// nothing. Visitors must not start another owned walk on the same view
// (the walk scratch is per-view).
func (a *Array) ownedWalk(visit func(idx []int, off int)) {
	nfree := len(a.acc)
	if nfree == 0 {
		visit(nil, a.fixedOff) // fully fixed section: a single owned cell
		return
	}
	for k := range a.acc {
		if a.acc[k].lsize == 0 {
			return // empty local block: nothing owned
		}
	}
	if a.walkIdx == nil {
		a.bindWalkScratch(nfree)
	}
	idx, loc := a.walkIdx, a.walkLoc
	off := a.fixedOff
	for k := range a.acc {
		ax := &a.acc[k]
		loc[k] = 0
		idx[k] = ax.globalOf(0)
		off += ax.halo * ax.stride
	}
	for {
		visit(idx, off)
		k := nfree - 1
		for k >= 0 {
			ax := &a.acc[k]
			loc[k]++
			off += ax.stride
			if loc[k] < ax.lsize {
				if ax.kind == axGeneral {
					idx[k] = ax.globalOf(loc[k])
				} else {
					idx[k]++
				}
				break
			}
			off -= ax.lsize * ax.stride
			loc[k] = 0
			idx[k] = ax.globalOf(0)
			k--
		}
		if k < 0 {
			return
		}
	}
}

// OwnedEach visits every element of the array (or section) owned by the
// calling processor, in row-major global order, passing the global index of
// the free dimensions. The index slice is reused between calls.
func (a *Array) OwnedEach(visit func(idx []int)) {
	a.mustParticipate()
	a.ownedWalk(func(idx []int, off int) { visit(idx) })
}

// OwnedRuns visits the calling processor's owned elements as contiguous
// storage runs, in row-major global order: vals is the backing storage of
// one run, whose first element has global index idx (of the free
// dimensions; the slice is reused between visits), and vals[k] is the
// element with global index idx[last]+k along the last free dimension.
// Writes through vals update the array directly, so initialization from a
// dense source is one copy per run instead of one variadic Set per element.
// Runs span the last free dimension when it is stride-1 in storage and
// contiguously owned; otherwise (a section fixing the innermost storage
// dimension, or a cyclic innermost dimension) runs degenerate to single
// elements.
func (a *Array) OwnedRuns(visit func(idx []int, vals []float64)) {
	a.mustParticipate()
	st := a.st
	nfree := len(a.acc)
	if nfree == 0 {
		visit(nil, st.data[a.fixedOff:a.fixedOff+1])
		return
	}
	inner := &a.acc[nfree-1]
	if inner.stride != 1 || inner.kind == axGeneral {
		a.ownedWalk(func(idx []int, off int) { visit(idx, st.data[off:off+1]) })
		return
	}
	for k := range a.acc {
		if a.acc[k].lsize == 0 {
			return
		}
	}
	if a.walkIdx == nil {
		a.bindWalkScratch(nfree)
	}
	idx, loc := a.walkIdx, a.walkLoc
	off := a.fixedOff
	for k := range a.acc {
		ax := &a.acc[k]
		loc[k] = 0
		idx[k] = ax.globalOf(0)
		off += ax.halo * ax.stride
	}
	n := inner.lsize
	for {
		visit(idx, st.data[off:off+n])
		k := nfree - 2
		for k >= 0 {
			ax := &a.acc[k]
			loc[k]++
			off += ax.stride
			if loc[k] < ax.lsize {
				if ax.kind == axGeneral {
					idx[k] = ax.globalOf(loc[k])
				} else {
					idx[k]++
				}
				break
			}
			off -= ax.lsize * ax.stride
			loc[k] = 0
			idx[k] = ax.globalOf(0)
			k--
		}
		if k < 0 {
			return
		}
	}
}

// ownedGlobal returns the global index of the l-th owned element of store
// dim sd on the calling processor.
func (a *Array) ownedGlobal(sd, l int) int {
	st := a.st
	if st.axisOf[sd] < 0 {
		return l
	}
	q := st.coord[st.axisOf[sd]]
	P := st.rootGrid.Extent(st.axisOf[sd])
	return st.dists[sd].ToGlobal(l, q, st.extents[sd], P)
}

// Fill sets every owned element to f(idx). No communication is performed;
// for replicated (Star) dimensions every holder computes its own copy, so f
// must be deterministic in idx. Fill is FillOwned under its original name.
func (a *Array) Fill(f func(idx []int) float64) { a.FillOwned(f) }

// FillOwned sets every owned element to f(idx) with direct run-based
// storage writes: the walk advances indices and offsets incrementally, so
// initialization costs O(1) per element instead of a variadic Set (with its
// per-element ownership scan and offset derivation) per element.
func (a *Array) FillOwned(f func(idx []int) float64) {
	a.mustParticipate()
	data := a.st.data
	a.ownedWalk(func(idx []int, off int) { data[off] = f(idx) })
}

// Zero sets every owned element (and the halo cells) to zero.
func (a *Array) Zero() {
	a.mustParticipate()
	if a.isRoot() {
		for i := range a.st.data {
			a.st.data[i] = 0
		}
		return
	}
	a.OwnedEach(func(idx []int) { a.Set(0, idx...) })
}

func (a *Array) isRoot() bool {
	for _, f := range a.pfix {
		if f >= 0 {
			return false
		}
	}
	return true
}

// Snapshot copies the processor's local block (including halo cells) into a
// shadow buffer readable through Old. It implements the copy-in half of the
// doall loop's copy-in/copy-out semantics: reads during the loop see the
// values from before the loop. Snapshots are local and cost no messages.
//
// Snapshot affects the whole underlying array, so a snapshot taken through a
// section is visible through the parent and vice versa.
func (a *Array) Snapshot() {
	a.mustParticipate()
	st := a.st
	if len(st.shadow) != len(st.data) {
		st.shadow = make([]float64, len(st.data))
	}
	copy(st.shadow, st.data)
	st.snapOn = true
}

// Old returns the snapshotted value at the given global index; it panics if
// no snapshot is active.
func (a *Array) Old(idx ...int) float64 {
	a.mustParticipate()
	if !a.st.snapOn {
		panic("darray: Old without an active Snapshot")
	}
	return a.st.shadow[a.offset(idx)]
}

// Old1, Old2, Old3 are arity-specific fast paths for Old, mirroring
// At1/At2/At3.
func (a *Array) Old1(i int) float64 {
	if len(a.acc) == 1 && a.st.snapOn {
		return a.st.shadow[a.fixedOff+a.roff(0, i)]
	}
	return a.Old(i)
}

func (a *Array) Old2(i, j int) float64 {
	if len(a.acc) == 2 && a.st.snapOn {
		return a.st.shadow[a.fixedOff+a.roff(0, i)+a.roff(1, j)]
	}
	return a.Old(i, j)
}

func (a *Array) Old3(i, j, k int) float64 {
	if len(a.acc) == 3 && a.st.snapOn {
		return a.st.shadow[a.fixedOff+a.roff(0, i)+a.roff(1, j)+a.roff(2, k)]
	}
	return a.Old(i, j, k)
}

// OwnedSpan returns the inclusive global index range of free dimension d
// owned by the calling processor, and reports whether ownership of that
// dimension forms a single contiguous range (true for Star and Contiguous
// distributions, false for Cyclic). Non-participants and empty local
// blocks get an empty span (lo > hi). It is the query the strip-mined
// doall loops use to iterate owned indices directly instead of scanning
// the whole range with ownership tests.
func (a *Array) OwnedSpan(d int) (lo, hi int, contiguous bool) {
	if !a.participates {
		return 0, -1, true
	}
	st := a.st
	sd := a.storeDim(d)
	if st.axisOf[sd] < 0 {
		return 0, st.extents[sd] - 1, true
	}
	if _, ok := st.dists[sd].(dist.Contiguous); !ok {
		return 0, -1, false
	}
	return st.lower[sd], st.lower[sd] + st.lsize[sd] - 1, true
}

// ReleaseSnapshot deactivates the snapshot. The shadow buffer is kept for
// the next Snapshot, so iterative loops snapshot without reallocating.
func (a *Array) ReleaseSnapshot() { a.st.snapOn = false }

// CopyOwned1 copies the calling processor's owned elements of a
// one-dimensional array (or section) into dst, in ascending global order,
// and returns the number of elements copied. It is how kernel routines
// obtain a contiguous working vector from a possibly strided section.
func (a *Array) CopyOwned1(dst []float64) int {
	if a.Dims() != 1 {
		panic("darray: CopyOwned1 requires a 1-D array or section")
	}
	n, owned := 0, 0
	a.OwnedRuns(func(idx []int, vals []float64) {
		owned += len(vals)
		n += copy(dst[n:], vals)
	})
	if n != owned {
		panic(fmt.Sprintf("darray: CopyOwned1 dst holds %d of %d owned elements", len(dst), owned))
	}
	return n
}

// SetOwned1 stores src into the calling processor's owned elements of a
// one-dimensional array (or section), in ascending global order.
func (a *Array) SetOwned1(src []float64) {
	if a.Dims() != 1 {
		panic("darray: SetOwned1 requires a 1-D array or section")
	}
	n, owned := 0, 0
	a.OwnedRuns(func(idx []int, vals []float64) {
		owned += len(vals)
		n += copy(vals, src[n:])
	})
	if n != len(src) || n != owned {
		panic(fmt.Sprintf("darray: SetOwned1 wrote %d of %d values over %d owned elements", n, len(src), owned))
	}
}

// IndexRuns1 compiles a list of owned global indices of a one-dimensional
// array (or section) into contiguous storage runs, merging adjacent
// offsets: a sorted index list over a contiguously owned stride-1
// dimension collapses into O(gaps) runs, while strided layouts (a cyclic
// dimension, a section with a fixed innermost dimension) degenerate to
// per-index runs. It is the inspector half behind run-coalesced irregular
// serves: compile once, then PackRuns per pass. Every index must be owned
// by the calling processor.
func (a *Array) IndexRuns1(indices []int) []sched.Run {
	a.mustParticipate()
	if a.Dims() != 1 {
		panic("darray: IndexRuns1 requires a 1-D array or section")
	}
	if len(indices) == 0 {
		return nil
	}
	runs := make([]sched.Run, 0, 8)
	for _, i := range indices {
		runs = appendRun(runs, a.fixedOff+a.woff(0, i))
	}
	return runs
}

// PackRuns copies the values of the given storage runs into dst in run
// order — the executor half of a compiled irregular serve — and returns
// the number of values copied. dst must hold them all.
func (a *Array) PackRuns(runs []sched.Run, dst []float64) int {
	a.mustParticipate()
	data := a.st.data
	k := 0
	for _, r := range runs {
		k += copy(dst[k:], data[r.Off:r.Off+r.Len])
	}
	return k
}

// GatherTo assembles the full array (or section) on the processor at
// row-major index rootIdx of the array's grid, returning a dense row-major
// slice of the free dimensions there and nil on all other processors. Every
// participant must call it with the same scope. Replicated (Star)
// dimensions are taken from each holder; holders must agree.
//
// The pack and unpack layouts are compiled once per (view, root) into a
// cached gather plan; each call replays the plan, so iterative collection
// performs no per-call derivation (the dense result on the root is the only
// steady-state allocation).
func (a *Array) GatherTo(sc machine.Scope, rootIdx int) []float64 {
	a.mustParticipate()
	if scheduling {
		return a.gatherToScheduled(sc, rootIdx)
	}
	return a.gatherToDirect(sc, rootIdx)
}

// gatherToDirect is the uncompiled reference path: it interleaves layout
// derivation with the data motion on every call. The scheduled path must
// produce bit-identical traffic; the equivalence suite holds it to that.
func (a *Array) gatherToDirect(sc machine.Scope, rootIdx int) []float64 {
	st := a.st
	g := a.grid
	me, ok := g.Index(st.p.Rank())
	if !ok {
		panic("darray: GatherTo caller not in the array's grid")
	}
	rootRank := g.RankAt(rootIdx)

	// Pack owned values in OwnedEach order.
	var buf []float64
	a.OwnedEach(func(idx []int) {
		buf = append(buf, a.At(idx...))
	})
	if me != rootIdx {
		st.p.Send(rootRank, sc.Tag(uint16(me)), buf)
		return nil
	}

	// Root: allocate the dense result and scatter every member's pack.
	nd := a.Dims()
	ext := make([]int, nd)
	size := 1
	for d := 0; d < nd; d++ {
		ext[d] = a.Extent(d)
		size *= ext[d]
	}
	out := make([]float64, size)
	for m := 0; m < g.Size(); m++ {
		var pack []float64
		if m == me {
			pack = buf
		} else {
			pack = st.p.Recv(g.RankAt(m), sc.Tag(uint16(m)))
		}
		k := 0
		a.memberOwnedEach(m, func(idx []int) {
			off := 0
			for d := 0; d < nd; d++ {
				off = off*ext[d] + idx[d]
			}
			out[off] = pack[k]
			k++
		})
		if k != len(pack) {
			panic(fmt.Sprintf("darray: GatherTo: member %d sent %d values, want %d", m, len(pack), k))
		}
	}
	return out
}

// memberOwnedEach visits the global indices (free dims) owned by the grid
// member with row-major index m, in the same order that member's OwnedEach
// would visit them.
func (a *Array) memberOwnedEach(m int, visit func(idx []int)) {
	st := a.st
	rank := a.grid.RankAt(m)
	coord, ok := st.rootGrid.CoordOf(rank)
	if !ok {
		panic("darray: grid member outside root grid")
	}
	nd := 0
	for _, f := range a.pfix {
		if f < 0 {
			nd++
		}
	}
	if nd == 0 {
		return
	}
	// One backing array for the walk's four per-dimension slices.
	walk := make([]int, 4*nd)
	free := walk[0*nd : 1*nd]
	sizes := walk[1*nd : 2*nd]
	locals := walk[2*nd : 3*nd]
	idx := walk[3*nd : 4*nd]
	k := 0
	for sd, f := range a.pfix {
		if f < 0 {
			free[k] = sd
			k++
		}
	}
	for k, sd := range free {
		if st.axisOf[sd] < 0 {
			sizes[k] = st.extents[sd]
		} else {
			q := coord[st.axisOf[sd]]
			P := st.rootGrid.Extent(st.axisOf[sd])
			sizes[k] = st.dists[sd].Size(q, st.extents[sd], P)
		}
		if sizes[k] == 0 {
			return
		}
	}
	for {
		for k, sd := range free {
			if st.axisOf[sd] < 0 {
				idx[k] = locals[k]
			} else {
				q := coord[st.axisOf[sd]]
				P := st.rootGrid.Extent(st.axisOf[sd])
				idx[k] = st.dists[sd].ToGlobal(locals[k], q, st.extents[sd], P)
			}
		}
		visit(idx)
		d := nd - 1
		for d >= 0 {
			locals[d]++
			if locals[d] < sizes[d] {
				break
			}
			locals[d] = 0
			d--
		}
		if d < 0 {
			return
		}
	}
}

// Redistribute copies the array's contents into a new array with the given
// grid and spec, moving every element from its current owner to its new
// owner(s) by message passing. Every processor that participates in either
// the source or the destination must call Redistribute with the same
// arguments and scope; the new array is returned on all callers.
//
// This is the mechanism behind the paper's claim C3: changing a dist clause
// is a one-line change, and the "compiler" (here, this routine) re-derives
// all communication.
//
// The move schedule is compiled once per (source layout, destination
// layout) pair and cached on the processor, so repeated ping-pong
// redistribution between two layouts (an out-of-place FFT transpose, say)
// replays the compiled data motion instead of re-deriving it per call.
func (a *Array) Redistribute(sc machine.Scope, g *topology.Grid, spec Spec) *Array {
	b := NewOn(a.st.p, g, spec)
	moveContents(sc, a, b)
	return b
}

func moveContents(sc machine.Scope, src, dst *Array) {
	if src.Dims() != dst.Dims() {
		panic("darray: redistribute dimensionality mismatch")
	}
	for d := 0; d < src.Dims(); d++ {
		if src.Extent(d) != dst.Extent(d) {
			panic(fmt.Sprintf("darray: redistribute extent mismatch in dim %d: %d vs %d", d, src.Extent(d), dst.Extent(d)))
		}
	}
	if scheduling {
		s := moveScheduleFor(src, dst)
		var srcData, dstData []float64
		if src.st.member {
			srcData = src.st.data
		}
		if dst.st.member {
			dstData = dst.st.data
		}
		s.Execute(src.st.p, sc, srcData, dstData)
		return
	}
	moveContentsDirect(sc, src, dst)
}

// moveContentsDirect is the uncompiled reference path for Redistribute.
func moveContentsDirect(sc machine.Scope, src, dst *Array) {
	p := src.st.p

	// Sender side: enumerate cells this processor canonically owns in
	// src, group by destination rank in dst's layout. Cells staying on
	// this processor move by local copy, not by message — a compiler
	// would never ship local data through the network.
	outgoing := make(map[int][]float64)
	if src.Participates() && src.isCanonicalOwner() {
		src.OwnedEach(func(idx []int) {
			v := src.At(idx...)
			for _, r := range dst.holderRanks(idx) {
				outgoing[r] = append(outgoing[r], v)
			}
		})
	}
	// Deterministic send order: ascending destination rank.
	self := p.Rank()
	for r := 0; r < p.Size(); r++ {
		if buf, ok := outgoing[r]; ok && r != self {
			p.Send(r, sc.Tag(uint16(0)), buf)
		}
	}

	// Receiver side: enumerate cells this processor holds in dst, find
	// each cell's canonical source rank, and unpack per-source buffers in
	// the sender's iteration order.
	if !dst.Participates() {
		return
	}
	type cellRef struct {
		off int
	}
	incomingOrder := make(map[int][]cellRef)
	var srcOrder []int
	dst.OwnedEach(func(idx []int) {
		r := src.canonicalRank(idx)
		if _, seen := incomingOrder[r]; !seen {
			srcOrder = append(srcOrder, r)
		}
		incomingOrder[r] = append(incomingOrder[r], cellRef{off: dst.offset(idx)})
	})
	// Receives may be completed in any order; use ascending source rank
	// for determinism of the virtual-time trace.
	sortInts(srcOrder)
	for _, r := range srcOrder {
		var buf []float64
		if r == p.Rank() {
			buf = outgoing[r] // local copy, no message
		} else {
			buf = p.Recv(r, sc.Tag(uint16(0)))
		}
		cells := incomingOrder[r]
		if len(buf) != len(cells) {
			panic(fmt.Sprintf("darray: redistribute: got %d values from rank %d, want %d", len(buf), r, len(cells)))
		}
		for i, c := range cells {
			dst.st.data[c.off] = buf[i]
		}
	}
}

// isCanonicalOwner reports whether the calling processor is the canonical
// owner of its owned cells: for arrays with at least one distributed
// dimension this is every participant; for fully replicated arrays it is
// the grid origin only.
func (a *Array) isCanonicalOwner() bool {
	for sd := range a.st.extents {
		if a.st.axisOf[sd] >= 0 {
			return true
		}
	}
	return a.grid.RankAt(0) == a.st.p.Rank()
}

// canonicalRank returns the machine rank of the canonical owner of the cell
// at global index idx (free dims).
func (a *Array) canonicalRank(idx []int) int {
	st := a.st
	coord := make([]int, st.rootGrid.Dims())
	k := 0
	for sd, f := range a.pfix {
		g := f
		if f < 0 {
			g = idx[k]
			k++
		}
		if st.axisOf[sd] >= 0 {
			coord[st.axisOf[sd]] = st.dists[sd].Owner(g, st.extents[sd], st.rootGrid.Extent(st.axisOf[sd]))
		}
	}
	return st.rootGrid.Rank(coord...)
}

// holderRanks returns the machine ranks of every processor holding the cell
// at global index idx: one rank per cell for fully distributed arrays, all
// grid members for replicated dimensions' fan-out.
func (a *Array) holderRanks(idx []int) []int {
	st := a.st
	// Determine which axes are pinned by ownership and which are free
	// (replicated): axes not used by any dim are free.
	used := make([]bool, st.rootGrid.Dims())
	coord := make([]int, st.rootGrid.Dims())
	k := 0
	for sd, f := range a.pfix {
		g := f
		if f < 0 {
			g = idx[k]
			k++
		}
		if st.axisOf[sd] >= 0 {
			used[st.axisOf[sd]] = true
			coord[st.axisOf[sd]] = st.dists[sd].Owner(g, st.extents[sd], st.rootGrid.Extent(st.axisOf[sd]))
		}
	}
	ranks := []int{}
	var expand func(ax int)
	expand = func(ax int) {
		if ax == st.rootGrid.Dims() {
			ranks = append(ranks, st.rootGrid.Rank(coord...))
			return
		}
		if used[ax] {
			expand(ax + 1)
			return
		}
		for q := 0; q < st.rootGrid.Extent(ax); q++ {
			coord[ax] = q
			expand(ax + 1)
		}
		coord[ax] = 0
	}
	expand(0)
	return ranks
}

// NewOn is New with an explicit grid; it exists so Redistribute can build
// the target array. (New already takes a grid; NewOn is an alias kept for
// call-site clarity.)
func NewOn(p *machine.Proc, g *topology.Grid, spec Spec) *Array { return New(p, g, spec) }

// ReplicatedSpec returns a Spec for a fully replicated array of the given
// extents (every dimension Star), the analogue of an undecorated KF1 array.
func ReplicatedSpec(extents ...int) Spec {
	ds := make([]dist.Dist, len(extents))
	for i := range ds {
		ds[i] = dist.Star{}
	}
	return Spec{Extents: extents, Dists: ds}
}

func sortInts(s []int) {
	for i := 1; i < len(s); i++ {
		for j := i; j > 0 && s[j-1] > s[j]; j-- {
			s[j-1], s[j] = s[j], s[j-1]
		}
	}
}
