package darray

import (
	"testing"
	"testing/quick"

	"repro/internal/dist"
	"repro/internal/machine"
	"repro/internal/topology"
)

// run executes body on an n-processor simulated machine and fails the test
// on error.
func run(t *testing.T, n int, body func(p *machine.Proc) error) *machine.Machine {
	t.Helper()
	m := machine.New(n, machine.ZeroComm())
	if err := m.Run(body); err != nil {
		t.Fatal(err)
	}
	return m
}

func TestBlock1DOwnership(t *testing.T) {
	g := topology.New1D(4)
	run(t, 4, func(p *machine.Proc) error {
		a := New(p, g, Spec{Extents: []int{16}, Dists: []dist.Dist{dist.Block{}}})
		if a.Lower(0) != p.Rank()*4 || a.Upper(0) != p.Rank()*4+3 {
			t.Errorf("rank %d: [%d,%d]", p.Rank(), a.Lower(0), a.Upper(0))
		}
		if a.LocalSize(0) != 4 {
			t.Errorf("rank %d: local size %d", p.Rank(), a.LocalSize(0))
		}
		return nil
	})
}

func TestSetAtRoundTrip(t *testing.T) {
	g := topology.New1D(3)
	run(t, 3, func(p *machine.Proc) error {
		a := New(p, g, Spec{Extents: []int{10}, Dists: []dist.Dist{dist.Block{}}})
		for i := a.Lower(0); i <= a.Upper(0); i++ {
			a.Set1(i, float64(i*i))
		}
		for i := a.Lower(0); i <= a.Upper(0); i++ {
			if a.At1(i) != float64(i*i) {
				t.Errorf("At1(%d) = %v", i, a.At1(i))
			}
		}
		return nil
	})
}

func TestUnownedAccessPanics(t *testing.T) {
	g := topology.New1D(2)
	run(t, 2, func(p *machine.Proc) error {
		a := New(p, g, Spec{Extents: []int{8}, Dists: []dist.Dist{dist.Block{}}})
		other := (a.Lower(0) + 4) % 8
		func() {
			defer func() {
				if recover() == nil {
					t.Errorf("rank %d: reading unowned %d did not panic", p.Rank(), other)
				}
			}()
			a.At1(other)
		}()
		return nil
	})
}

func TestHaloWriteRejected(t *testing.T) {
	g := topology.New1D(2)
	run(t, 2, func(p *machine.Proc) error {
		a := New(p, g, Spec{Extents: []int{8}, Dists: []dist.Dist{dist.Block{}}, Halo: []int{1}})
		ghost := a.Lower(0) - 1
		if p.Rank() == 0 {
			ghost = a.Upper(0) + 1
		}
		func() {
			defer func() {
				if recover() == nil {
					t.Errorf("rank %d: writing ghost %d did not panic", p.Rank(), ghost)
				}
			}()
			a.Set1(ghost, 1)
		}()
		return nil
	})
}

func TestExchangeHalo1D(t *testing.T) {
	g := topology.New1D(4)
	sc := machine.RootScope()
	run(t, 4, func(p *machine.Proc) error {
		a := New(p, g, Spec{Extents: []int{16}, Dists: []dist.Dist{dist.Block{}}, Halo: []int{1}})
		a.Fill(func(idx []int) float64 { return float64(idx[0]) })
		a.ExchangeHalo(sc)
		if lo := a.Lower(0); lo > 0 {
			if got := a.At1(lo - 1); got != float64(lo-1) {
				t.Errorf("rank %d: ghost %d = %v", p.Rank(), lo-1, got)
			}
		}
		if hi := a.Upper(0); hi < 15 {
			if got := a.At1(hi + 1); got != float64(hi+1) {
				t.Errorf("rank %d: ghost %d = %v", p.Rank(), hi+1, got)
			}
		}
		return nil
	})
}

func TestExchangeHalo2D(t *testing.T) {
	g := topology.New(2, 2)
	sc := machine.RootScope()
	run(t, 4, func(p *machine.Proc) error {
		a := New(p, g, Spec{
			Extents: []int{8, 8},
			Dists:   []dist.Dist{dist.Block{}, dist.Block{}},
			Halo:    []int{1, 1},
		})
		a.Fill(func(idx []int) float64 { return float64(idx[0]*100 + idx[1]) })
		a.ExchangeHalo(sc)
		// Every interior neighbor read inside the halo must now work.
		for i := a.Lower(0); i <= a.Upper(0); i++ {
			for j := a.Lower(1); j <= a.Upper(1); j++ {
				for _, d := range [][2]int{{1, 0}, {-1, 0}, {0, 1}, {0, -1}} {
					ni, nj := i+d[0], j+d[1]
					if ni < 0 || ni > 7 || nj < 0 || nj > 7 {
						continue
					}
					if got := a.At2(ni, nj); got != float64(ni*100+nj) {
						t.Errorf("rank %d: At(%d,%d) = %v", p.Rank(), ni, nj, got)
					}
				}
			}
		}
		return nil
	})
}

func TestExchangeHaloWide(t *testing.T) {
	// Halo width 2 with blocks of size 2: ghosts span exactly one
	// neighbor each side, but a width-3 halo would span two owners; use
	// width 2 across 4 procs of block 2 so runs stay single-owner, then
	// width 3 over larger blocks to cross owners.
	g := topology.New1D(4)
	sc := machine.RootScope()
	run(t, 4, func(p *machine.Proc) error {
		a := New(p, g, Spec{Extents: []int{8}, Dists: []dist.Dist{dist.Block{}}, Halo: []int{3}})
		a.Fill(func(idx []int) float64 { return float64(idx[0] + 1) })
		a.ExchangeHalo(sc)
		lo, hi := a.Lower(0), a.Upper(0)
		for i := lo - 3; i <= hi+3; i++ {
			if i < 0 || i > 7 {
				continue
			}
			if got := a.At1(i); got != float64(i+1) {
				t.Errorf("rank %d: At(%d) = %v, want %v", p.Rank(), i, got, float64(i+1))
			}
		}
		return nil
	})
}

func TestStarDimensionReplicated(t *testing.T) {
	g := topology.New1D(2)
	run(t, 2, func(p *machine.Proc) error {
		a := New(p, g, Spec{
			Extents: []int{4, 6},
			Dists:   []dist.Dist{dist.Star{}, dist.Block{}},
		})
		// Star dim: every processor holds all i for its owned j's.
		for i := 0; i < 4; i++ {
			for j := a.Lower(1); j <= a.Upper(1); j++ {
				a.Set2(i, j, float64(i+10*j))
			}
		}
		for i := 0; i < 4; i++ {
			for j := a.Lower(1); j <= a.Upper(1); j++ {
				if a.At2(i, j) != float64(i+10*j) {
					t.Errorf("At(%d,%d) = %v", i, j, a.At2(i, j))
				}
			}
		}
		if a.Lower(0) != 0 || a.Upper(0) != 3 {
			t.Errorf("star bounds [%d,%d]", a.Lower(0), a.Upper(0))
		}
		return nil
	})
}

func TestReplicatedArray(t *testing.T) {
	g := topology.New(2, 2)
	run(t, 4, func(p *machine.Proc) error {
		a := New(p, g, ReplicatedSpec(5))
		for i := 0; i < 5; i++ {
			a.Set1(i, float64(i))
		}
		for i := 0; i < 5; i++ {
			if a.At1(i) != float64(i) {
				t.Errorf("replicated At(%d) = %v", i, a.At1(i))
			}
		}
		return nil
	})
}

func TestSectionOfTwoDim(t *testing.T) {
	g := topology.New(2, 2)
	run(t, 4, func(p *machine.Proc) error {
		a := New(p, g, Spec{
			Extents: []int{8, 8},
			Dists:   []dist.Dist{dist.Block{}, dist.Block{}},
		})
		a.Fill(func(idx []int) float64 { return float64(idx[0]*100 + idx[1]) })
		// Row section a(3, *): owned by grid row of owner(3) = 0.
		row := a.Section(0, 3)
		wantPart := a.Owns(3, a.Lower(1))
		if row.Participates() != wantPart {
			t.Errorf("rank %d: row participation %v, want %v", p.Rank(), row.Participates(), wantPart)
		}
		if row.Participates() {
			if row.Dims() != 1 || row.Extent(0) != 8 {
				t.Errorf("row dims/extent: %d/%d", row.Dims(), row.Extent(0))
			}
			for j := row.Lower(0); j <= row.Upper(0); j++ {
				if row.At1(j) != float64(300+j) {
					t.Errorf("row.At(%d) = %v", j, row.At1(j))
				}
			}
			// Writes through the section land in the parent.
			row.Set1(row.Lower(0), -1)
			if a.At2(3, row.Lower(0)) != -1 {
				t.Error("section write not visible through parent")
			}
		}
		return nil
	})
}

func TestSectionOfSection(t *testing.T) {
	g := topology.New(2, 2)
	run(t, 4, func(p *machine.Proc) error {
		a := New(p, g, Spec{
			Extents: []int{4, 6, 8},
			Dists:   []dist.Dist{dist.Star{}, dist.Block{}, dist.Block{}},
		})
		a.Fill(func(idx []int) float64 {
			return float64(idx[0]*1000 + idx[1]*100 + idx[2])
		})
		plane := a.Section(2, 5) // fixes k=5: subgrid column
		if plane.Participates() {
			line := plane.Section(1, 2) // fixes j=2: singleton
			if line.Participates() {
				for i := 0; i < 4; i++ {
					if line.At1(i) != float64(i*1000+200+5) {
						t.Errorf("line.At(%d) = %v", i, line.At1(i))
					}
				}
			}
		}
		return nil
	})
}

func TestSectionGridBinding(t *testing.T) {
	g := topology.New(2, 3)
	run(t, 6, func(p *machine.Proc) error {
		a := New(p, g, Spec{
			Extents: []int{6, 9},
			Dists:   []dist.Dist{dist.Block{}, dist.Block{}},
		})
		// Section fixing dim 0 at i=4: owner along axis 0 is
		// Block.Owner(4, 6, 2) = 1, so the section's grid is grid row 1.
		s := a.Section(0, 4)
		wantRanks := g.Slice(1, topology.All).Ranks()
		gotRanks := s.Grid().Ranks()
		if len(gotRanks) != len(wantRanks) {
			t.Fatalf("section grid size %d, want %d", len(gotRanks), len(wantRanks))
		}
		for i := range wantRanks {
			if gotRanks[i] != wantRanks[i] {
				t.Errorf("section grid rank[%d] = %d, want %d", i, gotRanks[i], wantRanks[i])
			}
		}
		return nil
	})
}

func TestSnapshotOldValues(t *testing.T) {
	g := topology.New1D(2)
	run(t, 2, func(p *machine.Proc) error {
		a := New(p, g, Spec{Extents: []int{8}, Dists: []dist.Dist{dist.Block{}}})
		a.Fill(func(idx []int) float64 { return float64(idx[0]) })
		a.Snapshot()
		for i := a.Lower(0); i <= a.Upper(0); i++ {
			a.Set1(i, -1)
		}
		for i := a.Lower(0); i <= a.Upper(0); i++ {
			if a.Old1(i) != float64(i) {
				t.Errorf("Old(%d) = %v", i, a.Old1(i))
			}
			if a.At1(i) != -1 {
				t.Errorf("At(%d) = %v", i, a.At1(i))
			}
		}
		a.ReleaseSnapshot()
		return nil
	})
}

func TestGatherTo(t *testing.T) {
	g := topology.New(2, 2)
	sc := machine.RootScope()
	run(t, 4, func(p *machine.Proc) error {
		a := New(p, g, Spec{
			Extents: []int{6, 6},
			Dists:   []dist.Dist{dist.Block{}, dist.Block{}},
		})
		a.Fill(func(idx []int) float64 { return float64(idx[0]*10 + idx[1]) })
		flat := a.GatherTo(sc, 0)
		if p.Rank() == 0 {
			if len(flat) != 36 {
				t.Fatalf("gathered %d values", len(flat))
			}
			for i := 0; i < 6; i++ {
				for j := 0; j < 6; j++ {
					if flat[i*6+j] != float64(i*10+j) {
						t.Errorf("flat[%d,%d] = %v", i, j, flat[i*6+j])
					}
				}
			}
		} else if flat != nil {
			t.Errorf("rank %d: non-nil gather result", p.Rank())
		}
		return nil
	})
}

func TestCopySetOwned1(t *testing.T) {
	g := topology.New1D(3)
	run(t, 3, func(p *machine.Proc) error {
		a := New(p, g, Spec{Extents: []int{10}, Dists: []dist.Dist{dist.Block{}}})
		a.Fill(func(idx []int) float64 { return float64(idx[0] * 2) })
		buf := make([]float64, a.LocalSize(0))
		n := a.CopyOwned1(buf)
		if n != a.LocalSize(0) {
			t.Fatalf("copied %d", n)
		}
		for k := 0; k < n; k++ {
			if buf[k] != float64((a.Lower(0)+k)*2) {
				t.Errorf("buf[%d] = %v", k, buf[k])
			}
			buf[k] += 1
		}
		a.SetOwned1(buf[:n])
		if a.At1(a.Lower(0)) != float64(a.Lower(0)*2+1) {
			t.Error("SetOwned1 did not write back")
		}
		return nil
	})
}

func TestRedistributeBlockToCyclic(t *testing.T) {
	g := topology.New1D(4)
	sc := machine.RootScope()
	run(t, 4, func(p *machine.Proc) error {
		a := New(p, g, Spec{Extents: []int{17}, Dists: []dist.Dist{dist.Block{}}})
		a.Fill(func(idx []int) float64 { return float64(idx[0] * 3) })
		b := a.Redistribute(sc, g, Spec{Extents: []int{17}, Dists: []dist.Dist{dist.Cyclic{}}})
		b.OwnedEach(func(idx []int) {
			if b.At(idx...) != float64(idx[0]*3) {
				t.Errorf("rank %d: b[%d] = %v", p.Rank(), idx[0], b.At(idx...))
			}
		})
		return nil
	})
}

func TestRedistributeAcrossGridShapes(t *testing.T) {
	// (block, block) on 2x2  ->  (*, block) on 1x4 : the paper's C3
	// distribution experiment in miniature.
	sc := machine.RootScope()
	run(t, 4, func(p *machine.Proc) error {
		g2 := topology.New(2, 2)
		g1 := topology.New1D(4)
		a := New(p, g2, Spec{
			Extents: []int{8, 8},
			Dists:   []dist.Dist{dist.Block{}, dist.Block{}},
		})
		a.Fill(func(idx []int) float64 { return float64(idx[0]*8 + idx[1]) })
		b := a.Redistribute(sc, g1, Spec{
			Extents: []int{8, 8},
			Dists:   []dist.Dist{dist.Star{}, dist.Block{}},
		})
		b.OwnedEach(func(idx []int) {
			if b.At(idx...) != float64(idx[0]*8+idx[1]) {
				t.Errorf("rank %d: b[%d,%d] = %v", p.Rank(), idx[0], idx[1], b.At(idx...))
			}
		})
		return nil
	})
}

func TestRedistributePreservesContentsProperty(t *testing.T) {
	f := func(nRaw uint8, seed int64) bool {
		n := int(nRaw%40) + 4
		ok := true
		m := machine.New(4, machine.ZeroComm())
		err := m.Run(func(p *machine.Proc) error {
			g := topology.New1D(4)
			sc := machine.RootScope()
			a := New(p, g, Spec{Extents: []int{n}, Dists: []dist.Dist{dist.Block{}}})
			a.Fill(func(idx []int) float64 {
				return float64((int64(idx[0])*2654435761 + seed) % 1000)
			})
			b := a.Redistribute(sc, g, Spec{Extents: []int{n}, Dists: []dist.Dist{dist.Cyclic{}}})
			c := b.Redistribute(sc.Child(1, 0), g, Spec{Extents: []int{n}, Dists: []dist.Dist{dist.Block{}}})
			c.OwnedEach(func(idx []int) {
				if c.At(idx...) != a.At(idx...) {
					ok = false
				}
			})
			return nil
		})
		return err == nil && ok
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 20}); err != nil {
		t.Fatal(err)
	}
}

func TestEmptyBlocksOnCoarseExtent(t *testing.T) {
	// Extent smaller than processor count: some blocks are empty; halo
	// exchange and gathers must still work.
	g := topology.New1D(8)
	sc := machine.RootScope()
	run(t, 8, func(p *machine.Proc) error {
		a := New(p, g, Spec{Extents: []int{3}, Dists: []dist.Dist{dist.Block{}}, Halo: []int{1}})
		a.Fill(func(idx []int) float64 { return float64(idx[0] + 7) })
		a.ExchangeHalo(sc)
		if a.LocalSize(0) > 0 {
			lo, hi := a.Lower(0), a.Upper(0)
			if lo > 0 && a.At1(lo-1) != float64(lo-1+7) {
				t.Errorf("rank %d ghost lo", p.Rank())
			}
			if hi < 2 && a.At1(hi+1) != float64(hi+1+7) {
				t.Errorf("rank %d ghost hi", p.Rank())
			}
		}
		flat := a.GatherTo(sc.Child(9, 9), 0)
		if p.Rank() == 0 {
			for i := 0; i < 3; i++ {
				if flat[i] != float64(i+7) {
					t.Errorf("flat[%d] = %v", i, flat[i])
				}
			}
		}
		return nil
	})
}

func TestCyclicDistributionAccess(t *testing.T) {
	g := topology.New1D(3)
	run(t, 3, func(p *machine.Proc) error {
		a := New(p, g, Spec{Extents: []int{10}, Dists: []dist.Dist{dist.Cyclic{}}})
		a.Fill(func(idx []int) float64 { return float64(idx[0]) })
		count := 0
		a.OwnedEach(func(idx []int) {
			if idx[0]%3 != p.Rank() {
				t.Errorf("rank %d owns %d", p.Rank(), idx[0])
			}
			count++
		})
		want := dist.Cyclic{}.Size(p.Rank(), 10, 3)
		if count != want {
			t.Errorf("rank %d: %d owned, want %d", p.Rank(), count, want)
		}
		return nil
	})
}

func TestSpecValidation(t *testing.T) {
	g := topology.New(2, 2)
	run(t, 4, func(p *machine.Proc) error {
		cases := []Spec{
			{Extents: []int{8}, Dists: []dist.Dist{dist.Block{}}},                                   // 1 dist dim on 2-D grid
			{Extents: []int{8, 8}, Dists: []dist.Dist{dist.Block{}}},                                // arity mismatch
			{Extents: []int{8, 8, 8}, Dists: []dist.Dist{dist.Block{}, dist.Block{}, dist.Block{}}}, // 3 on 2-D grid
			{Extents: []int{8}, Dists: []dist.Dist{dist.Cyclic{}}, Halo: []int{1}},                  // halo on cyclic (wrong grid arity too)
		}
		for i, spec := range cases {
			func() {
				defer func() {
					if recover() == nil {
						t.Errorf("spec %d did not panic", i)
					}
				}()
				New(p, g, spec)
			}()
		}
		return nil
	})
}

func TestOwnerIndex(t *testing.T) {
	g := topology.New1D(4)
	run(t, 4, func(p *machine.Proc) error {
		a := New(p, g, Spec{Extents: []int{16}, Dists: []dist.Dist{dist.Block{}}})
		for i := 0; i < 16; i++ {
			if a.OwnerIndex(0, i) != i/4 {
				t.Errorf("OwnerIndex(%d) = %d", i, a.OwnerIndex(0, i))
			}
		}
		return nil
	})
}
