package darray

import (
	"testing"

	"repro/internal/dist"
	"repro/internal/machine"
	"repro/internal/sched"
	"repro/internal/topology"
)

// Redistribute compiles its move schedule per (source layout, destination
// layout) pair and caches it on the processor: an FFT-transpose-style
// ping-pong between a row and a column distribution must compile exactly
// two schedules on the first round trip and replay them on every later
// one. These tests pin the cache's existence (exact entry count), its
// payoff (second-and-later calls allocate strictly less than a compiling
// call) and its correctness (the round trip keeps restoring the data).
func TestRedistributeScheduleCache(t *testing.T) {
	g := topology.New1D(4)
	m := machine.New(4, machine.ZeroComm())
	rowSpec := Spec{
		Extents: []int{16, 12},
		Dists:   []dist.Dist{dist.Block{}, dist.Star{}},
	}
	colSpec := Spec{
		Extents: []int{16, 12},
		Dists:   []dist.Dist{dist.Star{}, dist.Block{}},
	}
	err := m.Run(func(p *machine.Proc) error {
		a := New(p, g, rowSpec)
		fillPattern(a)
		sc := machine.RootScope()
		it := 0
		pong := func() {
			b := a.Redistribute(sc.Child(it, 0), g, colSpec)
			a = b.Redistribute(sc.Child(it, 1), g, rowSpec)
			it++
		}
		pong() // first round trip compiles both directions

		cache := p.Scratch(moveCacheKey{}, func() any {
			return make(map[string]*sched.Schedule)
		}).(map[string]*sched.Schedule)
		if len(cache) != 2 {
			t.Errorf("after one round trip: %d cached schedules, want 2 (row->col, col->row)", len(cache))
		}

		warm := testing.AllocsPerRun(20, pong)
		if len(cache) != 2 {
			t.Errorf("after %d round trips: %d cached schedules, want still 2", it, len(cache))
		}
		cold := testing.AllocsPerRun(20, func() {
			for k := range cache {
				delete(cache, k)
			}
			pong()
		})
		if !(warm < cold) {
			t.Errorf("cached round trip allocates %v/op, no better than the compiling %v/op", warm, cold)
		}

		// The data survived every trip.
		bad := 0
		a.OwnedEach(func(idx []int) {
			want := 1.0
			for _, gi := range idx {
				want = want*1000 + float64(gi)
			}
			if a.At(idx...) != want {
				bad++
			}
		})
		if bad > 0 {
			t.Errorf("%d owned cells corrupted by ping-pong redistribution", bad)
		}
		return nil
	})
	if err != nil {
		t.Fatal(err)
	}
}

// TestLayoutSigDiscriminates pins the cache key: views that must not share
// a schedule get distinct signatures, equal layouts get equal ones.
func TestLayoutSigDiscriminates(t *testing.T) {
	g := topology.New(2, 2)
	m := machine.New(4, machine.ZeroComm())
	err := m.Run(func(p *machine.Proc) error {
		mk := func(spec Spec) *Array { return New(p, g, spec) }
		blockBlock := Spec{
			Extents: []int{8, 8},
			Dists:   []dist.Dist{dist.Block{}, dist.Block{}},
		}
		a := mk(blockBlock)
		b := mk(blockBlock)
		if a.layoutSig() != b.layoutSig() {
			t.Error("identical layouts got distinct signatures")
		}
		variants := []Spec{
			{Extents: []int{8, 9}, Dists: []dist.Dist{dist.Block{}, dist.Block{}}},
			{Extents: []int{8, 8}, Dists: []dist.Dist{dist.Cyclic{}, dist.Block{}}},
			{Extents: []int{8, 8}, Dists: []dist.Dist{dist.Block{}, dist.Block{}}, Halo: []int{1, 0}},
			{Extents: []int{8, 8}, Dists: []dist.Dist{dist.BlockAligned{RootExtent: 16, Stride: 2}, dist.Block{}}},
			{Extents: []int{8, 8}, Dists: []dist.Dist{dist.BlockAligned{RootExtent: 32, Stride: 4}, dist.Block{}}},
		}
		seen := map[string]bool{a.layoutSig(): true}
		for i, spec := range variants {
			s := mk(spec).layoutSig()
			if seen[s] {
				t.Errorf("variant %d: signature collides with a different layout", i)
			}
			seen[s] = true
		}
		// A section differs from its parent, and from its sibling.
		if s := a.Section(0, 1).layoutSig(); seen[s] {
			t.Error("section signature collides with a root layout")
		} else if s == a.Section(0, 2).layoutSig() {
			t.Error("distinct sections share a signature")
		}
		return nil
	})
	if err != nil {
		t.Fatal(err)
	}
}
