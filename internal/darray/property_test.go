package darray

import (
	"testing"
	"testing/quick"

	"repro/internal/dist"
	"repro/internal/machine"
	"repro/internal/topology"
)

// denseRef is a host-side dense mirror used as the oracle for metamorphic
// tests: whatever the distributed array does, the dense array must agree.
type denseRef struct {
	ext  []int
	data []float64
}

func newDense(ext ...int) *denseRef {
	n := 1
	for _, e := range ext {
		n *= e
	}
	return &denseRef{ext: append([]int(nil), ext...), data: make([]float64, n)}
}

func (d *denseRef) off(idx ...int) int {
	o := 0
	for k, e := range d.ext {
		o = o*e + idx[k]
	}
	return o
}

func (d *denseRef) set(v float64, idx ...int) { d.data[d.off(idx...)] = v }
func (d *denseRef) at(idx ...int) float64     { return d.data[d.off(idx...)] }

func TestSectionsAgreeWithDenseReference(t *testing.T) {
	// Property: for random 3-D fill values, every composable section of
	// the distributed array reads exactly what the dense oracle holds.
	f := func(seed int64) bool {
		const nx, ny, nz = 5, 6, 8
		ref := newDense(nx, ny, nz)
		val := func(i, j, k int) float64 {
			x := uint64(seed) + uint64(i*100+j*10+k)*2654435761
			x ^= x >> 15
			return float64(x % 1009)
		}
		for i := 0; i < nx; i++ {
			for j := 0; j < ny; j++ {
				for k := 0; k < nz; k++ {
					ref.set(val(i, j, k), i, j, k)
				}
			}
		}
		ok := true
		m := machine.New(4, machine.ZeroComm())
		g := topology.New(2, 2)
		err := m.Run(func(p *machine.Proc) error {
			a := New(p, g, Spec{
				Extents: []int{nx, ny, nz},
				Dists:   []dist.Dist{dist.Star{}, dist.Block{}, dist.Block{}},
			})
			a.Fill(func(idx []int) float64 { return val(idx[0], idx[1], idx[2]) })
			// Plane sections at every k.
			for k := 0; k < nz; k++ {
				plane := a.Section(2, k)
				if !plane.Participates() {
					continue
				}
				plane.OwnedEach(func(idx []int) {
					if plane.At(idx...) != ref.at(idx[0], idx[1], k) {
						ok = false
					}
				})
				// Lines within the plane.
				for j := 0; j < ny; j++ {
					line := plane.Section(1, j)
					if !line.Participates() {
						continue
					}
					line.OwnedEach(func(idx []int) {
						if line.At(idx...) != ref.at(idx[0], j, k) {
							ok = false
						}
					})
				}
			}
			return nil
		})
		return err == nil && ok
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 10}); err != nil {
		t.Fatal(err)
	}
}

func TestSectionWritesFlowToParent(t *testing.T) {
	// Property: writing through a section then reading through the
	// parent (and vice versa) is coherent, for random write sets.
	f := func(seed int64) bool {
		const nx, ny = 6, 8
		ok := true
		m := machine.New(2, machine.ZeroComm())
		g := topology.New1D(2)
		err := m.Run(func(p *machine.Proc) error {
			a := New(p, g, Spec{
				Extents: []int{nx, ny},
				Dists:   []dist.Dist{dist.Star{}, dist.Block{}},
			})
			a.Zero()
			s := uint64(seed)
			for w := 0; w < 20; w++ {
				s = s*6364136223846793005 + 1442695040888963407
				i := int(s>>33) % nx
				j := int(s>>13) % ny
				v := float64(s % 97)
				row := a.Section(0, i)
				if row.Owns(j) {
					row.Set1(j, v)
					if a.At2(i, j) != v {
						ok = false
					}
				}
				if a.Owns(i, j) {
					a.Set2(i, j, v+1)
					if a.Section(0, i).At1(j) != v+1 {
						ok = false
					}
				}
			}
			return nil
		})
		return err == nil && ok
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 15}); err != nil {
		t.Fatal(err)
	}
}

func TestExchangeRandomHaloWidths(t *testing.T) {
	// Property: after an exchange with halo width h, every in-range
	// neighbor read within distance h returns the true global value.
	f := func(hRaw, pRaw uint8) bool {
		h := int(hRaw%3) + 1
		procs := []int{2, 4, 8}[pRaw%3]
		const n = 24
		ok := true
		m := machine.New(procs, machine.ZeroComm())
		g := topology.New1D(procs)
		err := m.Run(func(p *machine.Proc) error {
			a := New(p, g, Spec{
				Extents: []int{n},
				Dists:   []dist.Dist{dist.Block{}},
				Halo:    []int{h},
			})
			a.Fill(func(idx []int) float64 { return float64(idx[0]*idx[0] + 1) })
			a.ExchangeHalo(machine.RootScope())
			lo, hi := a.Lower(0), a.Upper(0)
			for i := lo - h; i <= hi+h; i++ {
				if i < 0 || i >= n {
					continue
				}
				if a.At1(i) != float64(i*i+1) {
					ok = false
				}
			}
			return nil
		})
		return err == nil && ok
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 30}); err != nil {
		t.Fatal(err)
	}
}

func TestSnapshotThroughSection(t *testing.T) {
	m := machine.New(2, machine.ZeroComm())
	g := topology.New1D(2)
	err := m.Run(func(p *machine.Proc) error {
		a := New(p, g, Spec{
			Extents: []int{4, 8},
			Dists:   []dist.Dist{dist.Star{}, dist.Block{}},
		})
		a.Fill(func(idx []int) float64 { return float64(idx[0]*10 + idx[1]) })
		row := a.Section(0, 2)
		row.Snapshot() // snapshots the whole store
		for j := row.Lower(0); j <= row.Upper(0); j++ {
			row.Set1(j, -1)
		}
		for j := row.Lower(0); j <= row.Upper(0); j++ {
			if row.Old1(j) != float64(20+j) {
				t.Errorf("Old through section: %v", row.Old1(j))
			}
			if a.Old2(2, j) != float64(20+j) {
				t.Errorf("Old through parent: %v", a.Old2(2, j))
			}
		}
		a.ReleaseSnapshot()
		return nil
	})
	if err != nil {
		t.Fatal(err)
	}
}

func TestRedistributeRandomGridShapes(t *testing.T) {
	// Property: moving a 2-D array between random grid shapes and
	// distribution mixes preserves every element.
	shapes := [][2]int{{1, 4}, {4, 1}, {2, 2}}
	f := func(aRaw, bRaw, seed uint8) bool {
		const n = 12
		src := shapes[aRaw%3]
		dst := shapes[bRaw%3]
		ok := true
		m := machine.New(4, machine.ZeroComm())
		err := m.Run(func(p *machine.Proc) error {
			gs := topology.New(src[0], src[1])
			gd := topology.New(dst[0], dst[1])
			a := New(p, gs, Spec{
				Extents: []int{n, n},
				Dists:   []dist.Dist{dist.Block{}, dist.Block{}},
			})
			a.Fill(func(idx []int) float64 {
				return float64((idx[0]*n + idx[1]) * int(seed+1) % 251)
			})
			b := a.Redistribute(machine.RootScope().Child(0, int(seed)), gd, Spec{
				Extents: []int{n, n},
				Dists:   []dist.Dist{dist.Cyclic{}, dist.Block{}},
			})
			b.OwnedEach(func(idx []int) {
				want := float64((idx[0]*n + idx[1]) * int(seed+1) % 251)
				if b.At(idx...) != want {
					ok = false
				}
			})
			return nil
		})
		return err == nil && ok
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 20}); err != nil {
		t.Fatal(err)
	}
}

func TestRedistributeToReplicated(t *testing.T) {
	// Fan-out: block -> fully replicated; every processor ends with the
	// whole array.
	m := machine.New(4, machine.ZeroComm())
	g := topology.New1D(4)
	err := m.Run(func(p *machine.Proc) error {
		a := New(p, g, Spec{Extents: []int{10}, Dists: []dist.Dist{dist.Block{}}})
		a.Fill(func(idx []int) float64 { return float64(idx[0] + 100) })
		b := a.Redistribute(machine.RootScope(), g, ReplicatedSpec(10))
		for i := 0; i < 10; i++ {
			if b.At1(i) != float64(i+100) {
				t.Errorf("rank %d: b[%d] = %v", p.Rank(), i, b.At1(i))
			}
		}
		return nil
	})
	if err != nil {
		t.Fatal(err)
	}
}

func TestBlockAlignedHaloCoversInterpolationReads(t *testing.T) {
	// The invariant the multigrid transfers rely on: for every fine index
	// j owned by a processor, the aligned coarse indices (j-1)/2 and
	// (j+1)/2 are owned or within halo 1 — including processors whose
	// coarse blocks are empty.
	f := func(pRaw uint8) bool {
		procs := []int{2, 4, 8}[pRaw%3]
		const fineN = 17 // coarse 9
		ok := true
		m := machine.New(procs, machine.ZeroComm())
		g := topology.New1D(procs)
		err := m.Run(func(p *machine.Proc) error {
			fine := New(p, g, Spec{
				Extents: []int{fineN},
				Dists:   []dist.Dist{dist.Block{}},
				Halo:    []int{1},
			})
			coarse := New(p, g, Spec{
				Extents: []int{9},
				Dists:   []dist.Dist{dist.BlockAligned{RootExtent: fineN, Stride: 2}},
				Halo:    []int{1},
			})
			coarse.Fill(func(idx []int) float64 { return float64(idx[0] * 3) })
			coarse.ExchangeHalo(machine.RootScope())
			for j := fine.Lower(0); j <= fine.Upper(0); j++ {
				if j == 0 || j == fineN-1 {
					continue
				}
				var reads []int
				if j%2 == 0 {
					reads = []int{j / 2}
				} else {
					reads = []int{(j - 1) / 2, (j + 1) / 2}
				}
				for _, jc := range reads {
					if coarse.At1(jc) != float64(jc*3) {
						ok = false
					}
				}
			}
			return nil
		})
		return err == nil && ok
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 15}); err != nil {
		t.Fatal(err)
	}
}
