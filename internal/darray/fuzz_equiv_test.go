package darray

import (
	"fmt"
	"testing"

	"repro/internal/dist"
	"repro/internal/machine"
	"repro/internal/topology"
)

// Randomized schedule-equivalence suite: hundreds of seeded cases draw a
// grid, an array layout (Block/Cyclic/BlockAligned/Star dimensions, random
// extents and halos, optional sections) and a program built from
// ExchangeHalo, GatherTo and Redistribute, then require the compiled
// schedule replay to be bit-identical — values, message counts, byte
// counts, per-processor virtual times — to the direct derivation it was
// compiled from. This is the fuzz layer over the hand-picked cases in
// sched_equiv_test.go: layouts nobody thought to write down still must not
// diverge.

// fzRng is a splitmix64 generator; cases derive everything from one seed so
// every simulated processor (and both runs of a case) sees one layout.
type fzRng struct{ s uint64 }

func (r *fzRng) next() uint64 {
	r.s += 0x9e3779b97f4a7c15
	z := r.s
	z = (z ^ (z >> 30)) * 0xbf58476d1ce4e5b9
	z = (z ^ (z >> 27)) * 0x94d049bb133111eb
	return z ^ (z >> 31)
}

func (r *fzRng) intn(n int) int { return int(r.next() % uint64(n)) }

// fzCase is one generated scenario, fixed before the machine runs.
type fzCase struct {
	gridShape  []int
	spec       Spec
	respec     Spec // redistribute target (same extents)
	secDim     int  // dimension fixed by the section op, -1 for none
	secIdx     int
	gatherRoot int
	seed       uint64
}

// genCase draws a random but always-legal scenario: the number of non-Star
// dimensions equals the grid dimensionality (or is zero), halos only sit on
// contiguous distributions.
func genCase(r *fzRng) fzCase {
	gdims := 1 + r.intn(2)
	shape := make([]int, gdims)
	for i := range shape {
		shape[i] = 2 + r.intn(2)
	}
	nd := gdims + r.intn(4-gdims)
	if nd > 3 {
		nd = 3
	}

	drawDists := func(withHalo bool) ([]dist.Dist, []int) {
		// Choose which dims carry the grid axes: gdims distinct dims,
		// in ascending order (axes are assigned in dim order).
		distributed := make([]bool, nd)
		if r.intn(10) > 0 { // 10%: fully replicated (all Star)
			left := gdims
			for d := 0; d < nd; d++ {
				if left > 0 && (nd-d == left || r.intn(2) == 1) {
					distributed[d] = true
					left--
				}
			}
		}
		dists := make([]dist.Dist, nd)
		halos := make([]int, nd)
		for d := 0; d < nd; d++ {
			if !distributed[d] {
				dists[d] = dist.Star{}
				continue
			}
			switch r.intn(4) {
			case 0, 1:
				dists[d] = dist.Block{}
			case 2:
				dists[d] = dist.Cyclic{}
			case 3:
				s := 2 << r.intn(2) // stride 2 or 4
				dists[d] = dist.BlockAligned{RootExtent: 0, Stride: s}
			}
			if _, contig := dists[d].(dist.Contiguous); contig && withHalo {
				halos[d] = r.intn(3)
			}
		}
		return dists, halos
	}

	extents := make([]int, nd)
	for d := range extents {
		extents[d] = 1 + r.intn(12)
	}
	bindAligned := func(dists []dist.Dist) {
		for d, dd := range dists {
			if ba, ok := dd.(dist.BlockAligned); ok {
				ba.RootExtent = extents[d] * ba.Stride
				dists[d] = ba
			}
		}
	}
	dists, halos := drawDists(true)
	bindAligned(dists)
	reDists, reHalos := drawDists(true)
	bindAligned(reDists)

	gsize := 1
	for _, s := range shape {
		gsize *= s
	}
	c := fzCase{
		gridShape:  shape,
		spec:       Spec{Extents: extents, Dists: dists, Halo: halos},
		respec:     Spec{Extents: extents, Dists: reDists, Halo: reHalos},
		secDim:     -1,
		gatherRoot: r.intn(gsize),
		seed:       r.next(),
	}
	if nd >= 2 && r.intn(2) == 1 {
		c.secDim = r.intn(nd)
		c.secIdx = r.intn(extents[c.secDim])
	}
	return c
}

// runFzCase executes the scenario's collectives on one processor and
// returns everything observable: local blocks (ghosts included) after each
// phase and every gather result.
func (c fzCase) run(p *machine.Proc, g *topology.Grid) []float64 {
	sc := machine.RootScope().Child(int(c.seed&0xffff), -1)
	a := New(p, g, c.spec)
	a.FillOwned(func(idx []int) float64 {
		v := float64(c.seed % 97)
		for _, i := range idx {
			v = v*31 + float64(i)
		}
		return v
	})

	haloed := false
	for d, h := range c.spec.Halo {
		if h > 0 && !isStar(c.spec.Dists[d]) {
			haloed = true
		}
	}
	var out []float64
	if haloed {
		a.ExchangeHalo(sc.Child(1, -1))
		// Mutate owned cells so the second exchange moves fresh data
		// through the same compiled schedule.
		a.FillOwned(func(idx []int) float64 { return a.At(idx...) + 1 })
		a.ExchangeHalo(sc.Child(2, -1))
		out = append(out, snapshotLocal(a)...)
	}

	if c.secDim >= 0 {
		sec := a.Section(c.secDim, c.secIdx)
		if sec.Participates() {
			secHalo := false
			for d, h := range c.spec.Halo {
				if d != c.secDim && h > 0 && !isStar(c.spec.Dists[d]) {
					secHalo = true
				}
			}
			if secHalo {
				sec.ExchangeHalo(sc.Child(3, -1))
			}
			if got := sec.GatherTo(sc.Child(4, -1), 0); got != nil {
				out = append(out, got...)
			}
		}
	}

	if got := a.GatherTo(sc.Child(5, -1), c.gatherRoot); got != nil {
		out = append(out, got...)
	}

	b := a.Redistribute(sc.Child(6, -1), g, c.respec)
	out = append(out, snapshotLocal(b)...)
	// Ping back to the original layout: the round trip must restore the
	// owned contents exactly.
	back := b.Redistribute(sc.Child(7, -1), g, c.spec)
	out = append(out, snapshotLocal(back)...)
	return out
}

func isStar(d dist.Dist) bool {
	_, ok := d.(dist.Star)
	return ok
}

func TestRandomizedScheduleEquivalence(t *testing.T) {
	cases := 250
	if testing.Short() {
		cases = 50
	}
	for ci := 0; ci < cases; ci++ {
		r := &fzRng{s: 0xC0FFEE ^ uint64(ci)*0x9e3779b97f4a7c15}
		c := genCase(r)
		name := fmt.Sprintf("case%03d/%v_%s", ci, c.gridShape, specName(c.spec))
		g := topology.New(c.gridShape...)
		assertEquivalent(t, name, g.Size(), func(p *machine.Proc) []float64 {
			return c.run(p, g)
		})
		if t.Failed() {
			t.Fatalf("stopping at first diverging case: %s", name)
		}
	}
}

// TestRandomizedCrossTransport runs a sample of the same scenarios on the
// federated transport and requires bit-identical outcomes versus the shared
// one — the darray-level face of the machine package's conformance battery.
func TestRandomizedCrossTransport(t *testing.T) {
	cases := 40
	if testing.Short() {
		cases = 10
	}
	for ci := 0; ci < cases; ci++ {
		r := &fzRng{s: 0xBEEF ^ uint64(ci)*0xbf58476d1ce4e5b9}
		c := genCase(r)
		g := topology.New(c.gridShape...)
		n := g.Size()
		run := func(m *machine.Machine) capture {
			cap := capture{
				clocks: make([]float64, n),
				stats:  make([]machine.Stats, n),
				data:   make([][]float64, n),
			}
			err := m.Run(func(p *machine.Proc) error {
				cap.data[p.Rank()] = c.run(p, g)
				return nil
			})
			if err != nil {
				t.Fatalf("case %d: %v", ci, err)
			}
			for i := 0; i < n; i++ {
				cap.clocks[i] = m.ProcClock(i)
				cap.stats[i] = m.ProcStats(i)
			}
			return cap
		}
		shared := run(machine.New(n, machine.IPSC2()))
		nodes := 1
		for _, cand := range []int{n, 2} {
			if n%cand == 0 && cand > 1 {
				nodes = cand
			}
		}
		fed := run(machine.NewFederated(n, nodes, machine.IPSC2()))
		for rk := 0; rk < n; rk++ {
			if shared.clocks[rk] != fed.clocks[rk] || shared.stats[rk] != fed.stats[rk] {
				t.Fatalf("case %d rank %d: federated transport diverged (clock %v vs %v)",
					ci, rk, shared.clocks[rk], fed.clocks[rk])
			}
			for k := range shared.data[rk] {
				if shared.data[rk][k] != fed.data[rk][k] {
					t.Fatalf("case %d rank %d: payload[%d] %v vs %v",
						ci, rk, k, shared.data[rk][k], fed.data[rk][k])
				}
			}
		}
	}
}

// specName renders a compact layout description for subtest names.
func specName(s Spec) string {
	out := ""
	for d, dd := range s.Dists {
		if d > 0 {
			out += ","
		}
		out += fmt.Sprintf("%d:%s", s.Extents[d], dd.Name())
		if s.Halo[d] > 0 {
			out += fmt.Sprintf("+h%d", s.Halo[d])
		}
	}
	return out
}
