package linalg

import (
	"math"
	"testing"

	"repro/internal/darray"
	"repro/internal/dist"
	"repro/internal/kf"
	"repro/internal/machine"
	"repro/internal/topology"
	"repro/internal/trace"
)

// randMatrix builds a diagonally dominant n x n matrix (row-major).
func randMatrix(seed uint64, n int) []float64 {
	a := make([]float64, n*n)
	s := seed
	next := func() float64 {
		s += 0x9e3779b97f4a7c15
		z := s
		z = (z ^ (z >> 30)) * 0xbf58476d1ce4e5b9
		z = (z ^ (z >> 27)) * 0x94d049bb133111eb
		z ^= z >> 31
		return float64(z%2000)/1000 - 1
	}
	for i := 0; i < n; i++ {
		rowSum := 0.0
		for j := 0; j < n; j++ {
			if i != j {
				a[i*n+j] = next()
				rowSum += math.Abs(a[i*n+j])
			}
		}
		a[i*n+i] = rowSum + 1 + math.Abs(next())
	}
	return a
}

// factorWith runs the distributed LU under the given column distribution
// and returns the gathered packed factors plus the machine for statistics.
func factorWith(t *testing.T, a []float64, n, p int, d dist.Dist, cost machine.CostModel, rec *trace.Recorder) ([]float64, *machine.Machine) {
	t.Helper()
	m := machine.New(p, cost)
	if rec != nil {
		m.SetSink(rec)
	}
	g := topology.New1D(p)
	var flat []float64
	err := kf.Exec(m, g, func(c *kf.Ctx) error {
		ad := c.NewArray(darray.Spec{
			Extents: []int{n, n},
			Dists:   []dist.Dist{dist.Star{}, d},
		})
		ad.Fill(func(idx []int) float64 { return a[idx[0]*n+idx[1]] })
		if err := LU(c, ad); err != nil {
			return err
		}
		out := ad.GatherTo(c.NextScope(), 0)
		if c.GridIndex() == 0 {
			flat = out
		}
		return nil
	})
	if err != nil {
		t.Fatal(err)
	}
	return flat, m
}

func residual(a, lu []float64, n int, seed uint64) float64 {
	// Solve A x = b via the factors and check the residual.
	b := make([]float64, n)
	for i := range b {
		b[i] = float64((int(seed)+i*7)%13) - 6
	}
	x := SolveFactored(lu, n, b)
	ax := MatVec(a, n, x)
	worst := 0.0
	for i := range b {
		if d := math.Abs(ax[i] - b[i]); d > worst {
			worst = d
		}
	}
	return worst
}

func TestLUFactorsSolveSystem(t *testing.T) {
	const n = 32
	a := randMatrix(5, n)
	for _, tc := range []struct {
		name string
		p    int
		d    dist.Dist
	}{
		{"block p=1", 1, dist.Block{}},
		{"block p=4", 4, dist.Block{}},
		{"cyclic p=4", 4, dist.Cyclic{}},
		{"cyclic p=3", 3, dist.Cyclic{}},
	} {
		lu, _ := factorWith(t, a, n, tc.p, tc.d, machine.ZeroComm(), nil)
		if r := residual(a, lu, n, 7); r > 1e-8 {
			t.Errorf("%s: residual %v", tc.name, r)
		}
	}
}

func TestLUBlockAndCyclicAgree(t *testing.T) {
	const n = 24
	a := randMatrix(11, n)
	luB, _ := factorWith(t, a, n, 4, dist.Block{}, machine.ZeroComm(), nil)
	luC, _ := factorWith(t, a, n, 4, dist.Cyclic{}, machine.ZeroComm(), nil)
	for i := range luB {
		if math.Abs(luB[i]-luC[i]) > 1e-10 {
			t.Fatalf("factor mismatch at %d: %v vs %v", i, luB[i], luC[i])
		}
	}
}

func TestCyclicBalancesLoadBetterThanBlock(t *testing.T) {
	// The paper's point: round-robin columns keep every processor busy
	// through the elimination; block columns retire processors early.
	const n, p = 96, 4
	a := randMatrix(3, n)
	recB := trace.NewRecorder(p)
	_, mB := factorWith(t, a, n, p, dist.Block{}, machine.Balanced(), recB)
	recC := trace.NewRecorder(p)
	_, mC := factorWith(t, a, n, p, dist.Cyclic{}, machine.Balanced(), recC)
	tB, tC := mB.Elapsed(), mC.Elapsed()
	if tC >= tB {
		t.Errorf("cyclic (%v) should beat block (%v) on LU", tC, tB)
	}
	// Busy-time imbalance (max/min over processors) should be far worse
	// under block.
	imbalance := func(rec *trace.Recorder) float64 {
		min, max := math.Inf(1), 0.0
		for q := 0; q < p; q++ {
			bt := rec.BusyTime(q)
			if bt < min {
				min = bt
			}
			if bt > max {
				max = bt
			}
		}
		return max / min
	}
	if imbalance(recB) < 1.5*imbalance(recC) {
		t.Errorf("block imbalance %v should far exceed cyclic %v",
			imbalance(recB), imbalance(recC))
	}
}

func TestLURejectsBadShapes(t *testing.T) {
	m := machine.New(2, machine.ZeroComm())
	g := topology.New1D(2)
	err := kf.Exec(m, g, func(c *kf.Ctx) error {
		bad := c.NewArray(darray.Spec{
			Extents: []int{4, 6},
			Dists:   []dist.Dist{dist.Star{}, dist.Block{}},
		})
		if err := LU(c, bad); err == nil {
			t.Error("non-square matrix accepted")
		}
		badRows := c.NewArray(darray.Spec{
			Extents: []int{4, 4},
			Dists:   []dist.Dist{dist.Block{}, dist.Star{}},
		})
		if err := LU(c, badRows); err == nil {
			t.Error("distributed rows accepted")
		}
		return nil
	})
	if err != nil {
		t.Fatal(err)
	}
}
