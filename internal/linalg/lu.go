// Package linalg implements distributed dense LU factorization with
// column-oriented elimination — the computation for which the paper singles
// out the cyclic distribution ("a cyclic distribution, especially useful in
// numerical linear algebra, in which the elements are distributed in a
// round-robin fashion across the processors").
//
// The matrix is stored with rows undistributed and columns distributed
// (dist (*, block) or (*, cyclic)) over a one-dimensional grid: each
// processor owns whole columns. Right-looking elimination proceeds over
// pivot columns; the pivot column's owner computes the multipliers and
// broadcasts them, and every processor updates its own columns to the
// right. Under a block distribution the processors owning early columns
// finish their work in the first steps and idle; under a cyclic
// distribution every processor keeps roughly (n-k)/p columns in play at
// every step. Experiment A3 measures the difference.
package linalg

import (
	"fmt"

	"repro/internal/coll"
	"repro/internal/darray"
	"repro/internal/dist"
	"repro/internal/kf"
)

// LU factorizes the n x n matrix stored in a (rows undistributed, columns
// distributed over the subroutine's one-dimensional grid) in place, without
// pivoting: afterwards a holds U on and above the diagonal and the
// multipliers of L below it. The matrix must admit an LU factorization
// without pivoting (for example, diagonally dominant). Every processor of
// c.G must call LU.
func LU(c *kf.Ctx, a *darray.Array) error {
	if a.Dims() != 2 {
		return fmt.Errorf("linalg: LU needs a 2-D matrix, got %d dims", a.Dims())
	}
	n := a.Extent(0)
	if a.Extent(1) != n {
		return fmt.Errorf("linalg: LU needs a square matrix, got %dx%d", n, a.Extent(1))
	}
	if _, isStar := a.Dist(0).(dist.Star); !isStar {
		return fmt.Errorf("linalg: LU expects undistributed rows (dist (*, ...))")
	}
	phase := c.NextScope()
	col := make([]float64, n)
	for k := 0; k < n-1; k++ {
		sc := phase.Child(0, k)
		rootIdx := a.OwnerIndex(1, k)
		if a.Owns(0, k) {
			// Owner computes the multipliers l(i,k) = a(i,k)/a(k,k)
			// and stores them in place.
			akk := a.At2(k, k)
			for i := k + 1; i < n; i++ {
				a.Set2(i, k, a.At2(i, k)/akk)
				col[i] = a.At2(i, k)
			}
			c.P.Compute(n - k - 1)
		}
		mult := coll.BroadcastSlice(c.P, c.G, sc, rootIdx, col[k+1:n])
		// Rank-1 update of the owned columns right of k.
		lo, hi := ownedColumnRange(a, k+1)
		for j := lo; j <= hi; j++ {
			if !a.Owns(0, j) {
				continue
			}
			akj := a.At2(k, j)
			if akj == 0 {
				continue
			}
			for i := k + 1; i < n; i++ {
				a.Set2(i, j, a.At2(i, j)-mult[i-k-1]*akj)
			}
			c.P.Compute(2 * (n - k - 1))
		}
	}
	return nil
}

// ownedColumnRange returns the inclusive range of global column indices at
// or after from that the calling processor could own. For block columns the
// owned range is contiguous; for cyclic it spans everything, with Owns
// filtering per column.
func ownedColumnRange(a *darray.Array, from int) (lo, hi int) {
	n := a.Extent(1)
	if _, contiguous := a.Dist(1).(dist.Contiguous); contiguous {
		lo, hi = a.Lower(1), a.Upper(1)
		if lo < from {
			lo = from
		}
		return lo, hi
	}
	return from, n - 1
}

// SolveFactored solves L·U·x = b given the packed factorization produced by
// LU, gathered densely (row-major) on one processor. It is a verification
// helper for tests and experiments, not a distributed kernel.
func SolveFactored(lu []float64, n int, b []float64) []float64 {
	y := append([]float64(nil), b...)
	// Forward: L has unit diagonal.
	for i := 1; i < n; i++ {
		for j := 0; j < i; j++ {
			y[i] -= lu[i*n+j] * y[j]
		}
	}
	// Backward.
	x := y
	for i := n - 1; i >= 0; i-- {
		for j := i + 1; j < n; j++ {
			x[i] -= lu[i*n+j] * x[j]
		}
		x[i] /= lu[i*n+i]
	}
	return x
}

// MatVec computes A·x for a dense row-major matrix, a test helper.
func MatVec(a []float64, n int, x []float64) []float64 {
	y := make([]float64, n)
	for i := 0; i < n; i++ {
		s := 0.0
		for j := 0; j < n; j++ {
			s += a[i*n+j] * x[j]
		}
		y[i] = s
	}
	return y
}
