// Package coll provides deterministic message-based collective operations
// over a processor grid: barrier, broadcast, reductions and gathers. All
// collectives are built from point-to-point sends along a binomial tree over
// the grid's row-major enumeration, so their virtual-time cost reflects what
// a real message-passing implementation would pay.
//
// Every processor in the grid must call the same collective with the same
// scope; scopes keep concurrent collectives on disjoint grids (and
// successive collectives on the same grid) from confusing each other's
// messages. Collectives derive their internal tags from structural positions
// only, so they compose safely with the kf runtime's scope discipline.
package coll

import (
	"repro/internal/machine"
	"repro/internal/topology"
)

// index returns p's row-major index within g, panicking if p is not a
// member: calling a collective from outside its grid is a programming error.
func index(p *machine.Proc, g *topology.Grid) int {
	idx, ok := g.Index(p.Rank())
	if !ok {
		panic("coll: processor is not a member of the collective's grid")
	}
	return idx
}

// Barrier synchronizes all processors of g: no processor leaves before every
// processor has entered. Virtual clocks are synchronized to the barrier's
// completion time by the message pattern itself (gather-to-root then
// broadcast).
func Barrier(p *machine.Proc, g *topology.Grid, sc machine.Scope) {
	AllReduce(p, g, sc, 0, func(a, b float64) float64 { return a })
}

// Reduce combines one value from every processor with op (assumed
// associative and commutative) and returns the result on the root (row-major
// index 0); other processors receive their partial value and must not use
// the result. The reduction runs up a binomial tree.
func Reduce(p *machine.Proc, g *topology.Grid, sc machine.Scope, v float64, op func(a, b float64) float64) float64 {
	me := index(p, g)
	n := g.Size()
	acc := v
	// Binomial tree: at round r, nodes with me % 2^(r+1) == 0 receive
	// from me + 2^r.
	for stride := 1; stride < n; stride *= 2 {
		if me%(2*stride) == 0 {
			src := me + stride
			if src < n {
				acc = op(acc, p.RecvValue(g.RankAt(src), sc.Tag(uint16(stride))))
			}
		} else {
			dst := me - stride
			p.SendValue(g.RankAt(dst), sc.Tag(uint16(stride)), acc)
			break
		}
	}
	return acc
}

// Broadcast sends v from the root (row-major index 0) down a binomial tree;
// every processor returns the root's value.
func Broadcast(p *machine.Proc, g *topology.Grid, sc machine.Scope, v float64) float64 {
	me := index(p, g)
	n := g.Size()
	// Find the highest stride at which this node receives.
	if me != 0 {
		stride := 1
		for ; me%(2*stride) == 0; stride *= 2 {
		}
		v = p.RecvValue(g.RankAt(me-stride), sc.Tag(uint16(0x8000)|uint16(stride)))
	}
	// Forward downward: strides below the receive stride.
	recvStride := 1
	if me != 0 {
		for ; me%(2*recvStride) == 0; recvStride *= 2 {
		}
	} else {
		for recvStride < n {
			recvStride *= 2
		}
	}
	for stride := recvStride / 2; stride >= 1; stride /= 2 {
		dst := me + stride
		if me%(2*stride) == 0 && dst < n {
			p.SendValue(g.RankAt(dst), sc.Tag(uint16(0x8000)|uint16(stride)), v)
		}
	}
	return v
}

// AllReduce combines one value from every processor with op and returns the
// combined result on all processors (reduce to root, then broadcast).
func AllReduce(p *machine.Proc, g *topology.Grid, sc machine.Scope, v float64, op func(a, b float64) float64) float64 {
	r := Reduce(p, g, sc, v, op)
	return Broadcast(p, g, sc, r)
}

// Sum is an AllReduce with addition.
func Sum(p *machine.Proc, g *topology.Grid, sc machine.Scope, v float64) float64 {
	return AllReduce(p, g, sc, v, func(a, b float64) float64 { return a + b })
}

// Max is an AllReduce with maximum.
func Max(p *machine.Proc, g *topology.Grid, sc machine.Scope, v float64) float64 {
	return AllReduce(p, g, sc, v, func(a, b float64) float64 {
		if a > b {
			return a
		}
		return b
	})
}

// GatherSlices collects a variable-length slice from every processor onto
// the root (row-major index 0), concatenated in row-major grid order. Only
// the root's return value is meaningful; other processors return nil.
// Lengths may differ across processors (they are sent along with the data).
func GatherSlices(p *machine.Proc, g *topology.Grid, sc machine.Scope, data []float64) [][]float64 {
	me := index(p, g)
	n := g.Size()
	if me != 0 {
		p.Send(g.RankAt(0), sc.Tag(uint16(me)), data)
		return nil
	}
	out := make([][]float64, n)
	out[0] = append([]float64(nil), data...)
	for i := 1; i < n; i++ {
		out[i] = p.Recv(g.RankAt(i), sc.Tag(uint16(i)))
	}
	return out
}

// BroadcastSlice sends data from the processor at row-major index root to
// every member of g, returning the broadcast values on all processors. The
// tree is rooted by index rotation, so any member may be the source.
func BroadcastSlice(p *machine.Proc, g *topology.Grid, sc machine.Scope, root int, data []float64) []float64 {
	me := index(p, g)
	n := g.Size()
	// Virtual index relative to the root.
	vme := (me - root + n) % n
	real := func(v int) int { return g.RankAt((v + root) % n) }
	if vme != 0 {
		stride := 1
		for ; vme%(2*stride) == 0; stride *= 2 {
		}
		data = p.Recv(real(vme-stride), sc.Tag(uint16(0x4000)|uint16(stride)))
		for s := stride / 2; s >= 1; s /= 2 {
			if vme+s < n {
				p.Send(real(vme+s), sc.Tag(uint16(0x4000)|uint16(s)), data)
			}
		}
		return data
	}
	top := 1
	for top < n {
		top *= 2
	}
	for s := top / 2; s >= 1; s /= 2 {
		if s < n {
			p.Send(real(s), sc.Tag(uint16(0x4000)|uint16(s)), data)
		}
	}
	return data
}
