package coll

import (
	"testing"
	"testing/quick"

	"repro/internal/machine"
	"repro/internal/topology"
)

func TestSumOverGrid(t *testing.T) {
	m := machine.New(8, machine.ZeroComm())
	g := topology.New1D(8)
	sc := machine.RootScope()
	err := m.Run(func(p *machine.Proc) error {
		got := Sum(p, g, sc, float64(p.Rank()+1))
		if got != 36 {
			t.Errorf("rank %d: sum = %v, want 36", p.Rank(), got)
		}
		return nil
	})
	if err != nil {
		t.Fatal(err)
	}
}

func TestMaxOverGrid(t *testing.T) {
	m := machine.New(5, machine.ZeroComm())
	g := topology.New1D(5)
	sc := machine.RootScope()
	err := m.Run(func(p *machine.Proc) error {
		got := Max(p, g, sc, float64((p.Rank()*3)%5))
		if got != 4 {
			t.Errorf("rank %d: max = %v, want 4", p.Rank(), got)
		}
		return nil
	})
	if err != nil {
		t.Fatal(err)
	}
}

func TestBroadcastFromRoot(t *testing.T) {
	m := machine.New(7, machine.ZeroComm())
	g := topology.New1D(7)
	sc := machine.RootScope()
	err := m.Run(func(p *machine.Proc) error {
		v := -1.0
		if p.Rank() == 0 {
			v = 42
		}
		if got := Broadcast(p, g, sc, v); got != 42 {
			t.Errorf("rank %d: broadcast = %v", p.Rank(), got)
		}
		return nil
	})
	if err != nil {
		t.Fatal(err)
	}
}

func TestCollectivesOnGridSlice(t *testing.T) {
	// A collective over one row of a 2-D grid must not involve (or
	// disturb) the other rows.
	m := machine.New(8, machine.ZeroComm())
	g := topology.New(2, 4)
	sc := machine.RootScope()
	err := m.Run(func(p *machine.Proc) error {
		coord, ok := g.CoordOf(p.Rank())
		if !ok {
			t.Fatalf("rank %d not in grid", p.Rank())
		}
		row := g.Slice(coord[0], topology.All)
		got := Sum(p, row, sc, 1)
		if got != 4 {
			t.Errorf("rank %d: row sum = %v, want 4", p.Rank(), got)
		}
		return nil
	})
	if err != nil {
		t.Fatal(err)
	}
}

func TestConcurrentDisjointCollectives(t *testing.T) {
	// Two rows run different numbers of collectives with per-phase
	// scopes; streams must not cross.
	m := machine.New(8, machine.ZeroComm())
	g := topology.New(2, 4)
	err := m.Run(func(p *machine.Proc) error {
		coord, _ := g.CoordOf(p.Rank())
		row := g.Slice(coord[0], topology.All)
		rounds := 1 + coord[0]*3
		for r := 0; r < rounds; r++ {
			sc := machine.RootScope().Child(r, coord[0])
			got := Sum(p, row, sc, float64(r))
			if got != float64(4*r) {
				t.Errorf("rank %d round %d: %v", p.Rank(), r, got)
			}
		}
		return nil
	})
	if err != nil {
		t.Fatal(err)
	}
}

func TestGatherSlices(t *testing.T) {
	m := machine.New(4, machine.ZeroComm())
	g := topology.New1D(4)
	sc := machine.RootScope()
	err := m.Run(func(p *machine.Proc) error {
		data := make([]float64, p.Rank()+1) // variable lengths
		for i := range data {
			data[i] = float64(p.Rank()*10 + i)
		}
		out := GatherSlices(p, g, sc, data)
		if p.Rank() == 0 {
			for r := 0; r < 4; r++ {
				if len(out[r]) != r+1 {
					t.Errorf("len(out[%d]) = %d", r, len(out[r]))
					continue
				}
				for i := range out[r] {
					if out[r][i] != float64(r*10+i) {
						t.Errorf("out[%d][%d] = %v", r, i, out[r][i])
					}
				}
			}
		} else if out != nil {
			t.Errorf("rank %d: non-nil gather", p.Rank())
		}
		return nil
	})
	if err != nil {
		t.Fatal(err)
	}
}

func TestBarrierSynchronizesClocks(t *testing.T) {
	m := machine.New(4, machine.Uniform())
	g := topology.New1D(4)
	sc := machine.RootScope()
	err := m.Run(func(p *machine.Proc) error {
		p.Compute(100 * (p.Rank() + 1)) // skewed clocks
		Barrier(p, g, sc)
		// After the barrier everyone's clock is at least the slowest
		// processor's pre-barrier clock.
		if p.Clock() < 400 {
			t.Errorf("rank %d: clock %v < 400 after barrier", p.Rank(), p.Clock())
		}
		return nil
	})
	if err != nil {
		t.Fatal(err)
	}
}

func TestNonMemberPanics(t *testing.T) {
	m := machine.New(4, machine.ZeroComm())
	g := topology.New1D(2) // ranks 0,1 only
	err := m.Run(func(p *machine.Proc) error {
		if p.Rank() >= 2 {
			defer func() {
				if recover() == nil {
					t.Errorf("rank %d: no panic", p.Rank())
				}
			}()
			Sum(p, g, machine.RootScope(), 1)
			return nil
		}
		Sum(p, g, machine.RootScope(), 1)
		return nil
	})
	if err != nil {
		t.Fatal(err)
	}
}

func TestSumPropertyRandomSizes(t *testing.T) {
	f := func(nRaw uint8) bool {
		n := int(nRaw%9) + 1
		m := machine.New(n, machine.ZeroComm())
		g := topology.New1D(n)
		sc := machine.RootScope()
		ok := true
		err := m.Run(func(p *machine.Proc) error {
			got := Sum(p, g, sc, float64(p.Rank()))
			want := float64(n*(n-1)) / 2
			if got != want {
				ok = false
			}
			return nil
		})
		return err == nil && ok
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 30}); err != nil {
		t.Fatal(err)
	}
}

func TestBroadcastSliceFromAnyRoot(t *testing.T) {
	m := machine.New(5, machine.ZeroComm())
	g := topology.New1D(5)
	err := m.Run(func(p *machine.Proc) error {
		for root := 0; root < 5; root++ {
			var data []float64
			if p.Rank() == root {
				data = []float64{float64(root), float64(root * 2), -1}
			}
			sc := machine.RootScope().Child(root, 77)
			got := BroadcastSlice(p, g, sc, root, data)
			if len(got) != 3 || got[0] != float64(root) || got[1] != float64(root*2) || got[2] != -1 {
				t.Errorf("rank %d root %d: got %v", p.Rank(), root, got)
			}
		}
		return nil
	})
	if err != nil {
		t.Fatal(err)
	}
}
