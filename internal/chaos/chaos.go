// Package chaos declares fault-injection scenarios for the simulated
// machine's transports and the reports they produce. A Scenario is pure
// data — message drop/delay/duplication rates, link brownout windows, node
// outage windows and the retry policy the runtime survives them with — read
// from a JSON file (kfbench -chaos scenario.json) or declared in code
// (core.Chaos). Everything a scenario injects is drawn from seeded,
// per-directed-pair PRNG streams, so a run under a given seed is exactly
// reproducible: the same messages are dropped, delayed and duplicated, the
// same retries fire, and the Report comes out bit-identical.
//
// The injection machinery itself lives in internal/machine (ChaosTransport,
// registered as "chaos:<base>"); this package holds only the configuration
// and reporting vocabulary so every layer — core options, experiments,
// kfbench flags — speaks the same one.
package chaos

import (
	"bytes"
	"encoding/json"
	"fmt"
	"os"
)

// Default retry policy, applied by WithDefaults when a scenario leaves the
// fields zero. The timescales suit the iPSC/2-like cost preset (350 us
// message latency): a lost message costs about three latencies before its
// first retransmission.
const (
	// DefaultRecvTimeout is the virtual time a receiver waits on a lost
	// message before the sender's retransmission is modeled as firing.
	DefaultRecvTimeout = 1e-3
	// DefaultRetryBackoff is the extra virtual delay added per further
	// failed retransmission (linear backoff).
	DefaultRetryBackoff = 5e-4
	// DefaultMaxRetries is the per-message retransmission budget; a
	// message still undelivered after this many retries aborts the run.
	DefaultMaxRetries = 8
)

// LinkFaults overrides the scenario-wide fault rates for one directed
// node pair (on a non-federating base transport every processor is its own
// node, so Src and Dst are processor ranks there). The override replaces
// all four rates for messages crossing that pair.
type LinkFaults struct {
	Src      int     `json:"src"`
	Dst      int     `json:"dst"`
	Drop     float64 `json:"drop"`
	Dup      float64 `json:"dup"`
	Delay    float64 `json:"delay"`
	DelayMax float64 `json:"delay_max"`
}

// Brownout is a windowed delay spike on a link: messages whose fault-free
// arrival falls inside [Start, End) virtual seconds pay Extra additional
// latency. Src or Dst of -1 matches any node.
type Brownout struct {
	Src   int     `json:"src"`
	Dst   int     `json:"dst"`
	Start float64 `json:"start"`
	End   float64 `json:"end"`
	Extra float64 `json:"extra"`
}

// Outage takes one node down for a virtual-time window: messages to or from
// its processors whose fault-free arrival falls inside [Start, End) are
// lost, and their retransmissions deliver no earlier than End — the node's
// restart.
type Outage struct {
	Node  int     `json:"node"`
	Start float64 `json:"start"`
	End   float64 `json:"end"`
}

// Scenario is one fault-injection configuration. The zero value injects
// nothing: a chaos-wrapped transport under the zero scenario is
// bit-identical (values, censuses, virtual times) to its base transport,
// which the conformance battery pins.
type Scenario struct {
	// Name labels the scenario in reports.
	Name string `json:"name,omitempty"`
	// Seed drives every fault stream; the same seed reproduces the same
	// faults, retries and report exactly.
	Seed int64 `json:"seed"`

	// Drop, Dup and Delay are per-message fault probabilities applied to
	// every directed pair unless a Links entry overrides them. A delayed
	// message's extra latency is drawn uniformly from [0, DelayMax).
	Drop     float64 `json:"drop,omitempty"`
	Dup      float64 `json:"dup,omitempty"`
	Delay    float64 `json:"delay,omitempty"`
	DelayMax float64 `json:"delay_max,omitempty"`

	// Links are per-directed-node-pair overrides of the rates above.
	Links []LinkFaults `json:"links,omitempty"`
	// Brownouts are windowed delay spikes; Outages are node down/restart
	// windows.
	Brownouts []Brownout `json:"brownouts,omitempty"`
	Outages   []Outage   `json:"outages,omitempty"`

	// RecvTimeout, RetryBackoff and MaxRetries are the survival policy:
	// a lost message is retransmitted when the machine stalls on it,
	// arriving RecvTimeout (plus linear backoff per further attempt)
	// after it originally would have; a message still lost after
	// MaxRetries retransmissions aborts the whole machine. Zero values
	// select the Default* constants.
	RecvTimeout  float64 `json:"recv_timeout,omitempty"`
	RetryBackoff float64 `json:"retry_backoff,omitempty"`
	MaxRetries   int     `json:"max_retries,omitempty"`
}

// Active reports whether the scenario injects any fault at all. An inactive
// scenario lets the chaos transport run as a pure pass-through.
func (s Scenario) Active() bool {
	if s.Drop > 0 || s.Dup > 0 || s.Delay > 0 {
		return true
	}
	for _, l := range s.Links {
		if l.Drop > 0 || l.Dup > 0 || l.Delay > 0 {
			return true
		}
	}
	return len(s.Brownouts) > 0 || len(s.Outages) > 0
}

// WithDefaults returns the scenario with the zero retry-policy fields
// replaced by the Default* constants.
func (s Scenario) WithDefaults() Scenario {
	if s.RecvTimeout <= 0 {
		s.RecvTimeout = DefaultRecvTimeout
	}
	if s.RetryBackoff <= 0 {
		s.RetryBackoff = DefaultRetryBackoff
	}
	if s.MaxRetries <= 0 {
		s.MaxRetries = DefaultMaxRetries
	}
	return s
}

// Validate reports the first configuration mistake: probabilities outside
// [0, 1], delay rates without a magnitude, inverted windows, negative node
// indices where none make sense.
func (s Scenario) Validate() error {
	checkProb := func(what string, p float64) error {
		if p < 0 || p > 1 {
			return fmt.Errorf("chaos: %s probability %g outside [0, 1]", what, p)
		}
		return nil
	}
	checkRates := func(where string, drop, dup, delay, delayMax float64) error {
		if err := checkProb(where+" drop", drop); err != nil {
			return err
		}
		if err := checkProb(where+" dup", dup); err != nil {
			return err
		}
		if err := checkProb(where+" delay", delay); err != nil {
			return err
		}
		if delay > 0 && delayMax <= 0 {
			return fmt.Errorf("chaos: %s delay probability %g needs a positive delay_max", where, delay)
		}
		if delayMax < 0 {
			return fmt.Errorf("chaos: %s delay_max %g is negative", where, delayMax)
		}
		return nil
	}
	if err := checkRates("scenario", s.Drop, s.Dup, s.Delay, s.DelayMax); err != nil {
		return err
	}
	for i, l := range s.Links {
		if l.Src < 0 || l.Dst < 0 {
			return fmt.Errorf("chaos: links[%d] addresses negative node %d->%d", i, l.Src, l.Dst)
		}
		if l.Src == l.Dst {
			return fmt.Errorf("chaos: links[%d] addresses the intra-node pair %d->%d; per-link overrides apply to directed pairs of distinct nodes", i, l.Src, l.Dst)
		}
		if err := checkRates(fmt.Sprintf("links[%d]", i), l.Drop, l.Dup, l.Delay, l.DelayMax); err != nil {
			return err
		}
	}
	for i, b := range s.Brownouts {
		if b.Src < -1 || b.Dst < -1 {
			return fmt.Errorf("chaos: brownouts[%d] node below -1 (use -1 for any)", i)
		}
		if b.Start < 0 || b.End <= b.Start {
			return fmt.Errorf("chaos: brownouts[%d] window [%g, %g) is empty or negative", i, b.Start, b.End)
		}
		if b.Extra <= 0 {
			return fmt.Errorf("chaos: brownouts[%d] needs a positive extra delay, got %g", i, b.Extra)
		}
	}
	for i, o := range s.Outages {
		if o.Node < 0 {
			return fmt.Errorf("chaos: outages[%d] addresses negative node %d", i, o.Node)
		}
		if o.Start < 0 || o.End <= o.Start {
			return fmt.Errorf("chaos: outages[%d] window [%g, %g) is empty or negative", i, o.Start, o.End)
		}
	}
	if s.RecvTimeout < 0 || s.RetryBackoff < 0 || s.MaxRetries < 0 {
		return fmt.Errorf("chaos: retry policy fields must be non-negative (recv_timeout=%g, retry_backoff=%g, max_retries=%d)",
			s.RecvTimeout, s.RetryBackoff, s.MaxRetries)
	}
	return nil
}

// Parse decodes a scenario from JSON, rejecting unknown fields (a typoed
// rate silently injecting nothing is the worst kind of chaos config bug)
// and validating the result.
func Parse(data []byte) (Scenario, error) {
	var s Scenario
	dec := json.NewDecoder(bytes.NewReader(data))
	dec.DisallowUnknownFields()
	if err := dec.Decode(&s); err != nil {
		return Scenario{}, fmt.Errorf("chaos: parsing scenario: %w", err)
	}
	if err := s.Validate(); err != nil {
		return Scenario{}, err
	}
	return s, nil
}

// Load reads and parses a scenario file.
func Load(path string) (Scenario, error) {
	data, err := os.ReadFile(path)
	if err != nil {
		return Scenario{}, fmt.Errorf("chaos: reading scenario: %w", err)
	}
	s, err := Parse(data)
	if err != nil {
		return Scenario{}, fmt.Errorf("%s: %w", path, err)
	}
	return s, nil
}

// StreamRef names one message stream — (sender, receiver, tag) — in a
// report: the first dropped message, or the one whose retry budget ran out.
type StreamRef struct {
	Src      int    `json:"src"`
	Dst      int    `json:"dst"`
	Tag      uint64 `json:"tag"`
	Attempts int    `json:"attempts,omitempty"`
}

func (r StreamRef) String() string {
	return fmt.Sprintf("(src=%d, dst=%d, tag=%#x)", r.Src, r.Dst, r.Tag)
}

// Report is the fault/recovery census of one run under a scenario: what was
// injected, what the runtime recovered, and how hard it had to retry. Under
// a fixed seed the report is a deterministic function of the program — the
// reproducibility contract kfbench's -chaos mode and the S5 experiment pin.
type Report struct {
	// Name and Seed identify the scenario the report was produced under.
	Name string `json:"name,omitempty"`
	Seed int64  `json:"seed"`

	// Sends counts messages entering the chaos layer.
	Sends int64 `json:"sends"`
	// Injected faults: lost messages (Drops), messages held by a node
	// outage window (OutageHolds), duplicated messages (Dups), jittered
	// messages (Delays) and brownout-window hits (Brownouts).
	Drops       int64 `json:"drops"`
	OutageHolds int64 `json:"outage_holds"`
	Dups        int64 `json:"dups"`
	Delays      int64 `json:"delays"`
	Brownouts   int64 `json:"brownouts"`

	// Recovery: Retransmits counts lost messages eventually delivered,
	// Absorbed counts duplicate deliveries discarded by receive-side
	// dedup, RetryRounds counts global-stall recovery passes and
	// RetryAttempts every retransmission attempt including failed ones.
	Retransmits   int64 `json:"retransmits"`
	Absorbed      int64 `json:"absorbed"`
	RetryRounds   int64 `json:"retry_rounds"`
	RetryAttempts int64 `json:"retry_attempts"`
	// RetryHistogram[k] counts messages recovered on their k-th
	// transmission attempt (index 0 is unused: attempt 1 is the first
	// retransmission after the initial loss).
	RetryHistogram []int64 `json:"retry_histogram,omitempty"`

	// Aborted is set when a retry budget ran out and the machine was
	// taken down; Failure names the stream that exhausted it. FirstDrop
	// names the first message the scenario lost, in virtual time: the
	// loss with the earliest fault-free arrival, ties broken by
	// (src, dst, tag) stream order — a deterministic key, unlike the
	// wall-clock order in which concurrent senders report losses.
	Aborted   bool       `json:"aborted,omitempty"`
	FirstDrop *StreamRef `json:"first_drop,omitempty"`
	Failure   *StreamRef `json:"failure,omitempty"`
}

// Injected sums every injected fault.
func (r Report) Injected() int64 {
	return r.Drops + r.OutageHolds + r.Dups + r.Delays + r.Brownouts
}

// Recovered sums the faults the runtime absorbed: retransmitted losses and
// deduplicated copies.
func (r Report) Recovered() int64 { return r.Retransmits + r.Absorbed }

// Clone returns a deep copy (the histogram is the only reference field).
func (r Report) Clone() Report {
	if r.RetryHistogram != nil {
		r.RetryHistogram = append([]int64(nil), r.RetryHistogram...)
	}
	if r.FirstDrop != nil {
		fd := *r.FirstDrop
		r.FirstDrop = &fd
	}
	if r.Failure != nil {
		f := *r.Failure
		r.Failure = &f
	}
	return r
}

// Add folds another report into this one (summing counters, merging the
// histogram, keeping the earliest FirstDrop/Failure) and returns the sum —
// how per-run reports aggregate into a whole-suite one.
func (r Report) Add(o Report) Report {
	out := r.Clone()
	if out.Name == "" {
		out.Name = o.Name
	}
	if out.Seed == 0 {
		out.Seed = o.Seed
	}
	out.Sends += o.Sends
	out.Drops += o.Drops
	out.OutageHolds += o.OutageHolds
	out.Dups += o.Dups
	out.Delays += o.Delays
	out.Brownouts += o.Brownouts
	out.Retransmits += o.Retransmits
	out.Absorbed += o.Absorbed
	out.RetryRounds += o.RetryRounds
	out.RetryAttempts += o.RetryAttempts
	for len(out.RetryHistogram) < len(o.RetryHistogram) {
		out.RetryHistogram = append(out.RetryHistogram, 0)
	}
	for i, c := range o.RetryHistogram {
		out.RetryHistogram[i] += c
	}
	out.Aborted = out.Aborted || o.Aborted
	if out.FirstDrop == nil && o.FirstDrop != nil {
		fd := *o.FirstDrop
		out.FirstDrop = &fd
	}
	if out.Failure == nil && o.Failure != nil {
		f := *o.Failure
		out.Failure = &f
	}
	return out
}
