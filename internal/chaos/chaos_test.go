package chaos

import (
	"os"
	"path/filepath"
	"reflect"
	"strings"
	"testing"
)

func TestParseRejectsUnknownFields(t *testing.T) {
	// A typoed rate silently injecting nothing is the worst chaos config
	// bug, so unknown keys are hard errors.
	if _, err := Parse([]byte(`{"seed": 1, "dorp": 0.5}`)); err == nil {
		t.Error("typoed field accepted")
	}
	sc, err := Parse([]byte(`{"name": "x", "seed": 9, "drop": 0.25, "delay": 0.5, "delay_max": 0.001}`))
	if err != nil {
		t.Fatal(err)
	}
	if sc.Name != "x" || sc.Seed != 9 || sc.Drop != 0.25 || sc.DelayMax != 0.001 {
		t.Errorf("parsed %+v", sc)
	}
}

func TestLoadReportsPath(t *testing.T) {
	path := filepath.Join(t.TempDir(), "bad.json")
	if err := os.WriteFile(path, []byte(`{"drop": 7}`), 0o644); err != nil {
		t.Fatal(err)
	}
	if _, err := Load(path); err == nil {
		t.Error("out-of-range drop accepted")
	} else if !strings.Contains(err.Error(), "bad.json") {
		t.Errorf("error should name the file: %v", err)
	}
	if _, err := Load(filepath.Join(t.TempDir(), "absent.json")); err == nil {
		t.Error("missing file accepted")
	}
}

func TestValidateCatchesEachMistake(t *testing.T) {
	cases := []struct {
		name string
		sc   Scenario
		want string
	}{
		{"drop range", Scenario{Drop: 1.1}, "probability"},
		{"dup range", Scenario{Dup: -0.1}, "probability"},
		{"delay without max", Scenario{Delay: 0.5}, "delay_max"},
		{"negative delay max", Scenario{DelayMax: -1}, "negative"},
		{"link self pair", Scenario{Links: []LinkFaults{{Src: 2, Dst: 2, Drop: 0.1}}}, "intra-node"},
		{"link negative node", Scenario{Links: []LinkFaults{{Src: -1, Dst: 0}}}, "negative"},
		{"link bad rate", Scenario{Links: []LinkFaults{{Src: 0, Dst: 1, Drop: 2}}}, "probability"},
		{"brownout empty window", Scenario{Brownouts: []Brownout{{Start: 2, End: 2, Extra: 1}}}, "empty"},
		{"brownout no extra", Scenario{Brownouts: []Brownout{{Start: 0, End: 1}}}, "extra"},
		{"brownout below any", Scenario{Brownouts: []Brownout{{Src: -2, Start: 0, End: 1, Extra: 1}}}, "-1"},
		{"outage negative node", Scenario{Outages: []Outage{{Node: -1, Start: 0, End: 1}}}, "negative"},
		{"outage inverted window", Scenario{Outages: []Outage{{Node: 0, Start: 3, End: 1}}}, "empty"},
		{"negative retries", Scenario{MaxRetries: -1}, "non-negative"},
	}
	for _, tc := range cases {
		err := tc.sc.Validate()
		if err == nil {
			t.Errorf("%s: accepted", tc.name)
			continue
		}
		if !strings.Contains(err.Error(), tc.want) {
			t.Errorf("%s: error %q missing %q", tc.name, err, tc.want)
		}
	}
	if err := (Scenario{}).Validate(); err != nil {
		t.Errorf("zero scenario rejected: %v", err)
	}
}

func TestActiveAndDefaults(t *testing.T) {
	if (Scenario{}).Active() {
		t.Error("zero scenario claims to inject")
	}
	if (Scenario{Seed: 7, RecvTimeout: 1}).Active() {
		t.Error("retry policy alone is not injection")
	}
	for _, sc := range []Scenario{
		{Drop: 0.1},
		{Links: []LinkFaults{{Src: 0, Dst: 1, Dup: 0.1}}},
		{Brownouts: []Brownout{{Start: 0, End: 1, Extra: 1}}},
		{Outages: []Outage{{Node: 0, Start: 0, End: 1}}},
	} {
		if !sc.Active() {
			t.Errorf("%+v not active", sc)
		}
	}
	d := (Scenario{}).WithDefaults()
	if d.RecvTimeout != DefaultRecvTimeout || d.RetryBackoff != DefaultRetryBackoff || d.MaxRetries != DefaultMaxRetries {
		t.Errorf("defaults not applied: %+v", d)
	}
	keep := Scenario{RecvTimeout: 2, RetryBackoff: 3, MaxRetries: 4}.WithDefaults()
	if keep.RecvTimeout != 2 || keep.RetryBackoff != 3 || keep.MaxRetries != 4 {
		t.Errorf("explicit policy overwritten: %+v", keep)
	}
}

func TestReportCloneIsDeep(t *testing.T) {
	r := Report{
		RetryHistogram: []int64{0, 3, 1},
		FirstDrop:      &StreamRef{Src: 1, Dst: 2, Tag: 5},
		Failure:        &StreamRef{Src: 3, Dst: 4, Tag: 9},
	}
	c := r.Clone()
	c.RetryHistogram[1] = 99
	c.FirstDrop.Src = 99
	c.Failure.Dst = 99
	if r.RetryHistogram[1] != 3 || r.FirstDrop.Src != 1 || r.Failure.Dst != 4 {
		t.Errorf("Clone shares state with the original: %+v", r)
	}
}

func TestReportAddMergesCounters(t *testing.T) {
	a := Report{Name: "a", Seed: 7, Sends: 10, Drops: 2, Retransmits: 2, RetryHistogram: []int64{0, 2}}
	b := Report{Sends: 5, Drops: 1, Dups: 3, Absorbed: 3, Retransmits: 1,
		RetryHistogram: []int64{0, 0, 1}, Aborted: true,
		FirstDrop: &StreamRef{Src: 1, Dst: 2, Tag: 8}}
	sum := a.Add(b)
	if sum.Name != "a" || sum.Seed != 7 {
		t.Errorf("labels lost: %+v", sum)
	}
	if sum.Sends != 15 || sum.Drops != 3 || sum.Dups != 3 || sum.Absorbed != 3 || sum.Retransmits != 3 {
		t.Errorf("counters wrong: %+v", sum)
	}
	if !reflect.DeepEqual(sum.RetryHistogram, []int64{0, 2, 1}) {
		t.Errorf("histogram merge wrong: %v", sum.RetryHistogram)
	}
	if !sum.Aborted || sum.FirstDrop == nil || sum.FirstDrop.Src != 1 {
		t.Errorf("abort state lost: %+v", sum)
	}
	if sum.Injected() != 3+3 || sum.Recovered() != 3+3 {
		t.Errorf("Injected=%d Recovered=%d", sum.Injected(), sum.Recovered())
	}
	// Add never mutates its receiver.
	if a.Sends != 10 || len(a.RetryHistogram) != 2 {
		t.Errorf("Add mutated the receiver: %+v", a)
	}
}

func TestStreamRefString(t *testing.T) {
	got := StreamRef{Src: 3, Dst: 7, Tag: 0x2a}.String()
	if got != "(src=3, dst=7, tag=0x2a)" {
		t.Errorf("String() = %q", got)
	}
}
