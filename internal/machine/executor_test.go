package machine

import (
	"errors"
	"strings"
	"sync/atomic"
	"testing"

	"repro/internal/chaos"
)

// The cross-engine conformance battery: every registered execution engine
// must drive every registered transport to bit-identical values, censuses
// and virtual times — the machine is a Kahn network, so results are a
// function of the program, not of which host thread ran which rank when.

// setExecutorByName installs the named engine on m, failing the test on
// resolution errors.
func setExecutorByName(tb testing.TB, m *Machine, name string) {
	tb.Helper()
	ex, err := NewExecutorByName(name)
	if err != nil {
		tb.Fatal(err)
	}
	m.SetExecutor(ex)
}

func TestExecutorRegistry(t *testing.T) {
	names := ExecutorNames()
	want := map[string]bool{"goroutine": false, "calendar": false}
	for _, n := range names {
		if _, ok := want[n]; ok {
			want[n] = true
		}
	}
	for n, seen := range want {
		if !seen {
			t.Errorf("executor %q missing from registry %v", n, names)
		}
	}
	if _, err := NewExecutorByName("nonesuch"); err == nil ||
		!strings.Contains(err.Error(), "calendar") {
		t.Errorf("unknown-executor error should name the alternatives, got %v", err)
	}
	m := New(2, ZeroComm())
	setExecutorByName(t, m, "calendar")
	if m.ExecutorName() != "calendar" {
		t.Errorf("ExecutorName = %q after installing calendar", m.ExecutorName())
	}
	m.SetExecutor(nil)
	if m.ExecutorName() != "goroutine" {
		t.Errorf("SetExecutor(nil) left %q, want the goroutine default", m.ExecutorName())
	}
}

func TestExecutorCrossEngineIdentical(t *testing.T) {
	// The conformance program must produce bit-identical values,
	// per-processor statistics and elapsed virtual time on every
	// (engine, transport) pair — chaos-wrapped transports included.
	const n = 8
	type result struct {
		values  []float64
		stats   []Stats
		elapsed float64
	}
	ref := map[string]result{}
	for _, engine := range ExecutorNames() {
		for _, row := range conformanceRows(t, n) {
			m := NewWithTransport(row.tr, IPSC2())
			setExecutorByName(t, m, engine)
			v, s, e, runErr := conformanceProgram(m)
			if runErr != nil {
				t.Fatalf("%s on %s: %v", engine, row.name, runErr)
			}
			cur := result{values: v, stats: s, elapsed: e}
			prev, seen := ref[row.name]
			if !seen {
				ref[row.name] = cur
				continue
			}
			if cur.elapsed != prev.elapsed {
				t.Errorf("%s on %s: elapsed %v != reference %v", engine, row.name, cur.elapsed, prev.elapsed)
			}
			for r := 0; r < n; r++ {
				if cur.values[r] != prev.values[r] {
					t.Errorf("%s on %s: rank %d value %v != %v", engine, row.name, r, cur.values[r], prev.values[r])
				}
				if cur.stats[r] != prev.stats[r] {
					t.Errorf("%s on %s: rank %d stats %+v != %+v", engine, row.name, r, cur.stats[r], prev.stats[r])
				}
			}
		}
	}
}

func TestCalendarSingleWorkerLiveness(t *testing.T) {
	// With one worker token every blocking wait must hand the token to
	// another rank — any lost wakeup or busy-wait deadlocks instantly.
	// The program mixes receives (mailbox parking) with host barriers
	// (barrier parking) across several generations; completing at all is
	// the property under test, on top of value correctness. The
	// conformance row for this liveness pin under GOMAXPROCS=1 is the
	// CI race job's `-cpu 1` run of this whole package.
	const n, rounds = 8, 5
	m := New(n, Uniform())
	m.SetExecutor(NewCalendarExecutor(1))
	var gen atomic.Int32
	err := m.Run(func(p *Proc) error {
		next := (p.Rank() + 1) % n
		prev := (p.Rank() + n - 1) % n
		acc := float64(p.Rank())
		for round := 0; round < rounds; round++ {
			p.SendValue(next, TagOf(uint16(round)), acc)
			acc += p.RecvValue(prev, TagOf(uint16(round)))
			gen.Add(1)
			if !m.Transport().Barrier(p.Rank()) {
				t.Errorf("rank %d: barrier round %d reported down", p.Rank(), round)
			}
			if got := gen.Load(); got < int32((round+1)*n) {
				t.Errorf("rank %d left barrier round %d with %d/%d entered", p.Rank(), round, got, (round+1)*n)
			}
		}
		return nil
	})
	if err != nil {
		t.Fatal(err)
	}
}

func TestCalendarWorkerCountsAndReuse(t *testing.T) {
	// Every worker count from 1 to beyond GOMAXPROCS completes and computes
	// the same values, and one executor instance is reusable across
	// sequential runs on the same machine.
	const n = 16
	var want []float64
	for _, workers := range []int{0, 1, 2, 3, n, 2 * n} {
		m := New(n, ZeroComm())
		m.SetExecutor(NewCalendarExecutor(workers))
		for run := 0; run < 3; run++ {
			got := make([]float64, n)
			err := m.Run(func(p *Proc) error {
				next := (p.Rank() + 1) % n
				prev := (p.Rank() + n - 1) % n
				p.SendValue(next, 1, float64(p.Rank()))
				got[p.Rank()] = float64(p.Rank())*100 + p.RecvValue(prev, 1)
				return nil
			})
			if err != nil {
				t.Fatalf("workers=%d run %d: %v", workers, run, err)
			}
			if want == nil {
				want = got
				continue
			}
			for r := range got {
				if got[r] != want[r] {
					t.Errorf("workers=%d run %d: rank %d got %v want %v", workers, run, r, got[r], want[r])
				}
			}
		}
	}
}

func TestCalendarDeadlockDetection(t *testing.T) {
	// The quiescence-triggered stall check must reach the same deadlock
	// verdicts as the goroutine engine's all-blocked trigger.
	for _, tr := range []Transport{NewSharedTransport(4), NewFederatedTransport(4, 2)} {
		m := NewWithTransport(tr, Uniform())
		setExecutorByName(t, m, "calendar")
		// All-blocked cycle.
		err := m.Run(func(p *Proc) error {
			p.Recv((p.Rank()+1)%4, 0)
			return nil
		})
		if !errors.Is(err, ErrDeadlock) {
			t.Fatalf("cycle: err = %v, want ErrDeadlock", err)
		}
		// Peer exits; the lone receiver can never be satisfied.
		err = m.Run(func(p *Proc) error {
			if p.Rank() == 3 {
				p.Recv(0, 0)
			}
			return nil
		})
		if !errors.Is(err, ErrDeadlock) {
			t.Fatalf("peer exit: err = %v, want ErrDeadlock", err)
		}
		// The machine stays usable after both verdicts.
		err = m.Run(func(p *Proc) error {
			if p.Rank() == 0 {
				p.SendValue(1, 1, 42)
			}
			if p.Rank() == 1 {
				if v := p.RecvValue(0, 1); v != 42 {
					t.Errorf("after deadlocks: got %v", v)
				}
			}
			return nil
		})
		if err != nil {
			t.Fatal(err)
		}
	}
}

func TestCalendarPanicPropagates(t *testing.T) {
	// Rank 0 panics; everyone else blocks on a message only rank 0 could
	// send, so the abort raised by the recovered panic must wake them.
	// (Rank 0 because Run reports the first error in rank order — on the
	// reference engine too, a lower-ranked waiter's abort error would win.)
	m := New(4, ZeroComm())
	setExecutorByName(t, m, "calendar")
	err := m.Run(func(p *Proc) error {
		if p.Rank() == 0 {
			panic("boom")
		}
		p.Recv(0, 9)
		return nil
	})
	if err == nil || !strings.Contains(err.Error(), "processor 0 panicked: boom") {
		t.Fatalf("err = %v, want the recovered panic from rank 0", err)
	}
}

func TestCalendarChaosRecoveryBitIdentical(t *testing.T) {
	// A lossy chaos transport under the calendar engine: retransmission
	// must restore exactly the fault-free values, and — because fault
	// draws come from per-pair PRNG streams independent of host
	// interleaving — the whole chaotic run (values and virtual times)
	// must match the same scenario under the goroutine engine.
	const n, rounds = 4, 30
	sc := chaos.Scenario{Name: "drop", Seed: 3, Drop: 0.1}

	clean := New(n, IPSC2())
	want := runRing(t, clean, n, rounds)

	gm, _ := chaosMachine(t, "shared", n, 1, sc)
	goroutineVals := runRing(t, gm, n, rounds)
	goroutineElapsed := gm.Elapsed()

	cm, ct := chaosMachine(t, "shared", n, 1, sc)
	setExecutorByName(t, cm, "calendar")
	calendarVals := runRing(t, cm, n, rounds)
	calendarElapsed := cm.Elapsed()

	for r := 0; r < n; r++ {
		if calendarVals[r] != want[r] {
			t.Errorf("rank %d: calendar chaos value %v != fault-free %v", r, calendarVals[r], want[r])
		}
		if calendarVals[r] != goroutineVals[r] {
			t.Errorf("rank %d: calendar chaos value %v != goroutine chaos %v", r, calendarVals[r], goroutineVals[r])
		}
	}
	if calendarElapsed != goroutineElapsed {
		t.Errorf("calendar chaos elapsed %v != goroutine chaos %v", calendarElapsed, goroutineElapsed)
	}
	if rep := ct.Report(); rep.Drops == 0 {
		t.Error("scenario injected no faults; the test exercised nothing")
	}
}

func TestCalendarChaosFaultAbort(t *testing.T) {
	// An exhausted retry budget declares ErrFaultAbort; the abort must
	// wake parked continuations on both sides of the dead stream.
	const n = 4
	m, _ := chaosMachine(t, "shared", n, 1, chaos.Scenario{Name: "dead", Seed: 1, Drop: 1, MaxRetries: 1})
	setExecutorByName(t, m, "calendar")
	err := m.Run(func(p *Proc) error {
		prog := ringProgram(n, 3)
		prog(p)
		return nil
	})
	if !errors.Is(err, ErrFaultAbort) {
		t.Fatalf("err = %v, want ErrFaultAbort", err)
	}
}

func TestCalendarPoolOwnershipStress(t *testing.T) {
	// The worker pool must preserve the single-owner discipline of the
	// per-processor buffer free lists: a rank's buffers are only ever
	// touched from whichever worker goroutine currently holds its token,
	// with a happens-before edge across every token handoff. Run under
	// -race this would flag any unsynchronized handoff. More workers than
	// GOMAXPROCS on small hosts keeps real preemption in play.
	const n, rounds = 32, 20
	m := New(n, ZeroComm())
	m.SetExecutor(NewCalendarExecutor(4))
	for run := 0; run < 2; run++ {
		err := m.Run(func(p *Proc) error {
			next := (p.Rank() + 1) % n
			prev := (p.Rank() + n - 1) % n
			for round := 0; round < rounds; round++ {
				buf := p.AcquireBuf(8)
				for i := range buf {
					buf[i] = float64(p.Rank()*rounds + round)
				}
				p.Send(next, TagOf(uint16(round)), buf)
				in := p.Recv(prev, TagOf(uint16(round)))
				if in[0] != float64(prev*rounds+round) {
					t.Errorf("rank %d round %d: got %v", p.Rank(), round, in[0])
				}
				p.ReleaseBuf(in)
				if round%5 == 4 && !m.Transport().Barrier(p.Rank()) {
					t.Errorf("rank %d: barrier down at round %d", p.Rank(), round)
				}
			}
			return nil
		})
		if err != nil {
			t.Fatalf("run %d: %v", run, err)
		}
	}
}

func TestCalendarVirtualTimeOrder(t *testing.T) {
	// The calendar grants its single token in virtual-time order: with
	// every rank runnable at distinct clocks, the earliest clock runs
	// first. Observable through a program where each rank stamps a
	// sequence number on first execution after a clock-advancing phase.
	const n = 6
	m := New(n, Uniform())
	m.SetExecutor(NewCalendarExecutor(1))
	order := make([]int, 0, n)
	err := m.Run(func(p *Proc) error {
		// Spread the clocks: rank r computes (n-r) units, then everyone
		// parks on a barrier; after release the calendar must grant
		// tokens smallest-clock-first, i.e. in reverse rank order.
		p.Compute((n - p.Rank()) * 100)
		if !m.Transport().Barrier(p.Rank()) {
			return errors.New("barrier down")
		}
		order = append(order, p.Rank())
		return nil
	})
	if err != nil {
		t.Fatal(err)
	}
	if len(order) != n {
		t.Fatalf("recorded %d ranks, want %d", len(order), n)
	}
	for i, r := range order {
		if r != n-1-i {
			t.Fatalf("post-barrier execution order %v, want reverse rank order (clock order)", order)
		}
	}
}
