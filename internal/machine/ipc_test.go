package machine

import (
	"errors"
	"net"
	"reflect"
	"strings"
	"syscall"
	"testing"
	"time"

	"repro/internal/chaos"
	"repro/internal/wire"
)

// ipcMachine builds a machine over a fresh IPC transport and arranges the
// worker fleet's teardown at test end.
func ipcMachine(t *testing.T, n, nodes int, cost CostModel) (*Machine, *IPCTransport) {
	t.Helper()
	tr := NewIPCTransport(n, nodes)
	t.Cleanup(func() { tr.Close() })
	return NewWithTransport(tr, cost), tr
}

func TestIPCTransportCrossesProcessBoundary(t *testing.T) {
	// The defining property: inter-node traffic really leaves the process.
	// After one cross-node exchange the transport must have live worker
	// processes (distinct from this one) and socket link counters matching
	// the federated census rules exactly.
	m, tr := ipcMachine(t, 4, 2, Uniform())
	if pids := tr.WorkerPIDs(); len(pids) != 0 {
		t.Fatalf("workers before any inter-node send: %v", pids)
	}
	err := m.Run(func(p *Proc) error {
		switch p.Rank() {
		case 0:
			p.Send(1, 1, make([]float64, 10)) // intra-node: stays in process
			p.Send(2, 2, make([]float64, 5))  // node 0 -> node 1
			p.Send(3, 3, make([]float64, 7))  // node 0 -> node 1
		case 1:
			p.Recv(0, 1)
		case 2:
			p.Recv(0, 2)
			p.Send(0, 4, make([]float64, 2)) // node 1 -> node 0
		case 3:
			p.Recv(0, 3)
		}
		if p.Rank() == 0 {
			p.Recv(2, 4)
		}
		return nil
	})
	if err != nil {
		t.Fatal(err)
	}
	pids := tr.WorkerPIDs()
	if len(pids) != 2 {
		t.Fatalf("worker fleet: %v, want one process per node", pids)
	}
	for node, pid := range pids {
		if pid == syscall.Getpid() {
			t.Errorf("node %d worker shares the coordinator's pid", node)
		}
		if err := syscall.Kill(pid, 0); err != nil {
			t.Errorf("node %d worker (pid %d) not alive: %v", node, pid, err)
		}
	}
	if msgs, bytes := tr.LinkTraffic(0, 1); msgs != 2 || bytes != 12*wordBytes {
		t.Errorf("link 0->1 = %d msgs / %d bytes, want 2 / %d", msgs, bytes, 12*wordBytes)
	}
	if msgs, bytes := tr.LinkTraffic(1, 0); msgs != 1 || bytes != 2*wordBytes {
		t.Errorf("link 1->0 = %d msgs / %d bytes, want 1 / %d", msgs, bytes, 2*wordBytes)
	}
	if msgs, _ := tr.LinkTraffic(0, 0); msgs != 0 {
		t.Errorf("intra-node message counted on a link: %d", msgs)
	}
	if msgs, bytes := tr.InterNodeTraffic(); msgs != 3 || bytes != 14*wordBytes {
		t.Errorf("inter-node total = %d msgs / %d bytes, want 3 / %d", msgs, bytes, 14*wordBytes)
	}
}

func TestIPCCloseTearsDownWorkers(t *testing.T) {
	// Close must leave no worker behind: by the time it returns, every
	// spawned process has exited and been reaped.
	m, tr := ipcMachine(t, 4, 4, Uniform())
	if err := m.Run(func(p *Proc) error {
		p.SendValue((p.Rank()+1)%4, 1, 1)
		p.RecvValue((p.Rank()+3)%4, 1)
		return nil
	}); err != nil {
		t.Fatal(err)
	}
	pids := tr.WorkerPIDs()
	if len(pids) != 4 {
		t.Fatalf("worker fleet: %v, want 4", pids)
	}
	if err := tr.Close(); err != nil {
		t.Fatal(err)
	}
	for node, pid := range pids {
		if err := syscall.Kill(pid, 0); err == nil {
			t.Errorf("node %d worker (pid %d) still alive after Close", node, pid)
		}
	}
	if err := tr.Close(); err != nil {
		t.Errorf("second Close: %v", err)
	}
}

func TestIPCWorkerCrashSurfacesStructuredError(t *testing.T) {
	// A killed worker must not hang the machine: the next traffic touching
	// its socket takes the transport down with an error that wraps
	// ErrWorkerLost and names the node, surfaced through Machine.Run.
	m, tr := ipcMachine(t, 4, 2, Uniform())
	exchange := func(p *Proc) error {
		peer := (p.Rank() + 2) % 4 // always cross-node
		p.SendValue(peer, 1, float64(p.Rank()))
		p.RecvValue(peer, 1)
		return nil
	}
	if err := m.Run(exchange); err != nil {
		t.Fatal(err)
	}
	pids := tr.WorkerPIDs()
	if err := syscall.Kill(pids[1], syscall.SIGKILL); err != nil {
		t.Fatal(err)
	}
	// The kill is asynchronous; the reader notices on EOF, or the next
	// run's reset fence / send does. Either way the run must fail fast
	// with the structured reason, not deadlock.
	deadline := time.Now().Add(10 * time.Second)
	var err error
	for {
		if err = m.Run(exchange); err != nil || time.Now().After(deadline) {
			break
		}
	}
	if err == nil {
		t.Fatal("machine kept completing runs with a dead worker")
	}
	if !errors.Is(err, ErrWorkerLost) {
		t.Fatalf("run error does not wrap ErrWorkerLost: %v", err)
	}
	if !strings.Contains(err.Error(), "node 1") {
		t.Errorf("error should name the lost node: %v", err)
	}
}

func TestIPCWorkerExitsOnCoordinatorEOF(t *testing.T) {
	// The orphan-hardening contract at its root: a worker whose socket hits
	// EOF (coordinator died) exits cleanly instead of lingering. Driven
	// in-process against the worker loop itself.
	ln, err := net.Listen("tcp", "127.0.0.1:0")
	if err != nil {
		t.Fatal(err)
	}
	defer ln.Close()
	done := make(chan int, 1)
	go func() { done <- runIPCWorker(3, "tcp", ln.Addr().String()) }()
	c, err := ln.Accept()
	if err != nil {
		t.Fatal(err)
	}
	var hello wire.Frame
	var scratch []byte
	if err := wire.ReadFrame(c, &hello, &scratch, nil); err != nil || hello.Kind != wire.KindHello || hello.Seq != 3 {
		t.Fatalf("handshake: kind=%v seq=%d err=%v", hello.Kind, hello.Seq, err)
	}
	c.Close() // the coordinator is gone
	select {
	case code := <-done:
		if code != 0 {
			t.Errorf("worker exit code %d on coordinator EOF, want 0", code)
		}
	case <-time.After(10 * time.Second):
		t.Fatal("worker hung after coordinator EOF")
	}
}

func TestIPCWorkerExitsOnShutdownFrame(t *testing.T) {
	ln, err := net.Listen("tcp", "127.0.0.1:0")
	if err != nil {
		t.Fatal(err)
	}
	defer ln.Close()
	done := make(chan int, 1)
	go func() { done <- runIPCWorker(0, "tcp", ln.Addr().String()) }()
	c, err := ln.Accept()
	if err != nil {
		t.Fatal(err)
	}
	defer c.Close()
	var f wire.Frame
	var scratch []byte
	if err := wire.ReadFrame(c, &f, &scratch, nil); err != nil {
		t.Fatal(err)
	}
	if err := wire.WriteFrame(c, &scratch, &wire.Frame{Kind: wire.KindShutdown}); err != nil {
		t.Fatal(err)
	}
	select {
	case code := <-done:
		if code != 0 {
			t.Errorf("worker exit code %d on Shutdown, want 0", code)
		}
	case <-time.After(10 * time.Second):
		t.Fatal("worker hung after Shutdown frame")
	}
}

func TestIPCTransportSteadyStateAllocs(t *testing.T) {
	// The cross-process path shares the pooling discipline: a warmed
	// ping-pong — payloads encoded onto the socket on send, decoded into
	// pooled buffers on delivery — runs allocation-free on both the
	// intra-node and the inter-node pairs.
	m, _ := ipcMachine(t, 8, 2, ZeroComm())
	err := m.Run(func(p *Proc) error {
		// Nodes are {0..3} and {4..7}: pairs (0,1) and (4,5) ping-pong
		// inside a node, pairs (2,6) and (3,7) across the sockets.
		peers := [8]int{1, 0, 6, 7, 5, 4, 2, 3}
		peer := peers[p.Rank()]
		lead := p.Rank() < peer
		pingPong := func() {
			if lead {
				p.SendValue(peer, 1, 1)
				p.RecvValue(peer, 2)
			} else {
				p.RecvValue(peer, 1)
				p.SendValue(peer, 2, 1)
			}
		}
		for i := 0; i < 10; i++ {
			pingPong() // warm pools, scratch buffers and socket buffers
		}
		if avg := testing.AllocsPerRun(200, pingPong); avg != 0 {
			t.Errorf("warmed ipc ping-pong (rank %d): %v allocs per run, want 0", p.Rank(), avg)
		}
		return nil
	})
	if err != nil {
		t.Fatal(err)
	}
}

func TestChaosOverIPCSmokeScenario(t *testing.T) {
	// The committed smoke scenario over chaos:ipc: faults injected on
	// messages that really cross process boundaries, recovery driven by
	// stall probes that cross them too. Values must come back bit-identical
	// to the fault-free run and the report must reproduce under the seed.
	sc, err := chaos.Load("../../scenarios/smoke.json")
	if err != nil {
		t.Fatal(err)
	}
	const n, nodes, rounds = 4, 2, 30
	base, baseTr := ipcMachine(t, n, nodes, IPSC2())
	_ = baseTr
	want := runRing(t, base, n, rounds)

	m, ct := chaosMachine(t, "ipc", n, nodes, sc)
	if c, ok := m.Transport().(interface{ Close() error }); ok {
		t.Cleanup(func() { c.Close() })
	}
	got := runRing(t, m, n, rounds)
	if !reflect.DeepEqual(got, want) {
		t.Errorf("values under %q faults %v != fault-free %v", sc.Name, got, want)
	}
	if bs, cs := base.TotalStats(), m.TotalStats(); bs.MsgsSent != cs.MsgsSent ||
		bs.MsgsRecv != cs.MsgsRecv || bs.BytesSent != cs.BytesSent {
		t.Errorf("census moved under faults: %+v vs %+v", cs, bs)
	}
	rep := ct.Report()
	if rep.Drops+rep.Dups == 0 {
		t.Fatalf("smoke scenario injected nothing over ipc: %+v", rep)
	}
	if rep.Aborted || rep.Failure != nil {
		t.Fatalf("smoke run aborted: %+v", rep)
	}

	// Seed-reproducibility: a fresh chaos:ipc machine under the same
	// scenario injects and recovers identically, report included.
	m2, ct2 := chaosMachine(t, "ipc", n, nodes, sc)
	if c, ok := m2.Transport().(interface{ Close() error }); ok {
		t.Cleanup(func() { c.Close() })
	}
	got2 := runRing(t, m2, n, rounds)
	if !reflect.DeepEqual(got2, got) {
		t.Errorf("rerun values diverged: %v vs %v", got2, got)
	}
	if rep2 := ct2.Report(); !reflect.DeepEqual(rep2, rep) {
		t.Errorf("rerun report diverged:\n first: %+v\nsecond: %+v", rep, rep2)
	}
	if m2.Elapsed() != m.Elapsed() {
		t.Errorf("rerun virtual time diverged: %v vs %v", m2.Elapsed(), m.Elapsed())
	}
}

func TestTransportExecutorMatrixIdentical(t *testing.T) {
	// The full registry cross-product — every transport (ipc and chaos:ipc
	// included) under every execution engine — must produce one single
	// answer: bit-identical values, per-rank statistics (the message/byte
	// census) and elapsed virtual time, pinned against a global reference
	// rather than per-row ones, so a future transport or engine
	// registration is automatically held to the same invariant.
	const n = 8
	type result struct {
		values  []float64
		stats   []Stats
		elapsed float64
	}
	var ref *result
	var refName string
	for _, engine := range ExecutorNames() {
		for _, row := range conformanceRows(t, n) {
			name := engine + "/" + row.name
			m := NewWithTransport(row.tr, IPSC2())
			setExecutorByName(t, m, engine)
			values, stats, elapsed, err := conformanceProgram(m)
			if err != nil {
				t.Fatalf("%s: %v", name, err)
			}
			cur := &result{values: values, stats: stats, elapsed: elapsed}
			if ref == nil {
				ref, refName = cur, name
				continue
			}
			if cur.elapsed != ref.elapsed {
				t.Errorf("%s: elapsed %v != %s's %v", name, cur.elapsed, refName, ref.elapsed)
			}
			for r := 0; r < n; r++ {
				if cur.values[r] != ref.values[r] {
					t.Errorf("%s: rank %d value %v != %v", name, r, cur.values[r], ref.values[r])
				}
				if cur.stats[r] != ref.stats[r] {
					t.Errorf("%s: rank %d stats %+v != %+v", name, r, cur.stats[r], ref.stats[r])
				}
			}
		}
	}
}

func TestIPCDistributedDeadlockNotFooledByInFlightFrames(t *testing.T) {
	// The two-phase probe's reason to exist: a message that has left the
	// sender but not yet reached the receiver's mailbox must veto a stall
	// declaration, and its eventual delivery must un-stick the blocked
	// rank. The workload repeats cross-node handoffs where the receiver
	// blocks before the sender's frame has crossed two sockets; any naive
	// local-snapshot detector would race toward a false ErrDeadlock.
	m, _ := ipcMachine(t, 4, 2, Uniform())
	for round := 0; round < 20; round++ {
		err := m.Run(func(p *Proc) error {
			peer := (p.Rank() + 2) % 4
			if p.Rank() < 2 {
				p.SendValue(peer, 1, float64(p.Rank()))
				p.RecvValue(peer, 2)
			} else {
				p.SendValue(peer, 2, float64(p.Rank()))
				p.RecvValue(peer, 1)
			}
			return nil
		})
		if err != nil {
			t.Fatalf("round %d: %v", round, err)
		}
	}
	// And a genuine cross-process deadlock is still caught.
	err := m.Run(func(p *Proc) error {
		p.Recv((p.Rank()+2)%4, 99) // everyone waits, nobody sends
		return nil
	})
	if !errors.Is(err, ErrDeadlock) {
		t.Fatalf("true deadlock not detected: %v", err)
	}
}
