package machine

import (
	"strings"
	"testing"
)

func TestRegistryHasBundledTransports(t *testing.T) {
	names := TransportNames()
	for _, want := range []string{"shared", "federated"} {
		found := false
		for _, n := range names {
			if n == want {
				found = true
			}
		}
		if !found {
			t.Errorf("registry missing bundled transport %q (have %v)", want, names)
		}
	}
}

func TestRegistryResolvesByName(t *testing.T) {
	tr, err := NewTransportByName("shared", 4, 1)
	if err != nil {
		t.Fatal(err)
	}
	if _, ok := tr.(*SharedTransport); !ok {
		t.Errorf("shared resolved to %T", tr)
	}
	tr, err = NewTransportByName("federated", 8, 2)
	if err != nil {
		t.Fatal(err)
	}
	ft, ok := tr.(*FederatedTransport)
	if !ok {
		t.Fatalf("federated resolved to %T", tr)
	}
	if ft.Size() != 8 {
		t.Errorf("federated size %d, want 8", ft.Size())
	}
}

func TestRegistryLookupFailuresAreErrorsNotPanics(t *testing.T) {
	if _, err := NewTransportByName("no-such-transport", 4, 1); err == nil {
		t.Error("unknown transport name accepted")
	} else if !strings.Contains(err.Error(), "no-such-transport") {
		t.Errorf("error should name the missing transport: %v", err)
	}
	if _, err := NewTransportByName("shared", 4, 2); err == nil {
		t.Error("shared transport accepted a 2-node federation")
	}
	if _, err := NewTransportByName("federated", 4, 3); err == nil {
		t.Error("federated transport accepted a node count not dividing n")
	}
	if _, err := NewTransportByName("federated", 0, 1); err == nil {
		t.Error("federated transport accepted zero endpoints")
	}
	if _, err := NewTransportByName("shared", -1, 1); err == nil {
		t.Error("shared transport accepted negative endpoints")
	}
}

func TestRegistryNodeDefaults(t *testing.T) {
	// nodes <= 1 means "no federation": shared accepts it, federated
	// builds a single-node federation.
	for _, nodes := range []int{0, 1} {
		if _, err := NewTransportByName("shared", 4, nodes); err != nil {
			t.Errorf("shared with %d nodes: %v", nodes, err)
		}
		if _, err := NewTransportByName("federated", 4, nodes); err != nil {
			t.Errorf("federated with %d nodes: %v", nodes, err)
		}
	}
}

func TestRegisterTransportGuards(t *testing.T) {
	mustPanic := func(name string, f func()) {
		defer func() {
			if recover() == nil {
				t.Errorf("%s: expected panic", name)
			}
		}()
		f()
	}
	mustPanic("empty name", func() { RegisterTransport("", func(n, nodes int) (Transport, error) { return nil, nil }) })
	mustPanic("nil factory", func() { RegisterTransport("x", nil) })
	mustPanic("duplicate", func() { RegisterTransport("shared", func(n, nodes int) (Transport, error) { return nil, nil }) })
}

func TestCostModelIsZero(t *testing.T) {
	if !(CostModel{}).IsZero() {
		t.Error("zero value not IsZero")
	}
	nonzero := []CostModel{
		{FlopTime: 1},
		{Latency: 1},
		{BytePeriod: 1},
		{SendOverhead: 1},
		{RecvOverhead: 1},
		CostModel{}.WithInterNode(4, 8),
		IPSC2(),
		Uniform(),
	}
	for i, c := range nonzero {
		if c.IsZero() {
			t.Errorf("case %d: %+v reported IsZero", i, c)
		}
	}
}
