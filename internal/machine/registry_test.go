package machine

import (
	"strings"
	"testing"
)

func TestRegistryHasBundledTransports(t *testing.T) {
	names := TransportNames()
	for _, want := range []string{"shared", "federated"} {
		found := false
		for _, n := range names {
			if n == want {
				found = true
			}
		}
		if !found {
			t.Errorf("registry missing bundled transport %q (have %v)", want, names)
		}
	}
}

func TestRegistryResolvesByName(t *testing.T) {
	tr, err := NewTransportByName("shared", 4, 1)
	if err != nil {
		t.Fatal(err)
	}
	if _, ok := tr.(*SharedTransport); !ok {
		t.Errorf("shared resolved to %T", tr)
	}
	tr, err = NewTransportByName("federated", 8, 2)
	if err != nil {
		t.Fatal(err)
	}
	ft, ok := tr.(*FederatedTransport)
	if !ok {
		t.Fatalf("federated resolved to %T", tr)
	}
	if ft.Size() != 8 {
		t.Errorf("federated size %d, want 8", ft.Size())
	}
}

func TestRegistryLookupFailuresAreErrorsNotPanics(t *testing.T) {
	if _, err := NewTransportByName("no-such-transport", 4, 1); err == nil {
		t.Error("unknown transport name accepted")
	} else if !strings.Contains(err.Error(), "no-such-transport") {
		t.Errorf("error should name the missing transport: %v", err)
	}
	if _, err := NewTransportByName("shared", 4, 2); err == nil {
		t.Error("shared transport accepted a 2-node federation")
	}
	if _, err := NewTransportByName("federated", 4, 3); err == nil {
		t.Error("federated transport accepted a node count not dividing n")
	}
	if _, err := NewTransportByName("federated", 0, 1); err == nil {
		t.Error("federated transport accepted zero endpoints")
	}
	if _, err := NewTransportByName("shared", -1, 1); err == nil {
		t.Error("shared transport accepted negative endpoints")
	}
}

func TestRegistryNodeDefaults(t *testing.T) {
	// nodes <= 1 means "no federation": shared accepts it, federated
	// builds a single-node federation.
	for _, nodes := range []int{0, 1} {
		if _, err := NewTransportByName("shared", 4, nodes); err != nil {
			t.Errorf("shared with %d nodes: %v", nodes, err)
		}
		if _, err := NewTransportByName("federated", 4, nodes); err != nil {
			t.Errorf("federated with %d nodes: %v", nodes, err)
		}
	}
}

func TestRegisterTransportGuards(t *testing.T) {
	mustPanic := func(name string, f func()) {
		defer func() {
			if recover() == nil {
				t.Errorf("%s: expected panic", name)
			}
		}()
		f()
	}
	mustPanic("empty name", func() { RegisterTransport("", func(n, nodes int) (Transport, error) { return nil, nil }) })
	mustPanic("nil factory", func() { RegisterTransport("x", nil) })
	mustPanic("duplicate", func() { RegisterTransport("shared", func(n, nodes int) (Transport, error) { return nil, nil }) })
}

func TestRegistryChaosVariants(t *testing.T) {
	// Every registered base comes with a chaos-wrapped variant for free.
	names := TransportNames()
	have := map[string]bool{}
	for _, n := range names {
		have[n] = true
	}
	for _, base := range []string{"shared", "federated"} {
		if !have[ChaosPrefix+base] {
			t.Errorf("registry missing %q (have %v)", ChaosPrefix+base, names)
		}
	}

	tr, err := NewTransportByName("chaos:shared", 4, 1)
	if err != nil {
		t.Fatal(err)
	}
	ct, ok := tr.(*ChaosTransport)
	if !ok {
		t.Fatalf("chaos:shared resolved to %T", tr)
	}
	if _, ok := ct.Base().(*SharedTransport); !ok {
		t.Errorf("chaos:shared wraps %T, want SharedTransport", ct.Base())
	}
	tr, err = NewTransportByName("chaos:federated", 8, 2)
	if err != nil {
		t.Fatal(err)
	}
	ct = tr.(*ChaosTransport)
	if ct.Size() != 8 || ct.Nodes() != 2 {
		t.Errorf("chaos:federated size/nodes = %d/%d, want 8/2", ct.Size(), ct.Nodes())
	}
}

func TestRegistryChaosPrefixMalformed(t *testing.T) {
	// A bare "chaos:" names no base; the error must say so and list what is
	// registered so the fix is obvious.
	if _, err := NewTransportByName("chaos:", 4, 1); err == nil {
		t.Error("bare chaos: prefix accepted")
	} else if !strings.Contains(err.Error(), "no base") || !strings.Contains(err.Error(), "shared") {
		t.Errorf("bare-prefix error should explain and list registered names: %v", err)
	}
	// The wrapper applies exactly once.
	if _, err := NewTransportByName("chaos:chaos:shared", 4, 1); err == nil {
		t.Error("nested chaos: prefix accepted")
	} else if !strings.Contains(err.Error(), "nests") {
		t.Errorf("nested-prefix error should explain: %v", err)
	}
	// An unknown base inside the prefix reports like any unknown transport.
	if _, err := NewTransportByName("chaos:no-such", 4, 1); err == nil {
		t.Error("chaos-wrapped unknown base accepted")
	} else if !strings.Contains(err.Error(), "no-such") || !strings.Contains(err.Error(), "shared") {
		t.Errorf("unknown-base error should name it and the alternatives: %v", err)
	}
	// Base-level validation still applies through the wrapper.
	if _, err := NewTransportByName("chaos:shared", 4, 2); err == nil {
		t.Error("chaos:shared accepted a 2-node federation")
	}
	if _, err := NewTransportByName("chaos:federated", 4, 3); err == nil {
		t.Error("chaos:federated accepted a node count not dividing n")
	}
}

func TestRegisterTransportRejectsReservedPrefix(t *testing.T) {
	defer func() {
		if recover() == nil {
			t.Error("RegisterTransport accepted a chaos:-prefixed name")
		}
	}()
	RegisterTransport("chaos:custom", func(n, nodes int) (Transport, error) { return nil, nil })
}

func TestCostModelIsZero(t *testing.T) {
	if !(CostModel{}).IsZero() {
		t.Error("zero value not IsZero")
	}
	nonzero := []CostModel{
		{FlopTime: 1},
		{Latency: 1},
		{BytePeriod: 1},
		{SendOverhead: 1},
		{RecvOverhead: 1},
		CostModel{}.WithInterNode(4, 8),
		IPSC2(),
		Uniform(),
	}
	for i, c := range nonzero {
		if c.IsZero() {
			t.Errorf("case %d: %+v reported IsZero", i, c)
		}
	}
}
