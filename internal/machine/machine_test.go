package machine

import (
	"errors"
	"math"
	"testing"
	"testing/quick"
)

func TestNewPanicsOnBadSize(t *testing.T) {
	defer func() {
		if recover() == nil {
			t.Fatal("New(0) did not panic")
		}
	}()
	New(0, Uniform())
}

func TestRunExecutesEveryProc(t *testing.T) {
	m := New(7, Uniform())
	seen := make([]bool, 7)
	err := m.Run(func(p *Proc) error {
		seen[p.Rank()] = true
		return nil
	})
	if err != nil {
		t.Fatal(err)
	}
	for r, ok := range seen {
		if !ok {
			t.Errorf("rank %d did not run", r)
		}
	}
}

func TestComputeAdvancesClock(t *testing.T) {
	m := New(1, Uniform())
	err := m.Run(func(p *Proc) error {
		p.Compute(10)
		if p.Clock() != 10 {
			t.Errorf("clock = %v, want 10", p.Clock())
		}
		p.Compute(-5) // ignored
		if p.Clock() != 10 {
			t.Errorf("clock after negative compute = %v, want 10", p.Clock())
		}
		return nil
	})
	if err != nil {
		t.Fatal(err)
	}
}

func TestSendRecvRoundTrip(t *testing.T) {
	m := New(2, Uniform())
	payload := []float64{1, 2, 3}
	err := m.Run(func(p *Proc) error {
		switch p.Rank() {
		case 0:
			p.Send(1, TagOf(1), payload)
		case 1:
			got := p.Recv(0, TagOf(1))
			if len(got) != 3 || got[0] != 1 || got[1] != 2 || got[2] != 3 {
				t.Errorf("got %v, want %v", got, payload)
			}
		}
		return nil
	})
	if err != nil {
		t.Fatal(err)
	}
}

func TestSendCopiesData(t *testing.T) {
	m := New(2, Uniform())
	err := m.Run(func(p *Proc) error {
		switch p.Rank() {
		case 0:
			buf := []float64{42}
			p.Send(1, 0, buf)
			buf[0] = -1 // must not affect the message
		case 1:
			if v := p.RecvValue(0, 0); v != 42 {
				t.Errorf("got %v, want 42", v)
			}
		}
		return nil
	})
	if err != nil {
		t.Fatal(err)
	}
}

func TestTagsKeepStreamsSeparate(t *testing.T) {
	m := New(2, Uniform())
	err := m.Run(func(p *Proc) error {
		switch p.Rank() {
		case 0:
			p.SendValue(1, TagOf(7), 7)
			p.SendValue(1, TagOf(9), 9)
		case 1:
			// Receive in the opposite order of sending.
			if v := p.RecvValue(0, TagOf(9)); v != 9 {
				t.Errorf("tag 9: got %v", v)
			}
			if v := p.RecvValue(0, TagOf(7)); v != 7 {
				t.Errorf("tag 7: got %v", v)
			}
		}
		return nil
	})
	if err != nil {
		t.Fatal(err)
	}
}

func TestFIFOPerTag(t *testing.T) {
	m := New(2, Uniform())
	err := m.Run(func(p *Proc) error {
		switch p.Rank() {
		case 0:
			for i := 0; i < 10; i++ {
				p.SendValue(1, 3, float64(i))
			}
		case 1:
			for i := 0; i < 10; i++ {
				if v := p.RecvValue(0, 3); v != float64(i) {
					t.Errorf("message %d: got %v", i, v)
				}
			}
		}
		return nil
	})
	if err != nil {
		t.Fatal(err)
	}
}

func TestVirtualTimeCausality(t *testing.T) {
	// Receiver must never observe a message before sender clock + latency.
	cost := CostModel{FlopTime: 1, Latency: 100, BytePeriod: 0}
	m := New(2, cost)
	err := m.Run(func(p *Proc) error {
		switch p.Rank() {
		case 0:
			p.Compute(50) // clock 50
			p.SendValue(1, 0, 1)
		case 1:
			p.RecvValue(0, 0)
			if p.Clock() < 150 {
				t.Errorf("receiver clock %v, want >= 150", p.Clock())
			}
			if p.Stats().IdleTime < 150 {
				t.Errorf("idle time %v, want >= 150", p.Stats().IdleTime)
			}
		}
		return nil
	})
	if err != nil {
		t.Fatal(err)
	}
}

func TestLateReceiverDoesNotIdle(t *testing.T) {
	cost := CostModel{FlopTime: 1, Latency: 1}
	m := New(2, cost)
	err := m.Run(func(p *Proc) error {
		switch p.Rank() {
		case 0:
			p.SendValue(1, 0, 1) // arrives at ~1
		case 1:
			p.Compute(1000) // clock 1000, message long since arrived
			p.RecvValue(0, 0)
			if p.Stats().IdleTime != 0 {
				t.Errorf("idle time %v, want 0", p.Stats().IdleTime)
			}
			if p.Clock() != 1000 {
				t.Errorf("clock %v, want 1000 (zero overheads)", p.Clock())
			}
		}
		return nil
	})
	if err != nil {
		t.Fatal(err)
	}
}

func TestMessageTimeBandwidth(t *testing.T) {
	cost := CostModel{Latency: 10, BytePeriod: 2}
	if got := cost.MessageTime(5); got != 20 {
		t.Errorf("MessageTime(5) = %v, want 20", got)
	}
}

func TestDeadlockDetected(t *testing.T) {
	m := New(2, Uniform())
	err := m.Run(func(p *Proc) error {
		p.Recv((p.Rank()+1)%2, 0) // both wait forever
		return nil
	})
	if !errors.Is(err, ErrDeadlock) {
		t.Fatalf("err = %v, want ErrDeadlock", err)
	}
}

func TestDeadlockWhenPeerExits(t *testing.T) {
	m := New(2, Uniform())
	err := m.Run(func(p *Proc) error {
		if p.Rank() == 1 {
			p.Recv(0, 0) // rank 0 exits immediately; this can never be satisfied
		}
		return nil
	})
	if !errors.Is(err, ErrDeadlock) {
		t.Fatalf("err = %v, want ErrDeadlock", err)
	}
}

func TestMismatchedTagDeadlocks(t *testing.T) {
	m := New(2, Uniform())
	err := m.Run(func(p *Proc) error {
		switch p.Rank() {
		case 0:
			p.SendValue(1, TagOf(1), 1)
			p.RecvValue(1, TagOf(2))
		case 1:
			p.RecvValue(0, TagOf(99)) // wrong tag: never matches
		}
		return nil
	})
	if !errors.Is(err, ErrDeadlock) {
		t.Fatalf("err = %v, want ErrDeadlock", err)
	}
}

func TestBodyErrorPropagates(t *testing.T) {
	m := New(3, Uniform())
	boom := errors.New("boom")
	err := m.Run(func(p *Proc) error {
		if p.Rank() == 2 {
			return boom
		}
		return nil
	})
	if !errors.Is(err, boom) {
		t.Fatalf("err = %v, want boom", err)
	}
}

func TestPanicBecomesError(t *testing.T) {
	m := New(2, Uniform())
	err := m.Run(func(p *Proc) error {
		if p.Rank() == 0 {
			panic("kaboom")
		}
		// Rank 1 blocks; the abort must wake it.
		p.Recv(0, 0)
		return nil
	})
	if err == nil {
		t.Fatal("panic was swallowed")
	}
}

func TestMachineReusableAcrossRuns(t *testing.T) {
	m := New(2, Uniform())
	for round := 0; round < 3; round++ {
		err := m.Run(func(p *Proc) error {
			if p.Rank() == 0 {
				p.Compute(5)
				p.SendValue(1, 0, float64(round))
			} else {
				if v := p.RecvValue(0, 0); v != float64(round) {
					t.Errorf("round %d: got %v", round, v)
				}
			}
			return nil
		})
		if err != nil {
			t.Fatal(err)
		}
		if m.ProcClock(0) != 5 {
			t.Errorf("round %d: clock not reset, got %v", round, m.ProcClock(0))
		}
	}
}

func TestElapsedIsMaxClock(t *testing.T) {
	m := New(3, Uniform())
	err := m.Run(func(p *Proc) error {
		p.Compute(10 * (p.Rank() + 1))
		return nil
	})
	if err != nil {
		t.Fatal(err)
	}
	if got := m.Elapsed(); got != 30 {
		t.Errorf("Elapsed = %v, want 30", got)
	}
}

func TestStatsCounters(t *testing.T) {
	m := New(2, IPSC2())
	err := m.Run(func(p *Proc) error {
		if p.Rank() == 0 {
			p.Compute(100)
			p.Send(1, 0, make([]float64, 4))
		} else {
			p.Recv(0, 0)
		}
		return nil
	})
	if err != nil {
		t.Fatal(err)
	}
	total := m.TotalStats()
	if total.Flops != 100 {
		t.Errorf("Flops = %d, want 100", total.Flops)
	}
	if total.MsgsSent != 1 || total.MsgsRecv != 1 {
		t.Errorf("msgs = %d/%d, want 1/1", total.MsgsSent, total.MsgsRecv)
	}
	if total.BytesSent != 32 {
		t.Errorf("BytesSent = %d, want 32", total.BytesSent)
	}
	if total.CommTime <= 0 || total.IdleTime <= 0 {
		t.Errorf("CommTime=%v IdleTime=%v, want both positive", total.CommTime, total.IdleTime)
	}
}

func TestSendToSelf(t *testing.T) {
	m := New(1, Uniform())
	err := m.Run(func(p *Proc) error {
		p.SendValue(0, 5, 3.5)
		if v := p.RecvValue(0, 5); v != 3.5 {
			t.Errorf("loopback got %v", v)
		}
		return nil
	})
	if err != nil {
		t.Fatal(err)
	}
}

func TestDeterministicVirtualTime(t *testing.T) {
	// The same ring program must produce bit-identical elapsed times on
	// every run, despite arbitrary goroutine scheduling.
	run := func() float64 {
		m := New(8, IPSC2())
		err := m.Run(func(p *Proc) error {
			next := (p.Rank() + 1) % 8
			prev := (p.Rank() + 7) % 8
			token := []float64{float64(p.Rank())}
			for i := 0; i < 20; i++ {
				p.Compute(37)
				p.Send(next, 1, token)
				token = p.Recv(prev, 1)
			}
			return nil
		})
		if err != nil {
			t.Fatal(err)
		}
		return m.Elapsed()
	}
	want := run()
	for i := 0; i < 5; i++ {
		if got := run(); got != want {
			t.Fatalf("run %d: elapsed %v != %v", i, got, want)
		}
	}
}

func TestClockMonotoneProperty(t *testing.T) {
	// Property: along any processor's execution, the clock never
	// decreases, for random message patterns on a small machine.
	f := func(seed int64) bool {
		rng := newSplitMix(uint64(seed))
		const p = 4
		const rounds = 12
		m := New(p, Balanced())
		// Precompute a deterministic schedule: each round, a random
		// permutation tells proc i to send to perm[i] then receive
		// from perm^{-1}(i), and a per-proc compute amount (drawn up
		// front: the generator must not be shared across goroutines).
		perms := make([][]int, rounds)
		work := make([][]int, rounds)
		for r := range perms {
			perms[r] = randPerm(rng, p)
			work[r] = make([]int, p)
			for i := range work[r] {
				work[r][i] = int(rng.next()%50) + 1
			}
		}
		ok := true
		err := m.Run(func(pr *Proc) error {
			last := 0.0
			check := func() {
				if pr.Clock() < last {
					ok = false
				}
				last = pr.Clock()
			}
			for r := 0; r < rounds; r++ {
				perm := perms[r]
				pr.Compute(work[r][pr.Rank()])
				check()
				pr.Send(perm[pr.Rank()], Tag(r), []float64{1})
				check()
				src := indexOf(perm, pr.Rank())
				pr.Recv(src, Tag(r))
				check()
			}
			return nil
		})
		return err == nil && ok
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 30}); err != nil {
		t.Fatal(err)
	}
}

func TestSendsEqualReceivesProperty(t *testing.T) {
	f := func(seed int64) bool {
		rng := newSplitMix(uint64(seed))
		const p = 5
		m := New(p, ZeroComm())
		counts := make([]int, p) // messages proc i will send to (i+1)%p
		for i := range counts {
			counts[i] = int(rng.next() % 20)
		}
		err := m.Run(func(pr *Proc) error {
			n := counts[pr.Rank()]
			for i := 0; i < n; i++ {
				pr.SendValue((pr.Rank()+1)%p, 0, float64(i))
			}
			prev := (pr.Rank() + p - 1) % p
			for i := 0; i < counts[prev]; i++ {
				pr.RecvValue(prev, 0)
			}
			return nil
		})
		if err != nil {
			return false
		}
		tot := m.TotalStats()
		return tot.MsgsSent == tot.MsgsRecv
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 25}); err != nil {
		t.Fatal(err)
	}
}

func TestIdleTimeNonNegativeAndFinite(t *testing.T) {
	m := New(4, IPSC2())
	err := m.Run(func(p *Proc) error {
		if p.Rank() == 0 {
			p.Compute(1000)
			for d := 1; d < 4; d++ {
				p.Send(d, 0, make([]float64, 100))
			}
		} else {
			p.Recv(0, 0)
		}
		return nil
	})
	if err != nil {
		t.Fatal(err)
	}
	for r := 0; r < 4; r++ {
		s := m.ProcStats(r)
		if s.IdleTime < 0 || math.IsNaN(s.IdleTime) || math.IsInf(s.IdleTime, 0) {
			t.Errorf("rank %d idle time %v", r, s.IdleTime)
		}
	}
}

// --- small deterministic PRNG helpers for property tests ---

type splitMix struct{ s uint64 }

func newSplitMix(seed uint64) *splitMix { return &splitMix{s: seed} }

func (r *splitMix) next() uint64 {
	r.s += 0x9e3779b97f4a7c15
	z := r.s
	z = (z ^ (z >> 30)) * 0xbf58476d1ce4e5b9
	z = (z ^ (z >> 27)) * 0x94d049bb133111eb
	return z ^ (z >> 31)
}

func randPerm(r *splitMix, n int) []int {
	p := make([]int, n)
	for i := range p {
		p[i] = i
	}
	for i := n - 1; i > 0; i-- {
		j := int(r.next() % uint64(i+1))
		p[i], p[j] = p[j], p[i]
	}
	return p
}

func indexOf(s []int, v int) int {
	for i, x := range s {
		if x == v {
			return i
		}
	}
	return -1
}
