package machine

import (
	"math"
	"testing"
)

func TestLinkMessageTimePricing(t *testing.T) {
	flat := CostModel{Latency: 100, BytePeriod: 2}
	hier := flat.WithInterNode(3, 5)

	// Flat model: every pair prices identically, nodes notwithstanding.
	if got, want := flat.LinkMessageTime(0, 1, 8), flat.MessageTime(8); got != want {
		t.Errorf("flat inter-node price %v, want %v", got, want)
	}
	// Hierarchical: intra-node stays flat, inter-node scales both terms.
	if got, want := hier.LinkMessageTime(2, 2, 8), flat.MessageTime(8); got != want {
		t.Errorf("hierarchical intra-node price %v, want flat %v", got, want)
	}
	if got, want := hier.LinkMessageTime(0, 1, 8), 3*100.0+5*2.0*8; got != want {
		t.Errorf("hierarchical inter-node price %v, want %v", got, want)
	}
	if got, want := hier.InterNodeExtra(8), (3-1)*100.0+(5-1)*2.0*8; got != want {
		t.Errorf("inter-node extra %v, want %v", got, want)
	}
	// Unit multipliers are the degenerate flat case.
	if got, want := flat.WithInterNode(1, 1).LinkMessageTime(0, 3, 16), flat.MessageTime(16); got != want {
		t.Errorf("unit multipliers price %v, want flat %v", got, want)
	}
}

func TestWithLinkOverride(t *testing.T) {
	base := CostModel{Latency: 10, BytePeriod: 1}
	c := base.WithInterNode(2, 2).WithLink(0, 1, LinkCost{Latency: 7, Byte: 3})
	if got, want := c.LinkMessageTime(0, 1, 8), 7*10.0+3*1.0*8; got != want {
		t.Errorf("overridden link price %v, want %v", got, want)
	}
	// The override is directed; the reverse link keeps the default.
	if got, want := c.LinkMessageTime(1, 0, 8), 2*10.0+2*1.0*8; got != want {
		t.Errorf("reverse link price %v, want default %v", got, want)
	}
	// WithLink on a flat model defaults the other links to unit scale.
	c2 := base.WithLink(1, 2, LinkCost{Latency: 4, Byte: 4})
	if got, want := c2.LinkMessageTime(0, 1, 8), base.MessageTime(8); got != want {
		t.Errorf("unconfigured link price %v, want flat %v", got, want)
	}
	// Value semantics: deriving c2 must not have touched c's table.
	if got, want := c.LinkMessageTime(1, 2, 8), 2*10.0+2*1.0*8; got != want {
		t.Errorf("WithLink mutated its receiver: link 1->2 prices %v, want %v", got, want)
	}
	// InterNodeExtra is the default link's surcharge: per-pair overrides
	// (even of link (0,1)) must not leak into it.
	want := (2-1)*10.0 + (2-1)*1.0*8
	if got := c.InterNodeExtra(8); got != want {
		t.Errorf("InterNodeExtra with a (0,1) override = %v, want default-link %v", got, want)
	}
	if got := base.InterNodeExtra(8); got != 0 {
		t.Errorf("flat model InterNodeExtra = %v, want 0", got)
	}
}

// TestFederatedHierarchicalArrival pins the exact clock arithmetic of a
// priced inter-node message: the receiver's idle time is the link-scaled
// arrival, not the flat one.
func TestFederatedHierarchicalArrival(t *testing.T) {
	cost := CostModel{Latency: 100, BytePeriod: 1, SendOverhead: 1, RecvOverhead: 1}.WithInterNode(3, 2)
	check := func(t *testing.T, m *Machine, wantArrival float64) {
		t.Helper()
		err := m.Run(func(p *Proc) error {
			if p.Rank() == 0 {
				p.Send(1, 1, make([]float64, 4)) // 32 bytes
				return nil
			}
			got := p.Recv(0, 1)
			p.ReleaseBuf(got)
			// clock = arrival + RecvOverhead when the receiver waited.
			if want := wantArrival + 1; math.Abs(p.Clock()-want) > 1e-12 {
				t.Errorf("receiver clock %v, want %v", p.Clock(), want)
			}
			return nil
		})
		if err != nil {
			t.Fatal(err)
		}
	}
	// Two nodes of one processor each: the message crosses the link and
	// pays 1 (send overhead) + 3*100 + 2*1*32.
	check(t, NewFederated(2, 2, cost), 1+3*100+2*32)
	// One node: intra-node message, flat price.
	check(t, NewFederated(2, 1, cost), 1+100+32)
	// Shared transport: always flat, even with the table installed.
	check(t, New(2, cost), 1+100+32)
}

// TestConformanceHierarchicalDivergence is the value-equality-but-
// time-divergence battery: under a hierarchical cost model every transport
// still produces bit-identical values and message/byte censuses, but
// multi-node federations run honestly slower virtual clocks than the
// shared (single-node) machine, by exactly the inter-node surcharge of
// their link crossings.
func TestConformanceHierarchicalDivergence(t *testing.T) {
	const n = 8
	cost := IPSC2().WithInterNode(4, 8)
	type result struct {
		values  []float64
		stats   []Stats
		elapsed float64
	}
	results := map[string]result{}
	for _, row := range conformanceRows(t, n) {
		m := NewWithTransport(row.tr, cost)
		values, stats, elapsed, err := conformanceProgram(m)
		if err != nil {
			t.Fatalf("%s: %v", row.name, err)
		}
		results[row.name] = result{values: values, stats: stats, elapsed: elapsed}
	}
	ref := results["shared"]
	for name, cur := range results {
		for r := 0; r < n; r++ {
			if cur.values[r] != ref.values[r] {
				t.Errorf("%s: rank %d value %v != shared's %v", name, r, cur.values[r], ref.values[r])
			}
			// The census — flops, messages, bytes — is transport-
			// invariant; only the time-valued fields may move.
			cs, rs := cur.stats[r], ref.stats[r]
			if cs.Flops != rs.Flops || cs.MsgsSent != rs.MsgsSent ||
				cs.BytesSent != rs.BytesSent || cs.MsgsRecv != rs.MsgsRecv {
				t.Errorf("%s: rank %d census %+v != shared's %+v", name, r, cs, rs)
			}
		}
	}
	// A one-node federation has no inter-node link to charge.
	if got := results["federated/1node"].elapsed; got != ref.elapsed {
		t.Errorf("federated/1node elapsed %v != shared's %v", got, ref.elapsed)
	}
	// Multi-node federations must be strictly slower: the program's ring
	// and fan-in both cross node boundaries.
	for _, name := range []string{"federated/2nodes", "federated/pernode"} {
		if got := results[name].elapsed; !(got > ref.elapsed) {
			t.Errorf("%s elapsed %v, want > shared's %v", name, got, ref.elapsed)
		}
	}
	// More boundaries cross more messages: per-processor nodes can only
	// be slower than two-node halves for this all-pairs-ish pattern.
	if two, per := results["federated/2nodes"].elapsed, results["federated/pernode"].elapsed; !(per > two) {
		t.Errorf("federated/pernode elapsed %v, want > federated/2nodes %v", per, two)
	}
}

// TestFederatedStressCheckStalledAbort hammers the deadlock detector and
// Abort against live concurrent traffic: CheckStalled must never flag a
// machine whose processors are making progress (the quiescent-state
// deadlock tests cannot see this race), and Abort must cleanly take down a
// storm in flight. Run under -race this exercises the lock ordering of
// CheckStalled's all-node snapshot against concurrent sends.
func TestFederatedStressCheckStalledAbort(t *testing.T) {
	const n, rounds = 8, 300
	m := NewFederated(n, 4, ZeroComm())
	tr := m.Transport().(*FederatedTransport)

	stop := make(chan struct{})
	hammered := make(chan struct{})
	go func() {
		defer close(hammered)
		for {
			select {
			case <-stop:
				return
			default:
				if tr.CheckStalled() {
					return
				}
			}
		}
	}()
	err := m.Run(func(p *Proc) error {
		// All-to-all ping storm crossing every link both ways.
		me := p.Rank()
		for r := 0; r < rounds; r++ {
			dst := (me + 1 + r%(n-1)) % n
			p.SendValue(dst, TagOf(uint16(r)), float64(me*rounds+r))
		}
		for r := 0; r < rounds; r++ {
			src := (me - 1 - r%(n-1) + 2*n) % n
			if v := p.RecvValue(src, TagOf(uint16(r))); v != float64(src*rounds+r) {
				t.Errorf("rank %d round %d: got %v from %d", me, r, v, src)
			}
		}
		return nil
	})
	close(stop)
	<-hammered
	if err != nil {
		t.Fatalf("storm under CheckStalled hammering: %v", err)
	}
	if tr.Down() {
		t.Fatal("CheckStalled flagged a live machine as stalled")
	}

	// Abort in flight: receivers blocked on never-sent messages while the
	// hammer keeps probing; everyone must unblock with an error.
	m.Run(func(p *Proc) error { return nil }) // reset
	stop2 := make(chan struct{})
	go func() {
		for {
			select {
			case <-stop2:
				return
			default:
				tr.CheckStalled()
			}
		}
	}()
	done := make(chan error, 1)
	go func() {
		done <- m.Run(func(p *Proc) error {
			// Odd ranks chat forever with even partners until the
			// abort; even ranks wait on a message that never comes.
			if p.Rank()%2 == 0 {
				p.Recv((p.Rank()+1)%n, TagOf(0x7fff))
				return nil
			}
			for i := 0; ; i++ {
				p.SendValue((p.Rank()+2)%n, TagOf(uint16(i%100)), 1)
				if tr.Down() {
					return nil
				}
			}
		})
	}()
	// Let the storm build, then pull the plug.
	for {
		if msgs, _ := tr.InterNodeTraffic(); msgs > 100 {
			break
		}
	}
	tr.Abort()
	if err := <-done; err == nil {
		t.Fatal("aborted run returned nil error")
	}
	close(stop2)
	if !tr.Down() {
		t.Fatal("transport not down after Abort")
	}
}
