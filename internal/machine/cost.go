package machine

// CostModel describes the virtual-time cost of computation and communication
// on the simulated multicomputer. All quantities are in (virtual) seconds.
//
// The model is LogGP-flavoured: a message of b bytes sent at sender time t
// occupies the sender for SendOverhead seconds and arrives at the receiver at
//
//	t + SendOverhead + Latency + b*BytePeriod
//
// On a hierarchical transport the Latency and BytePeriod terms of a message
// crossing node boundaries are scaled by the crossed link's LinkCost (see
// InterNodeCost); the transport's MessageTime method decides which link a
// message crosses.
//
// The receiver, executing a matching Recv at local time t', resumes at
//
//	max(t', arrival) + RecvOverhead
//
// accumulating max(0, arrival-t') as idle time. Compute(n) advances the local
// clock by n*FlopTime.
type CostModel struct {
	// FlopTime is the virtual time per floating point operation.
	FlopTime float64
	// Latency is the per-message network latency (the "alpha" term).
	Latency float64
	// BytePeriod is the per-byte transfer time (the "beta" term,
	// 1/bandwidth).
	BytePeriod float64
	// SendOverhead is processor time consumed by issuing a send.
	SendOverhead float64
	// RecvOverhead is processor time consumed by completing a receive.
	RecvOverhead float64
	// InterNode, when non-nil, prices messages that cross node boundaries
	// on a hierarchical transport: Latency and BytePeriod are scaled by
	// the crossed link's LinkCost. A nil table is the flat model — every
	// message pays the same price regardless of the delivering transport's
	// topology.
	InterNode *InterNodeCost
}

// MessageTime returns the end-to-end transfer time for a message of b bytes,
// excluding sender and receiver overheads, at the flat (intra-node) price.
func (c CostModel) MessageTime(b int) float64 {
	return c.Latency + float64(b)*c.BytePeriod
}

// IsZero reports whether c is the zero cost model — the value configuration
// layers treat as "no model given, use the preset". It compares fields
// explicitly rather than via ==, so it keeps compiling (and callers keep
// working) if CostModel ever grows a non-comparable field.
func (c CostModel) IsZero() bool {
	return c.FlopTime == 0 && c.Latency == 0 && c.BytePeriod == 0 &&
		c.SendOverhead == 0 && c.RecvOverhead == 0 && c.InterNode == nil
}

// LinkCost scales the flat communication terms for messages crossing one
// directed inter-node link of a hierarchical machine. The multipliers apply
// to CostModel.Latency and CostModel.BytePeriod respectively; {1, 1} prices
// a link exactly like intra-node traffic.
type LinkCost struct {
	// Latency multiplies CostModel.Latency on this link.
	Latency float64
	// Byte multiplies CostModel.BytePeriod on this link.
	Byte float64
}

// InterNodeCost extends a flat CostModel with hierarchical per-link pricing:
// a message that crosses from node a to node b pays the flat model's terms
// scaled by the link's LinkCost. It is the cost-model half of the NUMA-style
// federation — FederatedTransport knows which link a message crosses,
// InterNodeCost knows what that link charges.
type InterNodeCost struct {
	// Default applies to every inter-node link without an explicit entry
	// in Links.
	Default LinkCost
	// Links overrides Default for specific directed node pairs, keyed by
	// [2]int{srcNode, dstNode}.
	Links map[[2]int]LinkCost
}

// scale returns the link cost of the directed node pair (a, b).
func (ic *InterNodeCost) scale(a, b int) LinkCost {
	if ic.Links != nil {
		if lc, ok := ic.Links[[2]int{a, b}]; ok {
			return lc
		}
	}
	return ic.Default
}

// LinkMessageTime returns the end-to-end transfer time for b bytes sent from
// node src to node dst. Intra-node messages (src == dst) and models with no
// InterNode table — the degenerate flat case — price every message with
// MessageTime; inter-node messages pay the link-scaled latency and byte
// period.
func (c CostModel) LinkMessageTime(src, dst, b int) float64 {
	if src == dst || c.InterNode == nil {
		return c.MessageTime(b)
	}
	s := c.InterNode.scale(src, dst)
	return c.Latency*s.Latency + float64(b)*c.BytePeriod*s.Byte
}

// InterNodeExtra returns the surcharge an inter-node message of b bytes
// pays over the flat price on the default link (per-pair WithLink
// overrides do not affect it) — the per-message quantity the performance
// estimator charges each node-boundary crossing.
func (c CostModel) InterNodeExtra(b int) float64 {
	if c.InterNode == nil {
		return 0
	}
	s := c.InterNode.Default
	return c.Latency*(s.Latency-1) + float64(b)*c.BytePeriod*(s.Byte-1)
}

// WithInterNode returns a copy of c whose inter-node links all charge the
// given latency and byte-period multipliers. Multipliers of 1 reproduce the
// flat model; real node interconnects are slower than intra-node delivery,
// so useful values are > 1.
func (c CostModel) WithInterNode(latency, byte float64) CostModel {
	c.InterNode = &InterNodeCost{Default: LinkCost{Latency: latency, Byte: byte}}
	return c
}

// WithLink returns a copy of c in which the directed link from node src to
// node dst charges lc, overriding the default inter-node cost (an
// asymmetric or irregular interconnect: a slow uplink, a fast backbone
// pair). The receiver's link table is copied, so cost models stay value
// types.
func (c CostModel) WithLink(src, dst int, lc LinkCost) CostModel {
	in := InterNodeCost{Default: LinkCost{Latency: 1, Byte: 1}}
	if c.InterNode != nil {
		in.Default = c.InterNode.Default
		in.Links = make(map[[2]int]LinkCost, len(c.InterNode.Links)+1)
		for k, v := range c.InterNode.Links {
			in.Links[k] = v
		}
	} else {
		in.Links = make(map[[2]int]LinkCost, 1)
	}
	in.Links[[2]int{src, dst}] = lc
	c.InterNode = &in
	return c
}

// IPSC2 returns a cost model resembling a 1989 Intel iPSC/2 hypercube node:
// roughly 1 MFLOPS per node, ~350 microseconds message latency and ~2.8 MB/s
// of link bandwidth. Communication dominates, as it did for the machines the
// paper targets.
func IPSC2() CostModel {
	return CostModel{
		FlopTime:     1e-6,
		Latency:      350e-6,
		BytePeriod:   1.0 / 2.8e6,
		SendOverhead: 50e-6,
		RecvOverhead: 50e-6,
	}
}

// Balanced returns a generic mid-range machine: 10 MFLOPS nodes, 10
// microsecond latency, 100 MB/s links.
func Balanced() CostModel {
	return CostModel{
		FlopTime:     1e-7,
		Latency:      10e-6,
		BytePeriod:   1.0 / 100e6,
		SendOverhead: 1e-6,
		RecvOverhead: 1e-6,
	}
}

// ZeroComm returns a model in which communication is free. It isolates the
// algorithmic load balance of a program from its communication structure.
func ZeroComm() CostModel {
	return CostModel{FlopTime: 1e-6}
}

// Uniform returns a model in which every flop costs one virtual second and
// communication is free; useful in unit tests where exact clock values are
// asserted.
func Uniform() CostModel {
	return CostModel{FlopTime: 1}
}
