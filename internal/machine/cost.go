package machine

// CostModel describes the virtual-time cost of computation and communication
// on the simulated multicomputer. All quantities are in (virtual) seconds.
//
// The model is LogGP-flavoured: a message of b bytes sent at sender time t
// occupies the sender for SendOverhead seconds and arrives at the receiver at
//
//	t + SendOverhead + Latency + b*BytePeriod
//
// The receiver, executing a matching Recv at local time t', resumes at
//
//	max(t', arrival) + RecvOverhead
//
// accumulating max(0, arrival-t') as idle time. Compute(n) advances the local
// clock by n*FlopTime.
type CostModel struct {
	// FlopTime is the virtual time per floating point operation.
	FlopTime float64
	// Latency is the per-message network latency (the "alpha" term).
	Latency float64
	// BytePeriod is the per-byte transfer time (the "beta" term,
	// 1/bandwidth).
	BytePeriod float64
	// SendOverhead is processor time consumed by issuing a send.
	SendOverhead float64
	// RecvOverhead is processor time consumed by completing a receive.
	RecvOverhead float64
}

// MessageTime returns the end-to-end transfer time for a message of b bytes,
// excluding sender and receiver overheads.
func (c CostModel) MessageTime(b int) float64 {
	return c.Latency + float64(b)*c.BytePeriod
}

// IPSC2 returns a cost model resembling a 1989 Intel iPSC/2 hypercube node:
// roughly 1 MFLOPS per node, ~350 microseconds message latency and ~2.8 MB/s
// of link bandwidth. Communication dominates, as it did for the machines the
// paper targets.
func IPSC2() CostModel {
	return CostModel{
		FlopTime:     1e-6,
		Latency:      350e-6,
		BytePeriod:   1.0 / 2.8e6,
		SendOverhead: 50e-6,
		RecvOverhead: 50e-6,
	}
}

// Balanced returns a generic mid-range machine: 10 MFLOPS nodes, 10
// microsecond latency, 100 MB/s links.
func Balanced() CostModel {
	return CostModel{
		FlopTime:     1e-7,
		Latency:      10e-6,
		BytePeriod:   1.0 / 100e6,
		SendOverhead: 1e-6,
		RecvOverhead: 1e-6,
	}
}

// ZeroComm returns a model in which communication is free. It isolates the
// algorithmic load balance of a program from its communication structure.
func ZeroComm() CostModel {
	return CostModel{FlopTime: 1e-6}
}

// Uniform returns a model in which every flop costs one virtual second and
// communication is free; useful in unit tests where exact clock values are
// asserted.
func Uniform() CostModel {
	return CostModel{FlopTime: 1}
}
