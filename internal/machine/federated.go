package machine

import (
	"fmt"
	"sync"
	"sync/atomic"
)

// FederatedTransport partitions a machine's processors into nodes of equal
// size — the NUMA-style multi-machine federation past the reach of one
// shared mailbox array. Intra-node messages go through the node's own
// mailbox (one lock per node, private to its processors); inter-node
// messages are routed through a per-ordered-node-pair link that serializes
// delivery, so each directed node pair behaves like one FIFO network
// channel and carries byte/message counters — the numbers a performance
// estimator needs to price node interconnect traffic.
//
// Under a flat cost model a program's clocks, statistics and results are
// bit-identical on a FederatedTransport and a SharedTransport; the
// conformance suite and the S2 experiment hold both transports to that.
// With a hierarchical cost model (CostModel.InterNode) the federation
// additionally prices inter-node messages at their link's latency and
// bandwidth through MessageTime, so values and message counts stay
// identical while virtual times honestly diverge — the NUMA effect the
// paper's performance-estimation story needs the clock to see.
type FederatedTransport struct {
	n       int
	nnodes  int
	perNode int
	nodes   []nodeBox
	links   []link // directed node pairs, row-major [src*nnodes+dst]
	coord   Coordinator
	down    atomic.Bool
	bar     hostBarrier
}

// fedKey matches receives to sends inside one node's shared mailbox:
// point-to-point by destination rank, source rank and tag (the same
// (src, tag) stream discipline as the shared transport, with the receiving
// endpoint made explicit because the mailbox is shared by the node).
type fedKey struct {
	dst int
	src int
	tag Tag
}

// nodeBox is one node's incoming message state: a single queue map guarded
// by one lock for all of the node's processors, with one condition variable
// per local processor for targeted wakeups.
type nodeBox struct {
	mu     sync.Mutex
	queues map[fedKey][]message
	spare  [][]message
	// Per local processor (index = rank - node*perNode): the stream the
	// processor is parked on, if any.
	conds   []*sync.Cond
	awaits  []fedKey
	waiting []bool
}

// link is one directed inter-node channel. Delivery holds the link lock,
// so messages crossing the same node pair are handed to the destination
// node in send order — an honest stand-in for a FIFO network link — and the
// counters census every byte that would cross the interconnect.
type link struct {
	mu    sync.Mutex
	msgs  int64
	bytes int64
}

// NewFederatedTransport returns a transport with n endpoints partitioned
// into nnodes equal nodes (nnodes must divide n). Node k owns ranks
// [k*n/nnodes, (k+1)*n/nnodes).
func NewFederatedTransport(n, nnodes int) *FederatedTransport {
	if n <= 0 {
		panic(fmt.Sprintf("machine: transport endpoint count must be positive, got %d", n))
	}
	if nnodes <= 0 || n%nnodes != 0 {
		panic(fmt.Sprintf("machine: federation of %d processors needs a positive node count dividing it, got %d", n, nnodes))
	}
	t := &FederatedTransport{
		n:       n,
		nnodes:  nnodes,
		perNode: n / nnodes,
		nodes:   make([]nodeBox, nnodes),
		links:   make([]link, nnodes*nnodes),
	}
	for i := range t.nodes {
		nb := &t.nodes[i]
		nb.queues = make(map[fedKey][]message)
		nb.conds = make([]*sync.Cond, t.perNode)
		nb.awaits = make([]fedKey, t.perNode)
		nb.waiting = make([]bool, t.perNode)
		for j := range nb.conds {
			nb.conds[j] = sync.NewCond(&nb.mu)
		}
	}
	t.bar.init(n)
	return t
}

// Size returns the number of endpoints.
func (t *FederatedTransport) Size() int { return t.n }

// Nodes returns the number of federation nodes.
func (t *FederatedTransport) Nodes() int { return t.nnodes }

// ProcsPerNode returns the number of processors on each node.
func (t *FederatedTransport) ProcsPerNode() int { return t.perNode }

// NodeOf returns the node owning the given rank.
func (t *FederatedTransport) NodeOf(rank int) int { return rank / t.perNode }

// Bind installs the machine's coordinator (nil for standalone use).
func (t *FederatedTransport) Bind(c Coordinator) { t.coord = c }

// Down reports whether the transport has been aborted since the last Reset.
func (t *FederatedTransport) Down() bool { return t.down.Load() }

// LinkTraffic returns the message and byte counts carried by the directed
// link from node src to node dst since the last Reset. Counts are a
// deterministic function of the program (every inter-node message crosses
// exactly one link), so they can be asserted exactly.
func (t *FederatedTransport) LinkTraffic(src, dst int) (msgs, bytes int64) {
	l := &t.links[src*t.nnodes+dst]
	l.mu.Lock()
	defer l.mu.Unlock()
	return l.msgs, l.bytes
}

// InterNodeTraffic returns the total message and byte counts that crossed
// node boundaries since the last Reset.
func (t *FederatedTransport) InterNodeTraffic() (msgs, bytes int64) {
	for i := range t.links {
		l := &t.links[i]
		l.mu.Lock()
		msgs += l.msgs
		bytes += l.bytes
		l.mu.Unlock()
	}
	return msgs, bytes
}

// MessageTime prices a message by the link it crosses: intra-node messages
// pay the flat cost, inter-node messages pay the cost model's per-link
// price. With a flat cost model (no InterNode table) every pair prices
// identically to SharedTransport — the degenerate case the conformance
// suite's bit-identical-times battery pins.
func (t *FederatedTransport) MessageTime(cost CostModel, src, dst, b int) float64 {
	return cost.LinkMessageTime(src/t.perNode, dst/t.perNode, b)
}

// deliver places the message in dst's node mailbox and wakes dst if it is
// parked on exactly this stream (through the machine's Parker when a
// parking engine is driving; see SharedTransport.Send).
func (t *FederatedTransport) deliver(k fedKey, msg message) {
	nb := &t.nodes[k.dst/t.perNode]
	li := k.dst % t.perNode
	nb.mu.Lock()
	q, ok := nb.queues[k]
	if !ok && len(nb.spare) > 0 {
		q = nb.spare[len(nb.spare)-1]
		nb.spare = nb.spare[:len(nb.spare)-1]
	}
	nb.queues[k] = append(q, msg)
	if nb.waiting[li] && nb.awaits[li] == k {
		if pk := parkerOf(t.coord); pk != nil {
			pk.Wake(k.dst)
		} else {
			nb.conds[li].Signal()
		}
	}
	nb.mu.Unlock()
}

// Send routes a message: directly into the destination node's mailbox for
// intra-node traffic, through the (srcNode, dstNode) link — counted and
// order-preserved under the link lock — for inter-node traffic.
func (t *FederatedTransport) Send(src, dst int, tag Tag, data []float64, arrival float64) {
	k := fedKey{dst: dst, src: src, tag: tag}
	msg := message{data: data, arrival: arrival}
	sn, dn := src/t.perNode, dst/t.perNode
	if sn == dn {
		t.deliver(k, msg)
		return
	}
	l := &t.links[sn*t.nnodes+dn]
	l.mu.Lock()
	l.msgs++
	l.bytes += int64(len(data) * wordBytes)
	t.deliver(k, msg)
	l.mu.Unlock()
}

// Recv blocks the calling endpoint until a message matching (src, tag) is
// available in its node's mailbox, then returns it. ok is false if the
// transport went down while waiting.
func (t *FederatedTransport) Recv(dst, src int, tag Tag) ([]float64, float64, bool) {
	nb := &t.nodes[dst/t.perNode]
	li := dst % t.perNode
	k := fedKey{dst: dst, src: src, tag: tag}
	nb.mu.Lock()
	if msg, ok := nb.takeLocked(k); ok {
		nb.mu.Unlock()
		return msg.data, msg.arrival, true
	}
	if t.down.Load() {
		nb.mu.Unlock()
		return nil, 0, false
	}
	nb.awaits[li] = k
	nb.waiting[li] = true
	nb.mu.Unlock()

	if t.coord != nil {
		t.coord.Blocked()
	}

	pk := parkerOf(t.coord)
	nb.mu.Lock()
	for {
		if msg, ok := nb.takeLocked(k); ok {
			nb.waiting[li] = false
			nb.mu.Unlock()
			if t.coord != nil {
				t.coord.Unblocked()
			}
			return msg.data, msg.arrival, true
		}
		if t.down.Load() {
			nb.waiting[li] = false
			nb.mu.Unlock()
			if t.coord != nil {
				t.coord.Unblocked()
			}
			return nil, 0, false
		}
		if pk != nil {
			nb.mu.Unlock()
			pk.Park(dst)
			nb.mu.Lock()
		} else {
			nb.conds[li].Wait()
		}
	}
}

// takeLocked removes the oldest message matching k from the node mailbox,
// recycling drained queue slices. Caller holds nb.mu.
func (nb *nodeBox) takeLocked(k fedKey) (message, bool) {
	q := nb.queues[k]
	if len(q) == 0 {
		return message{}, false
	}
	msg := q[0]
	copy(q, q[1:])
	q[len(q)-1] = message{}
	q = q[:len(q)-1]
	if len(q) == 0 {
		delete(nb.queues, k)
		nb.spare = append(nb.spare, q)
	} else {
		nb.queues[k] = q
	}
	return msg, true
}

// Barrier parks the calling endpoint until all endpoints arrive.
func (t *FederatedTransport) Barrier(rank int) bool {
	if rank < 0 || rank >= t.n {
		panic(fmt.Sprintf("machine: barrier from invalid rank %d", rank))
	}
	return t.bar.await(rank, &t.down, parkerOf(t.coord))
}

// Reset clears all node mailboxes, waiter state, link counters and the down
// flag, keeping allocated capacity. Each node and link lock is held while
// its state is cleared, so a concurrent CheckStalled or link-counter reader
// (a stress harness, a monitoring goroutine) observes either the old state
// or the cleared one, never a torn mixture.
func (t *FederatedTransport) Reset() {
	for i := range t.nodes {
		nb := &t.nodes[i]
		nb.mu.Lock()
		for k, q := range nb.queues {
			for j := range q {
				q[j] = message{}
			}
			delete(nb.queues, k)
			nb.spare = append(nb.spare, q[:0])
		}
		for j := range nb.waiting {
			nb.waiting[j] = false
			nb.awaits[j] = fedKey{}
		}
		nb.mu.Unlock()
	}
	for i := range t.links {
		l := &t.links[i]
		l.mu.Lock()
		l.msgs = 0
		l.bytes = 0
		l.mu.Unlock()
	}
	t.bar.reset()
	t.down.Store(false)
}

// Abort marks the transport down and wakes every blocked receiver.
func (t *FederatedTransport) Abort() {
	t.down.Store(true)
	for i := range t.nodes {
		nb := &t.nodes[i]
		nb.mu.Lock()
		for _, c := range nb.conds {
			c.Broadcast()
		}
		nb.mu.Unlock()
	}
	t.bar.wake()
	if pk := parkerOf(t.coord); pk != nil {
		pk.WakeAll()
	}
}

// CheckStalled takes every node lock (in node order) for a consistent
// snapshot and flags a deadlock when all live processors are parked with no
// matching pending message anywhere. See SharedTransport.CheckStalled for
// the protocol; the federated version differs only in where waiters and
// queues live.
func (t *FederatedTransport) CheckStalled() bool { return t.stallCheck(true) }

// probeStalled evaluates the stall condition without declaring it; see
// SharedTransport.probeStalled.
func (t *FederatedTransport) probeStalled() bool { return t.stallCheck(false) }

// stallCheck is the shared body of CheckStalled (declare=true) and
// probeStalled (declare=false).
func (t *FederatedTransport) stallCheck(declare bool) bool {
	if t.coord == nil {
		return false
	}
	for i := range t.nodes {
		t.nodes[i].mu.Lock()
	}
	stalled := false
	if !t.down.Load() {
		if live := t.coord.ConfirmStall(); live > 0 {
			waiting := 0
			canProceed := false
			for i := range t.nodes {
				nb := &t.nodes[i]
				for j, w := range nb.waiting {
					if !w {
						continue
					}
					waiting++
					if len(nb.queues[nb.awaits[j]]) > 0 {
						canProceed = true
					}
				}
			}
			if waiting >= live && !canProceed {
				stalled = true
			}
		}
	}
	if stalled && declare {
		t.down.Store(true)
		for i := range t.nodes {
			for _, c := range t.nodes[i].conds {
				c.Broadcast()
			}
		}
	}
	for i := range t.nodes {
		t.nodes[i].mu.Unlock()
	}
	if stalled && declare {
		t.bar.wake()
		if pk := parkerOf(t.coord); pk != nil {
			pk.WakeAll()
		}
	}
	return stalled
}
