package machine

import (
	"bufio"
	"encoding/binary"
	"errors"
	"fmt"
	"io"
	"math"
	"net"
	"os"
	"os/exec"
	"path/filepath"
	"runtime"
	"strconv"
	"sync"
	"sync/atomic"
	"time"

	"repro/internal/wire"
)

// ErrWorkerLost is wrapped into the abort reason when an IPC worker process
// dies (crash, kill, unexpected close) while the transport is live; the
// wrapping error names the node, and Machine.Run surfaces it through the
// failing processor's error.
var ErrWorkerLost = errors.New("machine: ipc worker process lost")

// stallRechecker is the optional coordinator extension the IPC transport
// uses to re-run the machine's stall decision from its own delivery
// goroutines: when the last in-flight frame drains, whichever transport
// stack the machine actually runs (the chaos wrapper when present, so
// retransmission fires too) must get another CheckStalled look, because the
// rank whose Blocked() triggered the previous look could not see frames
// that were still crossing the socket.
type stallRechecker interface {
	RecheckStall()
}

// Worker probe-ack status flags (the Tag field of a wire.KindProbeAck
// frame) and the distinguished abort sequence of the execution protocol.
const (
	probeStalled       uint64 = 1 << 0 // every live local rank blocked, no pending message matches
	probeFinished      uint64 = 1 << 1 // every local rank finished; results streamed or streaming
	abortStallDeclared uint64 = 1      // KindAbort Seq: coordinator declared a distributed stall
)

// bufPool is the optional coordinator extension giving transports access to
// the machine-wide message buffer pool, so a transport that unpacks
// payloads off a wire (rather than handing over the sender's own buffer)
// can keep its steady state allocation-free: every serialized send releases
// its buffer here and every decoded delivery reacquires one.
type bufPool interface {
	acquirePooled(n int) []float64
	releasePooled(buf []float64)
}

// IPCTransport is the cross-process transport: the paper's loosely coupled
// machine with the looseness made real. The coordinator process (the one
// running Machine.Run) keeps every rank's mailbox and goroutine local —
// rank bodies are Go closures and cannot cross a process boundary — and
// forks one worker process per node (a hidden re-exec of the current
// binary, see ipc_worker.go), each acting as that node's network daemon.
// Every inter-node message is serialized into a wire.Frame, crosses a Unix
// domain socket (TCP loopback where UDS is unavailable) to the destination
// node's worker, and is reflected back as a Deliver frame before it can
// enter the destination mailbox — so inter-node traffic pays two real
// socket crossings and a full encode/decode round trip, while intra-node
// traffic stays in process memory. Frames on one socket are FIFO, which
// preserves the per-(src, tag) stream ordering the Transport contract
// demands; per-stream determinism then makes values, censuses and virtual
// times bit-identical to the shared and federated transports under a flat
// cost model (MessageTime prices node pairs exactly as FederatedTransport
// does, so a hierarchical CostModel.InterNode diverges identically too).
//
// Stall detection cannot take a global-lock snapshot across processes, so
// CheckStalled runs a coordinator-driven two-phase probe; see stalledCheck.
// Workers spawn lazily on the first inter-node send: a transport that never
// crosses nodes (or is used standalone via Bind(nil)) costs no processes.
type IPCTransport struct {
	n       int
	nnodes  int
	perNode int
	boxes   []mailbox
	links   []link // directed node pairs, row-major [src*nnodes+dst]
	coord   Coordinator
	pool    bufPool
	recheck stallRechecker
	down    atomic.Bool
	bar     hostBarrier

	startMu    sync.Mutex // serializes start; guards startDone/startErr/cmds/listenAddr
	startDone  bool
	startErr   error
	started    atomic.Bool // true once workers are up; read on hot paths
	dir        string
	listenAddr string // explicit TCP listen address (SetListenAddr / KF_IPC_ADDR)
	conns      []*ipcConn
	cmds       []*exec.Cmd

	// Distributed-execution state (see RunDistributed): runMu serializes
	// runs, execGen numbers them, and exec publishes the in-flight run to
	// the read loops and the watcher. execClean records that the previous
	// distributed run completed cleanly and nothing touched the transport
	// since — the precondition for folding the next run's fence into its
	// spec broadcast (see fastFence).
	runMu     sync.Mutex
	execGen   uint64
	exec      atomic.Pointer[execRun]
	execClean atomic.Bool

	// pmu guards the ack/fence/liveness fields of every ipcConn and pairs
	// with pcond for the probe and reset fence waits.
	pmu   sync.Mutex
	pcond *sync.Cond

	// probeMu serializes two-phase stall probes (and excludes them from
	// reset fences); probeEpoch and resetGen advance under it and under
	// the single-threaded Reset respectively.
	probeMu    sync.Mutex
	probeEpoch uint64
	resetGen   uint64
	snap1      []uint64 // probe snapshot scratch
	snap2      []uint64

	watch  chan struct{} // reader -> watcher: in-flight count hit zero
	stopc  chan struct{}
	closed atomic.Bool
	wg     sync.WaitGroup // readers + watcher
	procWg sync.WaitGroup // worker process reapers

	reasonMu sync.Mutex
	reason   error
}

// ipcConn is the coordinator's endpoint of one worker's socket.
type ipcConn struct {
	node int
	c    net.Conn

	// wmu serializes frame writes; sent is the per-socket Data sequence
	// (incremented under wmu, read atomically by the in-flight check) and
	// delivered counts frames this worker originated that the coordinator
	// has fully absorbed — Deliver frames inserted into mailboxes in relay
	// mode, worker Data frames routed onward in execution mode
	// (incremented by the reader). Data writes go through the buffered
	// writer bw without flushing: each write kicks the connection's flusher
	// goroutine (fch), which flushes whatever accumulated once it gets the
	// CPU — so a burst of small Data frames coalesces into one socket write
	// even when the writers run strictly one after another, the common case
	// on a small host. Control frames flush inline, pushing any batched
	// frames ahead of them on the FIFO, which is what keeps every control
	// exchange (probes, fences) consistent with the data stream it rides.
	wmu       sync.Mutex
	bw        *bufio.Writer
	wscratch  []byte
	dirty     bool // unflushed frames in bw, under wmu
	wclosed   bool // fch closed, under wmu
	fch       chan struct{}
	sent      atomic.Uint64
	delivered atomic.Uint64

	// Guarded by the transport's pmu.
	ackEpoch uint64 // latest probe epoch acknowledged
	ackRecv  uint64 // worker's received-frame counter at that epoch
	ackFwd   uint64 // worker's forwarded-frame counter at that epoch
	ackFlags uint64 // worker's run status flags at that epoch (probeStalled/probeFinished)
	resetAck uint64 // latest reset generation acknowledged
	dead     bool   // socket lost; skip fences, fail probes
}

// writeData writes one Data frame, stamping the per-socket sequence under
// the write lock so the FIFO carries each (src, tag) stream in program
// order. The frame stays in the buffered writer; the flusher goroutine
// pushes it out once the writing goroutine yields, coalescing bursts.
func (cn *ipcConn) writeData(f *wire.Frame) error {
	cn.wmu.Lock()
	f.Seq = cn.sent.Add(1)
	err := wire.WriteFrame(cn.bw, &cn.wscratch, f)
	cn.dirty = true
	cn.kick()
	cn.wmu.Unlock()
	return err
}

// kick schedules a flush; the single-slot channel never blocks the writer
// and never loses a wakeup (the kick follows the frame into the buffer, so
// the flusher's next pass sees it). Callers hold wmu, which excludes the
// channel close in Close.
func (cn *ipcConn) kick() {
	if cn.wclosed {
		return
	}
	select {
	case cn.fch <- struct{}{}:
	default:
	}
}

// writeCtrl writes one control frame and flushes immediately — along with
// any batched Data frames ahead of it in the buffer, which keeps every
// control exchange consistent with the data stream it rides. A nonzero
// deadline bounds the write (abort and shutdown paths must not hang on a
// wedged socket).
func (cn *ipcConn) writeCtrl(f *wire.Frame, deadline time.Duration) error {
	cn.wmu.Lock()
	if deadline > 0 {
		cn.c.SetWriteDeadline(time.Now().Add(deadline))
	}
	err := wire.WriteFrame(cn.bw, &cn.wscratch, f)
	if err == nil {
		err = cn.bw.Flush()
		cn.dirty = false
	}
	if deadline > 0 {
		cn.c.SetWriteDeadline(time.Time{})
	}
	cn.wmu.Unlock()
	return err
}

// flushLoop drains one connection's flush kicks. A flush failure means the
// socket is gone; report it and stop (the read loop is about to hit the
// same broken socket).
func (t *IPCTransport) flushLoop(cn *ipcConn) {
	defer t.wg.Done()
	for range cn.fch {
		// Yield once before draining so a read loop mid-burst can route
		// the rest of the burst into the buffer first; the burst then
		// leaves in one socket write.
		runtime.Gosched()
		cn.wmu.Lock()
		var err error
		if cn.dirty {
			cn.dirty = false
			err = cn.bw.Flush()
		}
		cn.wmu.Unlock()
		if err != nil {
			if !t.closed.Load() {
				t.workerFailed(cn, fmt.Errorf("flush to node %d: %w", cn.node, err))
			}
			return
		}
	}
}

// NewIPCTransport returns a cross-process transport with n endpoints
// partitioned into nnodes equal nodes (nnodes must divide n). Worker
// processes spawn on the first inter-node send; Close tears them down.
func NewIPCTransport(n, nnodes int) *IPCTransport {
	if n <= 0 {
		panic(fmt.Sprintf("machine: transport endpoint count must be positive, got %d", n))
	}
	if nnodes <= 0 || n%nnodes != 0 {
		panic(fmt.Sprintf("machine: ipc transport of %d processors needs a positive node count dividing it, got %d", n, nnodes))
	}
	t := &IPCTransport{
		n:       n,
		nnodes:  nnodes,
		perNode: n / nnodes,
		boxes:   make([]mailbox, n),
		links:   make([]link, nnodes*nnodes),
		watch:   make(chan struct{}, 1),
		stopc:   make(chan struct{}),
	}
	for i := range t.boxes {
		mb := &t.boxes[i]
		mb.cond = sync.NewCond(&mb.mu)
		mb.queues = make(map[msgKey][]message)
	}
	t.pcond = sync.NewCond(&t.pmu)
	t.bar.init(n)
	t.bar.onRelease = t.announceBarrier
	return t
}

// Size returns the number of endpoints.
func (t *IPCTransport) Size() int { return t.n }

// Nodes returns the number of nodes (worker processes once started).
func (t *IPCTransport) Nodes() int { return t.nnodes }

// ProcsPerNode returns the number of processors on each node.
func (t *IPCTransport) ProcsPerNode() int { return t.perNode }

// NodeOf returns the node owning the given rank.
func (t *IPCTransport) NodeOf(rank int) int { return rank / t.perNode }

// Bind installs the machine's coordinator (nil for standalone use) and
// picks up its optional pool and stall-recheck capabilities.
func (t *IPCTransport) Bind(c Coordinator) {
	t.coord = c
	t.pool, _ = c.(bufPool)
	t.recheck, _ = c.(stallRechecker)
}

// Down reports whether the transport has been aborted since the last Reset.
func (t *IPCTransport) Down() bool { return t.down.Load() }

// DownReason returns the structured cause of the current down state (a
// wrapped ErrWorkerLost when a worker process died), or nil.
func (t *IPCTransport) DownReason() error {
	t.reasonMu.Lock()
	defer t.reasonMu.Unlock()
	return t.reason
}

// WorkerPIDs returns the process IDs of the spawned workers, in node order;
// empty before the first inter-node send. It exists for observability and
// for the crash-hardening tests, which kill a worker and assert the
// structured failure.
func (t *IPCTransport) WorkerPIDs() []int {
	t.startMu.Lock()
	defer t.startMu.Unlock()
	pids := make([]int, 0, len(t.cmds))
	for _, cmd := range t.cmds {
		pids = append(pids, cmd.Process.Pid)
	}
	return pids
}

// LinkTraffic returns the message and byte counts carried by the directed
// socket link from node src to node dst since the last Reset.
func (t *IPCTransport) LinkTraffic(src, dst int) (msgs, bytes int64) {
	l := &t.links[src*t.nnodes+dst]
	l.mu.Lock()
	defer l.mu.Unlock()
	return l.msgs, l.bytes
}

// InterNodeTraffic returns the total message and byte counts that crossed
// node boundaries since the last Reset.
func (t *IPCTransport) InterNodeTraffic() (msgs, bytes int64) {
	for i := range t.links {
		l := &t.links[i]
		l.mu.Lock()
		msgs += l.msgs
		bytes += l.bytes
		l.mu.Unlock()
	}
	return msgs, bytes
}

// MessageTime prices a message by the node pair it crosses, identically to
// FederatedTransport: flat cost intra-node, the cost model's per-link price
// inter-node. Identical pricing is what keeps virtual times bit-identical
// across federated and ipc for the same program and cost model.
func (t *IPCTransport) MessageTime(cost CostModel, src, dst, b int) float64 {
	return cost.LinkMessageTime(src/t.perNode, dst/t.perNode, b)
}

// acquire supplies payload buffers for decoded Deliver frames from the
// machine pool when bound, satisfying wire.ReadFrame's hook signature.
func (t *IPCTransport) acquire(n int) []float64 {
	if t.pool != nil {
		return t.pool.acquirePooled(n)
	}
	return make([]float64, n)
}

// deliverLocal places a message in dst's mailbox and wakes dst if it is
// waiting for exactly this stream — the same delivery step as
// SharedTransport.Send, shared by the intra-node fast path and the reader
// goroutines completing an inter-node crossing.
func (t *IPCTransport) deliverLocal(src, dst int, tag Tag, data []float64, arrival float64) {
	mb := &t.boxes[dst]
	k := msgKey{src: src, tag: tag}
	mb.mu.Lock()
	mb.putLocked(k, message{data: data, arrival: arrival})
	if mb.waiting && mb.await == k {
		if pk := parkerOf(t.coord); pk != nil {
			pk.Wake(dst)
		} else {
			mb.cond.Signal()
		}
	}
	mb.mu.Unlock()
}

// Send routes a message: intra-node traffic goes straight to the mailbox;
// inter-node traffic is serialized into a Data frame and written to the
// destination node's worker socket (spawning the workers on first use).
// The write and the sequence number are issued under the connection's write
// lock, so the per-socket FIFO carries each (src, tag) stream in program
// order; the sender's payload buffer is recycled through the machine pool
// once encoded, balancing the buffers the readers acquire for deliveries.
func (t *IPCTransport) Send(src, dst int, tag Tag, data []float64, arrival float64) {
	sn, dn := src/t.perNode, dst/t.perNode
	if sn == dn {
		t.deliverLocal(src, dst, tag, data, arrival)
		return
	}
	if err := t.ensureStarted(); err != nil {
		panic(fmt.Sprintf("machine: ipc transport failed to start workers: %v", err))
	}
	l := &t.links[sn*t.nnodes+dn]
	l.mu.Lock()
	l.msgs++
	l.bytes += int64(len(data) * wordBytes)
	l.mu.Unlock()

	cn := t.conns[dn]
	f := wire.Frame{
		Kind:    wire.KindData,
		Src:     int32(src),
		Dst:     int32(dst),
		Tag:     uint64(tag),
		Arrival: arrival,
		Payload: data,
	}
	err := cn.writeData(&f)
	if err != nil {
		if !t.closed.Load() {
			t.workerFailed(cn, fmt.Errorf("send to node %d: %w", dn, err))
		}
		return
	}
	if t.pool != nil && data != nil {
		t.pool.releasePooled(data)
	}
}

// Recv blocks the calling endpoint until a message matching (src, tag) is
// available in dst's mailbox; identical protocol to SharedTransport.Recv
// (reader goroutines feed the same mailboxes the intra-node path uses).
func (t *IPCTransport) Recv(dst, src int, tag Tag) ([]float64, float64, bool) {
	mb := &t.boxes[dst]
	k := msgKey{src: src, tag: tag}
	mb.mu.Lock()
	if msg, ok := mb.takeLocked(k); ok {
		mb.mu.Unlock()
		return msg.data, msg.arrival, true
	}
	if t.down.Load() {
		mb.mu.Unlock()
		return nil, 0, false
	}
	mb.await = k
	mb.waiting = true
	mb.mu.Unlock()

	if t.coord != nil {
		t.coord.Blocked()
	}

	pk := parkerOf(t.coord)
	mb.mu.Lock()
	for {
		if msg, ok := mb.takeLocked(k); ok {
			mb.waiting = false
			mb.mu.Unlock()
			if t.coord != nil {
				t.coord.Unblocked()
			}
			return msg.data, msg.arrival, true
		}
		if t.down.Load() {
			mb.waiting = false
			mb.mu.Unlock()
			if t.coord != nil {
				t.coord.Unblocked()
			}
			return nil, 0, false
		}
		if pk != nil {
			mb.mu.Unlock()
			pk.Park(dst)
			mb.mu.Lock()
		} else {
			mb.cond.Wait()
		}
	}
}

// Barrier parks the calling endpoint until all endpoints arrive; each
// release is announced to the workers as a Barrier frame (epoch alignment
// for the node daemons, best effort).
func (t *IPCTransport) Barrier(rank int) bool {
	if rank < 0 || rank >= t.n {
		panic(fmt.Sprintf("machine: barrier from invalid rank %d", rank))
	}
	return t.bar.await(rank, &t.down, parkerOf(t.coord))
}

// announceBarrier broadcasts a released barrier generation to the workers.
// Called under the barrier lock, so it must never take pmu or declare a
// failure (an I/O error here will resurface on the next Send or probe).
func (t *IPCTransport) announceBarrier(gen uint64) {
	if !t.started.Load() {
		return
	}
	f := wire.Frame{Kind: wire.KindBarrier, Seq: gen}
	for _, cn := range t.conns {
		_ = cn.writeCtrl(&f, 0)
	}
}

// Reset clears all transport state between runs. With workers live it first
// runs a reset fence: every worker receives a Reset frame, zeroes its frame
// counters and acknowledges; socket FIFO guarantees any straggler Deliver
// frames from the previous run land in the mailboxes before the ack, so
// clearing the mailboxes after the fence leaves no stale message anywhere
// in the pipeline and the counters on both sides restart aligned.
func (t *IPCTransport) Reset() {
	t.execClean.Store(false)
	if t.started.Load() {
		t.probeMu.Lock() // exclude stall probes while counters rewind
		t.resetGen++
		gen := t.resetGen
		f := wire.Frame{Kind: wire.KindReset, Seq: gen}
		for _, cn := range t.conns {
			t.pmu.Lock()
			dead := cn.dead
			t.pmu.Unlock()
			if dead {
				continue
			}
			if err := cn.writeCtrl(&f, 0); err != nil && !t.closed.Load() {
				t.workerFailed(cn, fmt.Errorf("reset fence to node %d: %w", cn.node, err))
			}
		}
		t.pmu.Lock()
		for _, cn := range t.conns {
			for cn.resetAck < gen && !cn.dead && !t.closed.Load() {
				t.pcond.Wait()
			}
		}
		for _, cn := range t.conns {
			cn.sent.Store(0)
			cn.delivered.Store(0)
			cn.ackEpoch, cn.ackRecv, cn.ackFwd, cn.ackFlags = 0, 0, 0, 0
		}
		t.pmu.Unlock()
		t.probeMu.Unlock()
	}
	for i := range t.boxes {
		mb := &t.boxes[i]
		mb.mu.Lock()
		mb.reset()
		mb.mu.Unlock()
	}
	for i := range t.links {
		l := &t.links[i]
		l.mu.Lock()
		l.msgs = 0
		l.bytes = 0
		l.mu.Unlock()
	}
	t.bar.reset()
	t.down.Store(false)
	t.reasonMu.Lock()
	t.reason = nil
	t.reasonMu.Unlock()
}

// fastFence is the no-round-trip fence for back-to-back distributed runs:
// when the previous run completed cleanly (execClean), every socket is
// provably drained — each worker wrote nothing after its last RankResult,
// which the coordinator has read, and the coordinator routed nothing since
// — so both sides' frame counters can rewind without the Reset exchange.
// The workers rewind theirs on receiving the RunSpec itself (the spec
// FIFO-follows any residue, so the cuts align), and the worker-side fence
// duties (ending the previous run, taking its transport down) move into
// the RunSpec handler too. Callers hold runMu.
func (t *IPCTransport) fastFence() {
	t.probeMu.Lock()
	t.pmu.Lock()
	for _, cn := range t.conns {
		cn.sent.Store(0)
		cn.delivered.Store(0)
		cn.ackEpoch, cn.ackRecv, cn.ackFwd, cn.ackFlags = 0, 0, 0, 0
	}
	t.pmu.Unlock()
	t.probeMu.Unlock()
	for i := range t.boxes {
		mb := &t.boxes[i]
		mb.mu.Lock()
		mb.reset()
		mb.mu.Unlock()
	}
	for i := range t.links {
		l := &t.links[i]
		l.mu.Lock()
		l.msgs = 0
		l.bytes = 0
		l.mu.Unlock()
	}
	t.bar.reset()
	t.down.Store(false)
	t.reasonMu.Lock()
	t.reason = nil
	t.reasonMu.Unlock()
}

// Abort marks the transport down and wakes every blocked receiver, barrier
// waiter, probe waiter and parked rank; workers are notified best-effort.
func (t *IPCTransport) Abort() {
	t.down.Store(true)
	for i := range t.boxes {
		mb := &t.boxes[i]
		mb.mu.Lock()
		mb.cond.Broadcast()
		mb.mu.Unlock()
	}
	t.bar.wake()
	if pk := parkerOf(t.coord); pk != nil {
		pk.WakeAll()
	}
	if t.started.Load() {
		f := wire.Frame{Kind: wire.KindAbort}
		for _, cn := range t.conns {
			_ = cn.writeCtrl(&f, time.Second)
		}
	}
	t.pmu.Lock()
	t.pcond.Broadcast()
	t.pmu.Unlock()
}

// inFlight returns the number of frames somewhere between a Send's socket
// write and a reader's mailbox insert, across all workers. Nonzero means
// the machine cannot be stalled yet: a delivery is coming, and the reader
// that completes it re-triggers the stall check through the watcher.
func (t *IPCTransport) inFlight() uint64 {
	var inflight uint64
	for _, cn := range t.conns {
		inflight += cn.sent.Load() - cn.delivered.Load()
	}
	return inflight
}

// CheckStalled decides whether the machine has deadlocked; see stalledCheck
// for the distributed protocol.
func (t *IPCTransport) CheckStalled() bool { return t.stalledCheck(true) }

// probeStalled evaluates the stall condition without declaring it — the
// chaos layer's non-destructive confirmation hook.
func (t *IPCTransport) probeStalled() bool { return t.stalledCheck(false) }

// stalledCheck is the distributed stall decision. Before workers exist the
// transport is a plain shared mailbox array and the local global-lock
// snapshot is exact. With workers live, a local snapshot can miss frames
// crossing the sockets, so a stall is declared only at a consistent
// quiescent cut, established coordinator-driven in two phases:
//
//  1. Probe every worker (probeSnapshot) and require quiescence — each
//     socket's written-frame count equals the worker's received count and
//     the worker's forwarded count equals the coordinator's delivered
//     count, i.e. zero frames in flight in either direction.
//  2. Evaluate the local stall condition (all mailbox locks held, live
//     count confirmed by the machine, no waiter has a matching pending
//     message), then probe again and require the second snapshot to be
//     quiescent and identical to the first.
//
// Two identical quiescent snapshots bracket the local evaluation: no frame
// moved on any socket in the interval containing it, so the local snapshot
// was complete — nothing was in flight that could still satisfy a waiter.
// Any traffic between the snapshots changes a monotonic counter and forces
// a retry (by returning false; the delivery that changed the counter wakes
// a rank or re-triggers the check through the watcher). The final local
// evaluation under declare re-verifies the condition before marking the
// transport down, exactly like the single-process transports.
func (t *IPCTransport) stalledCheck(declare bool) bool {
	if t.coord == nil || t.down.Load() {
		return false
	}
	if !t.started.Load() {
		return t.localStall(declare)
	}
	if t.inFlight() != 0 {
		return false
	}
	t.probeMu.Lock()
	defer t.probeMu.Unlock()
	var ok bool
	t.snap1, ok = t.probeSnapshot(t.snap1[:0])
	if !ok {
		return false
	}
	if !t.localStall(false) {
		return false
	}
	t.snap2, ok = t.probeSnapshot(t.snap2[:0])
	if !ok || len(t.snap1) != len(t.snap2) {
		return false
	}
	for i := range t.snap1 {
		if t.snap1[i] != t.snap2[i] {
			return false
		}
	}
	return t.localStall(declare)
}

// probeSnapshot runs one probe round: a Probe frame to every worker, a wait
// for every acknowledgement, then a counter cut appended to dst — per
// worker, the socket's sent/delivered counters, the worker's
// received/forwarded counters and its run status flags (five values per
// connection; see execProbe for how the flags decide the distributed
// verdict). ok is false when the cut is not quiescent
// (some frame was in flight at ack time) or when a worker is unreachable,
// the transport went down, or it was closed. Callers hold probeMu.
func (t *IPCTransport) probeSnapshot(dst []uint64) ([]uint64, bool) {
	t.probeEpoch++
	epoch := t.probeEpoch
	f := wire.Frame{Kind: wire.KindProbe, Seq: epoch}
	for _, cn := range t.conns {
		t.pmu.Lock()
		dead := cn.dead
		t.pmu.Unlock()
		if dead {
			return dst, false
		}
		if err := cn.writeCtrl(&f, 0); err != nil {
			if !t.closed.Load() {
				t.workerFailed(cn, fmt.Errorf("stall probe to node %d: %w", cn.node, err))
			}
			return dst, false
		}
	}
	quiescent := true
	t.pmu.Lock()
	for _, cn := range t.conns {
		for cn.ackEpoch < epoch && !cn.dead && !t.closed.Load() && !t.down.Load() {
			t.pcond.Wait()
		}
		if cn.dead || t.closed.Load() || t.down.Load() {
			t.pmu.Unlock()
			return dst, false
		}
		sent, delivered := cn.sent.Load(), cn.delivered.Load()
		if sent != cn.ackRecv || delivered != cn.ackFwd {
			quiescent = false
		}
		dst = append(dst, sent, delivered, cn.ackRecv, cn.ackFwd, cn.ackFlags)
	}
	t.pmu.Unlock()
	return dst, quiescent
}

// localStall is the in-process stall snapshot over the coordinator's
// mailboxes — the same protocol as SharedTransport.stallCheck.
func (t *IPCTransport) localStall(declare bool) bool {
	for i := range t.boxes {
		t.boxes[i].mu.Lock()
	}
	stalled := false
	if !t.down.Load() {
		if live := t.coord.ConfirmStall(); live > 0 {
			waiting := 0
			canProceed := false
			for i := range t.boxes {
				mb := &t.boxes[i]
				if !mb.waiting {
					continue
				}
				waiting++
				if len(mb.queues[mb.await]) > 0 {
					canProceed = true
				}
			}
			if waiting >= live && !canProceed {
				stalled = true
			}
		}
	}
	if stalled && declare {
		t.down.Store(true)
		for i := range t.boxes {
			t.boxes[i].cond.Broadcast()
		}
	}
	for i := range t.boxes {
		t.boxes[i].mu.Unlock()
	}
	if stalled && declare {
		t.bar.wake()
		if pk := parkerOf(t.coord); pk != nil {
			pk.WakeAll()
		}
	}
	return stalled
}

// SetListenAddr selects an explicit TCP address (host:port, port 0 for
// ephemeral) for the coordinator's worker listener instead of the default
// Unix domain socket — the deployment knob for hosts where UDS is
// unavailable or a fixed port must be allowed through. The KF_IPC_ADDR
// environment variable sets the same default for processes that are not
// themselves IPC workers. It must be called before the workers spawn (the
// first inter-node send or distributed run).
func (t *IPCTransport) SetListenAddr(addr string) {
	t.startMu.Lock()
	defer t.startMu.Unlock()
	if t.startDone {
		panic("machine: SetListenAddr after the ipc workers started")
	}
	t.listenAddr = addr
}

// ensureStarted spawns the worker processes exactly once; a failed start is
// sticky (the environment is not going to improve between sends).
func (t *IPCTransport) ensureStarted() error {
	if t.started.Load() {
		return nil
	}
	t.startMu.Lock()
	defer t.startMu.Unlock()
	if t.startDone {
		return t.startErr
	}
	t.startDone = true
	t.startErr = t.start()
	if t.startErr == nil {
		t.started.Store(true)
	}
	return t.startErr
}

// start launches one worker per node and wires up the sockets: a listener
// in a private temp directory (UDS, falling back to TCP loopback), a
// re-exec of the current binary per node with the coordinates in the
// environment, then an accept/Hello handshake mapping connections to
// nodes. On success it starts the per-connection readers and the stall
// watcher; on any failure it tears everything down and reports.
func (t *IPCTransport) start() (err error) {
	exe, err := os.Executable()
	if err != nil {
		return fmt.Errorf("resolve executable for worker re-exec: %w", err)
	}
	dir, err := os.MkdirTemp("", "kfipc")
	if err != nil {
		return fmt.Errorf("ipc socket dir: %w", err)
	}
	laddr := t.listenAddr
	if laddr == "" && os.Getenv(ipcEnvNode) == "" {
		// The env default is ignored inside worker processes: there
		// KF_IPC_ADDR is the coordinator's address to dial, not a listen
		// address for a nested transport.
		laddr = os.Getenv(ipcEnvAddr)
	}
	var network, addr string
	var ln net.Listener
	if laddr != "" {
		network = "tcp"
		ln, err = net.Listen(network, laddr)
		if err != nil {
			os.RemoveAll(dir)
			return fmt.Errorf("ipc listener on %q: %w", laddr, err)
		}
		addr = ln.Addr().String()
	} else {
		network, addr = "unix", filepath.Join(dir, "coord.sock")
		ln, err = net.Listen(network, addr)
		if err != nil {
			network = "tcp"
			ln, err = net.Listen(network, "127.0.0.1:0")
			if err != nil {
				os.RemoveAll(dir)
				return fmt.Errorf("ipc listener: %w", err)
			}
			addr = ln.Addr().String()
		}
	}
	t.dir = dir

	// Scrub any inherited worker coordinates (a worker can itself host an
	// ipc machine in tests) before installing ours.
	env := make([]string, 0, len(os.Environ())+4)
	for _, kv := range os.Environ() {
		switch {
		case len(kv) > len(ipcEnvNet) && kv[:len(ipcEnvNet)+1] == ipcEnvNet+"=",
			len(kv) > len(ipcEnvAddr) && kv[:len(ipcEnvAddr)+1] == ipcEnvAddr+"=",
			len(kv) > len(ipcEnvNode) && kv[:len(ipcEnvNode)+1] == ipcEnvNode+"=",
			len(kv) > len(ipcEnvExec) && kv[:len(ipcEnvExec)+1] == ipcEnvExec+"=":
		default:
			env = append(env, kv)
		}
	}
	env = append(env, ipcEnvNet+"="+network, ipcEnvAddr+"="+addr)
	if WorkerExecEnabled() {
		// Exec-armed coordinators spawn exec-capable workers: the worker
		// defers its daemon entry until its own EnableWorkerExec runs, so
		// the program registry it will build runs from is fully populated.
		env = append(env, ipcEnvExec+"=1")
	}

	t.cmds = make([]*exec.Cmd, 0, t.nnodes)
	t.conns = make([]*ipcConn, t.nnodes)
	fail := func(err error) error {
		for _, cmd := range t.cmds {
			cmd.Process.Kill()
		}
		t.procWg.Wait()
		for _, cn := range t.conns {
			if cn != nil {
				cn.c.Close()
			}
		}
		ln.Close()
		os.RemoveAll(dir)
		t.cmds, t.conns = nil, nil
		return err
	}
	for node := 0; node < t.nnodes; node++ {
		cmd := exec.Command(exe)
		cmd.Env = append(env[:len(env):len(env)], ipcEnvNode+"="+strconv.Itoa(node))
		cmd.Stderr = os.Stderr
		if err := cmd.Start(); err != nil {
			return fail(fmt.Errorf("spawn worker for node %d: %w", node, err))
		}
		t.cmds = append(t.cmds, cmd)
		t.procWg.Add(1)
		go func() {
			defer t.procWg.Done()
			cmd.Wait()
		}()
	}
	deadline := time.Now().Add(30 * time.Second)
	for i := 0; i < t.nnodes; i++ {
		type deadliner interface{ SetDeadline(time.Time) error }
		if d, ok := ln.(deadliner); ok {
			d.SetDeadline(deadline)
		}
		c, err := ln.Accept()
		if err != nil {
			return fail(fmt.Errorf("accept worker %d of %d: %w", i+1, t.nnodes, err))
		}
		c.SetReadDeadline(deadline)
		var hello wire.Frame
		var scratch []byte
		if err := wire.ReadFrame(c, &hello, &scratch, nil); err != nil || hello.Kind != wire.KindHello {
			c.Close()
			return fail(fmt.Errorf("worker handshake: kind=%v err=%v", hello.Kind, err))
		}
		c.SetReadDeadline(time.Time{})
		node := int(hello.Seq)
		if node < 0 || node >= t.nnodes || t.conns[node] != nil {
			c.Close()
			return fail(fmt.Errorf("worker handshake: bad or duplicate node %d", node))
		}
		t.conns[node] = &ipcConn{node: node, c: c, bw: bufio.NewWriterSize(c, 1<<16), fch: make(chan struct{}, 1)}
	}
	ln.Close() // all workers connected; nothing else may dial in
	for _, cn := range t.conns {
		t.wg.Add(2)
		go t.readLoop(cn)
		go t.flushLoop(cn)
	}
	t.wg.Add(1)
	go t.watchLoop()
	return nil
}

// readLoop drains one worker's socket. Relay mode: Deliver frames complete
// inter-node message crossings into the local mailboxes. Execution mode:
// Data frames are worker-originated inter-node sends routed onward to the
// destination node's socket — the coordinator never opens their payloads,
// and never even decodes them: the routing fields live at fixed header
// offsets, so the raw body is forwarded as read, with only the per-socket
// sequence restamped in place (the same pass-through idiom the relay
// worker uses for the reflected direction). Control frames —
// RunAck/RankResult/StallHint/Barrier driving the in-flight execRun,
// ProbeAck and ResetAck feeding the waiters under pmu — are rare enough to
// pay for a full decode. It never evaluates the stall condition itself — a
// reader blocked in a stall check could not drain the very acks the
// check's probe waits for — delegating re-checks to the watcher.
func (t *IPCTransport) readLoop(cn *ipcConn) {
	defer t.wg.Done()
	br := bufio.NewReaderSize(cn.c, 1<<16)
	var prefix [4]byte
	var body, rbuf []byte
	var f wire.Frame
	release := func(p []float64) {
		if t.pool != nil && p != nil {
			t.pool.releasePooled(p)
		}
	}
	for {
		if _, err := io.ReadFull(br, prefix[:]); err != nil {
			if !t.closed.Load() {
				t.workerFailed(cn, err)
			}
			return
		}
		n := binary.LittleEndian.Uint32(prefix[:])
		if n < wire.HeaderLen || n > wire.MaxBody {
			t.workerFailed(cn, fmt.Errorf("frame body of %d bytes out of range from node %d", n, cn.node))
			return
		}
		if cap(body) < int(n) {
			body = make([]byte, n)
		}
		b := body[:n]
		if _, err := io.ReadFull(br, b); err != nil {
			if !t.closed.Load() {
				t.workerFailed(cn, fmt.Errorf("%w: connection closed inside frame body", wire.ErrTruncated))
			}
			return
		}
		if wire.Kind(b[0]) == wire.KindData {
			// A worker rank's inter-node send (execution mode): route it to
			// the destination node without decoding. Stale generations drain
			// silently — a run one node rejected leaves the other nodes
			// executing (and emitting) until the next spec or reset fences
			// them, so an off-generation frame is expected traffic, not a
			// protocol violation.
			er := t.exec.Load()
			if er == nil || binary.LittleEndian.Uint64(b[25:33]) != er.gen {
				continue
			}
			src := int(int32(binary.LittleEndian.Uint32(b[1:5])))
			dst := int(int32(binary.LittleEndian.Uint32(b[5:9])))
			if src < 0 || src >= t.n || src/t.perNode != cn.node || dst < 0 || dst >= t.n || dst/t.perNode == cn.node {
				t.workerFailed(cn, fmt.Errorf("misrouted data frame (src=%d, dst=%d) from node %d", src, dst, cn.node))
				return
			}
			// Per-link traffic accounting stays message-exact without a
			// payload walk: a routed frame carries its message count in B
			// and the messages' summed payload bytes in Tag (see the
			// worker's pendBatch).
			dn := dst / t.perNode
			l := &t.links[cn.node*t.nnodes+dn]
			l.mu.Lock()
			l.msgs += int64(binary.LittleEndian.Uint64(b[33:41]))
			l.bytes += int64(binary.LittleEndian.Uint64(b[9:17]))
			l.mu.Unlock()
			cnDst := t.conns[dn]
			cnDst.wmu.Lock()
			binary.LittleEndian.PutUint64(b[17:25], cnDst.sent.Add(1))
			_, err1 := cnDst.bw.Write(prefix[:])
			_, err2 := cnDst.bw.Write(b)
			cnDst.dirty = true
			cnDst.kick()
			cnDst.wmu.Unlock()
			// Count the frame absorbed only after the onward write holds
			// its sequence slot: quiescence must never be observable with
			// the routing half-done.
			cn.delivered.Add(1)
			if err1 == nil {
				err1 = err2
			}
			if err1 != nil && !t.closed.Load() {
				t.workerFailed(cnDst, fmt.Errorf("route to node %d: %w", dn, err1))
				return
			}
			continue
		}
		rbuf = append(append(rbuf[:0], prefix[:]...), b...)
		if _, err := wire.DecodeFrame(rbuf, &f, t.acquire); err != nil {
			if !t.closed.Load() {
				t.workerFailed(cn, err)
			}
			return
		}
		switch f.Kind {
		case wire.KindDeliver:
			t.deliverLocal(int(f.Src), int(f.Dst), Tag(f.Tag), f.Payload, f.Arrival)
			cn.delivered.Add(1)
			if t.inFlight() == 0 {
				// The pipeline just drained: whoever ran a stall check
				// while this frame was in flight bailed on it, so have the
				// watcher take another look.
				select {
				case t.watch <- struct{}{}:
				default:
				}
			}
		case wire.KindRunAck:
			// Only rejections are acked; a worker that accepts a spec goes
			// straight to executing it.
			er := t.exec.Load()
			if er == nil || f.Seq != er.gen || f.A == 0 {
				release(f.Payload)
				break // straggler from a fenced run
			}
			text, _ := wire.UnpackBytes(f.Payload, int(f.B))
			release(f.Payload)
			er.failWith(fmt.Errorf("machine: ipc node %d rejected run spec: %s", cn.node, text))
		case wire.KindRankResult:
			er := t.exec.Load()
			if er == nil || f.Seq != er.gen {
				release(f.Payload)
				break // straggler from a fenced or abandoned run
			}
			// One frame carries all (or a maxResultBatchWords-bounded span
			// of) the node's rank records; see executeRun for the layout.
			p := f.Payload
			complete := false
			er.mu.Lock()
			for rec := uint64(0); rec < f.A; rec++ {
				if len(p) < 4 {
					er.mu.Unlock()
					release(f.Payload)
					t.workerFailed(cn, fmt.Errorf("rank result batch truncated (node %d)", cn.node))
					return
				}
				rank := int(int64(math.Float64bits(p[0])))
				errClass := math.Float64bits(p[1])
				errLen := math.Float64bits(p[2])
				plen := math.Float64bits(p[3])
				errWords := (errLen + 7) / 8
				if plen > uint64(len(p)-4) || errWords > uint64(len(p)-4)-plen {
					er.mu.Unlock()
					release(f.Payload)
					t.workerFailed(cn, fmt.Errorf("rank result record overruns batch (node %d)", cn.node))
					return
				}
				if rank < 0 || rank >= t.n || rank/t.perNode != cn.node {
					er.mu.Unlock()
					release(f.Payload)
					t.workerFailed(cn, fmt.Errorf("rank result for rank %d from node %d", rank, cn.node))
					return
				}
				var errText string
				if errLen > 0 {
					b, err := wire.UnpackBytes(p[4+plen:4+plen+errWords], int(errLen))
					if err != nil {
						er.mu.Unlock()
						release(f.Payload)
						t.workerFailed(cn, fmt.Errorf("rank result from node %d: %v", cn.node, err))
						return
					}
					errText = string(b)
				}
				if !er.got[rank] {
					recPayload := make([]float64, plen)
					copy(recPayload, p[4:4+plen])
					er.got[rank] = true
					er.results[rank] = RankResult{Rank: rank, Payload: recPayload, ErrClass: errClass, ErrText: errText}
					er.count++
					complete = er.count == len(er.results)
				}
				p = p[4+plen+errWords:]
			}
			er.mu.Unlock()
			release(f.Payload)
			if complete {
				close(er.done)
			} else if er.hint.Load() {
				// A node finishing can complete the stall condition (every
				// other node already blocked): give the armed probe another
				// look, since no further hint will arrive — workers hint on
				// stalling, not on finishing.
				select {
				case t.watch <- struct{}{}:
				default:
				}
			}
		case wire.KindStallHint:
			if er := t.exec.Load(); er != nil && f.Seq == er.gen {
				er.hint.Store(true)
				select {
				case t.watch <- struct{}{}:
				default:
				}
			}
		case wire.KindBarrier:
			// A worker node announcing that all its local ranks reached
			// host-barrier generation f.Seq; the last node's arrival
			// releases the generation on every node.
			er := t.exec.Load()
			if er == nil || f.A != er.gen {
				break // straggler from a fenced run
			}
			er.mu.Lock()
			er.barArr[f.Seq]++
			full := er.barArr[f.Seq] == t.nnodes
			er.mu.Unlock()
			if full {
				rel := wire.Frame{Kind: wire.KindBarrier, Seq: f.Seq}
				for _, c2 := range t.conns {
					if err := c2.writeCtrl(&rel, 0); err != nil && !t.closed.Load() {
						t.workerFailed(c2, fmt.Errorf("barrier release to node %d: %w", c2.node, err))
						return
					}
				}
			}
		case wire.KindProbeAck:
			t.pmu.Lock()
			cn.ackEpoch, cn.ackRecv, cn.ackFwd, cn.ackFlags = f.Seq, f.A, f.B, f.Tag
			t.pcond.Broadcast()
			t.pmu.Unlock()
		case wire.KindResetAck:
			t.pmu.Lock()
			cn.resetAck = f.Seq
			t.pcond.Broadcast()
			t.pmu.Unlock()
		default:
			t.workerFailed(cn, fmt.Errorf("unexpected %v frame from node %d", f.Kind, cn.node))
			return
		}
	}
}

// watchLoop re-runs the machine's stall decision whenever a reader reports
// the in-flight count hitting zero. Routing through the coordinator makes
// the check enter at the top of the machine's transport stack — the chaos
// wrapper when present — so a drain can also trigger fault recovery, not
// just deadlock declaration. Spurious triggers are harmless: the check
// confirms every condition from scratch.
func (t *IPCTransport) watchLoop() {
	defer t.wg.Done()
	for {
		select {
		case <-t.stopc:
			return
		case <-t.watch:
			if er := t.exec.Load(); er != nil {
				// Execution mode: the ranks run inside the workers, so the
				// machine-side recheck has nothing to look at — the
				// coordinator drives the distributed verdict itself.
				t.execProbe(er)
			} else if t.recheck != nil {
				t.recheck.RecheckStall()
			}
		}
	}
}

// workerFailed records a lost worker and takes the transport down with a
// structured reason naming the node; first failure wins.
func (t *IPCTransport) workerFailed(cn *ipcConn, cause error) {
	t.pmu.Lock()
	cn.dead = true
	t.pcond.Broadcast()
	t.pmu.Unlock()
	t.reasonMu.Lock()
	if t.reason == nil {
		t.reason = fmt.Errorf("%w: node %d: %v", ErrWorkerLost, cn.node, cause)
	}
	t.reasonMu.Unlock()
	t.Abort()
	if er := t.exec.Load(); er != nil {
		er.failWith(t.DownReason())
	}
}

// Close shuts the worker fleet down (Shutdown frames, then socket close —
// either is sufficient for a worker to exit; EOF alone covers a killed
// coordinator) and releases sockets, goroutines and the temp directory.
// The transport must not be used after Close. Close is idempotent and safe
// to call concurrently with an in-flight Run or abort: it first takes the
// transport down, so ranks blocked in Recv or Barrier unwind instead of
// hanging on sockets that are about to disappear.
func (t *IPCTransport) Close() error {
	if !t.closed.CompareAndSwap(false, true) {
		return nil
	}
	t.reasonMu.Lock()
	if t.reason == nil {
		t.reason = errors.New("machine: ipc transport closed")
	}
	t.reasonMu.Unlock()
	t.Abort()
	close(t.stopc)
	if t.started.Load() {
		f := wire.Frame{Kind: wire.KindShutdown}
		for _, cn := range t.conns {
			_ = cn.writeCtrl(&f, time.Second)
			cn.c.Close()
			cn.wmu.Lock()
			cn.wclosed = true
			close(cn.fch)
			cn.wmu.Unlock()
		}
		t.pmu.Lock()
		t.pcond.Broadcast()
		t.pmu.Unlock()
	}
	t.wg.Wait()
	t.procWg.Wait()
	if t.dir != "" {
		os.RemoveAll(t.dir)
	}
	return nil
}

func init() {
	RegisterTransport("ipc", func(n, nodes int) (Transport, error) {
		if n <= 0 {
			return nil, fmt.Errorf("machine: transport needs a positive endpoint count, got %d", n)
		}
		if nodes <= 0 {
			nodes = 1
		}
		if n%nodes != 0 {
			return nil, fmt.Errorf("machine: an ipc federation of %d processors needs a node count dividing it, got %d", n, nodes)
		}
		return NewIPCTransport(n, nodes), nil
	})
}
