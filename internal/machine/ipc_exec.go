package machine

import (
	"errors"
	"fmt"
	"sync"
	"sync/atomic"
	"time"

	"repro/internal/wire"
)

// This file is the coordinator half of the IPC execution plane. In relay
// mode (ipc.go's default) every rank runs in the coordinator and each
// inter-node message crosses two sockets; in execution mode each worker
// process hosts its node's ranks as a real sub-machine (WorkerTransport +
// Machine over the node's rank window), so intra-node sends never leave the
// worker and sockets carry only genuinely inter-node edges. The coordinator
// stops simulating and starts orchestrating: it broadcasts the run spec,
// routes worker-to-worker frames, arbitrates host barriers, drives the
// distributed stall verdict, and gathers per-rank results.
//
// The protocol, over the same framed sockets as relay mode:
//
//	coordinator                            workers
//	  Reset ─────────────────────────────▶   (fence: join stale run, zero counters)
//	  RunSpec{gen, spec} ────────────────▶   build run via the exec hook, execute ranks
//	  ◀────────────────── RunAck{gen, A:1}   only on rejection; fails the run
//	  ◀─ Data{A:gen} ─▶ routed onward ───▶   inter-node sends, batched per socket
//	  ◀──────────────────── StallHint{gen}   local quiescence; arms execProbe
//	  Abort{Seq:1} (verdict) ────────────▶   declareStall: ranks unwind with ErrDeadlock
//	  ◀─────────────────── RankResult{gen}   one per rank; completes the run
//
// The spec doubles as the start signal. What keeps a Data frame from ever
// reaching a worker before its spec — the write-order race a RunSpec/
// RunStart split with an ack barrier used to close — is the broadcast
// discipline: the coordinator holds every socket's write lock while it
// writes and flushes all the specs, so the read loops, which route
// worker-to-worker frames into those same sockets, cannot interleave an
// early starter's sends ahead of a later socket's spec. Per-socket FIFO
// does the rest. Success is never acknowledged; a rejection (RunAck{A:1})
// fails the run, and any nodes already executing are fenced by the next
// run's spec or reset — which is why the read loop drains stale-generation
// Data and RankResult frames silently instead of treating them as
// protocol violations.
type execRun struct {
	gen uint64

	mu      sync.Mutex
	results []RankResult // indexed by rank
	got     []bool
	count   int
	barArr  map[uint64]int // host-barrier generation -> nodes arrived

	done chan struct{} // every rank's result arrived

	failOnce sync.Once
	failErr  error
	fail     chan struct{}

	// hint arms the watcher's execProbe: at least one worker reported all
	// its live ranks blocked since the last failed verdict.
	hint atomic.Bool
}

// failWith records the run's terminal failure; first cause wins.
func (er *execRun) failWith(err error) {
	er.failOnce.Do(func() {
		er.failErr = err
		close(er.fail)
	})
}

// RunDistributed executes one run inside the worker fleet: spec is an
// opaque description of the program (the core layer serializes program
// name, grid, cost model and executor) that every worker's execution hook
// (EnableWorkerExec) turns into a local sub-machine over its rank window.
// It returns one RankResult per rank of the whole machine, in rank order,
// or the structured failure (a wrapped ErrWorkerLost when a worker process
// died mid-run). Runs are serialized; the transport may be reused for
// further runs, distributed or relay, afterwards.
func (t *IPCTransport) RunDistributed(spec []byte) ([]RankResult, error) {
	if !WorkerExecEnabled() {
		return nil, errors.New("machine: distributed run needs an exec-armed binary (EnableWorkerExec)")
	}
	t.runMu.Lock()
	defer t.runMu.Unlock()
	if t.closed.Load() {
		return nil, errors.New("machine: ipc transport closed")
	}
	if err := t.ensureStarted(); err != nil {
		return nil, fmt.Errorf("machine: ipc transport failed to start workers: %v", err)
	}
	// The fence: stale frames drained, counters zeroed on both sides, any
	// leftover run from a failed predecessor joined and discarded. After a
	// clean run the sockets are already drained and the fence needs no
	// round trip (fastFence); anything else — first run, failed run, relay
	// traffic in between — pays for the full Reset exchange.
	if t.execClean.CompareAndSwap(true, false) {
		t.fastFence()
	} else {
		t.Reset()
	}

	t.execGen++
	er := &execRun{
		gen:     t.execGen,
		results: make([]RankResult, t.n),
		got:     make([]bool, t.n),
		barArr:  make(map[uint64]int),
		done:    make(chan struct{}),
		fail:    make(chan struct{}),
	}
	t.exec.Store(er)
	defer t.exec.Store(nil)

	// Broadcast the spec while holding every socket's write lock: each
	// worker starts executing the moment it reads its spec, and its
	// inter-node sends are routed by the read loops into these same
	// sockets — blocking those writers until every spec is flushed is what
	// guarantees spec-before-data on every FIFO (see the protocol comment
	// above).
	f := wire.Frame{Kind: wire.KindRunSpec, Seq: er.gen, A: uint64(len(spec)), Payload: wire.PackBytes(spec)}
	var werr error
	var wconn *ipcConn
	for _, cn := range t.conns {
		cn.wmu.Lock()
	}
	for _, cn := range t.conns {
		err := wire.WriteFrame(cn.bw, &cn.wscratch, &f)
		if err == nil {
			err = cn.bw.Flush()
			cn.dirty = false
		}
		if err != nil && werr == nil {
			werr, wconn = err, cn
		}
	}
	for _, cn := range t.conns {
		cn.wmu.Unlock()
	}
	if werr != nil && !t.closed.Load() {
		t.workerFailed(wconn, fmt.Errorf("run spec to node %d: %w", wconn.node, werr))
	}

	select {
	case <-er.done:
		// A worker loss can race the last result onto er.done; the
		// structured failure must win over a result set assembled from a
		// fleet that was falling apart.
		select {
		case <-er.fail:
			return nil, er.failErr
		default:
		}
	case <-er.fail:
		return nil, er.failErr
	case <-t.stopc:
		return nil, errors.New("machine: ipc transport closed during distributed run")
	}
	t.execClean.Store(true)
	return er.results, nil
}

// execProbe is the execution-mode distributed stall verdict, run by the
// watcher when a StallHint armed it. The frame counters alone cannot
// distinguish "deadlocked" from "every rank computing locally" — sockets
// are quiet either way — so quiescence is combined with the per-worker
// status flags the probe acks carry: two identical quiescent snapshots
// whose flags show every node either stalled or finished, with at least one
// stalled, bracket a cut where no frame was in flight anywhere and no rank
// could ever proceed. The verdict is broadcast as Abort{Seq:1}; each worker
// unwinds its blocked ranks with the exact ErrDeadlock cause the
// single-process transports produce, and the run completes through the
// normal RankResult path.
func (t *IPCTransport) execProbe(er *execRun) {
	if !er.hint.Load() || t.down.Load() || t.closed.Load() {
		return
	}
	t.probeMu.Lock()
	var ok bool
	t.snap1, ok = t.probeSnapshot(t.snap1[:0])
	if !ok {
		t.probeMu.Unlock()
		return
	}
	t.snap2, ok = t.probeSnapshot(t.snap2[:0])
	if !ok || len(t.snap1) != len(t.snap2) {
		t.probeMu.Unlock()
		return
	}
	for i := range t.snap1 {
		if t.snap1[i] != t.snap2[i] {
			t.probeMu.Unlock()
			return
		}
	}
	// Five values per connection; flags are the fifth (see probeSnapshot).
	anyStalled, allSettled := false, true
	for i := 4; i < len(t.snap2); i += 5 {
		switch {
		case t.snap2[i]&probeStalled != 0:
			anyStalled = true
		case t.snap2[i]&probeFinished == 0:
			allSettled = false
		}
	}
	t.probeMu.Unlock()
	if !allSettled || !anyStalled {
		// Not a deadlock (some node is still computing, or everything
		// finished). Leave the hint armed: the next delivery or hint
		// re-triggers the probe, and a finished fleet completes through
		// RankResult frames regardless.
		return
	}
	er.hint.Store(false)
	verdict := wire.Frame{Kind: wire.KindAbort, Seq: abortStallDeclared}
	for _, cn := range t.conns {
		_ = cn.writeCtrl(&verdict, time.Second)
	}
}
