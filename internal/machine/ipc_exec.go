package machine

import (
	"errors"
	"fmt"
	"sync"
	"sync/atomic"
	"time"

	"repro/internal/wire"
)

// This file is the coordinator half of the IPC execution plane. In relay
// mode (ipc.go's default) every rank runs in the coordinator and each
// inter-node message crosses two sockets; in execution mode each worker
// process hosts its node's ranks as a real sub-machine (WorkerTransport +
// Machine over the node's rank window), so intra-node sends never leave the
// worker and sockets carry only genuinely inter-node edges. The coordinator
// stops simulating and starts orchestrating: it broadcasts the run spec,
// routes worker-to-worker frames, arbitrates host barriers, drives the
// distributed stall verdict, and gathers per-rank results.
//
// The protocol, over the same framed sockets as relay mode:
//
//	coordinator                            workers
//	  Reset ─────────────────────────────▶   (fence: join stale run, zero counters)
//	  RunSpec{gen, spec} ────────────────▶   build run via the exec hook, install transport
//	  ◀──────────────────────── RunAck{gen}  (all nodes; a rejection fails the run)
//	  RunStart{gen} ─────────────────────▶   execute ranks
//	  ◀─ Data{A:gen} ─▶ routed onward ───▶   inter-node sends, batched per socket
//	  ◀──────────────────── StallHint{gen}   local quiescence; arms execProbe
//	  Abort{Seq:1} (verdict) ────────────▶   declareStall: ranks unwind with ErrDeadlock
//	  ◀─────────────────── RankResult{gen}   one per rank; completes the run
//
// The RunSpec/RunStart split closes a write-order race: a worker that
// acknowledged the spec has its mailboxes installed, so Data frames another
// node's ranks emit the instant they start can never arrive before the
// transport exists.
type execRun struct {
	gen uint64

	mu      sync.Mutex
	results []RankResult // indexed by rank
	got     []bool
	count   int
	acks    int
	barArr  map[uint64]int // host-barrier generation -> nodes arrived

	ackDone chan struct{} // every node acknowledged the spec
	done    chan struct{} // every rank's result arrived

	failOnce sync.Once
	failErr  error
	fail     chan struct{}

	// hint arms the watcher's execProbe: at least one worker reported all
	// its live ranks blocked since the last failed verdict.
	hint atomic.Bool
}

// failWith records the run's terminal failure; first cause wins.
func (er *execRun) failWith(err error) {
	er.failOnce.Do(func() {
		er.failErr = err
		close(er.fail)
	})
}

// RunDistributed executes one run inside the worker fleet: spec is an
// opaque description of the program (the core layer serializes program
// name, grid, cost model and executor) that every worker's execution hook
// (EnableWorkerExec) turns into a local sub-machine over its rank window.
// It returns one RankResult per rank of the whole machine, in rank order,
// or the structured failure (a wrapped ErrWorkerLost when a worker process
// died mid-run). Runs are serialized; the transport may be reused for
// further runs, distributed or relay, afterwards.
func (t *IPCTransport) RunDistributed(spec []byte) ([]RankResult, error) {
	if !WorkerExecEnabled() {
		return nil, errors.New("machine: distributed run needs an exec-armed binary (EnableWorkerExec)")
	}
	t.runMu.Lock()
	defer t.runMu.Unlock()
	if t.closed.Load() {
		return nil, errors.New("machine: ipc transport closed")
	}
	if err := t.ensureStarted(); err != nil {
		return nil, fmt.Errorf("machine: ipc transport failed to start workers: %v", err)
	}
	// The fence: stale frames drained, counters zeroed on both sides, any
	// leftover run from a failed predecessor joined and discarded.
	t.Reset()

	t.execGen++
	er := &execRun{
		gen:     t.execGen,
		results: make([]RankResult, t.n),
		got:     make([]bool, t.n),
		barArr:  make(map[uint64]int),
		ackDone: make(chan struct{}),
		done:    make(chan struct{}),
		fail:    make(chan struct{}),
	}
	t.exec.Store(er)
	defer t.exec.Store(nil)

	f := wire.Frame{Kind: wire.KindRunSpec, Seq: er.gen, A: uint64(len(spec)), Payload: wire.PackBytes(spec)}
	for _, cn := range t.conns {
		if err := cn.writeCtrl(&f, 0); err != nil {
			if !t.closed.Load() {
				t.workerFailed(cn, fmt.Errorf("run spec to node %d: %w", cn.node, err))
			}
			break // the failure lands on er.fail below
		}
	}
	select {
	case <-er.ackDone:
	case <-er.fail:
		return nil, er.failErr
	case <-t.stopc:
		return nil, errors.New("machine: ipc transport closed during distributed run")
	}

	start := wire.Frame{Kind: wire.KindRunStart, Seq: er.gen}
	for _, cn := range t.conns {
		if err := cn.writeCtrl(&start, 0); err != nil {
			if !t.closed.Load() {
				t.workerFailed(cn, fmt.Errorf("run start to node %d: %w", cn.node, err))
			}
			break
		}
	}
	select {
	case <-er.done:
		// A worker loss can race the last result onto er.done; the
		// structured failure must win over a result set assembled from a
		// fleet that was falling apart.
		select {
		case <-er.fail:
			return nil, er.failErr
		default:
		}
	case <-er.fail:
		return nil, er.failErr
	case <-t.stopc:
		return nil, errors.New("machine: ipc transport closed during distributed run")
	}
	return er.results, nil
}

// execProbe is the execution-mode distributed stall verdict, run by the
// watcher when a StallHint armed it. The frame counters alone cannot
// distinguish "deadlocked" from "every rank computing locally" — sockets
// are quiet either way — so quiescence is combined with the per-worker
// status flags the probe acks carry: two identical quiescent snapshots
// whose flags show every node either stalled or finished, with at least one
// stalled, bracket a cut where no frame was in flight anywhere and no rank
// could ever proceed. The verdict is broadcast as Abort{Seq:1}; each worker
// unwinds its blocked ranks with the exact ErrDeadlock cause the
// single-process transports produce, and the run completes through the
// normal RankResult path.
func (t *IPCTransport) execProbe(er *execRun) {
	if !er.hint.Load() || t.down.Load() || t.closed.Load() {
		return
	}
	t.probeMu.Lock()
	var ok bool
	t.snap1, ok = t.probeSnapshot(t.snap1[:0])
	if !ok {
		t.probeMu.Unlock()
		return
	}
	t.snap2, ok = t.probeSnapshot(t.snap2[:0])
	if !ok || len(t.snap1) != len(t.snap2) {
		t.probeMu.Unlock()
		return
	}
	for i := range t.snap1 {
		if t.snap1[i] != t.snap2[i] {
			t.probeMu.Unlock()
			return
		}
	}
	// Five values per connection; flags are the fifth (see probeSnapshot).
	anyStalled, allSettled := false, true
	for i := 4; i < len(t.snap2); i += 5 {
		switch {
		case t.snap2[i]&probeStalled != 0:
			anyStalled = true
		case t.snap2[i]&probeFinished == 0:
			allSettled = false
		}
	}
	t.probeMu.Unlock()
	if !allSettled || !anyStalled {
		// Not a deadlock (some node is still computing, or everything
		// finished). Leave the hint armed: the next delivery or hint
		// re-triggers the probe, and a finished fleet completes through
		// RankResult frames regardless.
		return
	}
	er.hint.Store(false)
	verdict := wire.Frame{Kind: wire.KindAbort, Seq: abortStallDeclared}
	for _, cn := range t.conns {
		_ = cn.writeCtrl(&verdict, time.Second)
	}
}
