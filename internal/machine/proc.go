package machine

import "fmt"

// Stats accumulates per-processor activity counters over one Run.
type Stats struct {
	// Flops is the number of floating point operations charged via
	// Compute.
	Flops int64
	// MsgsSent and BytesSent count outgoing traffic.
	MsgsSent  int64
	BytesSent int64
	// MsgsRecv counts completed receives.
	MsgsRecv int64
	// IdleTime is virtual time spent waiting for messages that had not
	// yet arrived.
	IdleTime float64
	// CommTime is virtual time spent in send and receive overheads.
	CommTime float64
}

// Add returns the element-wise sum of two Stats.
func (s Stats) Add(o Stats) Stats {
	return Stats{
		Flops:     s.Flops + o.Flops,
		MsgsSent:  s.MsgsSent + o.MsgsSent,
		BytesSent: s.BytesSent + o.BytesSent,
		MsgsRecv:  s.MsgsRecv + o.MsgsRecv,
		IdleTime:  s.IdleTime + o.IdleTime,
		CommTime:  s.CommTime + o.CommTime,
	}
}

// wordBytes is the simulated size of one float64 array element on the wire.
const wordBytes = 8

// Proc is one processor of a simulated multicomputer. A Proc is only valid
// inside the body passed to Machine.Run, on its own goroutine.
type Proc struct {
	m     *Machine
	rank  int
	clock float64
	stats Stats
	// local is the first tier of the size-classed message buffer pool:
	// per-class free lists touched only by the owning goroutine, so the
	// symmetric steady state (halo exchanges, ping-pongs — every release
	// backs an equal-sized later acquire) recycles without taking a lock.
	// Overflow and misses go through the machine-wide tier, which
	// rebalances capacity between processors whose send and receive size
	// profiles differ. See sharedPool.
	local [numClasses][][]float64
	// scratch holds per-processor state registered by runtime subsystems
	// (solver scratch, compiled schedules) so derived state survives
	// across calls without globals or locks. See Scratch.
	scratch map[any]any
}

// AcquireBuf returns a message payload buffer of length n with unspecified
// contents, reusing a previously released buffer when one is available in
// the processor's free lists or the machine-wide pool. Pass the filled
// buffer to SendOwned, or return it with ReleaseBuf.
func (p *Proc) AcquireBuf(n int) []float64 {
	if n <= 0 {
		return nil
	}
	c := sizeClass(n)
	if c >= numClasses {
		return make([]float64, n)
	}
	// First tier: the processor's own lists, exact class outward. Larger
	// classes are legal backing (capacity rides the message to its
	// receiver's pool, it is never wasted).
	for cc := c; cc < numClasses; cc++ {
		if l := len(p.local[cc]); l > 0 {
			buf := p.local[cc][l-1]
			p.local[cc][l-1] = nil
			p.local[cc] = p.local[cc][:l-1]
			return buf[:n]
		}
	}
	// Second tier: the machine-wide classed lists.
	if buf, ok := p.m.bufs.take(c); ok {
		return buf[:n]
	}
	// Allocate the full class size so the buffer files cleanly wherever
	// it is eventually released.
	return make([]float64, 1<<c)[:n]
}

// ReleaseBuf returns a buffer to the pool. It is only safe for buffers no
// longer referenced anywhere else: a payload obtained from Recv that the
// caller has fully consumed, or an AcquireBuf buffer that was never sent.
// Releasing is optional; unreleased buffers are simply garbage collected.
//
// The buffer is filed by capacity class: the first localKeep of a class
// stay on the releasing processor, the rest flow to the machine-wide tier
// so capacity cannot strand on a processor that never sends that class —
// the property that keeps asymmetric traffic (irregular gathers whose
// serve and request sizes differ) allocation-free in steady state.
func (p *Proc) ReleaseBuf(buf []float64) {
	c := capClass(cap(buf))
	if c < 0 {
		return
	}
	if l := &p.local[c]; len(*l) < localKeep {
		if *l == nil {
			*l = make([][]float64, 0, localKeep)
		}
		*l = append(*l, buf)
		return
	}
	p.m.bufs.put(c, buf)
}

// Scratch returns the processor's scratch value registered under key,
// creating it with mk on first use. It is the pool hook runtime subsystems
// use to keep reusable buffers and compiled state per simulated processor
// (the tridiagonal solver's line-solve scratch, for example) without
// package-level globals. Only the owning goroutine may call it.
//
// Scratch values survive Machine.Run resets — like the message buffer pool
// they must hold only reusable capacity, never per-Run semantic state.
func (p *Proc) Scratch(key any, mk func() any) any {
	if v, ok := p.scratch[key]; ok {
		return v
	}
	if p.scratch == nil {
		p.scratch = make(map[any]any)
	}
	v := mk()
	p.scratch[key] = v
	return v
}

func newProc(m *Machine, rank int) *Proc {
	return &Proc{m: m, rank: rank}
}

func (p *Proc) reset() {
	p.clock = 0
	p.stats = Stats{}
}

// Rank returns the processor's machine-wide rank in [0, Size).
func (p *Proc) Rank() int { return p.rank }

// Size returns the number of processors in the machine.
func (p *Proc) Size() int { return p.m.n }

// Machine returns the machine the processor belongs to.
func (p *Proc) Machine() *Machine { return p.m }

// Clock returns the processor's current virtual time.
func (p *Proc) Clock() float64 { return p.clock }

// Stats returns a copy of the processor's activity counters.
func (p *Proc) Stats() Stats { return p.stats }

// Compute advances the processor's clock by flops floating point operations
// under the machine's cost model. Negative values are ignored.
func (p *Proc) Compute(flops int) {
	if flops <= 0 {
		return
	}
	start := p.clock
	p.clock += float64(flops) * p.m.cost.FlopTime
	p.stats.Flops += int64(flops)
	p.emit(Event{Proc: p.rank, Kind: EvCompute, Start: start, End: p.clock, Peer: -1})
}

// Send transmits a copy of data to processor dst under the given tag. The
// send is asynchronous: it occupies the sender for SendOverhead virtual
// seconds and the message arrives at dst after the model's latency and
// transfer time. Sending to oneself is allowed (loopback with the same
// costs). The data slice is copied, so the caller may reuse it immediately.
func (p *Proc) Send(dst int, tag Tag, data []float64) {
	buf := p.AcquireBuf(len(data))
	copy(buf, data)
	p.SendOwned(dst, tag, buf)
}

// SendOwned transmits data to processor dst, transferring ownership of the
// slice: the caller must not touch data afterwards. Combined with
// AcquireBuf it is the zero-copy, zero-allocation send path the runtime's
// packed collectives use; Send is the copying convenience on top of it.
func (p *Proc) SendOwned(dst int, tag Tag, data []float64) {
	if dst < 0 || dst >= p.m.n {
		panic(fmt.Sprintf("machine: proc %d sending to invalid rank %d", p.rank, dst))
	}
	start := p.clock
	p.clock += p.m.cost.SendOverhead
	p.stats.CommTime += p.m.cost.SendOverhead
	bytes := len(data) * wordBytes
	arrival := p.clock + p.m.tr.MessageTime(p.m.cost, p.rank, dst, bytes)
	p.m.tr.Send(p.rank, dst, tag, data, arrival)
	p.stats.MsgsSent++
	p.stats.BytesSent += int64(bytes)
	p.emit(Event{Proc: p.rank, Kind: EvSend, Start: start, End: p.clock, Peer: dst, Bytes: bytes})
}

// SendValue transmits a single float64; a convenience wrapper around Send.
func (p *Proc) SendValue(dst int, tag Tag, v float64) {
	buf := p.AcquireBuf(1)
	buf[0] = v
	p.SendOwned(dst, tag, buf)
}

// Recv blocks until a message from src with the given tag is available and
// returns its payload. The processor's clock advances to at least the
// message's arrival time (accumulating idle time if it waited) plus the
// receive overhead.
//
// If the machine deadlocks while waiting, Recv panics with an abort value
// that Machine.Run converts into an error wrapping ErrDeadlock; user code
// should not attempt to recover it.
func (p *Proc) Recv(src int, tag Tag) []float64 {
	if src < 0 || src >= p.m.n {
		panic(fmt.Sprintf("machine: proc %d receiving from invalid rank %d", p.rank, src))
	}
	data, arrival, ok := p.m.tr.Recv(p.rank, src, tag)
	if !ok {
		// Attribute the abort: a transport that took itself down for a
		// richer reason than deadlock (a chaos retry budget exhausting)
		// reports it through the DownReasoner extension.
		cause := error(ErrDeadlock)
		if dr, isDR := p.m.tr.(DownReasoner); isDR {
			if r := dr.DownReason(); r != nil {
				cause = r
			}
		}
		panic(procAbort{err: fmt.Errorf("processor %d waiting on (src=%d, tag=%#x): %w", p.rank, src, tag, cause)})
	}
	if arrival > p.clock {
		p.stats.IdleTime += arrival - p.clock
		p.emit(Event{Proc: p.rank, Kind: EvIdle, Start: p.clock, End: arrival, Peer: src})
		p.clock = arrival
	}
	start := p.clock
	p.clock += p.m.cost.RecvOverhead
	p.stats.CommTime += p.m.cost.RecvOverhead
	p.stats.MsgsRecv++
	p.emit(Event{Proc: p.rank, Kind: EvRecv, Start: start, End: p.clock, Peer: src, Bytes: len(data) * wordBytes})
	return data
}

// RecvValue receives a single float64; a convenience wrapper around Recv.
// The payload buffer never escapes, so it is recycled into the processor's
// pool.
func (p *Proc) RecvValue(src int, tag Tag) float64 {
	d := p.Recv(src, tag)
	if len(d) != 1 {
		panic(fmt.Sprintf("machine: proc %d expected scalar message from %d, got %d values", p.rank, src, len(d)))
	}
	v := d[0]
	p.ReleaseBuf(d)
	return v
}

// Mark records a zero-length annotation in the processor's trace timeline.
func (p *Proc) Mark(label string) {
	p.emit(Event{Proc: p.rank, Kind: EvMark, Start: p.clock, End: p.clock, Peer: -1, Label: label})
}

// AdvanceTo moves the processor's clock forward to time t if t is in the
// future; used by collective operations that synchronize clocks.
func (p *Proc) AdvanceTo(t float64) {
	if t > p.clock {
		p.stats.IdleTime += t - p.clock
		p.emit(Event{Proc: p.rank, Kind: EvIdle, Start: p.clock, End: t, Peer: -1})
		p.clock = t
	}
}

func (p *Proc) emit(e Event) {
	if p.m.sink != nil {
		p.m.sink.Record(e)
	}
}
