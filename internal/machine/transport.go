package machine

import (
	"sync"
	"sync/atomic"
)

// Transport is the communication substrate of a Machine: it moves message
// payloads between processor endpoints and implements the blocked-receiver
// bookkeeping the machine's deadlock detector relies on. The Machine layers
// virtual-time accounting (clocks, overheads, stats, tracing) on top; a
// Transport only stores, matches and delivers.
//
// Message matching follows the machine's tag discipline: a receive matches
// the oldest pending message with the same (source, tag) pair addressed to
// the receiving endpoint, so every (src, dst, tag) stream is FIFO and
// distinct streams never interact. Any implementation holding that contract
// (and the rest of the conformance battery in transport_conformance_test.go)
// can carry the whole runtime — compiled communication schedules replay
// unchanged, with bit-identical virtual times, on every conforming
// transport.
//
// Two implementations ship with the package: SharedTransport (one
// per-receiver mailbox array, the single-machine fast path) and
// FederatedTransport (processors partitioned into nodes, inter-node traffic
// routed through per-node-pair ordered links — the NUMA-style federation
// that is the door to a real network transport).
type Transport interface {
	// Size returns the number of processor endpoints.
	Size() int

	// Send delivers data from endpoint src to endpoint dst on the
	// (src, tag) stream, with the given virtual arrival time. It never
	// blocks indefinitely and may be called concurrently from every
	// endpoint. Ownership of data passes to the transport (and then to
	// the receiver).
	Send(src, dst int, tag Tag, data []float64, arrival float64)

	// MessageTime returns the end-to-end transfer time (excluding sender
	// and receiver overheads) for a message of b bytes from endpoint src
	// to endpoint dst under cost — the arrival-time computation the
	// machine threads through every Send. The transport knows which link
	// the message crosses; the cost model knows what each link charges.
	// Flat transports return cost.MessageTime(b) for every pair;
	// FederatedTransport prices inter-node messages with the cost model's
	// per-link table. Implementations must be pure and deterministic.
	MessageTime(cost CostModel, src, dst, b int) float64

	// Recv blocks until a message on the (src, tag) stream addressed to
	// dst is available and returns its payload and arrival time. The ok
	// result is false when the transport went down (abort or detected
	// stall) while waiting. Only dst's goroutine may receive for dst.
	Recv(dst, src int, tag Tag) (data []float64, arrival float64, ok bool)

	// Barrier blocks the calling endpoint until every endpoint has
	// entered the same barrier generation, then releases them together.
	// It is a host-level fence with no virtual-time cost — the hook a
	// networked transport needs for epoch alignment — and reports false
	// when the transport went down while waiting. Virtual-time barriers
	// belong to the coll package.
	//
	// A processor parked in Barrier is not counted by the machine's
	// deadlock detector: a program in which some processors sit in a
	// Barrier that others will never reach (because they are stuck in an
	// unsatisfiable Recv) hangs rather than returning ErrDeadlock. Only
	// every endpoint entering the same barrier is a correct use.
	Barrier(rank int) bool

	// Reset clears all in-flight messages, waiter state, traffic
	// counters and the down flag, keeping allocated capacity, so a
	// transport can be reused across Machine.Run calls.
	Reset()

	// Abort marks the transport down and wakes every blocked receiver
	// and barrier waiter; their calls return ok=false. Subsequent
	// receives fail fast until Reset.
	Abort()

	// Down reports whether the transport has been aborted (or has
	// detected a stall) since the last Reset.
	Down() bool

	// CheckStalled decides, atomically with respect to all sends and
	// receives, whether the machine has deadlocked. With every internal
	// lock held it asks the bound coordinator's ConfirmStall, which
	// returns the number of live processors if all of them are counted
	// as blocked (and -1 to veto the check). If at least that many
	// receivers are parked with no pending message matching their
	// awaited stream, no future send can ever occur: the transport marks
	// itself down, wakes everyone, and returns true. With no coordinator
	// bound it reports false.
	CheckStalled() bool

	// Bind installs the machine's coordinator. It is called once, before
	// any traffic; nil is legal for standalone (testing) use.
	Bind(c Coordinator)
}

// Coordinator is the owning machine's face toward its transport: the
// callbacks a Transport must invoke around blocking waits so parked
// processors can be counted for deadlock detection. Machine implements it
// without per-call allocation; a standalone transport may run with none.
type Coordinator interface {
	// Blocked is called after a receiver has published the stream it is
	// waiting for, before it parks. No transport locks are held.
	Blocked()
	// Unblocked is called after a parked receiver resumes (with a
	// message or on a down transport). No transport locks are held.
	Unblocked()
	// ConfirmStall is called by CheckStalled with every transport lock
	// held: it returns the live processor count if all live processors
	// are currently counted as blocked, and -1 to veto the stall check.
	ConfirmStall() int
}

// hostBarrier is the generation-counted barrier shared by the bundled
// transports. It synchronizes host goroutines, not virtual clocks.
type hostBarrier struct {
	mu      sync.Mutex
	cond    *sync.Cond
	size    int
	arrived int
	gen     uint64
	// waiters lists the ranks parked through a Parker on the current
	// generation; the releasing arrival wakes each one. Under a parking
	// engine a barrier waiter must yield its worker token — with one
	// worker, a cond-blocked waiter would hold the only token and no
	// later endpoint could ever arrive.
	waiters []int
	// onRelease, when set, is invoked by the releasing arrival with the
	// new generation, under the barrier lock — the hook a networked
	// transport uses to announce epoch boundaries to its peers. It must
	// not call back into the barrier.
	onRelease func(gen uint64)
}

func (b *hostBarrier) init(size int) {
	b.size = size
	b.cond = sync.NewCond(&b.mu)
}

// await parks the caller until all size endpoints have arrived, reporting
// false if down was raised while waiting. With a non-nil Parker the wait
// parks through the engine (releasing the worker token) instead of the
// condition variable; the down path needs no barrier-local wakeup because
// whatever raised down broadcasts a WakeAll.
func (b *hostBarrier) await(rank int, down *atomic.Bool, pk Parker) bool {
	b.mu.Lock()
	if down.Load() {
		b.mu.Unlock()
		return false
	}
	gen := b.gen
	b.arrived++
	if b.arrived == b.size {
		b.arrived = 0
		b.gen++
		if b.onRelease != nil {
			b.onRelease(b.gen)
		}
		b.cond.Broadcast()
		// Waking under b.mu keeps this generation's waiter list intact:
		// a woken rank cannot re-enter await (and append to waiters)
		// until this unlock.
		for _, w := range b.waiters {
			pk.Wake(w)
		}
		b.waiters = b.waiters[:0]
		b.mu.Unlock()
		return true
	}
	if pk == nil {
		for b.gen == gen && !down.Load() {
			b.cond.Wait()
		}
		b.mu.Unlock()
		return b.gen != gen
	}
	b.waiters = append(b.waiters, rank)
	for b.gen == gen && !down.Load() {
		b.mu.Unlock()
		pk.Park(rank)
		b.mu.Lock()
	}
	b.mu.Unlock()
	return b.gen != gen
}

// wake releases barrier waiters after the down flag is set (parked waiters
// are woken by the abort/stall WakeAll broadcast).
func (b *hostBarrier) wake() {
	b.mu.Lock()
	b.cond.Broadcast()
	b.mu.Unlock()
}

// reset clears arrival state (waiters from an aborted Run have all exited
// by the time a Machine resets its transport).
func (b *hostBarrier) reset() {
	b.mu.Lock()
	b.arrived = 0
	b.waiters = b.waiters[:0]
	b.mu.Unlock()
}
