package machine

import (
	"fmt"
	"runtime"
	"sort"
	"sync"
)

// Executor is the engine that drives one Machine.Run: it decides which host
// goroutines execute the n virtual processors and in what order. The
// reference engine ("goroutine") spawns one goroutine per processor and
// lets the Go scheduler interleave them; the calendar engine ("calendar")
// multiplexes the processors over a bounded worker pool, resuming runnable
// ranks in virtual-time order from an event calendar. Programs produce
// bit-identical values, message/byte censuses and virtual times on every
// engine: the machine is a Kahn network — each receive names its (source,
// tag) stream — so results are a function of the program, not of which host
// thread ran which rank when. The conformance battery pins that identity.
type Executor interface {
	// Name returns the engine's registry name.
	Name() string
	// Execute runs body once per processor of m and returns when all of
	// them have finished. Per-rank errors (including recovered panics,
	// converted to errors exactly as the reference engine does) are
	// written to errs[rank]. Execute is called with the machine already
	// reset; it must call m.retire() as each rank's body finishes so the
	// deadlock detector's live count stays honest.
	Execute(m *Machine, body func(p *Proc) error, errs []error)
}

// Parker is the calendar engine's face toward the transports: when a
// machine runs under a parking executor, a blocking wait must yield the
// worker token instead of blocking a dedicated goroutine, and a delivery
// must move the destination rank from parked to runnable instead of
// signalling a condition variable. Transports reach the machine's parker
// (if any) through parkerOf on their bound Coordinator.
//
// The protocol is lost-wakeup safe without requiring Park and Wake to be
// ordered: a Wake for a rank that has not parked yet is remembered as
// pending, and that rank's next Park returns immediately. Spurious returns
// are therefore possible and callers must re-check their wait condition in
// a loop, exactly as they would around sync.Cond.Wait.
type Parker interface {
	// Park blocks the calling rank until a Wake (or WakeAll) aimed at it,
	// releasing its worker token while it waits. Must be called with no
	// transport locks held.
	Park(rank int)
	// Wake moves rank from parked to runnable (or marks a pending wake if
	// it has not parked yet). Safe to call with transport locks held.
	Wake(rank int)
	// WakeAll wakes every parked rank and marks every non-parked rank's
	// next Park as pending — the abort/stall-declared broadcast. Safe to
	// call with transport locks held.
	WakeAll()
}

// parkerHost is implemented by the machine's coordinator: transports ask it
// for the active run's Parker (nil when the reference engine is driving).
type parkerHost interface{ Parker() Parker }

// parkerOf extracts the active Parker from a transport's bound coordinator;
// nil with no coordinator, and nil when the current run's engine blocks on
// condition variables (so transports fall back to cond-based waits).
func parkerOf(c Coordinator) Parker {
	if h, ok := c.(parkerHost); ok {
		return h.Parker()
	}
	return nil
}

// ExecutorFactory builds a fresh executor instance. Factories return a new
// instance per call: an executor carries per-run scheduling state and must
// be exclusive to one machine at a time.
type ExecutorFactory func() Executor

var (
	execRegistryMu sync.RWMutex
	execRegistry   = map[string]ExecutorFactory{}
)

// RegisterExecutor adds a named execution engine to the registry. The core
// facade (core.Executor), the conformance battery and kfbench's -executor
// flag all resolve engines by these names, mirroring RegisterTransport.
func RegisterExecutor(name string, mk ExecutorFactory) {
	if name == "" {
		panic("machine: RegisterExecutor with empty name")
	}
	if mk == nil {
		panic(fmt.Sprintf("machine: RegisterExecutor(%q) with nil factory", name))
	}
	execRegistryMu.Lock()
	defer execRegistryMu.Unlock()
	if _, dup := execRegistry[name]; dup {
		panic(fmt.Sprintf("machine: executor %q registered twice", name))
	}
	execRegistry[name] = mk
}

// NewExecutorByName builds the named execution engine. Unknown names return
// errors naming the registered alternatives.
func NewExecutorByName(name string) (Executor, error) {
	execRegistryMu.RLock()
	mk := execRegistry[name]
	execRegistryMu.RUnlock()
	if mk == nil {
		return nil, fmt.Errorf("machine: unknown executor %q (registered: %v)", name, ExecutorNames())
	}
	return mk(), nil
}

// ExecutorNames returns the registered engine names, sorted.
func ExecutorNames() []string {
	execRegistryMu.RLock()
	names := make([]string, 0, len(execRegistry))
	for name := range execRegistry {
		names = append(names, name)
	}
	execRegistryMu.RUnlock()
	sort.Strings(names)
	return names
}

func init() {
	RegisterExecutor("goroutine", func() Executor { return goroutineExecutor{} })
	RegisterExecutor("calendar", func() Executor { return NewCalendarExecutor(0) })
}

// goroutineExecutor is the reference engine: one goroutine per virtual
// processor, interleaving owned by the Go scheduler, blocking waits parked
// on transport condition variables. It is stateless and the default.
type goroutineExecutor struct{}

func (goroutineExecutor) Name() string { return "goroutine" }

func (goroutineExecutor) Execute(m *Machine, body func(p *Proc) error, errs []error) {
	var wg sync.WaitGroup
	wg.Add(m.hi - m.lo)
	for i := m.lo; i < m.hi; i++ {
		p := m.procs[i]
		go func() {
			defer wg.Done()
			defer m.retire()
			defer func() {
				if r := recover(); r != nil {
					if abort, ok := r.(procAbort); ok {
						errs[p.rank] = abort.err
						return
					}
					errs[p.rank] = fmt.Errorf("machine: processor %d panicked: %v", p.rank, r)
					m.tr.Abort()
				}
			}()
			errs[p.rank] = body(p)
		}()
	}
	wg.Wait()
}

// calendarExecutor is the worker-pool/event-calendar engine: the n virtual
// processors run on at most `workers` concurrently executing goroutines
// (min(GOMAXPROCS, n) unless pinned), with execution order owned by a
// virtual-time calendar instead of the host scheduler.
//
// Each rank keeps its own goroutine — Go cannot snapshot a blocked
// continuation — but a rank only executes while it holds one of the worker
// tokens. A rank that blocks (receive with no matching message, barrier
// with peers missing) parks: it releases its token, the calendar grants the
// token to the runnable rank with the smallest virtual clock (an indexed
// min-heap keyed on Proc clock, rank as tie-break), and the parked
// goroutine waits on its private gate channel. Mailbox delivery and barrier
// release move ranks from parked back onto the calendar via Wake instead of
// signalling a dedicated goroutine.
//
// Every rank is in exactly one of four states: on the calendar heap
// (runnable, no token), granted (token held, running or about to), parked
// (waiting for a Wake), or finished. The token invariant free + granted ==
// workers holds at every scheduler-lock release, which is what makes the
// engine cooperative rather than busy-waiting — with one worker, any lost
// wakeup or spin would deadlock immediately, a property the conformance
// battery's GOMAXPROCS=1 row pins.
//
// Stall detection moves with the engine: the coordinator's per-block
// CheckStalled trigger is suppressed (a parked rank is a continuation, not
// a blocked goroutine, and with k workers the blocked count crosses the
// live count constantly). Instead the scheduler itself triggers exactly one
// CheckStalled at each true quiescence — all tokens free, calendar empty,
// ranks unfinished — the only state from which no send can ever happen
// again without outside help. That is precisely when the goroutine engine's
// detector fires too (all live ranks blocked), so deadlock verdicts and
// chaos retransmission rounds land at the same program states on both
// engines.
//
// A calendarExecutor may be reused across sequential runs (state is reset
// per Execute) but never shared by two machines running concurrently.
type calendarExecutor struct {
	req int // requested worker count; 0 = min(GOMAXPROCS, n)

	m    *Machine
	body func(p *Proc) error
	errs []error

	mu       sync.Mutex
	workers  int
	free     int
	finished int
	n        int       // rank-space size (arrays are rank-indexed)
	nl       int       // local rank count actually executing here (m.hi - m.lo)
	heap     []int32   // calendar: rank indices ordered by keys
	keys     []float64 // keys[r] = r's clock when it became runnable
	pos      []int32   // pos[r] = index of r in heap, -1 if absent
	parked   []bool    // r is waiting for a Wake
	pending  []bool    // a Wake arrived before r's Park; next Park is a no-op
	gates    []chan struct{}

	wg sync.WaitGroup
}

// NewCalendarExecutor returns a calendar engine running on the given number
// of workers; workers <= 0 selects min(GOMAXPROCS, n) at Execute time, and
// requests above n are clamped to n.
func NewCalendarExecutor(workers int) *calendarExecutor {
	return &calendarExecutor{req: workers}
}

func (e *calendarExecutor) Name() string { return "calendar" }

// Workers returns the configured worker count (0 = GOMAXPROCS at run time).
func (e *calendarExecutor) Workers() int { return e.req }

func (e *calendarExecutor) Execute(m *Machine, body func(p *Proc) error, errs []error) {
	n := m.n
	nl := m.hi - m.lo
	w := e.req
	if w <= 0 {
		w = runtime.GOMAXPROCS(0)
	}
	if w > nl {
		w = nl
	}
	e.m, e.body, e.errs = m, body, errs
	e.workers, e.n, e.nl = w, n, nl
	e.free = w
	e.finished = 0
	if len(e.gates) != n {
		e.gates = make([]chan struct{}, n)
		for i := range e.gates {
			// Capacity 1: a grant may be issued before (or after) the
			// rank reaches its gate wait; either order delivers.
			e.gates[i] = make(chan struct{}, 1)
		}
		e.heap = make([]int32, 0, n)
		e.keys = make([]float64, n)
		e.pos = make([]int32, n)
		e.parked = make([]bool, n)
		e.pending = make([]bool, n)
	}
	e.heap = e.heap[:0]
	for i := 0; i < n; i++ {
		e.pos[i] = -1
		e.parked[i] = false
		e.pending[i] = false
	}

	// Publish the parker before any rank goroutine exists, so transports
	// route every blocking wait of this run through the calendar.
	m.setParker(e)

	e.wg.Add(nl)
	for r := m.lo; r < m.hi; r++ {
		go e.rankLoop(r)
	}
	// Seed the calendar with every local rank at clock zero (rank order
	// breaks the tie) and grant the first w tokens. Ranks outside the
	// machine's local window (the IPC worker's remote peers) never run
	// here: they are message endpoints, not continuations.
	e.mu.Lock()
	for r := m.lo; r < m.hi; r++ {
		e.pushLocked(r)
	}
	e.dispatchLocked()
	e.mu.Unlock()
	e.wg.Wait()
	e.body, e.errs = nil, nil
}

// rankLoop is one virtual processor's goroutine: wait for the first token
// grant, run the body to completion, then hand the token back.
func (e *calendarExecutor) rankLoop(r int) {
	defer e.wg.Done()
	<-e.gates[r]
	p := e.m.procs[r]
	func() {
		defer func() {
			if rec := recover(); rec != nil {
				if abort, ok := rec.(procAbort); ok {
					e.errs[r] = abort.err
					return
				}
				e.errs[r] = fmt.Errorf("machine: processor %d panicked: %v", r, rec)
				e.m.tr.Abort()
			}
		}()
		e.errs[r] = e.body(p)
	}()
	e.m.retire()
	e.finish(r)
}

// Park releases the calling rank's worker token and blocks until a Wake. A
// wake that raced ahead of the park (the sender ran on another worker
// between this rank publishing its wait and parking) is consumed here and
// Park returns immediately — the caller's re-check loop does the rest.
func (e *calendarExecutor) Park(rank int) {
	e.mu.Lock()
	if e.pending[rank] {
		e.pending[rank] = false
		e.mu.Unlock()
		return
	}
	e.parked[rank] = true
	e.free++
	e.dispatchLocked()
	quiet := e.quietLocked()
	e.mu.Unlock()
	if quiet {
		// This park completed a quiescence: no token is granted, so no
		// rank can send, and nothing will ever change without the stall
		// check below (which retransmits under chaos, or declares
		// deadlock and wakes everyone through WakeAll).
		e.m.tr.CheckStalled()
	}
	<-e.gates[rank]
}

// Wake moves rank from parked onto the calendar (keyed at its current
// clock — safe to read: rank wrote it before parking, and parked[rank]
// under e.mu orders that write before this read) and dispatches; a wake for
// a rank that has not parked yet is remembered as pending.
func (e *calendarExecutor) Wake(rank int) {
	e.mu.Lock()
	if e.parked[rank] {
		e.parked[rank] = false
		e.pushLocked(rank)
		e.dispatchLocked()
	} else {
		e.pending[rank] = true
	}
	e.mu.Unlock()
}

// WakeAll is the abort/stall broadcast: every parked rank becomes runnable,
// and every rank between its down-check and its park gets a pending wake so
// it cannot sleep through the shutdown.
func (e *calendarExecutor) WakeAll() {
	e.mu.Lock()
	for r := 0; r < e.n; r++ {
		if e.parked[r] {
			e.parked[r] = false
			e.pushLocked(r)
		} else {
			e.pending[r] = true
		}
	}
	e.dispatchLocked()
	e.mu.Unlock()
}

// finish returns a completed rank's token and re-dispatches; like Park it
// triggers the stall check when it completes a quiescence (ranks parked on
// streams only a now-finished rank could have fed).
func (e *calendarExecutor) finish(rank int) {
	e.mu.Lock()
	e.finished++
	e.free++
	e.dispatchLocked()
	quiet := e.quietLocked()
	e.mu.Unlock()
	if quiet {
		e.m.tr.CheckStalled()
	}
}

// quietLocked reports true quiescence: every token free, no runnable rank,
// and unfinished local ranks remaining. Caller holds e.mu.
func (e *calendarExecutor) quietLocked() bool {
	return e.free == e.workers && len(e.heap) == 0 && e.finished < e.nl
}

// dispatchLocked grants free tokens to the earliest-clock runnable ranks.
// Caller holds e.mu.
func (e *calendarExecutor) dispatchLocked() {
	for e.free > 0 && len(e.heap) > 0 {
		r := e.popMinLocked()
		e.free--
		e.gates[r] <- struct{}{}
	}
}

// --- indexed min-heap keyed on (clock, rank) ---------------------------

func (e *calendarExecutor) lessLocked(a, b int32) bool {
	if e.keys[a] != e.keys[b] {
		return e.keys[a] < e.keys[b]
	}
	return a < b
}

func (e *calendarExecutor) swapLocked(i, j int) {
	e.heap[i], e.heap[j] = e.heap[j], e.heap[i]
	e.pos[e.heap[i]] = int32(i)
	e.pos[e.heap[j]] = int32(j)
}

func (e *calendarExecutor) pushLocked(r int) {
	e.keys[r] = e.m.procs[r].clock
	e.heap = append(e.heap, int32(r))
	i := len(e.heap) - 1
	e.pos[r] = int32(i)
	for i > 0 {
		parent := (i - 1) / 2
		if !e.lessLocked(e.heap[i], e.heap[parent]) {
			break
		}
		e.swapLocked(i, parent)
		i = parent
	}
}

func (e *calendarExecutor) popMinLocked() int {
	r := e.heap[0]
	last := len(e.heap) - 1
	e.heap[0] = e.heap[last]
	e.heap = e.heap[:last]
	e.pos[r] = -1
	if last > 0 {
		e.pos[e.heap[0]] = 0
		e.siftDownLocked(0)
	}
	return int(r)
}

func (e *calendarExecutor) siftDownLocked(i int) {
	n := len(e.heap)
	for {
		l := 2*i + 1
		if l >= n {
			return
		}
		small := l
		if ri := l + 1; ri < n && e.lessLocked(e.heap[ri], e.heap[l]) {
			small = ri
		}
		if !e.lessLocked(e.heap[small], e.heap[i]) {
			return
		}
		e.swapLocked(i, small)
		i = small
	}
}
