package machine

import (
	"errors"
	"io"
	"sync"
	"sync/atomic"
	"testing"
)

// The cross-transport conformance battery: every Transport implementation is
// run through the same table of semantic checks — per-(src,dst,tag) FIFO
// ordering, barrier semantics, reset reuse, deadlock detection, abort
// wakeups and cross-transport bit-identical virtual time — so a future
// transport (a real network one, say) plugs into the suite by adding one
// constructor row.

// transportRow is one registry-derived transport under test.
type transportRow struct {
	name string
	tr   Transport
}

// conformanceRows enumerates the transport registry into the battery's
// table: every registered transport, at every federation shape it accepts
// out of {1, 2, n} nodes (n must be a multiple of 4, as everywhere in the
// battery). A future transport plugs into the whole suite by calling
// machine.RegisterTransport — no test edits. Transports accepting exactly
// one shape (the shared mailbox array) keep their bare registry name;
// federating ones get one row per shape.
func conformanceRows(tb testing.TB, n int) []transportRow {
	tb.Helper()
	var rows []transportRow
	for _, name := range TransportNames() {
		var accepted []transportRow
		seen := map[int]bool{}
		for _, shape := range []struct {
			label string
			nodes int
		}{{"1node", 1}, {"2nodes", 2}, {"pernode", n}} {
			if seen[shape.nodes] {
				continue
			}
			seen[shape.nodes] = true
			tr, err := NewTransportByName(name, n, shape.nodes)
			if err != nil {
				continue // this transport rejects the federation shape
			}
			// Transports holding external resources (the IPC transport's
			// worker processes) release them when the test ends, so a
			// battery of many rows never accumulates stray processes.
			if c, ok := tr.(io.Closer); ok {
				tb.Cleanup(func() { c.Close() })
			}
			accepted = append(accepted, transportRow{name: name + "/" + shape.label, tr: tr})
		}
		if len(accepted) == 0 {
			tb.Fatalf("registered transport %q accepts none of the conformance federation shapes", name)
		}
		if len(accepted) == 1 {
			accepted[0].name = name
		}
		rows = append(rows, accepted...)
	}
	return rows
}

func forEachTransport(t *testing.T, n int, f func(t *testing.T, tr Transport)) {
	t.Helper()
	for _, row := range conformanceRows(t, n) {
		t.Run(row.name, func(t *testing.T) { f(t, row.tr) })
	}
}

func TestConformanceFIFOPerStream(t *testing.T) {
	// Messages on one (src, dst, tag) stream arrive in send order, and
	// interleaved tags never bleed into each other.
	forEachTransport(t, 4, func(t *testing.T, tr Transport) {
		m := NewWithTransport(tr, Uniform())
		const rounds = 50
		err := m.Run(func(p *Proc) error {
			dst := (p.Rank() + 1) % 4
			src := (p.Rank() + 3) % 4
			for i := 0; i < rounds; i++ {
				p.SendValue(dst, TagOf(1), float64(i))
				p.SendValue(dst, TagOf(2), float64(100+i))
			}
			// Drain tag 2 first: tag 1's backlog must stay ordered.
			for i := 0; i < rounds; i++ {
				if v := p.RecvValue(src, TagOf(2)); v != float64(100+i) {
					t.Errorf("tag 2 message %d: got %v", i, v)
				}
			}
			for i := 0; i < rounds; i++ {
				if v := p.RecvValue(src, TagOf(1)); v != float64(i) {
					t.Errorf("tag 1 message %d: got %v", i, v)
				}
			}
			return nil
		})
		if err != nil {
			t.Fatal(err)
		}
	})
}

func TestConformanceAllPairsTraffic(t *testing.T) {
	// Every ordered processor pair exchanges a distinct payload; all
	// payloads arrive intact (on the federated transports this crosses
	// every link in both directions).
	forEachTransport(t, 8, func(t *testing.T, tr Transport) {
		m := NewWithTransport(tr, Balanced())
		err := m.Run(func(p *Proc) error {
			me := p.Rank()
			n := p.Size()
			for dst := 0; dst < n; dst++ {
				if dst == me {
					continue
				}
				p.Send(dst, TagOf(uint16(me)), []float64{float64(me*1000 + dst)})
			}
			for src := 0; src < n; src++ {
				if src == me {
					continue
				}
				got := p.Recv(src, TagOf(uint16(src)))
				if len(got) != 1 || got[0] != float64(src*1000+me) {
					t.Errorf("pair %d->%d: got %v", src, me, got)
				}
				p.ReleaseBuf(got)
			}
			return nil
		})
		if err != nil {
			t.Fatal(err)
		}
	})
}

func TestConformanceBarrier(t *testing.T) {
	// No endpoint leaves barrier generation g before every endpoint has
	// entered it, across repeated reusable generations.
	const n, gens = 8, 5
	forEachTransport(t, n, func(t *testing.T, tr Transport) {
		tr.Bind(nil)
		var entered [gens]atomic.Int32
		var wg sync.WaitGroup
		wg.Add(n)
		for rank := 0; rank < n; rank++ {
			go func(rank int) {
				defer wg.Done()
				for g := 0; g < gens; g++ {
					entered[g].Add(1)
					if !tr.Barrier(rank) {
						t.Errorf("rank %d: barrier gen %d reported down", rank, g)
						return
					}
					if got := entered[g].Load(); got != n {
						t.Errorf("rank %d left barrier gen %d with %d/%d entered", rank, g, got, n)
					}
				}
			}(rank)
		}
		wg.Wait()
	})
}

func TestConformanceResetReuse(t *testing.T) {
	// A transport is reusable across Runs — including after an abort left
	// undelivered messages and a raised down flag behind.
	forEachTransport(t, 4, func(t *testing.T, tr Transport) {
		m := NewWithTransport(tr, Uniform())
		for round := 0; round < 3; round++ {
			err := m.Run(func(p *Proc) error {
				next := (p.Rank() + 1) % 4
				prev := (p.Rank() + 3) % 4
				p.SendValue(next, 7, float64(round*10+p.Rank()))
				if v := p.RecvValue(prev, 7); v != float64(round*10+prev) {
					t.Errorf("round %d: got %v", round, v)
				}
				// Leave an undelivered message behind: Reset must drop it.
				p.SendValue(next, 8, -1)
				return nil
			})
			if err != nil {
				t.Fatal(err)
			}
			// A deadlocking run in between must not poison the next round.
			err = m.Run(func(p *Proc) error {
				if p.Rank() == 0 {
					p.Recv(1, 99)
				}
				return nil
			})
			if !errors.Is(err, ErrDeadlock) {
				t.Fatalf("round %d: err = %v, want ErrDeadlock", round, err)
			}
			if !tr.Down() {
				t.Fatalf("round %d: transport not down after deadlock", round)
			}
		}
	})
}

func TestConformanceDeadlockDetection(t *testing.T) {
	forEachTransport(t, 4, func(t *testing.T, tr Transport) {
		m := NewWithTransport(tr, Uniform())
		// All-blocked cycle.
		err := m.Run(func(p *Proc) error {
			p.Recv((p.Rank()+1)%4, 0)
			return nil
		})
		if !errors.Is(err, ErrDeadlock) {
			t.Fatalf("cycle: err = %v, want ErrDeadlock", err)
		}
		// Peer exits, receiver can never be satisfied.
		err = m.Run(func(p *Proc) error {
			if p.Rank() == 3 {
				p.Recv(0, 0)
			}
			return nil
		})
		if !errors.Is(err, ErrDeadlock) {
			t.Fatalf("peer exit: err = %v, want ErrDeadlock", err)
		}
	})
}

func TestConformanceAbortUnblocksReceiversAndBarrier(t *testing.T) {
	forEachTransport(t, 4, func(t *testing.T, tr Transport) {
		tr.Bind(nil)
		tr.Reset()
		var wg sync.WaitGroup
		wg.Add(2)
		started := make(chan struct{}, 2)
		go func() {
			defer wg.Done()
			started <- struct{}{}
			if _, _, ok := tr.Recv(0, 1, TagOf(5)); ok {
				t.Error("Recv succeeded after abort")
			}
		}()
		go func() {
			defer wg.Done()
			started <- struct{}{}
			if tr.Barrier(2) {
				t.Error("Barrier succeeded after abort")
			}
		}()
		<-started
		<-started
		tr.Abort()
		wg.Wait()
		if !tr.Down() {
			t.Fatal("transport not down after Abort")
		}
		// Fail-fast after abort, then a Reset clears the flag.
		if _, _, ok := tr.Recv(3, 1, TagOf(6)); ok {
			t.Fatal("Recv succeeded on a down transport")
		}
		tr.Reset()
		if tr.Down() {
			t.Fatal("Reset did not clear the down flag")
		}
	})
}

// conformanceProgram is a nontrivial deterministic workload touching
// point-to-point traffic, fan-in, compute and idle time; the cross-transport
// check requires bit-identical virtual behaviour on every transport.
func conformanceProgram(m *Machine) ([]float64, []Stats, float64, error) {
	n := m.Size()
	values := make([]float64, n)
	err := m.Run(func(p *Proc) error {
		me := p.Rank()
		next := (me + 1) % n
		prev := (me + n - 1) % n
		acc := float64(me)
		for round := 0; round < 6; round++ {
			p.Compute(10 * (1 + (me+round)%3))
			p.Send(next, TagOf(uint16(round)), []float64{acc})
			in := p.Recv(prev, TagOf(uint16(round)))
			acc += in[0] / 2
			p.ReleaseBuf(in)
		}
		// Fan-in to rank 0 and broadcast back.
		if me != 0 {
			p.SendValue(0, TagOf(100), acc)
			acc += p.RecvValue(0, TagOf(101))
		} else {
			sum := acc
			for q := 1; q < n; q++ {
				sum += p.RecvValue(q, TagOf(100))
			}
			for q := 1; q < n; q++ {
				p.SendValue(q, TagOf(101), sum)
			}
			acc = sum
		}
		values[me] = acc
		return nil
	})
	stats := make([]Stats, n)
	for r := 0; r < n; r++ {
		stats[r] = m.ProcStats(r)
	}
	return values, stats, m.Elapsed(), err
}

func TestConformanceCrossTransportIdentical(t *testing.T) {
	// The same program must produce bit-identical values, per-processor
	// statistics and elapsed virtual time on every transport.
	const n = 8
	type result struct {
		values  []float64
		stats   []Stats
		elapsed float64
	}
	var ref *result
	var refName string
	for _, row := range conformanceRows(t, n) {
		m := NewWithTransport(row.tr, IPSC2())
		values, stats, elapsed, err := conformanceProgram(m)
		if err != nil {
			t.Fatalf("%s: %v", row.name, err)
		}
		cur := &result{values: values, stats: stats, elapsed: elapsed}
		if ref == nil {
			ref, refName = cur, row.name
			continue
		}
		if cur.elapsed != ref.elapsed {
			t.Errorf("%s: elapsed %v != %s's %v", row.name, cur.elapsed, refName, ref.elapsed)
		}
		for r := 0; r < n; r++ {
			if cur.values[r] != ref.values[r] {
				t.Errorf("%s: rank %d value %v != %v", row.name, r, cur.values[r], ref.values[r])
			}
			if cur.stats[r] != ref.stats[r] {
				t.Errorf("%s: rank %d stats %+v != %+v", row.name, r, cur.stats[r], ref.stats[r])
			}
		}
	}
}

func TestSharedTransportPingPongZeroAllocs(t *testing.T) {
	// The shared-memory fast path must stay allocation-free in steady
	// state: pooled payload buffers, recycled queue slices, no hidden
	// closure or interface boxing on the hot path.
	m := New(2, ZeroComm())
	err := m.Run(func(p *Proc) error {
		other := 1 - p.Rank()
		pingPong := func() {
			if p.Rank() == 0 {
				p.SendValue(other, 1, 1)
				p.RecvValue(other, 2)
			} else {
				p.RecvValue(other, 1)
				p.SendValue(other, 2, 1)
			}
		}
		pingPong() // warm the pools and queue maps
		if avg := testing.AllocsPerRun(200, pingPong); avg != 0 {
			t.Errorf("warmed shared-transport ping-pong: %v allocs per run, want 0", avg)
		}
		return nil
	})
	if err != nil {
		t.Fatal(err)
	}
}

func TestFederatedTransportSteadyStateAllocs(t *testing.T) {
	// The federated path shares the pooling discipline: a warmed
	// intra-node and inter-node ping-pong both run allocation-free.
	m := NewFederated(8, 2, ZeroComm())
	err := m.Run(func(p *Proc) error {
		// Nodes are {0..3} and {4..7}: pairs (0,1) and (4,5) ping-pong
		// inside a node, pairs (2,6) and (3,7) across the link.
		peers := [8]int{1, 0, 6, 7, 5, 4, 2, 3}
		peer := peers[p.Rank()]
		lead := p.Rank() < peer
		pingPong := func() {
			if lead {
				p.SendValue(peer, 1, 1)
				p.RecvValue(peer, 2)
			} else {
				p.RecvValue(peer, 1)
				p.SendValue(peer, 2, 1)
			}
		}
		pingPong()
		if avg := testing.AllocsPerRun(200, pingPong); avg != 0 {
			t.Errorf("warmed federated ping-pong (rank %d): %v allocs per run, want 0", p.Rank(), avg)
		}
		return nil
	})
	if err != nil {
		t.Fatal(err)
	}
}

func TestFederatedLinkCounters(t *testing.T) {
	// Link counters census exactly the inter-node messages: intra-node
	// traffic is never counted, and each directed pair is counted on its
	// own link.
	tr := NewFederatedTransport(4, 2) // node 0: ranks 0,1; node 1: ranks 2,3
	m := NewWithTransport(tr, Uniform())
	err := m.Run(func(p *Proc) error {
		switch p.Rank() {
		case 0:
			p.Send(1, 1, make([]float64, 10)) // intra-node: not counted
			p.Send(2, 2, make([]float64, 5))  // node 0 -> node 1
			p.Send(3, 3, make([]float64, 7))  // node 0 -> node 1
		case 1:
			p.Recv(0, 1)
		case 2:
			p.Recv(0, 2)
			p.Send(0, 4, make([]float64, 2)) // node 1 -> node 0
		case 3:
			p.Recv(0, 3)
		}
		if p.Rank() == 0 {
			p.Recv(2, 4)
		}
		return nil
	})
	if err != nil {
		t.Fatal(err)
	}
	if msgs, bytes := tr.LinkTraffic(0, 1); msgs != 2 || bytes != (5+7)*wordBytes {
		t.Errorf("link 0->1: %d msgs / %d bytes, want 2 / %d", msgs, bytes, (5+7)*wordBytes)
	}
	if msgs, bytes := tr.LinkTraffic(1, 0); msgs != 1 || bytes != 2*wordBytes {
		t.Errorf("link 1->0: %d msgs / %d bytes, want 1 / %d", msgs, bytes, 2*wordBytes)
	}
	if msgs, bytes := tr.InterNodeTraffic(); msgs != 3 || bytes != (5+7+2)*wordBytes {
		t.Errorf("inter-node totals: %d msgs / %d bytes, want 3 / %d", msgs, bytes, (5+7+2)*wordBytes)
	}
	if tr.NodeOf(1) != 0 || tr.NodeOf(2) != 1 || tr.Nodes() != 2 || tr.ProcsPerNode() != 2 {
		t.Error("node topology accessors disagree with the partition")
	}
	// Counters reset with the transport.
	tr.Reset()
	if msgs, bytes := tr.InterNodeTraffic(); msgs != 0 || bytes != 0 {
		t.Errorf("after Reset: %d msgs / %d bytes, want 0 / 0", msgs, bytes)
	}
}

func TestFederatedConstructorValidation(t *testing.T) {
	for _, tc := range []struct{ n, nodes int }{{4, 3}, {4, 0}, {4, -1}, {0, 1}, {4, 8}} {
		func() {
			defer func() {
				if recover() == nil {
					t.Errorf("NewFederatedTransport(%d, %d) did not panic", tc.n, tc.nodes)
				}
			}()
			NewFederatedTransport(tc.n, tc.nodes)
		}()
	}
}
