package machine

import (
	"math/bits"
	"sync"
)

// Message payload buffers are recycled through two tiers of size-classed
// free lists. The first tier lives on each Proc (lock-free, owning
// goroutine only) and covers symmetric steady-state traffic, where every
// released receive buffer backs an equal-sized later send. The second tier
// is this machine-wide sharedPool: one small mutex per power-of-two size
// class. It exists because buffers migrate — acquired by the sender,
// released by the receiver — so a processor whose send sizes differ from
// its receive sizes (an asymmetric irregular gather: big serve lists, small
// request lists) would otherwise strand capacity on peers that never need
// it and allocate a fresh buffer every replay. Routing per-class overflow
// through the machine makes total capacity per class stabilize at the peak
// in-flight demand, after which replay of any fixed traffic pattern
// performs no heap allocation.
//
// All pooled buffers have power-of-two capacities (AcquireBuf rounds
// allocations up to the class size), so classing by capacity is exact.

const (
	// numClasses covers pooled capacities up to 2^(numClasses-1) values
	// (64 MiB of float64s at 24); larger buffers bypass the pool.
	numClasses = 24
	// localKeep bounds each processor's per-class free list; releases
	// beyond it flow to the machine-wide tier.
	localKeep = 8
	// sharedKeep bounds each machine-wide per-class list; beyond it,
	// buffers are dropped for the garbage collector.
	sharedKeep = 4096
)

// sizeClass returns the class whose buffers hold at least n values: the
// smallest c with 1<<c >= n. Only meaningful for n >= 1.
func sizeClass(n int) int {
	return bits.Len(uint(n - 1))
}

// capClass returns the class a buffer of capacity cp files under — the
// largest c with 1<<c <= cp — or -1 when the buffer is unpoolable (empty
// or beyond the top class).
func capClass(cp int) int {
	if cp == 0 {
		return -1
	}
	c := bits.Len(uint(cp)) - 1
	if c >= numClasses {
		return -1
	}
	return c
}

// sharedPool is the machine-wide tier: per-class LIFO free lists, each
// guarded by its own mutex so concurrent traffic in different size classes
// never contends.
type sharedPool struct {
	classes [numClasses]struct {
		mu   sync.Mutex
		bufs [][]float64
	}
}

// take pops a buffer of class >= c, preferring the exact class.
func (sp *sharedPool) take(c int) ([]float64, bool) {
	for cc := c; cc < numClasses; cc++ {
		cl := &sp.classes[cc]
		cl.mu.Lock()
		if l := len(cl.bufs); l > 0 {
			buf := cl.bufs[l-1]
			cl.bufs[l-1] = nil
			cl.bufs = cl.bufs[:l-1]
			cl.mu.Unlock()
			return buf, true
		}
		cl.mu.Unlock()
	}
	return nil, false
}

// put files a buffer under class c, dropping it when the class is full.
func (sp *sharedPool) put(c int, buf []float64) {
	cl := &sp.classes[c]
	cl.mu.Lock()
	if len(cl.bufs) < sharedKeep {
		cl.bufs = append(cl.bufs, buf)
	}
	cl.mu.Unlock()
}
