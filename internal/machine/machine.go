// Package machine simulates a loosely coupled multicomputer: a collection of
// processors with private memories that interact only through point-to-point
// messages, in the style of the distributed-memory machines targeted by
// Mehrotra and Van Rosendale's KF1 language constructs (ICASE 89-41).
//
// Each processor runs as a goroutine and carries a virtual clock advanced by
// an explicit CostModel: computation via Compute, communication via
// Send/Recv. Message matching is point-to-point by (source, tag), so a
// program's virtual-time behaviour is a deterministic function of the program
// alone — every run of an experiment produces identical clocks, counters and
// traces regardless of host scheduling.
//
// The simulation is honest about distribution: goroutines never read each
// other's array data directly; all sharing flows through Send/Recv, which is
// what lets the higher layers (internal/darray, internal/kf) account every
// byte a real compiler-generated message-passing program would move.
//
// Message delivery itself is delegated to a pluggable Transport: the default
// SharedTransport delivers through one per-receiver mailbox array, while
// FederatedTransport partitions the processors into nodes joined by counted
// FIFO links. Programs behave bit-identically on any conforming transport.
package machine

import (
	"errors"
	"fmt"
	"sync"
	"sync/atomic"
)

// ErrDeadlock is reported by Run when every live processor is blocked in
// Recv and no pending message can satisfy any of them.
var ErrDeadlock = errors.New("machine: deadlock: all live processors blocked in Recv")

// Machine is a simulated multicomputer with a fixed number of processors.
type Machine struct {
	n      int
	lo, hi int // the window of ranks this machine executes (see localRanker)
	cost   CostModel
	sink   Sink
	procs  []*Proc
	tr     Transport
	bufs   sharedPool // machine-wide tier of the message buffer pool

	dmu     sync.Mutex // guards blocked and live
	blocked int        // processors currently waiting in Recv
	live    int        // processors still executing the current Run body

	// exec is the engine driving Run (goroutine-per-proc by default);
	// parker holds the active engine's Parker while a parking engine's
	// run is in flight (nil otherwise) — atomic because transports read
	// it from Send/Abort/CheckStalled paths that may run on external
	// goroutines while Run publishes or clears it — and errs is the
	// pooled per-rank error slice reused across runs.
	exec   Executor
	parker atomic.Pointer[Parker]
	errs   []error

	// coord adapts the machine to the transport's Coordinator interface
	// without exposing the callbacks as Machine methods (and without
	// allocating: &m.coord shares the machine's allocation).
	coord coordinator
}

// coordinator implements Coordinator on behalf of its Machine.
type coordinator struct{ m *Machine }

// Blocked counts a processor parked in Recv; when every live processor is
// parked the stall check runs. Under a parking engine the count still
// feeds ConfirmStall, but the trigger moves to the engine's quiescence
// detection: with k workers multiplexing n ranks, blocked >= live is the
// steady state, not a suspicion.
func (c *coordinator) Blocked() {
	m := c.m
	m.dmu.Lock()
	m.blocked++
	suspicious := m.parker.Load() == nil && m.blocked >= m.live
	m.dmu.Unlock()
	if suspicious {
		m.tr.CheckStalled()
	}
}

// Parker exposes the active run's parking engine to the transports (nil
// when the reference engine is driving); see the Parker interface.
func (c *coordinator) Parker() Parker {
	if p := c.m.parker.Load(); p != nil {
		return *p
	}
	return nil
}

// Unblocked counts a parked processor's resume.
func (c *coordinator) Unblocked() {
	m := c.m
	m.dmu.Lock()
	m.blocked--
	m.dmu.Unlock()
}

// ConfirmStall is called by the transport's CheckStalled with all transport
// locks held: it re-checks, under the machine's counter lock, that every
// live processor is currently counted as blocked, returning the live count
// (or -1 to veto).
func (c *coordinator) ConfirmStall() int {
	m := c.m
	m.dmu.Lock()
	defer m.dmu.Unlock()
	if m.live > 0 && m.blocked >= m.live {
		return m.live
	}
	return -1
}

// RecheckStall re-runs the stall decision on behalf of a transport whose
// delivery pipeline just drained (the IPC transport's watcher; see
// stallRechecker): the rank whose Blocked() ran the previous check could
// not see frames still in flight, so the drain gets another look. Unlike
// Blocked, the trigger is not gated on the parking engine being absent —
// under a parking engine, blocked >= live is the steady state, but the
// transport's CheckStalled re-confirms every condition (including the
// engine's own quiescence through ConfirmStall's counters), so a false
// trigger is a no-op. Routing through m.tr enters at the top of the
// transport stack: with a chaos wrapper, the recheck drives fault recovery
// too.
func (c *coordinator) RecheckStall() {
	m := c.m
	m.dmu.Lock()
	suspicious := m.live > 0 && m.blocked >= m.live
	m.dmu.Unlock()
	if suspicious {
		m.tr.CheckStalled()
	}
}

// acquirePooled and releasePooled expose the machine-wide buffer pool tier
// to the transport (see bufPool): a transport that serializes payloads onto
// a wire returns the sender's buffer here on encode and draws the
// receiver's buffer on decode, keeping the two-process round trip as
// allocation-free as the in-memory handoff it replaces.
func (c *coordinator) acquirePooled(n int) []float64 {
	if n == 0 {
		return nil
	}
	cl := sizeClass(n)
	if cl < numClasses {
		if buf, ok := c.m.bufs.take(cl); ok {
			return buf[:n]
		}
		return make([]float64, n, 1<<cl)
	}
	return make([]float64, n)
}

func (c *coordinator) releasePooled(buf []float64) {
	if cl := capClass(cap(buf)); cl >= 0 {
		c.m.bufs.put(cl, buf[:0])
	}
}

// New returns a machine with n processors governed by the given cost model,
// communicating over a shared-memory mailbox transport.
func New(n int, cost CostModel) *Machine {
	return NewWithTransport(NewSharedTransport(n), cost)
}

// NewFederated returns a machine whose n processors are partitioned into
// nodes equal nodes communicating over counted inter-node links; see
// FederatedTransport. Programs produce bit-identical results and message
// censuses on New and NewFederated machines of the same size; virtual
// times are also bit-identical under a flat cost model, while a
// hierarchical one (CostModel.InterNode) prices inter-node messages at
// their link's latency and bandwidth, so federated clocks honestly exceed
// shared ones by the interconnect surcharge.
func NewFederated(n, nodes int, cost CostModel) *Machine {
	return NewWithTransport(NewFederatedTransport(n, nodes), cost)
}

// localRanker is implemented by transports that host only a window of the
// machine's rank space locally (the IPC worker's sub-machine): ranks in
// [lo, hi) execute here, the rest exist only as message endpoints reached
// through the transport. Executors then drive only the local window, and
// the deadlock live-count covers local ranks alone — remote progress is
// the transport's to observe.
type localRanker interface {
	LocalRanks() (lo, hi int)
}

// NewWithTransport returns a machine over an explicit transport; the
// processor count is the transport's endpoint count. The transport must be
// exclusive to this machine (Bind is called here).
func NewWithTransport(t Transport, cost CostModel) *Machine {
	n := t.Size()
	if n <= 0 {
		panic(fmt.Sprintf("machine: processor count must be positive, got %d", n))
	}
	m := &Machine{n: n, lo: 0, hi: n, cost: cost, tr: t, exec: goroutineExecutor{}}
	if lr, ok := t.(localRanker); ok {
		lo, hi := lr.LocalRanks()
		if lo < 0 || hi > n || lo >= hi {
			panic(fmt.Sprintf("machine: transport's local rank window [%d, %d) invalid for %d processors", lo, hi, n))
		}
		m.lo, m.hi = lo, hi
	}
	m.coord.m = m
	t.Bind(&m.coord)
	m.procs = make([]*Proc, n)
	for i := range m.procs {
		m.procs[i] = newProc(m, i)
	}
	return m
}

// SetSink installs a trace sink. It must be called before Run; a nil sink
// disables tracing.
func (m *Machine) SetSink(s Sink) { m.sink = s }

// Size returns the number of processors.
func (m *Machine) Size() int { return m.n }

// Cost returns the machine's cost model.
func (m *Machine) Cost() CostModel { return m.cost }

// Transport returns the machine's message transport, so callers can reach
// transport-specific observability (for example FederatedTransport's link
// traffic counters).
func (m *Machine) Transport() Transport { return m.tr }

// SetExecutor selects the engine driving Run (see Executor); nil restores
// the default goroutine-per-processor engine. It must not be called while
// a Run is in flight, and the executor must be exclusive to this machine.
func (m *Machine) SetExecutor(e Executor) {
	if e == nil {
		e = goroutineExecutor{}
	}
	m.exec = e
}

// ExecutorName returns the registry name of the engine driving Run.
func (m *Machine) ExecutorName() string { return m.exec.Name() }

// setParker publishes the active run's parking engine to the transports
// (nil clears it). Atomic so coordinator.Parker sees a consistent value
// from any goroutine, including transport callbacks running outside the
// rank goroutines.
func (m *Machine) setParker(p Parker) {
	if p == nil {
		m.parker.Store(nil)
		return
	}
	m.parker.Store(&p)
}

// Run executes body once per processor under the machine's executor — one
// goroutine per processor on the default engine, a virtual-time-ordered
// worker pool on the calendar engine (see SetExecutor) — and waits for all
// of them. It returns the first non-nil error produced by any body (by
// rank order), or an error wrapping ErrDeadlock if the processors
// deadlock. Clocks, counters and the transport are reset at the start of
// each Run, so a Machine may be reused for successive independent programs.
//
// A panic inside body on any processor is recovered and returned as an
// error; the remaining processors are woken and terminated.
func (m *Machine) Run(body func(p *Proc) error) error {
	m.dmu.Lock()
	m.blocked = 0
	m.live = m.hi - m.lo
	m.dmu.Unlock()
	m.tr.Reset()
	for _, p := range m.procs {
		p.reset()
	}

	if m.errs == nil {
		m.errs = make([]error, m.n)
	} else {
		for i := range m.errs {
			m.errs[i] = nil
		}
	}
	// The engine publishes a Parker (via setParker) before spawning rank
	// goroutines if it parks continuations; the reference engine leaves
	// it nil.
	m.setParker(nil)
	m.exec.Execute(m, body, m.errs)
	m.setParker(nil)
	for _, err := range m.errs {
		if err != nil {
			return err
		}
	}
	return nil
}

// Elapsed returns the maximum processor clock reached during the most recent
// Run — the virtual wall-clock time of the parallel program.
func (m *Machine) Elapsed() float64 {
	var max float64
	for _, p := range m.procs {
		if p.clock > max {
			max = p.clock
		}
	}
	return max
}

// TotalStats returns the element-wise sum of all processors' statistics from
// the most recent Run.
func (m *Machine) TotalStats() Stats {
	var t Stats
	for _, p := range m.procs {
		t = t.Add(p.stats)
	}
	return t
}

// ProcStats returns the statistics of processor rank from the most recent
// Run.
func (m *Machine) ProcStats(rank int) Stats { return m.procs[rank].stats }

// ProcClock returns the final clock of processor rank from the most recent
// Run.
func (m *Machine) ProcClock(rank int) float64 { return m.procs[rank].clock }

// RankErrors returns the per-rank error slice of the most recent Run
// (index = rank; nil for ranks that finished cleanly and for ranks
// outside the machine's local window). The slice is owned by the machine
// and reused across runs: callers must not retain it past the next Run.
// Run itself surfaces only the first error by rank order; a host that
// reports per-rank outcomes — the IPC worker shipping one RankResult per
// local rank — reads the rest from here.
func (m *Machine) RankErrors() []error { return m.errs }

// retire marks the calling processor's body as finished and re-checks the
// deadlock condition: processors still blocked can never be satisfied by a
// processor that has exited. Under a parking engine the trigger is the
// engine's quiescence detection instead (see coordinator.Blocked).
func (m *Machine) retire() {
	m.dmu.Lock()
	m.live--
	suspicious := m.parker.Load() == nil && m.live > 0 && m.blocked >= m.live
	m.dmu.Unlock()
	if suspicious {
		m.tr.CheckStalled()
	}
}

// procAbort carries a structured per-processor failure through the panic
// machinery inside Run; it never escapes the package.
type procAbort struct{ err error }
