package machine

import (
	"math"
	"testing"
	"testing/quick"
)

// The simulator's books must balance: these tests pin down the accounting
// identities that the experiment harness relies on when it reports
// utilization and communication volumes.

func TestBusyIdleCommSumWithinElapsed(t *testing.T) {
	// For every processor, compute + idle + comm time can never exceed
	// its final clock (gaps can exist: a processor that finishes early
	// simply stops, it does not idle).
	f := func(seed int64) bool {
		rng := newSplitMix(uint64(seed))
		const p = 4
		const rounds = 8
		m := New(p, IPSC2())
		work := make([][]int, rounds)
		for r := range work {
			work[r] = make([]int, p)
			for i := range work[r] {
				work[r][i] = int(rng.next()%200) + 1
			}
		}
		err := m.Run(func(pr *Proc) error {
			next := (pr.Rank() + 1) % p
			prev := (pr.Rank() + p - 1) % p
			for r := 0; r < rounds; r++ {
				pr.Compute(work[r][pr.Rank()])
				pr.Send(next, Tag(r), []float64{1, 2, 3})
				pr.Recv(prev, Tag(r))
			}
			return nil
		})
		if err != nil {
			return false
		}
		for q := 0; q < p; q++ {
			st := m.ProcStats(q)
			spent := float64(st.Flops)*m.Cost().FlopTime + st.IdleTime + st.CommTime
			if spent > m.ProcClock(q)+1e-12 {
				return false
			}
			// In this fully synchronous ring there are no gaps, so
			// the identity is exact.
			if math.Abs(spent-m.ProcClock(q)) > 1e-9 {
				return false
			}
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 25}); err != nil {
		t.Fatal(err)
	}
}

func TestElapsedEqualsMaxProcClock(t *testing.T) {
	m := New(3, Balanced())
	err := m.Run(func(p *Proc) error {
		p.Compute(100 * (p.Rank() + 1))
		if p.Rank() == 2 {
			p.SendValue(0, 0, 1)
		}
		if p.Rank() == 0 {
			p.RecvValue(2, 0)
		}
		return nil
	})
	if err != nil {
		t.Fatal(err)
	}
	max := 0.0
	for q := 0; q < 3; q++ {
		if c := m.ProcClock(q); c > max {
			max = c
		}
	}
	if m.Elapsed() != max {
		t.Errorf("Elapsed %v != max clock %v", m.Elapsed(), max)
	}
}

func TestBytesMatchPayloads(t *testing.T) {
	m := New(2, ZeroComm())
	err := m.Run(func(p *Proc) error {
		if p.Rank() == 0 {
			p.Send(1, 0, make([]float64, 10))
			p.Send(1, 1, make([]float64, 3))
		} else {
			p.Recv(0, 0)
			p.Recv(0, 1)
		}
		return nil
	})
	if err != nil {
		t.Fatal(err)
	}
	if got := m.TotalStats().BytesSent; got != 13*8 {
		t.Errorf("BytesSent = %d, want %d", got, 13*8)
	}
}

func TestAdvanceToMovesOnlyForward(t *testing.T) {
	m := New(1, Uniform())
	err := m.Run(func(p *Proc) error {
		p.Compute(10)
		p.AdvanceTo(5) // in the past: no-op
		if p.Clock() != 10 {
			t.Errorf("clock moved backwards: %v", p.Clock())
		}
		p.AdvanceTo(25)
		if p.Clock() != 25 {
			t.Errorf("clock = %v, want 25", p.Clock())
		}
		if p.Stats().IdleTime != 15 {
			t.Errorf("idle = %v, want 15", p.Stats().IdleTime)
		}
		return nil
	})
	if err != nil {
		t.Fatal(err)
	}
}

func TestScopeChildrenDistinct(t *testing.T) {
	// Sibling scopes and their tags must not collide for realistic
	// phase/iteration ranges.
	root := RootScope()
	seen := make(map[Tag]bool)
	for seq := 0; seq < 40; seq++ {
		for disc := -1; disc < 40; disc++ {
			tag := root.Child(seq, disc).Tag(1)
			if seen[tag] {
				t.Fatalf("tag collision at seq=%d disc=%d", seq, disc)
			}
			seen[tag] = true
		}
	}
	// Nested children stay distinct from their parents.
	a := root.Child(1, 2)
	b := a.Child(1, 2)
	if a.Tag(0) == b.Tag(0) {
		t.Error("nested child collides with parent")
	}
}

func TestTagOfPartPacking(t *testing.T) {
	if TagOf(1, 2) == TagOf(2, 1) {
		t.Error("TagOf must be order-sensitive")
	}
	if TagOf(7) == TagOf(8) {
		t.Error("distinct parts must give distinct tags")
	}
}

func TestCostPresetsSane(t *testing.T) {
	for _, c := range []CostModel{IPSC2(), Balanced(), ZeroComm(), Uniform()} {
		if c.FlopTime <= 0 {
			t.Errorf("preset with non-positive flop time: %+v", c)
		}
		if c.Latency < 0 || c.BytePeriod < 0 || c.SendOverhead < 0 || c.RecvOverhead < 0 {
			t.Errorf("preset with negative communication cost: %+v", c)
		}
	}
	// The 1989 machine must be communication-dominated: one message
	// latency worth thousands of flops.
	ip := IPSC2()
	if ip.Latency/ip.FlopTime < 100 {
		t.Errorf("iPSC/2 preset not communication-dominated: %v flops per latency",
			ip.Latency/ip.FlopTime)
	}
}

func TestEventKindStrings(t *testing.T) {
	kinds := map[EventKind]string{
		EvCompute: "compute", EvSend: "send", EvRecv: "recv",
		EvIdle: "idle", EvMark: "mark", EventKind(99): "unknown",
	}
	for k, want := range kinds {
		if k.String() != want {
			t.Errorf("%d.String() = %q, want %q", k, k.String(), want)
		}
	}
}
