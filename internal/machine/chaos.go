package machine

import (
	"errors"
	"fmt"
	"io"
	"sort"
	"sync"
	"sync/atomic"

	"repro/internal/chaos"
)

// ErrFaultAbort is reported by Run (wrapped, with the failing stream named)
// when an injected fault exhausted its retry budget: a message was lost more
// than Scenario.MaxRetries times in a row, the runtime gave up, and the
// whole machine was taken down cleanly. Distinct from ErrDeadlock, which
// means the program itself could never have proceeded.
var ErrFaultAbort = errors.New("machine: fault-injection retry budget exhausted")

// ChaosPrefix names chaos-wrapped transports in the registry: the transport
// "chaos:federated" is a ChaosTransport around "federated". The prefix is
// reserved — RegisterTransport rejects names that carry it.
const ChaosPrefix = "chaos:"

// DownReasoner is an optional Transport extension: a transport that takes
// itself down for a richer reason than "deadlock" reports it here, and
// Proc.Recv attributes the abort to that reason instead of ErrDeadlock.
// A nil reason means the default applies.
type DownReasoner interface {
	DownReason() error
}

// stallProber is the optional transport extension the chaos layer prefers
// for stall confirmation: evaluate the full CheckStalled condition — every
// live processor parked with no matching pending message — WITHOUT
// declaring the transport down. The bundled transports implement it via
// stallCheck(declare=false); for other bases the chaos layer falls back to
// the coordinator's (weaker, lock-free) confirmation.
type stallProber interface {
	probeStalled() bool
}

// nodeLocator lets the chaos layer learn which node owns a rank, so fault
// rates configured per node pair apply to the right traffic. Bases without
// a node concept treat every rank as its own node.
type nodeLocator interface {
	NodeOf(rank int) int
}

// ChaosTransport wraps any Transport and injects message faults — drops,
// delays, duplications, link brownouts, node outages — drawn from seeded
// per-(src, dst)-pair PRNG streams, together with the survival semantics
// that let a program ride them out: timed-out retransmission of lost
// messages at confirmed stalls, receive-side duplicate absorption, and a
// clean machine-wide abort (ErrFaultAbort) when a retry budget runs out.
//
// Reproducibility contract: under a fixed Scenario (including its Seed),
// every run of a deterministic program injects the same faults and recovers
// them the same way, producing bit-identical values and an identical
// Report, regardless of host scheduling. The argument is the same
// Kahn-network one the machine's determinism rests on: all sends from one
// processor are program-ordered, so draws on a (src, dst) pair stream are
// program-ordered too; recovery runs only at confirmed global stalls,
// which are unique quiescent states, in canonical (sorted) stream order;
// and cross-stream report fields (FirstDrop) are computed at report time
// from virtual-time keys, never from wall-clock arrival order at the
// wrapper's lock.
//
// Faults apply only to messages crossing a node boundary — chaos happens on
// the wire. On a non-federating base (chaos:shared) every rank is its own
// node, so all non-self traffic is eligible; on chaos:federated intra-node
// messages are never faulted. Self-sends are never faulted. The host-level
// Barrier is not faulted either: it is a testing fence, not a message.
//
// With an inactive scenario (the zero value) the wrapper is a pass-through:
// one atomic load per operation, bit-identical values, censuses and virtual
// times to the unwrapped base — the conformance battery pins this.
//
// Machine-level Stats are counted by Proc before the transport sees the
// message, so injected faults never distort MsgsSent/MsgsRecv/BytesSent:
// under any completing scenario a program's values and message census are
// bit-identical to its fault-free run, while clocks and idle time honestly
// absorb the retry and delay costs.
type ChaosTransport struct {
	base   Transport
	coord  Coordinator
	nodeOf func(rank int) int
	active atomic.Bool

	mu      sync.Mutex
	sc      chaos.Scenario
	streams map[streamID]*chaosStream
	pairs   map[pairKey]*chaosPair
	awaited map[streamID]bool // streams a receiver is currently parked on
	held    int               // total messages in hold ledgers
	failure error             // set when a retry budget exhausts
	rep     chaos.Report      // current-run report
	cum     chaos.Report      // completed prior runs since SetScenario
}

// streamID names one FIFO message stream.
type streamID struct {
	src, dst int
	tag      Tag
}

// pairKey names one directed processor pair; each pair carries its own PRNG
// stream so draw order is the sender's program order — deterministic.
type pairKey struct {
	src, dst int
}

// chaosStream is the per-stream fault ledger. fwd counts messages forwarded
// to the base (delivery positions), recv counts deliveries the receiver has
// consumed; dups holds the positions of injected duplicate deliveries, so
// the receive side absorbs exactly those. hold is the retransmission queue:
// once a message on the stream is lost, every later send queues behind it
// (a lossy link still delivers FIFO per stream — the in-order blocking a
// reliable protocol imposes), and recovery flushes the queue in order.
type chaosStream struct {
	fwd  int
	recv int
	dups []int
	hold []heldMsg

	// lost/lossAt record the stream's first-ever loss and the virtual
	// arrival the lost message would have had; FirstDrop is computed from
	// these at report time (see firstDropLocked).
	lost   bool
	lossAt float64
}

// heldMsg is one untransmitted message: either lost (attempts >= 1 counts
// its failed transmissions) or queued behind a lost one (attempts == 0).
// penalty accumulates the virtual retry cost added to its arrival;
// minArrival floors delivery (a node outage holds messages until restart).
type heldMsg struct {
	data       []float64
	arrival    float64
	minArrival float64
	penalty    float64
	attempts   int
}

// chaosPair is one directed pair's fault state: its PRNG position and the
// resolved rates (scenario defaults or the pair's node-level Links
// override).
type chaosPair struct {
	rng                        uint64
	faulted                    bool // src and dst on different nodes
	drop, dup, delay, delayMax float64
}

// splitmix64 finalizer.
func chaosMix(z uint64) uint64 {
	z = (z ^ (z >> 30)) * 0xbf58476d1ce4e5b9
	z = (z ^ (z >> 27)) * 0x94d049bb133111eb
	return z ^ (z >> 31)
}

// chaosPairSeed derives a pair's PRNG state from the scenario seed and the
// directed pair, so every pair draws an independent reproducible stream.
func chaosPairSeed(seed int64, src, dst int) uint64 {
	return chaosMix(uint64(seed) +
		0x9e3779b97f4a7c15*uint64(src+1) +
		0x6a09e667f3bcc909*uint64(dst+1))
}

// next returns the pair's next uniform draw in [0, 1).
func (pr *chaosPair) next() float64 {
	pr.rng += 0x9e3779b97f4a7c15
	return float64(chaosMix(pr.rng)>>11) / (1 << 53)
}

// NewChaosTransport wraps base with an inactive (zero) scenario. Configure
// faults with SetScenario before Machine.Run; until then the wrapper is a
// pass-through.
func NewChaosTransport(base Transport) *ChaosTransport {
	if base == nil {
		panic("machine: NewChaosTransport(nil)")
	}
	if _, nested := base.(*ChaosTransport); nested {
		panic("machine: chaos transport wrapping a chaos transport; the wrapper applies exactly once")
	}
	t := &ChaosTransport{base: base}
	if nl, ok := base.(nodeLocator); ok {
		t.nodeOf = nl.NodeOf
	} else {
		t.nodeOf = func(rank int) int { return rank }
	}
	t.resetRunStateLocked()
	return t
}

// Base returns the wrapped transport, so callers can reach base-specific
// observability (link counters) and validation can see through the wrapper.
func (t *ChaosTransport) Base() Transport { return t.base }

// SetScenario installs a fault scenario (validated, with retry-policy
// defaults applied), discarding all fault-stream state and accumulated
// reports. It must be called between Runs, never during one. An inactive
// scenario returns the wrapper to pass-through mode.
func (t *ChaosTransport) SetScenario(sc chaos.Scenario) error {
	if err := sc.Validate(); err != nil {
		return err
	}
	sc = sc.WithDefaults()
	t.mu.Lock()
	t.sc = sc
	t.cum = chaos.Report{}
	t.resetRunStateLocked()
	t.mu.Unlock()
	t.active.Store(sc.Active())
	return nil
}

// Scenario returns the installed scenario (with defaults applied).
func (t *ChaosTransport) Scenario() chaos.Scenario {
	t.mu.Lock()
	defer t.mu.Unlock()
	return t.sc
}

// Report returns the current run's fault/recovery report.
func (t *ChaosTransport) Report() chaos.Report {
	t.mu.Lock()
	defer t.mu.Unlock()
	return t.reportLocked().Clone()
}

// TotalReport returns the report accumulated over every run since the last
// SetScenario, including the current one — the suite-level census kfbench
// aggregates.
func (t *ChaosTransport) TotalReport() chaos.Report {
	t.mu.Lock()
	defer t.mu.Unlock()
	return t.cum.Add(t.reportLocked())
}

// DownReason attributes an abort to the exhausted retry budget that caused
// it, falling back to the base transport's own reason (a lost IPC worker,
// say) when the fault layer did not cause the abort itself.
func (t *ChaosTransport) DownReason() error {
	t.mu.Lock()
	failure := t.failure
	t.mu.Unlock()
	if failure != nil {
		return failure
	}
	if dr, ok := t.base.(DownReasoner); ok {
		return dr.DownReason()
	}
	return nil
}

// Close releases the base transport's external resources (the IPC
// transport's worker processes); bases without a Close need none.
func (t *ChaosTransport) Close() error {
	if c, ok := t.base.(io.Closer); ok {
		return c.Close()
	}
	return nil
}

// resetRunStateLocked rewinds all fault-stream state — PRNG positions,
// stream ledgers, hold queues, the per-run report — to the start-of-run
// state the scenario seed defines. Caller holds t.mu (or has exclusive
// access during construction).
func (t *ChaosTransport) resetRunStateLocked() {
	t.rep = chaos.Report{Name: t.sc.Name, Seed: t.sc.Seed}
	t.streams = make(map[streamID]*chaosStream)
	t.pairs = make(map[pairKey]*chaosPair)
	t.awaited = make(map[streamID]bool)
	t.held = 0
	t.failure = nil
}

// Size returns the number of endpoints.
func (t *ChaosTransport) Size() int { return t.base.Size() }

// Bind installs the machine's coordinator on the wrapper and the base.
func (t *ChaosTransport) Bind(c Coordinator) {
	t.coord = c
	t.base.Bind(c)
}

// Down reports whether the transport has gone down since the last Reset.
func (t *ChaosTransport) Down() bool { return t.base.Down() }

// MessageTime delegates to the base: injected delays are added on top of
// the honest fault-free arrival time, inside Send.
func (t *ChaosTransport) MessageTime(cost CostModel, src, dst, b int) float64 {
	return t.base.MessageTime(cost, src, dst, b)
}

// Barrier delegates to the base; the host barrier is never faulted.
func (t *ChaosTransport) Barrier(rank int) bool { return t.base.Barrier(rank) }

// Abort takes the base down, waking every blocked receiver.
func (t *ChaosTransport) Abort() { t.base.Abort() }

// Reset folds the finished run's report into the cumulative one, rewinds
// all fault-stream state to the seed-defined start (so pooled-System reuse
// replays the exact same faults run after run), and resets the base.
func (t *ChaosTransport) Reset() {
	if t.active.Load() {
		t.mu.Lock()
		t.cum = t.cum.Add(t.reportLocked())
		t.resetRunStateLocked()
		t.mu.Unlock()
	}
	t.base.Reset()
}

// Nodes reports the base's federation node count (1 for flat bases).
func (t *ChaosTransport) Nodes() int {
	if nc, ok := t.base.(interface{ Nodes() int }); ok {
		return nc.Nodes()
	}
	return 1
}

// NodeOf returns the node owning the given rank under the base's topology.
func (t *ChaosTransport) NodeOf(rank int) int { return t.nodeOf(rank) }

// LinkTraffic delegates to the base's link counters when it has them.
// Injected duplicates genuinely cross the wire, so under an active scenario
// link censuses include them; machine-level Stats do not.
func (t *ChaosTransport) LinkTraffic(src, dst int) (msgs, bytes int64) {
	if lc, ok := t.base.(interface {
		LinkTraffic(src, dst int) (int64, int64)
	}); ok {
		return lc.LinkTraffic(src, dst)
	}
	return 0, 0
}

// stream returns (creating on first use) the ledger for sid. Caller holds
// t.mu.
func (t *ChaosTransport) streamLocked(sid streamID) *chaosStream {
	st := t.streams[sid]
	if st == nil {
		st = &chaosStream{}
		t.streams[sid] = st
	}
	return st
}

// pairLocked returns (creating on first use) the directed pair's fault
// state: an independent PRNG stream seeded from (scenario seed, src, dst)
// and the rates resolved from the scenario — node-pair Links overrides
// first, scenario-wide defaults otherwise. Caller holds t.mu.
func (t *ChaosTransport) pairLocked(src, dst int) *chaosPair {
	key := pairKey{src: src, dst: dst}
	if pr, ok := t.pairs[key]; ok {
		return pr
	}
	sn, dn := t.nodeOf(src), t.nodeOf(dst)
	pr := &chaosPair{
		rng:      chaosPairSeed(t.sc.Seed, src, dst),
		faulted:  sn != dn,
		drop:     t.sc.Drop,
		dup:      t.sc.Dup,
		delay:    t.sc.Delay,
		delayMax: t.sc.DelayMax,
	}
	for _, l := range t.sc.Links {
		if l.Src == sn && l.Dst == dn {
			pr.drop, pr.dup, pr.delay, pr.delayMax = l.Drop, l.Dup, l.Delay, l.DelayMax
		}
	}
	t.pairs[key] = pr
	return pr
}

// outageFloor reports whether a message between the given nodes arriving at
// the given virtual time hits a node outage window, and the earliest
// restart time a retransmission may deliver at.
func (t *ChaosTransport) outageFloor(srcNode, dstNode int, arrival float64) (floor float64, out bool) {
	for _, o := range t.sc.Outages {
		if (o.Node == srcNode || o.Node == dstNode) && arrival >= o.Start && arrival < o.End {
			out = true
			if o.End > floor {
				floor = o.End
			}
		}
	}
	return floor, out
}

// brownoutExtra sums the extra latency of every brownout window covering a
// message between the given nodes at the given fault-free arrival.
func (t *ChaosTransport) brownoutExtra(srcNode, dstNode int, arrival float64) float64 {
	var extra float64
	for _, b := range t.sc.Brownouts {
		if (b.Src == -1 || b.Src == srcNode) && (b.Dst == -1 || b.Dst == dstNode) &&
			arrival >= b.Start && arrival < b.End {
			extra += b.Extra
		}
	}
	return extra
}

// forwardLocked hands one message to the base transport, assigning it the
// stream's next delivery position. Caller holds t.mu.
func (t *ChaosTransport) forwardLocked(sid streamID, st *chaosStream, data []float64, arrival float64) int {
	pos := st.fwd
	st.fwd++
	t.base.Send(sid.src, sid.dst, sid.tag, data, arrival)
	return pos
}

// transmitLocked attempts one transmission of a message on stream sid at
// the given arrival time, rolling the pair's fault dice in fixed order:
// outage window (no draw), drop, delay (+magnitude), duplication. It
// reports whether the message was forwarded; on failure minArrival floors
// the retransmission (> 0 when a node outage held it). Caller holds t.mu.
func (t *ChaosTransport) transmitLocked(sid streamID, st *chaosStream, data []float64, arrival float64) (minArrival float64, delivered bool) {
	pr := t.pairLocked(sid.src, sid.dst)
	if !pr.faulted {
		t.forwardLocked(sid, st, data, arrival)
		return 0, true
	}
	sn, dn := t.nodeOf(sid.src), t.nodeOf(sid.dst)
	if floor, out := t.outageFloor(sn, dn, arrival); out {
		t.rep.OutageHolds++
		t.noteLossLocked(st, arrival)
		return floor, false
	}
	if pr.drop > 0 && pr.next() < pr.drop {
		t.rep.Drops++
		t.noteLossLocked(st, arrival)
		return 0, false
	}
	if pr.delay > 0 && pr.next() < pr.delay {
		arrival += pr.next() * pr.delayMax
		t.rep.Delays++
	}
	if extra := t.brownoutExtra(sn, dn, arrival); extra > 0 {
		arrival += extra
		t.rep.Brownouts++
	}
	t.forwardLocked(sid, st, data, arrival)
	if pr.dup > 0 && pr.next() < pr.dup {
		cp := append([]float64(nil), data...)
		pos := t.forwardLocked(sid, st, cp, arrival)
		st.dups = append(st.dups, pos)
		t.rep.Dups++
	}
	return 0, true
}

// noteLossLocked records a stream's first-ever loss. Which rank's send
// reaches the chaos layer first is a host-scheduling accident, so the
// report's FirstDrop cannot be "first to acquire t.mu": each stream
// remembers its own first loss (per-stream order IS deterministic — sends
// on a stream are the sender's program order), and firstDropLocked picks
// the canonical minimum at report time.
func (t *ChaosTransport) noteLossLocked(st *chaosStream, arrival float64) {
	if !st.lost {
		st.lost = true
		st.lossAt = arrival
	}
}

// streamBefore is the canonical (src, dst, tag) stream order used for
// recovery passes and FirstDrop tie-breaks.
func streamBefore(a, b streamID) bool {
	if a.src != b.src {
		return a.src < b.src
	}
	if a.dst != b.dst {
		return a.dst < b.dst
	}
	return a.tag < b.tag
}

// firstDropLocked computes the run's canonical first loss: the lost
// message with the earliest fault-free virtual arrival, ties broken by
// stream order. Both keys are deterministic functions of the program and
// seed, so the result is reproducible regardless of which rank's loss was
// recorded first in wall-clock time. Caller holds t.mu.
func (t *ChaosTransport) firstDropLocked() *chaos.StreamRef {
	var (
		best   streamID
		bestAt float64
		found  bool
	)
	for sid, st := range t.streams {
		if !st.lost {
			continue
		}
		if !found || st.lossAt < bestAt || (st.lossAt == bestAt && streamBefore(sid, best)) {
			best, bestAt, found = sid, st.lossAt, true
		}
	}
	if !found {
		return nil
	}
	return &chaos.StreamRef{Src: best.src, Dst: best.dst, Tag: uint64(best.tag)}
}

// reportLocked returns the current run's report with FirstDrop
// materialized from the per-stream loss ledgers. Caller holds t.mu.
func (t *ChaosTransport) reportLocked() chaos.Report {
	rep := t.rep
	rep.FirstDrop = t.firstDropLocked()
	return rep
}

// Send injects faults into one message, or queues it behind an earlier loss
// on its stream (a lossy link still delivers FIFO per stream, so nothing
// may overtake a message awaiting retransmission).
func (t *ChaosTransport) Send(src, dst int, tag Tag, data []float64, arrival float64) {
	if !t.active.Load() {
		t.base.Send(src, dst, tag, data, arrival)
		return
	}
	sid := streamID{src: src, dst: dst, tag: tag}
	t.mu.Lock()
	defer t.mu.Unlock()
	t.rep.Sends++
	st := t.streamLocked(sid)
	if len(st.hold) > 0 {
		st.hold = append(st.hold, heldMsg{data: data, arrival: arrival})
		t.held++
		return
	}
	if minArr, ok := t.transmitLocked(sid, st, data, arrival); !ok {
		st.hold = append(st.hold, heldMsg{data: data, arrival: arrival, minArrival: minArr, attempts: 1})
		t.held++
	}
}

// Recv consumes deliveries from the base, absorbing the positions the fault
// layer marked as injected duplicates so the program sees each message
// exactly once.
func (t *ChaosTransport) Recv(dst, src int, tag Tag) ([]float64, float64, bool) {
	if !t.active.Load() {
		return t.base.Recv(dst, src, tag)
	}
	sid := streamID{src: src, dst: dst, tag: tag}
	for {
		t.mu.Lock()
		st := t.streamLocked(sid)
		pos := st.recv
		st.recv++
		isDup := len(st.dups) > 0 && st.dups[0] == pos
		if isDup {
			st.dups = st.dups[1:]
		}
		t.awaited[sid] = true
		t.mu.Unlock()

		data, arrival, ok := t.base.Recv(dst, src, tag)

		t.mu.Lock()
		delete(t.awaited, sid)
		if ok && isDup {
			t.rep.Absorbed++
		}
		t.mu.Unlock()
		if !ok {
			return nil, 0, false
		}
		if isDup {
			continue // injected duplicate: discard and take the next delivery
		}
		return data, arrival, true
	}
}

// CheckStalled extends the base's deadlock detection with fault recovery:
// a machine stalled while the chaos layer holds undelivered messages is
// stalled on a loss, not deadlocked — the receiver's timeout fires and
// retransmission (with seeded re-rolls and linear backoff) runs until a
// receiver wakes or a retry budget exhausts, which aborts the machine with
// a structured ErrFaultAbort failure. Only with no held messages is a
// confirmed stall a true dependency-cycle deadlock, and the base declares
// it. Recovery runs in canonical (sorted) stream order at a unique
// quiescent state, keeping the fault pattern reproducible under a seed.
func (t *ChaosTransport) CheckStalled() bool {
	if !t.active.Load() {
		return t.base.CheckStalled()
	}
	if t.coord == nil {
		return false
	}
	t.mu.Lock()
	defer t.mu.Unlock()
	for {
		if t.base.Down() {
			return false
		}
		if t.held == 0 {
			return t.base.CheckStalled()
		}
		if !t.probeStalledLocked() {
			return false
		}
		t.rep.RetryRounds++
		woke, fail := t.recoverLocked()
		if fail != nil {
			t.rep.Aborted = true
			f := *fail
			t.rep.Failure = &f
			t.failure = t.failureErrorLocked(f)
			t.base.Abort()
			return true
		}
		if woke {
			return false
		}
		// Nothing woke: flushed messages matched no parked receiver, or
		// every held stream is still down. Re-evaluate — held may have
		// drained to zero (true deadlock check) or the machine may still
		// be stalled on the remaining holds.
	}
}

// failureErrorLocked builds the structured abort error for an exhausted
// retry budget. Caller holds t.mu.
func (t *ChaosTransport) failureErrorLocked(f chaos.StreamRef) error {
	first := ""
	if fd := t.firstDropLocked(); fd != nil && *fd != (chaos.StreamRef{Src: f.Src, Dst: f.Dst, Tag: f.Tag}) {
		first = fmt.Sprintf("; first loss was on %v", *fd)
	}
	return fmt.Errorf("machine: message on %v lost %d times under scenario %q (seed %d), budget of %d retries exhausted%s: %w",
		f, f.Attempts, t.sc.Name, t.sc.Seed, t.sc.MaxRetries, first, ErrFaultAbort)
}

// probeStalledLocked confirms the machine is globally stalled without
// declaring anything. Caller holds t.mu; the base takes its own locks.
func (t *ChaosTransport) probeStalledLocked() bool {
	if p, ok := t.base.(stallProber); ok {
		return p.probeStalled()
	}
	// Weaker fallback for third-party bases: the coordinator's counter
	// check alone (no pending-message cross-check).
	return t.coord.ConfirmStall() > 0
}

// recoverLocked runs one retransmission pass over every stream with held
// messages, in canonical order. For each stream it flushes the hold queue
// until a transmission fails again: a lost head pays the receive timeout
// plus linear backoff on its arrival and is re-rolled against the pair's
// fault stream; messages queued behind it get their ordinary first
// transmission. It reports whether any forwarded message matched a stream a
// receiver is parked on, and the failing stream when a head exceeded the
// retry budget. Caller holds t.mu.
func (t *ChaosTransport) recoverLocked() (woke bool, fail *chaos.StreamRef) {
	ids := make([]streamID, 0, len(t.streams))
	for sid, st := range t.streams {
		if len(st.hold) > 0 {
			ids = append(ids, sid)
		}
	}
	sort.Slice(ids, func(i, j int) bool { return streamBefore(ids[i], ids[j]) })
	for _, sid := range ids {
		st := t.streams[sid]
		for len(st.hold) > 0 {
			h := &st.hold[0]
			if h.attempts > 0 {
				// Lost message: the receiver's timeout fires and the
				// sender retransmits, arriving a timeout (plus backoff
				// per prior retry) later than it would have.
				h.penalty += t.sc.RecvTimeout + float64(h.attempts-1)*t.sc.RetryBackoff
				t.rep.RetryAttempts++
				arrival := h.arrival + h.penalty
				if arrival < h.minArrival {
					arrival = h.minArrival
				}
				minArr, ok := t.transmitLocked(sid, st, h.data, arrival)
				if !ok {
					h.attempts++
					if minArr > h.minArrival {
						h.minArrival = minArr
					}
					if h.attempts > t.sc.MaxRetries {
						return woke, &chaos.StreamRef{Src: sid.src, Dst: sid.dst, Tag: uint64(sid.tag), Attempts: h.attempts}
					}
					break // stream stays blocked this round
				}
				t.rep.Retransmits++
				for len(t.rep.RetryHistogram) <= h.attempts {
					t.rep.RetryHistogram = append(t.rep.RetryHistogram, 0)
				}
				t.rep.RetryHistogram[h.attempts]++
			} else {
				// Queued behind the loss: an ordinary first transmission
				// now that the stream's head has flushed.
				minArr, ok := t.transmitLocked(sid, st, h.data, h.arrival)
				if !ok {
					h.attempts = 1
					h.minArrival = minArr
					break
				}
			}
			st.hold[0] = heldMsg{}
			st.hold = st.hold[1:]
			t.held--
			if t.awaited[sid] {
				woke = true
			}
		}
		if len(st.hold) == 0 {
			st.hold = nil
		}
	}
	return woke, nil
}
