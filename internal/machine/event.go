package machine

// EventKind classifies a trace event.
type EventKind uint8

// Event kinds recorded by the simulator.
const (
	// EvCompute is a span of local computation.
	EvCompute EventKind = iota
	// EvSend is the sender-side overhead span of a message transmission.
	EvSend
	// EvRecv is the receiver-side overhead span of a message reception.
	EvRecv
	// EvIdle is a span during which a processor waited for a message that
	// had not yet arrived.
	EvIdle
	// EvMark is a zero-length user annotation (for example, "step 3
	// begins") used by the figure generators.
	EvMark
)

// String returns a short human-readable name for the event kind.
func (k EventKind) String() string {
	switch k {
	case EvCompute:
		return "compute"
	case EvSend:
		return "send"
	case EvRecv:
		return "recv"
	case EvIdle:
		return "idle"
	case EvMark:
		return "mark"
	default:
		return "unknown"
	}
}

// Event is a single entry in a processor's timeline.
type Event struct {
	// Proc is the rank of the processor the event occurred on.
	Proc int
	// Kind classifies the event.
	Kind EventKind
	// Start and End delimit the event in virtual time. For EvMark they
	// are equal.
	Start, End float64
	// Peer is the other endpoint for EvSend/EvRecv events, -1 otherwise.
	Peer int
	// Bytes is the message size for EvSend/EvRecv events.
	Bytes int
	// Label annotates EvMark events.
	Label string
}

// Sink receives trace events. Record is called from the goroutine of the
// processor named in the event; implementations must either be keyed by
// Event.Proc (each processor touches only its own state) or synchronize
// internally.
type Sink interface {
	Record(Event)
}
