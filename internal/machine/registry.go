package machine

import (
	"fmt"
	"sort"
	"strings"
	"sync"
)

// TransportFactory builds a transport with n processor endpoints federated
// into `nodes` nodes. Transports without a node concept (the shared mailbox
// array) accept nodes <= 1 and reject anything larger; federating transports
// validate that nodes divides n. Factories return errors, never panic: the
// registry is the surface user-facing configuration flows through, and a bad
// node count is a configuration mistake, not a programming one.
type TransportFactory func(n, nodes int) (Transport, error)

var (
	registryMu sync.RWMutex
	registry   = map[string]TransportFactory{}
)

// RegisterTransport adds a named transport constructor to the registry. The
// facade (internal/core), the conformance suite and the benchmark tools all
// resolve transports by these names, so a new transport — a cross-process
// one, say — plugs into every one of them with a single Register call.
// Registering an empty name, a nil factory, or a name twice panics: those
// are programmer errors at package-init time, not runtime conditions.
func RegisterTransport(name string, mk TransportFactory) {
	if name == "" {
		panic("machine: RegisterTransport with empty name")
	}
	if strings.HasPrefix(name, ChaosPrefix) {
		panic(fmt.Sprintf("machine: RegisterTransport(%q): the %q prefix is reserved for chaos-wrapped transports (register the base name; the wrapped variant comes for free)", name, ChaosPrefix))
	}
	if mk == nil {
		panic(fmt.Sprintf("machine: RegisterTransport(%q) with nil factory", name))
	}
	registryMu.Lock()
	defer registryMu.Unlock()
	if _, dup := registry[name]; dup {
		panic(fmt.Sprintf("machine: transport %q registered twice", name))
	}
	registry[name] = mk
}

// NewTransportByName builds the named transport with n endpoints in `nodes`
// nodes. A "chaos:<base>" name builds the base transport and wraps it in a
// ChaosTransport (inactive until SetScenario installs faults). Unknown
// names, malformed chaos: prefixes and invalid (n, nodes) combinations
// return errors naming the registered alternatives.
func NewTransportByName(name string, n, nodes int) (Transport, error) {
	if strings.HasPrefix(name, ChaosPrefix) {
		base := strings.TrimPrefix(name, ChaosPrefix)
		if base == "" {
			return nil, fmt.Errorf("machine: transport %q names no base to wrap: use \"chaos:<base>\" with a registered base (registered: %v)", name, TransportNames())
		}
		if strings.HasPrefix(base, ChaosPrefix) {
			return nil, fmt.Errorf("machine: transport %q nests the %q prefix: the chaos wrapper applies exactly once (registered: %v)", name, ChaosPrefix, TransportNames())
		}
		bt, err := NewTransportByName(base, n, nodes)
		if err != nil {
			return nil, err
		}
		return NewChaosTransport(bt), nil
	}
	registryMu.RLock()
	mk := registry[name]
	registryMu.RUnlock()
	if mk == nil {
		return nil, fmt.Errorf("machine: unknown transport %q (registered: %v)", name, TransportNames())
	}
	return mk(n, nodes)
}

// TransportNames returns the resolvable transport names, sorted: every
// registered base plus its chaos-wrapped "chaos:<base>" variant, so the
// conformance battery (and any registry-driven tooling) exercises the fault
// layer automatically.
func TransportNames() []string {
	registryMu.RLock()
	names := make([]string, 0, 2*len(registry))
	for name := range registry {
		names = append(names, name, ChaosPrefix+name)
	}
	registryMu.RUnlock()
	sort.Strings(names)
	return names
}

func init() {
	RegisterTransport("shared", func(n, nodes int) (Transport, error) {
		if n <= 0 {
			return nil, fmt.Errorf("machine: transport needs a positive endpoint count, got %d", n)
		}
		if nodes > 1 {
			return nil, fmt.Errorf("machine: the shared transport does not federate: %d nodes requested (use the \"federated\" transport)", nodes)
		}
		return NewSharedTransport(n), nil
	})
	RegisterTransport("federated", func(n, nodes int) (Transport, error) {
		if n <= 0 {
			return nil, fmt.Errorf("machine: transport needs a positive endpoint count, got %d", n)
		}
		if nodes <= 0 {
			nodes = 1
		}
		if n%nodes != 0 {
			return nil, fmt.Errorf("machine: a federation of %d processors needs a node count dividing it, got %d", n, nodes)
		}
		return NewFederatedTransport(n, nodes), nil
	})
}
