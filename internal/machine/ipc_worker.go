package machine

import (
	"bufio"
	"encoding/binary"
	"errors"
	"fmt"
	"io"
	"math"
	"net"
	"os"
	"runtime"
	"strconv"
	"sync"
	"sync/atomic"

	"repro/internal/wire"
)

// The IPC transport re-executes the running binary as its worker processes
// (os.Executable with these variables set), so any program that imports this
// package — kfbench, a test binary, a user tool — can host a node daemon
// without a dedicated worker command. The hook below intercepts process
// startup before main (or the test runner) ever runs.
const (
	ipcEnvNet  = "KF_IPC_NET"  // listener network: "unix" or "tcp"
	ipcEnvAddr = "KF_IPC_ADDR" // listener address the worker dials back to (or, on a coordinator, the TCP address to listen on — see SetListenAddr)
	ipcEnvNode = "KF_IPC_NODE" // this worker's node index
	ipcEnvExec = "KF_IPC_EXEC" // non-empty: defer worker entry until EnableWorkerExec (program registrations must run first)
)

func init() { maybeRunIPCWorker() }

// pendingIPCWorker holds a deferred worker entry: an exec-capable
// coordinator spawns its workers with KF_IPC_EXEC set, telling the worker
// process to finish package initialization (program registrations live in
// init functions of packages initialized after this one) before entering
// the daemon loop via EnableWorkerExec.
var pendingIPCWorker *struct {
	node          int
	network, addr string
}

// maybeRunIPCWorker turns the process into an IPC node worker when the
// coordinator's environment variables are present; it never returns in that
// case (with KF_IPC_EXEC set, entry is deferred to EnableWorkerExec, which
// then never returns). A plain process (no KF_IPC_NODE) returns immediately.
func maybeRunIPCWorker() {
	nodeStr, ok := os.LookupEnv(ipcEnvNode)
	if !ok {
		return
	}
	node, err := strconv.Atoi(nodeStr)
	if err != nil {
		fmt.Fprintf(os.Stderr, "kf-ipc-worker: bad %s=%q: %v\n", ipcEnvNode, nodeStr, err)
		os.Exit(1)
	}
	if os.Getenv(ipcEnvExec) != "" {
		pendingIPCWorker = &struct {
			node          int
			network, addr string
		}{node, os.Getenv(ipcEnvNet), os.Getenv(ipcEnvAddr)}
		return
	}
	os.Exit(runIPCWorker(node, os.Getenv(ipcEnvNet), os.Getenv(ipcEnvAddr)))
}

// RankResult is one rank's outcome of a distributed run, as shipped from
// the worker that executed it to the coordinator in a RankResult frame.
// Payload is an opaque record the execution hook composes worker-side and
// its counterpart decodes coordinator-side (the core layer packs output
// values, stats and clocks); ErrClass coarsely classifies Err for
// structured reconstruction across the process boundary (see the
// RankErr* constants) with ErrText carrying the exact message.
type RankResult struct {
	Rank     int
	Payload  []float64
	ErrClass uint64
	ErrText  string
}

// The RankResult error classes.
const (
	RankErrNone     uint64 = 0 // rank finished cleanly
	RankErrGeneric  uint64 = 1 // opaque failure; only the text survives the wire
	RankErrDeadlock uint64 = 2 // error wraps ErrDeadlock (errors.Is must keep holding after reconstruction)
)

// WorkerRun is what the execution hook hands the worker for one distributed
// run: the transport the worker delivers routed frames into (installed
// before the run is acknowledged, so early-routed traffic has a home), and
// Execute, which runs the node's ranks to completion and returns one
// RankResult per local rank.
type WorkerRun interface {
	Transport() *WorkerTransport
	Execute() []RankResult
}

// WorkerHost is the worker's face toward the execution hook while it
// constructs a run from a RunSpec.
type WorkerHost struct {
	w   *ipcWorker
	gen uint64
}

// Node returns the worker's node index.
func (h *WorkerHost) Node() int { return h.w.node }

// NewTransport builds the WorkerTransport for this node's window of an
// n-rank, nnodes-node machine, bound to the worker's socket and the
// current run generation.
func (h *WorkerHost) NewTransport(n, nnodes int) (*WorkerTransport, error) {
	return newWorkerTransport(h.w, h.w.node, n, nnodes, h.gen)
}

// Rebind readies a transport this worker built in an earlier run
// (NewTransport) for the current run generation, so an execution hook can
// hand back a cached sub-machine instead of rebuilding one per run — the
// worker-side half of warm-pool serving: a pooled coordinator System
// keeps its worker processes alive, and rebinding keeps their
// sub-machines warm too. The transport must belong to this worker.
func (h *WorkerHost) Rebind(t *WorkerTransport) error {
	if t == nil || t.host != workerIO(h.w) {
		return fmt.Errorf("machine: Rebind of a transport from another worker")
	}
	t.rebind(h.gen)
	return nil
}

// WorkerExecHook builds a WorkerRun from a coordinator's serialized run
// spec. The hook must install every resource a run needs (transport via
// h.NewTransport, machine, executor) before returning: the worker
// acknowledges the spec the moment the hook returns, and inter-node frames
// may arrive immediately after.
type WorkerExecHook func(h *WorkerHost, spec []byte) (WorkerRun, error)

var (
	workerExecMu   sync.Mutex
	workerExecHook WorkerExecHook
)

// EnableWorkerExec arms worker-side execution: coordinators in this process
// spawn exec-capable workers, and worker processes build runs through hook.
// It must be called at most once, from an init path that runs after every
// RegisterProgram-style registration the hook depends on — in a process
// spawned as an exec worker, EnableWorkerExec enters the daemon loop and
// never returns.
func EnableWorkerExec(hook WorkerExecHook) {
	if hook == nil {
		panic("machine: EnableWorkerExec with nil hook")
	}
	workerExecMu.Lock()
	if workerExecHook != nil {
		workerExecMu.Unlock()
		panic("machine: EnableWorkerExec called twice")
	}
	workerExecHook = hook
	p := pendingIPCWorker
	pendingIPCWorker = nil
	workerExecMu.Unlock()
	if p != nil {
		os.Exit(runIPCWorker(p.node, p.network, p.addr))
	}
}

// WorkerExecEnabled reports whether this process can host (and therefore
// spawn) execution-plane workers.
func WorkerExecEnabled() bool {
	workerExecMu.Lock()
	defer workerExecMu.Unlock()
	return workerExecHook != nil
}

func loadWorkerExecHook() WorkerExecHook {
	workerExecMu.Lock()
	defer workerExecMu.Unlock()
	return workerExecHook
}

// runIPCWorker dials the coordinator and runs the node daemon loop,
// returning the process exit code: 0 for an orderly end (Shutdown frame,
// coordinator EOF, or a write error — both mean the coordinator is gone,
// and a dead coordinator must never leave orphans hanging or stderr
// noise), 1 for a protocol violation, 2 for a FIFO sequence gap.
func runIPCWorker(node int, network, addr string) int {
	conn, err := net.Dial(network, addr)
	if err != nil {
		fmt.Fprintf(os.Stderr, "kf-ipc-worker: node %d: dial %s %s: %v\n", node, network, addr, err)
		return 1
	}
	defer conn.Close()
	w := &ipcWorker{
		node: node,
		br:   bufio.NewReaderSize(conn, 1<<16),
		bw:   bufio.NewWriterSize(conn, 1<<16),
		fch:  make(chan struct{}, 1),
	}
	if err := wire.WriteFrame(w.bw, &w.wscratch, &wire.Frame{Kind: wire.KindHello, Seq: uint64(node)}); err != nil {
		return 1
	}
	if err := w.bw.Flush(); err != nil {
		return 1
	}
	go w.flushLoop()
	return w.loop()
}

// ipcWorker is one node's daemon. With no active run it is a relay: Data
// frames reflect back to the coordinator as Deliver frames (raw byte
// passthrough — only the kind byte changes, so that hot path never decodes
// a payload). With a run active (RunSpec accepted, see the exec protocol
// in ipc.go) it is an execution host: routed Data frames deliver into the
// run's WorkerTransport, the node's ranks execute locally, and their
// inter-node sends leave through sendRemote. Either way it answers the
// control protocol (stall probes, reset fences, shutdown).
//
// Writes are shared between the read loop and the run's rank goroutines,
// so they serialize under wmu and batch through the buffered writer: data
// and result frames stay in the buffer and kick the flusher goroutine,
// which pushes whatever accumulated once it gets the CPU — back-to-back
// sends coalesce into one socket write even from a single goroutine.
// Control frames (acks, hints) flush inline, carrying any batched frames
// ahead of them on the FIFO.
type ipcWorker struct {
	node int
	br   *bufio.Reader
	body []byte // read-loop frame body buffer
	rbuf []byte // read-loop full-decode buffer

	wmu      sync.Mutex
	bw       *bufio.Writer
	wscratch []byte // frame encode buffer, under wmu
	txData   uint64 // Data/Deliver frames written since the last reset fence, under wmu
	dirty    bool   // unflushed frames in bw, under wmu
	fch      chan struct{}
	pend     []pendBatch // per-destination-node queued sends, under wmu (index = node)

	rxData uint64 // Data frames received since the last reset fence (read loop only)
	barGen uint64 // relay mode: latest host-barrier generation announced

	// Exec-mode run state, owned by the read loop.
	active     *WorkerTransport
	runner     WorkerRun
	activeGen  uint64
	runStarted bool // spec accepted; executeRun is (or was) in flight
	runDone    chan struct{}
	finished   atomic.Bool // all local ranks done; results written or being written
}

// errFencedBySpec is the fixed reason an in-flight run is unwound when a
// new run spec arrives (hoisted: it is on the per-run warm path).
var errFencedBySpec = errors.New("machine: ipc run fenced by new run spec")

// pendBatch accumulates one destination node's queued inter-node sends
// between flush points. Each message contributes five header words — src,
// dst, tag, arrival, payload word count; all but arrival are bit
// containers in the PackBytes sense — followed by its payload words. The
// batch leaves as a single Data frame: Src/Dst carry the first message's
// ranks (the coordinator routes on Dst and sanity-checks Src against the
// sending node), B the message count, Tag the summed payload bytes so the
// coordinator's per-link traffic accounting stays message-exact without
// walking the payload.
type pendBatch struct {
	words    []float64
	msgs     uint64
	bytes    uint64
	gen      uint64
	src, dst int32
}

// maxDataBatchWords bounds one batch frame's payload; a fuller batch is
// encoded early. One oversized message still fits in its own frame (the
// wire codec allows 1<<24 words).
const maxDataBatchWords = 1 << 20

func (w *ipcWorker) fail(code int, format string, args ...any) int {
	fmt.Fprintf(os.Stderr, "kf-ipc-worker: node %d: %s\n", w.node, fmt.Sprintf(format, args...))
	return code
}

// writeBatched writes one frame under wmu without flushing; the kicked
// flusher goroutine coalesces the burst into one socket write. Pending
// sends encode first so the frame (a result record) never overtakes the
// run's own data on the FIFO.
func (w *ipcWorker) writeBatched(f *wire.Frame) error {
	w.wmu.Lock()
	w.encodePendingLocked()
	err := wire.WriteFrame(w.bw, &w.wscratch, f)
	w.dirty = true
	w.kick()
	w.wmu.Unlock()
	return err
}

// kick schedules a flush (single-slot, never blocks, never loses a wakeup:
// the kick follows the frame into the buffer). Callers hold wmu.
func (w *ipcWorker) kick() {
	select {
	case w.fch <- struct{}{}:
	default:
	}
}

// flushLoop drains flush kicks for the worker's socket. Flush errors are
// swallowed for the same reason sendRemote swallows them: a dead socket
// means the coordinator is gone and the read loop is about to exit.
func (w *ipcWorker) flushLoop() {
	for range w.fch {
		// Step to the back of the run queue once before draining: the
		// kick usually comes from the first rank of a burst, and the
		// yield lets the node's remaining runnable ranks add their sends
		// so the whole burst leaves as one batch in one socket write.
		runtime.Gosched()
		w.wmu.Lock()
		w.encodePendingLocked()
		if w.dirty {
			w.dirty = false
			w.bw.Flush()
		}
		w.wmu.Unlock()
	}
}

// writeControl writes one frame and flushes immediately (acks, hints,
// results-complete boundaries — anything the coordinator blocks on).
// Pending sends encode first: a barrier announcement or stall hint must
// ride behind every message this node emitted before it.
func (w *ipcWorker) writeControl(f *wire.Frame) error {
	w.wmu.Lock()
	w.encodePendingLocked()
	err := wire.WriteFrame(w.bw, &w.wscratch, f)
	if err == nil {
		err = w.bw.Flush()
		w.dirty = false
	}
	w.wmu.Unlock()
	return err
}

// flushIfIdle flushes the write buffer only when no further input is already
// buffered, so a burst of reflected Data frames leaves in one socket write
// but the last frame of a burst is never left sitting in the buffer.
func (w *ipcWorker) flushIfIdle() error {
	if w.br.Buffered() != 0 {
		return nil
	}
	w.wmu.Lock()
	defer w.wmu.Unlock()
	w.encodePendingLocked()
	w.dirty = false
	return w.bw.Flush()
}

// sendRemote implements workerIO: one local rank's inter-node send joins
// the destination node's pending batch under wmu (so the per-socket FIFO
// carries each (src, tag) stream in program order) and kicks the flusher,
// which turns each pending batch into a single multi-message Data frame.
// A burst of fine-grained sends to one neighbor node thus costs one frame
// and one socket write instead of one per message. Write errors on the
// eventual encode are deliberately swallowed: they mean the coordinator
// is gone and the read loop is about to hit the same broken socket.
func (w *ipcWorker) sendRemote(gen uint64, src, dst, dstNode int, tag Tag, data []float64, arrival float64) {
	w.wmu.Lock()
	if dstNode >= len(w.pend) {
		w.pend = append(w.pend, make([]pendBatch, dstNode+1-len(w.pend))...)
	}
	b := &w.pend[dstNode]
	if b.msgs > 0 && len(b.words)+5+len(data) > maxDataBatchWords {
		w.encodeBatchLocked(b)
	}
	if b.msgs == 0 {
		b.gen, b.src, b.dst = gen, int32(src), int32(dst)
	}
	b.words = append(b.words,
		math.Float64frombits(uint64(src)),
		math.Float64frombits(uint64(dst)),
		math.Float64frombits(uint64(tag)),
		arrival,
		math.Float64frombits(uint64(len(data))))
	b.words = append(b.words, data...)
	b.msgs++
	b.bytes += uint64(len(data) * wordBytes)
	w.kick()
	w.wmu.Unlock()
}

// encodeBatchLocked turns one pending batch into a Data frame in the write
// buffer and rearms it. Callers hold wmu.
func (w *ipcWorker) encodeBatchLocked(b *pendBatch) {
	w.txData++
	f := wire.Frame{
		Kind:    wire.KindData,
		Src:     b.src,
		Dst:     b.dst,
		Tag:     b.bytes,
		Seq:     w.txData,
		A:       b.gen,
		B:       b.msgs,
		Payload: b.words,
	}
	_ = wire.WriteFrame(w.bw, &w.wscratch, &f)
	w.dirty = true
	b.words = b.words[:0]
	b.msgs, b.bytes = 0, 0
}

// encodePendingLocked drains every pending batch into the write buffer —
// the step every flush point takes first, so queued sends always precede
// whatever control frame or flush triggered it on the FIFO. Callers hold
// wmu.
func (w *ipcWorker) encodePendingLocked() {
	for i := range w.pend {
		if b := &w.pend[i]; b.msgs > 0 {
			w.encodeBatchLocked(b)
		}
	}
}

// clearPendingLocked drops queued sends (reset and spec fences: the run
// they belong to is being unwound and its traffic must not leak into the
// next epoch's counters). Callers hold wmu.
func (w *ipcWorker) clearPendingLocked() {
	for i := range w.pend {
		b := &w.pend[i]
		b.words = b.words[:0]
		b.msgs, b.bytes = 0, 0
	}
}

// sendStallHint implements workerIO: report local quiescence. The flush
// pushes out any batched Data frames first (same buffer, FIFO), so the
// coordinator's probe sees counters consistent with everything this node
// has sent.
func (w *ipcWorker) sendStallHint(gen uint64) {
	_ = w.writeControl(&wire.Frame{Kind: wire.KindStallHint, Src: int32(w.node), Seq: gen})
}

// sendBarrierArrive implements workerIO: every local rank reached
// host-barrier generation barGen.
func (w *ipcWorker) sendBarrierArrive(gen, barGen uint64) {
	_ = w.writeControl(&wire.Frame{Kind: wire.KindBarrier, Src: int32(w.node), Seq: barGen, A: gen})
}

// maxResultBatchWords bounds one result frame's payload so a node with
// huge per-rank records splits into several frames well short of the wire
// codec's MaxPayloadWords guard.
const maxResultBatchWords = 1 << 20

// executeRun drives one distributed run to completion off the read loop:
// run the node's ranks, then ship the results and flush. All local ranks'
// records pack into one RankResult frame (split only past
// maxResultBatchWords), so a node's results cost one encode and one decode
// instead of one frame per rank. Record layout: four header words — rank,
// error class, error byte length, payload word count, each a bit container
// in the PackBytes sense — then the payload words, then the packed error
// text. Closing done lets a reset fence join in-flight runs.
func (w *ipcWorker) executeRun(run WorkerRun, gen uint64, done chan struct{}) {
	defer close(done)
	results := run.Execute()
	w.finished.Store(true)
	var words []float64
	var count uint64
	ship := func() error {
		if count == 0 {
			return nil
		}
		f := wire.Frame{Kind: wire.KindRankResult, Src: int32(w.node), Seq: gen, A: count, Payload: words}
		err := w.writeBatched(&f)
		words, count = nil, 0
		return err
	}
	for i := range results {
		r := &results[i]
		var errWords []float64
		if r.ErrText != "" {
			errWords = wire.PackBytes([]byte(r.ErrText))
		}
		if len(words) > 0 && len(words)+4+len(r.Payload)+len(errWords) > maxResultBatchWords {
			if err := ship(); err != nil {
				return
			}
		}
		words = append(words,
			math.Float64frombits(uint64(r.Rank)),
			math.Float64frombits(r.ErrClass),
			math.Float64frombits(uint64(len(r.ErrText))),
			math.Float64frombits(uint64(len(r.Payload))))
		words = append(words, r.Payload...)
		words = append(words, errWords...)
		count++
	}
	if err := ship(); err != nil {
		return
	}
	w.wmu.Lock()
	w.encodePendingLocked()
	w.bw.Flush()
	w.dirty = false
	w.wmu.Unlock()
}

// endRun aborts and joins the active run (reset fence, shutdown): take the
// transport down with the given reason, wait for every local rank to unwind
// and the result stream to complete. Any frames the dying run wrote reach
// the socket before whatever the caller writes next.
func (w *ipcWorker) endRun(reason error) {
	if w.active == nil {
		return
	}
	w.active.hostDown(reason)
	if w.runStarted {
		// Only a started run has an executeRun goroutine to join; a spec
		// that was accepted but never started (another node rejected it)
		// is simply discarded.
		<-w.runDone
	}
	w.active, w.runner, w.runDone, w.runStarted = nil, nil, nil, false
}

func (w *ipcWorker) loop() int {
	var prefix [4]byte
	for {
		if _, err := io.ReadFull(w.br, prefix[:]); err != nil {
			// EOF, connection reset, or any other socket-level failure: the
			// coordinator is gone. Exit quietly — don't linger as an orphan.
			return 0
		}
		n := binary.LittleEndian.Uint32(prefix[:])
		if n < wire.HeaderLen || n > wire.MaxBody {
			return w.fail(1, "frame body of %d bytes out of range", n)
		}
		if cap(w.body) < int(n) {
			w.body = make([]byte, n)
		}
		body := w.body[:n]
		if _, err := io.ReadFull(w.br, body); err != nil {
			return 0 // socket died mid-frame: coordinator is gone
		}
		kind := wire.Kind(body[0])
		switch kind {
		case wire.KindData:
			seq := binary.LittleEndian.Uint64(body[17:25])
			if seq != w.rxData+1 {
				return w.fail(2, "FIFO gap: data frame seq %d after %d", seq, w.rxData)
			}
			w.rxData++
			if w.active != nil {
				// Exec mode: a routed multi-message Data frame holding
				// another node's batched inter-node sends (B messages; see
				// pendBatch for the record layout). Decode once, then peel
				// each message into its own pooled buffer and make the
				// mailbox delivery every intra-node send uses.
				var f wire.Frame
				if err := w.decode(prefix[:], body, &f, w.active.acquire); err != nil {
					return w.fail(1, "routed data: %v", err)
				}
				p := f.Payload
				for m := uint64(0); m < f.B; m++ {
					if len(p) < 5 {
						return w.fail(1, "routed data batch truncated")
					}
					src := int(int64(math.Float64bits(p[0])))
					dst := int(int64(math.Float64bits(p[1])))
					tag := Tag(math.Float64bits(p[2]))
					arrival := p[3]
					plen := math.Float64bits(p[4])
					if plen > uint64(len(p)-5) {
						return w.fail(1, "routed data message overruns batch")
					}
					data := w.active.acquire(int(plen))
					copy(data, p[5:5+plen])
					if err := w.active.deliverRemote(src, dst, tag, data, arrival); err != nil {
						return w.fail(1, "%v", err)
					}
					p = p[5+plen:]
				}
				w.active.release(f.Payload)
				break
			}
			// Relay mode hot path: flip the kind byte and reflect the
			// identical bytes back.
			body[0] = byte(wire.KindDeliver)
			w.wmu.Lock()
			_, err1 := w.bw.Write(prefix[:])
			_, err2 := w.bw.Write(body)
			w.txData++
			w.dirty = true
			w.wmu.Unlock()
			if err1 != nil || err2 != nil {
				return 0 // write failed: coordinator is gone
			}
			if err := w.flushIfIdle(); err != nil {
				return 0
			}
		case wire.KindProbe:
			var f wire.Frame
			if err := w.decode(prefix[:], body, &f, nil); err != nil {
				return w.fail(1, "probe: %v", err)
			}
			var flags uint64
			if w.active != nil {
				if w.finished.Load() {
					flags |= probeFinished
				} else if w.active.stallStatus() {
					flags |= probeStalled
				}
			}
			w.wmu.Lock()
			// Queued sends encode first so the counters the ack reports are
			// settled: a probe that lands between a rank's send and the
			// flusher's pass must not see "quiescent" with messages still
			// waiting in a pending batch. txData is read under wmu.
			w.encodePendingLocked()
			ack := wire.Frame{Kind: wire.KindProbeAck, Src: int32(w.node), Seq: f.Seq, A: w.rxData, B: w.txData, Tag: flags}
			err := wire.WriteFrame(w.bw, &w.wscratch, &ack)
			if err == nil {
				err = w.bw.Flush()
				w.dirty = false
			}
			w.wmu.Unlock()
			if err != nil {
				return 0
			}
		case wire.KindReset:
			var f wire.Frame
			if err := w.decode(prefix[:], body, &f, nil); err != nil {
				return w.fail(1, "reset: %v", err)
			}
			// A fence joins any in-flight run first: its ranks unwind, its
			// last frames reach the socket, and only then do the counters
			// rewind and the ack release the coordinator.
			w.endRun(fmt.Errorf("machine: ipc run fenced by coordinator reset"))
			w.finished.Store(false)
			seen := w.rxData
			w.rxData = 0
			ack := wire.Frame{Kind: wire.KindResetAck, Src: int32(w.node), Seq: f.Seq, A: seen}
			w.wmu.Lock()
			w.clearPendingLocked()
			w.txData = 0
			err := wire.WriteFrame(w.bw, &w.wscratch, &ack)
			if err == nil {
				err = w.bw.Flush()
				w.dirty = false
			}
			w.wmu.Unlock()
			if err != nil {
				return 0
			}
		case wire.KindBarrier:
			var f wire.Frame
			if err := w.decode(prefix[:], body, &f, nil); err != nil {
				return w.fail(1, "barrier: %v", err)
			}
			if w.active != nil {
				w.active.releaseBarrier(f.Seq)
			} else {
				w.barGen = f.Seq
			}
		case wire.KindAbort:
			// Exec mode: the coordinator's verdict on the active run —
			// Seq 1 is a declared distributed stall (ranks unwind with the
			// deadlock cause), anything else a generic abort. The run is
			// not joined here: its ranks unwind concurrently and the
			// results still stream back. Relay mode: the abort is between
			// the coordinator's ranks; the daemon just keeps relaying.
			var f wire.Frame
			if err := w.decode(prefix[:], body, &f, nil); err != nil {
				return w.fail(1, "abort: %v", err)
			}
			if w.active != nil {
				if f.Seq == abortStallDeclared {
					w.active.declareStall()
				} else {
					w.active.hostDown(fmt.Errorf("machine: ipc run aborted by coordinator"))
				}
			}
		case wire.KindRunSpec:
			var f wire.Frame
			if err := w.decode(prefix[:], body, &f, nil); err != nil {
				return w.fail(1, "run spec: %v", err)
			}
			// The spec doubles as the fence for back-to-back runs (the
			// coordinator skips the Reset exchange when the previous run
			// completed cleanly): join any prior run and rewind the frame
			// counters exactly here — everything earlier in the FIFO was
			// counted in the old epoch on both sides, so the cuts align
			// with the coordinator's pre-broadcast rewind.
			w.endRun(errFencedBySpec)
			w.finished.Store(false)
			w.rxData = 0
			w.wmu.Lock()
			w.clearPendingLocked()
			w.txData = 0
			w.wmu.Unlock()
			spec, err := wire.UnpackBytes(f.Payload, int(f.A))
			if err == nil {
				if hook := loadWorkerExecHook(); hook == nil {
					err = fmt.Errorf("worker binary is not armed for execution (EnableWorkerExec never ran)")
				} else {
					var run WorkerRun
					run, err = hook(&WorkerHost{w: w, gen: f.Seq}, spec)
					if err == nil && (run == nil || run.Transport() == nil) {
						err = fmt.Errorf("execution hook returned no transport")
					}
					if err == nil {
						// Install, then execute straight away: the spec is
						// also the start signal (the coordinator broadcasts
						// it under every socket's write lock, so any Data
						// frame another node's ranks emit is routed behind
						// this node's spec on the FIFO and finds the
						// mailboxes ready). Success is never acked — the
						// first RankResult says it all.
						w.active, w.runner, w.activeGen = run.Transport(), run, f.Seq
						w.finished.Store(false)
						w.runDone = make(chan struct{})
						w.runStarted = true
						go w.executeRun(w.runner, w.activeGen, w.runDone)
						break
					}
				}
			}
			text := err.Error()
			ack := wire.Frame{Kind: wire.KindRunAck, Src: int32(w.node), Seq: f.Seq,
				A: 1, B: uint64(len(text)), Payload: wire.PackBytes([]byte(text))}
			if werr := w.writeControl(&ack); werr != nil {
				return 0
			}
		case wire.KindShutdown:
			return 0
		default:
			return w.fail(1, "unexpected %v frame", kind)
		}
	}
}

// decode re-assembles the already-read prefix and body into a full decode
// for control frames and routed Data (the relay hot path never pays for
// this).
func (w *ipcWorker) decode(prefix, body []byte, f *wire.Frame, acquire func(n int) []float64) error {
	w.rbuf = append(append(w.rbuf[:0], prefix...), body...)
	_, err := wire.DecodeFrame(w.rbuf, f, acquire)
	return err
}
