package machine

import (
	"bufio"
	"encoding/binary"
	"fmt"
	"io"
	"net"
	"os"
	"strconv"

	"repro/internal/wire"
)

// The IPC transport re-executes the running binary as its worker processes
// (os.Executable with these variables set), so any program that imports this
// package — kfbench, a test binary, a user tool — can host a node daemon
// without a dedicated worker command. The hook below intercepts process
// startup before main (or the test runner) ever runs.
const (
	ipcEnvNet  = "KF_IPC_NET"  // listener network: "unix" or "tcp"
	ipcEnvAddr = "KF_IPC_ADDR" // listener address the worker dials back to
	ipcEnvNode = "KF_IPC_NODE" // this worker's node index
)

func init() { maybeRunIPCWorker() }

// maybeRunIPCWorker turns the process into an IPC node worker when the
// coordinator's environment variables are present; it never returns in that
// case. A plain process (no KF_IPC_NODE) returns immediately.
func maybeRunIPCWorker() {
	nodeStr, ok := os.LookupEnv(ipcEnvNode)
	if !ok {
		return
	}
	node, err := strconv.Atoi(nodeStr)
	if err != nil {
		fmt.Fprintf(os.Stderr, "kf-ipc-worker: bad %s=%q: %v\n", ipcEnvNode, nodeStr, err)
		os.Exit(1)
	}
	os.Exit(runIPCWorker(node, os.Getenv(ipcEnvNet), os.Getenv(ipcEnvAddr)))
}

// runIPCWorker dials the coordinator and runs the node daemon loop,
// returning the process exit code: 0 for an orderly end (Shutdown frame,
// coordinator EOF, or a write error — both mean the coordinator is gone,
// and a dead coordinator must never leave orphans hanging or stderr
// noise), 1 for a protocol violation, 2 for a FIFO sequence gap.
func runIPCWorker(node int, network, addr string) int {
	conn, err := net.Dial(network, addr)
	if err != nil {
		fmt.Fprintf(os.Stderr, "kf-ipc-worker: node %d: dial %s %s: %v\n", node, network, addr, err)
		return 1
	}
	defer conn.Close()
	w := &ipcWorker{
		node: node,
		br:   bufio.NewReaderSize(conn, 1<<16),
		bw:   bufio.NewWriterSize(conn, 1<<16),
	}
	if err := wire.WriteFrame(w.bw, &w.wscratch, &wire.Frame{Kind: wire.KindHello, Seq: uint64(node)}); err != nil {
		return 1
	}
	if err := w.bw.Flush(); err != nil {
		return 1
	}
	return w.loop()
}

// ipcWorker is one node's network daemon: it reflects Data frames back to
// the coordinator as Deliver frames (raw byte passthrough — only the kind
// byte changes, so the hot path never decodes a payload) and answers the
// control protocol (stall probes, reset fences, shutdown).
type ipcWorker struct {
	node     int
	br       *bufio.Reader
	bw       *bufio.Writer
	body     []byte // reused frame body buffer
	wscratch []byte // reused control-frame encode buffer

	recvSeq uint64 // Data frames received since the last reset fence
	fwdSeq  uint64 // Deliver frames written back since the last reset fence
	barGen  uint64 // latest host-barrier generation announced
}

func (w *ipcWorker) fail(code int, format string, args ...any) int {
	fmt.Fprintf(os.Stderr, "kf-ipc-worker: node %d: %s\n", w.node, fmt.Sprintf(format, args...))
	return code
}

// flushIfIdle flushes the write buffer only when no further input is already
// buffered, so a burst of Data frames is reflected in one socket write but
// the last frame of a burst is never left sitting in the buffer.
func (w *ipcWorker) flushIfIdle() error {
	if w.br.Buffered() == 0 {
		return w.bw.Flush()
	}
	return nil
}

func (w *ipcWorker) loop() int {
	var prefix [4]byte
	for {
		if _, err := io.ReadFull(w.br, prefix[:]); err != nil {
			// EOF, connection reset, or any other socket-level failure: the
			// coordinator is gone. Exit quietly — don't linger as an orphan.
			return 0
		}
		n := binary.LittleEndian.Uint32(prefix[:])
		if n < wire.HeaderLen || n > wire.MaxBody {
			return w.fail(1, "frame body of %d bytes out of range", n)
		}
		if cap(w.body) < int(n) {
			w.body = make([]byte, n)
		}
		body := w.body[:n]
		if _, err := io.ReadFull(w.br, body); err != nil {
			return 0 // socket died mid-frame: coordinator is gone
		}
		kind := wire.Kind(body[0])
		switch kind {
		case wire.KindData:
			// Hot path: verify the per-socket FIFO sequence, flip the kind
			// byte, and reflect the identical bytes back.
			seq := binary.LittleEndian.Uint64(body[17:25])
			if seq != w.recvSeq+1 {
				return w.fail(2, "FIFO gap: data frame seq %d after %d", seq, w.recvSeq)
			}
			w.recvSeq++
			body[0] = byte(wire.KindDeliver)
			if _, err := w.bw.Write(prefix[:]); err != nil {
				return 0 // write failed: coordinator is gone
			}
			if _, err := w.bw.Write(body); err != nil {
				return 0
			}
			w.fwdSeq++
			if err := w.flushIfIdle(); err != nil {
				return 0
			}
		case wire.KindProbe:
			var f wire.Frame
			if err := w.decode(prefix[:], body, &f); err != nil {
				return w.fail(1, "probe: %v", err)
			}
			ack := wire.Frame{Kind: wire.KindProbeAck, Src: int32(w.node), Seq: f.Seq, A: w.recvSeq, B: w.fwdSeq}
			if err := wire.WriteFrame(w.bw, &w.wscratch, &ack); err != nil {
				return 0
			}
			if err := w.bw.Flush(); err != nil {
				return 0
			}
		case wire.KindReset:
			var f wire.Frame
			if err := w.decode(prefix[:], body, &f); err != nil {
				return w.fail(1, "reset: %v", err)
			}
			seen := w.recvSeq
			w.recvSeq, w.fwdSeq = 0, 0
			ack := wire.Frame{Kind: wire.KindResetAck, Src: int32(w.node), Seq: f.Seq, A: seen}
			if err := wire.WriteFrame(w.bw, &w.wscratch, &ack); err != nil {
				return 0
			}
			if err := w.bw.Flush(); err != nil {
				return 0
			}
		case wire.KindBarrier:
			var f wire.Frame
			if err := w.decode(prefix[:], body, &f); err != nil {
				return w.fail(1, "barrier: %v", err)
			}
			w.barGen = f.Seq
		case wire.KindAbort:
			// The abort is between the coordinator's ranks; the daemon just
			// keeps relaying whatever still drains (then sees Reset or EOF).
		case wire.KindShutdown:
			return 0
		default:
			return w.fail(1, "unexpected %v frame", kind)
		}
	}
}

// decode re-assembles the already-read prefix and body into a full decode
// for control frames (the Data hot path never pays for this).
func (w *ipcWorker) decode(prefix, body []byte, f *wire.Frame) error {
	buf := append(append(w.wscratch[:0], prefix...), body...)
	_, err := wire.DecodeFrame(buf, f, nil)
	w.wscratch = buf
	return err
}
