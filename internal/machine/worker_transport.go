package machine

import (
	"fmt"
	"sync"
	"sync/atomic"
)

// workerIO is the WorkerTransport's face toward the IPC worker hosting it:
// the three frame emissions a worker-local run needs. sendRemote queues an
// inter-node send for the destination node dstNode — the worker batches
// queued sends per destination into multi-message Data frames at its next
// flush point, appending under its write lock so each (src, tag) stream
// keeps program order on the wire; sendStallHint tells the coordinator
// this node's live ranks are all blocked (the distributed probe's
// trigger); sendBarrierArrive announces that every local rank reached
// host-barrier generation barGen. All three stamp gen, the run
// generation, so the coordinator can discard stragglers from an aborted
// run.
type workerIO interface {
	sendRemote(gen uint64, src, dst, dstNode int, tag Tag, data []float64, arrival float64)
	sendStallHint(gen uint64)
	sendBarrierArrive(gen, barGen uint64)
}

// WorkerTransport is the transport a worker-hosted sub-machine runs on: the
// execution-plane half of the IPC transport. The machine above it owns the
// full rank space [0, n) but executes only this node's window [lo, hi) (see
// localRanker); intra-node sends go straight to the local mailbox array —
// the same 0-alloc fast path as SharedTransport, no wire, no syscall — and
// only sends whose destination lives on another node become frames on the
// worker's coordinator socket. Deliveries arrive from the worker's read
// loop (the coordinator routes each inter-node frame to the destination
// node) into the same mailboxes.
//
// A WorkerTransport serves one run at a time: built fresh via
// WorkerHost.NewTransport, or rebound to a new run generation
// (WorkerHost.Rebind) when the execution hook reuses a cached
// sub-machine. Reset is a no-op either way — the machine's unconditional
// start-of-run Reset must not discard inter-node frames the coordinator
// routed ahead of the run-start signal; the between-runs rewind happens
// in rebind, before the worker acknowledges the spec. Stall handling is
// split: the local
// quiescence triggers (executor quiescence, blocked-count crossings) call
// CheckStalled here, which never declares anything — a single node cannot
// distinguish "deadlocked" from "waiting on a frame another node has yet
// to send" — but reports the local stall to the coordinator as a
// StallHint frame. The coordinator's two-phase probe establishes the
// global quiescent cut and broadcasts the verdict back, which lands here
// as declareStall (unwinding blocked ranks with the exact deadlock cause
// the single-process transports produce) or hostDown with a reason.
type WorkerTransport struct {
	n       int // global rank-space size
	nnodes  int
	perNode int
	node    int
	lo, hi  int    // this node's rank window
	gen     uint64 // run generation, fixed at construction
	boxes   []mailbox
	coord   Coordinator
	pool    bufPool
	recheck stallRechecker
	host    workerIO
	down    atomic.Bool

	reasonMu sync.Mutex
	reason   error

	// Host-barrier state. Local arrivals count under bmu; when the whole
	// window has arrived the generation is announced to the coordinator,
	// and the waiters park until the coordinator (having heard the same
	// from every node) releases the generation via releaseBarrier.
	bmu      sync.Mutex
	bcond    *sync.Cond
	arrived  int
	localGen uint64 // generations fully arrived locally (announced)
	released uint64 // generations released by the coordinator
	waiters  []int  // ranks parked through a Parker on the current generation
}

// newWorkerTransport wires a transport for one node's window of an n-rank,
// nnodes-node machine at the given run generation.
func newWorkerTransport(host workerIO, node, n, nnodes int, gen uint64) (*WorkerTransport, error) {
	if n <= 0 || nnodes <= 0 || n%nnodes != 0 {
		return nil, fmt.Errorf("machine: worker transport of %d processors needs a positive node count dividing it, got %d", n, nnodes)
	}
	if node < 0 || node >= nnodes {
		return nil, fmt.Errorf("machine: worker transport node %d out of range [0, %d)", node, nnodes)
	}
	perNode := n / nnodes
	t := &WorkerTransport{
		n:       n,
		nnodes:  nnodes,
		perNode: perNode,
		node:    node,
		lo:      node * perNode,
		hi:      (node + 1) * perNode,
		gen:     gen,
		boxes:   make([]mailbox, perNode),
		host:    host,
	}
	for i := range t.boxes {
		mb := &t.boxes[i]
		mb.cond = sync.NewCond(&mb.mu)
		mb.queues = make(map[msgKey][]message)
	}
	t.bcond = sync.NewCond(&t.bmu)
	return t, nil
}

// Size returns the global rank-space size (not the local window): ranks on
// other nodes are legal message endpoints.
func (t *WorkerTransport) Size() int { return t.n }

// LocalRanks returns the window of ranks executing on this node; see
// localRanker.
func (t *WorkerTransport) LocalRanks() (lo, hi int) { return t.lo, t.hi }

// Bind installs the sub-machine's coordinator and picks up its buffer pool
// and stall-recheck capabilities.
func (t *WorkerTransport) Bind(c Coordinator) {
	t.coord = c
	t.pool, _ = c.(bufPool)
	t.recheck, _ = c.(stallRechecker)
}

// Down reports whether the transport has been taken down (coordinator
// verdict, abort, or worker-side failure).
func (t *WorkerTransport) Down() bool { return t.down.Load() }

// DownReason returns the structured cause of the down state, or nil — nil
// after a declared distributed stall, so blocked receivers unwind with
// exactly the ErrDeadlock cause the single-process transports produce.
func (t *WorkerTransport) DownReason() error {
	t.reasonMu.Lock()
	defer t.reasonMu.Unlock()
	return t.reason
}

// MessageTime prices a message by the node pair it crosses, identically to
// IPCTransport and FederatedTransport — the workers must price with the
// same table as the coordinator-resident transports or virtual times would
// diverge across execution modes.
func (t *WorkerTransport) MessageTime(cost CostModel, src, dst, b int) float64 {
	return cost.LinkMessageTime(src/t.perNode, dst/t.perNode, b)
}

// acquire supplies payload buffers for decoded Data frames from the
// sub-machine's pool when bound.
func (t *WorkerTransport) acquire(n int) []float64 {
	if t.pool != nil {
		return t.pool.acquirePooled(n)
	}
	return make([]float64, n)
}

// release recycles a buffer acquire supplied once its contents have been
// copied out (the batch container of a multi-message Data frame; the
// per-message buffers are owned by the mailboxes they are delivered to).
func (t *WorkerTransport) release(buf []float64) {
	if t.pool != nil && buf != nil {
		t.pool.releasePooled(buf)
	}
}

// deliverLocal places a message in a local rank's mailbox and wakes the
// owner if it waits on exactly this stream — SharedTransport's delivery
// step over the windowed mailbox array.
func (t *WorkerTransport) deliverLocal(src, dst int, tag Tag, data []float64, arrival float64) {
	mb := &t.boxes[dst-t.lo]
	k := msgKey{src: src, tag: tag}
	mb.mu.Lock()
	mb.putLocked(k, message{data: data, arrival: arrival})
	if mb.waiting && mb.await == k {
		if pk := parkerOf(t.coord); pk != nil {
			pk.Wake(dst)
		} else {
			mb.cond.Signal()
		}
	}
	mb.mu.Unlock()
}

// deliverRemote completes an inter-node crossing: the worker's read loop
// hands over a routed Data frame's fields. It errors on a destination
// outside this node's window — the coordinator misrouted, which the worker
// treats as a protocol failure.
func (t *WorkerTransport) deliverRemote(src, dst int, tag Tag, data []float64, arrival float64) error {
	if dst < t.lo || dst >= t.hi {
		return fmt.Errorf("machine: routed frame for rank %d outside node %d's window [%d, %d)", dst, t.node, t.lo, t.hi)
	}
	t.deliverLocal(src, dst, tag, data, arrival)
	if t.recheck != nil {
		// A delivery that wakes no rank must still re-run the local stall
		// decision: the hint that armed the coordinator's probe predates
		// this frame, and if the node is still stalled with it consumed,
		// only a fresh hint keeps the probe live.
		t.recheck.RecheckStall()
	}
	return nil
}

// Send routes a message: intra-node to the mailbox fast path, inter-node
// onto the worker's coordinator socket as a Data frame. The sender's
// payload buffer is recycled through the pool once encoded, exactly
// balancing the buffers the read loop acquires for deliveries.
func (t *WorkerTransport) Send(src, dst int, tag Tag, data []float64, arrival float64) {
	if dst/t.perNode == t.node {
		t.deliverLocal(src, dst, tag, data, arrival)
		return
	}
	t.host.sendRemote(t.gen, src, dst, dst/t.perNode, tag, data, arrival)
	if t.pool != nil && data != nil {
		t.pool.releasePooled(data)
	}
}

// Recv blocks the calling endpoint until a message matching (src, tag) is
// available; identical protocol to SharedTransport.Recv.
func (t *WorkerTransport) Recv(dst, src int, tag Tag) ([]float64, float64, bool) {
	mb := &t.boxes[dst-t.lo]
	k := msgKey{src: src, tag: tag}
	mb.mu.Lock()
	if msg, ok := mb.takeLocked(k); ok {
		mb.mu.Unlock()
		return msg.data, msg.arrival, true
	}
	if t.down.Load() {
		mb.mu.Unlock()
		return nil, 0, false
	}
	mb.await = k
	mb.waiting = true
	mb.mu.Unlock()

	if t.coord != nil {
		t.coord.Blocked()
	}

	pk := parkerOf(t.coord)
	mb.mu.Lock()
	for {
		if msg, ok := mb.takeLocked(k); ok {
			mb.waiting = false
			mb.mu.Unlock()
			if t.coord != nil {
				t.coord.Unblocked()
			}
			return msg.data, msg.arrival, true
		}
		if t.down.Load() {
			mb.waiting = false
			mb.mu.Unlock()
			if t.coord != nil {
				t.coord.Unblocked()
			}
			return nil, 0, false
		}
		if pk != nil {
			mb.mu.Unlock()
			pk.Park(dst)
			mb.mu.Lock()
		} else {
			mb.cond.Wait()
		}
	}
}

// Barrier blocks the calling local rank until every rank of the whole
// machine — across all nodes — has entered the same generation. Local
// arrivals count under bmu; the last one announces the generation to the
// coordinator, which releases it (releaseBarrier) once every node has
// announced. Reports false if the transport went down while waiting.
func (t *WorkerTransport) Barrier(rank int) bool {
	if rank < t.lo || rank >= t.hi {
		panic(fmt.Sprintf("machine: barrier from rank %d outside node %d's window [%d, %d)", rank, t.node, t.lo, t.hi))
	}
	t.bmu.Lock()
	if t.down.Load() {
		t.bmu.Unlock()
		return false
	}
	t.arrived++
	var g uint64
	if t.arrived == t.hi-t.lo {
		t.arrived = 0
		t.localGen++
		g = t.localGen
		t.host.sendBarrierArrive(t.gen, g)
	} else {
		g = t.localGen + 1
	}
	pk := parkerOf(t.coord)
	if pk != nil && t.released < g {
		t.waiters = append(t.waiters, rank)
	}
	for t.released < g && !t.down.Load() {
		if pk != nil {
			t.bmu.Unlock()
			pk.Park(rank)
			t.bmu.Lock()
		} else {
			t.bcond.Wait()
		}
	}
	ok := t.released >= g
	t.bmu.Unlock()
	return ok
}

// releaseBarrier applies the coordinator's release of host-barrier
// generation g (every node announced it); called from the worker's read
// loop.
func (t *WorkerTransport) releaseBarrier(g uint64) {
	t.bmu.Lock()
	if g > t.released {
		t.released = g
	}
	t.bcond.Broadcast()
	if pk := parkerOf(t.coord); pk != nil {
		// Waking under bmu keeps the waiter list intact: a woken rank
		// cannot re-enter Barrier (and append again) until the unlock.
		for _, w := range t.waiters {
			pk.Wake(w)
		}
		t.waiters = t.waiters[:0]
	}
	t.bmu.Unlock()
}

// rebind readies a cached transport for another run at a new generation.
// The fence that ended the previous run took the transport down
// (hostDown), so the down flag, reason, mailboxes and barrier ladder all
// rewind here. Called from the worker's read loop between the
// coordinator's RunSpec and its ack — no rank goroutine is live and the
// coordinator routes no Data frame before the ack, so nothing races the
// rewind, and frames routed after the ack land in the cleared mailboxes
// exactly as they would in a freshly built transport.
func (t *WorkerTransport) rebind(gen uint64) {
	t.gen = gen
	t.down.Store(false)
	t.reasonMu.Lock()
	t.reason = nil
	t.reasonMu.Unlock()
	for i := range t.boxes {
		mb := &t.boxes[i]
		mb.mu.Lock()
		mb.reset()
		mb.mu.Unlock()
	}
	t.bmu.Lock()
	t.arrived, t.localGen, t.released = 0, 0, 0
	t.waiters = t.waiters[:0]
	t.bmu.Unlock()
}

// Reset is a no-op: a WorkerTransport serves one run per (re)bind, and
// the coordinator may route inter-node frames here between the run's
// installation and the machine's Run call — the machine's unconditional
// start-of-run Reset must not discard them. Fence semantics between runs
// belong to the coordinator's reset protocol plus rebind.
func (t *WorkerTransport) Reset() {}

// Abort marks the transport down and wakes every blocked receiver, barrier
// waiter and parked rank. It is local to this node: the coordinator learns
// of the run's failure from the rank errors in the RankResult frames.
func (t *WorkerTransport) Abort() {
	t.down.Store(true)
	for i := range t.boxes {
		mb := &t.boxes[i]
		mb.mu.Lock()
		mb.cond.Broadcast()
		mb.mu.Unlock()
	}
	t.bmu.Lock()
	t.bcond.Broadcast()
	t.bmu.Unlock()
	if pk := parkerOf(t.coord); pk != nil {
		pk.WakeAll()
	}
}

// hostDown takes the run down on the coordinator's order with a structured
// reason (worker-side of IPCTransport's abort broadcast); first reason
// wins.
func (t *WorkerTransport) hostDown(reason error) {
	if reason != nil {
		t.reasonMu.Lock()
		if t.reason == nil {
			t.reason = reason
		}
		t.reasonMu.Unlock()
	}
	t.Abort()
}

// declareStall applies the coordinator's distributed-deadlock verdict: the
// transport goes down with no reason recorded, so blocked receivers unwind
// with the ErrDeadlock cause — byte-identical error text to a deadlock on
// the single-process transports.
func (t *WorkerTransport) declareStall() { t.Abort() }

// stallStatus evaluates the local stall condition without declaring
// anything: all live local ranks blocked (confirmed by the machine under
// every mailbox lock) and no waiter has a matching pending message. This
// is the per-node half of the distributed probe; the worker reports it in
// ProbeAck status flags.
func (t *WorkerTransport) stallStatus() bool {
	if t.coord == nil || t.down.Load() {
		return false
	}
	for i := range t.boxes {
		t.boxes[i].mu.Lock()
	}
	stalled := false
	if live := t.coord.ConfirmStall(); live > 0 {
		waiting := 0
		canProceed := false
		for i := range t.boxes {
			mb := &t.boxes[i]
			if !mb.waiting {
				continue
			}
			waiting++
			if len(mb.queues[mb.await]) > 0 {
				canProceed = true
			}
		}
		if waiting >= live && !canProceed {
			stalled = true
		}
	}
	for i := range t.boxes {
		t.boxes[i].mu.Unlock()
	}
	return stalled
}

// CheckStalled never declares a stall — one node cannot tell a deadlock
// from a frame another node has yet to send — but forwards a locally
// quiescent state to the coordinator as a StallHint, arming the two-phase
// distributed probe. Always false: the verdict arrives asynchronously as
// declareStall.
func (t *WorkerTransport) CheckStalled() bool {
	if t.stallStatus() {
		t.host.sendStallHint(t.gen)
	}
	return false
}
