package machine

import (
	"errors"
	"reflect"
	"strings"
	"testing"

	"repro/internal/chaos"
)

// chaosMachine builds a machine over a chaos-wrapped transport running the
// given scenario.
func chaosMachine(t *testing.T, base string, n, nodes int, sc chaos.Scenario) (*Machine, *ChaosTransport) {
	t.Helper()
	tr, err := NewTransportByName(ChaosPrefix+base, n, nodes)
	if err != nil {
		t.Fatal(err)
	}
	ct, ok := tr.(*ChaosTransport)
	if !ok {
		t.Fatalf("chaos:%s resolved to %T", base, tr)
	}
	if err := ct.SetScenario(sc); err != nil {
		t.Fatal(err)
	}
	return NewWithTransport(ct, IPSC2()), ct
}

// ringProgram is a deterministic token-passing workload: every rank circulates
// an accumulating token for the given number of rounds and returns its final
// value. Every message crosses a rank boundary, so on chaos:shared every one
// is fault-eligible.
func ringProgram(n, rounds int) func(p *Proc) float64 {
	return func(p *Proc) float64 {
		next := (p.Rank() + 1) % n
		prev := (p.Rank() + n - 1) % n
		token := []float64{float64(p.Rank() + 1)}
		for i := 0; i < rounds; i++ {
			p.Compute(10)
			p.Send(next, Tag(1), token)
			token = p.Recv(prev, Tag(1))
			token[0] += float64(p.Rank())
		}
		return token[0]
	}
}

// runRing executes the ring on m and returns per-rank final token values.
func runRing(t *testing.T, m *Machine, n, rounds int) []float64 {
	t.Helper()
	vals := make([]float64, n)
	prog := ringProgram(n, rounds)
	if err := m.Run(func(p *Proc) error {
		vals[p.Rank()] = prog(p)
		return nil
	}); err != nil {
		t.Fatal(err)
	}
	return vals
}

func TestChaosDropRecoveryBitIdenticalValues(t *testing.T) {
	// A lossy link must not change what the program computes: retransmission
	// restores exactly the message streams the fault-free run carries, so
	// values and the machine-level census are bit-identical — only virtual
	// time pays for the retries.
	const n, rounds = 4, 30
	base := New(n, IPSC2())
	want := runRing(t, base, n, rounds)

	m, ct := chaosMachine(t, "shared", n, 1, chaos.Scenario{Name: "drop", Seed: 3, Drop: 0.1})
	got := runRing(t, m, n, rounds)
	if !reflect.DeepEqual(got, want) {
		t.Errorf("values under drops %v != fault-free %v", got, want)
	}
	if bs, cs := base.TotalStats(), m.TotalStats(); bs.MsgsSent != cs.MsgsSent ||
		bs.MsgsRecv != cs.MsgsRecv || bs.BytesSent != cs.BytesSent || bs.Flops != cs.Flops {
		t.Errorf("census moved under drops: %+v vs %+v", cs, bs)
	}
	if m.Elapsed() <= base.Elapsed() {
		t.Errorf("retries must cost virtual time: %v <= fault-free %v", m.Elapsed(), base.Elapsed())
	}

	rep := ct.Report()
	if rep.Drops == 0 {
		t.Fatal("scenario injected no drops; the test exercised nothing")
	}
	if rep.Retransmits == 0 || rep.RetryRounds == 0 {
		t.Errorf("drops recovered without retransmission? %+v", rep)
	}
	// Recovery bookkeeping invariants for a completing run: every recovered
	// message appears once in the histogram, and every retransmission had at
	// least one failed transmission before it.
	var hist int64
	for _, c := range rep.RetryHistogram {
		hist += c
	}
	if hist != rep.Retransmits {
		t.Errorf("histogram sums to %d, want Retransmits=%d", hist, rep.Retransmits)
	}
	if rep.Drops+rep.OutageHolds < rep.Retransmits {
		t.Errorf("more retransmissions (%d) than losses (%d)", rep.Retransmits, rep.Drops+rep.OutageHolds)
	}
	if rep.FirstDrop == nil {
		t.Error("FirstDrop not recorded")
	}
	if rep.Aborted || rep.Failure != nil {
		t.Errorf("completed run reports an abort: %+v", rep)
	}
}

func TestChaosDupAbsorptionExactlyOnce(t *testing.T) {
	// Dup probability 1 duplicates every wire message; the receive side must
	// absorb the copies so the program sees each message exactly once, in
	// order. The duplicate of the stream's final message is never consumed
	// (the receiver stops asking) — Reset sweeps it with the base queues.
	const msgs = 10
	m, ct := chaosMachine(t, "shared", 2, 1, chaos.Scenario{Name: "dup", Seed: 1, Dup: 1})
	err := m.Run(func(p *Proc) error {
		if p.Rank() == 0 {
			for i := 0; i < msgs; i++ {
				p.SendValue(1, Tag(7), float64(i))
			}
			return nil
		}
		for i := 0; i < msgs; i++ {
			if v := p.RecvValue(0, Tag(7)); v != float64(i) {
				t.Errorf("message %d: got %v (duplicate leaked or order broken)", i, v)
			}
		}
		return nil
	})
	if err != nil {
		t.Fatal(err)
	}
	rep := ct.Report()
	if rep.Dups != msgs {
		t.Errorf("Dups = %d, want %d", rep.Dups, msgs)
	}
	if rep.Absorbed != msgs-1 {
		t.Errorf("Absorbed = %d, want %d (all but the trailing duplicate)", rep.Absorbed, msgs-1)
	}
	if s := m.TotalStats(); s.MsgsRecv != msgs {
		t.Errorf("program-visible receives %d, want %d", s.MsgsRecv, msgs)
	}
}

func TestChaosAbortPropagationWakesEveryBlockedReceiver(t *testing.T) {
	// Drop probability 1 on one directed pair makes its message unrecoverable.
	// When the retry budget exhausts, the whole machine must come down
	// cleanly: every blocked receiver wakes (Run returns instead of hanging),
	// the error is ErrFaultAbort, and it names the (sender, receiver, tag)
	// stream that exhausted the budget.
	sc := chaos.Scenario{
		Name:       "black-hole",
		Seed:       1,
		Links:      []chaos.LinkFaults{{Src: 0, Dst: 1, Drop: 1}},
		MaxRetries: 2,
	}
	m, ct := chaosMachine(t, "shared", 4, 1, sc)
	err := m.Run(func(p *Proc) error {
		switch p.Rank() {
		case 0:
			p.SendValue(1, Tag(5), 42) // dropped forever
			p.Recv(3, Tag(9))          // park so the stall is global
		case 1:
			p.Recv(0, Tag(5)) // the lost message's receiver
		case 2:
			p.Recv(1, Tag(7)) // innocent bystanders, also parked
		case 3:
			p.Recv(2, Tag(8))
		}
		return nil
	})
	if !errors.Is(err, ErrFaultAbort) {
		t.Fatalf("err = %v, want ErrFaultAbort", err)
	}
	if errors.Is(err, ErrDeadlock) {
		t.Errorf("fault abort misreported as deadlock: %v", err)
	}
	for _, want := range []string{"(src=0, dst=1, tag=0x5)", sc.Name} {
		if !strings.Contains(err.Error(), want) {
			t.Errorf("error %q does not name %q", err, want)
		}
	}

	rep := ct.Report()
	if !rep.Aborted {
		t.Error("report not marked aborted")
	}
	if rep.Failure == nil || rep.Failure.Src != 0 || rep.Failure.Dst != 1 || rep.Failure.Tag != 5 {
		t.Errorf("Failure = %+v, want stream (0, 1, 5)", rep.Failure)
	}
	if rep.Failure != nil && rep.Failure.Attempts != sc.MaxRetries+1 {
		t.Errorf("Failure.Attempts = %d, want %d (budget + the attempt that exhausted it)",
			rep.Failure.Attempts, sc.MaxRetries+1)
	}
	if rep.FirstDrop == nil || *rep.FirstDrop != (chaos.StreamRef{Src: 0, Dst: 1, Tag: 5}) {
		t.Errorf("FirstDrop = %+v, want stream (0, 1, 5)", rep.FirstDrop)
	}
	if reason := ct.DownReason(); reason == nil || !errors.Is(reason, ErrFaultAbort) {
		t.Errorf("DownReason = %v, want the fault abort", reason)
	}
}

func TestChaosFirstDropDeterministicAcrossConcurrentStreams(t *testing.T) {
	// Ranks 0 and 2 both lose a message, racing in wall-clock time to
	// record the loss: which send reaches the chaos layer's lock first is a
	// host-scheduling accident. FirstDrop must instead be the canonical
	// earliest loss in virtual time — rank 2's send at clock zero beats
	// rank 0's post-compute send despite (0, 1) sorting before (2, 3) —
	// identically on every engine, on every run.
	want := chaos.StreamRef{Src: 2, Dst: 3, Tag: 2}
	for _, engine := range []string{"goroutine", "calendar"} {
		for i := 0; i < 10; i++ {
			sc := chaos.Scenario{Name: "loss-race", Seed: 7, Drop: 1, MaxRetries: 1}
			m, ct := chaosMachine(t, "shared", 4, 1, sc)
			e, err := NewExecutorByName(engine)
			if err != nil {
				t.Fatal(err)
			}
			m.SetExecutor(e)
			err = m.Run(func(p *Proc) error {
				switch p.Rank() {
				case 0:
					p.Compute(1e6)
					p.SendValue(1, Tag(2), 1)
				case 1:
					p.Recv(0, Tag(2))
				case 2:
					p.SendValue(3, Tag(2), 2)
				case 3:
					p.Recv(2, Tag(2))
				}
				return nil
			})
			if !errors.Is(err, ErrFaultAbort) {
				t.Fatalf("%s run %d: err = %v, want ErrFaultAbort", engine, i, err)
			}
			rep := ct.Report()
			if rep.FirstDrop == nil || *rep.FirstDrop != want {
				t.Fatalf("%s run %d: FirstDrop = %+v, want %+v", engine, i, rep.FirstDrop, want)
			}
		}
	}
}

func TestChaosSeedReproducibleAcrossPooledRuns(t *testing.T) {
	// Machine.Run resets the transport at the start of every run; on a chaos
	// transport that rewinds the PRNG streams to the seed-defined start, so a
	// pooled machine replays the exact same faults run after run: identical
	// values, identical elapsed time, identical report.
	const n, rounds = 4, 25
	sc := chaos.Scenario{Name: "mix", Seed: 99, Drop: 0.15, Dup: 0.1, Delay: 0.2, DelayMax: 1e-3}
	m, ct := chaosMachine(t, "shared", n, 1, sc)

	vals1 := runRing(t, m, n, rounds)
	rep1 := ct.Report()
	elapsed1 := m.Elapsed()
	if rep1.Injected() == 0 {
		t.Fatal("scenario injected nothing; reproducibility untested")
	}

	vals2 := runRing(t, m, n, rounds)
	rep2 := ct.Report()
	if !reflect.DeepEqual(vals1, vals2) {
		t.Errorf("values diverged across pooled runs: %v vs %v", vals1, vals2)
	}
	if m.Elapsed() != elapsed1 {
		t.Errorf("elapsed diverged across pooled runs: %v vs %v", m.Elapsed(), elapsed1)
	}
	if !reflect.DeepEqual(rep1, rep2) {
		t.Errorf("fault reports diverged across pooled runs:\n%+v\n%+v", rep1, rep2)
	}
	// The cumulative report folds both runs.
	total := ct.TotalReport()
	if total.Sends != 2*rep1.Sends || total.Drops != 2*rep1.Drops {
		t.Errorf("TotalReport %+v is not twice the per-run report %+v", total, rep1)
	}
}

func TestChaosDelayOnlySlowsButNeverReorders(t *testing.T) {
	// Delay probability 1 jitters every wire message. Per-stream FIFO and
	// values must hold; only time moves.
	const n, rounds = 2, 10
	base := New(n, IPSC2())
	want := runRing(t, base, n, rounds)

	m, ct := chaosMachine(t, "shared", n, 1, chaos.Scenario{Name: "jitter", Seed: 5, Delay: 1, DelayMax: 1e-3})
	got := runRing(t, m, n, rounds)
	if !reflect.DeepEqual(got, want) {
		t.Errorf("values under delays %v != fault-free %v", got, want)
	}
	rep := ct.Report()
	if rep.Delays != rep.Sends || rep.Sends == 0 {
		t.Errorf("Delays = %d of %d sends, want all", rep.Delays, rep.Sends)
	}
	if rep.Drops != 0 || rep.Retransmits != 0 || rep.RetryRounds != 0 {
		t.Errorf("delay-only scenario triggered recovery: %+v", rep)
	}
	if m.Elapsed() <= base.Elapsed() {
		t.Errorf("delays must cost virtual time: %v <= %v", m.Elapsed(), base.Elapsed())
	}
}

func TestChaosIntraNodeTrafficNeverFaulted(t *testing.T) {
	// Chaos happens on the wire: on chaos:federated, messages between ranks
	// of the same node never cross a link and must never be faulted — even
	// at drop probability 1.
	m, ct := chaosMachine(t, "federated", 4, 2, chaos.Scenario{Name: "wire-only", Seed: 1, Drop: 1, MaxRetries: 1})
	err := m.Run(func(p *Proc) error {
		// Node 0 holds ranks {0, 1}, node 1 holds {2, 3}: chat within nodes.
		switch p.Rank() {
		case 0:
			p.SendValue(1, Tag(1), 10)
		case 1:
			if v := p.RecvValue(0, Tag(1)); v != 10 {
				t.Errorf("intra-node message corrupted: %v", v)
			}
		case 2:
			p.SendValue(3, Tag(1), 20)
		case 3:
			if v := p.RecvValue(2, Tag(1)); v != 20 {
				t.Errorf("intra-node message corrupted: %v", v)
			}
		}
		return nil
	})
	if err != nil {
		t.Fatalf("intra-node traffic was faulted: %v", err)
	}
	rep := ct.Report()
	if rep.Sends != 2 {
		t.Errorf("Sends = %d, want 2 (chaos layer still counts them)", rep.Sends)
	}
	if rep.Injected() != 0 {
		t.Errorf("intra-node messages faulted: %+v", rep)
	}
}

func TestChaosSelfSendNeverFaulted(t *testing.T) {
	m, ct := chaosMachine(t, "shared", 2, 1, chaos.Scenario{Name: "self", Seed: 1, Drop: 1, MaxRetries: 1})
	err := m.Run(func(p *Proc) error {
		p.SendValue(p.Rank(), Tag(3), float64(p.Rank()))
		if v := p.RecvValue(p.Rank(), Tag(3)); v != float64(p.Rank()) {
			t.Errorf("self-send corrupted: %v", v)
		}
		return nil
	})
	if err != nil {
		t.Fatalf("self-send was faulted: %v", err)
	}
	if rep := ct.Report(); rep.Injected() != 0 {
		t.Errorf("self-sends faulted: %+v", rep)
	}
}

func TestChaosOutageHoldsUntilRestart(t *testing.T) {
	// A node outage loses messages to/from its ranks during the window, and
	// their retransmissions deliver no earlier than the restart time.
	const restart = 1e-2
	sc := chaos.Scenario{
		Name:    "outage",
		Seed:    1,
		Outages: []chaos.Outage{{Node: 1, Start: 0, End: restart}},
	}
	m, ct := chaosMachine(t, "federated", 4, 2, sc)
	err := m.Run(func(p *Proc) error {
		switch p.Rank() {
		case 0:
			p.SendValue(2, Tag(4), 3.5) // cross-link into the outage window
		case 2:
			if v := p.RecvValue(0, Tag(4)); v != 3.5 {
				t.Errorf("got %v, want 3.5", v)
			}
		}
		return nil
	})
	if err != nil {
		t.Fatal(err)
	}
	rep := ct.Report()
	if rep.OutageHolds == 0 {
		t.Fatal("outage window held nothing; the test exercised nothing")
	}
	if rep.Retransmits == 0 {
		t.Errorf("held message never retransmitted: %+v", rep)
	}
	if clk := m.ProcClock(2); clk < restart {
		t.Errorf("receiver clock %v predates the node restart at %v", clk, restart)
	}
}

func TestChaosDeadlockStillDeadlockWhenNothingHeld(t *testing.T) {
	// With an active scenario but no held messages, a confirmed stall is a
	// true dependency deadlock and must be reported as one — not retried.
	m, ct := chaosMachine(t, "shared", 2, 1, chaos.Scenario{Name: "quiet", Seed: 1, Drop: 0.5})
	err := m.Run(func(p *Proc) error {
		p.Recv((p.Rank()+1)%2, Tag(0)) // nobody ever sends
		return nil
	})
	if !errors.Is(err, ErrDeadlock) {
		t.Fatalf("err = %v, want ErrDeadlock", err)
	}
	if errors.Is(err, ErrFaultAbort) {
		t.Errorf("true deadlock misattributed to fault injection: %v", err)
	}
	if rep := ct.Report(); rep.Aborted || rep.Failure != nil {
		t.Errorf("deadlock produced a fault-abort report: %+v", rep)
	}
}

func TestChaosSetScenarioValidates(t *testing.T) {
	tr, err := NewTransportByName("chaos:shared", 2, 1)
	if err != nil {
		t.Fatal(err)
	}
	ct := tr.(*ChaosTransport)
	if err := ct.SetScenario(chaos.Scenario{Drop: 1.5}); err == nil {
		t.Error("drop probability 1.5 accepted")
	}
	if err := ct.SetScenario(chaos.Scenario{Delay: 0.5}); err == nil {
		t.Error("delay without delay_max accepted")
	}
	// Defaults are applied on install.
	if err := ct.SetScenario(chaos.Scenario{Drop: 0.1}); err != nil {
		t.Fatal(err)
	}
	got := ct.Scenario()
	if got.RecvTimeout != chaos.DefaultRecvTimeout || got.MaxRetries != chaos.DefaultMaxRetries {
		t.Errorf("retry defaults not applied: %+v", got)
	}
}

func TestNewChaosTransportGuards(t *testing.T) {
	mustPanic := func(name string, f func()) {
		defer func() {
			if recover() == nil {
				t.Errorf("%s: expected panic", name)
			}
		}()
		f()
	}
	mustPanic("nil base", func() { NewChaosTransport(nil) })
	mustPanic("nested chaos", func() { NewChaosTransport(NewChaosTransport(NewSharedTransport(2))) })
}
