package machine

// Tag identifies a message stream between a pair of processors. A receive
// matches the oldest pending message with the same (source, tag) pair, so
// distinct concurrent protocols must use distinct tags.
//
// Tags are ordinarily constructed with TagOf or derived from a Scope; the
// numeric value carries no meaning beyond equality.
type Tag uint64

// TagOf packs up to four small integers into a Tag. Each part must fit in 16
// bits; parts are packed most-significant first, so TagOf(a) != TagOf(a, 0)
// is NOT guaranteed — always use a fixed arity per protocol.
func TagOf(parts ...uint16) Tag {
	var t Tag
	for _, p := range parts {
		t = t<<16 | Tag(p)
	}
	return t
}

// Scope is a collision-free namespace for tags. Nested program phases derive
// child scopes deterministically (every processor executing the same program
// derives the same scopes), so concurrent subcomputations on disjoint
// processor sets never confuse each other's messages.
type Scope struct {
	id uint64
}

// RootScope returns the top-level scope.
func RootScope() Scope { return Scope{id: 0x9e3779b97f4a7c15} }

// Child derives a sub-scope from a sequence number (for example, the ordinal
// of a phase within a routine) and a discriminator (for example, a doall
// iteration index). The derivation is a splitmix64-style hash, so sibling
// scopes are distinct with overwhelming probability.
func (s Scope) Child(seq, discriminator int) Scope {
	z := s.id ^ (uint64(seq)+1)*0xbf58476d1ce4e5b9 ^ (uint64(int64(discriminator))+0x94d049bb133111eb)*0x94d049bb133111eb
	z ^= z >> 30
	z *= 0xbf58476d1ce4e5b9
	z ^= z >> 27
	z *= 0x94d049bb133111eb
	z ^= z >> 31
	return Scope{id: z}
}

// Tag returns a message tag within the scope. The part argument
// distinguishes independent streams inside one phase (for example,
// "boundary row" versus "right-hand side").
func (s Scope) Tag(part uint16) Tag {
	return Tag(s.id)<<16 | Tag(part)
}
