package machine

// message is a delivered-but-not-yet-received payload with its virtual
// arrival time at the destination.
type message struct {
	data    []float64
	arrival float64
}

// msgKey matches receives to sends: point-to-point by source and tag.
type msgKey struct {
	src int
	tag Tag
}

// The post office: all mailbox state lives on the Machine under a single
// lock (see Machine.mu). With one lock there are no ordering hazards, the
// deadlock detector can inspect every queue safely, and the cost — a few
// hundred nanoseconds per message — is irrelevant next to the simulated
// algorithms' O(n) compute loops.

// putLocked appends a message to dst's queue. Caller holds m.mu.
func (m *Machine) putLocked(dst int, k msgKey, msg message) {
	q := m.queues[dst]
	q[k] = append(q[k], msg)
}

// takeLocked removes the oldest message matching k from dst's queue,
// reporting whether one was present. Caller holds m.mu.
func (m *Machine) takeLocked(dst int, k msgKey) (message, bool) {
	q := m.queues[dst][k]
	if len(q) == 0 {
		return message{}, false
	}
	msg := q[0]
	if len(q) == 1 {
		delete(m.queues[dst], k)
	} else {
		m.queues[dst][k] = q[1:]
	}
	return msg, true
}

// recv blocks the calling processor until a message matching k is available
// in dst's mailbox, then returns it. The second result is false if the
// machine went down (deadlock or abort) while waiting.
func (m *Machine) recv(dst int, k msgKey) (message, bool) {
	m.mu.Lock()
	defer m.mu.Unlock()
	for {
		if m.down {
			return message{}, false
		}
		if msg, ok := m.takeLocked(dst, k); ok {
			return msg, true
		}
		m.blocked++
		m.awaiting[dst] = &k
		m.checkDeadlockLocked()
		if m.down {
			// Our own check flagged the deadlock (its broadcast
			// fired before we waited); bail out instead of
			// sleeping through it.
			m.blocked--
			m.awaiting[dst] = nil
			return message{}, false
		}
		m.conds[dst].Wait()
		m.blocked--
		m.awaiting[dst] = nil
	}
}

// send delivers a message and wakes the destination if it is waiting.
func (m *Machine) send(dst int, k msgKey, msg message) {
	m.mu.Lock()
	m.putLocked(dst, k, msg)
	m.conds[dst].Signal()
	m.mu.Unlock()
}

// checkDeadlockLocked flags a deadlock when every live processor is blocked
// and none of them has a pending message matching its awaited key. Under the
// single machine lock, a pending match implies the waiter has been (or is
// about to be) signalled, so "no matches anywhere and nobody running" is a
// true deadlock: no future send can occur.
func (m *Machine) checkDeadlockLocked() {
	if m.down || m.live == 0 || m.blocked < m.live {
		return
	}
	for p := 0; p < m.n; p++ {
		if k := m.awaiting[p]; k != nil && len(m.queues[p][*k]) > 0 {
			return // p can proceed
		}
	}
	m.down = true
	m.wakeAllLocked()
}

// wakeAllLocked unblocks every waiting processor. Caller holds m.mu.
func (m *Machine) wakeAllLocked() {
	for _, c := range m.conds {
		c.Broadcast()
	}
}
