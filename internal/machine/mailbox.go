package machine

import (
	"fmt"
	"sync"
	"sync/atomic"
)

// message is a delivered-but-not-yet-received payload with its virtual
// arrival time at the destination.
type message struct {
	data    []float64
	arrival float64
}

// msgKey matches receives to sends: point-to-point by source and tag.
type msgKey struct {
	src int
	tag Tag
}

// mailbox is one processor's incoming message state. Each mailbox has its
// own lock, so senders targeting different receivers never contend — the
// post office is sharded by destination. Only the owning processor's
// goroutine receives from a mailbox; any processor may put into it.
type mailbox struct {
	mu     sync.Mutex
	cond   *sync.Cond
	queues map[msgKey][]message
	// spare recycles drained per-key queue slices so steady-state
	// traffic performs no allocation: a phase's keys are used once and
	// deleted, but their backing arrays live on here.
	spare [][]message
	// await/waiting describe the receive the owner is blocked on, for
	// targeted wakeups and deadlock detection.
	await   msgKey
	waiting bool
}

// putLocked appends a message to the mailbox. Caller holds mb.mu.
func (mb *mailbox) putLocked(k msgKey, msg message) {
	q, ok := mb.queues[k]
	if !ok && len(mb.spare) > 0 {
		q = mb.spare[len(mb.spare)-1]
		mb.spare = mb.spare[:len(mb.spare)-1]
	}
	mb.queues[k] = append(q, msg)
}

// takeLocked removes the oldest message matching k, reporting whether one
// was present. Drained queues return their backing array to the spare list.
// Caller holds mb.mu.
func (mb *mailbox) takeLocked(k msgKey) (message, bool) {
	q := mb.queues[k]
	if len(q) == 0 {
		return message{}, false
	}
	msg := q[0]
	copy(q, q[1:])
	q[len(q)-1] = message{} // drop the payload reference
	q = q[:len(q)-1]
	if len(q) == 0 {
		delete(mb.queues, k)
		mb.spare = append(mb.spare, q)
	} else {
		mb.queues[k] = q
	}
	return msg, true
}

// reset clears the mailbox between Runs, keeping the allocated map and
// spare queue capacity for reuse.
func (mb *mailbox) reset() {
	for k, q := range mb.queues {
		for i := range q {
			q[i] = message{}
		}
		delete(mb.queues, k)
		mb.spare = append(mb.spare, q[:0])
	}
	mb.waiting = false
	mb.await = msgKey{}
}

// SharedTransport is the single-machine message substrate: one individually
// locked mailbox per receiving processor, shared-memory delivery with no
// intermediate hops. It is the default transport of machine.New and the
// zero-allocation fast path — a warmed ping-pong performs no heap
// allocation, which the conformance suite pins.
type SharedTransport struct {
	boxes []mailbox
	coord Coordinator
	down  atomic.Bool
	bar   hostBarrier
}

// NewSharedTransport returns a shared-memory transport with n endpoints.
func NewSharedTransport(n int) *SharedTransport {
	if n <= 0 {
		panic(fmt.Sprintf("machine: transport endpoint count must be positive, got %d", n))
	}
	t := &SharedTransport{boxes: make([]mailbox, n)}
	for i := range t.boxes {
		mb := &t.boxes[i]
		mb.cond = sync.NewCond(&mb.mu)
		mb.queues = make(map[msgKey][]message)
	}
	t.bar.init(n)
	return t
}

// Size returns the number of endpoints.
func (t *SharedTransport) Size() int { return len(t.boxes) }

// Bind installs the machine's coordinator (nil for standalone use).
func (t *SharedTransport) Bind(c Coordinator) { t.coord = c }

// Down reports whether the transport has been aborted since the last Reset.
func (t *SharedTransport) Down() bool { return t.down.Load() }

// MessageTime prices every processor pair at the flat cost: the shared
// transport is one node, so no message ever crosses an inter-node link.
func (t *SharedTransport) MessageTime(cost CostModel, src, dst, b int) float64 {
	return cost.MessageTime(b)
}

// Send delivers a message and wakes the destination if it is waiting for
// exactly this stream — through the machine's Parker when a parking engine
// is driving (moving dst from parked to runnable on the calendar), through
// the mailbox condition variable otherwise. Only the destination's mailbox
// lock is taken, so concurrent sends to different receivers proceed in
// parallel.
func (t *SharedTransport) Send(src, dst int, tag Tag, data []float64, arrival float64) {
	mb := &t.boxes[dst]
	k := msgKey{src: src, tag: tag}
	mb.mu.Lock()
	mb.putLocked(k, message{data: data, arrival: arrival})
	if mb.waiting && mb.await == k {
		if pk := parkerOf(t.coord); pk != nil {
			pk.Wake(dst)
		} else {
			mb.cond.Signal()
		}
	}
	mb.mu.Unlock()
}

// Recv blocks the calling endpoint until a message matching (src, tag) is
// available in dst's mailbox, then returns it. ok is false if the transport
// went down (deadlock or abort) while waiting.
func (t *SharedTransport) Recv(dst, src int, tag Tag) ([]float64, float64, bool) {
	mb := &t.boxes[dst]
	k := msgKey{src: src, tag: tag}
	mb.mu.Lock()
	if msg, ok := mb.takeLocked(k); ok {
		mb.mu.Unlock()
		return msg.data, msg.arrival, true
	}
	if t.down.Load() {
		mb.mu.Unlock()
		return nil, 0, false
	}
	// Slow path: publish what we are waiting for, then report ourselves
	// blocked. The order matters: once the machine's blocked count
	// reaches its live count, CheckStalled must be able to see every
	// blocked processor's awaited key.
	mb.await = k
	mb.waiting = true
	mb.mu.Unlock()

	if t.coord != nil {
		t.coord.Blocked()
	}

	pk := parkerOf(t.coord)
	mb.mu.Lock()
	for {
		if msg, ok := mb.takeLocked(k); ok {
			mb.waiting = false
			mb.mu.Unlock()
			if t.coord != nil {
				t.coord.Unblocked()
			}
			return msg.data, msg.arrival, true
		}
		if t.down.Load() {
			mb.waiting = false
			mb.mu.Unlock()
			if t.coord != nil {
				t.coord.Unblocked()
			}
			return nil, 0, false
		}
		if pk != nil {
			// Park the rank's continuation with no locks held; a Wake
			// that raced ahead (the message arrived between the checks
			// above and here) returns immediately, and the loop
			// re-checks either way.
			mb.mu.Unlock()
			pk.Park(dst)
			mb.mu.Lock()
		} else {
			mb.cond.Wait()
		}
	}
}

// Barrier parks the calling endpoint until all endpoints arrive.
func (t *SharedTransport) Barrier(rank int) bool {
	if rank < 0 || rank >= len(t.boxes) {
		panic(fmt.Sprintf("machine: barrier from invalid rank %d", rank))
	}
	return t.bar.await(rank, &t.down, parkerOf(t.coord))
}

// Reset clears all mailboxes and the down flag, keeping capacity. Each
// mailbox lock is held while it is cleared, so a concurrent CheckStalled
// never observes a torn mixture of old and cleared state.
func (t *SharedTransport) Reset() {
	for i := range t.boxes {
		mb := &t.boxes[i]
		mb.mu.Lock()
		mb.reset()
		mb.mu.Unlock()
	}
	t.bar.reset()
	t.down.Store(false)
}

// Abort marks the transport down and wakes every blocked receiver.
func (t *SharedTransport) Abort() {
	t.down.Store(true)
	for i := range t.boxes {
		mb := &t.boxes[i]
		mb.mu.Lock()
		mb.cond.Broadcast()
		mb.mu.Unlock()
	}
	t.bar.wake()
	if pk := parkerOf(t.coord); pk != nil {
		pk.WakeAll()
	}
}

// CheckStalled flags a deadlock when every live processor is blocked and
// none of them has a pending message matching its awaited key. It takes all
// mailbox locks (in rank order) to get a consistent snapshot; with every
// lock held, "all live processors waiting and no matches anywhere" is a
// true deadlock: no future send can occur.
//
// A processor that has been woken but not yet re-counted shows
// waiting==false, which keeps the waiting count below live and prevents a
// false positive while it finishes proceeding.
func (t *SharedTransport) CheckStalled() bool { return t.stallCheck(true) }

// probeStalled evaluates the full stall condition without declaring the
// transport down or waking anyone — the non-destructive confirmation the
// chaos layer uses to distinguish "stalled on a lost message" from a true
// deadlock before deciding between retransmission and declaration.
func (t *SharedTransport) probeStalled() bool { return t.stallCheck(false) }

// stallCheck is the shared body of CheckStalled (declare=true: mark down
// and wake everyone on a stall) and probeStalled (declare=false: evaluate
// only).
func (t *SharedTransport) stallCheck(declare bool) bool {
	if t.coord == nil {
		return false
	}
	for i := range t.boxes {
		t.boxes[i].mu.Lock()
	}
	stalled := false
	if !t.down.Load() {
		if live := t.coord.ConfirmStall(); live > 0 {
			waiting := 0
			canProceed := false
			for i := range t.boxes {
				mb := &t.boxes[i]
				if !mb.waiting {
					continue
				}
				waiting++
				if len(mb.queues[mb.await]) > 0 {
					canProceed = true
				}
			}
			if waiting >= live && !canProceed {
				stalled = true
			}
		}
	}
	if stalled && declare {
		t.down.Store(true)
		for i := range t.boxes {
			t.boxes[i].cond.Broadcast()
		}
	}
	for i := range t.boxes {
		t.boxes[i].mu.Unlock()
	}
	if stalled && declare {
		t.bar.wake()
		if pk := parkerOf(t.coord); pk != nil {
			pk.WakeAll()
		}
	}
	return stalled
}
