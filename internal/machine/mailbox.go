package machine

import "sync"

// message is a delivered-but-not-yet-received payload with its virtual
// arrival time at the destination.
type message struct {
	data    []float64
	arrival float64
}

// msgKey matches receives to sends: point-to-point by source and tag.
type msgKey struct {
	src int
	tag Tag
}

// mailbox is one processor's incoming message state. Each mailbox has its
// own lock, so senders targeting different receivers never contend — the
// post office is sharded by destination. Only the owning processor's
// goroutine receives from a mailbox; any processor may put into it.
type mailbox struct {
	mu     sync.Mutex
	cond   *sync.Cond
	queues map[msgKey][]message
	// spare recycles drained per-key queue slices so steady-state
	// traffic performs no allocation: a phase's keys are used once and
	// deleted, but their backing arrays live on here.
	spare [][]message
	// await/waiting describe the receive the owner is blocked on, for
	// targeted wakeups and deadlock detection.
	await   msgKey
	waiting bool
}

// putLocked appends a message to the mailbox. Caller holds mb.mu.
func (mb *mailbox) putLocked(k msgKey, msg message) {
	q, ok := mb.queues[k]
	if !ok && len(mb.spare) > 0 {
		q = mb.spare[len(mb.spare)-1]
		mb.spare = mb.spare[:len(mb.spare)-1]
	}
	mb.queues[k] = append(q, msg)
}

// takeLocked removes the oldest message matching k, reporting whether one
// was present. Drained queues return their backing array to the spare list.
// Caller holds mb.mu.
func (mb *mailbox) takeLocked(k msgKey) (message, bool) {
	q := mb.queues[k]
	if len(q) == 0 {
		return message{}, false
	}
	msg := q[0]
	copy(q, q[1:])
	q[len(q)-1] = message{} // drop the payload reference
	q = q[:len(q)-1]
	if len(q) == 0 {
		delete(mb.queues, k)
		mb.spare = append(mb.spare, q)
	} else {
		mb.queues[k] = q
	}
	return msg, true
}

// reset clears the mailbox between Runs, keeping the allocated map and
// spare queue capacity for reuse.
func (mb *mailbox) reset() {
	for k, q := range mb.queues {
		for i := range q {
			q[i] = message{}
		}
		delete(mb.queues, k)
		mb.spare = append(mb.spare, q[:0])
	}
	mb.waiting = false
	mb.await = msgKey{}
}

// recv blocks the calling processor until a message matching k is available
// in dst's mailbox, then returns it. The second result is false if the
// machine went down (deadlock or abort) while waiting.
func (m *Machine) recv(dst int, k msgKey) (message, bool) {
	mb := &m.boxes[dst]
	mb.mu.Lock()
	if msg, ok := mb.takeLocked(k); ok {
		mb.mu.Unlock()
		return msg, true
	}
	if m.down.Load() {
		mb.mu.Unlock()
		return message{}, false
	}
	// Slow path: publish what we are waiting for, then count ourselves
	// blocked. The order matters: once the blocked count reaches the
	// live count, the deadlock detector must be able to see every
	// blocked processor's awaited key.
	mb.await = k
	mb.waiting = true
	mb.mu.Unlock()

	m.dmu.Lock()
	m.blocked++
	suspicious := m.blocked >= m.live
	m.dmu.Unlock()
	if suspicious {
		m.checkDeadlock()
	}

	mb.mu.Lock()
	for {
		if msg, ok := mb.takeLocked(k); ok {
			mb.waiting = false
			mb.mu.Unlock()
			m.dmu.Lock()
			m.blocked--
			m.dmu.Unlock()
			return msg, true
		}
		if m.down.Load() {
			mb.waiting = false
			mb.mu.Unlock()
			m.dmu.Lock()
			m.blocked--
			m.dmu.Unlock()
			return message{}, false
		}
		mb.cond.Wait()
	}
}

// send delivers a message and wakes the destination if it is waiting for
// exactly this stream. Only the destination's mailbox lock is taken, so
// concurrent sends to different receivers proceed in parallel.
func (m *Machine) send(dst int, k msgKey, msg message) {
	mb := &m.boxes[dst]
	mb.mu.Lock()
	mb.putLocked(k, msg)
	if mb.waiting && mb.await == k {
		mb.cond.Signal()
	}
	mb.mu.Unlock()
}

// checkDeadlock flags a deadlock when every live processor is blocked and
// none of them has a pending message matching its awaited key. It takes all
// mailbox locks (in rank order) to get a consistent snapshot; with every
// lock held, "all live processors waiting and no matches anywhere" is a
// true deadlock: no future send can occur.
//
// A processor that has been woken but not yet re-counted shows
// waiting==false, which keeps the waiting count below live and prevents a
// false positive while it finishes proceeding.
func (m *Machine) checkDeadlock() {
	for i := range m.boxes {
		m.boxes[i].mu.Lock()
	}
	m.dmu.Lock()
	deadlocked := false
	if !m.down.Load() && m.live > 0 && m.blocked >= m.live {
		waiting := 0
		canProceed := false
		for i := range m.boxes {
			mb := &m.boxes[i]
			if !mb.waiting {
				continue
			}
			waiting++
			if len(mb.queues[mb.await]) > 0 {
				canProceed = true
			}
		}
		if waiting >= m.live && !canProceed {
			deadlocked = true
			m.down.Store(true)
		}
	}
	m.dmu.Unlock()
	if deadlocked {
		for i := range m.boxes {
			m.boxes[i].cond.Broadcast()
		}
	}
	for i := range m.boxes {
		m.boxes[i].mu.Unlock()
	}
}

// wakeAll unblocks every waiting processor after the down flag is set.
func (m *Machine) wakeAll() {
	for i := range m.boxes {
		mb := &m.boxes[i]
		mb.mu.Lock()
		mb.cond.Broadcast()
		mb.mu.Unlock()
	}
}
