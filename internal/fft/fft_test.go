package fft

import (
	"math"
	"math/cmplx"
	"testing"
	"testing/quick"

	"repro/internal/kf"
	"repro/internal/machine"
	"repro/internal/topology"
)

// transform runs the distributed FFT of f on p processors and returns the
// naturally ordered spectrum.
func transform(t *testing.T, p, n int, f func(i int) complex128) []complex128 {
	t.Helper()
	m := machine.New(p, machine.ZeroComm())
	g := topology.New1D(p)
	var out []complex128
	err := kf.Exec(m, g, func(c *kf.Ctx) error {
		d := NewData(c, n, f)
		res, err := Transform(c, d)
		if err != nil {
			return err
		}
		spec := GatherOrdered(c, res)
		if c.GridIndex() == 0 {
			out = spec
		}
		return nil
	})
	if err != nil {
		t.Fatal(err)
	}
	return out
}

func maxErr(a, b []complex128) float64 {
	worst := 0.0
	for i := range a {
		if d := cmplx.Abs(a[i] - b[i]); d > worst {
			worst = d
		}
	}
	return worst
}

func TestImpulseGivesFlatSpectrum(t *testing.T) {
	got := transform(t, 4, 32, func(i int) complex128 {
		if i == 0 {
			return 1
		}
		return 0
	})
	for k, v := range got {
		if cmplx.Abs(v-1) > 1e-12 {
			t.Errorf("X[%d] = %v, want 1", k, v)
		}
	}
}

func TestConstantGivesDelta(t *testing.T) {
	const n = 32
	got := transform(t, 4, n, func(i int) complex128 { return 1 })
	if cmplx.Abs(got[0]-complex(float64(n), 0)) > 1e-10 {
		t.Errorf("X[0] = %v, want %d", got[0], n)
	}
	for k := 1; k < n; k++ {
		if cmplx.Abs(got[k]) > 1e-10 {
			t.Errorf("X[%d] = %v, want 0", k, got[k])
		}
	}
}

func TestSingleToneLandsInOneBin(t *testing.T) {
	const n, tone = 64, 5
	got := transform(t, 8, n, func(i int) complex128 {
		return cmplx.Exp(complex(0, 2*math.Pi*tone*float64(i)/float64(n)))
	})
	for k := 0; k < n; k++ {
		want := complex(0, 0)
		if k == tone {
			want = complex(float64(n), 0)
		}
		if cmplx.Abs(got[k]-want) > 1e-9 {
			t.Errorf("X[%d] = %v, want %v", k, got[k], want)
		}
	}
}

func TestMatchesDFTProperty(t *testing.T) {
	f := func(seed int64) bool {
		const n = 32
		s := uint64(seed)
		next := func() float64 {
			s = s*6364136223846793005 + 1442695040888963407
			return float64(s>>40)/float64(1<<24) - 0.5
		}
		x := make([]complex128, n)
		for i := range x {
			x[i] = complex(next(), next())
		}
		got := transform(t, 4, n, func(i int) complex128 { return x[i] })
		want := DFT(x)
		return maxErr(got, want) < 1e-9
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 20}); err != nil {
		t.Fatal(err)
	}
}

func TestParallelMatchesSequential(t *testing.T) {
	const n = 64
	input := func(i int) complex128 {
		return complex(math.Sin(float64(i)*0.3), math.Cos(float64(i)*0.17))
	}
	ref := transform(t, 1, n, input)
	for _, p := range []int{2, 4, 8} {
		got := transform(t, p, n, input)
		if e := maxErr(got, ref); e > 1e-10 {
			t.Errorf("p=%d: max error %v vs sequential", p, e)
		}
	}
}

func TestRoundTripViaConjugate(t *testing.T) {
	// IFFT(x) = conj(FFT(conj(x)))/n: two forward transforms recover the
	// input.
	const n, p = 64, 4
	input := make([]complex128, n)
	for i := range input {
		input[i] = complex(float64(i%7)-3, float64(i%5)-2)
	}
	fwd := transform(t, p, n, func(i int) complex128 { return input[i] })
	back := transform(t, p, n, func(i int) complex128 { return cmplx.Conj(fwd[i]) })
	worst := 0.0
	for i := range input {
		rec := cmplx.Conj(back[i]) / complex(float64(n), 0)
		if d := cmplx.Abs(rec - input[i]); d > worst {
			worst = d
		}
	}
	if worst > 1e-10 {
		t.Errorf("round trip error %v", worst)
	}
}

func TestBitReverseIndex(t *testing.T) {
	cases := []struct{ i, n, want int }{
		{0, 8, 0}, {1, 8, 4}, {2, 8, 2}, {3, 8, 6},
		{4, 8, 1}, {5, 8, 5}, {6, 8, 3}, {7, 8, 7},
	}
	for _, c := range cases {
		if got := BitReverseIndex(c.i, c.n); got != c.want {
			t.Errorf("BitReverseIndex(%d, %d) = %d, want %d", c.i, c.n, got, c.want)
		}
	}
	// Involution property.
	for i := 0; i < 64; i++ {
		if BitReverseIndex(BitReverseIndex(i, 64), 64) != i {
			t.Errorf("bit reversal not an involution at %d", i)
		}
	}
}

func TestTransformRejectsBadShapes(t *testing.T) {
	m := machine.New(4, machine.ZeroComm())
	g := topology.New1D(4)
	err := kf.Exec(m, g, func(c *kf.Ctx) error {
		// n < p^2.
		d := NewData(c, 8, func(i int) complex128 { return 1 })
		if _, err := Transform(c, d); err == nil {
			t.Error("n < p^2 accepted")
		}
		return nil
	})
	if err != nil {
		t.Fatal(err)
	}
}

func TestCommunicationIsOneRedistribution(t *testing.T) {
	// The transform's only interprocessor traffic is the cyclic->block
	// redistribution: per processor, at most p-1 messages out.
	const n, p = 64, 4
	m := machine.New(p, machine.IPSC2())
	g := topology.New1D(p)
	err := kf.Exec(m, g, func(c *kf.Ctx) error {
		d := NewData(c, n, func(i int) complex128 { return complex(float64(i), 0) })
		_, err := Transform(c, d)
		return err
	})
	if err != nil {
		t.Fatal(err)
	}
	st := m.TotalStats()
	maxMsgs := int64(2 * p * (p - 1)) // two arrays, all-to-all each
	if st.MsgsSent > maxMsgs {
		t.Errorf("transform sent %d messages, want <= %d", st.MsgsSent, maxMsgs)
	}
}
