// Package fft implements a distributed radix-2 fast Fourier transform —
// the second one-dimensional kernel the paper's Section 3 names ("other
// 'one-dimensional kernels' frequently needed are cubic spline fitting
// routines, Fast Fourier Transforms, and so forth").
//
// The transform is decimation-in-frequency over complex data stored as two
// distributed arrays (real and imaginary). It is the classic
// "transpose" distributed FFT expressed in KF1 terms:
//
//   - under a CYCLIC distribution, butterflies with span h are local
//     whenever p divides h, so the large-span stages (h = n/2 ... p) run
//     without communication;
//   - one Redistribute to a BLOCK distribution then makes every remaining
//     small-span stage local (segments of size 2h <= n/p fit inside one
//     block).
//
// All interprocessor movement is the single redistribution — exactly the
// kind of distribution change the paper's constructs make a one-line
// declaration instead of a hand-written message schedule. Requires n >= p²
// so the two phases cover all stages.
package fft

import (
	"fmt"
	"math"
	"math/cmplx"

	"repro/internal/darray"
	"repro/internal/dist"
	"repro/internal/kf"
)

// Data is a distributed complex vector: two equally distributed arrays.
type Data struct {
	// Re and Im hold the real and imaginary parts.
	Re, Im *darray.Array
}

// NewData allocates a cyclic-distributed complex vector of length n on the
// subroutine's grid, filled from f.
func NewData(c *kf.Ctx, n int, f func(i int) complex128) Data {
	spec := darray.Spec{Extents: []int{n}, Dists: []dist.Dist{dist.Cyclic{}}}
	re := c.NewArray(spec)
	im := c.NewArray(spec)
	re.Fill(func(idx []int) float64 { return real(f(idx[0])) })
	im.Fill(func(idx []int) float64 { return imag(f(idx[0])) })
	return Data{Re: re, Im: im}
}

// Transform runs the forward FFT in place(-ish): it consumes d (which must
// be cyclic-distributed) and returns the transformed vector in
// BIT-REVERSED order under a block distribution, as decimation-in-frequency
// naturally produces. Use GatherOrdered to obtain the naturally ordered
// spectrum on one processor, or BitReverseIndex to address the distributed
// result directly. Every processor of c.G must call Transform.
func Transform(c *kf.Ctx, d Data) (Data, error) {
	n := d.Re.Extent(0)
	p := c.G.Size()
	if n&(n-1) != 0 {
		return Data{}, fmt.Errorf("fft: length %d is not a power of two", n)
	}
	if p > 1 && n < p*p {
		return Data{}, fmt.Errorf("fft: need n >= p^2 (n=%d, p=%d) for the two-phase schedule", n, p)
	}
	if _, isCyclic := d.Re.Dist(0).(dist.Cyclic); !isCyclic && p > 1 {
		return Data{}, fmt.Errorf("fft: input must be cyclic-distributed, got %s", d.Re.Dist(0).Name())
	}

	// Phase 1: large spans under the cyclic distribution (p | h keeps
	// partners co-resident).
	h := n / 2
	for ; h >= p && h >= 1; h /= 2 {
		butterflies(c, d, n, h)
	}
	// Phase 2: redistribute to block; the remaining segments (size 2h)
	// fit inside single blocks.
	if p > 1 {
		sc := c.NextScope()
		blockSpec := darray.Spec{Extents: []int{n}, Dists: []dist.Dist{dist.Block{}}}
		d = Data{
			Re: d.Re.Redistribute(sc.Child(0, 0), c.G, blockSpec),
			Im: d.Im.Redistribute(sc.Child(1, 0), c.G, blockSpec),
		}
	}
	for ; h >= 1; h /= 2 {
		butterflies(c, d, n, h)
	}
	return d, nil
}

// butterflies applies one decimation-in-frequency stage of span h to the
// locally owned lower-half points. Ownership of both partners is
// guaranteed by the phase structure of Transform.
func butterflies(c *kf.Ctx, d Data, n, h int) {
	ops := 0
	d.Re.OwnedEach(func(idx []int) {
		i := idx[0]
		if i%(2*h) >= h {
			return // upper half: handled with its partner
		}
		t := i % (2 * h)
		w := cmplx.Exp(complex(0, -2*math.Pi*float64(t)/float64(2*h)))
		u := complex(d.Re.At1(i), d.Im.At1(i))
		v := complex(d.Re.At1(i+h), d.Im.At1(i+h))
		sum := u + v
		diff := (u - v) * w
		d.Re.Set1(i, real(sum))
		d.Im.Set1(i, imag(sum))
		d.Re.Set1(i+h, real(diff))
		d.Im.Set1(i+h, imag(diff))
		ops++
	})
	c.P.Compute(10 * ops)
}

// BitReverseIndex returns the bit-reversal of i over log2(n) bits: the
// natural-order position of element i of a Transform result.
func BitReverseIndex(i, n int) int {
	bits := 0
	for v := n; v > 1; v >>= 1 {
		bits++
	}
	r := 0
	for b := 0; b < bits; b++ {
		r = r<<1 | (i>>b)&1
	}
	return r
}

// GatherOrdered collects the bit-reversed transform onto grid index root
// and returns the naturally ordered spectrum there (nil elsewhere).
func GatherOrdered(c *kf.Ctx, d Data) []complex128 {
	sc := c.NextScope()
	re := d.Re.GatherTo(sc.Child(0, 0), 0)
	im := d.Im.GatherTo(sc.Child(1, 0), 0)
	if re == nil {
		return nil
	}
	n := len(re)
	out := make([]complex128, n)
	for i := 0; i < n; i++ {
		out[BitReverseIndex(i, n)] = complex(re[i], im[i])
	}
	return out
}

// DFT is the O(n²) reference transform used by tests.
func DFT(x []complex128) []complex128 {
	n := len(x)
	out := make([]complex128, n)
	for k := 0; k < n; k++ {
		var s complex128
		for j := 0; j < n; j++ {
			s += x[j] * cmplx.Exp(complex(0, -2*math.Pi*float64(k*j)/float64(n)))
		}
		out[k] = s
	}
	return out
}
