// Argument schemas for the registered programs. The registry's (name,
// args) pairs arrive from two untrusted directions — run specs shipped to
// ipc workers, and HTTP request bodies fed to kfserve — so every factory
// validates against a declared schema and rejects malformed input with a
// structured *ArgError naming the argument and its allowed range, never a
// panic and never a silently absurd allocation (a 10^9-point Jacobi grid
// is a denial of service, not a computation).
package progs

import (
	"fmt"
	"math"
	"strings"
	"sync"
)

// ArgSpec declares one argument of a registered program: its name, its
// closed allowed range, and whether it must be integral. Serving layers
// surface schemas to clients (see Schemas), so the names here are API.
type ArgSpec struct {
	Name    string  `json:"name"`
	Min     float64 `json:"min"`
	Max     float64 `json:"max"`
	Integer bool    `json:"integer,omitempty"`
}

// ArgError is the structured rejection of a malformed argument list. Arg
// is empty for an arity mismatch; otherwise it names the offending
// argument and carries its allowed range, so callers (and HTTP clients)
// learn what would have been accepted, not just that something was not.
type ArgError struct {
	Prog     string  `json:"prog"`
	Arg      string  `json:"arg,omitempty"`
	Index    int     `json:"index"`
	Got      float64 `json:"got"`
	Min      float64 `json:"min"`
	Max      float64 `json:"max"`
	Integer  bool    `json:"integer,omitempty"`
	WantArgs int     `json:"want_args"`
	GotArgs  int     `json:"got_args"`
}

func (e *ArgError) Error() string {
	if e.Arg == "" {
		names, _ := Schema(e.Prog)
		parts := make([]string, len(names))
		for i, s := range names {
			parts[i] = s.Name
		}
		if len(parts) == 0 {
			return fmt.Sprintf("%s takes no args, got %d", e.Prog, e.GotArgs)
		}
		return fmt.Sprintf("%s takes %d args (%s), got %d",
			e.Prog, e.WantArgs, strings.Join(parts, ", "), e.GotArgs)
	}
	kind := "a value"
	if e.Integer {
		kind = "an integer"
	}
	return fmt.Sprintf("%s: arg %s (index %d) = %v: want %s in [%g, %g]",
		e.Prog, e.Arg, e.Index, e.Got, kind, e.Min, e.Max)
}

var (
	schemaMu sync.RWMutex
	schemas  = map[string][]ArgSpec{}
)

// registerSchema records a program's argument schema alongside its
// RegisterProgram call; like the program table, collisions are a
// programming error caught at init.
func registerSchema(prog string, specs ...ArgSpec) {
	schemaMu.Lock()
	defer schemaMu.Unlock()
	if _, dup := schemas[prog]; dup {
		panic(fmt.Sprintf("progs: schema for %q registered twice", prog))
	}
	schemas[prog] = specs
}

// Schema returns the declared argument schema of a registered program and
// whether the program has one.
func Schema(prog string) ([]ArgSpec, bool) {
	schemaMu.RLock()
	defer schemaMu.RUnlock()
	specs, ok := schemas[prog]
	return append([]ArgSpec(nil), specs...), ok
}

// Schemas returns a copy of every registered program's argument schema,
// for listing endpoints.
func Schemas() map[string][]ArgSpec {
	schemaMu.RLock()
	defer schemaMu.RUnlock()
	out := make(map[string][]ArgSpec, len(schemas))
	for prog, specs := range schemas {
		out[prog] = append([]ArgSpec(nil), specs...)
	}
	return out
}

// ValidateArgs checks an untrusted argument list against prog's declared
// schema: exact arity, every value finite and inside its closed range,
// integral where the schema says so. The error is always a *ArgError (so
// callers can errors.As it back out of wrapped build errors), except for
// programs with no schema at all, which are rejected outright.
func ValidateArgs(prog string, args []float64) error {
	specs, ok := Schema(prog)
	if !ok {
		return fmt.Errorf("progs: program %q has no argument schema", prog)
	}
	if len(args) != len(specs) {
		return &ArgError{Prog: prog, WantArgs: len(specs), GotArgs: len(args)}
	}
	for i, spec := range specs {
		v := args[i]
		// The negated comparison catches NaN along with out-of-range.
		if !(v >= spec.Min && v <= spec.Max) || (spec.Integer && v != math.Trunc(v)) {
			return &ArgError{
				Prog: prog, Arg: spec.Name, Index: i, Got: v,
				Min: spec.Min, Max: spec.Max, Integer: spec.Integer,
				WantArgs: len(specs), GotArgs: len(args),
			}
		}
	}
	return nil
}
