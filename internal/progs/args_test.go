package progs_test

import (
	"errors"
	"math"
	"strings"
	"testing"

	"repro/internal/core"
	"repro/internal/progs"
)

// Malformed argument lists must come back as structured *ArgError values
// naming the argument and its allowed range — kfserve feeds this path
// untrusted request bodies — and the structure must survive the registry's
// error wrapping so servers can errors.As it back out.
func TestValidateArgsStructuredErrors(t *testing.T) {
	cases := []struct {
		name    string
		prog    string
		args    []float64
		wantArg string // "" for an arity error
	}{
		{"jacobi arity", "jacobi", []float64{8}, ""},
		{"jacobi n zero", "jacobi", []float64{0, 2}, "n"},
		{"jacobi n fractional", "jacobi", []float64{8.5, 2}, "n"},
		{"jacobi n huge", "jacobi", []float64{1e9, 2}, "n"},
		{"jacobi n NaN", "jacobi", []float64{math.NaN(), 2}, "n"},
		{"jacobi iters negative", "jacobi", []float64{8, -1}, "iters"},
		{"jacobi iters inf", "jacobi", []float64{8, math.Inf(1)}, "iters"},
		{"adi arity", "adi", []float64{32, 1, 1}, ""},
		{"adi N below min", "adi", []float64{1, 1, 1, 0, 2}, "N"},
		{"madi A negative", "madi", []float64{32, -1, 1, 0, 2}, "A"},
		{"madi Rho NaN", "madi", []float64{32, 1, 1, math.NaN(), 2}, "Rho"},
		{"hostpid extra arg", "hostpid", []float64{1}, ""},
		{"crash fractional victim", "crash", []float64{0.5}, "victim"},
	}
	for _, tc := range cases {
		err := progs.ValidateArgs(tc.prog, tc.args)
		if err == nil {
			t.Errorf("%s: accepted", tc.name)
			continue
		}
		var ae *progs.ArgError
		if !errors.As(err, &ae) {
			t.Errorf("%s: error %T is not a *ArgError", tc.name, err)
			continue
		}
		if ae.Prog != tc.prog || ae.Arg != tc.wantArg {
			t.Errorf("%s: ArgError names (%q, %q), want (%q, %q)", tc.name, ae.Prog, ae.Arg, tc.prog, tc.wantArg)
		}
		if tc.wantArg != "" && !strings.Contains(err.Error(), "[") {
			t.Errorf("%s: error %q does not state the allowed range", tc.name, err)
		}
	}
}

func TestBuildProgramWrapsArgError(t *testing.T) {
	_, err := core.BuildProgram("jacobi", -3, 2)
	if err == nil {
		t.Fatal("malformed args accepted")
	}
	var ae *progs.ArgError
	if !errors.As(err, &ae) {
		t.Fatalf("registry error %v does not unwrap to *ArgError", err)
	}
	if ae.Arg != "n" || ae.Min != 1 {
		t.Errorf("ArgError = %+v, want arg n with min 1", ae)
	}
}

func TestValidateArgsAcceptsSuiteShapes(t *testing.T) {
	ok := []struct {
		prog string
		args []float64
	}{
		{"jacobi", []float64{8, 0}},
		{"jacobi", []float64{2048, 1 << 20}},
		{"adi", []float64{64, 1, 1, 0, 2}},
		{"madi", []float64{24, 1, 1, 0, 8}},
		{"hostpid", nil},
		{"stall", nil},
		{"crash", []float64{3}},
	}
	for _, tc := range ok {
		if err := progs.ValidateArgs(tc.prog, tc.args); err != nil {
			t.Errorf("%s %v rejected: %v", tc.prog, tc.args, err)
		}
	}
}

func TestSchemasListEveryProgram(t *testing.T) {
	all := progs.Schemas()
	for _, name := range core.ProgramNames() {
		if _, ok := all[name]; !ok {
			t.Errorf("registered program %q has no argument schema", name)
		}
	}
	if specs, ok := progs.Schema("jacobi"); !ok || len(specs) != 2 || specs[0].Name != "n" {
		t.Errorf("jacobi schema = %v, %v", specs, ok)
	}
	if err := progs.ValidateArgs("no-such-program", nil); err == nil {
		t.Error("schema-less program accepted")
	}
}
