// Package progs is the process-wide program table: it registers the
// repo's benchmark programs (Jacobi, ADI, pipelined MADI) with the core
// registry and then arms worker-side execution. Importing it — anywhere in
// a binary — is what makes that binary exec-capable: coordinators ship
// (name, args) pairs to their ipc workers, and the workers, running this
// same init, rebuild bit-identical programs from the same table. The same
// property makes it the serving surface: kfserve accepts (name, args)
// pairs from HTTP request bodies, so every factory validates its args
// against a declared schema (see args.go) before touching them.
//
// The ordering inside init matters and is guaranteed by Go initialization:
// every RegisterProgram call runs before core.EnableWorkerExec, so a
// process re-entered as a worker daemon (KF_IPC_EXEC) has the full table
// before it starts accepting run specs.
package progs

import (
	"fmt"
	"os"

	"repro/internal/adi"
	"repro/internal/core"
	"repro/internal/jacobi"
	"repro/internal/kf"
)

// Schema bounds. The ranges are generous — they cover every experiment in
// the suite (the largest uses n = 128) with an order of magnitude to
// spare — but finite and small enough that the problem arrays a single
// request can demand stay tens of megabytes, not gigabytes: these args
// arrive from untrusted HTTP bodies.
const (
	maxN     = 2048    // points per problem dimension
	maxIters = 1 << 20 // iteration sweeps
)

func init() {
	registerSchema("jacobi",
		ArgSpec{Name: "n", Min: 1, Max: maxN, Integer: true},
		ArgSpec{Name: "iters", Min: 0, Max: maxIters, Integer: true})
	core.RegisterProgram("jacobi", func(args []float64) (*core.Program, error) {
		if err := ValidateArgs("jacobi", args); err != nil {
			return nil, err
		}
		return jacobiProgram(int(args[0]), int(args[1])), nil
	})

	adiSchema := []ArgSpec{
		{Name: "N", Min: 2, Max: maxN, Integer: true},
		{Name: "A", Min: 0, Max: 1e6},
		{Name: "B", Min: 0, Max: 1e6},
		{Name: "Rho", Min: 0, Max: 1e6},
		{Name: "Iters", Min: 0, Max: maxIters, Integer: true},
	}
	registerSchema("adi", adiSchema...)
	registerSchema("madi", adiSchema...)
	core.RegisterProgram("adi", adiFactory(false))
	core.RegisterProgram("madi", adiFactory(true))
	registerDiagnostics()
	core.EnableWorkerExec()
}

// The diagnostic programs exercise the execution plane itself rather than
// a numerical method: where does each rank run, what does a distributed
// stall look like, what happens when a host dies mid-run. They are
// registered here — not in a test file — because worker processes enter
// their daemon loop during this package's init, before any test-file init
// could add to the table; a program the workers cannot rebuild is a
// program the coordinator cannot ship.
func registerDiagnostics() {
	// hostpid: every rank reports the pid of the process hosting it. On a
	// single-process transport all values equal the caller's pid; on the
	// ipc execution plane each node's ranks report that node's worker.
	registerSchema("hostpid")
	core.RegisterProgram("hostpid", func(args []float64) (*core.Program, error) {
		if err := ValidateArgs("hostpid", args); err != nil {
			return nil, err
		}
		return &core.Program{
			Name: "hostpid",
			Body: func(c *kf.Ctx) (core.Output, error) {
				return core.Output{Values: []float64{float64(os.Getpid())}}, nil
			},
		}, nil
	})
	// stall: rank 0 waits forever on a message the last rank never sends —
	// a deliberate deadlock, for exercising stall detection. The error
	// every transport reports must be identical.
	registerSchema("stall")
	core.RegisterProgram("stall", func(args []float64) (*core.Program, error) {
		if err := ValidateArgs("stall", args); err != nil {
			return nil, err
		}
		return &core.Program{
			Name: "stall",
			Body: func(c *kf.Ctx) (core.Output, error) {
				if c.P.Rank() == 0 && c.G.Size() > 1 {
					c.P.Recv(c.G.Size()-1, 0x57)
				}
				return core.Output{Values: []float64{1}}, nil
			},
		}, nil
	})
	// crash: the victim rank kills its host process mid-run while rank 0
	// blocks on it — fault injection for the worker-loss path. It refuses
	// to run outside an ipc worker (it would kill the coordinator).
	registerSchema("crash", ArgSpec{Name: "victim", Min: 0, Max: 1 << 24, Integer: true})
	core.RegisterProgram("crash", func(args []float64) (*core.Program, error) {
		if err := ValidateArgs("crash", args); err != nil {
			return nil, err
		}
		victim := int(args[0])
		return &core.Program{
			Name: fmt.Sprintf("crash-r%d", victim),
			Body: func(c *kf.Ctx) (core.Output, error) {
				if os.Getenv("KF_IPC_NODE") == "" {
					return core.Output{}, fmt.Errorf("crash diagnostic must run inside an ipc worker")
				}
				switch c.P.Rank() {
				case victim:
					os.Exit(3)
				case 0:
					c.P.Recv(victim, 1)
				}
				return core.Output{Values: []float64{1}}, nil
			},
		}, nil
	})
}

// jacobiProgram builds the KF1 Jacobi iteration over the standard n x n
// test problem (jacobi.Problem): values are the gathered solution from
// rank 0, elapsed the iteration loop's finish time. The name is the
// metrics key the experiments have always used.
func jacobiProgram(n, iters int) *core.Program {
	x0, f := jacobi.Problem(n)
	return &core.Program{
		Name: fmt.Sprintf("jacobi-n%d-x%d", n, iters),
		Body: func(c *kf.Ctx) (core.Output, error) {
			flat, elapsed := jacobi.KF1Ctx(c, x0, f, iters)
			return core.Output{Values: flat, Elapsed: elapsed}, nil
		},
	}
}

// adiFactory returns the registry factory for the ADI iteration
// (pipelined = the paper's madi) over the standard smooth right-hand side
// (adi.TestProblem). Args are [N, A, B, Rho, Iters]; the diffusion
// coefficients and the Peaceman-Rachford parameter cross the wire as raw
// float64s, so coordinator and workers price the identical problem.
func adiFactory(pipelined bool) func(args []float64) (*core.Program, error) {
	name := "adi"
	if pipelined {
		name = "madi"
	}
	return func(args []float64) (*core.Program, error) {
		if err := ValidateArgs(name, args); err != nil {
			return nil, err
		}
		par := adi.Params{N: int(args[0]), A: args[1], B: args[2], Rho: args[3], Iters: int(args[4])}
		return adiProgram(par, pipelined), nil
	}
}

func adiProgram(par adi.Params, pipelined bool) *core.Program {
	name := "adi"
	if pipelined {
		name = "madi"
	}
	f := adi.TestProblem(par.N)
	return &core.Program{
		Name: fmt.Sprintf("%s-n%d-x%d", name, par.N, par.Iters),
		Body: func(c *kf.Ctx) (core.Output, error) {
			flat, _, elapsed := adi.ParallelCtx(c, par, f, pipelined)
			return core.Output{Values: flat, Elapsed: elapsed}, nil
		},
	}
}

// Jacobi builds the registered Jacobi program (n x n points, iters
// sweeps). Registry-built, so eligible systems execute it inside their ipc
// workers.
func Jacobi(n, iters int) (*core.Program, error) {
	return core.BuildProgram("jacobi", float64(n), float64(iters))
}

// ADI builds the registered ADI program (pipelined = madi) for par.
func ADI(par adi.Params, pipelined bool) (*core.Program, error) {
	name := "adi"
	if pipelined {
		name = "madi"
	}
	return core.BuildProgram(name, float64(par.N), par.A, par.B, par.Rho, float64(par.Iters))
}
