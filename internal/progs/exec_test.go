package progs_test

import (
	"errors"
	"os"
	"strings"
	"sync"
	"testing"
	"time"

	"repro/internal/adi"
	"repro/internal/core"
	"repro/internal/machine"
	"repro/internal/perfest"
	"repro/internal/progs"
)

// These tests run in an exec-armed binary (importing progs arms worker
// execution), so every ipc System here executes its ranks inside the
// worker processes — the relay path is covered by internal/machine's own
// tests, whose binary is not armed.

func mustSys(t *testing.T, opts ...core.Option) *core.System {
	t.Helper()
	sys, err := core.NewSystem(opts...)
	if err != nil {
		t.Fatal(err)
	}
	t.Cleanup(func() { sys.Close() })
	return sys
}

func mustProg(t *testing.T, name string, args ...float64) *core.Program {
	t.Helper()
	p, err := core.BuildProgram(name, args...)
	if err != nil {
		t.Fatal(err)
	}
	return p
}

func ipcTransport(t *testing.T, sys *core.System) *machine.IPCTransport {
	t.Helper()
	tr, ok := sys.Machine.Transport().(*machine.IPCTransport)
	if !ok {
		t.Fatalf("system transport is %T, want *machine.IPCTransport", sys.Machine.Transport())
	}
	return tr
}

func TestRanksRunInsideWorkers(t *testing.T) {
	// The tentpole's defining property, observed directly: each rank of a
	// distributed run reports the pid of the process that hosted it, and
	// those pids are the worker fleet's — never the coordinator's.
	sys := mustSys(t, core.Grid(2, 2), core.Transport("ipc"), core.Nodes(2))
	run, err := sys.RunProgram(mustProg(t, "hostpid"))
	if err != nil {
		t.Fatal(err)
	}
	if len(run.Values) != 4 {
		t.Fatalf("hostpid values = %v, want one per rank", run.Values)
	}
	coord := float64(os.Getpid())
	pids := ipcTransport(t, sys).WorkerPIDs()
	if len(pids) != 2 {
		t.Fatalf("worker fleet pids = %v, want 2", pids)
	}
	for rank, v := range run.Values {
		if v == coord {
			t.Errorf("rank %d ran in the coordinator process", rank)
		}
		node := rank / 2
		if v != float64(pids[node]) {
			t.Errorf("rank %d ran in pid %v, want node %d worker pid %d", rank, v, node, pids[node])
		}
	}
	// The coordinator's own sub-machine never executed a rank: its clocks
	// are untouched while the assembled run carries the workers' times.
	if got := sys.Machine.Elapsed(); got != 0 {
		t.Errorf("coordinator machine elapsed = %v after a distributed run, want 0", got)
	}
}

// TestWorkerExecConformance is the transport-invariance verdict with ranks
// in the workers: values, censuses and virtual times bit-identical to a
// shared-memory run, under both the goroutine and calendar executors.
func TestWorkerExecConformance(t *testing.T) {
	par := adi.Params{N: 32, A: 1, B: 1, Iters: 2}
	jp, err := progs.Jacobi(64, 2)
	if err != nil {
		t.Fatal(err)
	}
	ap, err := progs.ADI(par, true)
	if err != nil {
		t.Fatal(err)
	}
	for _, executor := range []string{"goroutine", "calendar"} {
		for _, prog := range []*core.Program{jp, ap} {
			t.Run(executor+"/"+prog.Name, func(t *testing.T) {
				shared := mustSys(t, core.Grid(4, 4), core.Executor(executor))
				ipc := mustSys(t, core.Grid(4, 4), core.Executor(executor), core.Transport("ipc"), core.Nodes(4))
				cmp, err := core.Compare(prog, shared, ipc)
				if err != nil {
					t.Fatal(err)
				}
				if !cmp.Identical || !cmp.TimesIdentical {
					t.Errorf("shared vs ipc(workers): values=%v census=%v times=%v",
						cmp.ValuesIdentical, cmp.CensusIdentical, cmp.TimesIdentical)
				}
				if cmp.B.Links == nil {
					t.Error("distributed run has no link census")
				}
				if len(ipcTransport(t, ipc).WorkerPIDs()) != 4 {
					t.Error("distributed run spawned no worker fleet")
				}
			})
		}
	}
}

// TestWorkerExecTCPLoopback is the same conformance row over a TCP
// listener instead of unix sockets (core.ListenAddr).
func TestWorkerExecTCPLoopback(t *testing.T) {
	shared := mustSys(t, core.Grid(2, 2))
	ipc := mustSys(t, core.Grid(2, 2), core.Transport("ipc"), core.Nodes(2),
		core.ListenAddr("127.0.0.1:0"))
	cmp, err := core.Compare(mustProg(t, "jacobi", 32, 2), shared, ipc)
	if err != nil {
		t.Fatal(err)
	}
	if !cmp.Identical || !cmp.TimesIdentical {
		t.Errorf("shared vs ipc-over-tcp: values=%v census=%v times=%v",
			cmp.ValuesIdentical, cmp.CensusIdentical, cmp.TimesIdentical)
	}
}

// TestDistributedStallMatchesLocal pins the distributed stall verdict to
// the single-process one: the same deliberately deadlocked program must
// fail with the byte-identical error text, and the machine-level cause
// must survive the process boundary for errors.Is.
func TestDistributedStallMatchesLocal(t *testing.T) {
	shared := mustSys(t, core.Grid(2, 2))
	ipc := mustSys(t, core.Grid(2, 2), core.Transport("ipc"), core.Nodes(2))
	prog := mustProg(t, "stall")
	_, localErr := shared.RunProgram(prog)
	if localErr == nil || !errors.Is(localErr, machine.ErrDeadlock) {
		t.Fatalf("shared run of stall program: %v, want a deadlock", localErr)
	}
	_, distErr := ipc.RunProgram(prog)
	if distErr == nil {
		t.Fatal("distributed run of stall program succeeded")
	}
	if !errors.Is(distErr, machine.ErrDeadlock) {
		t.Errorf("distributed stall error does not wrap machine.ErrDeadlock: %v", distErr)
	}
	if localErr.Error() != distErr.Error() {
		t.Errorf("stall error text diverges across the process boundary:\n  local: %s\n  dist:  %s",
			localErr, distErr)
	}
	// The fleet survives the verdict: the same transport runs the next
	// program normally.
	if _, err := ipc.RunProgram(mustProg(t, "jacobi", 32, 1)); err != nil {
		t.Errorf("run after a distributed stall verdict: %v", err)
	}
}

// TestWorkerCrashMidRunNamesNode is the worker-loss path with ranks
// executing remotely: a worker process dying mid-run must surface a
// structured ErrWorkerLost naming the node, and Run must unblock.
func TestWorkerCrashMidRunNamesNode(t *testing.T) {
	ipc := mustSys(t, core.Grid(2, 2), core.Transport("ipc"), core.Nodes(2))
	_, err := ipc.RunProgram(mustProg(t, "crash", 3)) // rank 3 lives on node 1
	if err == nil {
		t.Fatal("run survived its worker crashing")
	}
	if !errors.Is(err, machine.ErrWorkerLost) {
		t.Errorf("crash error does not wrap ErrWorkerLost: %v", err)
	}
	if !strings.Contains(err.Error(), "node 1") {
		t.Errorf("crash error does not name the lost node: %v", err)
	}
}

// TestSystemDoubleCloseDuringRun is the Close regression: closing an ipc
// System twice, concurrently, while a distributed run is in flight must
// not hang or panic — the run aborts and both Closes return cleanly.
func TestSystemDoubleCloseDuringRun(t *testing.T) {
	ipc := mustSys(t, core.Grid(2, 2), core.Transport("ipc"), core.Nodes(2))
	runErr := make(chan error, 1)
	go func() {
		_, err := ipc.RunProgram(mustProg(t, "stall"))
		runErr <- err
	}()
	// Wait until the fleet exists — the run is past setup and in flight.
	tr := ipcTransport(t, ipc)
	for i := 0; len(tr.WorkerPIDs()) < 2 && i < 2000; i++ {
		time.Sleep(time.Millisecond)
	}
	var wg sync.WaitGroup
	for i := 0; i < 2; i++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			if err := ipc.Close(); err != nil {
				t.Errorf("Close: %v", err)
			}
		}()
	}
	wg.Wait()
	select {
	case err := <-runErr:
		if err == nil {
			t.Error("stall run reported success")
		}
	case <-time.After(30 * time.Second):
		t.Fatal("in-flight run never unblocked after Close")
	}
	if _, err := ipc.RunProgram(mustProg(t, "jacobi", 32, 1)); err == nil {
		t.Error("RunProgram succeeded on a closed system")
	}
}

// TestWireTrafficMatchesPerfEst is the execution-plane payoff, pinned
// exactly: with ranks inside the workers the socket link census is the
// genuine inter-node edge set, so differencing two iteration counts must
// reproduce perfest's combinatorial enumeration bit-for-bit.
func TestWireTrafficMatchesPerfEst(t *testing.T) {
	const n, p, nodes = 256, 16, 4
	ipc := mustSys(t, core.Grid(p, p), core.Transport("ipc"), core.Nodes(nodes))
	runA, err := ipc.RunProgram(mustProg(t, "jacobi", n, 3))
	if err != nil {
		t.Fatal(err)
	}
	runB, err := ipc.RunProgram(mustProg(t, "jacobi", n, 5))
	if err != nil {
		t.Fatal(err)
	}
	diff := runB.Links.Sub(runA.Links)
	if diff == nil {
		t.Fatal("distributed runs produced no link censuses")
	}
	dMsgs, dBytes := diff.Total()
	wantMsgs, wantBytes := perfest.JacobiInterNode(n, p, nodes)
	if int(dMsgs) != 2*wantMsgs || int(dBytes) != 2*wantBytes {
		t.Errorf("wire traffic per 2 iterations = %d msgs / %d bytes, want exactly %d / %d",
			dMsgs, dBytes, 2*wantMsgs, 2*wantBytes)
	}
}
