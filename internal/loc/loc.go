// Package loc measures program complexity for the paper's claim C1 ("the
// message passing version of a program is often five to ten times longer
// than the sequential version") by counting Go statements in named
// functions using go/parser. Statement counts are the language-neutral
// analogue of the Fortran line counts the paper talks about: they ignore
// comments, blank lines and formatting.
package loc

import (
	"fmt"
	"go/ast"
	"go/parser"
	"go/token"
	"os"
	"path/filepath"
)

// FuncStats describes the size of one function.
type FuncStats struct {
	// Name is the function's name.
	Name string
	// Statements is the number of statement nodes in the body,
	// including nested ones.
	Statements int
	// Lines is the source line span of the body.
	Lines int
}

// CountFile returns statistics for the named functions of a Go source
// file. Functions not found are reported as an error, so experiments fail
// loudly when a refactor renames their subjects.
func CountFile(path string, names ...string) (map[string]FuncStats, error) {
	fset := token.NewFileSet()
	f, err := parser.ParseFile(fset, path, nil, 0)
	if err != nil {
		return nil, fmt.Errorf("loc: %w", err)
	}
	want := make(map[string]bool, len(names))
	for _, n := range names {
		want[n] = true
	}
	out := make(map[string]FuncStats)
	for _, decl := range f.Decls {
		fd, ok := decl.(*ast.FuncDecl)
		if !ok || fd.Body == nil || !want[fd.Name.Name] {
			continue
		}
		stmts := 0
		ast.Inspect(fd.Body, func(n ast.Node) bool {
			if n == ast.Node(fd.Body) {
				return true // the root block is the body, not a statement of it
			}
			if _, isStmt := n.(ast.Stmt); isStmt {
				stmts++
			}
			return true
		})
		start := fset.Position(fd.Body.Lbrace).Line
		end := fset.Position(fd.Body.Rbrace).Line
		out[fd.Name.Name] = FuncStats{
			Name:       fd.Name.Name,
			Statements: stmts,
			Lines:      end - start + 1,
		}
	}
	for _, n := range names {
		if _, ok := out[n]; !ok {
			return nil, fmt.Errorf("loc: function %q not found in %s", n, path)
		}
	}
	return out, nil
}

// FindSource locates a source file of this module by its repository-relative
// path, trying the working directory and its parents (tests run from
// package directories).
func FindSource(rel string) (string, error) {
	dir, err := os.Getwd()
	if err != nil {
		return "", err
	}
	for {
		cand := filepath.Join(dir, rel)
		if _, err := os.Stat(cand); err == nil {
			return cand, nil
		}
		parent := filepath.Dir(dir)
		if parent == dir {
			return "", fmt.Errorf("loc: %s not found above working directory", rel)
		}
		dir = parent
	}
}
