package loc

import (
	"os"
	"path/filepath"
	"testing"
)

func writeTemp(t *testing.T, src string) string {
	t.Helper()
	dir := t.TempDir()
	path := filepath.Join(dir, "x.go")
	if err := os.WriteFile(path, []byte(src), 0o644); err != nil {
		t.Fatal(err)
	}
	return path
}

func TestCountFileStatements(t *testing.T) {
	path := writeTemp(t, `package x

// Small has 2 statements.
func Small() int {
	a := 1
	return a
}

// Big has nested statements which all count.
func Big() int {
	total := 0
	for i := 0; i < 10; i++ {
		if i%2 == 0 {
			total += i
		}
	}
	return total
}
`)
	stats, err := CountFile(path, "Small", "Big")
	if err != nil {
		t.Fatal(err)
	}
	if stats["Small"].Statements != 2 {
		t.Errorf("Small statements = %d, want 2", stats["Small"].Statements)
	}
	if stats["Big"].Statements <= stats["Small"].Statements {
		t.Errorf("Big (%d) should exceed Small (%d)",
			stats["Big"].Statements, stats["Small"].Statements)
	}
	if stats["Big"].Lines < 5 {
		t.Errorf("Big lines = %d", stats["Big"].Lines)
	}
}

func TestCountFileMissingFunction(t *testing.T) {
	path := writeTemp(t, "package x\nfunc A() {}\n")
	if _, err := CountFile(path, "NoSuch"); err == nil {
		t.Fatal("missing function did not error")
	}
}

func TestCountFileParseError(t *testing.T) {
	path := writeTemp(t, "this is not go")
	if _, err := CountFile(path, "A"); err == nil {
		t.Fatal("parse error not reported")
	}
}

func TestFindSourceLocatesRepoFile(t *testing.T) {
	// Running from internal/loc, the repo root is two levels up.
	path, err := FindSource("internal/jacobi/jacobi.go")
	if err != nil {
		t.Fatal(err)
	}
	if _, err := os.Stat(path); err != nil {
		t.Fatalf("reported path does not exist: %v", err)
	}
}

func TestFindSourceMissing(t *testing.T) {
	if _, err := FindSource("no/such/file_at_all.go"); err == nil {
		t.Fatal("missing file did not error")
	}
}
