// Package topology describes processor arrays — the "real estate agent" of
// the KF1 language. A Grid names a subset of a machine's processors and
// gives it a Cartesian shape; slices of a grid (a row, a column, a plane)
// are themselves grids and can be passed to parallel subroutines, which is
// the mechanism behind the paper's "distributed procedures".
package topology

import (
	"fmt"
	"strings"
)

// All marks a dimension kept whole when slicing a grid, analogous to the
// "*" in the paper's procs(ip, *) notation.
const All = -1

// Grid is an n-dimensional array of processor ranks. The zero value is not
// useful; construct grids with New or New1D and derive subgrids with Slice.
//
// Grids are immutable; all methods are safe for concurrent use from multiple
// simulated processors.
type Grid struct {
	shape   []int
	strides []int
	base    int   // rank of the grid's origin in the parent machine
	order   []int // dimensions sorted by stride, descending (see coordInto)
}

// finish precomputes the stride-descending dimension order used by
// coordinate decomposition, so CoordOf/Index/Contains do not re-sort (or
// allocate the order) per call.
func (g *Grid) finish() *Grid {
	g.order = make([]int, 0, len(g.shape))
	return g.finishInto()
}

// maxDims bounds the grid dimensionality served by the stack-allocated
// coordinate buffers of Index and Contains.
const maxDims = 8

// coordInto writes the grid coordinate of the given machine rank into
// coord (which must have length Dims()) and reports whether the rank
// belongs to the grid. It never allocates.
func (g *Grid) coordInto(rank int, coord []int) bool {
	rem := rank - g.base
	for _, d := range g.order {
		if rem < 0 {
			return false
		}
		c := rem / g.strides[d]
		if c >= g.shape[d] {
			return false
		}
		coord[d] = c
		rem -= c * g.strides[d]
	}
	return rem == 0
}

// New returns a grid of the given shape covering machine ranks
// 0..prod(shape)-1 in row-major order (the last dimension varies fastest).
func New(shape ...int) *Grid {
	if len(shape) == 0 {
		panic("topology: grid needs at least one dimension")
	}
	size := 1
	for _, s := range shape {
		if s <= 0 {
			panic(fmt.Sprintf("topology: invalid grid shape %v", shape))
		}
		size *= s
	}
	g := &Grid{shape: append([]int(nil), shape...), base: 0}
	g.strides = make([]int, len(shape))
	stride := 1
	for d := len(shape) - 1; d >= 0; d-- {
		g.strides[d] = stride
		stride *= shape[d]
	}
	return g.finish()
}

// New1D returns a one-dimensional grid of p processors (ranks 0..p-1).
func New1D(p int) *Grid { return New(p) }

// Dims returns the number of grid dimensions.
func (g *Grid) Dims() int { return len(g.shape) }

// Shape returns a copy of the grid's extents.
func (g *Grid) Shape() []int { return append([]int(nil), g.shape...) }

// Extent returns the length of dimension d.
func (g *Grid) Extent(d int) int { return g.shape[d] }

// Size returns the total number of processors in the grid.
func (g *Grid) Size() int {
	n := 1
	for _, s := range g.shape {
		n *= s
	}
	return n
}

// Rank returns the machine rank of the processor at the given grid
// coordinate.
func (g *Grid) Rank(coord ...int) int {
	if len(coord) != len(g.shape) {
		panic(fmt.Sprintf("topology: coordinate %v does not match grid shape %v", coord, g.shape))
	}
	r := g.base
	for d, c := range coord {
		if c < 0 || c >= g.shape[d] {
			panic(fmt.Sprintf("topology: coordinate %v out of grid shape %v", coord, g.shape))
		}
		r += c * g.strides[d]
	}
	return r
}

// RankAt returns the machine rank of the i-th processor of the grid in
// row-major enumeration order; RankAt(0) is the grid origin.
func (g *Grid) RankAt(i int) int {
	if i < 0 || i >= g.Size() {
		panic(fmt.Sprintf("topology: index %d out of grid of size %d", i, g.Size()))
	}
	r := g.base
	for d := len(g.shape) - 1; d >= 0; d-- {
		r += (i % g.shape[d]) * g.strides[d]
		i /= g.shape[d]
	}
	return r
}

// Ranks returns the machine ranks of all grid members in row-major order.
func (g *Grid) Ranks() []int {
	out := make([]int, g.Size())
	for i := range out {
		out[i] = g.RankAt(i)
	}
	return out
}

// CoordOf returns the grid coordinate of the given machine rank and whether
// the rank belongs to the grid. Coordinate decomposition peels dimensions
// in decreasing-stride order (strides are strictly decreasing products for
// contiguous grids, but sliced grids keep parent strides; the precomputed
// order handles the general case).
func (g *Grid) CoordOf(rank int) ([]int, bool) {
	coord := make([]int, len(g.shape))
	if !g.coordInto(rank, coord) {
		return nil, false
	}
	return coord, true
}

// Contains reports whether the machine rank belongs to the grid.
func (g *Grid) Contains(rank int) bool {
	var buf [maxDims]int
	if len(g.shape) > maxDims {
		_, ok := g.CoordOf(rank)
		return ok
	}
	return g.coordInto(rank, buf[:len(g.shape)])
}

// Index returns the row-major enumeration index of the given machine rank
// within the grid, and whether the rank belongs to the grid. It is the
// inverse of RankAt and never allocates.
func (g *Grid) Index(rank int) (int, bool) {
	var buf [maxDims]int
	var coord []int
	if len(g.shape) > maxDims {
		coord = make([]int, len(g.shape))
	} else {
		coord = buf[:len(g.shape)]
	}
	if !g.coordInto(rank, coord) {
		return 0, false
	}
	idx := 0
	for d, c := range coord {
		idx = idx*g.shape[d] + c
	}
	return idx, true
}

// Slice returns the subgrid obtained by fixing some dimensions. The spec
// must have one entry per dimension: All (-1) keeps a dimension, a
// non-negative index fixes (and removes) it. For example, for a 2-D grid g,
// g.Slice(i, All) is the i-th row — the paper's procs(i, *).
//
// The result shares rank arithmetic with the parent, so a slice of a slice
// behaves correctly.
func (g *Grid) Slice(spec ...int) *Grid {
	if len(spec) != len(g.shape) {
		panic(fmt.Sprintf("topology: slice spec %v does not match grid shape %v", spec, g.shape))
	}
	keep := 0
	for d, s := range spec {
		switch {
		case s == All:
			keep++
		case s >= 0 && s < g.shape[d]:
		default:
			panic(fmt.Sprintf("topology: slice index %d out of dimension %d (extent %d)", s, d, g.shape[d]))
		}
	}
	sub := &Grid{base: g.base}
	if keep == 0 {
		// Fully fixed: a single-processor grid, kept one-dimensional so
		// it can still host undistributed work.
		keep = 1
	}
	// One backing array for shape, strides and the decomposition order:
	// grids are built per section view, so construction stays cheap.
	backing := make([]int, 3*keep)
	sub.shape = backing[:0:keep]
	sub.strides = backing[keep : keep : 2*keep]
	for d, s := range spec {
		if s == All {
			sub.shape = append(sub.shape, g.shape[d])
			sub.strides = append(sub.strides, g.strides[d])
		} else {
			sub.base += s * g.strides[d]
		}
	}
	if len(sub.shape) == 0 {
		sub.shape = append(sub.shape, 1)
		sub.strides = append(sub.strides, 1)
	}
	sub.order = backing[2*keep : 2*keep : 3*keep]
	return sub.finishInto()
}

// finishInto is finish for grids whose order slice is already allocated.
func (g *Grid) finishInto() *Grid {
	for i := range g.shape {
		g.order = append(g.order, i)
	}
	for i := 1; i < len(g.order); i++ {
		for j := i; j > 0 && g.strides[g.order[j-1]] < g.strides[g.order[j]]; j-- {
			g.order[j-1], g.order[j] = g.order[j], g.order[j-1]
		}
	}
	return g
}

// Row returns the i-th row of a 2-D grid: Slice(i, All).
func (g *Grid) Row(i int) *Grid {
	if g.Dims() != 2 {
		panic("topology: Row requires a 2-D grid")
	}
	return g.Slice(i, All)
}

// Col returns the j-th column of a 2-D grid: Slice(All, j).
func (g *Grid) Col(j int) *Grid {
	if g.Dims() != 2 {
		panic("topology: Col requires a 2-D grid")
	}
	return g.Slice(All, j)
}

// String renders the grid shape and origin, for diagnostics.
func (g *Grid) String() string {
	parts := make([]string, len(g.shape))
	for i, s := range g.shape {
		parts[i] = fmt.Sprint(s)
	}
	return fmt.Sprintf("grid(%s)@%d", strings.Join(parts, "x"), g.base)
}
