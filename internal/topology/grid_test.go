package topology

import (
	"testing"
	"testing/quick"
)

func TestNew1DRanks(t *testing.T) {
	g := New1D(4)
	if g.Size() != 4 || g.Dims() != 1 {
		t.Fatalf("size=%d dims=%d", g.Size(), g.Dims())
	}
	for i := 0; i < 4; i++ {
		if g.Rank(i) != i {
			t.Errorf("Rank(%d) = %d", i, g.Rank(i))
		}
		if g.RankAt(i) != i {
			t.Errorf("RankAt(%d) = %d", i, g.RankAt(i))
		}
	}
}

func TestNew2DRowMajor(t *testing.T) {
	g := New(3, 4)
	if g.Size() != 12 {
		t.Fatalf("size = %d", g.Size())
	}
	if g.Rank(0, 0) != 0 || g.Rank(0, 3) != 3 || g.Rank(1, 0) != 4 || g.Rank(2, 3) != 11 {
		t.Errorf("row-major rank mapping broken: %d %d %d %d",
			g.Rank(0, 0), g.Rank(0, 3), g.Rank(1, 0), g.Rank(2, 3))
	}
}

func TestCoordOfInvertsRank(t *testing.T) {
	g := New(3, 4, 2)
	for i := 0; i < 3; i++ {
		for j := 0; j < 4; j++ {
			for k := 0; k < 2; k++ {
				r := g.Rank(i, j, k)
				c, ok := g.CoordOf(r)
				if !ok || c[0] != i || c[1] != j || c[2] != k {
					t.Errorf("CoordOf(%d) = %v,%v want [%d %d %d]", r, c, ok, i, j, k)
				}
			}
		}
	}
}

func TestSliceRow(t *testing.T) {
	g := New(4, 4)
	row2 := g.Slice(2, All)
	if row2.Dims() != 1 || row2.Size() != 4 {
		t.Fatalf("row: dims=%d size=%d", row2.Dims(), row2.Size())
	}
	want := []int{8, 9, 10, 11}
	for i, w := range want {
		if row2.RankAt(i) != w {
			t.Errorf("row2.RankAt(%d) = %d, want %d", i, row2.RankAt(i), w)
		}
	}
}

func TestSliceCol(t *testing.T) {
	g := New(4, 4)
	col1 := g.Slice(All, 1)
	want := []int{1, 5, 9, 13}
	for i, w := range want {
		if col1.RankAt(i) != w {
			t.Errorf("col1.RankAt(%d) = %d, want %d", i, col1.RankAt(i), w)
		}
	}
	if col1.Contains(2) {
		t.Error("col1 should not contain rank 2")
	}
	if !col1.Contains(9) {
		t.Error("col1 should contain rank 9")
	}
}

func TestSliceOfSlice(t *testing.T) {
	g := New(2, 3, 4)
	plane := g.Slice(1, All, All) // shape (3,4), base 12
	line := plane.Slice(All, 2)   // shape (3), ranks 14, 18, 22
	want := []int{14, 18, 22}
	for i, w := range want {
		if line.RankAt(i) != w {
			t.Errorf("line.RankAt(%d) = %d, want %d", i, line.RankAt(i), w)
		}
	}
}

func TestFullyFixedSliceIsSingleton(t *testing.T) {
	g := New(4, 4)
	one := g.Slice(3, 2)
	if one.Size() != 1 {
		t.Fatalf("size = %d", one.Size())
	}
	if one.RankAt(0) != 14 {
		t.Errorf("rank = %d, want 14", one.RankAt(0))
	}
	if !one.Contains(14) || one.Contains(13) {
		t.Error("membership wrong for singleton slice")
	}
}

func TestRowColHelpers(t *testing.T) {
	g := New(3, 5)
	if got := g.Row(1).Ranks(); len(got) != 5 || got[0] != 5 || got[4] != 9 {
		t.Errorf("Row(1) = %v", got)
	}
	if got := g.Col(2).Ranks(); len(got) != 3 || got[0] != 2 || got[2] != 12 {
		t.Errorf("Col(2) = %v", got)
	}
}

func TestIndexInvertsRankAt(t *testing.T) {
	g := New(4, 4).Slice(All, 3)
	for i := 0; i < g.Size(); i++ {
		r := g.RankAt(i)
		idx, ok := g.Index(r)
		if !ok || idx != i {
			t.Errorf("Index(RankAt(%d)) = %d,%v", i, idx, ok)
		}
	}
}

func TestContainsRejectsOutsiders(t *testing.T) {
	g := New(4, 4).Slice(All, 0) // ranks 0,4,8,12
	for r := 0; r < 16; r++ {
		want := r%4 == 0
		if g.Contains(r) != want {
			t.Errorf("Contains(%d) = %v, want %v", r, g.Contains(r), want)
		}
	}
}

func TestSlicePanicsOnBadSpec(t *testing.T) {
	g := New(4, 4)
	for _, spec := range [][]int{{1}, {All, All, All}, {4, All}, {-2, All}} {
		func() {
			defer func() {
				if recover() == nil {
					t.Errorf("Slice(%v) did not panic", spec)
				}
			}()
			g.Slice(spec...)
		}()
	}
}

func TestSlicesPartitionGrid(t *testing.T) {
	// Property: the rows of a 2-D grid partition its ranks.
	f := func(a, b uint8) bool {
		px, py := int(a%6)+1, int(b%6)+1
		g := New(px, py)
		seen := make(map[int]bool)
		for i := 0; i < px; i++ {
			for _, r := range g.Slice(i, All).Ranks() {
				if seen[r] {
					return false
				}
				seen[r] = true
			}
		}
		return len(seen) == g.Size()
	}
	if err := quick.Check(f, nil); err != nil {
		t.Fatal(err)
	}
}

func TestRankAtCoordRoundTripProperty(t *testing.T) {
	f := func(a, b, c uint8) bool {
		g := New(int(a%5)+1, int(b%5)+1, int(c%5)+1)
		for i := 0; i < g.Size(); i++ {
			r := g.RankAt(i)
			coord, ok := g.CoordOf(r)
			if !ok {
				return false
			}
			if g.Rank(coord...) != r {
				return false
			}
		}
		return true
	}
	if err := quick.Check(f, nil); err != nil {
		t.Fatal(err)
	}
}

func TestStringFormat(t *testing.T) {
	g := New(2, 3)
	if got := g.String(); got != "grid(2x3)@0" {
		t.Errorf("String() = %q", got)
	}
	if got := g.Slice(1, All).String(); got != "grid(3)@3" {
		t.Errorf("slice String() = %q", got)
	}
}
