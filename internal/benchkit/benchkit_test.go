package benchkit

import (
	"os"
	"path/filepath"
	"testing"
)

func TestLatestSnapshot(t *testing.T) {
	dir := t.TempDir()
	for _, name := range []string{
		"BENCH_1.json", "BENCH_4.json", "BENCH_12.json",
		"BENCH_x.json", "BENCH_3.json.bak", "notes.md",
	} {
		if err := os.WriteFile(filepath.Join(dir, name), []byte("{}"), 0o644); err != nil {
			t.Fatal(err)
		}
	}
	got, err := LatestSnapshot(dir)
	if err != nil {
		t.Fatal(err)
	}
	// Numeric, not lexicographic: 12 beats 4.
	if want := filepath.Join(dir, "BENCH_12.json"); got != want {
		t.Errorf("LatestSnapshot = %q, want %q", got, want)
	}
}

func TestCompareAllocsSlack(t *testing.T) {
	prev := SnapshotFile{Results: []Result{
		{Name: "zeroPin", AllocsPerOp: 0},
		{Name: "smallCount", AllocsPerOp: 5},
		{Name: "bigCount", AllocsPerOp: 20000},
	}}
	cur := SnapshotFile{Results: []Result{
		{Name: "zeroPin", AllocsPerOp: 1},      // zero pins are exact: regression
		{Name: "smallCount", AllocsPerOp: 6},   // amortization rounding: ok
		{Name: "bigCount", AllocsPerOp: 20600}, // beyond the 1% band: regression
	}}
	want := map[string]bool{"zeroPin": true, "smallCount": false, "bigCount": true}
	for _, d := range Compare(prev, cur, NsTolerance) {
		if d.Regression != want[d.Name] {
			t.Errorf("%s: regression=%v, want %v (%s)", d.Name, d.Regression, want[d.Name], d.Reason)
		}
	}
}

func TestLatestSnapshotEmpty(t *testing.T) {
	if _, err := LatestSnapshot(t.TempDir()); err == nil {
		t.Fatal("LatestSnapshot of a snapshotless dir did not error")
	}
}

func TestLatestSnapshotRepoRoot(t *testing.T) {
	// The repository itself must always resolve (the CI compare step
	// depends on it), and what it resolves must parse as a snapshot.
	path, err := LatestSnapshot("../..")
	if err != nil {
		t.Fatalf("repo root has no discoverable snapshot: %v", err)
	}
	if _, err := Load(path); err != nil {
		t.Fatalf("latest snapshot %s does not parse: %v", path, err)
	}
}
