// Package benchkit defines the repository's perf-snapshot benchmarks — the
// host-side cost of the runtime's hot paths, shared between `go test
// -bench` (bench_test.go at the repo root) and the `kfbench -bench` JSON
// snapshot so both always measure the same thing — plus the snapshot file
// format and the compare mode CI uses to fail on regressions.
package benchkit

import (
	"encoding/json"
	"fmt"
	"os"
	"path/filepath"
	"regexp"
	"runtime"
	"strconv"
	"testing"

	"repro/internal/core"
	"repro/internal/darray"
	"repro/internal/dist"
	"repro/internal/experiments"
	"repro/internal/jacobi"
	"repro/internal/kf"
	"repro/internal/machine"
	"repro/internal/progs"
	"repro/internal/serve"
)

// Result is one benchmark's snapshot entry.
type Result struct {
	Name        string  `json:"name"`
	Iterations  int     `json:"iterations"`
	NsPerOp     float64 `json:"ns_per_op"`
	BytesPerOp  int64   `json:"bytes_per_op"`
	AllocsPerOp int64   `json:"allocs_per_op"`
}

// SnapshotFile is the on-disk format of a BENCH_<n>.json perf snapshot.
// GoMaxProcs and NumCPU record the host parallelism the numbers were taken
// under: benchmarks multiplexing thousands of virtual processors over a
// worker pool scale with it, so a compare across differing parallelism is
// flagged (see ParallelismWarning) rather than trusted blindly.
type SnapshotFile struct {
	Date       string `json:"date"`
	GoVersion  string `json:"go_version"`
	GoMaxProcs int    `json:"go_maxprocs,omitempty"`
	NumCPU     int    `json:"num_cpu,omitempty"`
	// Note carries free-form context for the snapshot — e.g. which change
	// the numbers bracket — surviving alongside the data it explains.
	Note    string   `json:"note,omitempty"`
	Results []Result `json:"results"`
}

// HostParallelism returns the GOMAXPROCS and CPU count a snapshot taken on
// this host should record.
func HostParallelism() (gomaxprocs, numCPU int) {
	return runtime.GOMAXPROCS(0), runtime.NumCPU()
}

// ParallelismWarning returns a non-empty advisory when two snapshots were
// taken under different host parallelism — the numbers are then comparing
// machines as much as code, so Compare's verdicts deserve suspicion but not
// failure. Snapshots predating the parallelism fields produce no warning.
func ParallelismWarning(prev, cur SnapshotFile) string {
	if prev.GoMaxProcs == 0 && prev.NumCPU == 0 {
		return ""
	}
	if prev.GoMaxProcs == cur.GoMaxProcs && prev.NumCPU == cur.NumCPU {
		return ""
	}
	return fmt.Sprintf("host parallelism differs: previous snapshot GOMAXPROCS=%d NumCPU=%d, current GOMAXPROCS=%d NumCPU=%d — deltas reflect the host as much as the code",
		prev.GoMaxProcs, prev.NumCPU, cur.GoMaxProcs, cur.NumCPU)
}

// Load reads a snapshot file.
func Load(path string) (SnapshotFile, error) {
	var s SnapshotFile
	data, err := os.ReadFile(path)
	if err != nil {
		return s, err
	}
	if err := json.Unmarshal(data, &s); err != nil {
		return s, fmt.Errorf("benchkit: parsing %s: %w", path, err)
	}
	return s, nil
}

// Save writes a snapshot file (or stdout for "-").
func Save(path string, s SnapshotFile) error {
	data, err := json.MarshalIndent(s, "", "  ")
	if err != nil {
		return err
	}
	data = append(data, '\n')
	if path == "-" {
		_, err = os.Stdout.Write(data)
		return err
	}
	return os.WriteFile(path, data, 0o644)
}

// snapshotName matches committed perf snapshots: BENCH_<n>.json.
var snapshotName = regexp.MustCompile(`^BENCH_(\d+)\.json$`)

// LatestSnapshot returns the path of the highest-numbered BENCH_<n>.json in
// dir — the snapshot a compare run should diff against, so CI does not need
// to name (and PRs do not need to edit) the current snapshot explicitly.
func LatestSnapshot(dir string) (string, error) {
	entries, err := os.ReadDir(dir)
	if err != nil {
		return "", err
	}
	best, bestN := "", -1
	for _, e := range entries {
		m := snapshotName.FindStringSubmatch(e.Name())
		if m == nil {
			continue
		}
		n, err := strconv.Atoi(m[1])
		if err != nil || n <= bestN {
			continue
		}
		best, bestN = e.Name(), n
	}
	if best == "" {
		return "", fmt.Errorf("benchkit: no BENCH_<n>.json snapshot in %s", dir)
	}
	return filepath.Join(dir, best), nil
}

// Delta describes one benchmark's change versus a previous snapshot.
type Delta struct {
	Name                  string
	PrevNs, CurNs         float64
	PrevAllocs, CurAllocs int64
	Regression            bool
	Reason                string
}

// NsTolerance is the default relative ns/op growth tolerated before a
// benchmark counts as regressed.
const NsTolerance = 0.25

// AllocsTolerance is the relative allocs/op growth tolerated. Allocation
// counts are deterministic on the runtime's steady-state paths — a
// zero-alloc pin tolerates no growth at all — but whole-program benchmarks
// carry noise: hundreds of simulated processors add O(concurrent mailbox
// keys) scheduling jitter (absorbed by the 1% band), and small nonzero
// counts are one-off setup costs amortized over b.N, which round up or
// down by one from run to run (absorbed by the one-alloc floor below).
const AllocsTolerance = 0.01

// allocsSlack returns the absolute allocs/op growth tolerated over a
// previous count: zero pins stay exact, any nonzero count gets at least
// the one-alloc rounding slack.
func allocsSlack(prev int64) int64 {
	if prev == 0 {
		return 0
	}
	if s := int64(float64(prev) * AllocsTolerance); s > 1 {
		return s
	}
	return 1
}

// Compare matches cur against prev by benchmark name and flags
// regressions: ns/op grown beyond nsTol, or allocs/op grown beyond
// allocsSlack (zero-alloc pins stay exact). Benchmarks missing from prev
// are reported without judgment; benchmarks present in prev but dropped
// from cur count as regressions, so coverage cannot silently shrink.
func Compare(prev, cur SnapshotFile, nsTol float64) []Delta {
	prevBy := make(map[string]Result, len(prev.Results))
	for _, r := range prev.Results {
		prevBy[r.Name] = r
	}
	curBy := make(map[string]bool, len(cur.Results))
	var out []Delta
	for _, r := range cur.Results {
		curBy[r.Name] = true
		d := Delta{Name: r.Name, CurNs: r.NsPerOp, CurAllocs: r.AllocsPerOp}
		p, ok := prevBy[r.Name]
		if !ok {
			d.Reason = "new benchmark"
			out = append(out, d)
			continue
		}
		d.PrevNs, d.PrevAllocs = p.NsPerOp, p.AllocsPerOp
		switch {
		case r.AllocsPerOp > p.AllocsPerOp+allocsSlack(p.AllocsPerOp):
			d.Regression = true
			d.Reason = fmt.Sprintf("allocs/op grew %d -> %d", p.AllocsPerOp, r.AllocsPerOp)
		case p.NsPerOp > 0 && r.NsPerOp > p.NsPerOp*(1+nsTol):
			d.Regression = true
			d.Reason = fmt.Sprintf("ns/op grew %.0f -> %.0f (>%.0f%%)", p.NsPerOp, r.NsPerOp, nsTol*100)
		}
		out = append(out, d)
	}
	for _, p := range prev.Results {
		if !curBy[p.Name] {
			out = append(out, Delta{
				Name:       p.Name,
				PrevNs:     p.NsPerOp,
				PrevAllocs: p.AllocsPerOp,
				Regression: true,
				Reason:     "benchmark removed from snapshot",
			})
		}
	}
	return out
}

// Bench is one named snapshot benchmark.
type Bench struct {
	Name string
	Fn   func(b *testing.B)
}

// GoVersion returns the toolchain version string recorded in snapshots.
func GoVersion() string { return runtime.Version() }

// Snapshot returns the benchmarks recorded in BENCH_<n>.json files: the
// hot paths whose trajectory across PRs matters most.
func Snapshot() []Bench {
	return []Bench{
		{"HaloExchange2D", HaloExchange2D},
		{"E4ADI", E4ADI},
		{"JacobiKF1Iteration", JacobiKF1Iteration},
		{"MachinePingPong", MachinePingPong},
		{"MachinePingPongFederated", MachinePingPongFederated},
		{"MachinePingPongFederatedPriced", MachinePingPongFederatedPriced},
		{"MachinePingPongIPC", MachinePingPongIPC},
		{"Jacobi64Proc", Jacobi64Proc},
		{"Jacobi256Proc", Jacobi256Proc},
		{"Jacobi1024ProcPriced", Jacobi1024ProcPriced},
		{"Jacobi1024ProcIPC4Node", Jacobi1024ProcIPC4Node},
		{"Jacobi16384Proc", Jacobi16384Proc},
		{"ServeWarmJacobi8x8", ServeWarmJacobi8x8},
		{"ServeColdJacobi8x8", ServeColdJacobi8x8},
	}
}

// MachinePingPong measures the host cost of one simulated message round
// trip (mailbox, virtual clocks, tracing off).
func MachinePingPong(b *testing.B) {
	b.ReportAllocs()
	m := core.MustSystem(core.Grid(2), core.Cost(machine.ZeroComm())).Machine
	b.ResetTimer()
	err := m.Run(func(p *machine.Proc) error {
		other := 1 - p.Rank()
		for i := 0; i < b.N; i++ {
			if p.Rank() == 0 {
				p.SendValue(other, 1, 1)
				p.RecvValue(other, 2)
			} else {
				p.RecvValue(other, 1)
				p.SendValue(other, 2, 1)
			}
		}
		return nil
	})
	if err != nil {
		b.Fatal(err)
	}
}

// MachinePingPongFederated measures one simulated message round trip
// crossing a federation link (two nodes of one processor each): the
// per-node mailbox plus per-link counter overhead versus the shared path.
func MachinePingPongFederated(b *testing.B) {
	b.ReportAllocs()
	m := core.MustSystem(core.Grid(2), core.Transport("federated"), core.Nodes(2),
		core.Cost(machine.ZeroComm())).Machine
	b.ResetTimer()
	err := m.Run(func(p *machine.Proc) error {
		other := 1 - p.Rank()
		for i := 0; i < b.N; i++ {
			if p.Rank() == 0 {
				p.SendValue(other, 1, 1)
				p.RecvValue(other, 2)
			} else {
				p.RecvValue(other, 1)
				p.SendValue(other, 2, 1)
			}
		}
		return nil
	})
	if err != nil {
		b.Fatal(err)
	}
}

// MachinePingPongIPC measures one simulated message round trip where the
// delivery crosses two OS processes: each message is framed, written to a
// node worker's Unix socket, reflected back and decoded into a pooled
// buffer. The gap to MachinePingPongFederated is the real price of the
// process boundary (syscalls plus the wire codec; the codec itself is
// allocation-free after warmup).
func MachinePingPongIPC(b *testing.B) {
	b.ReportAllocs()
	sys := core.MustSystem(core.Grid(2), core.Transport("ipc"), core.Nodes(2),
		core.Cost(machine.ZeroComm()))
	defer sys.Close()
	m := sys.Machine
	// Warm up the worker processes and buffer pools off the clock.
	if err := m.Run(func(p *machine.Proc) error {
		other := 1 - p.Rank()
		for i := 0; i < 64; i++ {
			if p.Rank() == 0 {
				p.SendValue(other, 1, 1)
				p.RecvValue(other, 2)
			} else {
				p.RecvValue(other, 1)
				p.SendValue(other, 2, 1)
			}
		}
		return nil
	}); err != nil {
		b.Fatal(err)
	}
	b.ResetTimer()
	err := m.Run(func(p *machine.Proc) error {
		other := 1 - p.Rank()
		for i := 0; i < b.N; i++ {
			if p.Rank() == 0 {
				p.SendValue(other, 1, 1)
				p.RecvValue(other, 2)
			} else {
				p.RecvValue(other, 1)
				p.SendValue(other, 2, 1)
			}
		}
		return nil
	})
	if err != nil {
		b.Fatal(err)
	}
}

// MachinePingPongFederatedPriced measures the round trip across a priced
// federation link: the per-link cost lookup (the hierarchical half of the
// cost model) on top of the federated delivery path. The virtual prices
// differ from MachinePingPongFederated; the host-side cost should not.
func MachinePingPongFederatedPriced(b *testing.B) {
	b.ReportAllocs()
	cost := machine.CostModel{Latency: 1e-6, BytePeriod: 1e-9}.WithInterNode(4, 8)
	m := core.MustSystem(core.Grid(2), core.Transport("federated"), core.Nodes(2),
		core.Cost(cost)).Machine
	b.ResetTimer()
	err := m.Run(func(p *machine.Proc) error {
		other := 1 - p.Rank()
		for i := 0; i < b.N; i++ {
			if p.Rank() == 0 {
				p.SendValue(other, 1, 1)
				p.RecvValue(other, 2)
			} else {
				p.RecvValue(other, 1)
				p.SendValue(other, 2, 1)
			}
		}
		return nil
	})
	if err != nil {
		b.Fatal(err)
	}
}

// HaloExchange2D measures one ghost exchange of a 256x256 block array on a
// 2x2 grid.
func HaloExchange2D(b *testing.B) {
	b.ReportAllocs()
	sys := core.MustSystem(core.Grid(2, 2), core.Cost(machine.ZeroComm()))
	_, err := sys.Run(func(c *kf.Ctx) error {
		a := c.NewArray(darray.Spec{
			Extents: []int{256, 256},
			Dists:   []dist.Dist{dist.Block{}, dist.Block{}},
			Halo:    []int{1, 1},
		})
		a.Fill(func(idx []int) float64 { return 1 })
		for i := 0; i < b.N; i++ {
			a.ExchangeHalo(c.NextScope())
		}
		return nil
	})
	if err != nil {
		b.Fatal(err)
	}
}

// JacobiKF1Iteration measures one KF1 Jacobi iteration, n=64 on a 2x2
// grid.
func JacobiKF1Iteration(b *testing.B) {
	b.ReportAllocs()
	x0, f := jacobi.Problem(64)
	b.ResetTimer()
	sys := core.MustSystem(core.Grid(2, 2), core.Cost(machine.ZeroComm()))
	if _, err := jacobi.KF1(sys.Machine, sys.Procs, x0, f, b.N); err != nil {
		b.Fatal(err)
	}
}

// E4ADI measures the full ADI experiment (claim E4).
func E4ADI(b *testing.B) {
	b.ReportAllocs()
	for i := 0; i < b.N; i++ {
		experiments.E4ADI()
	}
}

// Jacobi64Proc measures one KF1 Jacobi iteration at 64 simulated
// processors (8x8 grid, n=128): the host-side cost of the sharded mailbox
// layer plus schedule replay well past the paper's machine sizes.
func Jacobi64Proc(b *testing.B) {
	b.ReportAllocs()
	x0, f := jacobi.Problem(128)
	b.ResetTimer()
	sys := core.MustSystem(core.Grid(8, 8), core.Cost(machine.ZeroComm()))
	if _, err := jacobi.KF1(sys.Machine, sys.Procs, x0, f, b.N); err != nil {
		b.Fatal(err)
	}
}

// Jacobi256Proc measures a short KF1 Jacobi run (2 iterations, n=256) at
// 256 simulated processors on the federated transport (4 nodes of 64): the
// scaling target of the transport layer. Unlike the per-iteration
// benchmarks, each op is one whole fixed-size run — machine construction
// included — so allocs/op does not depend on b.N and the snapshot gate can
// hold it steady across machines.
func Jacobi256Proc(b *testing.B) {
	b.ReportAllocs()
	x0, f := jacobi.Problem(256)
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		sys := core.MustSystem(core.Grid(16, 16), core.Transport("federated"), core.Nodes(4),
			core.Cost(machine.ZeroComm()))
		if _, err := jacobi.KF1(sys.Machine, sys.Procs, x0, f, 2); err != nil {
			b.Fatal(err)
		}
	}
}

// Jacobi1024ProcPriced measures a short KF1 Jacobi run (1 iteration,
// n=256) at 1024 simulated processors on a 16-node federation under a
// hierarchical cost model — the S3 scaling target with per-link pricing on
// every send, driven by the calendar executor over one pooled system. Each
// op is one whole fixed-size run on the warmed system: repeated runs reuse
// the machine, the root contexts, the distributed arrays and the compiled
// sweep headers, so allocs/op is b.N-independent and counts only what a run
// inherently costs.
func Jacobi1024ProcPriced(b *testing.B) {
	b.ReportAllocs()
	x0, f := jacobi.Problem(256)
	cost := machine.CostModel{Latency: 1e-6, BytePeriod: 1e-9}.WithInterNode(4, 8)
	sys := core.MustSystem(core.Grid(32, 32), core.Transport("federated"), core.Nodes(16),
		core.Cost(cost), core.Executor("calendar"))
	// Two warm runs: the first builds (uncached, as any one-shot run
	// would), the second is the first reused run and installs the scratch
	// caches — so every timed op is a pure cache hit.
	for i := 0; i < 2; i++ {
		if _, err := jacobi.KF1(sys.Machine, sys.Procs, x0, f, 1); err != nil {
			b.Fatal(err)
		}
	}
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if _, err := jacobi.KF1(sys.Machine, sys.Procs, x0, f, 1); err != nil {
			b.Fatal(err)
		}
	}
}

// Jacobi1024ProcIPC4Node measures a whole distributed KF1 Jacobi run (1
// iteration, n=256) at 1024 simulated processors executed inside 4 ipc
// worker processes: each node's 256 ranks run as a calendar-driven
// sub-machine in its worker, and the coordinator's sockets carry only the
// genuinely inter-node halo edges (batched per flush). The gap to
// Jacobi1024ProcPriced is the real price of crossing process boundaries
// for the same machine shape; each op is one whole run on the warmed
// system, fleet spawn excluded.
func Jacobi1024ProcIPC4Node(b *testing.B) {
	b.ReportAllocs()
	prog, err := progs.Jacobi(256, 1)
	if err != nil {
		b.Fatal(err)
	}
	sys := core.MustSystem(core.Grid(32, 32), core.Transport("ipc"), core.Nodes(4),
		core.Cost(machine.ZeroComm()), core.Executor("calendar"))
	defer sys.Close()
	// Two warm runs: spawn the worker fleet and let each worker's
	// sub-machine install its scratch caches, so every timed op is a pure
	// cache hit on both sides of the sockets.
	for i := 0; i < 2; i++ {
		if _, err := sys.RunProgram(prog); err != nil {
			b.Fatal(err)
		}
	}
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if _, err := sys.RunProgram(prog); err != nil {
			b.Fatal(err)
		}
	}
}

// Jacobi16384Proc measures one KF1 Jacobi run (1 iteration, n=256) at 16384
// simulated processors — the 100k-virtual-processor regime's doorstep, far
// past any host's core count — multiplexed by the calendar executor over a
// bounded worker pool on the shared transport. Pooled like
// Jacobi1024ProcPriced: each op is one whole run on the warmed system.
func Jacobi16384Proc(b *testing.B) {
	b.ReportAllocs()
	x0, f := jacobi.Problem(256)
	sys := core.MustSystem(core.Grid(128, 128), core.Cost(machine.ZeroComm()),
		core.Executor("calendar"))
	// Two warm runs, as in Jacobi1024ProcPriced: build, then install the
	// scratch caches, so every timed op is a pure cache hit.
	for i := 0; i < 2; i++ {
		if _, err := jacobi.KF1(sys.Machine, sys.Procs, x0, f, 1); err != nil {
			b.Fatal(err)
		}
	}
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if _, err := jacobi.KF1(sys.Machine, sys.Procs, x0, f, 1); err != nil {
			b.Fatal(err)
		}
	}
}

// serveJacobiBench is the shared setup for the serve-path pair below: the
// registry Jacobi program on the repository's standard 8x8 grid, executed
// distributed inside 4 ipc worker processes — the configuration a kfserve
// tenant requesting {"program": "jacobi", "grid": [8,8], "transport":
// "ipc", "nodes": 4} lands on.
func serveJacobiBench(b *testing.B) (*core.Program, string, func() (*core.System, error)) {
	prog, err := progs.Jacobi(8, 1)
	if err != nil {
		b.Fatal(err)
	}
	key := core.PoolKey([]int{8, 8}, "ipc", 4, "", machine.CostModel{})
	build := func() (*core.System, error) {
		return core.NewSystem(core.Grid(8, 8), core.Transport("ipc"), core.Nodes(4))
	}
	return prog, key, build
}

// ServeWarmJacobi8x8 measures one request on kfserve's warm path: an
// exclusive pool checkout that hits a warmed System, one distributed
// Jacobi run inside the resident ipc worker fleet, and the return that
// files the System back as most-recently-used. The gap to
// ServeColdJacobi8x8 is what the pool saves every request: respawning the
// worker processes and rebuilding machine, transport and plan caches.
func ServeWarmJacobi8x8(b *testing.B) {
	b.ReportAllocs()
	prog, key, build := serveJacobiBench(b)
	pool := serve.NewPool(1)
	defer pool.Close()
	// Warm off the clock: the first checkout builds and the next two runs
	// settle the worker-side run caches, so every timed op is a pool hit.
	for i := 0; i < 3; i++ {
		lease, err := pool.Checkout(key, build)
		if err != nil {
			b.Fatal(err)
		}
		if _, err := lease.Sys.RunProgram(prog); err != nil {
			b.Fatal(err)
		}
		lease.Return()
	}
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		lease, err := pool.Checkout(key, build)
		if err != nil {
			b.Fatal(err)
		}
		if !lease.Hit() {
			b.Fatal("warm bench missed the pool")
		}
		if _, err := lease.Sys.RunProgram(prog); err != nil {
			b.Fatal(err)
		}
		lease.Return()
	}
}

// ServeColdJacobi8x8 measures the same request without the pool's help —
// the cold-construct-per-request baseline a server with no System reuse
// pays: every checkout misses, builds a fresh System (for ipc, spawning 4
// worker processes), runs once, and discards it (closing the fleet). The
// warm/cold ratio is the pool's amortization, recorded side by side in the
// perf snapshots.
func ServeColdJacobi8x8(b *testing.B) {
	b.ReportAllocs()
	prog, key, build := serveJacobiBench(b)
	pool := serve.NewPool(1)
	defer pool.Close()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		lease, err := pool.Checkout(key, build)
		if err != nil {
			b.Fatal(err)
		}
		if lease.Hit() {
			b.Fatal("cold bench hit the pool")
		}
		if _, err := lease.Sys.RunProgram(prog); err != nil {
			b.Fatal(err)
		}
		lease.Discard()
	}
}
