// Package benchkit defines the repository's perf-snapshot benchmarks: the
// host-side cost of the runtime's hot paths, shared between `go test
// -bench` (bench_test.go at the repo root) and the `kfbench -bench` JSON
// snapshot so both always measure the same thing.
package benchkit

import (
	"runtime"
	"testing"

	"repro/internal/darray"
	"repro/internal/dist"
	"repro/internal/experiments"
	"repro/internal/jacobi"
	"repro/internal/kf"
	"repro/internal/machine"
	"repro/internal/topology"
)

// Bench is one named snapshot benchmark.
type Bench struct {
	Name string
	Fn   func(b *testing.B)
}

// GoVersion returns the toolchain version string recorded in snapshots.
func GoVersion() string { return runtime.Version() }

// Snapshot returns the benchmarks recorded in BENCH_<n>.json files: the
// hot paths whose trajectory across PRs matters most.
func Snapshot() []Bench {
	return []Bench{
		{"HaloExchange2D", HaloExchange2D},
		{"E4ADI", E4ADI},
		{"JacobiKF1Iteration", JacobiKF1Iteration},
		{"MachinePingPong", MachinePingPong},
	}
}

// MachinePingPong measures the host cost of one simulated message round
// trip (mailbox, virtual clocks, tracing off).
func MachinePingPong(b *testing.B) {
	b.ReportAllocs()
	m := machine.New(2, machine.ZeroComm())
	b.ResetTimer()
	err := m.Run(func(p *machine.Proc) error {
		other := 1 - p.Rank()
		for i := 0; i < b.N; i++ {
			if p.Rank() == 0 {
				p.SendValue(other, 1, 1)
				p.RecvValue(other, 2)
			} else {
				p.RecvValue(other, 1)
				p.SendValue(other, 2, 1)
			}
		}
		return nil
	})
	if err != nil {
		b.Fatal(err)
	}
}

// HaloExchange2D measures one ghost exchange of a 256x256 block array on a
// 2x2 grid.
func HaloExchange2D(b *testing.B) {
	b.ReportAllocs()
	m := machine.New(4, machine.ZeroComm())
	g := topology.New(2, 2)
	err := kf.Exec(m, g, func(c *kf.Ctx) error {
		a := c.NewArray(darray.Spec{
			Extents: []int{256, 256},
			Dists:   []dist.Dist{dist.Block{}, dist.Block{}},
			Halo:    []int{1, 1},
		})
		a.Fill(func(idx []int) float64 { return 1 })
		for i := 0; i < b.N; i++ {
			a.ExchangeHalo(c.NextScope())
		}
		return nil
	})
	if err != nil {
		b.Fatal(err)
	}
}

// JacobiKF1Iteration measures one KF1 Jacobi iteration, n=64 on a 2x2
// grid.
func JacobiKF1Iteration(b *testing.B) {
	b.ReportAllocs()
	x0, f := jacobi.Problem(64)
	g := topology.New(2, 2)
	b.ResetTimer()
	m := machine.New(4, machine.ZeroComm())
	if _, err := jacobi.KF1(m, g, x0, f, b.N); err != nil {
		b.Fatal(err)
	}
}

// E4ADI measures the full ADI experiment (claim E4).
func E4ADI(b *testing.B) {
	b.ReportAllocs()
	for i := 0; i < b.N; i++ {
		experiments.E4ADI()
	}
}
