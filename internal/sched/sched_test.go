package sched

import (
	"testing"

	"repro/internal/machine"
)

func TestRunMergingAndCounts(t *testing.T) {
	var s Schedule
	s.BeginSend(1, 7)
	s.AddSendRun(0, 4)
	s.AddSendRun(4, 4) // adjacent: must merge
	s.AddSendRun(10, 2)
	if got := len(s.Sends[0].Runs); got != 2 {
		t.Fatalf("adjacent runs not merged: %d runs", got)
	}
	if s.Sends[0].N != 10 {
		t.Fatalf("message size %d, want 10", s.Sends[0].N)
	}
	s.AddMove(0, 5, 3)
	s.AddMove(3, 8, 2) // adjacent on both sides: must merge
	s.AddMove(9, 20, 1)
	if len(s.Local) != 2 || s.Local[0].Len != 5 {
		t.Fatalf("moves not merged: %+v", s.Local)
	}
	msgs, words := s.Counts()
	if msgs != 1 || words != 10 {
		t.Fatalf("Counts = (%d, %d), want (1, 10)", msgs, words)
	}
}

func TestExecuteRoundTrip(t *testing.T) {
	// Rank 0 sends two strided runs to rank 1; rank 1 unpacks them into a
	// shifted layout and mirrors the data back with a local move mixed in.
	m := machine.New(2, machine.ZeroComm())
	sc := machine.RootScope()
	err := m.Run(func(p *machine.Proc) error {
		if p.Rank() == 0 {
			src := []float64{1, 2, 3, 4, 5, 6, 7, 8}
			var s Schedule
			s.BeginSend(1, 1)
			s.AddSendRun(0, 2) // 1 2
			s.AddSendRun(4, 3) // 5 6 7
			s.Execute(p, sc, src, nil)

			var back Schedule
			back.BeginRecv(1, 2)
			back.AddRecvRun(1, 5)
			dst := make([]float64, 8)
			back.Execute(p, sc, nil, dst)
			want := []float64{0, 1, 2, 5, 6, 7, 0, 0}
			for i := range want {
				if dst[i] != want[i] {
					t.Errorf("round trip dst[%d] = %v, want %v", i, dst[i], want[i])
				}
			}
			return nil
		}
		var s Schedule
		s.BeginRecv(0, 1)
		s.AddRecvRun(2, 5)
		local := []float64{9, 9}
		_ = local
		dst := make([]float64, 8)
		s.Execute(p, sc, nil, dst)
		want := []float64{0, 0, 1, 2, 5, 6, 7, 0}
		for i := range want {
			if dst[i] != want[i] {
				t.Errorf("dst[%d] = %v, want %v", i, dst[i], want[i])
			}
		}
		var back Schedule
		back.BeginSend(0, 2)
		back.AddSendRun(2, 5)
		back.Execute(p, sc, dst, nil)
		return nil
	})
	if err != nil {
		t.Fatal(err)
	}
}

func TestExecuteLocalMovesAndSizeCheck(t *testing.T) {
	m := machine.New(1, machine.ZeroComm())
	err := m.Run(func(p *machine.Proc) error {
		src := []float64{1, 2, 3, 4}
		dst := make([]float64, 4)
		var s Schedule
		s.AddMove(1, 0, 2)
		s.Execute(p, machine.RootScope(), src, dst)
		if dst[0] != 2 || dst[1] != 3 {
			t.Errorf("local move wrote %v", dst)
		}
		return nil
	})
	if err != nil {
		t.Fatal(err)
	}
}
