// Package sched holds compiled communication schedules — the inspector half
// of the inspector/executor split the paper assigns to the KF1 compiler
// ("the compiler would hoist that derivation out of iterative loops so only
// the data motion repeats").
//
// An inspector (darray's halo/gather/move compilers, kf's loop plans) walks
// a distributed array's layout once and emits a Schedule: for every message,
// the peer rank, the tag part within the phase scope, the payload size, and
// the contiguous pack (or unpack) runs into the local flat storage. The
// executor, Execute, replays the schedule against any scope: it packs each
// send from pooled message buffers with plain copies, performs the purely
// local moves, then receives and unpacks in the compiled order. Replay
// performs no derivation and, in steady state, no heap allocation — the same
// messages, in the same order, with the same byte counts as the direct
// derivation it was compiled from, so virtual times are bit-identical.
//
// Schedules speak only to machine.Proc's Send/Recv, never to a delivery
// mechanism, so a compiled schedule replays unchanged — same messages, same
// virtual times — on any machine.Transport (shared-memory mailboxes or the
// node-federated transport); the machine package's conformance suite and
// experiment S2 hold every transport to that.
package sched

import (
	"fmt"

	"repro/internal/machine"
)

// Run is one contiguous run of values in a flat []float64 storage.
type Run struct {
	Off, Len int
}

// Msg is one compiled message: the peer's machine rank, the tag part
// distinguishing the stream within the executing phase's scope, the payload
// length in values, and the pack/unpack runs in payload order.
type Msg struct {
	Peer int
	Part uint16
	N    int
	Runs []Run
}

// Move is one purely local copy from the source storage to the destination
// storage (no message, no virtual-time cost — a compiler would never ship
// local data through the network).
type Move struct {
	SrcOff, DstOff, Len int
}

// Schedule is a compiled communication pattern: sends packed from the
// source storage, local moves, then receives unpacked into the destination
// storage. The zero value is an empty schedule and executes as a no-op.
type Schedule struct {
	Sends []Msg
	Local []Move
	Recvs []Msg
}

// AddSendRun appends a run to the last send message, merging with the
// previous run when storage-adjacent, and grows the message's size.
func (s *Schedule) AddSendRun(off, n int) { s.Sends[len(s.Sends)-1].add(off, n) }

// AddRecvRun appends a run to the last receive message, merging adjacent
// runs.
func (s *Schedule) AddRecvRun(off, n int) { s.Recvs[len(s.Recvs)-1].add(off, n) }

func (m *Msg) add(off, n int) {
	m.N += n
	if k := len(m.Runs); k > 0 {
		if last := &m.Runs[k-1]; last.Off+last.Len == off {
			last.Len += n
			return
		}
	}
	m.Runs = append(m.Runs, Run{Off: off, Len: n})
}

// AddMove appends a local move, merging with the previous move when both
// source and destination are adjacent.
func (s *Schedule) AddMove(srcOff, dstOff, n int) {
	if k := len(s.Local); k > 0 {
		if last := &s.Local[k-1]; last.SrcOff+last.Len == srcOff && last.DstOff+last.Len == dstOff {
			last.Len += n
			return
		}
	}
	s.Local = append(s.Local, Move{SrcOff: srcOff, DstOff: dstOff, Len: n})
}

// Counts returns the schedule's outgoing traffic: messages and values sent.
func (s *Schedule) Counts() (msgs, words int) {
	for i := range s.Sends {
		words += s.Sends[i].N
	}
	return len(s.Sends), words
}

// Execute replays the schedule on processor p under scope sc: every send is
// packed from src into a pooled buffer and shipped with ownership transfer;
// local moves copy src into dst; every receive is unpacked into dst and its
// buffer released back to the pool. Steady-state replay allocates nothing.
//
// src and dst may alias (a halo exchange packs and unpacks the same local
// block); either may be nil when the schedule has no runs on that side.
func (s *Schedule) Execute(p *machine.Proc, sc machine.Scope, src, dst []float64) {
	for i := range s.Sends {
		m := &s.Sends[i]
		buf := p.AcquireBuf(m.N)
		k := 0
		for _, r := range m.Runs {
			copy(buf[k:k+r.Len], src[r.Off:r.Off+r.Len])
			k += r.Len
		}
		p.SendOwned(m.Peer, sc.Tag(m.Part), buf)
	}
	for _, mv := range s.Local {
		copy(dst[mv.DstOff:mv.DstOff+mv.Len], src[mv.SrcOff:mv.SrcOff+mv.Len])
	}
	for i := range s.Recvs {
		m := &s.Recvs[i]
		buf := p.Recv(m.Peer, sc.Tag(m.Part))
		if len(buf) != m.N {
			panic(fmt.Sprintf("sched: message from rank %d part %d has %d values, schedule expects %d",
				m.Peer, m.Part, len(buf), m.N))
		}
		k := 0
		for _, r := range m.Runs {
			copy(dst[r.Off:r.Off+r.Len], buf[k:k+r.Len])
			k += r.Len
		}
		p.ReleaseBuf(buf)
	}
}

// runCap is the initial run capacity of a compiled message: one allocation
// covers the common strided-plane case instead of a doubling sequence.
const runCap = 8

// BeginSend starts a new (empty) send message to peer with the given tag
// part; fill it with AddSendRun.
func (s *Schedule) BeginSend(peer int, part uint16) {
	s.Sends = append(s.Sends, Msg{Peer: peer, Part: part, Runs: make([]Run, 0, runCap)})
}

// BeginRecv starts a new (empty) receive message from peer with the given
// tag part; fill it with AddRecvRun.
func (s *Schedule) BeginRecv(peer int, part uint16) {
	s.Recvs = append(s.Recvs, Msg{Peer: peer, Part: part, Runs: make([]Run, 0, runCap)})
}
