package kernels

import (
	"math"
	"testing"
	"testing/quick"
)

// randSystem builds a diagonally dominant tridiagonal system of size k from
// a seed; diagonal dominance guarantees a stable factorization without
// pivoting, matching the paper's assumption.
func randSystem(seed uint64, k int) (b, a, c, f []float64) {
	b = make([]float64, k)
	a = make([]float64, k)
	c = make([]float64, k)
	f = make([]float64, k)
	s := seed
	next := func() float64 {
		s += 0x9e3779b97f4a7c15
		z := s
		z = (z ^ (z >> 30)) * 0xbf58476d1ce4e5b9
		z = (z ^ (z >> 27)) * 0x94d049bb133111eb
		z ^= z >> 31
		return float64(z%2000)/1000 - 1 // [-1, 1)
	}
	for i := 0; i < k; i++ {
		b[i] = next()
		c[i] = next()
		a[i] = 4 + math.Abs(next()) // dominant
		f[i] = next() * 10
	}
	b[0] = 0
	c[k-1] = 0
	return
}

func residualNorm(b, a, c, f, x []float64) float64 {
	y := TriMatVec(b, a, c, x, 0, 0)
	worst := 0.0
	for i := range y {
		if d := math.Abs(y[i] - f[i]); d > worst {
			worst = d
		}
	}
	return worst
}

func TestThomasSolvesKnownSystem(t *testing.T) {
	// -x'' = 2 with x(0)=x(4)=0 on 5 points: x = i*(4-i).
	b := []float64{0, -1, -1, -1}
	a := []float64{2, 2, 2, 2}
	c := []float64{-1, -1, -1, 0}
	f := []float64{2 + 0, 2, 2, 2 + 0} // h=1; boundary terms zero
	x := make([]float64, 4)
	Thomas(nil, b, a, c, f, x)
	// Reference solution of the closed 4x4 system.
	want := []float64{4, 6, 6, 4}
	for i := range x {
		if math.Abs(x[i]-want[i]) > 1e-12 {
			t.Errorf("x[%d] = %v, want %v", i, x[i], want[i])
		}
	}
}

func TestThomasResidualProperty(t *testing.T) {
	f := func(seed uint64, kRaw uint8) bool {
		k := int(kRaw%60) + 1
		b, a, c, rhs := randSystem(seed, k)
		x := make([]float64, k)
		Thomas(nil, b, a, c, rhs, x)
		return residualNorm(b, a, c, rhs, x) < 1e-9
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 200}); err != nil {
		t.Fatal(err)
	}
}

func TestThomasDoesNotModifyCoefficients(t *testing.T) {
	b, a, c, f := randSystem(7, 9)
	b0 := append([]float64(nil), b...)
	a0 := append([]float64(nil), a...)
	c0 := append([]float64(nil), c...)
	f0 := append([]float64(nil), f...)
	x := make([]float64, 9)
	Thomas(nil, b, a, c, f, x)
	for i := range a {
		if b[i] != b0[i] || a[i] != a0[i] || c[i] != c0[i] || f[i] != f0[i] {
			t.Fatalf("coefficients modified at %d", i)
		}
	}
}

func TestReduceBoundaryFormStructure(t *testing.T) {
	// After Reduce, solving the full original system and plugging the
	// exact solution into the boundary-form rows must satisfy them: the
	// reduced rows are linear combinations of the originals.
	for _, k := range []int{2, 3, 4, 5, 8, 16} {
		b, a, c, f := randSystem(uint64(k)*13+1, k)
		x := make([]float64, k)
		Thomas(nil, b, a, c, f, x) // exact solution (closed system)

		rb := append([]float64(nil), b...)
		ra := append([]float64(nil), a...)
		rc := append([]float64(nil), c...)
		rf := append([]float64(nil), f...)
		Reduce(nil, rb, ra, rc, rf)

		// Row 0: b·x_prev(=0) + a·x[0] + c·x[k-1] = f.
		if k >= 2 {
			got := ra[0]*x[0] + rc[0]*x[k-1]
			if math.Abs(got-rf[0]) > 1e-9 {
				t.Errorf("k=%d row 0: %v != %v", k, got, rf[0])
			}
			// Row k-1: b·x[0] + a·x[k-1] + c·x_next(=0) = f.
			got = rb[k-1]*x[0] + ra[k-1]*x[k-1]
			if math.Abs(got-rf[k-1]) > 1e-9 {
				t.Errorf("k=%d row %d: %v != %v", k, k-1, got, rf[k-1])
			}
		}
		// Interior rows: b·x[0] + a·x[i] + c·x[k-1] = f.
		for i := 1; i < k-1; i++ {
			got := rb[i]*x[0] + ra[i]*x[i] + rc[i]*x[k-1]
			if math.Abs(got-rf[i]) > 1e-9 {
				t.Errorf("k=%d interior row %d: %v != %v", k, i, got, rf[i])
			}
		}
	}
}

func TestReduceThenBackSubstituteRecoversSolution(t *testing.T) {
	// Figure 4: given the boundary values, BackSubstitute must reproduce
	// the Thomas solution of the full system.
	f := func(seed uint64, kRaw uint8) bool {
		k := int(kRaw%30) + 2
		b, a, c, rhs := randSystem(seed, k)
		want := make([]float64, k)
		Thomas(nil, b, a, c, rhs, want)

		rb := append([]float64(nil), b...)
		ra := append([]float64(nil), a...)
		rc := append([]float64(nil), c...)
		rf := append([]float64(nil), rhs...)
		Reduce(nil, rb, ra, rc, rf)
		got := make([]float64, k)
		BackSubstitute(nil, rb, ra, rc, rf, want[0], want[k-1], got)
		for i := range got {
			if math.Abs(got[i]-want[i]) > 1e-8 {
				return false
			}
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 150}); err != nil {
		t.Fatal(err)
	}
}

func TestReduceFourRowsMatchesFigure2(t *testing.T) {
	// Figure 2: a 4-row block reduces so rows 0 and 3 couple directly;
	// the interior rows depend only on x0 and x3. Verify the zero
	// structure by checking independence: perturbing the "eliminated"
	// couplings has no effect because they are gone from the
	// representation.
	b, a, c, f := randSystem(99, 4)
	Reduce(nil, b, a, c, f)
	// Solve the 2x2 boundary system directly (x_prev = x_next = 0):
	//   a0·x0 + c0·x3 = f0
	//   b3·x0 + a3·x3 = f3
	det := a[0]*a[3] - c[0]*b[3]
	x0 := (f[0]*a[3] - c[0]*f[3]) / det
	x3 := (a[0]*f[3] - f[0]*b[3]) / det
	// Compare against Thomas on the original system.
	ob, oa, oc, of := randSystem(99, 4)
	want := make([]float64, 4)
	Thomas(nil, ob, oa, oc, of, want)
	if math.Abs(x0-want[0]) > 1e-9 || math.Abs(x3-want[3]) > 1e-9 {
		t.Errorf("boundary solve: (%v, %v), want (%v, %v)", x0, x3, want[0], want[3])
	}
}

func TestReducePanicsOnTinyBlock(t *testing.T) {
	defer func() {
		if recover() == nil {
			t.Fatal("Reduce of 1 row did not panic")
		}
	}()
	Reduce(nil, []float64{1}, []float64{1}, []float64{1}, []float64{1})
}

func TestTriMatVecOpenEnds(t *testing.T) {
	b := []float64{2, 1}
	a := []float64{1, 1}
	c := []float64{1, 3}
	x := []float64{10, 20}
	y := TriMatVec(b, a, c, x, 5, 7)
	// y0 = b0*xPrev + a0*x0 + c0*x1 = 10 + 10 + 20 = 40
	// y1 = b1*x0 + a1*x1 + c1*xNext = 10 + 20 + 21 = 51
	if y[0] != 40 || y[1] != 51 {
		t.Errorf("y = %v", y)
	}
}

func TestLengthMismatchPanics(t *testing.T) {
	defer func() {
		if recover() == nil {
			t.Fatal("mismatched lengths did not panic")
		}
	}()
	Thomas(nil, make([]float64, 3), make([]float64, 4), make([]float64, 4), make([]float64, 4), make([]float64, 4))
}
