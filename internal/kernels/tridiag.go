// Package kernels provides the sequential numerical kernels from which the
// paper's parallel tensor product algorithms are assembled: the Thomas
// tridiagonal solve, the substructured boundary reduction of Section 3
// (Figures 1 and 2), and its back-substitution (Figure 4). All routines are
// plain sequential code operating on slices; they charge their floating
// point work to an optional simulated processor so parallel callers get
// honest virtual-time accounting.
//
// Tridiagonal systems are stored as four coefficient slices of equal length
// k: b (coupling to the previous unknown; b[0] couples to the unknown before
// the block), a (diagonal), c (coupling to the next unknown; c[k-1] couples
// to the unknown after the block) and f (right-hand side), representing
//
//	b[i]·x[i-1] + a[i]·x[i] + c[i]·x[i+1] = f[i]
//
// as in Figure 1 of the paper.
package kernels

import (
	"fmt"

	"repro/internal/machine"
)

// charge adds flops to p's clock when p is non-nil (sequential callers pass
// nil).
func charge(p *machine.Proc, flops int) {
	if p != nil {
		p.Compute(flops)
	}
}

// Thomas solves the tridiagonal system (b, a, c, f) by the sequential
// Thomas algorithm (no pivoting, as the paper assumes the matrix can be
// factored without it) and stores the solution in x. The coefficient slices
// are not modified. b[0] and c[k-1] are ignored: the system is closed.
func Thomas(p *machine.Proc, b, a, c, f, x []float64) {
	k := len(a)
	if k == 0 {
		checkLens(k, b, c, f, x)
		return
	}
	// The elimination scratch comes from the processor's buffer pool when
	// one is attached (pipelined solvers call Thomas once per system), so
	// steady-state solves allocate nothing; sequential callers allocate
	// (or hoist their own scratch via ThomasWith).
	var cp, fp []float64
	if p != nil {
		cp = p.AcquireBuf(k)
		fp = p.AcquireBuf(k)
	} else {
		cp = make([]float64, k)
		fp = make([]float64, k)
	}
	ThomasWith(p, b, a, c, f, x, cp, fp)
	if p != nil {
		p.ReleaseBuf(cp)
		p.ReleaseBuf(fp)
	}
}

// ThomasWith is Thomas with caller-provided elimination scratch (cp and fp,
// each at least len(a) long), for iterative drivers that solve many systems
// and want to allocate the scratch once.
func ThomasWith(p *machine.Proc, b, a, c, f, x, cp, fp []float64) {
	k := len(a)
	checkLens(k, b, c, f, x)
	if k == 0 {
		return
	}
	cp = cp[:k]
	fp = fp[:k]
	cp[0] = c[0] / a[0]
	fp[0] = f[0] / a[0]
	for i := 1; i < k; i++ {
		den := a[i] - b[i]*cp[i-1]
		cp[i] = c[i] / den
		fp[i] = (f[i] - b[i]*fp[i-1]) / den
	}
	x[k-1] = fp[k-1]
	for i := k - 2; i >= 0; i-- {
		x[i] = fp[i] - cp[i]*x[i+1]
	}
	charge(p, 8*k)
}

// Reduce performs the substructured elimination of Section 3 on a block of
// k >= 2 consecutive rows, in place. On entry the slices hold ordinary
// tridiagonal coefficients; on return the block is in boundary form:
//
//	row 0:        b[0]·x_prev + a[0]·x_first + c[0]·x_last = f[0]
//	row 0<i<k-1:  b[i]·x_first + a[i]·x_i + c[i]·x_last    = f[i]
//	row k-1:      b[k-1]·x_first + a[k-1]·x_last + c[k-1]·x_next = f[k-1]
//
// where x_prev/x_next are the unknowns adjacent to the block. Rows 0 and
// k-1 of successive blocks therefore form a tridiagonal system of twice the
// block count (the highlighted rows of Figure 1); a block of four rows
// reduces exactly as in Figure 2.
func Reduce(p *machine.Proc, b, a, c, f []float64) {
	k := len(a)
	checkLens(k, b, c, f)
	if k < 2 {
		panic(fmt.Sprintf("kernels: Reduce needs at least 2 rows, got %d", k))
	}
	// Forward: eliminate the lower diagonal of rows 2..k-1, introducing
	// fill-in that couples each row to x_first (the paper's column l).
	for i := 2; i < k; i++ {
		m := b[i] / a[i-1]
		b[i] = -m * b[i-1]
		a[i] -= m * c[i-1]
		f[i] -= m * f[i-1]
	}
	// Backward: eliminate the upper diagonal of rows k-3..0, introducing
	// fill-in that couples each row to x_last (the paper's column u).
	for i := k - 3; i >= 0; i-- {
		m := c[i] / a[i+1]
		c[i] = -m * c[i+1]
		f[i] -= m * f[i+1]
		if i >= 1 {
			b[i] -= m * b[i+1] // both couple to x_first
		} else {
			// Row 0's own unknown is x_first, so the pivot's
			// coupling to x_first folds into the diagonal.
			a[0] -= m * b[i+1]
		}
	}
	charge(p, 11*(k-2)+2)
}

// BackSubstitute recovers the interior unknowns of a block previously
// processed by Reduce, given the solved boundary values xFirst (row 0's
// unknown) and xLast (row k-1's). The solution, including the boundary
// values at positions 0 and k-1, is stored in x. This is the computation of
// Figure 4.
func BackSubstitute(p *machine.Proc, b, a, c, f []float64, xFirst, xLast float64, x []float64) {
	k := len(a)
	checkLens(k, b, c, f, x)
	x[0] = xFirst
	x[k-1] = xLast
	for i := 1; i < k-1; i++ {
		x[i] = (f[i] - b[i]*xFirst - c[i]*xLast) / a[i]
	}
	charge(p, 5*(k-2))
}

// TriMatVec computes y = T·x for the tridiagonal matrix T given by (b, a,
// c), with xPrev and xNext supplying the unknowns adjacent to the block
// (zero for a closed system). Used by tests to verify solver residuals.
func TriMatVec(b, a, c, x []float64, xPrev, xNext float64) []float64 {
	k := len(a)
	checkLens(k, b, c, x)
	y := make([]float64, k)
	for i := 0; i < k; i++ {
		y[i] = a[i] * x[i]
		if i > 0 {
			y[i] += b[i] * x[i-1]
		} else {
			y[i] += b[i] * xPrev
		}
		if i < k-1 {
			y[i] += c[i] * x[i+1]
		} else {
			y[i] += c[i] * xNext
		}
	}
	return y
}

func checkLens(k int, slices ...[]float64) {
	for _, s := range slices {
		if len(s) != k {
			panic(fmt.Sprintf("kernels: slice length %d does not match system size %d", len(s), k))
		}
	}
}
