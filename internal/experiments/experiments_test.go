package experiments

import (
	"strings"
	"testing"
)

// The experiment suite's assertions encode the paper's qualitative claims:
// who wins, by roughly what factor, where the shapes bend. Absolute numbers
// are simulated virtual time and free to drift; these bounds are not.

func TestF1Structure(t *testing.T) {
	r := F1FirstReduction()
	if r.Metrics["boundary_error"] > 1e-9 {
		t.Errorf("boundary error %v", r.Metrics["boundary_error"])
	}
	if r.Metrics["reduced_rows"] != 8 {
		t.Errorf("reduced rows %v, want 8 (= 2p)", r.Metrics["reduced_rows"])
	}
	if !strings.Contains(r.Text, "a") || !strings.Contains(r.Text, ".") {
		t.Error("structure rendering missing")
	}
}

func TestF2FourRows(t *testing.T) {
	r := F2FourRowReduction()
	if r.Metrics["boundary_error"] > 1e-9 || r.Metrics["interior_error"] > 1e-9 {
		t.Errorf("errors %v / %v", r.Metrics["boundary_error"], r.Metrics["interior_error"])
	}
}

func TestF3DataflowShape(t *testing.T) {
	r := F3Dataflow()
	// p=8: active counts must be the Figure 3 diamond 8,4,2,1,2,4,8.
	want := map[string]float64{
		"step0": 8, "step1": 4, "step2": 2, "step3": 1,
		"step4": 2, "step5": 4, "step6": 8,
	}
	for k, v := range want {
		if r.Metrics[k] != v {
			t.Errorf("%s = %v, want %v", k, r.Metrics[k], v)
		}
	}
}

func TestF4SubstitutionAccuracy(t *testing.T) {
	r := F4Substitution()
	if r.Metrics["max_error"] > 1e-8 {
		t.Errorf("max error %v", r.Metrics["max_error"])
	}
}

func TestF5PipelineUtilization(t *testing.T) {
	r := F5Mapping()
	if r.Metrics["util_pipelined"] <= r.Metrics["util_single"] {
		t.Errorf("pipelined utilization %v <= single %v",
			r.Metrics["util_pipelined"], r.Metrics["util_single"])
	}
}

func TestE1JacobiClaims(t *testing.T) {
	r := E1Jacobi()
	if r.Metrics["maxdiff_mp"] != 0 || r.Metrics["maxdiff_kf1"] != 0 {
		t.Errorf("variants not bitwise identical: %v / %v",
			r.Metrics["maxdiff_mp"], r.Metrics["maxdiff_kf1"])
	}
	if ratio := r.Metrics["time_ratio_kf1_mp"]; ratio < 0.8 || ratio > 1.25 {
		t.Errorf("claim C2 violated: KF1/MP ratio %v", ratio)
	}
	if r.Metrics["speedup_16p"] < 4 {
		t.Errorf("16-processor speedup %v < 4", r.Metrics["speedup_16p"])
	}
}

func TestE2TriScalingShape(t *testing.T) {
	r := E2Tri()
	// On the balanced machine speedup must grow monotonically through
	// p=16 for n=2048.
	prev := 0.0
	for _, p := range []int{1, 2, 4, 8, 16} {
		s := r.Metrics[keyf("speedup_balanced_p%d", p)]
		if s < prev {
			t.Errorf("balanced speedup shrank at p=%d: %v -> %v", p, prev, s)
		}
		prev = s
	}
	if r.Metrics["speedup_balanced_p16"] < 3 {
		t.Errorf("balanced speedup at p=16 is %v, want >= 3", r.Metrics["speedup_balanced_p16"])
	}
}

func TestE3PipelineRatioGrows(t *testing.T) {
	r := E3Pipeline()
	if r.Metrics["ratio_m1"] > 1.15 {
		t.Errorf("m=1 pipelined should not beat single solve: ratio %v", r.Metrics["ratio_m1"])
	}
	if r.Metrics["ratio_m32"] < r.Metrics["ratio_m4"] {
		t.Errorf("pipeline ratio should grow with m: m4=%v m32=%v",
			r.Metrics["ratio_m4"], r.Metrics["ratio_m32"])
	}
	if r.Metrics["ratio_m32"] < 1.5 {
		t.Errorf("m=32 pipelining ratio %v, want >= 1.5", r.Metrics["ratio_m32"])
	}
}

func TestE4ADIAgreesAndContracts(t *testing.T) {
	r := E4ADI()
	if r.Metrics["maxdiff"] > 1e-8 {
		t.Errorf("parallel vs sequential maxdiff %v", r.Metrics["maxdiff"])
	}
	if r.Metrics["final_factor"] > 0.5 {
		t.Errorf("ADI contraction factor %v", r.Metrics["final_factor"])
	}
}

func TestE5MADIWinsEverywhere(t *testing.T) {
	r := E5MADI()
	for k, v := range r.Metrics {
		if v <= 1 {
			t.Errorf("%s = %v, want > 1 (madi must win)", k, v)
		}
	}
	// The margin should grow with processor count at fixed n.
	if r.Metrics["ratio_n64_p4x4"] <= r.Metrics["ratio_n64_p2x2"] {
		t.Errorf("madi margin did not grow with p: %v vs %v",
			r.Metrics["ratio_n64_p2x2"], r.Metrics["ratio_n64_p4x4"])
	}
}

func TestE6MultigridFactors(t *testing.T) {
	r := E6Multigrid()
	if r.Metrics["mg2_factor"] > 0.25 {
		t.Errorf("MG2 factor %v", r.Metrics["mg2_factor"])
	}
	if r.Metrics["mg3_factor_pc1"] > 0.35 {
		t.Errorf("MG3 factor (1 plane cycle) %v", r.Metrics["mg3_factor_pc1"])
	}
	if r.Metrics["mg3_factor_pc2"] > r.Metrics["mg3_factor_pc1"] {
		t.Errorf("more plane cycles should not converge slower: %v vs %v",
			r.Metrics["mg3_factor_pc2"], r.Metrics["mg3_factor_pc1"])
	}
	if r.Metrics["mg2_par_vs_seq"] > 1e-6 {
		t.Errorf("parallel MG2 deviates from sequential: %v", r.Metrics["mg2_par_vs_seq"])
	}
}

func TestE7DistributionVariantsRun(t *testing.T) {
	r := E7Distribution()
	if len(r.Metrics) != 3 {
		t.Fatalf("expected 3 variants, got %v", r.Metrics)
	}
	for k, v := range r.Metrics {
		if v <= 0 {
			t.Errorf("%s elapsed %v", k, v)
		}
	}
}

func TestE8CodeSizeBands(t *testing.T) {
	r := E8CodeSize()
	if ratio := r.Metrics["ratio_mp_seq"]; ratio < 4 || ratio > 12 {
		t.Errorf("claim C1: MP/seq statement ratio %v outside the 5-10x band (tolerance 4-12)", ratio)
	}
	if ratio := r.Metrics["ratio_kf1_seq"]; ratio > 3 {
		t.Errorf("KF1/seq ratio %v, want near sequential length", ratio)
	}
}

func TestE9InspectorOverheadShape(t *testing.T) {
	r := E9Inspector()
	if r.Metrics["maxdiff"] != 0 {
		t.Errorf("paths disagree by %v", r.Metrics["maxdiff"])
	}
	if r.Metrics["msg_ratio"] <= 1 {
		t.Errorf("runtime resolution should cost more messages: ratio %v", r.Metrics["msg_ratio"])
	}
}

func TestS4LinkAsymmetry(t *testing.T) {
	r := S4LinkAsymmetry()
	if r.Metrics["s4_identical"] != 1 {
		t.Error("link asymmetry changed values or message censuses")
	}
	if r.Metrics["s4_perfest_exact"] != 1 {
		t.Error("an elapsed time disagrees with perfest's per-link finish-time recurrence")
	}
	if r.Metrics["s4_uplink_monotone"] != 1 {
		t.Error("slowing the uplink should never speed the run")
	}
	if r.Metrics["s4_uplink_slows"] != 1 {
		t.Error("a 32x uplink should run strictly slower than the uniform federation")
	}
	if r.Metrics["s4_backbone_helps"] != 1 {
		t.Error("repricing the backbone down must never slow the run")
	}
	if r.Metrics["s4_backbone_gain"] < 0 {
		t.Errorf("backbone gain %v negative", r.Metrics["s4_backbone_gain"])
	}
	// Every federation pays a real surcharge over the shared machine.
	for _, k := range []string{"uplink1x", "uplink2x", "uplink8x", "uplink32x", "backbone"} {
		if !(r.Metrics[keyf("s4_time_%s", k)] > r.Metrics["s4_time_shared"]) {
			t.Errorf("%s not slower than shared", k)
		}
	}
}

// TestTransportSelection smokes the kfbench -transport path: the whole
// point of resolving transports by registry name is that any experiment's
// values and censuses are invariant under a flat-cost transport swap.
func TestTransportSelection(t *testing.T) {
	if err := SetTransport("no-such-transport", 1); err == nil {
		t.Error("unknown transport accepted")
	}
	if err := SetTransport("shared", 4); err == nil {
		t.Error("shared transport accepted a federation")
	}
	base := E1Jacobi()
	if err := SetTransport("federated", 4); err != nil {
		t.Fatal(err)
	}
	defer func() {
		if err := SetTransport("", 0); err != nil {
			t.Fatal(err)
		}
	}()
	fed := E1Jacobi()
	for k, v := range base.Metrics {
		if fed.Metrics[k] != v {
			t.Errorf("metric %s moved under the federated transport: %v -> %v", k, v, fed.Metrics[k])
		}
	}
}

func TestAllRunAndRender(t *testing.T) {
	entries := Suite()
	results := All()
	if len(results) != len(entries) {
		t.Fatalf("Suite has %d entries, All produced %d results", len(entries), len(results))
	}
	for i, r := range results {
		if r.ID == "" || r.Title == "" || r.Text == "" {
			t.Errorf("experiment %q incomplete", r.ID)
		}
		if s := Render(r); !strings.Contains(s, r.ID) {
			t.Errorf("render of %s missing ID", r.ID)
		}
		// The lazy index must describe exactly what running it produces.
		if entries[i].ID != r.ID || entries[i].Title != r.Title {
			t.Errorf("Suite entry %d (%s, %q) disagrees with its Result (%s, %q)",
				i, entries[i].ID, entries[i].Title, r.ID, r.Title)
		}
	}
}

func TestA1MappingAblation(t *testing.T) {
	r := A1Mapping()
	if r.Metrics["ratio_m1"] > 1.05 {
		t.Errorf("mappings should tie for one system: %v", r.Metrics["ratio_m1"])
	}
	if r.Metrics["ratio_m32"] < 1.3 {
		t.Errorf("shuffle should clearly win at m=32: ratio %v", r.Metrics["ratio_m32"])
	}
	if r.Metrics["ratio_m32"] < r.Metrics["ratio_m4"] {
		t.Errorf("packed penalty should grow with m: m4=%v m32=%v",
			r.Metrics["ratio_m4"], r.Metrics["ratio_m32"])
	}
}

func TestA2EstimatorAccuracy(t *testing.T) {
	r := A2Estimator()
	for _, k := range []string{"jacobi_msg_exact", "jacobi_byte_exact", "tri_msg_exact", "tri_byte_exact"} {
		if r.Metrics[k] != 1 {
			t.Errorf("%s: prediction not exact", k)
		}
	}
	if r.Metrics["jacobi_time_err"] > 0.25 {
		t.Errorf("jacobi time estimate off by %v", r.Metrics["jacobi_time_err"])
	}
	if r.Metrics["tri_time_err"] > 0.25 {
		t.Errorf("tri time estimate off by %v", r.Metrics["tri_time_err"])
	}
}

func TestA3CyclicBeatsBlockOnLU(t *testing.T) {
	r := A3Cyclic()
	if r.Metrics["time_cyclic"] >= r.Metrics["time_block"] {
		t.Errorf("cyclic %v should beat block %v",
			r.Metrics["time_cyclic"], r.Metrics["time_block"])
	}
	if r.Metrics["imbalance_block"] < 2*r.Metrics["imbalance_cyclic"] {
		t.Errorf("block imbalance %v should dwarf cyclic %v",
			r.Metrics["imbalance_block"], r.Metrics["imbalance_cyclic"])
	}
}

func TestS1Scale64(t *testing.T) {
	r := S1Scale64()
	if r.Metrics["jacobi64_schedule_identical"] != 1 {
		t.Error("64-processor Jacobi: schedule replay diverged from direct derivation")
	}
	if r.Metrics["adi64_schedule_identical"] != 1 {
		t.Error("64-processor pipelined ADI: schedule replay diverged from direct derivation")
	}
	// Scaling shape: more processors must keep reducing virtual time and
	// growing message counts for this surface-to-volume regime.
	if !(r.Metrics["jacobi_time_p64"] < r.Metrics["jacobi_time_p16"] &&
		r.Metrics["jacobi_time_p16"] < r.Metrics["jacobi_time_p4"]) {
		t.Errorf("Jacobi virtual time should shrink with processors: p4=%v p16=%v p64=%v",
			r.Metrics["jacobi_time_p4"], r.Metrics["jacobi_time_p16"], r.Metrics["jacobi_time_p64"])
	}
	if !(r.Metrics["jacobi_msgs_p64"] > r.Metrics["jacobi_msgs_p16"]) {
		t.Errorf("message count should grow with the grid: p16=%v p64=%v",
			r.Metrics["jacobi_msgs_p16"], r.Metrics["jacobi_msgs_p64"])
	}
}

func TestS2Transport256(t *testing.T) {
	if testing.Short() {
		t.Skip("256-processor experiment skipped in short mode")
	}
	r := S2Transport256()
	for _, key := range []string{"s2_jacobi_identical", "s2_adi_identical"} {
		if r.Metrics[key] != 1 {
			t.Errorf("%s: the federated transport diverged from the shared one", key)
		}
	}
	if r.Metrics["s2_internode_match"] != 1 {
		t.Error("measured inter-node traffic disagrees with perfest's prediction")
	}
	if r.Metrics["s2_links_symmetric"] != 1 {
		t.Error("per-iteration link traffic is not a symmetric nearest-neighbour pattern")
	}
	if !(r.Metrics["s2_speedup_64_to_256"] > 1) {
		t.Errorf("256 processors should beat 64 on this problem, got speedup %v",
			r.Metrics["s2_speedup_64_to_256"])
	}
}

func TestS3Hierarchical1024(t *testing.T) {
	if testing.Short() {
		t.Skip("1024-processor experiment skipped in short mode")
	}
	r := S3Hierarchical1024()
	for _, key := range []string{"s3_jacobi_identical", "s3_adi_identical"} {
		if r.Metrics[key] != 1 {
			t.Errorf("%s: values or message census diverged across transports", key)
		}
	}
	if r.Metrics["s3_jacobi_surcharge_exact"] != 1 {
		t.Error("jacobi federated surcharge disagrees with perfest's exact recurrence")
	}
	if r.Metrics["s3_adi_surcharge_ok"] != 1 {
		t.Error("madi federated surcharge outside the estimator's documented tolerance")
	}
	if r.Metrics["s3_internode_census_match"] != 1 {
		t.Error("measured inter-node traffic disagrees with perfest's enumeration")
	}
	if r.Metrics["s3_jacobi_knee"] != 1 {
		t.Error("the 16->64 node step should dwarf the 4->16 one (the NUMA knee)")
	}
	// The hierarchy must actually price something: every multi-node
	// federation runs strictly slower than the shared machine.
	for _, nodes := range []int{4, 16, 64} {
		if !(r.Metrics[keyf("s3_jacobi_time_nodes%d", nodes)] > r.Metrics["s3_jacobi_time_shared"]) {
			t.Errorf("jacobi at %d nodes not slower than shared", nodes)
		}
		if !(r.Metrics[keyf("s3_adi_time_nodes%d", nodes)] > r.Metrics["s3_adi_time_shared"]) {
			t.Errorf("madi at %d nodes not slower than shared", nodes)
		}
	}
}
