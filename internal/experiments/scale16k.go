package experiments

import (
	"repro/internal/core"
	"repro/internal/machine"
	"repro/internal/report"
)

// S6Calendar16384 scales the runtime to 16384 virtual processors (a 128x128
// grid) — the many-more-processors-than-cores regime the calendar executor
// exists for: every rank is a parked continuation between its turns, and
// the worker pool resumes runnable ranks in virtual-time order. The
// experiment pins the executor seam's central invariant before using it:
// the same Jacobi Program must produce bit-identical values, message/byte
// censuses and virtual times on the goroutine and calendar engines (the
// machine is a Kahn network, so results are a function of the program
// alone), including on a single worker, where any lost wakeup would hang
// rather than merely reorder. Then it records the 16384-processor run's
// census — host-side feasibility at a scale the goroutine engine also
// handles, but the calendar engine reaches with bounded host parallelism.
func S6Calendar16384() Result {
	const (
		n, iters = 256, 3
		pSmall   = 32 // 1024-processor engine-parity grid
		pBig     = 128
	)
	metrics := map[string]float64{}
	tbl := report.NewTable("16384 virtual processors on the calendar executor (iPSC/2 costs)",
		"grid", "engine", "time (s)", "msgs", "identical")

	jp := jacobiProgram(n, iters)

	// Engine parity at 1024 processors: goroutine reference vs calendar
	// (default worker pool) vs calendar pinned to one worker.
	ref := runProg(mustSys(core.Grid(pSmall, pSmall)), jp)
	tbl.AddRow("32x32", "goroutine", ref.Elapsed, ref.Stats.MsgsSent, true)
	metrics["s6_time_1024_goroutine"] = ref.Elapsed
	for _, eng := range []struct {
		label   string
		workers int
		key     string
	}{
		{"calendar", 0, "s6_identical_1024_calendar"},
		{"calendar w=1", 1, "s6_identical_1024_calendar_w1"},
	} {
		sys := mustSys(core.Grid(pSmall, pSmall), core.Executor("calendar"))
		if eng.workers > 0 {
			sys.Machine.SetExecutor(machine.NewCalendarExecutor(eng.workers))
		}
		run := runProg(sys, jp)
		cmp := core.CompareRuns(ref, run)
		tbl.AddRow("32x32", eng.label, run.Elapsed, run.Stats.MsgsSent, cmp.Identical)
		metrics[eng.key] = boolMetric(cmp.Identical)
	}

	// The 16384-processor run, on both engines: the calendar engine must
	// reproduce the goroutine engine's run bit-identically at full scale,
	// one iteration to keep the host cost proportionate.
	jpBig := jacobiProgram(n, 1)
	refBig := runProg(mustSys(core.Grid(pBig, pBig), core.Cost(machine.ZeroComm())), jpBig)
	tbl.AddRow("128x128", "goroutine", refBig.Elapsed, refBig.Stats.MsgsSent, true)
	calBig := runProg(mustSys(core.Grid(pBig, pBig), core.Cost(machine.ZeroComm()),
		core.Executor("calendar")), jpBig)
	cmpBig := core.CompareRuns(refBig, calBig)
	tbl.AddRow("128x128", "calendar", calBig.Elapsed, calBig.Stats.MsgsSent, cmpBig.Identical)
	metrics["s6_identical_16384"] = boolMetric(cmpBig.Identical)
	metrics["s6_time_16384"] = calBig.Elapsed
	metrics["s6_msgs_16384"] = float64(calBig.Stats.MsgsSent)
	tbl.AddNote("16384-processor Jacobi iteration: %d messages, %d bytes moved",
		calBig.Stats.MsgsSent, calBig.Stats.BytesSent)

	return Result{
		ID:      "S6",
		Title:   "16384 virtual processors on the calendar executor, engine equivalence",
		Text:    tbl.String(),
		Metrics: metrics,
	}
}
