package experiments

import (
	"repro/internal/core"
	"repro/internal/darray"
	"repro/internal/dist"
	"repro/internal/jacobi"
	"repro/internal/kf"
	"repro/internal/linalg"
	"repro/internal/machine"
	"repro/internal/perfest"
	"repro/internal/report"
	"repro/internal/tridiag"
)

// A1Mapping is the dataflow-mapping ablation: the paper picks the
// shuffle/unshuffle mapping of Figure 5 because its disjoint processor
// groups pipeline multiple systems without contention. This experiment
// runs the same pipelined solve under the naive left-packed mapping
// (low-index processors serve every tree level) and quantifies the
// difference.
func A1Mapping() Result {
	const p, n = 8, 128
	tbl := report.NewTable("pipelined solve of m systems, p=8, n=128 (iPSC/2 costs)",
		"systems", "shuffle (s)", "left-packed (s)", "packed/shuffle")
	metrics := map[string]float64{}
	for _, msys := range []int{1, 4, 16, 32} {
		tS := runMapped(p, n, msys, tridiag.ShuffleMapping)
		tP := runMapped(p, n, msys, tridiag.PackedMapping)
		tbl.AddRow(msys, tS, tP, tP/tS)
		metrics[keyf("ratio_m%d", msys)] = tP / tS
	}
	tbl.AddNote("paper: the shuffle/unshuffle mapping 'is advantageous when there are multiple tridiagonal systems'")
	return Result{
		ID:      "A1",
		Title:   "ablation: shuffle/unshuffle vs left-packed dataflow mapping (Figure 5 design choice)",
		Text:    tbl.String(),
		Metrics: metrics,
	}
}

func runMapped(p, n, msys int, mapping tridiag.Mapping) float64 {
	sys := newSys([]int{p})
	elapsed, err := sys.Run(func(ctx *kf.Ctx) error {
		xs := make([]*darray.Array, msys)
		fs := make([]*darray.Array, msys)
		for j := 0; j < msys; j++ {
			jj := j
			fa := ctx.NewArray(darray.Spec{Extents: []int{n}, Dists: []dist.Dist{dist.Block{}}})
			fa.FillOwned(func(idx []int) float64 { return float64((idx[0]*jj)%13) - 6 })
			xs[j] = ctx.NewArray(darray.Spec{Extents: []int{n}, Dists: []dist.Dist{dist.Block{}}})
			fs[j] = fa
		}
		return tridiag.MTriCMapped(ctx, xs, fs, -1, 4, -1, mapping)
	})
	if err != nil {
		panic(err)
	}
	return elapsed
}

// A2Estimator exercises the performance-estimation tool the paper's
// Section 2 promises ("we plan to address this issue by providing
// performance estimation tools"): static predictions of message counts,
// volumes and virtual time for the Jacobi iteration and the tridiagonal
// solve, compared against the simulator's measurements.
func A2Estimator() Result {
	tbl := report.NewTable("static performance estimates vs simulated measurements (iPSC/2 costs)",
		"program", "msgs est", "msgs meas", "bytes est", "bytes meas", "time est (s)", "time meas (s)", "time err")
	metrics := map[string]float64{}
	cost := machine.IPSC2()

	// Jacobi: n=32, 2x2 grid, 10 iterations.
	{
		const n, p, iters = 32, 2, 10
		est := perfest.Jacobi(cost, n, p, iters)
		x0, f := jacobi.Problem(n)
		sys := newSys([]int{p, p}, core.Cost(cost))
		res, err := jacobi.KF1(sys.Machine, sys.Procs, x0, f, iters)
		if err != nil {
			panic(err)
		}
		st := sys.Stats()
		// Exclude the verification gather/reduce from the measured
		// messages: the estimator predicts the iteration loop only.
		iterMsgs := st.MsgsSent - int64(perfest.GatherMsgs(p*p)) - int64(perfest.AllReduceMsgs(p*p))
		iterBytes := st.BytesSent - int64(perfest.GatherBytes(p*p, n*n)) - int64(perfest.AllReduceBytes(p*p))
		terr := relErr(est.Time, res.Elapsed)
		tbl.AddRow("jacobi 32^2 x10 on 2x2", est.Msgs, iterMsgs, est.Bytes, iterBytes, est.Time, res.Elapsed, terr)
		metrics["jacobi_msg_exact"] = boolMetric(int64(est.Msgs) == iterMsgs)
		metrics["jacobi_byte_exact"] = boolMetric(int64(est.Bytes) == iterBytes)
		metrics["jacobi_time_err"] = terr
	}

	// Tridiagonal solve: n=2048, p=8.
	{
		const n, p = 2048, 8
		est := perfest.TriSolve(cost, n, p)
		t, st := triOnce(p, n, cost)
		terr := relErr(est.Time, t)
		tbl.AddRow("tri n=2048 on p=8", est.Msgs, st.MsgsSent, est.Bytes, st.BytesSent, est.Time, t, terr)
		metrics["tri_msg_exact"] = boolMetric(int64(est.Msgs) == st.MsgsSent)
		metrics["tri_byte_exact"] = boolMetric(int64(est.Bytes) == st.BytesSent)
		metrics["tri_time_err"] = terr
	}
	tbl.AddNote("message counts and volumes predict exactly; time within the model's overlap slack")
	return Result{
		ID:      "A2",
		Title:   "performance estimator vs simulator (the tool Section 2 promises)",
		Text:    tbl.String(),
		Metrics: metrics,
	}
}

func relErr(est, meas float64) float64 {
	if meas == 0 {
		return 0
	}
	d := est - meas
	if d < 0 {
		d = -d
	}
	return d / meas
}

func boolMetric(b bool) float64 {
	if b {
		return 1
	}
	return 0
}

// A3Cyclic is the distribution experiment the paper attaches to the cyclic
// pattern ("especially useful in numerical linear algebra"): dense LU
// factorization with block versus cyclic column distribution. Block
// retires the owners of early columns; cyclic keeps every processor busy
// to the end.
func A3Cyclic() Result {
	const n, p = 96, 4
	tbl := report.NewTable("dense LU of a 96x96 matrix, 4 processors (balanced machine)",
		"column distribution", "virtual time (s)", "busy max/min", "factor agreement")
	metrics := map[string]float64{}
	a := randMatrixA3(3, n)
	var luRef []float64
	for _, v := range []struct {
		name string
		d    dist.Dist
	}{
		{"block", dist.Block{}},
		{"cyclic", dist.Cyclic{}},
	} {
		sys := newSys([]int{p}, core.Cost(machine.Balanced()), core.Trace())
		rec := sys.Trace
		var flat []float64
		elapsed, err := sys.Run(func(c *kf.Ctx) error {
			ad := c.NewArray(darray.Spec{
				Extents: []int{n, n},
				Dists:   []dist.Dist{dist.Star{}, v.d},
			})
			ad.OwnedRuns(func(idx []int, vals []float64) { copy(vals, a[idx[0]*n+idx[1]:]) })
			if err := linalg.LU(c, ad); err != nil {
				return err
			}
			out := ad.GatherTo(c.NextScope(), 0)
			if c.GridIndex() == 0 {
				flat = out
			}
			return nil
		})
		if err != nil {
			panic(err)
		}
		agreement := 0.0
		if luRef == nil {
			luRef = flat
		} else {
			agreement = maxAbsDiff(luRef, flat)
		}
		min, max := 1e300, 0.0
		for q := 0; q < p; q++ {
			bt := rec.BusyTime(q)
			if bt < min {
				min = bt
			}
			if bt > max {
				max = bt
			}
		}
		tbl.AddRow(v.name, elapsed, max/min, agreement)
		metrics[keyf("time_%s", v.name)] = elapsed
		metrics[keyf("imbalance_%s", v.name)] = max / min
	}
	tbl.AddNote("paper: 'a cyclic distribution, especially useful in numerical linear algebra'")
	return Result{
		ID:      "A3",
		Title:   "block vs cyclic columns for dense LU (Section 2's cyclic motivation)",
		Text:    tbl.String(),
		Metrics: metrics,
	}
}

func randMatrixA3(seed uint64, n int) []float64 {
	a := make([]float64, n*n)
	s := seed
	next := func() float64 {
		s += 0x9e3779b97f4a7c15
		z := s
		z = (z ^ (z >> 30)) * 0xbf58476d1ce4e5b9
		z = (z ^ (z >> 27)) * 0x94d049bb133111eb
		z ^= z >> 31
		return float64(z%2000)/1000 - 1
	}
	for i := 0; i < n; i++ {
		rowSum := 0.0
		for j := 0; j < n; j++ {
			if i != j {
				a[i*n+j] = next()
				if a[i*n+j] < 0 {
					rowSum -= a[i*n+j]
				} else {
					rowSum += a[i*n+j]
				}
			}
		}
		a[i*n+i] = rowSum + 2
	}
	return a
}
