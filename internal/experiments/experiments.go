// Package experiments contains one driver per reproduced artifact of the
// paper: the five figures (F1-F5) and the measured claims (E1-E9) indexed
// in DESIGN.md. Each driver is deterministic — it runs on the simulated
// machine with fixed seeds — and returns both a rendered text report and a
// map of named metrics that the test and benchmark harnesses assert on.
// cmd/kfbench prints the reports; EXPERIMENTS.md records them.
package experiments

import (
	"fmt"
	"math"
	"sort"
	"strings"
)

// Result is one experiment's output.
type Result struct {
	// ID is the experiment identifier from DESIGN.md (F1..F5, E1..E9).
	ID string
	// Title is a one-line description.
	Title string
	// Text is the rendered report (tables, series, activity diagrams).
	Text string
	// Metrics carries the key numbers for programmatic assertions.
	Metrics map[string]float64
}

// All runs every experiment in index order.
func All() []Result {
	return []Result{
		F1FirstReduction(),
		F2FourRowReduction(),
		F3Dataflow(),
		F4Substitution(),
		F5Mapping(),
		E1Jacobi(),
		E2Tri(),
		E3Pipeline(),
		E4ADI(),
		E5MADI(),
		E6Multigrid(),
		E7Distribution(),
		E8CodeSize(),
		E9Inspector(),
		A1Mapping(),
		A2Estimator(),
		A3Cyclic(),
		S1Scale64(),
		S2Transport256(),
		S3Hierarchical1024(),
	}
}

// Render formats a result for terminal output.
func Render(r Result) string {
	var sb strings.Builder
	fmt.Fprintf(&sb, "== %s: %s ==\n", r.ID, r.Title)
	sb.WriteString(r.Text)
	if len(r.Metrics) > 0 {
		keys := make([]string, 0, len(r.Metrics))
		for k := range r.Metrics {
			keys = append(keys, k)
		}
		sort.Strings(keys)
		sb.WriteString("metrics:")
		for _, k := range keys {
			fmt.Fprintf(&sb, " %s=%.6g", k, r.Metrics[k])
		}
		sb.WriteString("\n")
	}
	return sb.String()
}

// maxAbsDiff returns the largest absolute element difference.
func maxAbsDiff(a, b []float64) float64 {
	worst := 0.0
	for i := range a {
		if d := math.Abs(a[i] - b[i]); d > worst {
			worst = d
		}
	}
	return worst
}

// randTridiag builds a diagonally dominant system of size n from a seed.
func randTridiag(seed uint64, n int) (b, a, c, f []float64) {
	b = make([]float64, n)
	a = make([]float64, n)
	c = make([]float64, n)
	f = make([]float64, n)
	s := seed
	next := func() float64 {
		s += 0x9e3779b97f4a7c15
		z := s
		z = (z ^ (z >> 30)) * 0xbf58476d1ce4e5b9
		z = (z ^ (z >> 27)) * 0x94d049bb133111eb
		z ^= z >> 31
		return float64(z%2000)/1000 - 1
	}
	for i := 0; i < n; i++ {
		b[i], c[i] = next(), next()
		a[i] = 4 + math.Abs(next())
		f[i] = 10 * next()
	}
	b[0], c[n-1] = 0, 0
	return
}
