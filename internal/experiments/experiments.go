// Package experiments contains one driver per reproduced artifact of the
// paper: the five figures (F1-F5) and the measured claims (E1-E9) indexed
// in DESIGN.md. Each driver is deterministic — it runs on the simulated
// machine with fixed seeds — and returns both a rendered text report and a
// map of named metrics that the test and benchmark harnesses assert on.
// cmd/kfbench prints the reports; EXPERIMENTS.md records them.
package experiments

import (
	"fmt"
	"math"
	"sort"
	"strings"

	"repro/internal/chaos"
	"repro/internal/core"
	"repro/internal/machine"
)

// transportCfg is the package-wide transport selection: kfbench's
// -transport and -nodes flags route every system built through newSys onto
// a named transport, exercising the whole experiment suite over any
// registered substrate (values and message censuses are transport-
// invariant, so the metrics must not move under a flat cost model).
var transportCfg struct {
	name  string
	nodes int
}

// SetTransport selects the transport every newSys-built experiment system
// runs on, by registry name. nodes is the requested federation node count;
// because the suite's machines come in many sizes, each system clamps it
// to gcd(nodes, processor count) so it always divides. An empty name
// restores the per-experiment defaults. Unknown names and federation
// shapes the transport rejects are reported as errors.
func SetTransport(name string, nodes int) error {
	if name == "" {
		transportCfg.name, transportCfg.nodes = "", 0
		return nil
	}
	if nodes < 0 {
		return fmt.Errorf("experiments: negative node count %d", nodes)
	}
	probe := nodes
	if probe < 1 {
		probe = 1
	}
	// Probe the registry with an n the node count trivially divides, so
	// "unknown transport" and "transport does not federate" both surface
	// here instead of as a panic mid-experiment.
	if _, err := machine.NewTransportByName(name, probe, probe); err != nil {
		return err
	}
	transportCfg.name, transportCfg.nodes = name, nodes
	return nil
}

// executorCfg is the package-wide execution-engine selection: kfbench's
// -executor flag routes every newSys-built experiment system onto a named
// engine. Values, censuses and virtual times are engine-invariant, so the
// metrics must not move.
var executorCfg string

// SetExecutor selects the execution engine every newSys-built experiment
// system runs on, by registry name (machine.RegisterExecutor). An empty
// name restores the default engine; unknown names are reported as errors.
func SetExecutor(name string) error {
	if name == "" {
		executorCfg = ""
		return nil
	}
	if _, err := machine.NewExecutorByName(name); err != nil {
		return err
	}
	executorCfg = name
	return nil
}

func gcd(a, b int) int {
	for b != 0 {
		a, b = b, a%b
	}
	return a
}

// chaosCfg is the package-wide fault-injection selection: kfbench's -chaos
// flag routes every newSys-built experiment system through a chaos-wrapped
// transport running the given scenario, and tracks those systems so the
// suite's fault/recovery reports can be aggregated afterwards.
var chaosCfg struct {
	set     bool
	sc      chaos.Scenario
	systems []*core.System
}

// SetChaos installs a fault scenario on every system newSys builds from now
// on: the selected transport (default "shared") is replaced by its
// chaos-wrapped variant and the scenario applied. The scaling experiments
// (S1-S5), which declare their transports explicitly, are not disturbed —
// their entire point is a specific arrangement. Call ClearChaos (or a fresh
// process) to restore fault-free runs.
func SetChaos(sc chaos.Scenario) error {
	if err := sc.Validate(); err != nil {
		return err
	}
	chaosCfg.set = true
	chaosCfg.sc = sc
	chaosCfg.systems = nil
	return nil
}

// ClearChaos restores fault-free experiment systems and drops the tracked
// reports.
func ClearChaos() {
	chaosCfg.set = false
	chaosCfg.sc = chaos.Scenario{}
	chaosCfg.systems = nil
}

// ChaosReport aggregates the fault/recovery reports of every chaos-wrapped
// system built since SetChaos — the whole-suite census kfbench writes out.
// ok is false when no scenario is installed.
func ChaosReport() (rep chaos.Report, ok bool) {
	if !chaosCfg.set {
		return chaos.Report{}, false
	}
	rep = chaos.Report{Name: chaosCfg.sc.Name, Seed: chaosCfg.sc.Seed}
	for _, sys := range chaosCfg.systems {
		if r, sysOK := sys.ChaosTotalReport(); sysOK {
			rep = rep.Add(r)
		}
	}
	return rep, true
}

// newSys declares the experiment's system on the given processor grid
// shape — iPSC/2 costs and the shared transport unless the extra options
// (or a kfbench -transport selection) say otherwise. Experiments panic on
// misconfiguration, as they do on any internal failure.
func newSys(shape []int, opts ...core.Option) *core.System {
	all := []core.Option{core.Grid(shape...)}
	name := transportCfg.name
	if transportCfg.name != "" {
		size := 1
		for _, e := range shape {
			size *= e
		}
		nodes := transportCfg.nodes
		if nodes < 1 {
			nodes = 1
		}
		if chaosCfg.set && !strings.HasPrefix(name, machine.ChaosPrefix) {
			name = machine.ChaosPrefix + name
		}
		all = append(all, core.Transport(name), core.Nodes(gcd(nodes, size)))
	} else if chaosCfg.set {
		name = machine.ChaosPrefix + "shared"
		all = append(all, core.Transport(name))
	}
	if chaosCfg.set {
		all = append(all, core.Chaos(chaosCfg.sc))
	}
	if executorCfg != "" {
		all = append(all, core.Executor(executorCfg))
	}
	all = append(all, opts...)
	sys := mustSys(all...)
	if chaosCfg.set {
		chaosCfg.systems = append(chaosCfg.systems, sys)
	}
	return sys
}

// mustSys builds a system from explicit options only — for the scaling
// experiments (S1-S4) whose entire point is a specific transport
// arrangement, which a global -transport selection must not disturb.
func mustSys(opts ...core.Option) *core.System { return core.MustSystem(opts...) }

// runProg runs prog on sys, panicking on failure (experiment style).
func runProg(sys *core.System, prog *core.Program) core.Run {
	run, err := sys.RunProgram(prog)
	if err != nil {
		panic(err)
	}
	return run
}

// Result is one experiment's output.
type Result struct {
	// ID is the experiment identifier from DESIGN.md (F1..F5, E1..E9).
	ID string
	// Title is a one-line description.
	Title string
	// Text is the rendered report (tables, series, activity diagrams).
	Text string
	// Metrics carries the key numbers for programmatic assertions.
	Metrics map[string]float64
}

// Entry indexes one experiment without running it: selection and listing
// stay cheap no matter how heavy the suite grows.
type Entry struct {
	// ID is the experiment identifier from DESIGN.md (F1..F5, E1..E9,
	// A1..A3, S1..S4).
	ID string
	// Title is the one-line description (matches the Result's Title).
	Title string
	// Run executes the experiment.
	Run func() Result
}

// Suite returns the experiment index in index order.
func Suite() []Entry {
	return []Entry{
		{"F1", "first reduction step of the substructured tridiagonal solver (Figure 1)", F1FirstReduction},
		{"F2", "reduction of four rows of a tridiagonal system (Figure 2)", F2FourRowReduction},
		{"F3", "dataflow graph of the substructured algorithm (Figure 3)", F3Dataflow},
		{"F4", "substitution phase recovers the sequential solution (Figure 4)", F4Substitution},
		{"F5", "shuffle/unshuffle mapping of the dataflow graph (Figure 5)", F5Mapping},
		{"E1", "Jacobi: sequential vs message passing vs KF1 (Listings 1-3, claim C2)", E1Jacobi},
		{"E2", "parallel tridiagonal solver scaling (Listing 4)", E2Tri},
		{"E3", "pipelining multiple tridiagonal systems (Listing 6, claim C4)", E3Pipeline},
		{"E4", "ADI iteration built from parallel tridiagonal kernels (Listing 7)", E4ADI},
		{"E5", "pipelined ADI (madi) vs line-at-a-time ADI (claim C4)", E5MADI},
		{"E6", "multigrid with zebra relaxation and semicoarsening (Listings 9-11)", E6Multigrid},
		{"E7", "distribution choice ablation for MG3 (Section 5 discussion, claim C3)", E7Distribution},
		{"E8", "code size: message passing vs sequential vs KF1 (claim C1)", E8CodeSize},
		{"E9", "implicit communication: compiled exchange vs runtime gathering (Section 2)", E9Inspector},
		{"A1", "ablation: shuffle/unshuffle vs left-packed dataflow mapping (Figure 5 design choice)", A1Mapping},
		{"A2", "performance estimator vs simulator (the tool Section 2 promises)", A2Estimator},
		{"A3", "block vs cyclic columns for dense LU (Section 2's cyclic motivation)", A3Cyclic},
		{"S1", "64-processor scaling and schedule-replay equivalence", S1Scale64},
		{"S2", "256-processor federation and transport equivalence", S2Transport256},
		{"S3", "1024-processor federation with per-link cost model", S3Hierarchical1024},
		{"S4", "per-link cost asymmetry: slow uplinks and fast backbones", S4LinkAsymmetry},
		{"S5", "256-processor chaos: seeded faults, recovery, bit-identical values", S5ChaosRecovery},
		{"S6", "16384 virtual processors on the calendar executor, engine equivalence", S6Calendar16384},
	}
}

// All runs every experiment in index order.
func All() []Result {
	entries := Suite()
	out := make([]Result, 0, len(entries))
	for _, e := range entries {
		out = append(out, e.Run())
	}
	return out
}

// Render formats a result for terminal output.
func Render(r Result) string {
	var sb strings.Builder
	fmt.Fprintf(&sb, "== %s: %s ==\n", r.ID, r.Title)
	sb.WriteString(r.Text)
	if len(r.Metrics) > 0 {
		keys := make([]string, 0, len(r.Metrics))
		for k := range r.Metrics {
			keys = append(keys, k)
		}
		sort.Strings(keys)
		sb.WriteString("metrics:")
		for _, k := range keys {
			fmt.Fprintf(&sb, " %s=%.6g", k, r.Metrics[k])
		}
		sb.WriteString("\n")
	}
	return sb.String()
}

// maxAbsDiff returns the largest absolute element difference.
func maxAbsDiff(a, b []float64) float64 {
	worst := 0.0
	for i := range a {
		if d := math.Abs(a[i] - b[i]); d > worst {
			worst = d
		}
	}
	return worst
}

// randTridiag builds a diagonally dominant system of size n from a seed.
func randTridiag(seed uint64, n int) (b, a, c, f []float64) {
	b = make([]float64, n)
	a = make([]float64, n)
	c = make([]float64, n)
	f = make([]float64, n)
	s := seed
	next := func() float64 {
		s += 0x9e3779b97f4a7c15
		z := s
		z = (z ^ (z >> 30)) * 0xbf58476d1ce4e5b9
		z = (z ^ (z >> 27)) * 0x94d049bb133111eb
		z ^= z >> 31
		return float64(z%2000)/1000 - 1
	}
	for i := 0; i < n; i++ {
		b[i], c[i] = next(), next()
		a[i] = 4 + math.Abs(next())
		f[i] = 10 * next()
	}
	b[0], c[n-1] = 0, 0
	return
}
