package experiments

import (
	"repro/internal/adi"
	"repro/internal/jacobi"
	"repro/internal/machine"
	"repro/internal/perfest"
	"repro/internal/report"
	"repro/internal/topology"
)

// S2Transport256 scales the runtime to 256 simulated processors (a 16x16
// grid) and proves the transport layer is semantically invisible: Jacobi
// and pipelined ADI run once over the shared-memory mailbox transport and
// once over a 4-node x 64-processor federation, and must produce
// bit-identical solutions, virtual times and message statistics — the
// loosely-coupled model's promise that an algorithm's meaning lives in its
// messages, not in the machinery delivering them. The federation's link
// counters are then validated exactly against perfest's combinatorial
// prediction of the node-interconnect traffic.
func S2Transport256() Result {
	const n, p, nodes, iters = 256, 16, 4, 3
	x0, f := jacobi.Problem(n)
	g := topology.New(p, p)
	metrics := map[string]float64{}

	type trun struct {
		elapsed float64
		stats   machine.Stats
		x       [][]float64
	}
	jacobiOn := func(m *machine.Machine, g *topology.Grid, iters int) trun {
		res, err := jacobi.KF1(m, g, x0, f, iters)
		if err != nil {
			panic(err)
		}
		return trun{elapsed: res.Elapsed, stats: res.Stats, x: res.X}
	}
	sameRun := func(a, b trun) float64 {
		if a.elapsed != b.elapsed || a.stats != b.stats {
			return 0
		}
		for i := range a.x {
			for j := range a.x[i] {
				if a.x[i][j] != b.x[i][j] {
					return 0
				}
			}
		}
		return 1
	}

	tbl := report.NewTable("256-processor transport equivalence (iPSC/2 costs)",
		"program", "transport", "time (s)", "msgs", "bytes")

	// Jacobi across transports.
	shared := jacobiOn(machine.New(p*p, machine.IPSC2()), g, iters)
	fed := jacobiOn(machine.NewFederated(p*p, nodes, machine.IPSC2()), g, iters)
	tbl.AddRow("jacobi 16x16", "shared", shared.elapsed, shared.stats.MsgsSent, shared.stats.BytesSent)
	tbl.AddRow("jacobi 16x16", "federated 4x64", fed.elapsed, fed.stats.MsgsSent, fed.stats.BytesSent)
	metrics["s2_jacobi_identical"] = sameRun(shared, fed)
	metrics["s2_jacobi_time_p256"] = shared.elapsed
	metrics["s2_jacobi_msgs_p256"] = float64(shared.stats.MsgsSent)

	// Pipelined ADI (the paper's madi) across transports.
	adiOn := func(m *machine.Machine) trun {
		par := adi.Params{N: 64, A: 1, B: 1, Iters: 2}
		res, err := adi.Parallel(m, g, par, adi.TestProblem(par.N), true)
		if err != nil {
			panic(err)
		}
		return trun{elapsed: res.Elapsed, stats: res.Stats, x: res.U}
	}
	adiShared := adiOn(machine.New(p*p, machine.IPSC2()))
	adiFed := adiOn(machine.NewFederated(p*p, nodes, machine.IPSC2()))
	tbl.AddRow("madi 16x16", "shared", adiShared.elapsed, adiShared.stats.MsgsSent, adiShared.stats.BytesSent)
	tbl.AddRow("madi 16x16", "federated 4x64", adiFed.elapsed, adiFed.stats.MsgsSent, adiFed.stats.BytesSent)
	metrics["s2_adi_identical"] = sameRun(adiShared, adiFed)
	metrics["s2_adi_time_p256"] = adiShared.elapsed

	// Scaling: the same problem on 64 and 256 processors.
	s64 := jacobiOn(machine.New(64, machine.IPSC2()), topology.New(8, 8), iters)
	metrics["s2_speedup_64_to_256"] = s64.elapsed / shared.elapsed
	tbl.AddNote("jacobi n=%d, %d iters: 8x8 %.4gs -> 16x16 %.4gs (%.2fx)",
		n, iters, s64.elapsed, shared.elapsed, s64.elapsed/shared.elapsed)

	// Link census: run the federated Jacobi at two iteration counts and
	// difference the interconnect counters, isolating the per-iteration
	// inter-node traffic from the one-off reduction/gather epilogue; the
	// result must match perfest's combinatorial prediction exactly.
	mf := machine.NewFederated(p*p, nodes, machine.IPSC2())
	tr := mf.Transport().(*machine.FederatedTransport)
	linkSnap := func() (msgs, bytes [][]int64) {
		msgs = make([][]int64, nodes)
		bytes = make([][]int64, nodes)
		for a := 0; a < nodes; a++ {
			msgs[a] = make([]int64, nodes)
			bytes[a] = make([]int64, nodes)
			for b := 0; b < nodes; b++ {
				msgs[a][b], bytes[a][b] = tr.LinkTraffic(a, b)
			}
		}
		return msgs, bytes
	}
	jacobiOn(mf, g, iters)
	msgsA, bytesA := tr.InterNodeTraffic()
	linkMsgsA, linkBytesA := linkSnap()
	jacobiOn(mf, g, iters+2)
	msgsB, bytesB := tr.InterNodeTraffic()
	linkMsgsB, linkBytesB := linkSnap()
	gotMsgs := int(msgsB-msgsA) / 2
	gotBytes := int(bytesB-bytesA) / 2
	wantMsgs, wantBytes := perfest.JacobiInterNode(n, p, nodes)
	match := 1.0
	if gotMsgs != wantMsgs || gotBytes != wantBytes {
		match = 0
	}
	metrics["s2_internode_match"] = match
	metrics["s2_internode_msgs_per_iter"] = float64(gotMsgs)
	tbl.AddNote("inter-node traffic per iteration: %d msgs / %d bytes (perfest predicts %d / %d)",
		gotMsgs, gotBytes, wantMsgs, wantBytes)

	// Per-link structure of the per-iteration halo pattern (again by
	// differencing the two runs, which cancels the epilogue's asymmetric
	// reduce/gather funnel): adjacent node pairs trade identical counts
	// in both directions, non-adjacent pairs never talk.
	symmetric := 1.0
	for a := 0; a < nodes; a++ {
		for b := 0; b < nodes; b++ {
			dm := linkMsgsB[a][b] - linkMsgsA[a][b]
			db := linkBytesB[a][b] - linkBytesA[a][b]
			rm := linkMsgsB[b][a] - linkMsgsA[b][a]
			rb := linkBytesB[b][a] - linkBytesA[b][a]
			switch {
			case a == b:
			case a+1 == b || b+1 == a:
				if dm == 0 || dm != rm || db != rb {
					symmetric = 0
				}
			default:
				if dm != 0 || db != 0 {
					symmetric = 0
				}
			}
		}
	}
	metrics["s2_links_symmetric"] = symmetric

	tbl.AddNote("transport equivalence: jacobi identical=%v, madi identical=%v",
		metrics["s2_jacobi_identical"] == 1, metrics["s2_adi_identical"] == 1)
	return Result{
		ID:      "S2",
		Title:   "256-processor federation and transport equivalence",
		Text:    tbl.String(),
		Metrics: metrics,
	}
}
