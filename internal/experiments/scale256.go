package experiments

import (
	"repro/internal/adi"
	"repro/internal/core"
	"repro/internal/perfest"
	"repro/internal/report"
)

// S2Transport256 scales the runtime to 256 simulated processors (a 16x16
// grid) and proves the transport layer is semantically invisible: the same
// Jacobi and pipelined-ADI Programs run once on the shared-memory mailbox
// system and once on a 4-node x 64-processor federation (core.Compare),
// and must produce bit-identical solutions, virtual times and message
// statistics — the loosely-coupled model's promise that an algorithm's
// meaning lives in its messages, not in the machinery delivering them. A
// third run on the cross-process "ipc" transport (worker processes over
// Unix sockets) must match the same baseline bit-for-bit. The
// federation's link censuses are then validated exactly against perfest's
// combinatorial prediction of the node-interconnect traffic.
func S2Transport256() Result {
	const n, p, nodes, iters = 256, 16, 4, 3
	metrics := map[string]float64{}

	shared := mustSys(core.Grid(p, p))
	fed := mustSys(core.Grid(p, p), core.Transport("federated"), core.Nodes(nodes))
	ipc := mustSys(core.Grid(p, p), core.Transport("ipc"), core.Nodes(nodes))
	defer ipc.Close()
	sameRun := func(cmp core.Comparison) float64 {
		return boolMetric(cmp.Identical && cmp.TimesIdentical)
	}

	tbl := report.NewTable("256-processor transport equivalence (iPSC/2 costs)",
		"program", "transport", "time (s)", "msgs", "bytes")

	// Jacobi across transports.
	jp := jacobiProgram(n, iters)
	cmpJ, err := core.Compare(jp, shared, fed)
	if err != nil {
		panic(err)
	}
	tbl.AddRow("jacobi 16x16", "shared", cmpJ.A.Elapsed, cmpJ.A.Stats.MsgsSent, cmpJ.A.Stats.BytesSent)
	tbl.AddRow("jacobi 16x16", "federated 4x64", cmpJ.B.Elapsed, cmpJ.B.Stats.MsgsSent, cmpJ.B.Stats.BytesSent)
	cmpJI := core.CompareRuns(cmpJ.A, runProg(ipc, jp))
	tbl.AddRow("jacobi 16x16", "ipc 4x64", cmpJI.B.Elapsed, cmpJI.B.Stats.MsgsSent, cmpJI.B.Stats.BytesSent)
	metrics["s2_jacobi_ipc_identical"] = sameRun(cmpJI)
	metrics["s2_jacobi_identical"] = sameRun(cmpJ)
	metrics["s2_jacobi_time_p256"] = cmpJ.A.Elapsed
	metrics["s2_jacobi_msgs_p256"] = float64(cmpJ.A.Stats.MsgsSent)

	// Pipelined ADI (the paper's madi) across transports.
	par := adi.Params{N: 64, A: 1, B: 1, Iters: 2}
	cmpA, err := core.Compare(adiProgram(par, true), shared, fed)
	if err != nil {
		panic(err)
	}
	tbl.AddRow("madi 16x16", "shared", cmpA.A.Elapsed, cmpA.A.Stats.MsgsSent, cmpA.A.Stats.BytesSent)
	tbl.AddRow("madi 16x16", "federated 4x64", cmpA.B.Elapsed, cmpA.B.Stats.MsgsSent, cmpA.B.Stats.BytesSent)
	cmpAI := core.CompareRuns(cmpA.A, runProg(ipc, adiProgram(par, true)))
	tbl.AddRow("madi 16x16", "ipc 4x64", cmpAI.B.Elapsed, cmpAI.B.Stats.MsgsSent, cmpAI.B.Stats.BytesSent)
	metrics["s2_adi_ipc_identical"] = sameRun(cmpAI)
	metrics["s2_adi_identical"] = sameRun(cmpA)
	metrics["s2_adi_time_p256"] = cmpA.A.Elapsed

	// Scaling: the same problem on 64 and 256 processors.
	s64 := runProg(mustSys(core.Grid(8, 8)), jp)
	metrics["s2_speedup_64_to_256"] = s64.Elapsed / cmpJ.A.Elapsed
	tbl.AddNote("jacobi n=%d, %d iters: 8x8 %.4gs -> 16x16 %.4gs (%.2fx)",
		n, iters, s64.Elapsed, cmpJ.A.Elapsed, s64.Elapsed/cmpJ.A.Elapsed)

	// Link census: run the federated Jacobi at two iteration counts and
	// difference the per-run link censuses, isolating the per-iteration
	// inter-node traffic from the one-off reduction/gather epilogue; the
	// result must match perfest's combinatorial prediction exactly.
	runA := runProg(fed, jp)
	runB := runProg(fed, jacobiProgram(n, iters+2))
	diff := runB.Links.Sub(runA.Links)
	dMsgs, dBytes := diff.Total()
	gotMsgs := int(dMsgs) / 2
	gotBytes := int(dBytes) / 2
	wantMsgs, wantBytes := perfest.JacobiInterNode(n, p, nodes)
	metrics["s2_internode_match"] = boolMetric(gotMsgs == wantMsgs && gotBytes == wantBytes)
	metrics["s2_internode_msgs_per_iter"] = float64(gotMsgs)
	tbl.AddNote("inter-node traffic per iteration: %d msgs / %d bytes (perfest predicts %d / %d)",
		gotMsgs, gotBytes, wantMsgs, wantBytes)

	// Per-link structure of the per-iteration halo pattern (the same
	// differencing cancels the epilogue's asymmetric reduce/gather
	// funnel): adjacent node pairs trade identical counts in both
	// directions, non-adjacent pairs never talk.
	symmetric := 1.0
	for a := 0; a < nodes; a++ {
		for b := 0; b < nodes; b++ {
			dm, db := diff.Msgs[a][b], diff.Bytes[a][b]
			rm, rb := diff.Msgs[b][a], diff.Bytes[b][a]
			switch {
			case a == b:
			case a+1 == b || b+1 == a:
				if dm == 0 || dm != rm || db != rb {
					symmetric = 0
				}
			default:
				if dm != 0 || db != 0 {
					symmetric = 0
				}
			}
		}
	}
	metrics["s2_links_symmetric"] = symmetric

	tbl.AddNote("transport equivalence: jacobi identical=%v (ipc %v), madi identical=%v (ipc %v)",
		metrics["s2_jacobi_identical"] == 1, metrics["s2_jacobi_ipc_identical"] == 1,
		metrics["s2_adi_identical"] == 1, metrics["s2_adi_ipc_identical"] == 1)
	return Result{
		ID:      "S2",
		Title:   "256-processor federation and transport equivalence",
		Text:    tbl.String(),
		Metrics: metrics,
	}
}
