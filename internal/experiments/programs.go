package experiments

import (
	"repro/internal/adi"
	"repro/internal/core"
	"repro/internal/jacobi"
	"repro/internal/kf"
)

// The scaling experiments (S1-S4) all ask the same question — does the
// same program mean the same thing on a different machine? — so their
// workloads are declared once here as core.Programs and run on whatever
// System each experiment builds, replacing the per-experiment jacobiOn /
// adiOn wrappers that used to hand-wire machines.

// jacobiProgram declares the KF1 Jacobi iteration (len(x0) x len(x0)
// points, iters sweeps) as a core.Program: values are the gathered
// solution from rank 0, elapsed is the iteration loop's finish time
// (excluding the verification gather).
func jacobiProgram(x0, f [][]float64, iters int) *core.Program {
	return &core.Program{
		Name: keyf("jacobi-n%d-x%d", len(x0), iters),
		Body: func(c *kf.Ctx) (core.Output, error) {
			flat, elapsed := jacobi.KF1Ctx(c, x0, f, iters)
			return core.Output{Values: flat, Elapsed: elapsed}, nil
		},
	}
}

// adiProgram declares the ADI iteration (pipelined = the paper's madi) as
// a core.Program; values are the gathered final interior solution.
func adiProgram(par adi.Params, f [][]float64, pipelined bool) *core.Program {
	name := "adi"
	if pipelined {
		name = "madi"
	}
	return &core.Program{
		Name: keyf("%s-n%d-x%d", name, par.N, par.Iters),
		Body: func(c *kf.Ctx) (core.Output, error) {
			flat, _, elapsed := adi.ParallelCtx(c, par, f, pipelined)
			return core.Output{Values: flat, Elapsed: elapsed}, nil
		},
	}
}
