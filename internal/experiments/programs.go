package experiments

import (
	"repro/internal/adi"
	"repro/internal/core"
	"repro/internal/progs"
)

// The scaling experiments (S1-S4) all ask the same question — does the
// same program mean the same thing on a different machine? — so their
// workloads come from the shared program registry (internal/progs): one
// declaration serves every experiment, and because the programs are
// registry-built they carry the (name, args) identity that lets an ipc
// System execute them inside its worker processes.

// jacobiProgram builds the registered KF1 Jacobi iteration (n x n points
// over jacobi.Problem, iters sweeps): values are the gathered solution
// from rank 0, elapsed is the iteration loop's finish time (excluding the
// verification gather).
func jacobiProgram(n, iters int) *core.Program {
	p, err := progs.Jacobi(n, iters)
	if err != nil {
		panic(err)
	}
	return p
}

// adiProgram builds the registered ADI iteration (pipelined = the paper's
// madi) over adi.TestProblem(par.N); values are the gathered final
// interior solution.
func adiProgram(par adi.Params, pipelined bool) *core.Program {
	p, err := progs.ADI(par, pipelined)
	if err != nil {
		panic(err)
	}
	return p
}
