package experiments

import (
	"repro/internal/core"
	"repro/internal/darray"
	"repro/internal/dist"
	"repro/internal/kf"
	"repro/internal/machine"
	"repro/internal/report"
	"repro/internal/trace"
	"repro/internal/tridiag"
)

// triOnce solves one random n-row system on p processors under the given
// cost model and returns the virtual time and machine statistics.
func triOnce(p, n int, cost machine.CostModel) (float64, machine.Stats) {
	sys := newSys([]int{p}, core.Cost(cost))
	b, a, c, f := randTridiag(31, n)
	elapsed, err := sys.Run(func(ctx *kf.Ctx) error {
		mk := func(v []float64) *darray.Array {
			arr := ctx.NewArray(darray.Spec{Extents: []int{n}, Dists: []dist.Dist{dist.Block{}}})
			vv := v
			arr.OwnedRuns(func(idx []int, vals []float64) { copy(vals, vv[idx[0]:]) })
			return arr
		}
		x := ctx.NewArray(darray.Spec{Extents: []int{n}, Dists: []dist.Dist{dist.Block{}}})
		return tridiag.Tri(ctx, x, mk(f), mk(b), mk(a), mk(c))
	})
	if err != nil {
		panic(err)
	}
	return elapsed, sys.Stats()
}

// E2Tri sweeps the substructured solver over processor counts on two cost
// models: communication-dominated (iPSC/2) and balanced. The shape the
// paper implies: the algorithm scales while blocks are big, and latency
// (log2 p tree steps) caps the win on slow networks.
func E2Tri() Result {
	const n = 2048
	tbl := report.NewTable("substructured tridiagonal solve, n=2048",
		"processors", "iPSC/2 time (s)", "iPSC/2 speedup", "balanced time (s)", "balanced speedup", "msgs")
	var t1i, t1b float64
	metrics := map[string]float64{}
	for _, p := range []int{1, 2, 4, 8, 16, 32} {
		ti, _ := triOnce(p, n, machine.IPSC2())
		tb, st := triOnce(p, n, machine.Balanced())
		if p == 1 {
			t1i, t1b = ti, tb
		}
		tbl.AddRow(p, ti, t1i/ti, tb, t1b/tb, st.MsgsSent)
		metrics[keyf("speedup_ipsc2_p%d", p)] = t1i / ti
		metrics[keyf("speedup_balanced_p%d", p)] = t1b / tb
	}
	tbl.AddNote("reduction tree costs 2·log2(p) latency-bound steps; big blocks amortize them")
	return Result{
		ID:      "E2",
		Title:   "parallel tridiagonal solver scaling (Listing 4)",
		Text:    tbl.String(),
		Metrics: metrics,
	}
}

// E3Pipeline measures claim C4 on the tridiagonal kernel: m systems through
// the pipelined solver versus m one-at-a-time solves, sweeping m.
func E3Pipeline() Result {
	const p, n = 8, 256
	tbl := report.NewTable("pipelined vs one-at-a-time, p=8, n=256 per system (iPSC/2 costs)",
		"systems", "one-at-a-time (s)", "pipelined (s)", "ratio", "pipe utilization")
	metrics := map[string]float64{}
	for _, msys := range []int{1, 2, 4, 8, 16, 32} {
		tSeq, _ := runMany(p, n, msys, false, false)
		tPipe, rec := runMany(p, n, msys, true, true)
		util := rec.MeanUtilization(tPipe)
		tbl.AddRow(msys, tSeq, tPipe, tSeq/tPipe, util)
		metrics[keyf("ratio_m%d", msys)] = tSeq / tPipe
	}
	tbl.AddNote("the ratio grows with m as the pipeline fills (paper Figure 5 discussion)")
	return Result{
		ID:      "E3",
		Title:   "pipelining multiple tridiagonal systems (Listing 6, claim C4)",
		Text:    tbl.String(),
		Metrics: metrics,
	}
}

// runMany solves msys constant-coefficient systems, pipelined or not, and
// returns the virtual time plus the run's trace recorder when traced
// (tracing is host-side cost only, so timing-only runs skip it).
func runMany(p, n, msys int, pipelined, traced bool) (float64, *trace.Recorder) {
	var opts []core.Option
	if traced {
		opts = append(opts, core.Trace())
	}
	sys := newSys([]int{p}, opts...)
	elapsed, err := sys.Run(func(ctx *kf.Ctx) error {
		xs := make([]*darray.Array, msys)
		fs := make([]*darray.Array, msys)
		for j := 0; j < msys; j++ {
			jj := j
			fa := ctx.NewArray(darray.Spec{Extents: []int{n}, Dists: []dist.Dist{dist.Block{}}})
			fa.FillOwned(func(idx []int) float64 { return float64((idx[0]*jj)%13) - 6 })
			xs[j] = ctx.NewArray(darray.Spec{Extents: []int{n}, Dists: []dist.Dist{dist.Block{}}})
			fs[j] = fa
		}
		if pipelined {
			return tridiag.MTriC(ctx, xs, fs, -1, 4, -1)
		}
		for j := 0; j < msys; j++ {
			if err := tridiag.TriC(ctx, xs[j], fs[j], -1, 4, -1); err != nil {
				return err
			}
		}
		return nil
	})
	if err != nil {
		panic(err)
	}
	return elapsed, sys.Trace
}

func keyf(format string, args ...interface{}) string {
	return sprintf(format, args...)
}
