package experiments

import (
	"repro/internal/adi"
	"repro/internal/core"
	"repro/internal/report"
)

// S1Scale64 pushes the runtime past the paper's 4-16 processor runs: Jacobi
// on 2x2, 4x4 and 8x8 (64-processor) grids, plus a 64-processor pipelined
// ADI run — and proves the inspector/executor machinery is semantically
// invisible at that scale by comparing the same Program on two 8x8 systems,
// one replaying compiled schedules and one (core.DirectScheduling) deriving
// all communication directly, and requiring identical virtual times,
// message counts, byte counts and results.
func S1Scale64() Result {
	const n, iters = 128, 4
	prog := jacobiProgram(n, iters)
	tbl := report.NewTable("Jacobi n=128, 4 iterations (iPSC/2 costs), compiled schedules",
		"grid", "procs", "time (s)", "speedup vs 2x2", "msgs", "bytes")
	metrics := map[string]float64{}

	var t2 float64
	for _, p := range []int{2, 4, 8} {
		r := runProg(mustSys(core.Grid(p, p)), prog)
		if p == 2 {
			t2 = r.Elapsed
		}
		tbl.AddRow(sprintf("%dx%d", p, p), p*p, r.Elapsed, t2/r.Elapsed, r.Stats.MsgsSent, r.Stats.BytesSent)
		metrics[keyf("jacobi_time_p%d", p*p)] = r.Elapsed
		metrics[keyf("jacobi_msgs_p%d", p*p)] = float64(r.Stats.MsgsSent)
	}

	// Schedule-replay equivalence at 64 processors: the compiled path must
	// be bit-identical to direct derivation.
	cmp, err := core.Compare(prog,
		mustSys(core.Grid(8, 8)),
		mustSys(core.Grid(8, 8), core.DirectScheduling()))
	if err != nil {
		panic(err)
	}
	metrics["jacobi64_schedule_identical"] = boolMetric(cmp.Identical && cmp.TimesIdentical)

	// 64-processor pipelined ADI (madi): every 8-processor grid slice
	// pipelines its lines through the substructured solver.
	par := adi.Params{N: 64, A: 1, B: 1, Iters: 2}
	aprog := adiProgram(par, true)
	acmp, err := core.Compare(aprog,
		mustSys(core.Grid(8, 8)),
		mustSys(core.Grid(8, 8), core.DirectScheduling()))
	if err != nil {
		panic(err)
	}
	metrics["adi64_schedule_identical"] = boolMetric(acmp.Identical && acmp.TimesIdentical)
	metrics["adi64_time"] = acmp.A.Elapsed
	metrics["adi64_msgs"] = float64(acmp.A.Stats.MsgsSent)

	tbl.AddNote("8x8 schedule replay vs direct derivation: jacobi identical=%v, madi identical=%v",
		metrics["jacobi64_schedule_identical"] == 1, metrics["adi64_schedule_identical"] == 1)
	tbl.AddNote("64-proc pipelined ADI (n=64, 2 iters): %.4g s, %d msgs",
		acmp.A.Elapsed, acmp.A.Stats.MsgsSent)
	return Result{
		ID:      "S1",
		Title:   "64-processor scaling and schedule-replay equivalence",
		Text:    tbl.String(),
		Metrics: metrics,
	}
}
