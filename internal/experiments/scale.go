package experiments

import (
	"repro/internal/adi"
	"repro/internal/darray"
	"repro/internal/jacobi"
	"repro/internal/machine"
	"repro/internal/report"
	"repro/internal/topology"
)

// S1Scale64 pushes the runtime past the paper's 4-16 processor runs: Jacobi
// on 2x2, 4x4 and 8x8 (64-processor) grids, plus a 64-processor pipelined
// ADI run — and proves the inspector/executor machinery is semantically
// invisible at that scale by running the 8x8 cases twice, once replaying
// compiled schedules and once deriving all communication directly, and
// requiring identical virtual times, message counts, byte counts and
// results.
func S1Scale64() Result {
	const n, iters = 128, 4
	x0, f := jacobi.Problem(n)
	tbl := report.NewTable("Jacobi n=128, 4 iterations (iPSC/2 costs), compiled schedules",
		"grid", "procs", "time (s)", "speedup vs 2x2", "msgs", "bytes")
	metrics := map[string]float64{}

	type run struct {
		elapsed float64
		stats   machine.Stats
		x       [][]float64
	}
	jacobiOn := func(p int) run {
		m := machine.New(p*p, machine.IPSC2())
		res, err := jacobi.KF1(m, topology.New(p, p), x0, f, iters)
		if err != nil {
			panic(err)
		}
		return run{elapsed: res.Elapsed, stats: res.Stats, x: res.X}
	}

	var t2 float64
	for _, p := range []int{2, 4, 8} {
		r := jacobiOn(p)
		if p == 2 {
			t2 = r.elapsed
		}
		tbl.AddRow(sprintf("%dx%d", p, p), p*p, r.elapsed, t2/r.elapsed, r.stats.MsgsSent, r.stats.BytesSent)
		metrics[keyf("jacobi_time_p%d", p*p)] = r.elapsed
		metrics[keyf("jacobi_msgs_p%d", p*p)] = float64(r.stats.MsgsSent)
	}

	// Schedule-replay equivalence at 64 processors: the compiled path must
	// be bit-identical to direct derivation.
	sched64 := jacobiOn(8)
	prev := darray.SetScheduling(false)
	direct64 := jacobiOn(8)
	darray.SetScheduling(prev)
	identical := 1.0
	if sched64.elapsed != direct64.elapsed ||
		sched64.stats != direct64.stats {
		identical = 0
	}
	for i := range sched64.x {
		for j := range sched64.x[i] {
			if sched64.x[i][j] != direct64.x[i][j] {
				identical = 0
			}
		}
	}
	metrics["jacobi64_schedule_identical"] = identical

	// 64-processor pipelined ADI (madi): every 8-processor grid slice
	// pipelines its lines through the substructured solver.
	adiRun := func() run {
		m := machine.New(64, machine.IPSC2())
		par := adi.Params{N: 64, A: 1, B: 1, Iters: 2}
		res, err := adi.Parallel(m, topology.New(8, 8), par, adi.TestProblem(par.N), true)
		if err != nil {
			panic(err)
		}
		return run{elapsed: res.Elapsed, stats: res.Stats, x: res.U}
	}
	adiSched := adiRun()
	prev = darray.SetScheduling(false)
	adiDirect := adiRun()
	darray.SetScheduling(prev)
	adiIdentical := 1.0
	if adiSched.elapsed != adiDirect.elapsed || adiSched.stats != adiDirect.stats {
		adiIdentical = 0
	}
	for i := range adiSched.x {
		for j := range adiSched.x[i] {
			if adiSched.x[i][j] != adiDirect.x[i][j] {
				adiIdentical = 0
			}
		}
	}
	metrics["adi64_schedule_identical"] = adiIdentical
	metrics["adi64_time"] = adiSched.elapsed
	metrics["adi64_msgs"] = float64(adiSched.stats.MsgsSent)

	tbl.AddNote("8x8 schedule replay vs direct derivation: jacobi identical=%v, madi identical=%v",
		identical == 1, adiIdentical == 1)
	tbl.AddNote("64-proc pipelined ADI (n=64, 2 iters): %.4g s, %d msgs",
		adiSched.elapsed, adiSched.stats.MsgsSent)
	return Result{
		ID:      "S1",
		Title:   "64-processor scaling and schedule-replay equivalence",
		Text:    tbl.String(),
		Metrics: metrics,
	}
}
