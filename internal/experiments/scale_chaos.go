package experiments

import (
	"reflect"

	"repro/internal/adi"
	"repro/internal/chaos"
	"repro/internal/core"
	"repro/internal/report"
)

// S5ChaosRecovery runs the 256-processor workloads of S2 — Jacobi and
// pipelined ADI on a 16x16 grid over a 4-node federation — under a sweep of
// seeded fault scenarios (message drops, delays, duplications, a brownout
// window, a node outage) and holds the runtime to the loosely-coupled
// model's promise extended to lossy links: whenever a run completes, its
// values and message census are bit-identical to the fault-free run,
// because retransmission and duplicate absorption preserve exactly the
// message streams the program means — only virtual time honestly pays for
// the faults. Each scenario's fault/recovery report (injected vs recovered
// counts, retry histogram) is a deterministic function of the seed: the
// experiment reruns one scenario on the same pooled system and requires the
// second report and values to reproduce the first exactly.
func S5ChaosRecovery() Result {
	const p, n, nodes, iters = 16, 256, 4, 3
	jp := jacobiProgram(n, iters)
	metrics := map[string]float64{}

	// Fault-free federated baseline.
	fed := mustSys(core.Grid(p, p), core.Transport("federated"), core.Nodes(nodes))
	base := runProg(fed, jp)

	scenarios := []chaos.Scenario{
		{Name: "drop-1pct", Seed: 42, Drop: 0.01},
		{Name: "drop-5pct", Seed: 42, Drop: 0.05},
		{Name: "delay", Seed: 42, Delay: 0.2, DelayMax: 2e-3},
		{Name: "dup-drop", Seed: 7, Drop: 0.02, Dup: 0.05},
		{Name: "storm", Seed: 1989, Drop: 0.03, Dup: 0.03, Delay: 0.1, DelayMax: 1e-3,
			Brownouts: []chaos.Brownout{{Src: -1, Dst: -1, Start: 1e-3, End: 3e-3, Extra: 5e-4}},
			Outages:   []chaos.Outage{{Node: 1, Start: 2e-3, End: 4e-3}}},
	}

	tbl := report.NewTable("256-processor chaos recovery (chaos:federated, 4 nodes, iPSC/2 costs)",
		"scenario", "time (s)", "injected", "recovered", "retry rounds", "identical")

	tbl.AddRow("fault-free", base.Elapsed, int64(0), int64(0), int64(0), "ref")

	allIdentical := true
	var totalInjected, totalRecovered int64
	var repeatOK bool
	for i, sc := range scenarios {
		sys := mustSys(core.Grid(p, p), core.Transport("chaos:federated"), core.Nodes(nodes), core.Chaos(sc))
		run := runProg(sys, jp)
		rep, _ := sys.ChaosReport()
		cmp := core.CompareRuns(base, run)
		identical := cmp.Identical
		allIdentical = allIdentical && identical
		totalInjected += rep.Injected()
		totalRecovered += rep.Recovered()
		tbl.AddRow(sc.Name, run.Elapsed, rep.Injected(), rep.Recovered(), rep.RetryRounds, identical)
		metrics[keyf("s5_%s_identical", sc.Name)] = boolMetric(identical)
		metrics[keyf("s5_%s_injected", sc.Name)] = float64(rep.Injected())

		if i == len(scenarios)-1 {
			// Seed reproducibility on a pooled system: the second run must
			// replay the exact same faults and recoveries — report and
			// values bit-identical to the first.
			again := runProg(sys, jp)
			rep2, _ := sys.ChaosReport()
			cmp2 := core.CompareRuns(run, again)
			repeatOK = reflect.DeepEqual(rep, rep2) && cmp2.Identical && cmp2.TimesIdentical
			tbl.AddNote("repeat of %q (seed %d): report identical=%v, run identical=%v",
				sc.Name, sc.Seed, reflect.DeepEqual(rep, rep2), cmp2.Identical && cmp2.TimesIdentical)
			if h := rep.RetryHistogram; len(h) > 0 {
				tbl.AddNote("%q retry histogram (deliveries by attempt): %v", sc.Name, h[1:])
			}
		}
	}

	// Pipelined ADI (madi) under the storm scenario: the tightly pipelined
	// wavefront must also ride out drops, duplicates and the outage.
	par := adi.Params{N: 64, A: 1, B: 1, Iters: 2}
	ap := adiProgram(par, true)
	baseADI := runProg(fed, ap)
	sysADI := mustSys(core.Grid(p, p), core.Transport("chaos:federated"), core.Nodes(nodes), core.Chaos(scenarios[len(scenarios)-1]))
	runADI := runProg(sysADI, ap)
	repADI, _ := sysADI.ChaosReport()
	cmpADI := core.CompareRuns(baseADI, runADI)
	allIdentical = allIdentical && cmpADI.Identical
	totalInjected += repADI.Injected()
	totalRecovered += repADI.Recovered()
	tbl.AddRow("storm (madi)", runADI.Elapsed, repADI.Injected(), repADI.Recovered(), repADI.RetryRounds, cmpADI.Identical)
	metrics["s5_madi_storm_identical"] = boolMetric(cmpADI.Identical)

	metrics["s5_all_identical"] = boolMetric(allIdentical)
	metrics["s5_repeat_identical"] = boolMetric(repeatOK)
	metrics["s5_injected_total"] = float64(totalInjected)
	metrics["s5_recovered_total"] = float64(totalRecovered)
	tbl.AddNote("across all scenarios: %d faults injected, %d recovered (drops retransmitted + dups absorbed); values bit-identical to fault-free: %v",
		totalInjected, totalRecovered, allIdentical)
	return Result{
		ID:      "S5",
		Title:   "256-processor chaos: seeded faults, recovery, bit-identical values",
		Text:    tbl.String(),
		Metrics: metrics,
	}
}
