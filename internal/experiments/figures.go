package experiments

import (
	"fmt"
	"math"
	"strings"

	"repro/internal/core"
	"repro/internal/darray"
	"repro/internal/dist"
	"repro/internal/kernels"
	"repro/internal/kf"
	"repro/internal/machine"
	"repro/internal/trace"
	"repro/internal/tridiag"
)

// structureString renders the nonzero structure of a block-reduced
// tridiagonal system as a character matrix: 'a' diagonal, 'b'/'c' the
// couplings, '.' zero — the visual form of the paper's Figures 1 and 2.
// blocks lists the block boundaries; reduced tells whether kernels.Reduce
// has been applied (which changes which columns carry the couplings).
func structureString(n int, blockOf func(i int) (lo, hi int), reduced bool) string {
	grid := make([][]byte, n)
	for i := range grid {
		grid[i] = []byte(strings.Repeat(".", n))
	}
	set := func(i, j int, ch byte) {
		if j >= 0 && j < n {
			grid[i][j] = ch
		}
	}
	for i := 0; i < n; i++ {
		lo, hi := blockOf(i)
		set(i, i, 'a')
		if !reduced {
			set(i, i-1, 'b')
			set(i, i+1, 'c')
			continue
		}
		switch i {
		case lo:
			set(i, lo-1, 'b')
			set(i, hi, 'c')
		case hi:
			set(i, lo, 'b')
			set(i, hi+1, 'c')
		default:
			set(i, lo, 'b')
			set(i, hi, 'c')
		}
	}
	var sb strings.Builder
	for i := range grid {
		sb.Write(grid[i])
		sb.WriteString("\n")
	}
	return sb.String()
}

// F1FirstReduction regenerates Figure 1: the structure of an n-row system
// distributed over p processors before and after the first local reduction,
// and verifies numerically that the boundary rows form a tridiagonal system
// of size 2p whose solution agrees with the full solve.
func F1FirstReduction() Result {
	const n, p = 16, 4
	blockOf := func(i int) (int, int) {
		q := dist.Block{}.Owner(i, n, p)
		return dist.Block{}.Lower(q, n, p), dist.Block{}.Upper(q, n, p)
	}
	var sb strings.Builder
	sb.WriteString("before first reduction step (p=4 row blocks):\n")
	sb.WriteString(structureString(n, blockOf, false))
	sb.WriteString("after first reduction step (rows l_i, u_i highlighted by their couplings):\n")
	sb.WriteString(structureString(n, blockOf, true))

	// Numeric check: reduce each block, assemble the 2p boundary system,
	// solve it, and compare boundary values with the full Thomas solve.
	b, a, c, f := randTridiag(11, n)
	want := make([]float64, n)
	kernels.Thomas(nil, b, a, c, f, want)
	var rb, ra, rc, rf []float64
	var boundaryIdx []int
	for q := 0; q < p; q++ {
		lo, hi := q*n/p, (q+1)*n/p-1
		k := hi - lo + 1
		bb := append([]float64(nil), b[lo:hi+1]...)
		ba := append([]float64(nil), a[lo:hi+1]...)
		bc := append([]float64(nil), c[lo:hi+1]...)
		bf := append([]float64(nil), f[lo:hi+1]...)
		kernels.Reduce(nil, bb, ba, bc, bf)
		rb = append(rb, bb[0], bb[k-1])
		ra = append(ra, ba[0], ba[k-1])
		rc = append(rc, bc[0], bc[k-1])
		rf = append(rf, bf[0], bf[k-1])
		boundaryIdx = append(boundaryIdx, lo, hi)
	}
	xb := make([]float64, 2*p)
	kernels.Thomas(nil, rb, ra, rc, rf, xb)
	worst := 0.0
	for k, i := range boundaryIdx {
		if d := math.Abs(xb[k] - want[i]); d > worst {
			worst = d
		}
	}
	fmt.Fprintf(&sb, "reduced 2p = %d row system solves boundary values to max error %.2e\n", 2*p, worst)
	return Result{
		ID:    "F1",
		Title: "first reduction step of the substructured tridiagonal solver (Figure 1)",
		Text:  sb.String(),
		Metrics: map[string]float64{
			"boundary_error": worst,
			"reduced_rows":   float64(2 * p),
		},
	}
}

// F2FourRowReduction regenerates Figure 2: one four-row block reduces so
// that its first and last rows couple directly.
func F2FourRowReduction() Result {
	blockOf := func(i int) (int, int) { return 0, 3 }
	var sb strings.Builder
	sb.WriteString("four rows before reduction:\n")
	sb.WriteString(structureString(4, blockOf, false))
	sb.WriteString("after reduction (rows 0 and 3 couple directly; interiors depend on x0, x3 only):\n")
	sb.WriteString(structureString(4, blockOf, true))

	b, a, c, f := randTridiag(23, 4)
	want := make([]float64, 4)
	kernels.Thomas(nil, b, a, c, f, want)
	kernels.Reduce(nil, b, a, c, f)
	det := a[0]*a[3] - c[0]*b[3]
	x0 := (f[0]*a[3] - c[0]*f[3]) / det
	x3 := (a[0]*f[3] - f[0]*b[3]) / det
	errB := math.Max(math.Abs(x0-want[0]), math.Abs(x3-want[3]))
	got := make([]float64, 4)
	kernels.BackSubstitute(nil, b, a, c, f, x0, x3, got)
	errI := maxAbsDiff(got, want)
	fmt.Fprintf(&sb, "boundary solve error %.2e, interior recovery error %.2e\n", errB, errI)
	return Result{
		ID:    "F2",
		Title: "reduction of four rows of a tridiagonal system (Figure 2)",
		Text:  sb.String(),
		Metrics: map[string]float64{
			"boundary_error": errB,
			"interior_error": errI,
		},
	}
}

// runTraced solves one random system on p processors with step marks and
// returns the recorder and the virtual elapsed time.
func runTraced(p, n int) (*trace.Recorder, float64) {
	sys := newSys([]int{p}, core.Trace())
	b, a, c, f := randTridiag(7, n)
	elapsed, err := sys.Run(func(ctx *kf.Ctx) error {
		mk := func(v []float64) *darray.Array {
			arr := ctx.NewArray(darray.Spec{Extents: []int{n}, Dists: []dist.Dist{dist.Block{}}})
			arr.OwnedRuns(func(idx []int, vals []float64) { copy(vals, v[idx[0]:]) })
			return arr
		}
		x := ctx.NewArray(darray.Spec{Extents: []int{n}, Dists: []dist.Dist{dist.Block{}}})
		return tridiag.TriTraced(ctx, x, mk(f), mk(b), mk(a), mk(c))
	})
	if err != nil {
		panic(err)
	}
	return sys.Trace, elapsed
}

// F3Dataflow regenerates Figure 3: the dataflow graph of the substructured
// algorithm, as the count of active processors per algorithm step —
// halving through the reduction phase, doubling through substitution.
func F3Dataflow() Result {
	const p, n = 8, 64
	rec, _ := runTraced(p, n)
	steps, active := rec.StepActivity("step:")
	counts := trace.ActiveCounts(active)
	var sb strings.Builder
	sb.WriteString("active processors per step (reduction then substitution):\n")
	for k, s := range steps {
		fmt.Fprintf(&sb, "step %2d: %2d  %s\n", s, counts[k], strings.Repeat("*", counts[k]))
	}
	metrics := map[string]float64{}
	for k := range steps {
		metrics[fmt.Sprintf("step%d", steps[k])] = float64(counts[k])
	}
	return Result{
		ID:      "F3",
		Title:   "dataflow graph of the substructured algorithm (Figure 3)",
		Text:    sb.String(),
		Metrics: metrics,
	}
}

// F4Substitution regenerates Figure 4: the substitution phase recovers the
// interior values from the boundary pair; across many random systems and
// grid sizes the parallel solver matches the sequential Thomas solve.
func F4Substitution() Result {
	var sb strings.Builder
	worstAll := 0.0
	for _, p := range []int{2, 4, 8} {
		const n = 48
		b, a, c, f := randTridiag(uint64(p)*101, n)
		want := tridiag.SolveSeq(b, a, c, f)
		var got []float64
		sys := newSys([]int{p}, core.Cost(machine.ZeroComm()))
		_, err := sys.Run(func(ctx *kf.Ctx) error {
			mk := func(v []float64) *darray.Array {
				arr := ctx.NewArray(darray.Spec{Extents: []int{n}, Dists: []dist.Dist{dist.Block{}}})
				arr.OwnedRuns(func(idx []int, vals []float64) { copy(vals, v[idx[0]:]) })
				return arr
			}
			x := ctx.NewArray(darray.Spec{Extents: []int{n}, Dists: []dist.Dist{dist.Block{}}})
			if err := tridiag.Tri(ctx, x, mk(f), mk(b), mk(a), mk(c)); err != nil {
				return err
			}
			flat := x.GatherTo(ctx.NextScope(), 0)
			if ctx.P.Rank() == 0 {
				got = flat
			}
			return nil
		})
		if err != nil {
			panic(err)
		}
		d := maxAbsDiff(got, want)
		fmt.Fprintf(&sb, "p=%d: max |x_parallel - x_thomas| = %.2e\n", p, d)
		if d > worstAll {
			worstAll = d
		}
	}
	return Result{
		ID:      "F4",
		Title:   "substitution phase recovers the sequential solution (Figure 4)",
		Text:    sb.String(),
		Metrics: map[string]float64{"max_error": worstAll},
	}
}

// F5Mapping regenerates Figure 5: the shuffle/unshuffle mapping of the
// dataflow graph onto processor groups, shown as a step-by-processor
// activity table for one system, and the same table once a pipeline of
// systems fills the groups.
func F5Mapping() Result {
	const p, n, msys = 8, 128, 8
	var sb strings.Builder

	rec, elapsed1 := runTraced(p, n)
	steps, active := rec.StepActivity("step:")
	sb.WriteString("one system (Listing 4): levels occupy disjoint processor groups\n")
	sb.WriteString(trace.ActivityTable(steps, active))
	uSingle := rec.MeanUtilization(elapsed1)

	// Pipelined: msys systems through MTriC with marks.
	sys2 := newSys([]int{p}, core.Trace())
	elapsed2, err := sys2.Run(func(ctx *kf.Ctx) error {
		xs := make([]*darray.Array, msys)
		fs := make([]*darray.Array, msys)
		for j := 0; j < msys; j++ {
			fvec := make([]float64, n)
			for i := range fvec {
				fvec[i] = float64((i*j)%11) - 5
			}
			fa := ctx.NewArray(darray.Spec{Extents: []int{n}, Dists: []dist.Dist{dist.Block{}}})
			fv := fvec
			fa.OwnedRuns(func(idx []int, vals []float64) { copy(vals, fv[idx[0]:]) })
			xs[j] = ctx.NewArray(darray.Spec{Extents: []int{n}, Dists: []dist.Dist{dist.Block{}}})
			fs[j] = fa
		}
		return tridiag.MTriCTraced(ctx, xs, fs, -1, 4, -1, true)
	})
	if err != nil {
		panic(err)
	}
	steps2, active2 := sys2.Trace.StepActivity("step:")
	fmt.Fprintf(&sb, "\n%d systems pipelined (Listing 6): groups overlap in time\n", msys)
	sb.WriteString(trace.ActivityTable(steps2, active2))
	uPipe := sys2.Trace.MeanUtilization(elapsed2)
	fmt.Fprintf(&sb, "mean utilization: single %.3f, pipelined %.3f\n", uSingle, uPipe)
	return Result{
		ID:    "F5",
		Title: "shuffle/unshuffle mapping of the dataflow graph (Figure 5)",
		Text:  sb.String(),
		Metrics: map[string]float64{
			"util_single":    uSingle,
			"util_pipelined": uPipe,
		},
	}
}
