package experiments

import (
	"repro/internal/adi"
	"repro/internal/jacobi"
	"repro/internal/machine"
	"repro/internal/perfest"
	"repro/internal/report"
	"repro/internal/topology"
)

// S3Hierarchical1024 scales the runtime to 1024 simulated processors (a
// 32x32 grid) under a hierarchical cost model that prices the node
// interconnect: inter-node messages pay 4x the latency and 8x the byte
// period of intra-node ones. Sweeping the federation across 1, 4, 16 and
// 64 nodes, Jacobi and pipelined ADI must produce bit-identical solutions
// and message/byte censuses on every transport — the program's meaning
// lives in its messages — while the federated virtual times diverge from
// the shared baseline by exactly the inter-node surcharge the performance
// estimator predicts statically: to floating-point tolerance for Jacobi
// (whose halo recurrence perfest evaluates exactly) and to a documented
// critical-path tolerance for the madi pipeline. The elapsed-versus-nodes
// curve is the NUMA knee: whole-row federations pay one boundary ghost per
// iteration, but once nodes outnumber grid rows (64 nodes = half-row
// nodes) every dimension-0 exchange and the intra-row seams cross the
// interconnect and the curve turns sharply up.
func S3Hierarchical1024() Result {
	const (
		n, p, iters = 256, 32, 3
		adiN        = 64
		pp          = p * p
		adiTol      = 0.25 // madi pipeline overlap slack; Jacobi is exact
	)
	cost := machine.IPSC2().WithInterNode(4, 8)
	nodeSweep := []int{1, 4, 16, 64}
	metrics := map[string]float64{}
	tbl := report.NewTable("1024-processor hierarchical federation (iPSC/2 costs, inter-node 4x latency / 8x byte period)",
		"program", "nodes", "time (s)", "vs shared", "surcharge predicted", "identical")

	type trun struct {
		elapsed float64
		stats   machine.Stats
		x       [][]float64
	}
	sameValuesAndCensus := func(a, b trun) bool {
		if a.stats.MsgsSent != b.stats.MsgsSent || a.stats.BytesSent != b.stats.BytesSent ||
			a.stats.MsgsRecv != b.stats.MsgsRecv || a.stats.Flops != b.stats.Flops {
			return false
		}
		for i := range a.x {
			for j := range a.x[i] {
				if a.x[i][j] != b.x[i][j] {
					return false
				}
			}
		}
		return true
	}

	// Jacobi across the node sweep.
	g := topology.New(p, p)
	x0, f := jacobi.Problem(n)
	jacobiOn := func(m *machine.Machine, iters int) trun {
		res, err := jacobi.KF1(m, g, x0, f, iters)
		if err != nil {
			panic(err)
		}
		return trun{elapsed: res.Elapsed, stats: res.Stats, x: res.X}
	}
	shared := jacobiOn(machine.New(pp, cost), iters)
	tbl.AddRow("jacobi 32x32", "shared", shared.elapsed, 1.0, 0.0, true)
	metrics["s3_jacobi_time_shared"] = shared.elapsed
	allIdentical, surchargeExact := 1.0, 1.0
	for _, nodes := range nodeSweep {
		fed := jacobiOn(machine.NewFederated(pp, nodes, cost), iters)
		ident := sameValuesAndCensus(shared, fed)
		if !ident {
			allIdentical = 0
		}
		pred := perfest.JacobiFederatedSurcharge(cost, n, p, iters, nodes)
		got := fed.elapsed - shared.elapsed
		if relErr(pred, got) > 1e-9 && !(pred == 0 && got == 0) {
			surchargeExact = 0
		}
		tbl.AddRow("jacobi 32x32", nodes, fed.elapsed, fed.elapsed/shared.elapsed, pred, ident)
		metrics[keyf("s3_jacobi_time_nodes%d", nodes)] = fed.elapsed
		metrics[keyf("s3_jacobi_surcharge_nodes%d", nodes)] = got
	}
	metrics["s3_jacobi_identical"] = allIdentical
	metrics["s3_jacobi_surcharge_exact"] = surchargeExact

	// Per-iteration link census on the 64-node federation (differencing
	// two run lengths cancels the gather/reduce epilogue), against the
	// estimator's exact enumeration — including the intra-row seams that
	// only exist past the whole-row regime.
	censusMatch := 1.0
	for _, nodes := range []int{4, 64} {
		mf := machine.NewFederated(pp, nodes, cost)
		tr := mf.Transport().(*machine.FederatedTransport)
		jacobiOn(mf, iters)
		msgsA, bytesA := tr.InterNodeTraffic()
		jacobiOn(mf, iters+2)
		msgsB, bytesB := tr.InterNodeTraffic()
		gotMsgs := int(msgsB-msgsA) / 2
		gotBytes := int(bytesB-bytesA) / 2
		wantMsgs, wantBytes := perfest.JacobiInterNode(n, p, nodes)
		if gotMsgs != wantMsgs || gotBytes != wantBytes {
			censusMatch = 0
		}
		tbl.AddNote("inter-node traffic per iteration at %d nodes: %d msgs / %d bytes (perfest predicts %d / %d)",
			nodes, gotMsgs, gotBytes, wantMsgs, wantBytes)
	}
	metrics["s3_internode_census_match"] = censusMatch

	// Pipelined ADI (madi) across the node sweep.
	adiOn := func(m *machine.Machine) trun {
		par := adi.Params{N: adiN, A: 1, B: 1, Iters: 2}
		res, err := adi.Parallel(m, g, par, adi.TestProblem(par.N), true)
		if err != nil {
			panic(err)
		}
		return trun{elapsed: res.Elapsed, stats: res.Stats, x: res.U}
	}
	adiShared := adiOn(machine.New(pp, cost))
	tbl.AddRow("madi 32x32", "shared", adiShared.elapsed, 1.0, 0.0, true)
	metrics["s3_adi_time_shared"] = adiShared.elapsed
	adiIdentical, adiSurchargeOK := 1.0, 1.0
	for _, nodes := range nodeSweep {
		fed := adiOn(machine.NewFederated(pp, nodes, cost))
		ident := sameValuesAndCensus(adiShared, fed)
		if !ident {
			adiIdentical = 0
		}
		got := fed.elapsed - adiShared.elapsed
		pred := 2 * perfest.ADIFederatedSurcharge(cost, adiN, p, nodes) // 2 iterations
		switch {
		case nodes == 1:
			if got != 0 {
				adiSurchargeOK = 0
			}
		default:
			if !(got > 0) || relErr(pred, got) > adiTol {
				adiSurchargeOK = 0
			}
		}
		tbl.AddRow("madi 32x32", nodes, fed.elapsed, fed.elapsed/adiShared.elapsed, pred, ident)
		metrics[keyf("s3_adi_time_nodes%d", nodes)] = fed.elapsed
		metrics[keyf("s3_adi_surcharge_nodes%d", nodes)] = got
		metrics[keyf("s3_adi_surcharge_pred_nodes%d", nodes)] = pred
	}
	metrics["s3_adi_identical"] = adiIdentical
	metrics["s3_adi_surcharge_ok"] = adiSurchargeOK

	// The NUMA knee: normalized slowdown along the sweep. Whole-row
	// federations (4, 16 nodes) pay nearly the same boundary toll; the
	// split-row federation (64 nodes) turns the curve up.
	knee := metrics["s3_jacobi_time_nodes64"] - metrics["s3_jacobi_time_nodes16"]
	shoulder := metrics["s3_jacobi_time_nodes16"] - metrics["s3_jacobi_time_nodes4"]
	metrics["s3_jacobi_knee"] = boolMetric(knee > 4*shoulder && knee > 0)
	tbl.AddNote("jacobi NUMA knee: slowdown step 16->64 nodes = %.4gs vs 4->16 = %.4gs", knee, shoulder)
	tbl.AddNote("surcharges: jacobi exact=%v (tol 1e-9), madi within %.0f%%=%v",
		surchargeExact == 1, adiTol*100, adiSurchargeOK == 1)

	return Result{
		ID:      "S3",
		Title:   "1024-processor federation with per-link cost model",
		Text:    tbl.String(),
		Metrics: metrics,
	}
}
