package experiments

import (
	"repro/internal/adi"
	"repro/internal/core"
	"repro/internal/machine"
	"repro/internal/perfest"
	"repro/internal/report"
)

// S3Hierarchical1024 scales the runtime to 1024 simulated processors (a
// 32x32 grid) under a hierarchical cost model that prices the node
// interconnect: inter-node messages pay 4x the latency and 8x the byte
// period of intra-node ones (core.LinkCosts). Sweeping the federation
// across 1, 4, 16 and 64 nodes, the same Jacobi and pipelined ADI Programs
// must produce bit-identical solutions and message/byte censuses on every
// transport — the program's meaning lives in its messages — while the
// federated virtual times diverge from the shared baseline by exactly the
// inter-node surcharge the performance estimator predicts statically: to
// floating-point tolerance for Jacobi (whose halo recurrence perfest
// evaluates exactly) and to a documented critical-path tolerance for the
// madi pipeline. The elapsed-versus-nodes curve is the NUMA knee:
// whole-row federations pay one boundary ghost per iteration, but once
// nodes outnumber grid rows (64 nodes = half-row nodes) every dimension-0
// exchange and the intra-row seams cross the interconnect and the curve
// turns sharply up.
func S3Hierarchical1024() Result {
	const (
		n, p, iters = 256, 32, 3
		adiN        = 64
		adiTol      = 0.25 // madi pipeline overlap slack; Jacobi is exact
	)
	const linkLat, linkByte = 4, 8
	cost := machine.IPSC2().WithInterNode(linkLat, linkByte)
	nodeSweep := []int{1, 4, 16, 64}
	metrics := map[string]float64{}
	tbl := report.NewTable("1024-processor hierarchical federation (iPSC/2 costs, inter-node 4x latency / 8x byte period)",
		"program", "nodes", "time (s)", "vs shared", "surcharge predicted", "identical")

	// fedSys declares one swept federation: the shared iPSC/2 model plus
	// the interconnect pricing, layered on by LinkCosts.
	fedSys := func(nodes int) *core.System {
		return mustSys(core.Grid(p, p),
			core.Transport("federated"), core.Nodes(nodes),
			core.LinkCosts(linkLat, linkByte))
	}

	// Jacobi across the node sweep.
	jp := jacobiProgram(n, iters)
	shared := runProg(mustSys(core.Grid(p, p), core.Cost(cost)), jp)
	tbl.AddRow("jacobi 32x32", "shared", shared.Elapsed, 1.0, 0.0, true)
	metrics["s3_jacobi_time_shared"] = shared.Elapsed
	allIdentical, surchargeExact := 1.0, 1.0
	var fed16 core.Run
	for _, nodes := range nodeSweep {
		fed := runProg(fedSys(nodes), jp)
		if nodes == 16 {
			fed16 = fed
		}
		cmp := core.CompareRuns(shared, fed)
		if !cmp.Identical {
			allIdentical = 0
		}
		pred := perfest.JacobiFederatedSurcharge(cost, n, p, iters, nodes)
		got := fed.Elapsed - shared.Elapsed
		// Zero measured surcharge only matches a zero prediction —
		// relErr's measured==0 convention must not let a transport that
		// stopped charging links pass as "exact".
		exact := (pred == 0 && got == 0) || (got != 0 && relErr(pred, got) <= 1e-9)
		if !exact {
			surchargeExact = 0
		}
		tbl.AddRow("jacobi 32x32", nodes, fed.Elapsed, fed.Elapsed/shared.Elapsed, pred, cmp.Identical)
		metrics[keyf("s3_jacobi_time_nodes%d", nodes)] = fed.Elapsed
		metrics[keyf("s3_jacobi_surcharge_nodes%d", nodes)] = got
	}
	metrics["s3_jacobi_identical"] = allIdentical
	metrics["s3_jacobi_surcharge_exact"] = surchargeExact

	// Cross-process spot check: the ipc transport under the same
	// interconnect pricing must reproduce the federated 16-node run
	// bit-for-bit — values, censuses, per-link traffic AND virtual times
	// (both charge cost.LinkMessageTime on exactly the same messages).
	ipcSys := mustSys(core.Grid(p, p),
		core.Transport("ipc"), core.Nodes(16),
		core.LinkCosts(linkLat, linkByte))
	defer ipcSys.Close()
	ipcRun := runProg(ipcSys, jp)
	cmpIPC := core.CompareRuns(fed16, ipcRun)
	linksEqual := fed16.Links != nil && ipcRun.Links != nil &&
		fed16.Links.Nodes == ipcRun.Links.Nodes
	if linksEqual {
		for a := 0; a < fed16.Links.Nodes && linksEqual; a++ {
			for b := 0; b < fed16.Links.Nodes; b++ {
				if fed16.Links.Msgs[a][b] != ipcRun.Links.Msgs[a][b] ||
					fed16.Links.Bytes[a][b] != ipcRun.Links.Bytes[a][b] {
					linksEqual = false
					break
				}
			}
		}
	}
	metrics["s3_jacobi_ipc_identical"] = boolMetric(
		cmpIPC.Identical && cmpIPC.TimesIdentical && linksEqual)
	tbl.AddRow("jacobi 32x32", "ipc 16", ipcRun.Elapsed, ipcRun.Elapsed/shared.Elapsed,
		perfest.JacobiFederatedSurcharge(cost, n, p, iters, 16),
		cmpIPC.Identical && cmpIPC.TimesIdentical)
	tbl.AddNote("cross-process check: ipc at 16 nodes matches federated 16 bit-for-bit (values/census/links/times) = %v",
		metrics["s3_jacobi_ipc_identical"] == 1)

	// Per-iteration link census on the swept federations (differencing
	// two run lengths cancels the gather/reduce epilogue), against the
	// estimator's exact enumeration — including the intra-row seams that
	// only exist past the whole-row regime.
	censusMatch := 1.0
	jpLong := jacobiProgram(n, iters+2)
	for _, nodes := range []int{4, 64} {
		sys := fedSys(nodes)
		runA := runProg(sys, jp)
		runB := runProg(sys, jpLong)
		dMsgs, dBytes := runB.Links.Sub(runA.Links).Total()
		gotMsgs := int(dMsgs) / 2
		gotBytes := int(dBytes) / 2
		wantMsgs, wantBytes := perfest.JacobiInterNode(n, p, nodes)
		if gotMsgs != wantMsgs || gotBytes != wantBytes {
			censusMatch = 0
		}
		tbl.AddNote("inter-node traffic per iteration at %d nodes: %d msgs / %d bytes (perfest predicts %d / %d)",
			nodes, gotMsgs, gotBytes, wantMsgs, wantBytes)
	}
	metrics["s3_internode_census_match"] = censusMatch

	// Pipelined ADI (madi) across the node sweep.
	par := adi.Params{N: adiN, A: 1, B: 1, Iters: 2}
	ap := adiProgram(par, true)
	adiShared := runProg(mustSys(core.Grid(p, p), core.Cost(cost)), ap)
	tbl.AddRow("madi 32x32", "shared", adiShared.Elapsed, 1.0, 0.0, true)
	metrics["s3_adi_time_shared"] = adiShared.Elapsed
	adiIdentical, adiSurchargeOK := 1.0, 1.0
	for _, nodes := range nodeSweep {
		fed := runProg(fedSys(nodes), ap)
		cmp := core.CompareRuns(adiShared, fed)
		if !cmp.Identical {
			adiIdentical = 0
		}
		got := fed.Elapsed - adiShared.Elapsed
		pred := 2 * perfest.ADIFederatedSurcharge(cost, adiN, p, nodes) // 2 iterations
		switch {
		case nodes == 1:
			if got != 0 {
				adiSurchargeOK = 0
			}
		default:
			if !(got > 0) || relErr(pred, got) > adiTol {
				adiSurchargeOK = 0
			}
		}
		tbl.AddRow("madi 32x32", nodes, fed.Elapsed, fed.Elapsed/adiShared.Elapsed, pred, cmp.Identical)
		metrics[keyf("s3_adi_time_nodes%d", nodes)] = fed.Elapsed
		metrics[keyf("s3_adi_surcharge_nodes%d", nodes)] = got
		metrics[keyf("s3_adi_surcharge_pred_nodes%d", nodes)] = pred
	}
	metrics["s3_adi_identical"] = adiIdentical
	metrics["s3_adi_surcharge_ok"] = adiSurchargeOK

	// The NUMA knee: normalized slowdown along the sweep. Whole-row
	// federations (4, 16 nodes) pay nearly the same boundary toll; the
	// split-row federation (64 nodes) turns the curve up.
	knee := metrics["s3_jacobi_time_nodes64"] - metrics["s3_jacobi_time_nodes16"]
	shoulder := metrics["s3_jacobi_time_nodes16"] - metrics["s3_jacobi_time_nodes4"]
	metrics["s3_jacobi_knee"] = boolMetric(knee > 4*shoulder && knee > 0)
	tbl.AddNote("jacobi NUMA knee: slowdown step 16->64 nodes = %.4gs vs 4->16 = %.4gs", knee, shoulder)
	tbl.AddNote("surcharges: jacobi exact=%v (tol 1e-9), madi within %.0f%%=%v",
		surchargeExact == 1, adiTol*100, adiSurchargeOK == 1)

	return Result{
		ID:      "S3",
		Title:   "1024-processor federation with per-link cost model",
		Text:    tbl.String(),
		Metrics: metrics,
	}
}
