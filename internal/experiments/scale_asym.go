package experiments

import (
	"repro/internal/core"
	"repro/internal/machine"
	"repro/internal/perfest"
	"repro/internal/report"
)

// S4LinkAsymmetry sweeps per-link cost asymmetry — the interconnects real
// federations have and uniform multipliers cannot express: one slow uplink
// between two nodes, or a fast backbone pair in an otherwise uniform
// fabric. The same Jacobi Program (64 processors, 8x8 grid, 4 whole-row
// nodes) is compared (core.CompareRuns against one shared baseline run)
// between a flat shared machine and federations whose 0->1 uplink
// degrades through 1x, 2x, 8x and 32x the
// uniform link price, plus one federation whose 1<->2 backbone is repriced
// down to intra-node cost. Asymmetry never changes the program's meaning —
// values and message censuses stay bit-identical in every cell — and the
// virtual times move exactly, and in exactly the direction, the
// performance estimator's finish-time recurrence predicts: a slower uplink
// drags the whole clock (elapsed is a max over the steady-state halo
// recurrence, so the slowest crossing is load-bearing), while a faster
// backbone among equally priced peers buys nothing — the bottleneck stays
// at the untouched links, and the simulator and estimator agree it stays.
// Every elapsed time matches perfest.JacobiFederatedTime to floating-point
// tolerance, per-pair overrides included.
func S4LinkAsymmetry() Result {
	const (
		n, p, nodes, iters = 128, 8, 4, 3
		linkLat, linkByte  = 4.0, 8.0
	)
	prog := jacobiProgram(n, iters)
	sharedSys := mustSys(core.Grid(p, p))
	metrics := map[string]float64{}
	tbl := report.NewTable("link asymmetry at 64 processors, 4 nodes (iPSC/2 costs, uniform inter-node 4x/8x)",
		"variant", "time (s)", "surcharge vs shared", "predicted", "identical")

	shared := runProg(sharedSys, prog)
	tbl.AddRow("shared", shared.Elapsed, 0.0, 0.0, true)
	metrics["s4_time_shared"] = shared.Elapsed

	// variant runs prog on a federation priced by the given link
	// overrides, renders the bit-identity verdict against the one shared
	// baseline run (core.CompareRuns — the sweep side of the Compare
	// API), and validates the elapsed time against perfest's recurrence
	// under the matching cost model.
	identicalAll, exactAll := 1.0, 1.0
	variant := func(label string, links ...core.LinkSpec) core.Run {
		sys := mustSys(core.Grid(p, p),
			core.Transport("federated"), core.Nodes(nodes),
			core.LinkCosts(linkLat, linkByte, links...))
		cmp := core.CompareRuns(shared, runProg(sys, prog))
		if !cmp.Identical {
			identicalAll = 0
		}
		// Mirror the option stack into a cost model for the estimator.
		cost := machine.IPSC2().WithInterNode(linkLat, linkByte)
		for _, l := range links {
			cost = cost.WithLink(l.Src, l.Dst, machine.LinkCost{Latency: l.Latency, Byte: l.Byte})
		}
		got := cmp.B.Elapsed - cmp.A.Elapsed
		pred := perfest.JacobiFederatedSurcharge(cost, n, p, iters, nodes)
		// Zero measured surcharge only matches a zero prediction —
		// relErr's measured==0 convention must not let a transport that
		// stopped charging links pass as "exact".
		exact := (pred == 0 && got == 0) || (got != 0 && relErr(pred, got) <= 1e-9)
		if !exact {
			exactAll = 0
		}
		tbl.AddRow(label, cmp.B.Elapsed, got, pred, cmp.Identical)
		metrics[keyf("s4_time_%s", label)] = cmp.B.Elapsed
		metrics[keyf("s4_surcharge_%s", label)] = got
		return cmp.B
	}

	// Slow uplink sweep: the 0->1 link degrades while everything else
	// keeps the uniform price. k=1 is the uniform federation.
	uplinkSweep := []float64{1, 2, 8, 32}
	var uniform core.Run
	monotone, strict := 1.0, 0.0
	prev := 0.0
	for i, k := range uplinkSweep {
		label := keyf("uplink%gx", k)
		run := variant(label, core.LinkSpec{Src: 0, Dst: 1, Latency: linkLat * k, Byte: linkByte * k})
		if i == 0 {
			uniform = run
		} else {
			if run.Elapsed < prev {
				monotone = 0
			}
			if run.Elapsed > uniform.Elapsed {
				strict = 1
			}
		}
		prev = run.Elapsed
	}
	metrics["s4_uplink_monotone"] = monotone
	metrics["s4_uplink_slows"] = strict

	// Fast backbone: the 1<->2 pair repriced to intra-node cost; the
	// other links keep the uniform price. The curve must never bend up —
	// and because the elapsed time is a max over the halo recurrence, a
	// single cheap link among equally priced peers cannot bend it down
	// either: the bottleneck stays at the untouched 0<->1 and 2<->3
	// boundaries, which perfest's recurrence predicts exactly.
	backbone := variant("backbone",
		core.LinkSpec{Src: 1, Dst: 2, Latency: 1, Byte: 1},
		core.LinkSpec{Src: 2, Dst: 1, Latency: 1, Byte: 1})
	metrics["s4_backbone_helps"] = boolMetric(backbone.Elapsed <= uniform.Elapsed)
	metrics["s4_backbone_gain"] = uniform.Elapsed - backbone.Elapsed

	metrics["s4_identical"] = identicalAll
	metrics["s4_perfest_exact"] = exactAll
	tbl.AddNote("all censuses bit-identical=%v; every time matches perfest.JacobiFederatedTime to 1e-9=%v",
		identicalAll == 1, exactAll == 1)
	tbl.AddNote("slow uplink direction: monotone=%v, strictly slower than uniform=%v; backbone gain %.4gs (the max-recurrence bottleneck stays at the untouched links)",
		monotone == 1, strict == 1, metrics["s4_backbone_gain"])
	return Result{
		ID:      "S4",
		Title:   "per-link cost asymmetry: slow uplinks and fast backbones",
		Text:    tbl.String(),
		Metrics: metrics,
	}
}
