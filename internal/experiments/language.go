package experiments

import (
	"fmt"
	"strings"

	"repro/internal/core"
	"repro/internal/darray"
	"repro/internal/dist"
	"repro/internal/jacobi"
	"repro/internal/kf"
	"repro/internal/loc"
	"repro/internal/machine"
	"repro/internal/report"
)

// E1Jacobi compares the three Jacobi implementations (Listings 1-3):
// bitwise-identical results, and — claim C2 — matching virtual execution
// time and communication volume for KF1 versus hand message passing.
func E1Jacobi() Result {
	const n, niter = 32, 10
	x0, f := jacobi.Problem(n)
	seq := jacobi.Sequential(x0, f, niter)

	tbl := report.NewTable("Jacobi three ways, n=32, 10 iterations, 2x2 processors (iPSC/2 costs)",
		"variant", "virtual time (s)", "msgs", "bytes", "max |diff| vs sequential")

	sysMP := newSys([]int{2, 2})
	mp, err := jacobi.MessagePassing(sysMP.Machine, sysMP.Procs, x0, f, niter)
	if err != nil {
		panic(err)
	}
	sysKF := newSys([]int{2, 2})
	k1, err := jacobi.KF1(sysKF.Machine, sysKF.Procs, x0, f, niter)
	if err != nil {
		panic(err)
	}
	diff := func(x [][]float64) float64 {
		worst := 0.0
		for i := range x {
			for j := range x[i] {
				d := x[i][j] - seq[i][j]
				if d < 0 {
					d = -d
				}
				if d > worst {
					worst = d
				}
			}
		}
		return worst
	}
	dm, dk := diff(mp.X), diff(k1.X)
	tbl.AddRow("sequential (Listing 1)", 0.0, 0, 0, 0.0)
	tbl.AddRow("message passing (Listing 2)", mp.Elapsed, mp.Stats.MsgsSent, mp.Stats.BytesSent, dm)
	tbl.AddRow("KF1 runtime (Listing 3)", k1.Elapsed, k1.Stats.MsgsSent, k1.Stats.BytesSent, dk)
	ratio := k1.Elapsed / mp.Elapsed
	tbl.AddNote("claim C2: KF1/MP time ratio = %.3f (paper: no difference, given equal code generators)", ratio)

	// Speedup sweep (claim: the constructs do not cost scalability).
	sp := report.NewTable("KF1 Jacobi speedup, n=64, 4 iterations (balanced machine)",
		"processors", "virtual time (s)", "speedup")
	x0b, fb := jacobi.Problem(64)
	var t1 float64
	var s4 float64
	for _, p := range []int{1, 2, 4} {
		sys := newSys([]int{p, p}, core.Cost(machine.Balanced()))
		res, err := jacobi.KF1(sys.Machine, sys.Procs, x0b, fb, 4)
		if err != nil {
			panic(err)
		}
		if p == 1 {
			t1 = res.Elapsed
		}
		sp.AddRow(p*p, res.Elapsed, t1/res.Elapsed)
		if p == 4 {
			s4 = t1 / res.Elapsed
		}
	}
	return Result{
		ID:    "E1",
		Title: "Jacobi: sequential vs message passing vs KF1 (Listings 1-3, claim C2)",
		Text:  tbl.String() + "\n" + sp.String(),
		Metrics: map[string]float64{
			"time_ratio_kf1_mp": ratio,
			"maxdiff_mp":        dm,
			"maxdiff_kf1":       dk,
			"speedup_16p":       s4,
		},
	}
}

// E8CodeSize measures claim C1: statement counts of the three Jacobi
// variants. The paper: "the message passing version of a program is often
// five to ten times longer than the sequential version", while the KF1
// version stays near sequential length.
func E8CodeSize() Result {
	path, err := loc.FindSource("internal/jacobi/jacobi.go")
	if err != nil {
		panic(err)
	}
	stats, err := loc.CountFile(path, "Sequential", "MessagePassing", "KF1", "maxReduce")
	if err != nil {
		panic(err)
	}
	seq := stats["Sequential"].Statements
	// The hand-written version needs its hand-written reduction too.
	mp := stats["MessagePassing"].Statements + stats["maxReduce"].Statements
	k1 := stats["KF1"].Statements
	tbl := report.NewTable("program length (Go statements) of the Jacobi variants",
		"variant", "statements", "ratio vs sequential")
	tbl.AddRow("sequential (Listing 1)", seq, 1.0)
	tbl.AddRow("message passing (Listing 2)", mp, float64(mp)/float64(seq))
	tbl.AddRow("KF1 runtime (Listing 3)", k1, float64(k1)/float64(seq))
	tbl.AddNote("paper claim C1: message passing is 5-10x the sequential version")
	return Result{
		ID:    "E8",
		Title: "code size: message passing vs sequential vs KF1 (claim C1)",
		Text:  tbl.String(),
		Metrics: map[string]float64{
			"ratio_mp_seq":  float64(mp) / float64(seq),
			"ratio_kf1_seq": float64(k1) / float64(seq),
		},
	}
}

// E9Inspector compares the two communication-derivation paths of Section 2
// on the same shift loop A(i) = A(idx(i)): the compiled stencil exchange
// (static analysis succeeds) versus the inspector/executor runtime
// resolution (the paper's "gather such information on the fly"), measuring
// the traffic overhead of runtime resolution.
func E9Inspector() Result {
	const n, p = 256, 8
	run := func(irregular bool) (elapsed float64, stats machine.Stats, flat []float64) {
		sys := newSys([]int{p})
		elapsed, err := sys.Run(func(c *kf.Ctx) error {
			a := c.NewArray(darray.Spec{Extents: []int{n}, Dists: []dist.Dist{dist.Block{}}, Halo: []int{1}})
			a.FillOwned(func(idx []int) float64 { return float64(idx[0] * idx[0] % 97) })
			if irregular {
				// Inspector: declare every read index (here the
				// compiler pretends not to know idx(i) = i+1).
				var need []int
				for i := a.Lower(0); i <= a.Upper(0); i++ {
					if i < n-1 {
						need = append(need, i+1)
					}
				}
				gath := c.GatherIrregular(a, need)
				c.Doall1(kf.R(0, n-2), kf.OnOwner1(a), nil, func(cc *kf.Ctx, i int) {
					a.Set1(i, gath.At(i+1))
				})
			} else {
				c.Doall1(kf.R(0, n-2), kf.OnOwner1(a), []kf.LoopOpt{kf.Reads(a)},
					func(cc *kf.Ctx, i int) {
						a.Set1(i, a.Old1(i+1))
					})
			}
			out := a.GatherTo(c.NextScope(), 0)
			if c.P.Rank() == 0 {
				flat = out
			}
			return nil
		})
		if err != nil {
			panic(err)
		}
		return elapsed, sys.Stats(), flat
	}
	tC, sC, fC := run(false)
	tI, sI, fI := run(true)
	diff := maxAbsDiff(fC, fI)
	tbl := report.NewTable("compiled stencil exchange vs inspector/executor (shift loop, n=256, p=8)",
		"path", "virtual time (s)", "msgs", "bytes")
	tbl.AddRow("compiled (static stencil)", tC, sC.MsgsSent, sC.BytesSent)
	tbl.AddRow("inspector/executor (runtime)", tI, sI.MsgsSent, sI.BytesSent)
	tbl.AddNote("identical results (max diff %.1e); runtime resolution costs %.2fx the messages",
		diff, float64(sI.MsgsSent)/float64(sC.MsgsSent))
	return Result{
		ID:    "E9",
		Title: "implicit communication: compiled exchange vs runtime gathering (Section 2)",
		Text:  tbl.String(),
		Metrics: map[string]float64{
			"maxdiff":    diff,
			"msg_ratio":  float64(sI.MsgsSent) / float64(sC.MsgsSent),
			"byte_ratio": float64(sI.BytesSent) / float64(sC.BytesSent),
		},
	}
}

// sparkline renders values as a crude one-line bar chart (helper for
// series-style reports).
func sparkline(vals []float64) string {
	if len(vals) == 0 {
		return ""
	}
	max := vals[0]
	for _, v := range vals {
		if v > max {
			max = v
		}
	}
	marks := []byte("._-=+*#")
	var sb strings.Builder
	for _, v := range vals {
		idx := 0
		if max > 0 {
			idx = int(v / max * float64(len(marks)-1))
		}
		sb.WriteByte(marks[idx])
	}
	return sb.String()
}

var _ = fmt.Sprintf // keep fmt for the sparkline-using files
