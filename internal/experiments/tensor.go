package experiments

import (
	"fmt"

	"repro/internal/adi"
	"repro/internal/core"
	"repro/internal/darray"
	"repro/internal/dist"
	"repro/internal/kf"
	"repro/internal/machine"
	"repro/internal/multigrid"
	"repro/internal/report"
)

func sprintf(format string, args ...interface{}) string {
	return fmt.Sprintf(format, args...)
}

// E4ADI verifies the ADI driver (Listing 7): the parallel iterates match
// the sequential ones and the residual history contracts.
func E4ADI() Result {
	par := adi.Params{N: 24, A: 1, B: 1, Iters: 8}
	f := adi.TestProblem(par.N)
	seqU, seqHist := adi.Sequential(par, f)

	sys := newSys([]int{2, 2})
	res, err := adi.Parallel(sys.Machine, sys.Procs, par, f, false)
	if err != nil {
		panic(err)
	}
	worst := 0.0
	for i := 0; i < par.N; i++ {
		for j := 0; j < par.N; j++ {
			d := res.U[i][j] - seqU[i][j]
			if d < 0 {
				d = -d
			}
			if d > worst {
				worst = d
			}
		}
	}
	var sb string
	sb += report.Series("sequential residual", seqHist)
	sb += report.Series("parallel residual  ", res.ResNorm)
	sb += sprintf("max |u_par - u_seq| = %.2e after %d iterations\n", worst, par.Iters)
	factor := seqHist[len(seqHist)-1] / seqHist[len(seqHist)-2]
	return Result{
		ID:    "E4",
		Title: "ADI iteration built from parallel tridiagonal kernels (Listing 7)",
		Text:  sb,
		Metrics: map[string]float64{
			"maxdiff":      worst,
			"final_factor": factor,
			"final_res":    res.ResNorm[len(res.ResNorm)-1],
		},
	}
}

// E5MADI sweeps ADI versus pipelined MADI (Listing 8) over problem sizes
// and grids, the claim-C4 experiment for two-dimensional tensor product
// computations.
func E5MADI() Result {
	tbl := report.NewTable("ADI vs pipelined MADI, 3 iterations (iPSC/2 costs)",
		"interior n", "grid", "adi (s)", "madi (s)", "ratio")
	metrics := map[string]float64{}
	for _, cfg := range []struct {
		n, px, py int
	}{
		{16, 2, 2}, {32, 2, 2}, {64, 2, 2}, {32, 2, 4}, {64, 4, 4},
	} {
		par := adi.Params{N: cfg.n, A: 1, B: 1, Iters: 3}
		f := adi.TestProblem(par.N)
		sys1 := newSys([]int{cfg.px, cfg.py})
		plain, err := adi.Parallel(sys1.Machine, sys1.Procs, par, f, false)
		if err != nil {
			panic(err)
		}
		sys2 := newSys([]int{cfg.px, cfg.py})
		piped, err := adi.Parallel(sys2.Machine, sys2.Procs, par, f, true)
		if err != nil {
			panic(err)
		}
		ratio := plain.Elapsed / piped.Elapsed
		tbl.AddRow(cfg.n, sprintf("%dx%d", cfg.px, cfg.py), plain.Elapsed, piped.Elapsed, ratio)
		metrics[keyf("ratio_n%d_p%dx%d", cfg.n, cfg.px, cfg.py)] = ratio
	}
	tbl.AddNote("madi pipelines each slice's line solves through one tree (paper Listing 8)")
	return Result{
		ID:      "E5",
		Title:   "pipelined ADI (madi) vs line-at-a-time ADI (claim C4)",
		Text:    tbl.String(),
		Metrics: metrics,
	}
}

// E6Multigrid records the convergence factors of MG2 and MG3 and checks
// parallel/sequential agreement — the qualitative content of Section 5.
func E6Multigrid() Result {
	var text string
	metrics := map[string]float64{}

	// MG2 on 32x32, sequential and 4 processors.
	hist2 := runMG2(1, 32)
	text += report.Series("MG2 32x32 residual (1 proc)", hist2)
	f2 := hist2[len(hist2)-1] / hist2[len(hist2)-2]
	metrics["mg2_factor"] = f2

	hist2p := runMG2(4, 32)
	text += report.Series("MG2 32x32 residual (4 proc)", hist2p)
	metrics["mg2_par_vs_seq"] = relDiff(hist2, hist2p)

	// MG3 on 16^3 with 1 and 2 plane cycles.
	hist3 := runMG3(1, 16, dist.Star{}, dist.Star{}, dist.Block{}, 1)
	text += report.Series("MG3 16^3 residual (1 plane cycle) ", hist3)
	metrics["mg3_factor_pc1"] = hist3[len(hist3)-1] / hist3[len(hist3)-2]

	hist3b := runMG3(1, 16, dist.Star{}, dist.Star{}, dist.Block{}, 2)
	text += report.Series("MG3 16^3 residual (2 plane cycles)", hist3b)
	metrics["mg3_factor_pc2"] = hist3b[len(hist3b)-1] / hist3b[len(hist3b)-2]

	text += sprintf("asymptotic V-cycle factors: MG2 %.3f, MG3 %.3f (1 plane cycle), %.3f (2)\n",
		f2, metrics["mg3_factor_pc1"], metrics["mg3_factor_pc2"])
	return Result{
		ID:      "E6",
		Title:   "multigrid with zebra relaxation and semicoarsening (Listings 9-11)",
		Text:    text,
		Metrics: metrics,
	}
}

func relDiff(a, b []float64) float64 {
	worst := 0.0
	for i := range a {
		d := a[i] - b[i]
		if d < 0 {
			d = -d
		}
		if a[i] != 0 {
			d /= a[i]
		}
		if d > worst {
			worst = d
		}
	}
	return worst
}

func runMG2(nprocs, n int) []float64 {
	var hist []float64
	sys := newSys([]int{nprocs}, core.Cost(machine.ZeroComm()))
	_, err := sys.Run(func(c *kf.Ctx) error {
		u, f := mgProblem2(c, n)
		h := multigrid.Solve2(c, u, f, multigrid.Default2D(n, n), 8)
		if c.P.Rank() == 0 {
			hist = h
		}
		return nil
	})
	if err != nil {
		panic(err)
	}
	return hist
}

func runMG3(nprocs, n int, dx, dy, dz dist.Dist, planeCycles int) []float64 {
	var hist []float64
	sys := newSys([]int{nprocs}, core.Cost(machine.ZeroComm()))
	_, err := sys.Run(func(c *kf.Ctx) error {
		u, f := mgProblem3(c, n, dx, dy, dz)
		par := multigrid.Default3D(n, n, n)
		par.PlaneCycles = planeCycles
		h := multigrid.Solve3(c, u, f, par, 6)
		if c.P.Rank() == 0 {
			hist = h
		}
		return nil
	})
	if err != nil {
		panic(err)
	}
	return hist
}

// E7Distribution is the claim-C3 ablation: MG3 under three dist clauses.
// The code is identical; only the one-line Spec changes. The table reports
// where the time goes under realistic costs.
func E7Distribution() Result {
	const n = 16
	tbl := report.NewTable("MG3 16^3, 2 V-cycles under different dist clauses (iPSC/2 costs, 4 processors)",
		"dist clause", "grid", "virtual time (s)", "msgs", "bytes", "final residual")
	metrics := map[string]float64{}
	type variant struct {
		name       string
		shape      []int
		dx, dy, dz dist.Dist
	}
	for _, v := range []variant{
		{"(*, block, block)", []int{2, 2}, dist.Star{}, dist.Block{}, dist.Block{}},
		{"(*, *, block)", []int{4}, dist.Star{}, dist.Star{}, dist.Block{}},
		{"(block, block, *)", []int{2, 2}, dist.Block{}, dist.Block{}, dist.Star{}},
	} {
		sys := newSys(v.shape)
		var final float64
		elapsed, err := sys.Run(func(c *kf.Ctx) error {
			u, f := mgProblem3(c, n, v.dx, v.dy, v.dz)
			h := multigrid.Solve3(c, u, f, multigrid.Default3D(n, n, n), 2)
			final = h[len(h)-1]
			return nil
		})
		if err != nil {
			panic(err)
		}
		st := sys.Stats()
		tbl.AddRow(v.name, sys.Procs.String(), elapsed, st.MsgsSent, st.BytesSent, final)
		metrics[keyf("time_%s", sanitize(v.name))] = elapsed
	}
	tbl.AddNote("one-line dist change moves the parallelism between levels of the nested algorithm (claim C3)")
	return Result{
		ID:      "E7",
		Title:   "distribution choice ablation for MG3 (Section 5 discussion, claim C3)",
		Text:    tbl.String(),
		Metrics: metrics,
	}
}

func sanitize(s string) string {
	out := make([]rune, 0, len(s))
	for _, r := range s {
		switch r {
		case '(', ')', ' ', ',':
		case '*':
			out = append(out, 's')
		default:
			out = append(out, r)
		}
	}
	return string(out)
}

// mgProblem2 builds the standard 2-D multigrid test problem.
func mgProblem2(c *kf.Ctx, n int) (u, f *darray.Array) {
	spec := darray.Spec{
		Extents: []int{n + 1, n + 1},
		Dists:   []dist.Dist{dist.Star{}, dist.Block{}},
		Halo:    []int{0, 1},
	}
	u = c.NewArray(spec)
	f = c.NewArray(spec)
	u.Zero()
	f.Zero()
	f.FillOwned(func(idx []int) float64 {
		i, j := idx[0], idx[1]
		if i == 0 || i == n || j == 0 || j == n {
			return 0
		}
		return float64((i*31+j*17)%23) - 11
	})
	return u, f
}

// mgProblem3 builds the standard 3-D multigrid test problem under the
// requested distributions.
func mgProblem3(c *kf.Ctx, n int, dx, dy, dz dist.Dist) (u, f *darray.Array) {
	halo := make([]int, 3)
	for i, d := range []dist.Dist{dx, dy, dz} {
		if _, isStar := d.(dist.Star); !isStar {
			halo[i] = 1
		}
	}
	spec := darray.Spec{
		Extents: []int{n + 1, n + 1, n + 1},
		Dists:   []dist.Dist{dx, dy, dz},
		Halo:    halo,
	}
	u = c.NewArray(spec)
	f = c.NewArray(spec)
	u.Zero()
	f.Zero()
	f.FillOwned(func(idx []int) float64 {
		i, j, k := idx[0], idx[1], idx[2]
		if i == 0 || i == n || j == 0 || j == n || k == 0 || k == n {
			return 0
		}
		return float64((i*7+j*5+k*3)%17) - 8
	})
	return u, f
}
